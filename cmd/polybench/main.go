// polybench regenerates the paper's tables and figures (see internal/bench).
//
// Usage:
//
//	polybench -table 1|2|3|4|5
//	polybench -figure 4
//	polybench -all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "regenerate table N (1-5)")
	figure := flag.Int("figure", 0, "regenerate figure N (4)")
	all := flag.Bool("all", false, "regenerate everything")
	flag.Parse()

	run := func(name string, f func() (string, error)) {
		fmt.Printf("==== %s ====\n", name)
		txt, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(txt)
	}

	want := func(n int, kind string) bool {
		if *all {
			return true
		}
		if kind == "table" {
			return *table == n
		}
		return *figure == n
	}

	any := false
	if want(1, "table") {
		any = true
		run("Table 1", func() (string, error) { _, t, err := bench.Table1(); return t, err })
	}
	if want(2, "table") {
		any = true
		run("Table 2", func() (string, error) {
			_, t, err := bench.Table2()
			return "Table 2: Phoenix normalized runtimes\n" + t, err
		})
	}
	if want(3, "table") {
		any = true
		run("Table 3", bench.Table3)
	}
	if want(4, "table") {
		any = true
		run("Table 4", func() (string, error) { _, t, err := bench.Table4(); return t, err })
	}
	if want(5, "table") {
		any = true
		run("Table 5", func() (string, error) { _, t, err := bench.Table5(); return t, err })
	}
	if want(4, "figure") {
		any = true
		run("Figure 4", func() (string, error) { _, t, err := bench.Figure4(); return t, err })
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}
