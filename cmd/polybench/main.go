// polybench regenerates the paper's tables and figures (see internal/bench).
//
// Usage:
//
//	polybench -table 1|2|3|4|5 [-j N] [-jpipe N]
//	polybench -figure 4 [-j N] [-jpipe N]
//	polybench -all [-j N] [-jpipe N]
//
// -j sets how many pipeline cells run concurrently (default
// runtime.NumCPU(); -j 1 is the historical fully serial run). -jpipe sets
// how many functions each recompile lifts and optimizes concurrently
// (default runtime.NumCPU(); -jpipe 1 is the historical serial pipeline) —
// recompiled bytes are identical at any -jpipe, see DESIGN.md §3. The table
// text on stdout is byte-identical at any -j/-jpipe; a per-table
// pipeline-stats footer (stage times, lift+opt wall clock, function-cache
// hits/misses, cells run/failed, wall clock) goes to stderr so stdout stays
// diffable.
//
// Observability (DESIGN.md §"Observability"):
//
//	-tracefile trace.json   record spans for every pipeline stage, bench
//	                        cell, and guest run; written as Chrome
//	                        trace_event JSON (chrome://tracing, Perfetto)
//	-metrics metrics.prom   enable VM machine counters and write them plus
//	                        the run-wide pipeline stats in Prometheus text
//	                        format at exit
//
// -store DIR backs every project's artifact store with a content-addressed
// disk tier rooted at DIR, so CFGs, trace sessions, optimized function
// bodies, and lowered images persist across polybench invocations: a second
// run over a warm store replays its recompiles from disk and prints
// byte-identical tables (DESIGN.md §3, §"Artifact store"). The per-table
// footer's "disk hits" count shows how much was replayed; corrupted or
// truncated entries degrade to misses, never errors.
//
// -nocache disables the interpreter's predecoded instruction cache (the
// differential-testing escape hatch; output is identical, only slower).
// -nopipecache disables the per-function recompile cache — orthogonal to
// -nocache, so trace/metrics comparisons can isolate each cache.
// -cpuprofile/-memprofile write pprof profiles so perf work on the
// interpreter and pipeline needs no code edits.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/mx"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vm"
)

func main() {
	table := flag.Int("table", 0, "regenerate table N (1-5)")
	figure := flag.Int("figure", 0, "regenerate figure N (4)")
	all := flag.Bool("all", false, "regenerate everything")
	xisa := flag.Bool("xisa", false, "run the cross-ISA target comparison")
	xisaOut := flag.String("xisa-out", "", "write the cross-ISA JSON record (BENCH_xisa.json) to `file`")
	jobs := flag.Int("j", runtime.NumCPU(), "concurrent pipeline cells (1 = serial)")
	jpipe := flag.Int("jpipe", runtime.NumCPU(), "concurrent per-recompile function lifts/optimizations (1 = serial)")
	nocache := flag.Bool("nocache", false, "disable the VM predecoded instruction cache")
	target := flag.String("target", "", "lowering target ISA: mx64 (default) or mx64w (weakly ordered, register-poor)")
	dispatch := flag.String("dispatch", vm.DispatchDefault.String(), "VM dispatch engine: threaded or switch")
	nopipecache := flag.Bool("nopipecache", false, "disable the artifact store (per-function recompile cache and friends)")
	storeDir := flag.String("store", "", "back the artifact store with a disk tier rooted at `dir` (persists across runs)")
	storeMaxMB := flag.Int64("store-max-mb", 0, "prune the disk tier to at most `N` MiB (0 = unbounded)")
	remoteStore := flag.String("remote-store", "", "back the artifact store with a polynimad store service at `url`")
	remoteToken := flag.String("remote-store-token", "", "bearer `token` sent to the remote store service")
	tracefile := flag.String("tracefile", "", "write a Chrome trace_event JSON span trace to `file`")
	metrics := flag.String("metrics", "", "enable VM counters and write Prometheus text metrics to `file`")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to `file`")
	flag.Parse()

	vm.NoCacheDefault = *nocache
	mode, err := vm.ParseDispatchMode(*dispatch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polybench: %v\n", err)
		os.Exit(2)
	}
	vm.DispatchDefault = mode
	if mx.TargetByName(*target) == nil {
		fmt.Fprintf(os.Stderr, "polybench: unknown -target %q (want mx64 or mx64w)\n", *target)
		os.Exit(2)
	}
	// The harness's root trace position, propagated to every -remote-store
	// request so the store daemon's spans and logs carry this run's trace id.
	rootTC := obs.NewTraceContext()
	var tracer *obs.Tracer
	if *tracefile != "" {
		tracer = obs.New()
		tracer.SetTraceContext(rootTC)
	}
	var sink *vm.CounterSink
	if *metrics != "" {
		sink = vm.NewCounterSink()
		vm.CounterSinkDefault = sink
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
	}()

	h := bench.NewHarness(*jobs)
	h.SetPipelineWorkers(*jpipe)
	h.SetNoFuncCache(*nopipecache)
	h.SetTracer(tracer)
	h.SetTarget(*target)
	var tiers []store.Store
	if *storeDir != "" {
		d, err := store.OpenDisk(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "store: %v\n", err)
			os.Exit(1)
		}
		if *storeMaxMB > 0 {
			d.SetMaxBytes(*storeMaxMB << 20)
		}
		tiers = append(tiers, d)
	}
	if *remoteStore != "" {
		r, err := store.NewRemote(*remoteStore, store.RemoteOptions{
			AuthToken:   *remoteToken,
			Traceparent: rootTC.Traceparent(),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "remote-store: %v\n", err)
			os.Exit(1)
		}
		tiers = append(tiers, r)
	}
	backing := store.NewChain(tiers...)
	if backing != nil {
		h.SetStore(backing)
	}

	// total accumulates every section's stats: the per-section footers reset
	// between tables, but the metrics export covers the whole run.
	var total bench.StageSnapshot
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		os.Exit(1)
	}
	// finish writes the trace and metrics files. Called explicitly on both
	// exits (success and first failure) rather than deferred: os.Exit skips
	// deferred calls, and a partial trace of a failed run is exactly what
	// the flag is for.
	finish := func() {
		if tracer != nil {
			if n := tracer.OpenSpans(); n != 0 {
				fmt.Fprintf(os.Stderr, "tracefile: warning: %d span(s) still open\n", n)
			}
			if err := tracer.WriteFile(*tracefile); err != nil {
				fail("tracefile: %v", err)
			}
		}
		if sink != nil {
			var storeStats map[string]store.Counters
			if backing != nil {
				storeStats = backing.Stats()
			}
			if err := bench.BuildMetrics(total, storeStats, sink.Snapshot(), h.Target()).WriteFile(*metrics); err != nil {
				fail("metrics: %v", err)
			}
		}
	}
	run := func(name string, f func() (string, error)) {
		fmt.Printf("==== %s ====\n", name)
		h.ResetStats()
		sp := tracer.Begin(0, "bench", "section", obs.Arg{Key: "name", Val: name})
		txt, err := f()
		sp.End()
		snap := h.Stats()
		total.Add(snap)
		if err != nil {
			fmt.Fprint(os.Stderr, snap.Footer(name, h.Target(), h.Workers(), h.PipelineWorkers()))
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			finish()
			os.Exit(1)
		}
		fmt.Println(txt)
		fmt.Fprint(os.Stderr, snap.Footer(name, h.Target(), h.Workers(), h.PipelineWorkers()))
	}

	want := func(n int, kind string) bool {
		if *all {
			return true
		}
		if kind == "table" {
			return *table == n
		}
		return *figure == n
	}

	any := false
	if want(1, "table") {
		any = true
		run("Table 1", func() (string, error) { _, t, err := h.Table1(); return t, err })
	}
	if want(2, "table") {
		any = true
		run("Table 2", func() (string, error) {
			_, t, err := h.Table2()
			return "Table 2: Phoenix normalized runtimes\n" + t, err
		})
	}
	if want(3, "table") {
		any = true
		run("Table 3", h.Table3)
	}
	if want(4, "table") {
		any = true
		run("Table 4", func() (string, error) { _, t, err := h.Table4(); return t, err })
	}
	if want(5, "table") {
		any = true
		run("Table 5", func() (string, error) { _, t, err := h.Table5(); return t, err })
	}
	if want(4, "figure") {
		any = true
		run("Figure 4", func() (string, error) { _, t, err := h.Figure4(); return t, err })
	}
	if *xisa || *xisaOut != "" {
		any = true
		run("Cross-ISA", func() (string, error) {
			entries, txt, err := h.XISATable()
			if err != nil {
				return "", err
			}
			if *xisaOut != "" {
				if werr := bench.WriteXISA(*xisaOut, entries); werr != nil {
					return "", werr
				}
			}
			return txt, nil
		})
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
	finish()
}
