// mcc compiles mini-C source to a PXE binary image (JSON on stdout or -o).
//
// Usage: mcc [-O 0|2] [-o out.pxe] file.mc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cc"
)

func main() {
	opt := flag.Int("O", 2, "optimization level (0 or 2)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcc [-O 0|2] [-o out.pxe] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	img, _, err := cc.Compile(string(src), cc.Config{Name: flag.Arg(0), Opt: *opt})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := img.Marshal()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
