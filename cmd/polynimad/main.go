// polynimad is the fleet recompile daemon: a long-running HTTP service
// (internal/serve) holding one shared tiered artifact store, so every
// recompile/trace/additive job any client submits warms the cache for the
// next — across requests, not just within one process's lifetime like the
// polynima CLI.
//
// Usage:
//
//	polynimad [-listen addr] [-store dir [-store-max-mb N]]
//	          [-remote-store url [-remote-store-token tok]]
//	          [-auth-token tok] [-max-inflight N [-max-queue N]]
//	          [-max-inflight-store N [-max-queue-store N]]
//	          [-quota-rps R [-quota-burst N]]
//	          [-jpipe N] [-tracefile file] [-log-format json|text]
//
// The backing tier composes -store (local disk, optionally size-pruned)
// over -remote-store (an upstream polynimad or any server speaking the
// /store/v1 protocol), probed in that order. Clients are the polynima and
// polybench -remote-store flags, curl against /v1/*, or another polynimad
// chaining through its own -remote-store.
//
// The hardening flags (DESIGN.md §7): -auth-token requires clients to
// present the token as "Authorization: Bearer"; -max-inflight/-max-queue
// bound concurrent jobs (overload is shed as 429 + Retry-After), with the
// -store variants bounding /store/v1/* blob requests separately; -quota-rps
// rate-limits each client. A client that disconnects mid-job has its
// pipeline cancelled and its worker slot freed.
//
// Observability (DESIGN.md §6): -log-format json|text enables the
// structured access log on stderr — one line per request with the trace id,
// client token digest, kind, outcome, queue wait, duration, and byte counts
// (raw tokens never appear). Requests carrying a W3C traceparent header join
// the client's distributed trace; the daemon allocates itself a root trace
// position at startup and propagates it upstream on every chained
// -remote-store request. /metrics serves latency histograms, Go runtime
// gauges, and polynima_build_info; /debug/pprof/* is gated behind
// -auth-token when one is set.
//
// Shutdown is graceful: SIGINT/SIGTERM flips /healthz to 503 (so load
// balancers drain the daemon), waits out in-flight jobs (bounded), then
// writes the span trace when -tracefile is set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/mx"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/vm"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8473", "listen `address`")
	storeDir := flag.String("store", "", "back the shared store with a disk tier rooted at `dir`")
	storeMaxMB := flag.Int64("store-max-mb", 0, "prune the disk tier to at most `N` MiB (0 = unbounded)")
	remoteStore := flag.String("remote-store", "", "chain an upstream store service at `url` under the disk tier")
	remoteToken := flag.String("remote-store-token", "", "bearer `token` sent to the upstream store service")
	authToken := flag.String("auth-token", "", "require clients to present this bearer `token` (401 otherwise)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing jobs, 0 = unlimited")
	maxQueue := flag.Int("max-queue", 0, "over-limit jobs that wait for a slot instead of a 429, 0 = shed immediately")
	maxInflightStore := flag.Int("max-inflight-store", 0, "max concurrent /store/v1 requests, 0 = unlimited")
	maxQueueStore := flag.Int("max-queue-store", 0, "over-limit store requests that wait, 0 = shed immediately")
	quotaRPS := flag.Float64("quota-rps", 0, "per-client sustained requests/second, 0 = no quotas")
	quotaBurst := flag.Int("quota-burst", 0, "per-client burst capacity, 0 = 2x quota-rps")
	jpipe := flag.Int("jpipe", runtime.NumCPU(), "concurrent per-job function lifts/optimizations (1 = serial)")
	tracefile := flag.String("tracefile", "", "write a Chrome trace_event JSON span trace to `file` at shutdown")
	logFormat := flag.String("log-format", "", "structured access log on stderr: json or text (default off)")
	dispatch := flag.String("dispatch", vm.DispatchDefault.String(), "VM dispatch engine for job runs: threaded or switch")
	target := flag.String("target", "", "default lowering target ISA for jobs: mx64 (default) or mx64w; jobs override with ?target=")
	flag.Parse()

	mode, err := vm.ParseDispatchMode(*dispatch)
	check(err)
	vm.DispatchDefault = mode

	var logger *slog.Logger
	switch *logFormat {
	case "":
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	default:
		check(fmt.Errorf("polynimad: -log-format %q: want json or text", *logFormat))
	}

	// The daemon's root trace position: jobs that arrive without a
	// traceparent start their own traces, but the daemon's upstream store
	// requests (a chained -remote-store) all ride under this one.
	rootTC := obs.NewTraceContext()
	var tracer *obs.Tracer
	if *tracefile != "" {
		tracer = obs.New()
		tracer.SetTraceContext(rootTC)
	}

	var tiers []store.Store
	if *storeDir != "" {
		d, err := store.OpenDisk(*storeDir)
		check(err)
		if *storeMaxMB > 0 {
			d.SetMaxBytes(*storeMaxMB << 20)
		}
		tiers = append(tiers, d)
	}
	if *remoteStore != "" {
		r, err := store.NewRemote(*remoteStore, store.RemoteOptions{
			AuthToken:   *remoteToken,
			Traceparent: rootTC.Traceparent(),
		})
		check(err)
		tiers = append(tiers, r)
	}

	opts := core.DefaultOptions()
	opts.Workers = *jpipe
	if mx.TargetByName(*target) == nil {
		check(fmt.Errorf("polynimad: unknown -target %q (want mx64 or mx64w)", *target))
	}
	opts.Target = *target
	s := serve.New(serve.Config{
		Opts:             opts,
		Backing:          store.NewChain(tiers...),
		Tracer:           tracer,
		AuthToken:        *authToken,
		MaxInflightJobs:  *maxInflight,
		MaxQueueJobs:     *maxQueue,
		MaxInflightStore: *maxInflightStore,
		MaxQueueStore:    *maxQueueStore,
		QuotaRPS:         *quotaRPS,
		QuotaBurst:       *quotaBurst,
		Logger:           logger,
	})

	srv := &http.Server{Addr: *listen, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "polynimad: listening on %s\n", *listen)
		errc <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		check(err) // bind failure etc. — Shutdown was never reachable
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "polynimad: shutting down")
		// Flip /healthz to 503 first, so load balancers stop routing here
		// while Shutdown waits out the in-flight jobs.
		s.BeginDrain()
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "polynimad: shutdown: %v\n", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "polynimad: %v\n", err)
		}
	}

	if tracer != nil {
		if err := tracer.WriteFile(*tracefile); err != nil {
			fmt.Fprintf(os.Stderr, "polynimad: tracefile: %v\n", err)
			os.Exit(1)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
