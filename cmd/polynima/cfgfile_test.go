package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
)

const fptrSrc = `
extern input_byte;
func h_add(x) { return x + 10; }
func h_mul(x) { return x * 10; }
func h_neg(x) { return -x; }
var table[3];
func main() {
	store64(table, h_add);
	store64(table + 8, h_mul);
	store64(table + 16, h_neg);
	var sum = 0;
	var c = input_byte();
	while (c != -1) {
		var f = load64(table + (c - '0') * 8);
		sum = sum + f(7);
		c = input_byte();
	}
	return sum;
}`

// TestCFGCheckpointResume runs an additive session with a -cfg checkpoint,
// then resumes from the file in a second session: the resumed project starts
// from the converged graph, so the loop integrates no further misses.
func TestCFGCheckpointResume(t *testing.T) {
	img, _, err := cc.Compile(fptrSrc, cc.Config{Name: "t", Opt: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.cfg.json")
	in := core.Input{Data: []byte("012"), Seed: 3}

	p1, resumed, err := resumeProject(img, path, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("fresh session claims to have resumed")
	}
	res1, err := p1.RunAdditive(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Recompiles < 3 {
		t.Fatalf("recompiles = %d, want >= 3 (three unknown handlers)", res1.Recompiles)
	}

	p2, resumed, err := resumeProject(img, path, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("second session did not resume from the checkpoint")
	}
	res2, err := p2.RunAdditive(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Recompiles != 0 {
		t.Fatalf("resumed session looped %d times; the checkpointed CFG already covers every target", res2.Recompiles)
	}
	if res2.Result.ExitCode != res1.Result.ExitCode {
		t.Fatalf("resumed exit %d, original %d", res2.Result.ExitCode, res1.Result.ExitCode)
	}
}

func TestLoadCFGMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	g, err := loadCFG(filepath.Join(dir, "absent.json"))
	if err != nil || g != nil {
		t.Fatalf("missing checkpoint: got (%v, %v), want (nil, nil)", g, err)
	}
	bad := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(bad, []byte(`{"Blocks": [tru`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCFG(bad); err == nil {
		t.Fatal("corrupt checkpoint did not error")
	}
}
