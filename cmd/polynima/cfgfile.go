package main

import (
	"fmt"
	"os"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/store"
)

// CFG checkpoint file for the additive loop (-cfg): the evolving graph is
// persisted after every miss batch the loop integrates, so a later run —
// or a run killed mid-session — resumes from the last complete checkpoint
// instead of re-discovering every indirect target. Writes go through
// store.WriteFileAtomic (temp file + rename in the target directory), so a
// crash at any instant leaves either the previous checkpoint or the new
// one, never a torn file.

// loadCFG reads a previously checkpointed graph. A missing file is a fresh
// start (nil, nil); an unreadable or unparsable file is an error — the
// atomic writer never produces one, so it signals outside interference and
// silently dropping it would discard the user's accumulated session.
func loadCFG(path string) (*cfg.Graph, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	g, err := cfg.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w (delete the file to restart discovery)", path, err)
	}
	return g, nil
}

// saveCFG returns the core.Project OnCFGUpdate hook that checkpoints the
// graph to path after each additive miss batch.
func saveCFG(path string) func(*cfg.Graph) error {
	return func(g *cfg.Graph) error {
		data, err := g.Marshal()
		if err != nil {
			return err
		}
		return store.WriteFileAtomic(path, data, 0o644)
	}
}

// resumeProject builds the additive project, resuming from the checkpoint
// at cfgPath when one exists.
func resumeProject(img *image.Image, cfgPath string, opts core.Options) (*core.Project, bool, error) {
	if cfgPath == "" {
		p, err := core.NewProject(img, opts)
		return p, false, err
	}
	g, err := loadCFG(cfgPath)
	if err != nil {
		return nil, false, err
	}
	var p *core.Project
	resumed := false
	if g != nil {
		p = core.NewProjectWithGraph(img, g, opts)
		resumed = true
	} else {
		p, err = core.NewProject(img, opts)
		if err != nil {
			return nil, false, err
		}
	}
	p.OnCFGUpdate = saveCFG(cfgPath)
	// Checkpoint the starting graph too, so even a session that dies before
	// its first discovery leaves a resumable file.
	if err := p.OnCFGUpdate(p.Graph); err != nil {
		return nil, false, err
	}
	return p, resumed, nil
}
