// polynima is the command-line recompiler: project management, disassembly,
// ICFT tracing, lifting, (additive) recompilation, and execution of PXE
// binaries on the bundled MX64 machine.
//
// Usage:
//
//	polynima disasm  prog.pxe               print the recovered CFG (JSON)
//	polynima run     prog.pxe [-in file]    execute a binary
//	polynima recompile prog.pxe -o out.pxe  [-trace] [-fence-opt] [-prune]
//	                                        [-target mx64|mx64w]
//	polynima additive  prog.pxe [-in file]  run with the additive loop
//
// -store DIR backs the project's artifact store with a content-addressed
// disk tier, so a repeated recompile of the same binary replays its CFG,
// trace sessions, optimized function bodies, and lowered image from disk —
// with byte-identical output (DESIGN.md §3). -store-max-mb bounds that
// directory: the disk tier prunes its least-recently-modified entries back
// under the limit instead of growing monotonically.
//
// -remote-store URL adds a polynimad store service as a further backing
// tier, probed after the disk tier and written through alongside it, so a
// fleet of clients shares one warm store. Every remote failure — timeout,
// 5xx, corrupt frame — degrades to a counted miss: a dead daemon can slow
// a recompile down, never change its bytes.
//
// -cfg FILE (additive only) checkpoints the evolving CFG to FILE after
// every integrated miss batch, via an atomic temp-file + rename, and
// resumes discovery from the checkpoint on the next run — a session killed
// mid-loop loses at most the batch in flight, never the file.
//
// -tracefile FILE records a Chrome trace_event span trace of the pipeline.
// -traceparent joins an enclosing distributed trace (a driving orchestrator
// or CI job): the CLI takes a child position under it, and every
// -remote-store request propagates the position as a W3C traceparent
// header, so the store daemon's spans, access log, and
// X-Polynima-Trace-Id all carry the same trace id as the caller's.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/mx"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vm"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	inFile := fs.String("in", "", "input byte stream file")
	outFile := fs.String("o", "", "output image")
	doTrace := fs.Bool("trace", false, "run the ICFT tracer before lifting")
	fenceOpt := fs.Bool("fence-opt", false, "run spinloop detection and remove fences when provable")
	prune := fs.Bool("prune", false, "run the callback-usage analysis and prune wrappers")
	seed := fs.Int64("seed", 1, "scheduler seed")
	target := fs.String("target", "", "lowering target ISA: mx64 (default) or mx64w (weakly ordered, register-poor)")
	storeDir := fs.String("store", "", "back the artifact store with a disk tier rooted at `dir`")
	storeMaxMB := fs.Int64("store-max-mb", 0, "prune the disk tier to at most `N` MiB (0 = unbounded)")
	remoteStore := fs.String("remote-store", "", "back the artifact store with a polynimad store service at `url`")
	remoteToken := fs.String("remote-store-token", "", "bearer `token` sent to the remote store service")
	cfgPath := fs.String("cfg", "", "additive: checkpoint the evolving CFG to `file` (atomic write) and resume from it")
	dispatch := fs.String("dispatch", vm.DispatchDefault.String(), "VM dispatch engine: threaded or switch")
	tracefile := fs.String("tracefile", "", "write a Chrome trace_event JSON span trace to `file`")
	traceparent := fs.String("traceparent", "", "join an enclosing distributed trace (W3C traceparent `value`)")
	imgPath := os.Args[2]
	_ = fs.Parse(os.Args[3:])

	mode, err := vm.ParseDispatchMode(*dispatch)
	check(err)
	vm.DispatchDefault = mode

	// The process's trace position: a child of -traceparent when one was
	// given (so this run's remote store ops land in the caller's trace),
	// otherwise a fresh root.
	rootTC := obs.NewTraceContext()
	if *traceparent != "" {
		parsed, ok := obs.ParseTraceparent(*traceparent)
		if !ok {
			fmt.Fprintf(os.Stderr, "polynima: -traceparent %q is not a valid W3C traceparent; starting a new trace\n", *traceparent)
		} else {
			rootTC = parsed.Child()
		}
	}
	var tracer *obs.Tracer
	if *tracefile != "" {
		tracer = obs.New()
		tracer.SetTraceContext(rootTC)
	}
	// finishTrace writes the span trace; called explicitly before every exit
	// path because os.Exit skips deferred calls.
	finishTrace := func() {
		if tracer == nil {
			return
		}
		if err := tracer.WriteFile(*tracefile); err != nil {
			fmt.Fprintf(os.Stderr, "polynima: tracefile: %v\n", err)
			os.Exit(1)
		}
	}

	opts := core.DefaultOptions()
	opts.Obs = tracer
	if mx.TargetByName(*target) == nil {
		fmt.Fprintf(os.Stderr, "polynima: unknown -target %q (want mx64 or mx64w)\n", *target)
		os.Exit(2)
	}
	opts.Target = *target
	var tiers []store.Store
	if *storeDir != "" {
		d, err := store.OpenDisk(*storeDir)
		check(err)
		if *storeMaxMB > 0 {
			d.SetMaxBytes(*storeMaxMB << 20)
		}
		tiers = append(tiers, d)
	}
	if *remoteStore != "" {
		r, err := store.NewRemote(*remoteStore, store.RemoteOptions{
			AuthToken:   *remoteToken,
			Traceparent: rootTC.Traceparent(),
		})
		check(err)
		tiers = append(tiers, r)
	}
	opts.Store = store.NewChain(tiers...)

	data, err := os.ReadFile(imgPath)
	check(err)
	img, err := image.Unmarshal(data)
	check(err)

	var input []byte
	if *inFile != "" {
		input, err = os.ReadFile(*inFile)
		check(err)
	}
	in := core.Input{Data: input, Seed: *seed}

	switch cmd {
	case "disasm":
		p, err := core.NewProject(img, opts)
		check(err)
		out, err := p.Graph.Marshal()
		check(err)
		os.Stdout.Write(out)
	case "run":
		m, err := vm.New(img, *seed)
		check(err)
		if input != nil {
			m.SetInput(input)
		}
		res := m.Run(4_000_000_000)
		fmt.Print(res.Output)
		finishTrace()
		if res.Fault != nil {
			fmt.Fprintln(os.Stderr, res.Fault)
			os.Exit(1)
		}
		os.Exit(res.ExitCode)
	case "recompile":
		p, err := core.NewProject(img, opts)
		check(err)
		if *doTrace {
			_, err := p.Trace([]core.Input{in})
			check(err)
		}
		if *prune {
			check(p.PruneCallbacks([]core.Input{in}))
		}
		if *fenceOpt {
			rep, err := p.FenceOptimize([]core.Input{in})
			check(err)
			fmt.Fprintf(os.Stderr, "spinloop analysis: %d non-spinning, %d spinning, %d uncovered; fences removable: %v\n",
				rep.NonSpinning, rep.Spinning, rep.Uncovered, rep.FencesRemovable)
		}
		rec, err := p.Recompile()
		check(err)
		out, err := rec.Marshal()
		check(err)
		if *outFile == "" {
			os.Stdout.Write(out)
		} else {
			check(os.WriteFile(*outFile, out, 0o644))
		}
		fmt.Fprintf(os.Stderr, "recompiled: %d funcs, %d blocks, %d bytes of new code, pipeline %s\n",
			p.Stats.Funcs, p.Stats.Blocks, p.Stats.CodeSize, p.Stats.Total())
		if opts.Store != nil {
			fmt.Fprint(os.Stderr, storeStatsLine(p, opts.Store))
		}
	case "additive":
		p, resumed, err := resumeProject(img, *cfgPath, opts)
		check(err)
		if resumed {
			fmt.Fprintf(os.Stderr, "additive: resuming from CFG checkpoint %s\n", *cfgPath)
		}
		res, err := p.RunAdditive(in, 64)
		check(err)
		fmt.Print(res.Result.Output)
		fmt.Fprintf(os.Stderr, "additive: %d recompilation loops, %d misses integrated\n",
			res.Recompiles, len(res.Misses))
		finishTrace()
		os.Exit(res.Result.ExitCode)
	default:
		usage()
	}
	finishTrace()
}

// storeStatsLine renders this run's per-tier store outcomes: the memory
// tier from the project's counters, the backing tiers from their own stats
// (which also count the swallowed errors, corrupt rejects, and retries the
// pipeline only ever observes as misses).
func storeStatsLine(p *core.Project, backing store.Store) string {
	parts := []string{fmt.Sprintf("mem hits %d, misses %d",
		p.Stats.StoreMemHits, p.Stats.StoreMemMisses)}
	st := backing.Stats()
	tiers := make([]string, 0, len(st))
	for tier := range st {
		tiers = append(tiers, tier)
	}
	sort.Strings(tiers)
	for _, tier := range tiers {
		c := st[tier]
		parts = append(parts, fmt.Sprintf("%s hits %d, misses %d, errors %d, retries %d",
			tier, c.Hits, c.Misses, c.Errors, c.Retries))
	}
	return "store: " + strings.Join(parts, " | ") + "\n"
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: polynima disasm|run|recompile|additive prog.pxe [flags]")
	os.Exit(2)
}
