// Package-level benchmarks: one testing.B benchmark per table and figure of
// the paper's evaluation. `go test -bench=. -benchmem` runs quick versions;
// `go run ./cmd/polybench -all` prints the full formatted tables.
package main_test

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/bench"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/lifter"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// BenchmarkTable1SupportMatrix runs the full support matrix (Polynima +
// four baselines over every benchmark family).
func BenchmarkTable1SupportMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Polynima != "ok" {
				b.Fatalf("Polynima must support %s: %s", r.Name, r.Polynima)
			}
		}
	}
}

// BenchmarkTable2Phoenix regenerates the Phoenix normalized-runtime table.
func BenchmarkTable2Phoenix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, txt, err := bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatalf("expected 7 Phoenix rows, got %d", len(rows))
		}
		b.Log("\n" + txt)
	}
}

// BenchmarkTable3Gapbs regenerates the graph-kernel table (both widths).
func BenchmarkTable3Gapbs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		txt, err := bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + txt)
	}
}

// BenchmarkTable4LiftTimes regenerates the lifting-time comparison.
func BenchmarkTable4LiftTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, txt, err := bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
		// The emulator-coupled baseline must be far slower in aggregate
		// (tiny inputs can tie on individual rows).
		var pSum, bSum float64
		for _, r := range rows {
			pSum += float64(r.Polynima)
			bSum += float64(r.BinRec)
		}
		if bSum <= 2*pSum {
			b.Fatalf("BinRec-like total (%.0fms) must far exceed Polynima total (%.0fms)",
				bSum/1e6, pSum/1e6)
		}
		b.Log("\n" + txt)
	}
}

// BenchmarkTable5CKit regenerates the spinlock-latency table.
func BenchmarkTable5CKit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, txt, err := bench.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 11 {
			b.Fatalf("expected 11 locks, got %d", len(rows))
		}
		b.Log("\n" + txt)
	}
}

// BenchmarkFigure4Additive regenerates the additive-vs-incremental series.
func BenchmarkFigure4Additive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, txt, err := bench.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		// Once the CFG has converged (an input that triggered no recompiles
		// after earlier inputs grew the graph), an additive run is a pure
		// native execution and must beat an emulator-coupled trace on at
		// least one such point.
		win := false
		for i, pt := range pts {
			if i > 0 && pt.Recompiles == 0 && pt.Additive < pt.Incremental {
				win = true
			}
		}
		if !win {
			b.Fatalf("no converged additive run beat incremental: %+v", pts)
		}
		b.Log("\n" + txt)
	}
}

// --- microbenchmarks of the pipeline stages ---------------------------------

func BenchmarkPipelineStages(b *testing.B) {
	w := workloads.ByName("mcf_like")
	img, err := w.Compile(2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("disasm+lift+opt+lower", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := core.NewProject(img, core.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Recompile(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("icft-trace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := core.NewProject(img, core.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Trace(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binrec-like-lift", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baselines.BinRecLike(img, nil, 1, bench.Fuel, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAtomicTranslation compares the Listing 1 (naive, global-lock) and
// Listing 2 (optimized, cmpxchg) atomic translations under contention.
func BenchmarkAtomicTranslation(b *testing.B) {
	src := `
extern thread_create;
extern thread_join;
var c = 0;
func w(a) {
	var i;
	for (i = 0; i < 2000; i = i + 1) { atomic_add(&c, 1); }
	return 0;
}
func main() {
	var t1 = thread_create(w, 0);
	var t2 = thread_create(w, 0);
	thread_join(t1);
	thread_join(t2);
	return 0;
}`
	img, _, err := cc.Compile(src, cc.Config{Name: "at", Opt: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, naive := range []bool{false, true} {
		name := "listing2-optimized"
		if naive {
			name = "listing1-naive"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.NaiveAtomics = naive
			p, err := core.NewProject(img, opts)
			if err != nil {
				b.Fatal(err)
			}
			rec, err := p.Recompile()
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m, err := vm.New(rec, 3)
				if err != nil {
					b.Fatal(err)
				}
				res := m.Run(bench.Fuel)
				if res.Fault != nil {
					b.Fatal(res.Fault)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "guest-cycles")
		})
	}
	_ = lifter.ExtLock
}
