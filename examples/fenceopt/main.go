// Fence optimization walkthrough (§3.4, RQ3): detect whether a binary
// implements implicit synchronization primitives, and remove the Lasagne
// fences when it provably does not.
//
//	go run ./examples/fenceopt
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/vm"
)

// dataParallel synchronizes only through pthread-style joins: every loop is
// non-spinning, so the fences inserted at lift time are superfluous.
const dataParallel = `
extern thread_create;
extern thread_join;
var out[4];
func worker(arg) {
	var s = 0;
	var i;
	for (i = 0; i < 2000; i = i + 1) { s = s + load64(out + arg * 8) + i * arg; }
	store64(out + arg * 8, s);
	return 0;
}
func main() {
	var tids[4];
	var i;
	for (i = 0; i < 4; i = i + 1) { tids[i] = thread_create(worker, i); }
	for (i = 0; i < 4; i = i + 1) { thread_join(tids[i]); }
	var t = 0;
	for (i = 0; i < 4; i = i + 1) { t = t + load64(out + i * 8); }
	return t % 251;
}`

// spinlocked implements its own spinlock — an implicit primitive the
// analysis must detect (fences stay).
const spinlocked = `
extern thread_create;
extern thread_join;
var lock = 0;
var count = 0;
func worker(arg) {
	var i;
	for (i = 0; i < 200; i = i + 1) {
		while (atomic_cas(&lock, 0, 1) == 0) { }
		count = count + 1;
		store64(&lock, 0);
	}
	return 0;
}
func main() {
	var t1 = thread_create(worker, 0);
	var t2 = thread_create(worker, 0);
	thread_join(t1);
	thread_join(t2);
	return count % 251;
}`

func analyze(name, src string) {
	img, _, err := cc.Compile(src, cc.Config{Name: name, Opt: 2})
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewProject(img, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := p.FenceOptimize([]core.Input{{Seed: 7}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d loops analyzed — %d non-spinning, %d spinning, %d uncovered\n",
		name, len(rep.Loops), rep.NonSpinning, rep.Spinning, rep.Uncovered)
	for _, l := range rep.Loops {
		if l.Spinning {
			fmt.Printf("  spinloop in %s at %#x: %s\n", l.Func, l.Header, l.Reason)
		}
	}
	fmt.Printf("  => fences removable: %v\n", rep.FencesRemovable)

	rec, err := p.Recompile()
	if err != nil {
		log.Fatal(err)
	}
	m, _ := vm.New(img, 7)
	orig := m.Run(2_000_000_000)
	m2, _ := vm.New(rec, 7)
	res := m2.Run(2_000_000_000)
	if res.ExitCode != orig.ExitCode {
		log.Fatalf("%s: divergence %d vs %d", name, orig.ExitCode, res.ExitCode)
	}
	fmt.Printf("  recompiled: correct, %.2fx of original\n\n",
		float64(res.Cycles)/float64(orig.Cycles))
}

func main() {
	analyze("data-parallel", dataParallel)
	analyze("spinlocked", spinlocked)
}
