// Additive lifting (§3.2): a binary that dispatches through function
// pointers cannot be fully resolved statically. The statically recompiled
// output reports a control-flow miss at run time; the additive loop
// integrates the discovered target into the on-disk CFG, re-runs the
// pipeline, and restarts — converging to a binary that supports the path.
//
//	go run ./examples/additive
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
)

const src = `
extern input_byte;
extern print_str;
func op_inc(x) { return x + 1; }
func op_dbl(x) { return x * 2; }
func op_neg(x) { return -x; }
var ops[3];
func main() {
	store64(ops, op_inc);
	store64(ops + 8, op_dbl);
	store64(ops + 16, op_neg);
	var acc = 5;
	var c = input_byte();
	while (c != -1) {
		var f = load64(ops + (c - 'a') * 8);
		acc = f(acc);
		c = input_byte();
	}
	return acc;
}`

func main() {
	img, _, err := cc.Compile(src, cc.Config{Name: "additive", Opt: 2})
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewProject(img, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// "abc" exercises all three dispatch targets; none is statically known.
	res, err := p.RunAdditive(core.Input{Data: []byte("abc"), Seed: 1}, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first session: exit=%d after %d recompilation loops\n",
		res.Result.ExitCode, res.Recompiles)
	for i, miss := range res.Misses {
		fmt.Printf("  miss %d: site %#x -> new target %#x (integrated)\n",
			i+1, miss.Site, miss.Target)
	}

	// The grown CFG persists in the project: new inputs over known paths
	// run natively with no further recompilation.
	res2, err := p.RunAdditive(core.Input{Data: []byte("cba"), Seed: 2}, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second session: exit=%d after %d recompilation loops\n",
		res2.Result.ExitCode, res2.Recompiles)
}
