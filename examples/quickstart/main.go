// Quickstart: compile a multithreaded mini-C program, recompile it with
// Polynima, and run both binaries on the bundled MX64 machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/vm"
)

const src = `
extern thread_create;
extern thread_join;
extern print_str;
extern print_i64;
var total = 0;
func worker(arg) {
	var i;
	for (i = 0; i < 1000; i = i + 1) { atomic_add(&total, arg); }
	return 0;
}
func main() {
	var t1 = thread_create(worker, 1);
	var t2 = thread_create(worker, 2);
	thread_join(t1);
	thread_join(t2);
	print_str("total=");
	print_i64(total);
	return 0;
}`

func main() {
	// 1. "Legacy binary": compile the program (gcc -O2 stand-in).
	img, _, err := cc.Compile(src, cc.Config{Name: "quickstart", Opt: 2})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run the original.
	m, err := vm.New(img, 1)
	if err != nil {
		log.Fatal(err)
	}
	orig := m.Run(1_000_000_000)
	fmt.Printf("original:   %s (exit %d, %d cycles)\n",
		trim(orig.Output), orig.ExitCode, orig.Cycles)

	// 3. Recompile: disassemble, lift to PIR, optimize, lower.
	p, err := core.NewProject(img, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rec, err := p.Recompile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recompiled: %d funcs, %d blocks -> %d bytes of new code in %s\n",
		p.Stats.Funcs, p.Stats.Blocks, p.Stats.CodeSize, p.Stats.Total())

	// 4. Run the standalone replacement binary.
	m2, err := vm.New(rec, 1)
	if err != nil {
		log.Fatal(err)
	}
	res := m2.Run(1_000_000_000)
	fmt.Printf("replacement: %s (exit %d, %d cycles, %.2fx)\n",
		trim(res.Output), res.ExitCode, res.Cycles,
		float64(res.Cycles)/float64(orig.Cycles))
	if res.Output != orig.Output || res.ExitCode != orig.ExitCode {
		log.Fatal("behaviour diverged!")
	}
	fmt.Println("behaviour preserved ✓")
}

func trim(s string) string {
	if len(s) > 0 && s[len(s)-1] == '\n' {
		return s[:len(s)-1]
	}
	return s
}
