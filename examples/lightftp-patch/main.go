// RQ1 (§4.1): retrofitting a mitigation for CVE-2023-24042 into an FTP
// server binary.
//
// The server reuses one session context across handler threads: USER
// overwrites context->FileName while a LIST handler blocked on the data
// connection still holds it — a directory-traversal race. The fix is a
// ~50-line recompiler pass: instrument the fs_stat and dir_list calls (the
// stat/opendir pair of the original report), compare the path the handler
// uses against the path that was validated, and divert to a runtime handler
// on mismatch.
//
//	go run ./examples/lightftp-patch
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lifter"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	img, _, err := cc.Compile(workloads.LightFTPSource(), cc.Config{Name: "lightftp", Opt: 2})
	if err != nil {
		log.Fatal(err)
	}
	exts := workloads.LightFTPExts()

	exploit := workloads.LightFTPExploit()

	// 1. The unpatched binary is vulnerable: the handler lists the
	// USER-overwritten path.
	m, _ := vm.NewWithExts(img, 1, exts)
	m.SetInput(exploit)
	res := m.Run(1_000_000_000)
	fmt.Printf("unpatched exploit output:\n%s\n", res.Output)

	// 2. Recompile with the detection pass: a custom IR transformation that
	// records the stat'ed path and checks it at the dir_list site.
	p, err := core.NewProject(img, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	// Trace sessions covering every command so the dispatch table's
	// indirect targets are known (hybrid control-flow recovery).
	if _, err := p.Trace([]core.Input{
		{Data: []byte("U/home\nL/pub\nD\nQ\n"), Seed: 1, Exts: exts},
	}); err != nil {
		log.Fatal(err)
	}
	lf, _, err := p.LiftForDebug()
	if err != nil {
		log.Fatal(err)
	}
	instrumentPathChecks(lf.Mod) // <- the "patch": a compiler pass
	if err := opt.Run(lf.Mod, opt.Options{}); err != nil {
		log.Fatal(err)
	}
	low, err := lower.Lower(lf)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The runtime component: remembers validated paths, flags mismatches.
	validated := map[string]bool{}
	alerts := 0
	patched := map[string]vm.ExtFunc{}
	for k, v := range exts {
		patched[k] = v
	}
	patched["__patch_stat_path"] = func(m *vm.Machine, t *vm.Thread) error {
		if s, ok := m.Mem.CString(t.Regs[7]); ok {
			validated[s] = true
		}
		return nil
	}
	patched["__patch_check_path"] = func(m *vm.Machine, t *vm.Thread) error {
		s, _ := m.Mem.CString(t.Regs[7])
		if !validated[s] {
			alerts++
			m.Out.WriteString("[patch] BLOCKED: listing unvalidated path " + s + "\n")
			// Mitigation: neutralize the request by pointing the handler
			// at an empty path (operator policy; could also stop the
			// server or log for forensics).
			m.Mem.WriteBytes(t.Regs[7], []byte{0})
		}
		return nil
	}

	m2, err := vm.NewWithExts(low.Img, 1, patched)
	if err != nil {
		log.Fatal(err)
	}
	m2.SetInput(exploit)
	res2 := m2.Run(1_000_000_000)
	fmt.Printf("patched exploit output:\n%s\n", res2.Output)
	fmt.Printf("alerts raised: %d\n", alerts)
	if alerts == 0 {
		log.Fatal("patch did not detect the exploit")
	}

	// 4. Benign sessions pass through untouched.
	m3, _ := vm.NewWithExts(low.Img, 1, patched)
	m3.SetInput([]byte("L/pub\nD\nQ\n"))
	res3 := m3.Run(1_000_000_000)
	fmt.Printf("benign session on patched binary:\n%s\n", res3.Output)
}

// instrumentPathChecks is the LLVM-pass analogue: for every external call to
// fs_stat insert a __patch_stat_path call with the same path argument, and
// for every dir_list call insert __patch_check_path.
func instrumentPathChecks(m *ir.Module) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Insts); i++ {
				v := b.Insts[i]
				if v.Op != ir.OpCallExt {
					continue
				}
				var hook string
				switch v.ExtName {
				case "fs_stat":
					hook = "__patch_stat_path"
				case "dir_list":
					hook = "__patch_check_path"
				default:
					continue
				}
				call := f.NewValue(ir.OpCallExt)
				call.ExtName = hook
				call.Args = []*ir.Value{v.Args[0]} // the path argument
				b.InsertBefore(call, i)
				i++
			}
		}
	}
	_ = lifter.ExtMiss
}
