// Package cfg defines the control-flow-graph representation shared by the
// whole recompilation pipeline, together with its on-disk JSON form.
//
// This is the contract the paper establishes around its radare2 wrapper: a
// JSON CFG listing functions, the basic blocks belonging to them, and the
// direct control transfers between blocks. Indirect terminators carry a set
// of known targets that is grown by three mechanisms (§3.2): static
// jump-table heuristics (internal/disasm), the ICFT tracer
// (internal/tracer), and additive lifting (internal/core), which appends
// newly discovered targets to the on-disk graph and re-runs the pipeline.
package cfg

import (
	"encoding/json"
	"fmt"
	"sort"
)

// TermKind classifies how a basic block ends.
type TermKind string

const (
	TermJmp     TermKind = "jmp"     // direct jump
	TermJcc     TermKind = "jcc"     // conditional: target + fallthrough
	TermJmpInd  TermKind = "jmpind"  // indirect jump (JMPR/JMPM)
	TermCall    TermKind = "call"    // direct call; fallthrough = return site
	TermCallInd TermKind = "callind" // indirect call
	TermCallExt TermKind = "callext" // external (import) call
	TermRet     TermKind = "ret"
	TermHalt    TermKind = "halt" // hlt / ud2 / syscall
	TermFall    TermKind = "fall" // block split point: falls into next block
)

// Block is one basic block of original machine code.
type Block struct {
	Addr uint64   `json:"addr"`
	Size uint64   `json:"size"` // encoded bytes
	Term TermKind `json:"term"`
	// Targets are the known control-transfer targets of the terminator:
	// the encoded target for direct jumps/calls, and the discovered target
	// set for indirect ones (static heuristics + tracing + additive).
	Targets []uint64 `json:"targets,omitempty"`
	// Fall is the address execution falls to when the terminator does not
	// transfer (jcc untaken, call return, block split); 0 if none.
	Fall uint64 `json:"fall,omitempty"`
	// Ext is the import index for callext terminators.
	Ext uint16 `json:"ext,omitempty"`
}

// HasTarget reports whether addr is already a known target of b.
func (b *Block) HasTarget(addr uint64) bool {
	for _, t := range b.Targets {
		if t == addr {
			return true
		}
	}
	return false
}

// AddTarget adds addr to b's target set if new, keeping the set sorted.
// It reports whether the set changed.
func (b *Block) AddTarget(addr uint64) bool {
	if b.HasTarget(addr) {
		return false
	}
	b.Targets = append(b.Targets, addr)
	sort.Slice(b.Targets, func(i, j int) bool { return b.Targets[i] < b.Targets[j] })
	return true
}

// Func is a recovered function: an entry point plus the set of blocks
// reachable from it through intraprocedural edges.
type Func struct {
	Entry  uint64   `json:"entry"`
	Blocks []uint64 `json:"blocks"` // sorted block addresses
}

// Graph is the whole-program CFG.
type Graph struct {
	Entry  uint64            `json:"entry"`
	Funcs  []*Func           `json:"funcs"`
	Blocks map[uint64]*Block `json:"-"`
	// BlockList is the serialized form of Blocks (JSON maps cannot have
	// integer keys without string round-trips).
	BlockList []*Block `json:"blocks"`
}

// NewGraph returns an empty graph.
func NewGraph(entry uint64) *Graph {
	return &Graph{Entry: entry, Blocks: map[uint64]*Block{}}
}

// Func returns the function with the given entry, or nil.
func (g *Graph) Func(entry uint64) *Func {
	for _, f := range g.Funcs {
		if f.Entry == entry {
			return f
		}
	}
	return nil
}

// AddFunc records a function entry if new and returns it.
func (g *Graph) AddFunc(entry uint64) *Func {
	if f := g.Func(entry); f != nil {
		return f
	}
	f := &Func{Entry: entry}
	g.Funcs = append(g.Funcs, f)
	sort.Slice(g.Funcs, func(i, j int) bool { return g.Funcs[i].Entry < g.Funcs[j].Entry })
	return f
}

// AddBlockToFunc records that block addr belongs to f.
func (g *Graph) AddBlockToFunc(f *Func, addr uint64) {
	for _, b := range f.Blocks {
		if b == addr {
			return
		}
	}
	f.Blocks = append(f.Blocks, addr)
	sort.Slice(f.Blocks, func(i, j int) bool { return f.Blocks[i] < f.Blocks[j] })
}

// FuncOf returns the function owning block addr, or nil.
func (g *Graph) FuncOf(addr uint64) *Func {
	for _, f := range g.Funcs {
		for _, b := range f.Blocks {
			if b == addr {
				return f
			}
		}
	}
	return nil
}

// BlockContaining returns the block whose byte range covers addr, or nil.
func (g *Graph) BlockContaining(addr uint64) *Block {
	for _, b := range g.Blocks {
		if addr >= b.Addr && addr < b.Addr+b.Size {
			return b
		}
	}
	return nil
}

// NumBlocks returns the number of blocks.
func (g *Graph) NumBlocks() int { return len(g.Blocks) }

// IndirectBlocks returns the addresses of blocks with indirect terminators,
// sorted.
func (g *Graph) IndirectBlocks() []uint64 {
	var out []uint64
	for a, b := range g.Blocks {
		if b.Term == TermJmpInd || b.Term == TermCallInd {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural invariants: every function block exists, every
// direct target of an owned block exists, fallthroughs exist.
func (g *Graph) Validate() error {
	for _, f := range g.Funcs {
		for _, ba := range f.Blocks {
			b, ok := g.Blocks[ba]
			if !ok {
				return fmt.Errorf("cfg: func %#x references missing block %#x", f.Entry, ba)
			}
			switch b.Term {
			case TermJmp, TermJcc:
				for _, t := range b.Targets {
					if _, ok := g.Blocks[t]; !ok {
						return fmt.Errorf("cfg: block %#x: missing direct target %#x", ba, t)
					}
				}
			case TermCall:
				for _, t := range b.Targets {
					if g.Func(t) == nil {
						return fmt.Errorf("cfg: block %#x: call target %#x is not a function", ba, t)
					}
				}
			}
			if b.Fall != 0 && b.Term != TermRet && b.Term != TermHalt && b.Term != TermJmp {
				if _, ok := g.Blocks[b.Fall]; !ok {
					return fmt.Errorf("cfg: block %#x: missing fallthrough %#x", ba, b.Fall)
				}
			}
		}
	}
	return nil
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := NewGraph(g.Entry)
	for _, f := range g.Funcs {
		nf := &Func{Entry: f.Entry, Blocks: append([]uint64(nil), f.Blocks...)}
		out.Funcs = append(out.Funcs, nf)
	}
	for a, b := range g.Blocks {
		nb := *b
		nb.Targets = append([]uint64(nil), b.Targets...)
		out.Blocks[a] = &nb
	}
	return out
}

// Marshal serializes the graph to its on-disk JSON form.
func (g *Graph) Marshal() ([]byte, error) {
	g.BlockList = g.BlockList[:0]
	addrs := make([]uint64, 0, len(g.Blocks))
	for a := range g.Blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		g.BlockList = append(g.BlockList, g.Blocks[a])
	}
	return json.MarshalIndent(g, "", " ")
}

// Unmarshal parses an on-disk graph.
func Unmarshal(data []byte) (*Graph, error) {
	g := new(Graph)
	if err := json.Unmarshal(data, g); err != nil {
		return nil, fmt.Errorf("cfg: %w", err)
	}
	g.Blocks = map[uint64]*Block{}
	for _, b := range g.BlockList {
		g.Blocks[b.Addr] = b
	}
	return g, nil
}

// Merge folds indirect-target information from other into g (the ICFT
// tracer's merge-across-runs step). Only target sets are merged; the block
// structure must already agree. It returns the number of new targets added.
func (g *Graph) Merge(other *Graph) int {
	added := 0
	for addr, ob := range other.Blocks {
		b, ok := g.Blocks[addr]
		if !ok {
			continue
		}
		for _, t := range ob.Targets {
			if b.AddTarget(t) {
				added++
			}
		}
	}
	return added
}
