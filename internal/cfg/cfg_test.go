package cfg_test

import (
	"strings"
	"testing"

	"repro/internal/cfg"
)

func buildGraph(t *testing.T) *cfg.Graph {
	t.Helper()
	g := cfg.NewGraph(0x100)
	f := g.AddFunc(0x100)
	g.Blocks[0x100] = &cfg.Block{Addr: 0x100, Size: 8, Term: cfg.TermJcc,
		Targets: []uint64{0x120}, Fall: 0x108}
	g.Blocks[0x108] = &cfg.Block{Addr: 0x108, Size: 4, Term: cfg.TermJmpInd}
	g.Blocks[0x120] = &cfg.Block{Addr: 0x120, Size: 2, Term: cfg.TermRet}
	g.AddBlockToFunc(f, 0x100)
	g.AddBlockToFunc(f, 0x108)
	g.AddBlockToFunc(f, 0x120)
	return g
}

func TestValidateOK(t *testing.T) {
	g := buildGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesMissingTarget(t *testing.T) {
	g := buildGraph(t)
	g.Blocks[0x100].Targets = []uint64{0xdead}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "missing direct target") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesMissingFuncBlock(t *testing.T) {
	g := buildGraph(t)
	g.AddBlockToFunc(g.Func(0x100), 0x999)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "missing block") {
		t.Fatalf("err = %v", err)
	}
}

func TestAddTargetSortedAndIdempotent(t *testing.T) {
	b := &cfg.Block{Addr: 1, Term: cfg.TermJmpInd}
	if !b.AddTarget(0x30) || !b.AddTarget(0x10) || !b.AddTarget(0x20) {
		t.Fatal("adds failed")
	}
	if b.AddTarget(0x20) {
		t.Fatal("duplicate add reported change")
	}
	if b.Targets[0] != 0x10 || b.Targets[1] != 0x20 || b.Targets[2] != 0x30 {
		t.Fatalf("not sorted: %x", b.Targets)
	}
}

func TestIndirectBlocksAndContaining(t *testing.T) {
	g := buildGraph(t)
	ind := g.IndirectBlocks()
	if len(ind) != 1 || ind[0] != 0x108 {
		t.Fatalf("indirect blocks %x", ind)
	}
	if b := g.BlockContaining(0x105); b == nil || b.Addr != 0x100 {
		t.Fatal("containing lookup failed")
	}
	if b := g.BlockContaining(0x10c); b != nil {
		t.Fatal("matched past block end")
	}
	if f := g.FuncOf(0x108); f == nil || f.Entry != 0x100 {
		t.Fatal("FuncOf failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildGraph(t)
	c := g.Clone()
	c.Blocks[0x108].AddTarget(0x120)
	if g.Blocks[0x108].HasTarget(0x120) {
		t.Fatal("clone shares target slices")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRoundTripPreservesExt(t *testing.T) {
	g := buildGraph(t)
	g.Blocks[0x108].Term = cfg.TermCallExt
	g.Blocks[0x108].Ext = 7
	g.Blocks[0x108].Fall = 0x120
	data, err := g.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := cfg.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Blocks[0x108].Ext != 7 || g2.Blocks[0x108].Term != cfg.TermCallExt {
		t.Fatalf("ext lost: %+v", g2.Blocks[0x108])
	}
}
