package workloads

import (
	"repro/internal/core"
	"repro/internal/vm"
)

// Real-world-utility analogues (Table 1): a key-value store with worker
// threads (memcached-like), a parallel block compressor (pigz-like), a
// threaded request server (mongoose-like), and an FTP-like server carrying
// the CVE-2023-24042 shared-context race (LightFTP-like, §4.1).

func memcachedLike() *Workload {
	return &Workload{
		Name: "memcached_like", Family: "app", Threads: "pthreads+builtins",
		WantExit: 42,
		Inputs:   []core.Input{{Seed: 21}},
		Source: `
extern thread_create;
extern thread_join;
extern mutex_lock;
extern mutex_unlock;
extern malloc;

// Open-addressing hash table: key -> value (both i64). Slot layout:
// [key, value, used] triples.
var table = 0;
var cap = 0;
var tmu = 0;
var ops = 0;

func ht_init(n) {
	cap = n;
	table = malloc(n * 24);
	var i;
	for (i = 0; i < n; i = i + 1) { store64(table + i*24 + 16, 0); }
	return 0;
}

func ht_set(k, v) {
	var h = (k * 2654435761) % cap;
	if (h < 0) { h = -h; }
	var i;
	for (i = 0; i < cap; i = i + 1) {
		var s = table + ((h + i) % cap) * 24;
		if (load64(s + 16) == 0 || load64(s) == k) {
			store64(s, k);
			store64(s + 8, v);
			store64(s + 16, 1);
			return 1;
		}
	}
	return 0;
}

func ht_get(k) {
	var h = (k * 2654435761) % cap;
	if (h < 0) { h = -h; }
	var i;
	for (i = 0; i < cap; i = i + 1) {
		var s = table + ((h + i) % cap) * 24;
		if (load64(s + 16) == 0) { return -1; }
		if (load64(s) == k) { return load64(s + 8); }
	}
	return -1;
}

// Protocol command handlers, dispatched through a function table (the
// command-dispatch shape of real protocol servers).
var cmds[2];

func cmd_set(key) { ht_set(key, key * 3); return -1; }
func cmd_get(key) { return ht_get(key); }

// Each worker performs a memaslap-style 90/10 get/set mix.
func worker(arg) {
	var state = arg * 7919 + 17;
	var i;
	var hits = 0;
	for (i = 0; i < 300; i = i + 1) {
		var x = load64(&state);
		x = x ^ (x << 13);
		x = x ^ (x >> 7);
		x = x ^ (x << 17);
		store64(&state, x);
		if (x < 0) { x = -x; }
		var key = x % 128;
		var op = 0;
		if (x % 10 != 0) { op = 1; }
		mutex_lock(&tmu);
		var h = load64(cmds + op * 8);
		var v = h(key);
		if (op == 1 && v != -1) { hits = hits + 1; }
		atomic_add(&ops, 1);
		mutex_unlock(&tmu);
	}
	return hits;
}

func main() {
	ht_init(512);
	store64(cmds, cmd_set);
	store64(cmds + 8, cmd_get);
	var i;
	for (i = 0; i < 128; i = i + 1) { ht_set(i, i * 3); }
	var tids[4];
	for (i = 0; i < 4; i = i + 1) { tids[i] = thread_create(worker, i); }
	var hits = 0;
	for (i = 0; i < 4; i = i + 1) { hits = hits + thread_join(tids[i]); }
	if (load64(&ops) != 1200) { return 1; }
	if (hits == 0) { return 2; }
	return 42;
}`,
	}
}

func pigzLike() *Workload {
	return &Workload{
		Name: "pigz_like", Family: "app", Threads: "pthreads",
		WantExit: 42,
		Inputs:   []core.Input{{Seed: 22}},
		Source: `
extern thread_create;
extern thread_join;
extern malloc;
extern print_i64;

// Parallel RLE block compressor: the input buffer is split into blocks,
// each compressed by one thread into its own output region (pigz's
// per-block parallelism).
var src = 0;
var dst = 0;
var outlen[4];
var SRCN = 4096;

func fill(seed) {
	src = malloc(SRCN);
	dst = malloc(SRCN * 2);
	var state = seed;
	var i;
	var run = 0;
	var ch = 'a';
	for (i = 0; i < SRCN; i = i + 1) {
		if (run == 0) {
			var x = load64(&state);
			x = x ^ (x << 13);
			x = x ^ (x >> 7);
			x = x ^ (x << 17);
			store64(&state, x);
			if (x < 0) { x = -x; }
			run = 1 + x % 40;
			ch = 'a' + x % 16;
		}
		store8(src + i, ch);
		run = run - 1;
	}
	return 0;
}

var blocksize = 1024;

func compress_block(arg) {    // block arg: [arg*1024, +1024)
	var scratch[blocksize];   // dynamically sized staging buffer (VLA)
	var in = src + arg * 1024;
	var out = dst + arg * 2048;
	scratch[0] = arg;
	var w = 0;
	var i = 0;
	while (i < 1024) {
		var ch = load8(in + i);
		var run = 1;
		while (i + run < 1024 && load8(in + i + run) == ch && run < 255) {
			run = run + 1;
		}
		store8(out + w, ch);
		store8(out + w + 1, run);
		w = w + 2;
		i = i + run;
	}
	outlen[arg] = w;
	return 0;
}

func main() {
	fill(314159);
	var tids[4];
	var i;
	for (i = 0; i < 4; i = i + 1) { tids[i] = thread_create(compress_block, i); }
	for (i = 0; i < 4; i = i + 1) { thread_join(tids[i]); }
	var total = 0;
	for (i = 0; i < 4; i = i + 1) { total = total + outlen[i]; }
	if (total == 0 || total >= 4096) { return 1; }
	// Verify round trip of block 0.
	var pos = 0;
	var i2 = 0;
	while (i2 < outlen[0]) {
		var ch = load8(dst + i2);
		var run = load8(dst + i2 + 1);
		var k;
		for (k = 0; k < run; k = k + 1) {
			if (load8(src + pos) != ch) { return 2; }
			pos = pos + 1;
		}
		i2 = i2 + 2;
	}
	if (pos != 1024) { return 3; }
	print_i64(total);
	return 42;
}`,
	}
}

func mongooseLike() *Workload {
	return &Workload{
		Name: "mongoose_like", Family: "app", Threads: "pthreads+cond",
		WantExit: 42,
		Inputs:   []core.Input{{Seed: 23}},
		Source: `
extern thread_create;
extern thread_join;
extern mutex_lock;
extern mutex_unlock;
extern cond_wait;
extern cond_signal;
extern cond_broadcast;

// Threaded request server: the main thread enqueues requests, a pool of
// workers dequeues and "handles" them (hashing the request id), results
// are accumulated. Queue protected by mutex+condvar (mongoose's
// multi-threaded example server shape).
var queue[64];
var qhead = 0;
var qtail = 0;
var qmu = 0;
var qcv = 0;
var done = 0;
var handled = 0;
var checksum = 0;

var handlers[2];

func handle_static(req) {
	var h = req;
	var i;
	for (i = 0; i < 20; i = i + 1) { h = (h * 31 + i) % 1000003; }
	return h;
}

func handle_api(req) {
	var h = req * 7;
	var i;
	for (i = 0; i < 12; i = i + 1) { h = (h * 37 + i) % 999983; }
	return h;
}

func handle(req) {
	var f = load64(handlers + (req & 1) * 8);
	return f(req);
}

func worker(arg) {
	while (1) {
		mutex_lock(&qmu);
		while (qhead == qtail && load64(&done) == 0) {
			cond_wait(&qcv, &qmu);
		}
		if (qhead == qtail) {
			mutex_unlock(&qmu);
			return 0;
		}
		var req = queue[qhead & 63];
		qhead = qhead + 1;
		mutex_unlock(&qmu);
		var h = handle(req);
		atomic_add(&checksum, h);
		atomic_add(&handled, 1);
	}
	return 0;
}

func main() {
	store64(handlers, handle_static);
	store64(handlers + 8, handle_api);
	var tids[3];
	var i;
	for (i = 0; i < 3; i = i + 1) { tids[i] = thread_create(worker, i); }
	for (i = 0; i < 100; i = i + 1) {
		mutex_lock(&qmu);
		queue[qtail & 63] = i + 1;
		qtail = qtail + 1;
		cond_signal(&qcv);
		mutex_unlock(&qmu);
	}
	mutex_lock(&qmu);
	store64(&done, 1);
	cond_broadcast(&qcv);
	mutex_unlock(&qmu);
	for (i = 0; i < 3; i = i + 1) { thread_join(tids[i]); }
	if (load64(&handled) != 100) { return 1; }
	if (load64(&checksum) == 0) { return 2; }
	return 42;
}`,
	}
}

// LightFTPExts returns the filesystem/network host model the FTP-like
// server uses: a tiny read-only FS and a scripted command stream.
func LightFTPExts() map[string]vm.ExtFunc {
	fs := map[string]int{ // path -> 1 file, 2 dir
		"/pub":         2,
		"/pub/a.txt":   1,
		"/pub/b.txt":   1,
		"/etc/passwd":  1,
		"/home":        2,
		"/home/u.conf": 1,
	}
	listings := map[string]string{
		"/pub":  "a.txt b.txt",
		"/home": "u.conf",
	}
	return map[string]vm.ExtFunc{
		// fs_stat(path) -> 0 missing, 1 file, 2 directory
		"fs_stat": func(m *vm.Machine, t *vm.Thread) error {
			p, ok := m.Mem.CString(t.Regs[7]) // rdi
			if !ok {
				t.Regs[0] = 0
				return nil
			}
			t.Regs[0] = uint64(fs[p])
			return nil
		},
		// dir_list(path, buf, max) -> bytes written (NUL-terminated)
		"dir_list": func(m *vm.Machine, t *vm.Thread) error {
			p, ok := m.Mem.CString(t.Regs[7])
			if !ok {
				t.Regs[0] = 0
				return nil
			}
			s := listings[p]
			if fs[p] == 1 {
				s = "<file:" + p + ">" // listing a file leaks its content marker
			}
			maxn := t.Regs[2] // rdx
			if uint64(len(s)+1) > maxn {
				s = s[:maxn-1]
			}
			m.Mem.WriteBytes(t.Regs[6], append([]byte(s), 0)) // rsi
			t.Regs[0] = uint64(len(s))
			return nil
		},
	}
}

// lightftpSource is shared by the workload and the RQ1 example: an FTP-like
// server whose session context (FileName) is shared across handler threads,
// reproducing CVE-2023-24042's race. The scripted input drives it:
//
//	U<path>\n   USER command: writes context.FileName unchecked
//	L<path>\n   LIST command: stats path, stores it, spawns a blocked handler
//	D\n         data-connect: unblocks the pending LIST handler
//	Q\n         quit
const lightftpSource = `
extern thread_create;
extern thread_join;
extern mutex_lock;
extern mutex_unlock;
extern cond_wait;
extern cond_signal;
extern input_byte;
extern print_str;
extern print_char;
extern fs_stat;
extern dir_list;

var filename[32];    // context->FileName: shared, reused across threads!
var datamu = 0;
var datacv = 0;
var dataconn = 0;
var handler_tid = 0;
var have_handler = 0;

func read_line(buf, max) {
	var n = 0;
	while (1) {
		var c = input_byte();
		if (c == -1 || c == '\n') {
			store8(buf + n, 0);
			return n;
		}
		if (n < max - 1) {
			store8(buf + n, c);
			n = n + 1;
		}
	}
	return n;
}

func set_filename(src) {
	// The CVE: no check, no per-handler copy — raw overwrite of the
	// shared context field.
	var i = 0;
	while (load8(src + i) != 0 && i < 255) {
		store8(filename + i, load8(src + i));
		i = i + 1;
	}
	store8(filename + i, 0);
	return 0;
}

func list_thread(arg) {
	// Block until the client connects to the data socket.
	mutex_lock(&datamu);
	while (load64(&dataconn) == 0) {
		cond_wait(&datacv, &datamu);
	}
	store64(&dataconn, 0);
	mutex_unlock(&datamu);
	// Uses context->FileName, which may have been overwritten meanwhile.
	var out[64];
	dir_list(filename, out, 512);
	print_str("LIST:");
	print_str(out);
	print_char('\n');
	return 0;
}

func ftp_list(path) {
	if (fs_stat(path) == 0) {
		print_str("550\n");
		return 0;
	}
	set_filename(path);
	store64(&handler_tid, thread_create(list_thread, 0));
	store64(&have_handler, 1);
	print_str("150\n");
	return 0;
}

func ftp_user(name) {
	set_filename(name);   // the reused context field
	print_str("331\n");
	return 0;
}

func ftp_data(arg) {
	mutex_lock(&datamu);
	store64(&dataconn, 1);
	cond_signal(&datacv);
	mutex_unlock(&datamu);
	return 0;
}

var dispatch[3];   // command handlers: U, L, D

func main() {
	store64(dispatch, ftp_user);
	store64(dispatch + 8, ftp_list);
	store64(dispatch + 16, ftp_data);
	var line[64];
	while (1) {
		var n = read_line(line, 512);
		if (n == 0) { break; }
		var cmd = load8(line);
		if (cmd == 'Q') { break; }
		var idx = -1;
		if (cmd == 'U') { idx = 0; }
		if (cmd == 'L') { idx = 1; }
		if (cmd == 'D') { idx = 2; }
		if (idx >= 0) {
			var h = load64(dispatch + idx * 8);
			h(line + 1);
		}
	}
	if (load64(&have_handler) != 0) {
		thread_join(load64(&handler_tid));
	}
	print_str("221\n");
	return 42;
}
`

func lightftpLike() *Workload {
	return &Workload{
		Name: "lightftp_like", Family: "app", Threads: "pthreads+cond",
		WantExit: 42,
		// Benign session: LIST a directory, connect data socket, quit.
		Inputs: []core.Input{{
			Data: []byte("L/pub\nD\nQ\n"),
			Seed: 24,
		}},
		WantOutput: "150\nLIST:a.txt b.txt\n221\n",
		Exts:       LightFTPExts,
		Source:     lightftpSource,
	}
}

// LightFTPSource exposes the server source for the RQ1 example and bench.
func LightFTPSource() string { return lightftpSource }

// LightFTPExploit is the CVE-2023-24042 attack script: LIST blocks a
// handler on the data connection, USER overwrites the shared FileName,
// the data connect then makes the handler list the overwritten path.
func LightFTPExploit() []byte { return []byte("L/pub\nU/etc/passwd\nD\nQ\n") }
