package workloads

import "repro/internal/core"

// Phoenix-like map-reduce kernels (Table 2). All of them parallelize with
// pthread-style thread_create/thread_join and synchronize exclusively
// through external primitives (mutexes, joins) — the property the fence
// optimization exploits (§3.4: "all programs in the Phoenix benchmark suite
// exhibit this property"). pca deliberately contains a flag-handshake loop
// that is synchronized but needs happens-before reasoning to prove it —
// the paper's false-negative case; histogram contains a byte-swap loop that
// never executes on little-endian inputs — the paper's uncovered-loop case.

func histogram() *Workload {
	return &Workload{
		Name: "histogram", Family: "phoenix", Threads: "pthreads",
		FenceRemovalExpected: false, // uncovered endianness loop (§4.3)
		WantExit:             42,
		Inputs:               []core.Input{{Seed: 3}},
		Source: `
extern thread_create;
extern thread_join;
extern mutex_lock;
extern mutex_unlock;

var pixels[4096];
var bins[256];
var mu = 0;
var bigendian = 0;

func rnd(state) {
	var x = load64(state);
	x = x ^ (x << 13);
	x = x ^ (x >> 7);
	x = x ^ (x << 17);
	store64(state, x);
	return x;
}

// Byte-swap pass for big-endian inputs: never executed on these inputs
// (the uncovered loop of the fence analysis).
func swap_bytes(n) {
	var i;
	for (i = 0; i < n; i = i + 1) {
		var v = pixels[i];
		var r = 0;
		var k;
		for (k = 0; k < 8; k = k + 1) {
			r = (r << 8) | (v & 255);
			v = v >> 8;
		}
		pixels[i] = r;
	}
	return 0;
}

var nbins = 256;

func worker(arg) {   // arg: chunk index; 4 chunks of 1024
	var local[nbins];   // dynamically sized: defeats static frame recovery
	var i;
	for (i = 0; i < 256; i = i + 1) { local[i] = 0; }
	var lo = arg * 1024;
	var hi = lo + 1024;
	for (i = lo; i < hi; i = i + 1) {
		var b = pixels[i] & 255;
		local[b] = local[b] + 1;
	}
	mutex_lock(&mu);
	for (i = 0; i < 256; i = i + 1) { bins[i] = bins[i] + local[i]; }
	mutex_unlock(&mu);
	return 0;
}

func main() {
	var state = 12345;
	var i;
	for (i = 0; i < 4096; i = i + 1) { pixels[i] = rnd(&state); }
	if (bigendian) { swap_bytes(4096); }
	var tids[4];
	for (i = 0; i < 4; i = i + 1) { tids[i] = thread_create(worker, i); }
	for (i = 0; i < 4; i = i + 1) { thread_join(tids[i]); }
	var total = 0;
	for (i = 0; i < 256; i = i + 1) { total = total + bins[i]; }
	if (total != 4096) { return 1; }
	return 42;
}`,
	}
}

func kmeans() *Workload {
	return &Workload{
		Name: "kmeans", Family: "phoenix", Threads: "pthreads",
		FenceRemovalExpected: true,
		WantExit:             42,
		Inputs:               []core.Input{{Seed: 4}},
		Source: `
extern thread_create;
extern thread_join;
extern mutex_lock;
extern mutex_unlock;

var points[2048];   // 1024 points x 2 dims
var centers[8];     // 4 centers x 2 dims
var assign[1024];
var sums[8];
var counts[4];
var mu = 0;

func rnd(state) {
	var x = load64(state);
	x = x ^ (x << 13);
	x = x ^ (x >> 7);
	x = x ^ (x << 17);
	store64(state, x);
	if (x < 0) { x = -x; }
	return x;
}

func dist2(px, py, cx, cy) {
	var dx = px - cx;
	var dy = py - cy;
	return dx*dx + dy*dy;
}

func worker(arg) {  // assign chunk of 256 points, accumulate local sums
	var lsum[8];
	var lcnt[4];
	var i;
	for (i = 0; i < 8; i = i + 1) { lsum[i] = 0; }
	for (i = 0; i < 4; i = i + 1) { lcnt[i] = 0; }
	var lo = arg * 256;
	var hi = lo + 256;
	for (i = lo; i < hi; i = i + 1) {
		var px = points[i*2];
		var py = points[i*2+1];
		var best = 0;
		var bd = dist2(px, py, centers[0], centers[1]);
		var c;
		for (c = 1; c < 4; c = c + 1) {
			var d = dist2(px, py, centers[c*2], centers[c*2+1]);
			if (d < bd) { bd = d; best = c; }
		}
		assign[i] = best;
		lsum[best*2] = lsum[best*2] + px;
		lsum[best*2+1] = lsum[best*2+1] + py;
		lcnt[best] = lcnt[best] + 1;
	}
	mutex_lock(&mu);
	for (i = 0; i < 8; i = i + 1) { sums[i] = sums[i] + lsum[i]; }
	for (i = 0; i < 4; i = i + 1) { counts[i] = counts[i] + lcnt[i]; }
	mutex_unlock(&mu);
	return 0;
}

func main() {
	var state = 777;
	var i;
	for (i = 0; i < 2048; i = i + 1) { points[i] = rnd(&state) % 1000; }
	for (i = 0; i < 8; i = i + 1) { centers[i] = (i * 137) % 1000; }
	var iter;
	for (iter = 0; iter < 5; iter = iter + 1) {
		for (i = 0; i < 8; i = i + 1) { sums[i] = 0; }
		for (i = 0; i < 4; i = i + 1) { counts[i] = 0; }
		var tids[4];
		for (i = 0; i < 4; i = i + 1) { tids[i] = thread_create(worker, i); }
		for (i = 0; i < 4; i = i + 1) { thread_join(tids[i]); }
		for (i = 0; i < 4; i = i + 1) {
			if (counts[i] > 0) {
				centers[i*2] = sums[i*2] / counts[i];
				centers[i*2+1] = sums[i*2+1] / counts[i];
			}
		}
	}
	var total = 0;
	for (i = 0; i < 1024; i = i + 1) { total = total + assign[i]; }
	if (total == 0) { return 1; }
	return 42;
}`,
	}
}

func linearRegression() *Workload {
	return &Workload{
		Name: "linear_regression", Family: "phoenix", Threads: "pthreads",
		FenceRemovalExpected: true,
		WantExit:             42,
		Inputs:               []core.Input{{Seed: 5}},
		Source: `
extern thread_create;
extern thread_join;
extern mutex_lock;
extern mutex_unlock;

var xs[4096];
var ys[4096];
var sx = 0;
var sy = 0;
var sxx = 0;
var sxy = 0;
var mu = 0;

func rnd(state) {
	var x = load64(state);
	x = x ^ (x << 13);
	x = x ^ (x >> 7);
	x = x ^ (x << 17);
	store64(state, x);
	if (x < 0) { x = -x; }
	return x;
}

// The core accumulation runs as a packed SIMD kernel (the paper's
// linear_regression is a packed sequence of SIMD instructions whose
// scalarized lifting dominates its recompiled slowdown, §4.2).
func worker(arg) {
	var lo = arg * 1024;
	var i;
	var lsx = 0;
	var lsy = 0;
	var lsxx = 0;
	var lsxy = 0;
	for (i = lo; i < lo + 1024; i = i + 4) {
		vload(0, xs + i*8);
		vload(1, ys + i*8);
		lsx = lsx + vhadd(0);
		lsy = lsy + vhadd(1);
		vload(2, xs + i*8);
		vmul(2, 0);
		lsxx = lsxx + vhadd(2);
		vload(3, ys + i*8);
		vmul(3, 0);
		lsxy = lsxy + vhadd(3);
	}
	mutex_lock(&mu);
	sx = sx + lsx;
	sy = sy + lsy;
	sxx = sxx + lsxx;
	sxy = sxy + lsxy;
	mutex_unlock(&mu);
	return 0;
}

func main() {
	var state = 999;
	var i;
	for (i = 0; i < 4096; i = i + 1) {
		xs[i] = rnd(&state) % 100;
		ys[i] = 3 * xs[i] + 7;
	}
	var tids[4];
	for (i = 0; i < 4; i = i + 1) { tids[i] = thread_create(worker, i); }
	for (i = 0; i < 4; i = i + 1) { thread_join(tids[i]); }
	var n = 4096;
	var num = n * sxy - sx * sy;
	var den = n * sxx - sx * sx;
	if (den == 0) { return 1; }
	var slope = num / den;
	if (slope != 3) { return 2; }
	return 42;
}`,
	}
}

func matrixMultiply() *Workload {
	return &Workload{
		Name: "matrix_multiply", Family: "phoenix", Threads: "pthreads",
		FenceRemovalExpected: true,
		WantExit:             42,
		Inputs:               []core.Input{{Seed: 6}},
		Source: `
extern thread_create;
extern thread_join;

var a[1024];   // 32x32
var b[1024];
var c[1024];

func worker(arg) {   // rows [arg*8, arg*8+8)
	var r;
	for (r = arg*8; r < arg*8 + 8; r = r + 1) {
		var j;
		for (j = 0; j < 32; j = j + 1) {
			var s = 0;
			var k;
			for (k = 0; k < 32; k = k + 1) {
				s = s + a[r*32+k] * b[k*32+j];
			}
			c[r*32+j] = s;
		}
	}
	return 0;
}

func main() {
	var i;
	for (i = 0; i < 1024; i = i + 1) {
		a[i] = i % 7;
		b[i] = i % 5;
	}
	var tids[4];
	for (i = 0; i < 4; i = i + 1) { tids[i] = thread_create(worker, i); }
	for (i = 0; i < 4; i = i + 1) { thread_join(tids[i]); }
	var sum = 0;
	for (i = 0; i < 1024; i = i + 1) { sum = sum + c[i]; }
	if (sum % 1000 != 97) { return sum % 1000; }
	return 42;
}`,
	}
}

func pca() *Workload {
	return &Workload{
		Name: "pca", Family: "phoenix", Threads: "pthreads",
		// The handshake loop below is synchronized (the consumer's spin on
		// `ready` happens strictly after the producer joins), but proving
		// it needs happens-before analysis the detector does not build —
		// the paper's false-negative case (§4.3): fences are conservatively
		// preserved.
		FenceRemovalExpected: false,
		WantExit:             42,
		Inputs:               []core.Input{{Seed: 7}},
		Source: `
extern thread_create;
extern thread_join;
extern mutex_lock;
extern mutex_unlock;

var data[2048];  // 256 rows x 8 cols
var means[8];
var cov[64];
var mu = 0;
var ready = 0;

func rnd(state) {
	var x = load64(state);
	x = x ^ (x << 13);
	x = x ^ (x >> 7);
	x = x ^ (x << 17);
	store64(state, x);
	if (x < 0) { x = -x; }
	return x;
}

func mean_worker(arg) {  // cols [arg*2, arg*2+2)
	var c;
	for (c = arg*2; c < arg*2 + 2; c = c + 1) {
		var s = 0;
		var r;
		for (r = 0; r < 256; r = r + 1) { s = s + data[r*8+c]; }
		means[c] = s / 256;
	}
	return 0;
}

func cov_worker(arg) {
	// Handshake: wait until the mean phase is published. This read is
	// synchronized by the joins in main, but only a happens-before
	// analysis can see that.
	while (load64(&ready) == 0) { }
	var i;
	for (i = arg*16; i < arg*16 + 16; i = i + 1) {
		var r = i / 8;
		var cc = i % 8;
		var s = 0;
		var k;
		for (k = 0; k < 256; k = k + 1) {
			s = s + (data[k*8+r] - means[r]) * (data[k*8+cc] - means[cc]);
		}
		cov[i] = s / 255;
	}
	return 0;
}

func main() {
	var state = 4242;
	var i;
	for (i = 0; i < 2048; i = i + 1) { data[i] = rnd(&state) % 50; }
	var tids[4];
	for (i = 0; i < 4; i = i + 1) { tids[i] = thread_create(mean_worker, i); }
	for (i = 0; i < 4; i = i + 1) { thread_join(tids[i]); }
	store64(&ready, 1);
	for (i = 0; i < 4; i = i + 1) { tids[i] = thread_create(cov_worker, i); }
	for (i = 0; i < 4; i = i + 1) { thread_join(tids[i]); }
	var tr = 0;
	for (i = 0; i < 8; i = i + 1) { tr = tr + cov[i*8+i]; }
	if (tr <= 0) { return 1; }
	return 42;
}`,
	}
}

func stringMatch() *Workload {
	return &Workload{
		Name: "string_match", Family: "phoenix", Threads: "pthreads",
		FenceRemovalExpected: true,
		WantExit:             42,
		Inputs:               []core.Input{{Seed: 8}},
		Source: `
extern thread_create;
extern thread_join;

var text[8192];   // byte per slot for simplicity
var found[4];

func worker(arg) {   // search "key" in chunk [arg*2048, +2048)
	var hits = 0;
	var i;
	for (i = arg*2048; i < arg*2048 + 2046; i = i + 1) {
		if (text[i] == 'k' && text[i+1] == 'e' && text[i+2] == 'y') {
			hits = hits + 1;
		}
	}
	found[arg] = hits;
	return 0;
}

func rnd(state) {
	var x = load64(state);
	x = x ^ (x << 13);
	x = x ^ (x >> 7);
	x = x ^ (x << 17);
	store64(state, x);
	if (x < 0) { x = -x; }
	return x;
}

func main() {
	var state = 31337;
	var i;
	for (i = 0; i < 8192; i = i + 1) { text[i] = 'a' + rnd(&state) % 26; }
	// Plant 10 occurrences at deterministic positions.
	for (i = 0; i < 10; i = i + 1) {
		var p = 17 + i * 800;
		text[p] = 'k'; text[p+1] = 'e'; text[p+2] = 'y';
	}
	var tids[4];
	for (i = 0; i < 4; i = i + 1) { tids[i] = thread_create(worker, i); }
	for (i = 0; i < 4; i = i + 1) { thread_join(tids[i]); }
	var total = 0;
	for (i = 0; i < 4; i = i + 1) { total = total + found[i]; }
	if (total < 10) { return total; }
	return 42;
}`,
	}
}

func wordCount() *Workload {
	return &Workload{
		Name: "word_count", Family: "phoenix", Threads: "pthreads",
		FenceRemovalExpected: true,
		WantExit:             42,
		Inputs:               []core.Input{{Seed: 9}},
		Source: `
extern thread_create;
extern thread_join;
extern mutex_lock;
extern mutex_unlock;

var text[8192];
var counts[64];    // open-addressing hash of word-lengths (toy reduce)
var mu = 0;

func rnd(state) {
	var x = load64(state);
	x = x ^ (x << 13);
	x = x ^ (x >> 7);
	x = x ^ (x << 17);
	store64(state, x);
	if (x < 0) { x = -x; }
	return x;
}

var nslots = 64;

func worker(arg) {
	var local[nslots];  // dynamically sized local table (VLA)
	var i;
	for (i = 0; i < 64; i = i + 1) { local[i] = 0; }
	var inword = 0;
	var wlen = 0;
	var h = 0;
	for (i = arg*2048; i < arg*2048 + 2048; i = i + 1) {
		var ch = text[i];
		if (ch == ' ') {
			if (inword) {
				local[(h + wlen) & 63] = local[(h + wlen) & 63] + 1;
			}
			inword = 0; wlen = 0; h = 0;
		} else {
			inword = 1;
			wlen = wlen + 1;
			h = (h * 31 + ch) & 1023;
		}
	}
	mutex_lock(&mu);
	for (i = 0; i < 64; i = i + 1) { counts[i] = counts[i] + local[i]; }
	mutex_unlock(&mu);
	return 0;
}

func main() {
	var state = 55;
	var i;
	for (i = 0; i < 8192; i = i + 1) {
		var r = rnd(&state) % 6;
		if (r == 0) { text[i] = ' '; } else { text[i] = 'a' + r; }
	}
	var tids[4];
	for (i = 0; i < 4; i = i + 1) { tids[i] = thread_create(worker, i); }
	for (i = 0; i < 4; i = i + 1) { thread_join(tids[i]); }
	var total = 0;
	for (i = 0; i < 64; i = i + 1) { total = total + counts[i]; }
	if (total == 0) { return 1; }
	return 42;
}`,
	}
}
