package workloads

import (
	"fmt"

	"repro/internal/core"
)

// ConcurrencyKit-like spinlock implementations (§4.2 ckit, Table 5). Each
// workload implements one custom synchronization primitive from compiler
// builtins that lower to hardware atomic instructions, validates it with
// contending threads, and reports the uncontended lock/unlock latency in
// cycles (the Table 5 metric) via print_i64.
//
// These are the true-negative corpus of the spinloop analysis (§4.3): every
// lock below contains an implicit synchronization primitive that must be
// detected, keeping fence removal disabled.

// ckitHarness wraps a lock implementation (lock_init/lock_acquire/
// lock_release functions over global state) with the validation and latency
// phases. The contended phase increments a plain counter under the lock
// from two threads; the latency phase measures ITERS uncontended
// acquire/release pairs with the clock external.
const ckitHarness = `
extern thread_create;
extern thread_join;
extern clock;
extern print_i64;

var guarded = 0;

func contender(arg) {
	var i;
	for (i = 0; i < 200; i = i + 1) {
		lock_acquire(arg);
		guarded = guarded + 1;
		fence();
		lock_release(arg);
	}
	return 0;
}

func main() {
	lock_init();
	var t1 = thread_create(contender, 0);
	var t2 = thread_create(contender, 1);
	thread_join(t1);
	thread_join(t2);
	if (guarded != 400) { return 1; }

	// Uncontended latency (cycles per lock+unlock pair).
	var start = clock();
	var i;
	for (i = 0; i < 200; i = i + 1) {
		lock_acquire(0);
		lock_release(0);
	}
	var elapsed = clock() - start;
	print_i64(elapsed / 200);
	return 42;
}
`

func ckitLock(name, impl string) *Workload {
	return &Workload{
		Name:                 "ck_" + name,
		Family:               "ckit",
		Threads:              "custom-spinlocks",
		FenceRemovalExpected: false,
		WantExit:             42,
		Inputs:               []core.Input{{Seed: 13}},
		Source:               impl + ckitHarness,
	}
}

func ckitLocks() []*Workload {
	locks := []struct{ name, impl string }{
		{"cas", `
var lk = 0;
func lock_init() { store64(&lk, 0); return 0; }
func lock_acquire(tid) {
	while (atomic_cas(&lk, 0, 1) == 0) { }
	return 0;
}
func lock_release(tid) { fence(); store64(&lk, 0); return 0; }
`},
		{"fas", `
var lk = 0;
func lock_init() { store64(&lk, 0); return 0; }
func lock_acquire(tid) {
	while (xchg(&lk, 1) != 0) { }
	return 0;
}
func lock_release(tid) { fence(); store64(&lk, 0); return 0; }
`},
		{"ticket", `
var next = 0;
var serving = 0;
func lock_init() { store64(&next, 0); store64(&serving, 0); return 0; }
func lock_acquire(tid) {
	var my = atomic_xadd(&next, 1);
	while (load64(&serving) != my) { }
	return 0;
}
func lock_release(tid) { atomic_add(&serving, 1); return 0; }
`},
		{"ticket_pb", `
// Proportional-backoff ticket lock: the waiter spins on a local counter
// proportional to its queue distance between probes.
var next = 0;
var serving = 0;
func lock_init() { store64(&next, 0); store64(&serving, 0); return 0; }
func lock_acquire(tid) {
	var my = atomic_xadd(&next, 1);
	while (1) {
		var cur = load64(&serving);
		if (cur == my) { return 0; }
		var back = (my - cur) * 4;
		var i;
		for (i = 0; i < back; i = i + 1) { }
	}
	return 0;
}
func lock_release(tid) { atomic_add(&serving, 1); return 0; }
`},
		{"dec", `
// dec-based lock: 1 = free; an atomic decrement that reaches zero acquires.
// A failed decrement is undone atomically before waiting, and release is an
// atomic increment, so the counter never drifts.
var lk = 1;
func lock_init() { store64(&lk, 1); return 0; }
func lock_acquire(tid) {
	while (1) {
		if (atomic_dec(&lk)) { return 0; }
		atomic_add(&lk, 1);
		while (load64(&lk) < 1) { }
	}
	return 0;
}
func lock_release(tid) { atomic_add(&lk, 1); return 0; }
`},
		{"anderson", `
// Anderson array lock: each ticket spins on its own slot.
var slots[8];
var tail = 0;
var owner[2];
func lock_init() {
	var i;
	for (i = 0; i < 8; i = i + 1) { slots[i] = 0; }
	slots[0] = 1;
	store64(&tail, 0);
	return 0;
}
func lock_acquire(tid) {
	var my = atomic_xadd(&tail, 1) & 7;
	while (load64(slots + my*8) == 0) { }
	store64(slots + my*8, 0);
	owner[tid] = my;
	return 0;
}
func lock_release(tid) {
	var my = owner[tid];
	fence();
	store64(slots + ((my + 1) & 7) * 8, 1);
	return 0;
}
`},
		{"clh", `
// CLH queue lock: swap own node into the tail, spin on the predecessor's
// flag; on release, recycle the predecessor's node as our next own node
// (the classic CLH node hand-off).
var nodes[4];   // node state: 1 = locked
var tailp = 0;
var myn[2];
var mypred[2];
func lock_init() {
	nodes[0] = 0; nodes[1] = 0; nodes[2] = 0;
	store64(&tailp, 2);       // initial dummy node: unlocked
	myn[0] = 0;
	myn[1] = 1;
	return 0;
}
func lock_acquire(tid) {
	var n = myn[tid];
	store64(nodes + n*8, 1);
	var pred = xchg(&tailp, n);
	mypred[tid] = pred;
	while (load64(nodes + pred*8) != 0) { }
	return 0;
}
func lock_release(tid) {
	var n = myn[tid];
	myn[tid] = mypred[tid];
	fence();
	store64(nodes + n*8, 0);
	return 0;
}
`},
		{"hclh", `
// Hierarchical CLH flavour: a cluster-level CLH queue (with node
// recycling) in front of a global cas lock.
var nodes[4];
var ctail = 0;
var glk = 0;
var myn[2];
var mypred[2];
func lock_init() {
	nodes[0] = 0; nodes[1] = 0; nodes[2] = 0;
	store64(&ctail, 2);
	store64(&glk, 0);
	myn[0] = 0;
	myn[1] = 1;
	return 0;
}
func lock_acquire(tid) {
	var n = myn[tid];
	store64(nodes + n*8, 1);
	var pred = xchg(&ctail, n);
	mypred[tid] = pred;
	while (load64(nodes + pred*8) != 0) { }
	while (atomic_cas(&glk, 0, 1) == 0) { }
	return 0;
}
func lock_release(tid) {
	var n = myn[tid];
	myn[tid] = mypred[tid];
	fence();
	store64(&glk, 0);
	store64(nodes + n*8, 0);
	return 0;
}
`},
		{"mcs", `
// MCS queue lock (fixed two contexts): swap tail, link, spin on own flag.
var waiting[2];
var nextp[2];
var tailq = 0;   // 0 = empty, else tid+1
func lock_init() {
	store64(&tailq, 0);
	waiting[0] = 0; waiting[1] = 0;
	nextp[0] = 0; nextp[1] = 0;
	return 0;
}
func lock_acquire(tid) {
	nextp[tid] = 0;
	waiting[tid] = 1;
	var pred = xchg(&tailq, tid + 1);
	if (pred != 0) {
		store64(nextp + (pred-1)*8, tid + 1);
		while (load64(waiting + tid*8) != 0) { }
	}
	return 0;
}
func lock_release(tid) {
	if (load64(nextp + tid*8) == 0) {
		if (atomic_cas(&tailq, tid + 1, 0)) { return 0; }
		while (load64(nextp + tid*8) == 0) { }
	}
	var nxt = load64(nextp + tid*8) - 1;
	fence();
	store64(waiting + nxt*8, 0);
	return 0;
}
`},
		{"spinlock", `
// ck_spinlock default: cas acquire with spin-on-read before retry.
var lk = 0;
func lock_init() { store64(&lk, 0); return 0; }
func lock_acquire(tid) {
	while (1) {
		if (atomic_cas(&lk, 0, 1)) { return 0; }
		while (load64(&lk) != 0) { }
	}
	return 0;
}
func lock_release(tid) { fence(); store64(&lk, 0); return 0; }
`},
		{"linux_spinlock", `
// linux-flavoured ticket spinlock: single word, xadd of 1<<16 takes a
// ticket in the high half, low half serves.
var word = 0;
func lock_init() { store64(&word, 0); return 0; }
func lock_acquire(tid) {
	var t = atomic_xadd(&word, 65536);
	var my = t >> 16;
	while ((load64(&word) & 65535) != my) { }
	return 0;
}
func lock_release(tid) { atomic_add(&word, 1); return 0; }
`},
	}
	out := make([]*Workload, 0, len(locks))
	for _, l := range locks {
		out = append(out, ckitLock(l.name, l.impl))
	}
	if len(out) != 11 {
		panic(fmt.Sprintf("expected 11 ckit locks, have %d", len(out)))
	}
	return out
}
