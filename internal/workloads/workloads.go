// Package workloads defines the benchmark programs of the evaluation
// (Table 1): Phoenix-like map-reduce kernels, gapbs-like graph kernels,
// ConcurrencyKit-like spinlock implementations, real-world-utility
// analogues (memcached/pigz/mongoose/LightFTP), and SPECint-like
// single-threaded programs with characteristic indirect-control-flow
// profiles (Table 4, Figure 4).
//
// Every workload is an mcc source program compiled at -O0 and -O2,
// exercising the same structural features as the paper's benchmarks:
// pthread-style threading and locking, OpenMP-style callback parallel
// loops, compiler-builtin atomics, SIMD kernels, function-pointer and
// jump-table dispatch, and variable-length arrays.
package workloads

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/vm"
)

// Workload is one benchmark program.
type Workload struct {
	Name   string
	Family string // "phoenix", "gapbs", "ckit", "app", "spec"
	Source string // mcc source
	// Inputs drive the program (also used by the dynamic analyses).
	Inputs []core.Input
	// WantExit/WantOutput check correctness; WantOutput "" skips the check.
	WantExit   int
	WantOutput string
	// Exts supplies app-specific host functions (nil for most).
	Exts func() map[string]vm.ExtFunc
	// Threads notes the parallelism style for reporting.
	Threads string
	// FenceRemovalExpected records the paper-aligned spindet expectation:
	// Phoenix programs are provable except pca (false negative) and
	// histogram (uncovered loop, manual annotation); CKit locks are true
	// negatives.
	FenceRemovalExpected bool
}

// Compile builds the workload at the given optimization level.
func (w *Workload) Compile(opt int) (*image.Image, error) {
	img, _, err := cc.Compile(w.Source, cc.Config{Name: w.Name, Opt: opt})
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return img, nil
}

// Input returns the primary input (first of Inputs, or an empty one).
//
// The returned Exts map is always a fresh copy: Input is called from
// concurrent bench-harness cells, and merging w.Exts into the shared
// Inputs[0].Exts map in place would be a data race (and would leak one
// cell's host-function closures into every later caller).
func (w *Workload) Input() core.Input {
	in := core.Input{Seed: 1}
	if len(w.Inputs) > 0 {
		in = w.Inputs[0]
	}
	if in.Exts != nil || w.Exts != nil {
		exts := make(map[string]vm.ExtFunc, len(in.Exts))
		for k, v := range in.Exts {
			exts[k] = v
		}
		if w.Exts != nil {
			for k, v := range w.Exts() {
				exts[k] = v
			}
		}
		in.Exts = exts
	}
	return in
}

// Check validates a run result.
func (w *Workload) Check(res vm.Result) error {
	if res.Fault != nil {
		return fmt.Errorf("workload %s: fault: %w", w.Name, res.Fault)
	}
	if res.ExitCode != w.WantExit {
		return fmt.Errorf("workload %s: exit %d, want %d (output %q)",
			w.Name, res.ExitCode, w.WantExit, res.Output)
	}
	if w.WantOutput != "" && res.Output != w.WantOutput {
		return fmt.Errorf("workload %s: output %q, want %q", w.Name, res.Output, w.WantOutput)
	}
	return nil
}

// Run executes the workload image once.
func (w *Workload) Run(img *image.Image, fuel uint64) (vm.Result, error) {
	in := w.Input()
	m, err := vm.NewWithExts(img, in.Seed, in.Exts)
	if err != nil {
		return vm.Result{}, err
	}
	if in.Data != nil {
		m.SetInput(in.Data)
	}
	return m.Run(fuel), nil
}

// Registry access.

// Phoenix returns the seven Phoenix-like programs (Table 2).
func Phoenix() []*Workload {
	return []*Workload{
		histogram(), kmeans(), linearRegression(), matrixMultiply(),
		pca(), stringMatch(), wordCount(),
	}
}

// Gapbs returns the eight graph kernels (Table 3) at the given element
// width (32 or 64).
func Gapbs(width int) []*Workload {
	return []*Workload{
		gapBC(width), gapBFS(width), gapCC(width), gapCCSV(width),
		gapPR(width), gapPRSPMV(width), gapSSSP(width), gapTC(width),
	}
}

// CKit returns the eleven spinlock implementations (Table 5 / §4.2 ckit).
func CKit() []*Workload { return ckitLocks() }

// Apps returns the real-world-utility analogues (Table 1).
func Apps() []*Workload {
	return []*Workload{memcachedLike(), pigzLike(), mongooseLike(), lightftpLike()}
}

// Spec returns the SPECint-like single-threaded programs (Table 4).
func Spec() []*Workload { return specPrograms() }

// All returns every workload.
func All() []*Workload {
	var out []*Workload
	out = append(out, Phoenix()...)
	out = append(out, Gapbs(64)...)
	out = append(out, CKit()...)
	out = append(out, Apps()...)
	out = append(out, Spec()...)
	return out
}

// ByName finds a workload.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}
