package workloads

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// gapbs-like graph kernels (Table 3). Each program builds a uniform-random
// graph (xorshift generator, CSR-ish adjacency in the heap), processes it
// with OpenMP-style parallel loops (omp_parallel_for: one outlined callback
// function per annotated loop entering a fresh thread context, §4.2), and
// synchronizes with compiler-builtin atomics (std::atomic-style).
//
// The "32-bit" and "64-bit" variants of Table 3 are realized as int32- vs
// int64-typed graph data: the %LD%/%ST%/%SZ% placeholders select
// load32/store32 with 4-byte strides or load64/store64 with 8-byte strides.

// gapPrelude is shared graph-construction code.
const gapPrelude = `
extern thread_create;
extern thread_join;
extern omp_parallel_for;
extern malloc;

var N = 0;         // vertices
var D = 0;         // out-degree
var adj = 0;       // adjacency array: N*D entries of %SZ% bytes
var vals = 0;      // per-vertex value array (same width)
var vals2 = 0;

func rnd(state) {
	var x = load64(state);
	x = x ^ (x << 13);
	x = x ^ (x >> 7);
	x = x ^ (x << 17);
	store64(state, x);
	if (x < 0) { x = -x; }
	return x;
}

func aget(base, i) { return %LD%(base + i*%SZ%); }
func aput(base, i, v) { %ST%(base + i*%SZ%, v); return 0; }

// vals2 is always 64-bit: it backs atomic accumulation (lock add operates
// on 8-byte words) regardless of the graph's element width.
func a2get(i) { return load64(vals2 + i*8); }
func a2put(i, v) { store64(vals2 + i*8, v); return 0; }

func build_graph(n, d, seed) {
	N = n;
	D = d;
	adj = malloc(n * d * %SZ%);
	vals = malloc(n * %SZ%);
	vals2 = malloc(n * 8);
	var state = seed;
	var i;
	for (i = 0; i < n * d; i = i + 1) {
		aput(adj, i, rnd(&state) % n);
	}
	return 0;
}
`

func gapWidth(src string, width int) string {
	ld, st, sz := "load64", "store64", "8"
	if width == 32 {
		ld, st, sz = "load32", "store32", "4"
	}
	src = strings.ReplaceAll(src, "%LD%", ld)
	src = strings.ReplaceAll(src, "%ST%", st)
	return strings.ReplaceAll(src, "%SZ%", sz)
}

func gapWorkload(name string, width int, body string, wantExit int) *Workload {
	return &Workload{
		Name:                 fmt.Sprintf("%s_%d", name, width),
		Family:               "gapbs",
		Threads:              "openmp+atomics",
		FenceRemovalExpected: false, // gapbs uses implicit atomics freely
		WantExit:             wantExit,
		Inputs:               []core.Input{{Seed: 2}},
		Source:               gapWidth(gapPrelude+body, width),
	}
}

// gapBC: Brandes-style betweenness-centrality approximation — per-source
// BFS contribution accumulated atomically.
func gapBC(width int) *Workload {
	return gapWorkload("bc", width, `
var depth = 0;
var score[512];

func bfs_level(lo, hi, arg) {
	var u;
	for (u = lo; u < hi; u = u + 1) {
		if (aget(vals, u) == depth) {
			var e;
			for (e = 0; e < D; e = e + 1) {
				var v = aget(adj, u*D + e);
				if (a2get(v) == -1) {
					a2put(v, depth + 1);
					atomic_add(score + (v & 511) * 8, 1);
				}
			}
		}
	}
	return 0;
}

func sync_levels(lo, hi, arg) {
	var u;
	for (u = lo; u < hi; u = u + 1) {
		if (a2get(u) != -1 && aget(vals, u) == -1) {
			aput(vals, u, a2get(u));
		}
	}
	return 0;
}

func main() {
	build_graph(512, 6, 101);
	var i;
	for (i = 0; i < N; i = i + 1) { aput(vals, i, -1); a2put(i, -1); }
	aput(vals, 0, 0);
	a2put(0, 0);
	for (depth = 0; depth < 6; depth = depth + 1) {
		omp_parallel_for(bfs_level, 0, N, 0, 4);
		omp_parallel_for(sync_levels, 0, N, 0, 4);
	}
	var s = 0;
	for (i = 0; i < 512; i = i + 1) { s = s + score[i]; }
	if (s == 0) { return 1; }
	return 42;
}`, 42)
}

func gapBFS(width int) *Workload {
	return gapWorkload("bfs", width, `
var changed = 0;

func relax(lo, hi, arg) {
	var u;
	for (u = lo; u < hi; u = u + 1) {
		var du = aget(vals, u);
		if (du >= 0) {
			var e;
			for (e = 0; e < D; e = e + 1) {
				var v = aget(adj, u*D + e);
				if (aget(vals, v) == -1) {
					aput(vals, v, du + 1);
					atomic_add(&changed, 1);
				}
			}
		}
	}
	return 0;
}

func main() {
	build_graph(1024, 4, 202);
	var i;
	for (i = 0; i < N; i = i + 1) { aput(vals, i, -1); }
	aput(vals, 0, 0);
	var round;
	for (round = 0; round < 8; round = round + 1) {
		store64(&changed, 0);
		omp_parallel_for(relax, 0, N, 0, 4);
		if (load64(&changed) == 0) { break; }
	}
	var reached = 0;
	for (i = 0; i < N; i = i + 1) {
		if (aget(vals, i) >= 0) { reached = reached + 1; }
	}
	if (reached < N / 2) { return 1; }
	return 42;
}`, 42)
}

// gapCC: Shiloach-Vishkin-flavoured label propagation.
func gapCC(width int) *Workload {
	return gapWorkload("cc", width, `
var changed = 0;

func propagate(lo, hi, arg) {
	var u;
	for (u = lo; u < hi; u = u + 1) {
		var lu = aget(vals, u);
		var e;
		for (e = 0; e < D; e = e + 1) {
			var v = aget(adj, u*D + e);
			var lv = aget(vals, v);
			if (lv < lu) {
				aput(vals, u, lv);
				lu = lv;
				atomic_add(&changed, 1);
			}
		}
	}
	return 0;
}

func main() {
	build_graph(1024, 4, 303);
	var i;
	for (i = 0; i < N; i = i + 1) { aput(vals, i, i); }
	var round;
	for (round = 0; round < 10; round = round + 1) {
		store64(&changed, 0);
		omp_parallel_for(propagate, 0, N, 0, 4);
		if (load64(&changed) == 0) { break; }
	}
	var zeros = 0;
	for (i = 0; i < N; i = i + 1) {
		if (aget(vals, i) == 0) { zeros = zeros + 1; }
	}
	if (zeros == 0) { return 1; }
	return 42;
}`, 42)
}

// gapCCSV adds the pointer-jumping shortcut phase.
func gapCCSV(width int) *Workload {
	return gapWorkload("cc_sv", width, `
var changed = 0;

func hook(lo, hi, arg) {
	var u;
	for (u = lo; u < hi; u = u + 1) {
		var e;
		for (e = 0; e < D; e = e + 1) {
			var v = aget(adj, u*D + e);
			var pu = aget(vals, u);
			var pv = aget(vals, v);
			if (pv < pu) {
				aput(vals, u, pv);
				atomic_add(&changed, 1);
			}
		}
	}
	return 0;
}

func shortcut(lo, hi, arg) {
	var u;
	for (u = lo; u < hi; u = u + 1) {
		var p = aget(vals, u);
		aput(vals, u, aget(vals, p));
	}
	return 0;
}

func main() {
	build_graph(1024, 4, 404);
	var i;
	for (i = 0; i < N; i = i + 1) { aput(vals, i, i); }
	var round;
	for (round = 0; round < 8; round = round + 1) {
		store64(&changed, 0);
		omp_parallel_for(hook, 0, N, 0, 4);
		omp_parallel_for(shortcut, 0, N, 0, 4);
		if (load64(&changed) == 0) { break; }
	}
	return 42;
}`, 42)
}

// gapPR: push-style PageRank with atomic accumulation (fixed-point).
func gapPR(width int) *Workload {
	return gapWorkload("pr", width, `
func push(lo, hi, arg) {
	var u;
	for (u = lo; u < hi; u = u + 1) {
		var share = aget(vals, u) / D;
		var e;
		for (e = 0; e < D; e = e + 1) {
			var v = aget(adj, u*D + e);
			atomic_add(vals2 + v*8, share);
		}
	}
	return 0;
}

func apply(lo, hi, arg) {
	var u;
	for (u = lo; u < hi; u = u + 1) {
		aput(vals, u, 150 + (a2get(u) * 85) / 100);
		a2put(u, 0);
	}
	return 0;
}

func main() {
	build_graph(512, 8, 505);
	var i;
	for (i = 0; i < N; i = i + 1) { aput(vals, i, 1000); a2put(i, 0); }
	var it;
	for (it = 0; it < 6; it = it + 1) {
		omp_parallel_for(push, 0, N, 0, 4);
		omp_parallel_for(apply, 0, N, 0, 4);
	}
	var s = 0;
	for (i = 0; i < N; i = i + 1) { s = s + aget(vals, i); }
	if (s == 0) { return 1; }
	return 42;
}`, 42)
}

// gapPRSPMV: pull-style PageRank (sparse-matrix-vector shape, no atomics in
// the inner loop).
func gapPRSPMV(width int) *Workload {
	return gapWorkload("pr_spmv", width, `
func pull(lo, hi, arg) {
	var u;
	for (u = lo; u < hi; u = u + 1) {
		var s = 0;
		var e;
		for (e = 0; e < D; e = e + 1) {
			var v = aget(adj, u*D + e);
			s = s + aget(vals, v) / D;
		}
		a2put(u, 150 + (s * 85) / 100);
	}
	return 0;
}

func copyback(lo, hi, arg) {
	var u;
	for (u = lo; u < hi; u = u + 1) { aput(vals, u, a2get(u)); }
	return 0;
}

func main() {
	build_graph(512, 8, 606);
	var i;
	for (i = 0; i < N; i = i + 1) { aput(vals, i, 1000); }
	var it;
	for (it = 0; it < 6; it = it + 1) {
		omp_parallel_for(pull, 0, N, 0, 4);
		omp_parallel_for(copyback, 0, N, 0, 4);
	}
	var s = 0;
	for (i = 0; i < N; i = i + 1) { s = s + aget(vals, i); }
	if (s == 0) { return 1; }
	return 42;
}`, 42)
}

// gapSSSP: Bellman-Ford rounds with unit-ish weights.
func gapSSSP(width int) *Workload {
	return gapWorkload("sssp", width, `
var changed = 0;

func relax(lo, hi, arg) {
	var u;
	for (u = lo; u < hi; u = u + 1) {
		var du = aget(vals, u);
		if (du < 100000) {
			var e;
			for (e = 0; e < D; e = e + 1) {
				var v = aget(adj, u*D + e);
				var w = 1 + ((u + v) % 4);
				if (du + w < aget(vals, v)) {
					aput(vals, v, du + w);
					atomic_add(&changed, 1);
				}
			}
		}
	}
	return 0;
}

func main() {
	build_graph(1024, 4, 707);
	var i;
	for (i = 0; i < N; i = i + 1) { aput(vals, i, 100000); }
	aput(vals, 0, 0);
	var round;
	for (round = 0; round < 10; round = round + 1) {
		store64(&changed, 0);
		omp_parallel_for(relax, 0, N, 0, 4);
		if (load64(&changed) == 0) { break; }
	}
	var reached = 0;
	for (i = 0; i < N; i = i + 1) {
		if (aget(vals, i) < 100000) { reached = reached + 1; }
	}
	if (reached < N / 2) { return 1; }
	return 42;
}`, 42)
}

// gapTC: triangle counting over the random graph.
func gapTC(width int) *Workload {
	return gapWorkload("tc", width, `
var triangles = 0;

func count(lo, hi, arg) {
	var local = 0;
	var u;
	for (u = lo; u < hi; u = u + 1) {
		var e1;
		for (e1 = 0; e1 < D; e1 = e1 + 1) {
			var v = aget(adj, u*D + e1);
			var e2;
			for (e2 = 0; e2 < D; e2 = e2 + 1) {
				var w = aget(adj, v*D + e2);
				var e3;
				for (e3 = 0; e3 < D; e3 = e3 + 1) {
					if (aget(adj, w*D + e3) == u) { local = local + 1; }
				}
			}
		}
	}
	atomic_add(&triangles, local);
	return 0;
}

func main() {
	build_graph(256, 6, 808);
	omp_parallel_for(count, 0, N, 0, 4);
	if (load64(&triangles) == 0) { return 1; }
	return 42;
}`, 42)
}
