package workloads_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestAllWorkloadsRunCorrectly compiles every workload at O0 and O2 and
// checks the self-validating exit codes on the original binaries.
func TestAllWorkloadsRunCorrectly(t *testing.T) {
	all := workloads.All()
	all = append(all, workloads.Gapbs(32)...)
	if len(all) < 30 {
		t.Fatalf("registry too small: %d", len(all))
	}
	for _, w := range all {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, ccOpt := range []int{0, 2} {
				img, err := w.Compile(ccOpt)
				if err != nil {
					t.Fatalf("O%d: %v", ccOpt, err)
				}
				res, err := w.Run(img, 500_000_000)
				if err != nil {
					t.Fatalf("O%d: %v", ccOpt, err)
				}
				if err := w.Check(res); err != nil {
					t.Fatalf("O%d: %v", ccOpt, err)
				}
			}
		})
	}
}

// TestWorkloadsRecompileCorrectly pushes every workload through the full
// recompiler and diffs against the original (the Table 1 Polynima column).
func TestWorkloadsRecompileCorrectly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	all := workloads.All()
	for _, w := range all {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			img, err := w.Compile(2)
			if err != nil {
				t.Fatal(err)
			}
			p, err := core.NewProject(img, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			// Hybrid recovery: trace the primary input first.
			if _, err := p.Trace([]core.Input{w.Input()}); err != nil {
				t.Fatal(err)
			}
			rec, err := p.Recompile()
			if err != nil {
				t.Fatal(err)
			}
			origRes, err := w.Run(img, 1_000_000_000)
			if err != nil {
				t.Fatal(err)
			}
			recRes, err := w.Run(rec, 2_000_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Check(recRes); err != nil {
				t.Fatalf("recompiled: %v", err)
			}
			if origRes.ExitCode != recRes.ExitCode {
				t.Fatalf("exit divergence: %d vs %d", origRes.ExitCode, recRes.ExitCode)
			}
			_ = vm.Result{}
		})
	}
}

// TestPhoenixFenceRemovalExpectations checks the §4.3 verdicts: all Phoenix
// programs prove non-spinning except pca (false negative kept conservative)
// and histogram (uncovered loop), and every CKit lock is detected.
func TestPhoenixFenceRemovalExpectations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, w := range workloads.Phoenix() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			img, err := w.Compile(2)
			if err != nil {
				t.Fatal(err)
			}
			p, err := core.NewProject(img, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			rep, err := p.FenceOptimize([]core.Input{w.Input()})
			if err != nil {
				t.Fatal(err)
			}
			if rep.FencesRemovable != w.FenceRemovalExpected {
				for _, l := range rep.Loops {
					if l.Spinning || !l.Covered {
						t.Logf("loop %s@%#x spin=%v covered=%v: %s",
							l.Func, l.Header, l.Spinning, l.Covered, l.Reason)
					}
				}
				t.Fatalf("fence removal verdict %v, expected %v",
					rep.FencesRemovable, w.FenceRemovalExpected)
			}
		})
	}
}

func TestCKitLocksDetectedAsSpinning(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, w := range workloads.CKit() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			img, err := w.Compile(2)
			if err != nil {
				t.Fatal(err)
			}
			p, err := core.NewProject(img, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			rep, err := p.FenceOptimize([]core.Input{w.Input()})
			if err != nil {
				t.Fatal(err)
			}
			if rep.FencesRemovable {
				t.Fatal("spinlock implementation not detected (§4.3 true negative)")
			}
		})
	}
}

// TestLightFTPExploitChangesOutput demonstrates the CVE-2023-24042 race:
// the exploit script makes the handler list the USER-overwritten path.
func TestLightFTPExploitChangesOutput(t *testing.T) {
	w := workloads.ByName("lightftp_like")
	img, err := w.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	in := w.Input()
	in.Data = workloads.LightFTPExploit()
	m, err := vm.NewWithExts(img, in.Seed, in.Exts)
	if err != nil {
		t.Fatal(err)
	}
	m.SetInput(in.Data)
	res := m.Run(500_000_000)
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	want := "150\n331\nLIST:<file:/etc/passwd>\n221\n"
	if res.Output != want {
		t.Fatalf("exploit output %q, want %q", res.Output, want)
	}
}
