package workloads

import "repro/internal/core"

// SPECint-like single-threaded programs (Table 4 / Figure 4). Each mirrors
// the control-flow profile of its namesake that matters for hybrid lifting:
// the number of indirect-control-flow sites and targets ranges from zero
// (mcf-like, libquantum-like: an entirely static lift is complete) to large
// function-pointer dispatch tables (gobmk-like), which static disassembly
// cannot resolve and the ICFT tracer or additive lifting must discover.

func specWorkload(name, src string, input []byte, wantExit int) *Workload {
	return &Workload{
		Name: name, Family: "spec", Threads: "single",
		WantExit: wantExit,
		Inputs:   []core.Input{{Data: input, Seed: 31}},
		Source:   src,
	}
}

func specPrograms() []*Workload {
	return []*Workload{
		bzip2Like(), mcfLike(), gobmkLike(), hmmerLike(),
		sjengLike(), libquantumLike(), h264Like(), astarLike(),
	}
}

// bzip2Like: block compressor with mode dispatch through a function-pointer
// table — the Figure 4 vehicle: inputs of increasing complexity exercise
// previously unseen compression modes, each a fresh indirect target.
// Input format: sequence of lines "<mode digit><data...>".
func bzip2Like() *Workload {
	return specWorkload("bzip2_like", `
extern input_byte;
extern malloc;
extern print_i64;

var modes[4];
var buf = 0;
var n = 0;

func read_block() {
	buf = malloc(512);
	n = 0;
	while (1) {
		var c = input_byte();
		if (c == -1 || c == '\n') { return n; }
		if (n < 511) { store8(buf + n, c); n = n + 1; }
	}
	return n;
}

// Mode 0: RLE
func c_rle(len) {
	var out = 0;
	var i = 0;
	while (i < len) {
		var ch = load8(buf + i);
		var run = 1;
		while (i + run < len && load8(buf + i + run) == ch) { run = run + 1; }
		out = out + 2;
		i = i + run;
	}
	return out;
}

// Mode 1: delta + RLE
func c_delta(len) {
	var i;
	for (i = len - 1; i > 0; i = i - 1) {
		store8(buf + i, load8(buf + i) - load8(buf + i - 1));
	}
	return c_rle(len);
}

// Mode 2: move-to-front
func c_mtf(len) {
	var alpha[256];
	var i;
	for (i = 0; i < 256; i = i + 1) { alpha[i] = i; }
	var out = 0;
	for (i = 0; i < len; i = i + 1) {
		var ch = load8(buf + i);
		var j = 0;
		while (alpha[j] != ch) { j = j + 1; }
		if (j < 16) { out = out + 1; } else { out = out + 2; }
		while (j > 0) { alpha[j] = alpha[j-1]; j = j - 1; }
		alpha[0] = ch;
	}
	return out;
}

// Mode 3: simple hash "entropy" estimate
func c_hash(len) {
	var h = 5381;
	var i;
	for (i = 0; i < len; i = i + 1) {
		h = (h * 33 + load8(buf + i)) % 1000003;
	}
	return (h % 100) + len / 2;
}

func main() {
	store64(modes, c_rle);
	store64(modes + 8, c_delta);
	store64(modes + 16, c_mtf);
	store64(modes + 24, c_hash);
	var total = 0;
	while (1) {
		var len = read_block();
		if (len == 0) { break; }
		var mode = load8(buf) - '0';
		if (mode < 0 || mode > 3) { mode = 0; }
		var f = load64(modes + mode * 8);
		// Compress payload (skip the mode byte) via the selected mode.
		var i;
		for (i = 0; i + 1 < len; i = i + 1) { store8(buf + i, load8(buf + i + 1)); }
		total = total + f(len - 1);
	}
	print_i64(total);
	return 42;
}`, []byte("0aaabbbccc\n0dddddd\n"), 42)
}

// mcfLike: network-simplex-ish relaxation over arrays. Zero indirect
// transfers: the static lift is complete (Table 4's 429.mcf row).
func mcfLike() *Workload {
	return specWorkload("mcf_like", `
extern print_i64;
var costn[1024];
var supply[1024];

func main() {
	var i;
	for (i = 0; i < 1024; i = i + 1) {
		costn[i] = (i * 37 + 11) % 100;
		supply[i] = (i * 17) % 50 - 25;
	}
	var round;
	for (round = 0; round < 30; round = round + 1) {
		for (i = 0; i < 1023; i = i + 1) {
			var flow = supply[i];
			if (flow > 0) {
				supply[i] = 0;
				supply[i+1] = supply[i+1] + flow;
				costn[i] = costn[i] + flow;
			}
		}
	}
	var total = 0;
	for (i = 0; i < 1024; i = i + 1) { total = total + costn[i]; }
	print_i64(total % 100000);
	return 42;
}`, nil, 42)
}

// gobmkLike: game-playing move generator dispatching over a large
// function-pointer pattern table — the many-ICFT case (445.gobmk).
func gobmkLike() *Workload {
	return specWorkload("gobmk_like", `
extern print_i64;
var board[361];
var pats[16];

func p0(x) { return x + 1; }
func p1(x) { return x * 2 + 1; }
func p2(x) { return x ^ 85; }
func p3(x) { return (x << 2) - x; }
func p4(x) { return x * x % 361; }
func p5(x) { return 361 - x; }
func p6(x) { return (x * 31) % 361; }
func p7(x) { return x / 2 + 9; }
func p8(x) { return (x + 180) % 361; }
func p9(x) { return x * 3 % 359; }
func p10(x) { return (x ^ 255) % 361; }
func p11(x) { return x % 19 * 19 + x / 19; }
func p12(x) { return (x * 7 + 5) % 361; }
func p13(x) { return x - (x % 19); }
func p14(x) { return (x * 13) % 353; }
func p15(x) { return (x + x / 3) % 361; }

func main() {
	store64(pats, p0); store64(pats+8, p1); store64(pats+16, p2);
	store64(pats+24, p3); store64(pats+32, p4); store64(pats+40, p5);
	store64(pats+48, p6); store64(pats+56, p7); store64(pats+64, p8);
	store64(pats+72, p9); store64(pats+80, p10); store64(pats+88, p11);
	store64(pats+96, p12); store64(pats+104, p13); store64(pats+112, p14);
	store64(pats+120, p15);
	var score = 0;
	var pos;
	for (pos = 0; pos < 361; pos = pos + 1) {
		var pat;
		for (pat = 0; pat < 16; pat = pat + 1) {
			var f = load64(pats + pat * 8);
			var v = f(pos);
			if (v < 0) { v = -v; }
			board[v % 361] = board[v % 361] + 1;
			score = score + (v & 7);
		}
	}
	print_i64(score);
	return 42;
}`, nil, 42)
}

// hmmerLike: Viterbi-style dynamic-programming matrix fill (456.hmmer); a
// handful of indirect transfers from one scoring callback.
func hmmerLike() *Workload {
	return specWorkload("hmmer_like", `
extern print_i64;
var dp[2048];   // 32 states x 64 positions
var seq[64];

func score_match(s, c) { return (s * 7 + c * 3) % 17 - 8; }

func main() {
	var scorer = score_match;
	var i;
	for (i = 0; i < 64; i = i + 1) { seq[i] = (i * 29 + 7) % 4; }
	for (i = 0; i < 32; i = i + 1) { dp[i] = 0; }
	var pos;
	for (pos = 1; pos < 64; pos = pos + 1) {
		var st;
		for (st = 0; st < 32; st = st + 1) {
			var stay = dp[(pos-1)*32 + st];
			var move = -1000;
			if (st > 0) { move = dp[(pos-1)*32 + st - 1]; }
			var best = stay;
			if (move > best) { best = move; }
			dp[pos*32 + st] = best + scorer(st, seq[pos]);
		}
	}
	var max = -100000;
	for (i = 0; i < 32; i = i + 1) {
		if (dp[63*32 + i] > max) { max = dp[63*32 + i]; }
	}
	print_i64(max);
	return 42;
}`, nil, 42)
}

// sjengLike: alpha-beta game search with evaluator dispatch (458.sjeng).
func sjengLike() *Workload {
	return specWorkload("sjeng_like", `
extern print_i64;
var evals[4];

func e_mat(p) { return p % 100 - 50; }
func e_pos(p) { return (p * 13) % 61 - 30; }
func e_king(p) { return (p ^ 44) % 41 - 20; }
func e_pawn(p) { return (p * 7) % 31 - 15; }

func search(pos, depth, alpha, beta) {
	if (depth == 0) {
		var f = load64(evals + (pos & 3) * 8);
		return f(pos);
	}
	var best = -10000;
	var mv;
	for (mv = 0; mv < 4; mv = mv + 1) {
		var child = (pos * 5 + mv * 3 + 1) % 997;
		var v = -search(child, depth - 1, -beta, -alpha);
		if (v > best) { best = v; }
		if (best > alpha) { alpha = best; }
		if (alpha >= beta) { break; }
	}
	return best;
}

func main() {
	store64(evals, e_mat);
	store64(evals + 8, e_pos);
	store64(evals + 16, e_king);
	store64(evals + 24, e_pawn);
	var v = search(1, 7, -10000, 10000);
	print_i64(v);
	return 42;
}`, nil, 42)
}

// libquantumLike: quantum register simulation as pure bit manipulation;
// zero indirect transfers (462.libquantum).
func libquantumLike() *Workload {
	return specWorkload("libquantum_like", `
extern print_i64;
var reg[256];

func main() {
	var i;
	for (i = 0; i < 256; i = i + 1) { reg[i] = i; }
	var gate;
	for (gate = 0; gate < 60; gate = gate + 1) {
		var bit = gate % 8;
		for (i = 0; i < 256; i = i + 1) {
			reg[i] = reg[i] ^ (1 << bit);
			reg[i] = (reg[i] * 3 + gate) % 65536;
		}
	}
	var h = 0;
	for (i = 0; i < 256; i = i + 1) { h = (h * 31 + reg[i]) % 1000003; }
	print_i64(h);
	return 42;
}`, nil, 42)
}

// h264Like: block transform with per-macroblock mode dispatch (464.h264ref).
func h264Like() *Workload {
	return specWorkload("h264_like", `
extern print_i64;
var frame[1024];
var preds[4];

func pred_dc(b) { return 128; }
func pred_h(b) { return frame[b] & 255; }
func pred_v(b) { return (frame[b] >> 8) & 255; }
func pred_plane(b) { return (frame[b] * 3) & 255; }

func main() {
	store64(preds, pred_dc);
	store64(preds + 8, pred_h);
	store64(preds + 16, pred_v);
	store64(preds + 24, pred_plane);
	var i;
	for (i = 0; i < 1024; i = i + 1) { frame[i] = (i * 2654435761) % 65536; }
	var sad = 0;
	var mb;
	for (mb = 0; mb < 64; mb = mb + 1) {
		var mode = frame[mb * 16] & 3;
		var f = load64(preds + mode * 8);
		var k;
		for (k = 0; k < 16; k = k + 1) {
			var d = (frame[mb*16 + k] & 255) - f(mb*16 + k);
			if (d < 0) { d = -d; }
			sad = sad + d;
		}
	}
	print_i64(sad);
	return 42;
}`, nil, 42)
}

// astarLike: grid pathfinding; a couple of indirect transfers from a
// heuristic callback (473.astar).
func astarLike() *Workload {
	return specWorkload("astar_like", `
extern print_i64;
var grid[1024];   // 32x32 costs
var dist[1024];

func h_manhattan(x, y) { return (31 - x) + (31 - y); }

func main() {
	var hfn = h_manhattan;
	var i;
	for (i = 0; i < 1024; i = i + 1) {
		grid[i] = 1 + (i * 2654435761) % 9;
		dist[i] = 1000000;
	}
	dist[0] = 0;
	var round;
	for (round = 0; round < 64; round = round + 1) {
		for (i = 0; i < 1024; i = i + 1) {
			var x = i % 32;
			var y = i / 32;
			var d = dist[i];
			if (d < 1000000) {
				if (x < 31 && d + grid[i+1] < dist[i+1]) { dist[i+1] = d + grid[i+1]; }
				if (y < 31 && d + grid[i+32] < dist[i+32]) { dist[i+32] = d + grid[i+32]; }
			}
		}
	}
	var est = dist[1023] + hfn(31, 31);
	print_i64(est);
	return 42;
}`, nil, 42)
}

// Bzip2Inputs returns the Figure 4 input series: progressively complex
// inputs exercising new compression modes (new indirect targets). The
// names mirror the paper's x-axis (SPEC test inputs through
// input.program).
func Bzip2Inputs() []struct {
	Name string
	Data []byte
} {
	return []struct {
		Name string
		Data []byte
	}{
		{"dryer.jpg", []byte("0aaaaabbbb\n0ccccdddd\n")},
		{"text.html", []byte("0aaabb\n1abcabcabc\n")},
		{"chicken.jpg", []byte("1deltadelta\n2mtfmtfmtf\n")},
		{"liberty.jpg", []byte("2aabbaabb\n1xyxyxy\n")},
		{"input.program", []byte("3hashhash\n2mtf\n1d\n0r\n")},
	}
}
