package lower

import (
	"fmt"

	"repro/internal/ir"
)

// splitCriticalEdges inserts empty forwarding blocks on every edge whose
// source has multiple successors and whose destination has multiple
// predecessors and carries phis. Phi moves can then be placed at the end of
// the (now unique-purpose) predecessor block.
func splitCriticalEdges(f *ir.Func) {
	preds := ir.Preds(f)
	// Snapshot: we mutate the block list while iterating.
	blocks := append([]*ir.Block(nil), f.Blocks...)
	n := 0
	for _, b := range blocks {
		t := b.Term()
		if t == nil || len(t.Targets) < 2 {
			continue
		}
		for ti, succ := range t.Targets {
			if len(preds[succ]) < 2 {
				continue
			}
			if len(succ.Insts) == 0 || succ.Insts[0].Op != ir.OpPhi {
				continue
			}
			n++
			eb := f.NewBlock(fmt.Sprintf("edge_%s_%d_%d", b.Name, ti, n))
			br := eb.Append(ir.OpBr)
			br.Targets = []*ir.Block{succ}
			t.Targets[ti] = eb
			// Retarget the phi predecessor entries for THIS edge only: a
			// block may reach succ through several switch cases; each
			// target slot owns one phi entry. Rewrite one matching entry.
			for _, v := range succ.Insts {
				if v.Op != ir.OpPhi {
					break
				}
				for pi, p := range v.PhiPreds {
					if p == b {
						v.PhiPreds[pi] = eb
						break
					}
				}
			}
		}
	}
}

// phiMove is one destination <- source copy at the end of a block.
type phiMove struct {
	phi *ir.Value
	arg *ir.Value
}

// collectPhiMoves destroys SSA phis into per-edge parallel copies. After
// splitCriticalEdges, every phi-carrying edge ends in a block whose only
// exit is that edge, so the copies attach to the predecessor block.
// The phis themselves remain as location-carrying markers (the register
// allocator assigns them a home like any long-lived value); they emit no
// code.
func collectPhiMoves(f *ir.Func) (map[*ir.Block][]phiMove, error) {
	moves := map[*ir.Block][]phiMove{}
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op != ir.OpPhi {
				break
			}
			for i, p := range v.PhiPreds {
				arg := v.Args[i]
				if arg == v {
					continue // self-loop: no copy needed
				}
				moves[p] = append(moves[p], phiMove{phi: v, arg: arg})
			}
		}
	}
	// Sanity: a block feeding phis of two different successors would break
	// the parallel-copy placement; edge splitting must have prevented it.
	for p, ms := range moves {
		seen := map[*ir.Block]bool{}
		for _, m := range ms {
			seen[m.phi.Block] = true
		}
		if len(seen) > 1 {
			return nil, fmt.Errorf("lower: block %s feeds phis in %d successors (missed critical edge)", p.Name, len(seen))
		}
	}
	return moves, nil
}
