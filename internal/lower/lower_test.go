package lower_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/lifter"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/tracer"
	"repro/internal/vm"
)

// recompile runs the full static pipeline: disassemble, lift, optimize,
// lower.
func recompile(t *testing.T, img *image.Image, optimize bool) *image.Image {
	t.Helper()
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := lifter.Lift(img, g, lifter.Options{InsertFences: true})
	if err != nil {
		t.Fatal(err)
	}
	if optimize {
		if err := opt.Run(lf.Mod, opt.Options{Verify: true}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := lower.Lower(lf)
	if err != nil {
		t.Fatal(err)
	}
	return res.Img
}

// diffRun executes both binaries and requires identical exit codes and
// output.
func diffRun(t *testing.T, orig, rec *image.Image, input []byte, seed int64) (vm.Result, vm.Result) {
	t.Helper()
	run := func(img *image.Image) vm.Result {
		m, err := vm.New(img, seed)
		if err != nil {
			t.Fatal(err)
		}
		if input != nil {
			m.SetInput(input)
		}
		return m.Run(200_000_000)
	}
	ro := run(orig)
	rr := run(rec)
	if ro.Fault != nil {
		t.Fatalf("original faulted: %v (out=%q)", ro.Fault, ro.Output)
	}
	if rr.Fault != nil {
		t.Fatalf("recompiled faulted: %v (out=%q)", rr.Fault, rr.Output)
	}
	if ro.ExitCode != rr.ExitCode || ro.Output != rr.Output {
		t.Fatalf("divergence: exit %d/%d, output %q vs %q",
			ro.ExitCode, rr.ExitCode, ro.Output, rr.Output)
	}
	return ro, rr
}

// diffSource compiles src at both -O0 and -O2, recompiles each with and
// without IR optimization, and checks behavioural equivalence everywhere.
func diffSource(t *testing.T, src string, input []byte) {
	t.Helper()
	for _, ccOpt := range []int{0, 2} {
		img, _, err := cc.Compile(src, cc.Config{Name: "t", Opt: ccOpt})
		if err != nil {
			t.Fatalf("cc O%d: %v", ccOpt, err)
		}
		for _, irOpt := range []bool{false, true} {
			rec := recompile(t, img, irOpt)
			diffRun(t, img, rec, input, 11)
		}
	}
}

func TestRecompileReturn(t *testing.T) {
	diffSource(t, `func main() { return 42; }`, nil)
}

func TestRecompileArithLoop(t *testing.T) {
	diffSource(t, `
extern print_i64;
func main() {
	var s = 0;
	var i;
	for (i = 0; i < 50; i = i + 1) { s = s + i * 3 - (i & 5); }
	print_i64(s);
	return s % 200;
}`, nil)
}

func TestRecompileCallsAndRecursion(t *testing.T) {
	diffSource(t, `
extern print_i64;
func fib(n) {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
func main() { print_i64(fib(15)); return 0; }`, nil)
}

func TestRecompileGlobalsArraysStrings(t *testing.T) {
	diffSource(t, `
extern print_str;
extern print_i64;
var g = 3;
var tbl[4] = {10, 20, 30, 40};
func main() {
	var buf[8];
	var i;
	for (i = 0; i < 4; i = i + 1) { buf[i] = tbl[i] + g; }
	print_str("vals:");
	for (i = 0; i < 4; i = i + 1) { print_i64(buf[i]); }
	return 0;
}`, nil)
}

func TestRecompileVLA(t *testing.T) {
	diffSource(t, `
func sumn(n) {
	var a[n];
	var i;
	for (i = 0; i < n; i = i + 1) { a[i] = i * 2; }
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
	return s;
}
func main() { return sumn(9) + sumn(17); }`, nil)
}

func TestRecompilePointersWidths(t *testing.T) {
	diffSource(t, `
var buf[4];
func main() {
	var x = 1000;
	var p = &x;
	*p = *p + 24;
	store8(buf, 200);
	store32(buf + 8, -7);
	return load8(buf) + load32(buf + 8) + x / 100;
}`, nil)
}

func TestRecompileFunctionPointerWithTracing(t *testing.T) {
	// Function pointers need dynamic targets; without tracing the
	// recompiled binary must stop with a controlled miss, and with traced
	// targets it must run to completion.
	src := `
func f1(x) { return x + 1; }
func f2(x) { return x * 2; }
func pick(sel) { if (sel) { return f1; } return f2; }
func main() {
	var fp = pick(1);
	var a = fp(10);
	fp = pick(0);
	return a + fp(10);
}`
	img, _, err := cc.Compile(src, cc.Config{Name: "t", Opt: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}

	// Static only: must exit with the miss code, not crash wildly.
	lf, err := lifter.Lift(img, g, lifter.Options{InsertFences: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := lower.Lower(lf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(res.Img, 3)
	if err != nil {
		t.Fatal(err)
	}
	missed := false
	m.MissHook = func(th *vm.Thread, site, target uint64) { missed = true }
	out := m.Run(100_000_000)
	if out.Fault != nil {
		t.Fatalf("static recompile fault: %v", out.Fault)
	}
	if out.ExitCode != vm.MissExitCode || !missed {
		t.Fatalf("expected control-flow miss, got exit %d (missed=%v)", out.ExitCode, missed)
	}

	// With traced targets the program runs to completion.
	gt := g.Clone()
	if _, err := tracer.Trace(img, gt, []tracer.Run{{Seed: 1}}, 50_000_000); err != nil {
		t.Fatal(err)
	}
	lf2, err := lifter.Lift(img, gt, lifter.Options{InsertFences: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Run(lf2.Mod, opt.Options{Verify: true}); err != nil {
		t.Fatal(err)
	}
	res2, err := lower.Lower(lf2)
	if err != nil {
		t.Fatal(err)
	}
	diffRun(t, img, res2.Img, nil, 3)
}
