package lower

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/mx"
)

// lowerInst generates code for one materialized instruction at its program
// point.
func (fl *funcLower) lowerInst(v *ir.Value, b *ir.Block, bi, ii int) error {
	e := fl.e
	switch v.Op {
	case ir.OpConst, ir.OpUndef:
		// Rematerialized at uses.
		return nil
	case ir.OpGlobalAddr, ir.OpFuncAddr,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLshr, ir.OpAshr,
		ir.OpNeg, ir.OpNot, ir.OpICmp:
		r, err := fl.evalOp(v, 0)
		if err != nil {
			return err
		}
		fl.storeResult(v, r)
		return nil

	case ir.OpLoad:
		ma, err := fl.memOperandIdx(v.Args[0])
		if err != nil {
			return err
		}
		op, err := loadOp(v)
		if err != nil {
			return err
		}
		if ma.hasIdx {
			iop := map[mx.Op]mx.Op{mx.LOAD8: mx.LOADIDX8, mx.LOAD32: mx.LOADIDX32, mx.LOAD64: mx.LOADIDX64}[op]
			e.emit(mx.Inst{Op: iop, Dst: mx.R10, Base: ma.base, Idx: ma.idx, Scale: ma.scale, Disp: ma.disp})
		} else {
			e.emit(mx.Inst{Op: op, Dst: mx.R10, Base: ma.base, Disp: ma.disp})
		}
		fl.storeResult(v, mx.R10)
		return nil

	case ir.OpStore:
		// Evaluate the address first (it may use both scratch registers).
		ma, err := fl.memOperandIdx(v.Args[0])
		if err != nil {
			return err
		}
		var val mx.Reg
		if fl.isLeaf(v.Args[1]) {
			// Leaf values load through RSI, leaving R10/R11 (possible
			// address parts) untouched.
			val, err = fl.leafReg(v.Args[1], mx.RSI)
			if err != nil {
				return err
			}
		} else {
			// Protect scratch-resident address parts across the value
			// evaluation, then hold the value in RSI.
			isScratch := func(r mx.Reg) bool { return r == mx.R10 || r == mx.R11 }
			savedIdx := ma.hasIdx && isScratch(ma.idx)
			savedBase := isScratch(ma.base)
			if savedIdx {
				e.emit(mx.Inst{Op: mx.PUSH, Dst: ma.idx})
			}
			if savedBase {
				e.emit(mx.Inst{Op: mx.PUSH, Dst: ma.base})
			}
			r, err := fl.treeEval(v.Args[1], 0)
			if err != nil {
				return err
			}
			if r != mx.RSI {
				e.emit(mx.Inst{Op: mx.MOVRR, Dst: mx.RSI, Src: r})
			}
			val = mx.RSI
			if savedBase {
				e.emit(mx.Inst{Op: mx.POP, Dst: ma.base})
			}
			if savedIdx {
				e.emit(mx.Inst{Op: mx.POP, Dst: ma.idx})
			}
		}
		return fl.emitStore(v, ma, val)

	case ir.OpVRegLoad:
		off, ok := fl.env.tlsOff[v.Global]
		if !ok {
			return fmt.Errorf("vreg %s has no TLS offset", v.Global.Name)
		}
		e.emit(mx.Inst{Op: mx.LOAD64, Dst: mx.R10, Base: mx.R15, Disp: off})
		fl.storeResult(v, mx.R10)
		return nil

	case ir.OpVRegStore:
		off, ok := fl.env.tlsOff[v.Global]
		if !ok {
			return fmt.Errorf("vreg %s has no TLS offset", v.Global.Name)
		}
		val, err := fl.treeEval(v.Args[0], 0)
		if err != nil {
			return err
		}
		e.emit(mx.Inst{Op: mx.STORE64, Dst: val, Base: mx.R15, Disp: off})
		return nil

	case ir.OpAtomicRMW:
		return fl.lowerRMW(v)

	case ir.OpCmpXchg:
		// addr -> R10, expected -> RAX, new -> R11.
		addr, err := fl.treeEval(v.Args[0], 0)
		if err != nil {
			return err
		}
		e.emit(mx.Inst{Op: mx.PUSH, Dst: addr})
		exp, err := fl.treeEval(v.Args[1], 0)
		if err != nil {
			return err
		}
		e.emit(mx.Inst{Op: mx.PUSH, Dst: exp})
		newv, err := fl.treeEval(v.Args[2], 0)
		if err != nil {
			return err
		}
		if newv != mx.R11 {
			e.emit(mx.Inst{Op: mx.MOVRR, Dst: mx.R11, Src: newv})
		}
		e.emit(mx.Inst{Op: mx.POP, Dst: mx.RAX})
		e.emit(mx.Inst{Op: mx.POP, Dst: mx.R10})
		e.emit(mx.Inst{Op: mx.CMPXCHG, Dst: mx.R11, Base: mx.R10})
		// RAX now holds the old value on both outcomes.
		fl.storeResult(v, mx.RAX)
		return nil

	case ir.OpFence, ir.OpBarrier:
		// On a TSO-like target, fences and barriers constrain only the
		// optimizer; the machine's memory model already provides the
		// required ordering (§3.4: "we care about memory access
		// reorderings only at the IR-level"). A weakly-ordered target must
		// order its store buffer explicitly, so every fence the optimizer
		// kept becomes a real instruction there — which is what makes the
		// fence-optimization pass a measurable win cross-ISA.
		if fl.env.tgt.WeakOrder {
			e.emit(mx.Inst{Op: fl.env.tgt.FenceOp})
			fl.env.fences++
		}
		return nil

	case ir.OpSelect:
		cond, err := fl.treeEval(v.Args[0], 0)
		if err != nil {
			return err
		}
		e.emit(mx.Inst{Op: mx.TESTRR, Dst: cond, Src: cond})
		elseL := e.freshLabel("sel_else")
		endL := e.freshLabel("sel_end")
		e.jcc(mx.CondE, elseL)
		a, err := fl.treeEval(v.Args[1], 0)
		if err != nil {
			return err
		}
		if a != mx.R10 {
			e.emit(mx.Inst{Op: mx.MOVRR, Dst: mx.R10, Src: a})
		}
		e.jmp(endL)
		e.label(elseL)
		bv, err := fl.treeEval(v.Args[2], 0)
		if err != nil {
			return err
		}
		if bv != mx.R10 {
			e.emit(mx.Inst{Op: mx.MOVRR, Dst: mx.R10, Src: bv})
		}
		e.label(endL)
		fl.storeResult(v, mx.R10)
		return nil

	case ir.OpCall:
		e.call(fl.env.fnLabel(v.Fn))
		if v.HasResult() {
			fl.storeResult(v, mx.RAX)
		}
		return nil

	case ir.OpCallExt:
		argRegs := fl.env.tgt.ArgRegs
		if len(v.Args) > len(argRegs) {
			return fmt.Errorf("external call with %d args", len(v.Args))
		}
		// Pool registers that double as argument registers are preserved
		// around the call: we clobber them marshaling, and the host
		// clobbers them when invoking callbacks.
		var pres []mx.Reg
		for _, r := range fl.pool {
			if fl.env.tgt.IsMarshal(r) && fl.used[r] {
				if l, ok := fl.loc[v]; ok && l.kind == locReg && l.reg == r {
					continue // the result's own home need not be preserved
				}
				pres = append(pres, r)
				e.emit(mx.Inst{Op: mx.PUSH, Dst: r})
			}
		}
		for _, a := range v.Args {
			r, err := fl.treeEval(a, 0)
			if err != nil {
				return err
			}
			e.emit(mx.Inst{Op: mx.PUSH, Dst: r})
		}
		for i := len(v.Args) - 1; i >= 0; i-- {
			e.emit(mx.Inst{Op: mx.POP, Dst: argRegs[i]})
		}
		e.emit(mx.Inst{Op: mx.CALLX, Ext: fl.env.importIdx(v.ExtName)})
		fl.storeResult(v, mx.RAX)
		for i := len(pres) - 1; i >= 0; i-- {
			e.emit(mx.Inst{Op: mx.POP, Dst: pres[i]})
		}
		return nil

	case ir.OpRet:
		fl.epilogue()
		return nil

	case ir.OpBr:
		fl.phiMovesFor(b)
		if !fl.isNextBlock(bi, v.Targets[0]) {
			e.jmp(fl.blockLabel(v.Targets[0]))
		}
		return nil

	case ir.OpCondBr:
		fl.phiMovesFor(b)
		thenB, elseB := v.Targets[0], v.Targets[1]
		cond := v.Args[0]
		var cc mx.Cond
		if fl.inl[cond] && cond.Op == ir.OpICmp {
			if err := fl.evalCompare(cond, 0); err != nil {
				return err
			}
			cc = predCond(cond.Pred)
		} else {
			r, err := fl.treeEval(cond, 0)
			if err != nil {
				return err
			}
			e.emit(mx.Inst{Op: mx.TESTRR, Dst: r, Src: r})
			cc = mx.CondNE
		}
		switch {
		case fl.isNextBlock(bi, elseB):
			e.jcc(cc, fl.blockLabel(thenB))
		case fl.isNextBlock(bi, thenB):
			e.jcc(cc.Negate(), fl.blockLabel(elseB))
		default:
			e.jcc(cc, fl.blockLabel(thenB))
			e.jmp(fl.blockLabel(elseB))
		}
		return nil

	case ir.OpSwitch:
		fl.phiMovesFor(b)
		val, err := fl.treeEval(v.Args[0], 0)
		if err != nil {
			return err
		}
		for i, c := range v.SwitchVals {
			target := fl.blockLabel(v.Targets[i+1])
			if int64(int32(c)) == c {
				e.emit(mx.Inst{Op: mx.CMPRI, Dst: val, Imm: c})
			} else {
				e.emit(mx.Inst{Op: mx.MOVRI, Dst: mx.R11, Imm: c})
				e.emit(mx.Inst{Op: mx.CMPRR, Dst: val, Src: mx.R11})
			}
			e.jcc(mx.CondE, target)
		}
		if !fl.isNextBlock(bi, v.Targets[0]) {
			e.jmp(fl.blockLabel(v.Targets[0]))
		}
		return nil

	case ir.OpUnreachable:
		e.emit(mx.Inst{Op: mx.UD2})
		return nil
	}
	return fmt.Errorf("unhandled op %s", v.Op)
}

// emitStore emits the store instruction for the decomposed address.
func (fl *funcLower) emitStore(v *ir.Value, ma memAddress, val mx.Reg) error {
	var op, iop mx.Op
	switch v.Width {
	case 1:
		op, iop = mx.STORE8, mx.STOREIDX8
	case 4:
		op, iop = mx.STORE32, mx.STOREIDX32
	case 8:
		op, iop = mx.STORE64, mx.STOREIDX64
	default:
		return fmt.Errorf("bad store width %d", v.Width)
	}
	if ma.hasIdx {
		fl.e.emit(mx.Inst{Op: iop, Dst: val, Base: ma.base, Idx: ma.idx, Scale: ma.scale, Disp: ma.disp})
	} else {
		fl.e.emit(mx.Inst{Op: op, Dst: val, Base: ma.base, Disp: ma.disp})
	}
	return nil
}

func loadOp(v *ir.Value) (mx.Op, error) {
	switch {
	case v.Width == 1 && !v.SignExt:
		return mx.LOAD8, nil
	case v.Width == 4 && v.SignExt:
		return mx.LOAD32, nil
	case v.Width == 8:
		return mx.LOAD64, nil
	}
	return 0, fmt.Errorf("unsupported load width %d sext %v", v.Width, v.SignExt)
}

// lowerRMW lowers an atomicrmw. addr -> R10, operand -> R11; the old value
// lands in R11 (xadd/xchg) or RAX (cmpxchg loop).
func (fl *funcLower) lowerRMW(v *ir.Value) error {
	e := fl.e
	addr, err := fl.treeEval(v.Args[0], 0)
	if err != nil {
		return err
	}
	e.emit(mx.Inst{Op: mx.PUSH, Dst: addr})
	val, err := fl.treeEval(v.Args[1], 0)
	if err != nil {
		return err
	}
	if val != mx.R11 {
		e.emit(mx.Inst{Op: mx.MOVRR, Dst: mx.R11, Src: val})
	}
	e.emit(mx.Inst{Op: mx.POP, Dst: mx.R10})
	switch v.RMW {
	case ir.RMWAdd:
		e.emit(mx.Inst{Op: mx.LOCKXADD, Dst: mx.R11, Base: mx.R10})
		fl.storeResult(v, mx.R11)
	case ir.RMWSub:
		e.emit(mx.Inst{Op: mx.NEG, Dst: mx.R11})
		e.emit(mx.Inst{Op: mx.LOCKXADD, Dst: mx.R11, Base: mx.R10})
		fl.storeResult(v, mx.R11)
	case ir.RMWXchg:
		e.emit(mx.Inst{Op: mx.XCHG, Dst: mx.R11, Base: mx.R10})
		fl.storeResult(v, mx.R11)
	case ir.RMWAnd, ir.RMWOr, ir.RMWXor:
		var op mx.Op
		switch v.RMW {
		case ir.RMWAnd:
			op = mx.ANDRR
		case ir.RMWOr:
			op = mx.ORRR
		default:
			op = mx.XORRR
		}
		retry := e.freshLabel("rmw_retry")
		e.label(retry)
		e.emit(mx.Inst{Op: mx.LOAD64, Dst: mx.RAX, Base: mx.R10})
		e.emit(mx.Inst{Op: mx.MOVRR, Dst: mx.RSI, Src: mx.RAX})
		e.emit(mx.Inst{Op: op, Dst: mx.RSI, Src: mx.R11})
		e.emit(mx.Inst{Op: mx.CMPXCHG, Dst: mx.RSI, Base: mx.R10})
		e.jcc(mx.CondNE, retry)
		fl.storeResult(v, mx.RAX)
	default:
		return fmt.Errorf("unhandled rmw kind %v", v.RMW)
	}
	return nil
}

// phiMovesFor emits the parallel copies feeding successor phis for block b.
// When the copies can be ordered so that no copy reads a destination written
// by an earlier copy, they execute as direct moves (with an in-place
// increment peephole for the canonical loop-counter shape); otherwise all
// sources are staged on the stack first.
func (fl *funcLower) phiMovesFor(b *ir.Block) {
	ms := fl.moves[b]
	if len(ms) == 0 {
		return
	}
	e := fl.e

	// Dependency analysis: move i must precede move j when i's source
	// expression reads j's destination phi.
	dests := map[*ir.Value]int{}
	for i, m := range ms {
		dests[m.phi] = i
	}
	readsDest := func(arg *ir.Value, self int) (deps []int) {
		seen := map[*ir.Value]bool{}
		var walk func(v *ir.Value)
		walk = func(v *ir.Value) {
			if seen[v] {
				return
			}
			seen[v] = true
			if j, ok := dests[v]; ok && j != self {
				deps = append(deps, j)
			}
			if fl.inl[v] {
				for _, a := range v.Args {
					walk(a)
				}
			}
		}
		walk(arg)
		return deps
	}
	// Kahn's algorithm; a cycle falls back to stack staging.
	after := make([][]int, len(ms)) // after[i]: moves that must come after i
	indeg := make([]int, len(ms))
	for i, m := range ms {
		for _, j := range readsDest(m.arg, i) {
			after[i] = append(after[i], j)
			indeg[j]++
		}
	}
	var order []int
	var ready []int
	for i := range ms {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		i := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, i)
		for _, j := range after[i] {
			indeg[j]--
			if indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}

	if len(order) == len(ms) {
		for _, i := range order {
			m := ms[i]
			// Peephole: phi' = phi +/- const with the phi in a register.
			if fl.inl[m.arg] && (m.arg.Op == ir.OpAdd || m.arg.Op == ir.OpSub) &&
				m.arg.Args[0] == m.phi {
				if c, ok := smallConst(m.arg.Args[1]); ok {
					if l, ok := fl.loc[m.phi]; ok && l.kind == locReg {
						op := mx.ADDRI
						if m.arg.Op == ir.OpSub {
							op = mx.SUBRI
						}
						e.emit(mx.Inst{Op: op, Dst: l.reg, Imm: c})
						continue
					}
				}
			}
			r, err := fl.treeEval(m.arg, 0)
			if err != nil {
				fl.e.errf("phi move: %v", err)
				return
			}
			fl.moveToPhi(m.phi, r)
		}
		return
	}

	// Cyclic copies: read all sources (push), then write all destinations
	// (pop, reversed).
	for _, m := range ms {
		r, err := fl.treeEval(m.arg, 0)
		if err != nil {
			fl.e.errf("phi move: %v", err)
			return
		}
		e.emit(mx.Inst{Op: mx.PUSH, Dst: r})
	}
	for i := len(ms) - 1; i >= 0; i-- {
		e.emit(mx.Inst{Op: mx.POP, Dst: mx.R10})
		fl.moveToPhi(ms[i].phi, mx.R10)
	}
}

func (fl *funcLower) moveToPhi(phi *ir.Value, r mx.Reg) {
	l, ok := fl.loc[phi]
	if !ok {
		return // dead phi (kept only by a cycle); no home, no copy
	}
	switch l.kind {
	case locReg:
		if l.reg != r {
			fl.e.emit(mx.Inst{Op: mx.MOVRR, Dst: l.reg, Src: r})
		}
	case locSlot:
		fl.e.emit(mx.Inst{Op: mx.STORE64, Dst: r, Base: mx.RBP, Disp: -l.off})
	}
}

func (fl *funcLower) isNextBlock(bi int, target *ir.Block) bool {
	return bi+1 < len(fl.f.Blocks) && fl.f.Blocks[bi+1] == target
}

// epilogue restores saved registers and returns.
func (fl *funcLower) epilogue() {
	e := fl.e
	if fl.frame > 0 {
		e.emit(mx.Inst{Op: mx.ADDRI, Dst: mx.RSP, Imm: int64(fl.frame)})
	}
	for i := len(fl.pool) - 1; i >= 0; i-- {
		if fl.used[fl.pool[i]] {
			e.emit(mx.Inst{Op: mx.POP, Dst: fl.pool[i]})
		}
	}
	e.emit(mx.Inst{Op: mx.POP, Dst: mx.RBP})
	e.emit(mx.Inst{Op: mx.RET})
}
