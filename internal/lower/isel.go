package lower

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/mx"
)

// Instruction selection.
//
// Register plan (fixed roles; the allocatable pool is target-specific):
//
//	RAX        — external-call results, atomic cmpxchg protocol, scratch
//	Target.PoolRegs — allocatable pool (function-scoped assignment); on
//	             MX64 that is RBX, R12, R13, R14, RDI, RDX, RCX, R8, R9,
//	             on the register-poor MX64W just RBX
//	RBP        — frame pointer (value slots at [rbp - off])
//	RSP        — native stack
//	RSI        — third scratch (atomic RMW loops)
//	R10, R11   — expression scratch
//	R15        — TLS base (virtual CPU state)
//
// Pool registers that overlap the target's ArgRegs are pushed/popped around
// CALLX sites when assigned (the host may clobber them when invoking
// callbacks; see Target.IsMarshal).
//
// Every lifted function saves/restores the pool registers it uses, so values
// held in pool registers survive calls to other lifted functions; callback
// wrappers save the full register file, so they also survive external calls
// that re-enter guest code (§3.3.3).
//
// Values are materialized at their program point into a pool register or a
// frame slot, except pure single-use values, which are folded into their
// consumer as an expression tree (Sethi-Ullman-style with two scratch
// registers and a push/pop overflow path). A short target pool turns
// register pressure into real spill traffic: values that do not fit the
// pool round-trip through frame slots.

type locKind uint8

const (
	locNone locKind = iota
	locReg
	locSlot
)

type location struct {
	kind locKind
	reg  mx.Reg
	off  int32 // slot offset: value at [rbp - off]
}

// funcLower lowers one PIR function.
type funcLower struct {
	env   *env
	e     *emitter
	f     *ir.Func
	pool  []mx.Reg // the target's allocatable pool, in preference order
	loc   map[*ir.Value]location
	inl   map[*ir.Value]bool // tree-inlined (lowered at use site)
	uses  map[*ir.Value]int
	moves map[*ir.Block][]phiMove
	frame int32           // spill-slot bytes (below the saved registers)
	base  int32           // bytes of saved pool registers between rbp and the slots
	used  map[mx.Reg]bool // pool registers in use
	order map[*ir.Block]int
}

// env carries module-level lowering context.
type env struct {
	tgt       *mx.Target
	tlsOff    map[*ir.Global]int32
	importIdx func(string) uint16
	fnLabel   func(*ir.Func) string
	// stateBase, when nonzero, replaces per-thread TLS with a shared state
	// block at this address: R15 is loaded with the constant base instead
	// of TLSBASE (single-thread-state baselines).
	stateBase uint64
	// fences counts fence instructions emitted (weak-ordering targets).
	fences int
}

// emitStateBase loads the virtual-state base register.
func (env *env) emitStateBase(e *emitter) {
	if env.stateBase != 0 {
		e.emit(mx.Inst{Op: mx.MOVRI, Dst: mx.R15, Imm: int64(env.stateBase)})
		return
	}
	e.emit(mx.Inst{Op: mx.TLSBASE, Dst: mx.R15})
}

func isPure(v *ir.Value) bool {
	switch v.Op {
	case ir.OpConst, ir.OpGlobalAddr, ir.OpFuncAddr, ir.OpUndef,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLshr, ir.OpAshr,
		ir.OpNeg, ir.OpNot, ir.OpICmp:
		return true
	}
	return false
}

// lowerFunc generates code for f into e.
func lowerFunc(env *env, e *emitter, f *ir.Func) error {
	splitCriticalEdges(f)
	moves, err := collectPhiMoves(f)
	if err != nil {
		return err
	}
	fl := &funcLower{
		env: env, e: e, f: f,
		pool:  env.tgt.PoolRegs,
		loc:   map[*ir.Value]location{},
		inl:   map[*ir.Value]bool{},
		moves: moves,
		used:  map[mx.Reg]bool{},
		order: map[*ir.Block]int{},
	}
	for i, b := range f.Blocks {
		fl.order[b] = i
	}
	fl.uses = map[*ir.Value]int{}
	sameBlockSingleUse := map[*ir.Value]bool{}
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			for _, a := range v.Args {
				if v.Op == ir.OpPhi {
					// Phi operands are consumed by the corresponding phi
					// move, which is counted below; counting here too
					// would double-count.
					sameBlockSingleUse[a] = false // used across an edge
					continue
				}
				fl.uses[a]++
				if _, seen := sameBlockSingleUse[a]; !seen {
					sameBlockSingleUse[a] = a.Block == b
				} else {
					sameBlockSingleUse[a] = false
				}
			}
		}
	}
	// Phi moves count as uses (the arg is consumed at the pred's end).
	for _, ms := range moves {
		for _, m := range ms {
			fl.uses[m.arg]++
			sameBlockSingleUse[m.arg] = false
		}
	}

	// Decide tree inlining.
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if isPure(v) && fl.uses[v] == 1 && sameBlockSingleUse[v] {
				fl.inl[v] = true
			}
		}
	}
	// A pure value whose only consumer is a phi move at the end of its own
	// block is computed at the move site (keeps loop-carried updates out of
	// slots).
	for pred, ms := range moves {
		for _, m := range ms {
			if isPure(m.arg) && fl.uses[m.arg] == 1 && m.arg.Block == pred {
				fl.inl[m.arg] = true
			}
		}
	}
	// An add-of-constant used exclusively as load/store addresses folds into
	// the displacement of every access (even multi-use): emulated-stack slot
	// addresses never need a register of their own.
	addrOnly := map[*ir.Value]bool{}
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			for ai, a := range v.Args {
				if a.Op != ir.OpAdd {
					continue
				}
				if _, isC := smallConst(a.Args[1]); !isC {
					continue
				}
				isAddr := ai == 0 && (v.Op == ir.OpLoad || v.Op == ir.OpStore)
				if prev, seen := addrOnly[a]; !seen {
					addrOnly[a] = isAddr
				} else {
					addrOnly[a] = prev && isAddr
				}
			}
		}
	}
	for _, ms := range moves {
		for _, m := range ms {
			delete(addrOnly, m.arg) // consumed by a phi move too
		}
	}
	for v, ok := range addrOnly {
		if ok && !fl.inl[v] {
			fl.inl[v] = true
		}
	}

	// Register assignment: phis first (loop-carried state), then the most
	// used materialized values.
	type cand struct {
		v     *ir.Value
		score int
	}
	var cands []cand
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if !v.HasResult() || fl.inl[v] || fl.uses[v] == 0 {
				continue
			}
			if v.Op == ir.OpConst || v.Op == ir.OpUndef {
				continue // rematerialized
			}
			score := fl.uses[v]
			if v.Op == ir.OpPhi {
				score += 100
			}
			cands = append(cands, cand{v, score})
		}
	}
	for len(fl.used) < len(fl.pool) && len(cands) > 0 {
		best := 0
		for i := range cands {
			if cands[i].score > cands[best].score {
				best = i
			}
		}
		r := fl.pool[len(fl.used)]
		fl.loc[cands[best].v] = location{kind: locReg, reg: r}
		fl.used[r] = true
		cands = append(cands[:best], cands[best+1:]...)
	}
	// Everything else materialized gets a slot. Slots live BELOW the saved
	// pool registers (which the prologue pushes right under rbp), so their
	// rbp-relative offsets are shifted by the save area.
	fl.base = int32(8 * len(fl.used))
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if !v.HasResult() || fl.inl[v] || fl.uses[v] == 0 {
				continue
			}
			if v.Op == ir.OpConst || v.Op == ir.OpUndef {
				continue
			}
			if _, ok := fl.loc[v]; ok {
				continue
			}
			fl.frame += 8
			fl.loc[v] = location{kind: locSlot, off: fl.base + fl.frame}
		}
	}

	// Prologue.
	e.label(env.fnLabel(f))
	e.emit(mx.Inst{Op: mx.PUSH, Dst: mx.RBP})
	e.emit(mx.Inst{Op: mx.MOVRR, Dst: mx.RBP, Src: mx.RSP})
	for _, r := range fl.pool {
		if fl.used[r] {
			e.emit(mx.Inst{Op: mx.PUSH, Dst: r})
		}
	}
	if fl.frame > 0 {
		e.emit(mx.Inst{Op: mx.SUBRI, Dst: mx.RSP, Imm: int64(fl.frame)})
	}
	env.emitStateBase(e)

	for bi, b := range f.Blocks {
		e.label(fl.blockLabel(b))
		for ii, v := range b.Insts {
			if fl.inl[v] || v.Op == ir.OpPhi {
				continue
			}
			if err := fl.lowerInst(v, b, bi, ii); err != nil {
				return fmt.Errorf("@%s/%s: %s: %w", f.Name, b.Name, v, err)
			}
		}
	}
	return nil
}

func (fl *funcLower) blockLabel(b *ir.Block) string {
	return fmt.Sprintf("B_%s_%d", fl.f.Name, fl.order[b])
}

// --- operand evaluation ------------------------------------------------------

func scratch(depth int) mx.Reg {
	if depth == 0 {
		return mx.R10
	}
	return mx.R11
}

// treeEval materializes v into a register at a USE site: located values
// return their pool register (callers must not clobber it) or are loaded
// from their slot; unlocated values are computed as expression trees.
// Invariant: evaluation at depth >= 1 preserves R10.
func (fl *funcLower) treeEval(v *ir.Value, depth int) (mx.Reg, error) {
	e := fl.e
	if l, ok := fl.loc[v]; ok {
		switch l.kind {
		case locReg:
			return l.reg, nil
		case locSlot:
			dst := scratch(depth)
			e.emit(mx.Inst{Op: mx.LOAD64, Dst: dst, Base: mx.RBP, Disp: -l.off})
			return dst, nil
		}
	}
	return fl.evalOp(v, depth)
}

// evalOp computes v (a pure operation) into scratch(depth); used both for
// inlined trees at use sites and at the def site of multi-use pure values.
func (fl *funcLower) evalOp(v *ir.Value, depth int) (mx.Reg, error) {
	e := fl.e
	dst := scratch(depth)
	switch v.Op {
	case ir.OpConst:
		e.emit(mx.Inst{Op: mx.MOVRI, Dst: dst, Imm: v.Const})
		return dst, nil
	case ir.OpUndef:
		e.emit(mx.Inst{Op: mx.MOVRI, Dst: dst, Imm: 0})
		return dst, nil
	case ir.OpGlobalAddr:
		return dst, fl.globalAddr(v.Global, dst)
	case ir.OpFuncAddr:
		e.movSym(dst, fl.env.fnLabel(v.Fn))
		return dst, nil
	case ir.OpNeg, ir.OpNot:
		ra, err := fl.treeEval(v.Args[0], depth)
		if err != nil {
			return 0, err
		}
		if ra != dst {
			e.emit(mx.Inst{Op: mx.MOVRR, Dst: dst, Src: ra})
		}
		op := mx.NEG
		if v.Op == ir.OpNot {
			op = mx.NOT
		}
		e.emit(mx.Inst{Op: op, Dst: dst})
		return dst, nil
	case ir.OpICmp:
		if err := fl.evalCompare(v, depth); err != nil {
			return 0, err
		}
		e.emit(mx.Inst{Op: mx.SETCC, Dst: dst, Cc: predCond(v.Pred)})
		return dst, nil
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLshr, ir.OpAshr:
		return fl.evalBinary(v, depth)
	}
	return 0, fmt.Errorf("cannot tree-evaluate %s (value %%%d)", v.Op, v.ID)
}

var binOpsRR = map[ir.Op]mx.Op{
	ir.OpAdd: mx.ADDRR, ir.OpSub: mx.SUBRR, ir.OpMul: mx.IMULRR,
	ir.OpSDiv: mx.DIVRR, ir.OpSRem: mx.MODRR,
	ir.OpAnd: mx.ANDRR, ir.OpOr: mx.ORRR, ir.OpXor: mx.XORRR,
	ir.OpShl: mx.SHLRR, ir.OpLshr: mx.SHRRR, ir.OpAshr: mx.SARRR,
}

var binOpsRI = map[ir.Op]mx.Op{
	ir.OpAdd: mx.ADDRI, ir.OpSub: mx.SUBRI, ir.OpMul: mx.IMULRI,
	ir.OpAnd: mx.ANDRI, ir.OpOr: mx.ORRI, ir.OpXor: mx.XORRI,
	ir.OpShl: mx.SHLRI, ir.OpLshr: mx.SHRRI, ir.OpAshr: mx.SARRI,
}

// smallConst reports a constant operand representable as imm32.
func smallConst(v *ir.Value) (int64, bool) {
	if v.Op == ir.OpConst && int64(int32(v.Const)) == v.Const {
		return v.Const, true
	}
	return 0, false
}

// isLeaf reports whether v can be produced without touching scratch state
// beyond one register (located values, constants).
func (fl *funcLower) isLeaf(v *ir.Value) bool {
	if _, ok := fl.loc[v]; ok {
		return true
	}
	switch v.Op {
	case ir.OpConst, ir.OpUndef, ir.OpFuncAddr, ir.OpGlobalAddr:
		return true
	}
	return false
}

// leafReg produces a leaf value in a register, preferring the given scratch.
func (fl *funcLower) leafReg(v *ir.Value, s mx.Reg) (mx.Reg, error) {
	e := fl.e
	if l, ok := fl.loc[v]; ok {
		switch l.kind {
		case locReg:
			return l.reg, nil
		case locSlot:
			e.emit(mx.Inst{Op: mx.LOAD64, Dst: s, Base: mx.RBP, Disp: -l.off})
			return s, nil
		}
	}
	switch v.Op {
	case ir.OpConst:
		e.emit(mx.Inst{Op: mx.MOVRI, Dst: s, Imm: v.Const})
		return s, nil
	case ir.OpUndef:
		e.emit(mx.Inst{Op: mx.MOVRI, Dst: s, Imm: 0})
		return s, nil
	case ir.OpFuncAddr:
		e.movSym(s, fl.env.fnLabel(v.Fn))
		return s, nil
	case ir.OpGlobalAddr:
		return s, fl.globalAddr(v.Global, s)
	}
	return 0, fmt.Errorf("not a leaf: %s", v.Op)
}

// evalBinary computes a binary operation into scratch(depth).
func (fl *funcLower) evalBinary(v *ir.Value, depth int) (mx.Reg, error) {
	e := fl.e
	dst := scratch(depth)
	a, b := v.Args[0], v.Args[1]

	// Fast path: register-immediate form.
	if c, ok := smallConst(b); ok {
		if opri, has := binOpsRI[v.Op]; has {
			ra, err := fl.treeEval(a, depth)
			if err != nil {
				return 0, err
			}
			if ra != dst {
				e.emit(mx.Inst{Op: mx.MOVRR, Dst: dst, Src: ra})
			}
			e.emit(mx.Inst{Op: opri, Dst: dst, Imm: c})
			return dst, nil
		}
	}
	oprr := binOpsRR[v.Op]

	if fl.isLeaf(b) {
		ra, err := fl.treeEval(a, depth)
		if err != nil {
			return 0, err
		}
		// Pick a register for b that does not collide with dst/ra.
		other := mx.R11
		if dst == mx.R11 || ra == mx.R11 {
			other = mx.RSI
		}
		rb, err := fl.leafReg(b, other)
		if err != nil {
			return 0, err
		}
		if ra != dst {
			e.emit(mx.Inst{Op: mx.MOVRR, Dst: dst, Src: ra})
		}
		e.emit(mx.Inst{Op: oprr, Dst: dst, Src: rb})
		return dst, nil
	}

	if depth == 0 {
		// Two-scratch path: a lands in R10 (or a pool register), and
		// evaluating b at depth 1 preserves R10 by invariant.
		ra, err := fl.treeEval(a, 0)
		if err != nil {
			return 0, err
		}
		rb, err := fl.treeEval(b, 1)
		if err != nil {
			return 0, err
		}
		if ra != dst {
			e.emit(mx.Inst{Op: mx.MOVRR, Dst: dst, Src: ra})
		}
		e.emit(mx.Inst{Op: oprr, Dst: dst, Src: rb})
		return dst, nil
	}

	// General path: evaluate a, protect it on the stack, evaluate b.
	ra, err := fl.treeEval(a, depth)
	if err != nil {
		return 0, err
	}
	e.emit(mx.Inst{Op: mx.PUSH, Dst: ra})
	rb, err := fl.treeEval(b, depth)
	if err != nil {
		return 0, err
	}
	if rb != mx.RSI {
		e.emit(mx.Inst{Op: mx.MOVRR, Dst: mx.RSI, Src: rb})
	}
	e.emit(mx.Inst{Op: mx.POP, Dst: dst})
	e.emit(mx.Inst{Op: oprr, Dst: dst, Src: mx.RSI})
	return dst, nil
}

// evalCompare emits a CMP setting flags for an icmp's operands.
func (fl *funcLower) evalCompare(v *ir.Value, depth int) error {
	e := fl.e
	a, b := v.Args[0], v.Args[1]
	if c, ok := smallConst(b); ok {
		ra, err := fl.treeEval(a, depth)
		if err != nil {
			return err
		}
		e.emit(mx.Inst{Op: mx.CMPRI, Dst: ra, Imm: c})
		return nil
	}
	if fl.isLeaf(b) {
		ra, err := fl.treeEval(a, depth)
		if err != nil {
			return err
		}
		other := mx.R11
		if ra == mx.R11 {
			other = mx.RSI
		}
		rb, err := fl.leafReg(b, other)
		if err != nil {
			return err
		}
		e.emit(mx.Inst{Op: mx.CMPRR, Dst: ra, Src: rb})
		return nil
	}
	if depth == 0 {
		ra, err := fl.treeEval(a, 0)
		if err != nil {
			return err
		}
		rb, err := fl.treeEval(b, 1) // preserves R10
		if err != nil {
			return err
		}
		e.emit(mx.Inst{Op: mx.CMPRR, Dst: ra, Src: rb})
		return nil
	}
	ra, err := fl.treeEval(a, depth)
	if err != nil {
		return err
	}
	e.emit(mx.Inst{Op: mx.PUSH, Dst: ra})
	rb, err := fl.treeEval(b, depth)
	if err != nil {
		return err
	}
	if rb != mx.RSI {
		e.emit(mx.Inst{Op: mx.MOVRR, Dst: mx.RSI, Src: rb})
	}
	pop := scratch(depth) // preserve R10 at depth >= 1
	e.emit(mx.Inst{Op: mx.POP, Dst: pop})
	e.emit(mx.Inst{Op: mx.CMPRR, Dst: pop, Src: mx.RSI})
	return nil
}

func predCond(p ir.Pred) mx.Cond {
	switch p {
	case ir.PredEQ:
		return mx.CondE
	case ir.PredNE:
		return mx.CondNE
	case ir.PredSLT:
		return mx.CondL
	case ir.PredSLE:
		return mx.CondLE
	case ir.PredSGT:
		return mx.CondG
	case ir.PredSGE:
		return mx.CondGE
	case ir.PredULT:
		return mx.CondB
	case ir.PredULE:
		return mx.CondBE
	case ir.PredUGT:
		return mx.CondA
	default:
		return mx.CondAE
	}
}

// globalAddr loads the address of g into dst.
func (fl *funcLower) globalAddr(g *ir.Global, dst mx.Reg) error {
	e := fl.e
	if g.Addr != 0 {
		e.emit(mx.Inst{Op: mx.MOVRI, Dst: dst, Imm: int64(g.Addr)})
		return nil
	}
	if g.ThreadLocal {
		off, ok := fl.env.tlsOff[g]
		if !ok {
			return fmt.Errorf("global %s has no TLS offset", g.Name)
		}
		e.emit(mx.Inst{Op: mx.LEA, Dst: dst, Base: mx.R15, Disp: off})
		return nil
	}
	return fmt.Errorf("global %s has no storage", g.Name)
}

// storeResult places a computed value into its home location.
func (fl *funcLower) storeResult(v *ir.Value, r mx.Reg) {
	l, ok := fl.loc[v]
	if !ok {
		return // unused result
	}
	switch l.kind {
	case locReg:
		if l.reg != r {
			fl.e.emit(mx.Inst{Op: mx.MOVRR, Dst: l.reg, Src: r})
		}
	case locSlot:
		fl.e.emit(mx.Inst{Op: mx.STORE64, Dst: r, Base: mx.RBP, Disp: -l.off})
	}
}

// memOperand resolves a load/store address to base+disp, folding an inlined
// add-of-constant.
func (fl *funcLower) memOperand(addr *ir.Value, depth int) (mx.Reg, int32, error) {
	if fl.inl[addr] && addr.Op == ir.OpAdd {
		if c, ok := smallConst(addr.Args[1]); ok {
			base, err := fl.treeEval(addr.Args[0], depth)
			if err != nil {
				return 0, 0, err
			}
			return base, int32(c), nil
		}
	}
	base, err := fl.treeEval(addr, depth)
	return base, 0, err
}

// memAddress is a decomposed addressing mode: [base + idx*scale + disp]
// (hasIdx false means plain base+disp).
type memAddress struct {
	base, idx mx.Reg
	scale     uint8
	disp      int32
	hasIdx    bool
}

// memOperandIdx resolves a load/store address, additionally fusing the
// base + (idx << k) [+ disp] chains the lifter produces for indexed
// accesses into the ISA's scaled addressing mode. Must be called at
// depth 0 (it uses both scratch registers).
func (fl *funcLower) memOperandIdx(addr *ir.Value) (memAddress, error) {
	a := addr
	disp := int32(0)
	// Peel an outer inlined add-of-constant.
	if fl.inl[a] && a.Op == ir.OpAdd {
		if c, ok := smallConst(a.Args[1]); ok {
			disp = int32(c)
			a = a.Args[0]
		}
	}
	// base + (idx << k) or base + idx, with the shift inlined.
	if fl.inl[a] && a.Op == ir.OpAdd {
		bx, ix := a.Args[0], a.Args[1]
		scale := uint8(0)
		switch {
		case fl.inl[ix] && ix.Op == ir.OpShl:
			if c, ok := smallConst(ix.Args[1]); ok && c >= 0 && c <= 3 {
				scale = 1 << uint(c)
				ix = ix.Args[0]
			}
		default:
			scale = 1
		}
		if scale != 0 {
			base, err := fl.treeEval(bx, 0)
			if err != nil {
				return memAddress{}, err
			}
			idx, err := fl.treeEval(ix, 1) // preserves R10
			if err != nil {
				return memAddress{}, err
			}
			return memAddress{base: base, idx: idx, scale: scale, disp: disp, hasIdx: true}, nil
		}
	}
	base, err := fl.treeEval(a, 0)
	if err != nil {
		return memAddress{}, err
	}
	return memAddress{base: base, disp: disp}, nil
}
