package lower_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/vm"
)

// Multithreaded end-to-end differential tests: the paper's core claim is
// that the recompiled binary preserves the semantics of multithreaded
// programs — per-thread emulated stacks (§3.3.2), callback entry points
// (§3.3.3), and hardware atomics (§3.3.1).

func TestRecompileThreadsAtomicCounter(t *testing.T) {
	diffSource(t, `
extern thread_create;
extern thread_join;
var counter = 0;
func worker(arg) {
	var i;
	for (i = 0; i < 500; i = i + 1) { atomic_add(&counter, arg); }
	return 0;
}
func main() {
	var t1 = thread_create(worker, 1);
	var t2 = thread_create(worker, 2);
	var t3 = thread_create(worker, 3);
	thread_join(t1);
	thread_join(t2);
	thread_join(t3);
	return counter / 20;
}`, nil)
}

func TestRecompileSpinlock(t *testing.T) {
	diffSource(t, `
extern thread_create;
extern thread_join;
var lock = 0;
var count = 0;
func worker(arg) {
	var i;
	for (i = 0; i < 200; i = i + 1) {
		while (atomic_cas(&lock, 0, 1) == 0) { }
		count = count + 1;
		fence();
		store64(&lock, 0);
	}
	return 0;
}
func main() {
	var t1 = thread_create(worker, 0);
	var t2 = thread_create(worker, 0);
	thread_join(t1);
	thread_join(t2);
	return count / 4;
}`, nil)
}

func TestRecompilePerThreadStacks(t *testing.T) {
	// Each worker uses a deep recursive computation on its own emulated
	// stack; results are combined atomically.
	diffSource(t, `
extern thread_create;
extern thread_join;
var total = 0;
func sum(n) {
	if (n == 0) { return 0; }
	return n + sum(n - 1);
}
func worker(arg) {
	var local[32];
	var i;
	for (i = 0; i < 32; i = i + 1) { local[i] = arg + i; }
	var s = sum(arg * 10);
	for (i = 0; i < 32; i = i + 1) { s = s + local[i]; }
	atomic_xadd(&total, s);
	return 0;
}
func main() {
	var t1 = thread_create(worker, 3);
	var t2 = thread_create(worker, 5);
	thread_join(t1);
	thread_join(t2);
	return total % 251;
}`, nil)
}

func TestRecompileQsortCallback(t *testing.T) {
	diffSource(t, `
extern qsort;
extern print_i64;
var arr[8] = {9, 1, 8, 2, 7, 3, 6, 4};
func cmp(pa, pb) { return load64(pa) - load64(pb); }
func main() {
	qsort(arr, 8, 8, cmp);
	var i;
	for (i = 0; i < 8; i = i + 1) { print_i64(arr[i]); }
	return arr[0] + arr[7] * 10;
}`, nil)
}

func TestRecompileOmpParallelFor(t *testing.T) {
	diffSource(t, `
extern omp_parallel_for;
var acc = 0;
func body(lo, hi, arg) {
	var s = 0;
	var i;
	for (i = lo; i < hi; i = i + 1) { s = s + i * arg; }
	atomic_add(&acc, s);
	return 0;
}
func main() {
	omp_parallel_for(body, 0, 200, 3, 4);
	return acc % 509;
}`, nil)
}

func TestRecompileMutexCondVar(t *testing.T) {
	diffSource(t, `
extern thread_create;
extern thread_join;
extern mutex_lock;
extern mutex_unlock;
var mu = 0;
var n = 0;
func worker(arg) {
	var i;
	for (i = 0; i < 100; i = i + 1) {
		mutex_lock(&mu);
		n = n + 1;
		mutex_unlock(&mu);
	}
	return 0;
}
func main() {
	var t1 = thread_create(worker, 0);
	var t2 = thread_create(worker, 0);
	thread_join(t1);
	thread_join(t2);
	return n / 2;
}`, nil)
}

func TestRecompileXchgTicketLock(t *testing.T) {
	diffSource(t, `
extern thread_create;
extern thread_join;
var next_ticket = 0;
var now_serving = 0;
var guarded = 0;
func worker(arg) {
	var i;
	for (i = 0; i < 150; i = i + 1) {
		var my = atomic_xadd(&next_ticket, 1);
		while (load64(&now_serving) != my) { }
		guarded = guarded + 1;
		atomic_add(&now_serving, 1);
	}
	return 0;
}
func main() {
	var t1 = thread_create(worker, 0);
	var t2 = thread_create(worker, 0);
	thread_join(t1);
	thread_join(t2);
	return guarded / 3;
}`, nil)
}

func TestRecompiledIsDeterministic(t *testing.T) {
	src := `
extern thread_create;
extern thread_join;
var c = 0;
func w(a) { atomic_add(&c, a); return 0; }
func main() {
	var t1 = thread_create(w, 7);
	thread_join(t1);
	return c;
}`
	img, _, err := cc.Compile(src, cc.Config{Name: "t", Opt: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := recompile(t, img, true)
	var prev *vm.Result
	for i := 0; i < 3; i++ {
		m, err := vm.New(rec, 5)
		if err != nil {
			t.Fatal(err)
		}
		r := m.Run(100_000_000)
		if r.Fault != nil {
			t.Fatal(r.Fault)
		}
		if prev != nil && (prev.Cycles != r.Cycles || prev.ExitCode != r.ExitCode) {
			t.Fatalf("nondeterministic recompiled run: %v vs %v", prev, r)
		}
		prev = &r
	}
}
