package lower_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/lifter"
	"repro/internal/lower"
	"repro/internal/mx"
	"repro/internal/opt"
)

// Golden isel tests for the target-parameterized backend: the same lifted
// module lowered for mx64 (TSO, 9 pool registers) and mx64w (weakly
// ordered, one pool register) must differ exactly where the Target says —
// fence emission and spill traffic — and nowhere observable.

// lowerFor runs the static pipeline (disassemble, lift with fence
// insertion, optimize, lower) for one target and returns the full lowering
// result, including the emitted-fence count.
func lowerFor(t *testing.T, img *image.Image, tgt *mx.Target) *lower.Result {
	t.Helper()
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := lifter.Lift(img, g, lifter.Options{InsertFences: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Run(lf.Mod, opt.Options{Verify: true}); err != nil {
		t.Fatal(err)
	}
	res, err := lower.LowerWithOptions(lf, lower.Options{Target: tgt})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// decodeLtext decodes the recompiled code section. Bytes that fail to
// decode (embedded jump-table data) are skipped one at a time, exactly as
// the interpreter's fetch would refuse them.
func decodeLtext(t *testing.T, img *image.Image) []mx.Inst {
	t.Helper()
	sec := img.Section(".ltext")
	if sec == nil {
		t.Fatal("recompiled image has no .ltext section")
	}
	var insts []mx.Inst
	for off := 0; off < len(sec.Data); {
		inst, n := mx.Decode(sec.Data[off:])
		if n == 0 {
			break
		}
		if inst.Op != mx.BAD {
			insts = append(insts, inst)
		}
		off += n
	}
	return insts
}

func countOp(insts []mx.Inst, op mx.Op) int {
	n := 0
	for _, i := range insts {
		if i.Op == op {
			n++
		}
	}
	return n
}

// countSpillOps counts the register allocator's spill-slot idiom: 8-byte
// loads/stores at a negative rbp displacement (the same predicate
// vm.Counters uses for its SpillOps counter).
func countSpillOps(insts []mx.Inst) int {
	n := 0
	for _, i := range insts {
		if (i.Op == mx.LOAD64 || i.Op == mx.STORE64) && i.Base == mx.RBP && i.Disp < 0 {
			n++
		}
	}
	return n
}

// fenceSrc is global-heavy: with InsertFences every non-stack load gets an
// acquire fence and every non-stack store a release fence, so the lifted
// module carries many ir.OpFence ops for the target to keep or drop.
const fenceSrc = `
var g = 0;
var h = 1;
func main() {
	var i;
	for (i = 0; i < 8; i = i + 1) { g = g + i; h = h + g; }
	return (g + h) % 100;
}`

// atomicSrc exercises the atomic isel path: atomic ops are ordering points
// on every target and must lower identically (LOCKXADD for the RMW,
// CMPXCHG for the CAS) regardless of the memory model.
const atomicSrc = `
var c = 0;
func main() {
	var i;
	for (i = 0; i < 5; i = i + 1) { atomic_add(&c, 2); }
	atomic_cas(&c, 10, 42);
	return c % 128;
}`

// pressureSrc keeps six values live across a loop body: comfortably within
// mx64's nine pool registers, far beyond mx64w's single one.
const pressureSrc = `
func main() {
	var a = 1; var b = 2; var c = 3; var d = 4; var e = 5;
	var i;
	for (i = 0; i < 10; i = i + 1) {
		a = a + b; b = b + c; c = c + d; d = d + e; e = e + a;
	}
	return (a + b + c + d + e) % 200;
}`

// compileSrc builds the original binary once per test at -O2.
func compileSrc(t *testing.T, src string) *image.Image {
	t.Helper()
	img, _, err := cc.Compile(src, cc.Config{Name: "t", Opt: 2})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestGoldenFenceLowering: fences are free on the TSO target and real
// instructions on the weak target, with the lowering result's Fences stat
// matching what is actually in the emitted bytes.
func TestGoldenFenceLowering(t *testing.T) {
	img := compileSrc(t, fenceSrc)

	strong := lowerFor(t, img, mx.MX64)
	if got := countOp(decodeLtext(t, strong.Img), mx.MFENCE); got != 0 {
		t.Errorf("mx64 emitted %d MFENCEs; TSO lowering must drop fences", got)
	}
	if strong.Fences != 0 {
		t.Errorf("mx64 Result.Fences = %d, want 0", strong.Fences)
	}
	if strong.Img.Machine != "" {
		t.Errorf("mx64 image machine = %q, want default", strong.Img.Machine)
	}

	weak := lowerFor(t, img, mx.MX64W)
	decoded := countOp(decodeLtext(t, weak.Img), mx.MFENCE)
	if decoded == 0 {
		t.Fatal("mx64w emitted no MFENCEs for a global-heavy function")
	}
	if weak.Fences != decoded {
		t.Errorf("mx64w Result.Fences = %d but .ltext holds %d MFENCEs", weak.Fences, decoded)
	}
	if weak.Img.Machine != "mx64w" {
		t.Errorf("mx64w image machine = %q, want mx64w", weak.Img.Machine)
	}

	diffRun(t, img, strong.Img, nil, 11)
	diffRun(t, img, weak.Img, nil, 11)
}

// TestGoldenAtomicLowering: atomic instruction selection is identical
// across targets — the memory model changes fence emission, never the
// atomics, which are ordering points on both machines.
func TestGoldenAtomicLowering(t *testing.T) {
	img := compileSrc(t, atomicSrc)
	strong := decodeLtext(t, lowerFor(t, img, mx.MX64).Img)
	weak := decodeLtext(t, lowerFor(t, img, mx.MX64W).Img)
	for _, op := range []mx.Op{mx.LOCKXADD, mx.CMPXCHG} {
		s, w := countOp(strong, op), countOp(weak, op)
		if s == 0 {
			t.Errorf("mx64 emitted no %v for an atomic-using function", op)
		}
		if s != w {
			t.Errorf("%v count differs across targets: mx64 %d, mx64w %d", op, s, w)
		}
	}
}

// TestRegallocPressureByTarget: the register-poor target spills where the
// default target does not, and both recompiles still behave identically.
// rbp-negative frame traffic includes the source's own stack locals on
// both targets; the single-pool-register mx64w adds genuine spill
// loads/reloads on top, so its count is strictly — and substantially —
// higher for a function with six simultaneously live values.
func TestRegallocPressureByTarget(t *testing.T) {
	img := compileSrc(t, pressureSrc)

	strong := lowerFor(t, img, mx.MX64)
	weak := lowerFor(t, img, mx.MX64W)
	sSpill := countSpillOps(decodeLtext(t, strong.Img))
	wSpill := countSpillOps(decodeLtext(t, weak.Img))
	if wSpill <= sSpill {
		t.Fatalf("mx64w (one pool register) spill traffic %d not above mx64's %d",
			wSpill, sSpill)
	}
	if weak.CodeSize <= strong.CodeSize {
		t.Errorf("mx64w code (%d bytes) not larger than mx64 (%d bytes)",
			weak.CodeSize, strong.CodeSize)
	}

	diffRun(t, img, strong.Img, nil, 7)
	diffRun(t, img, weak.Img, nil, 7)
}
