package lower_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/vm"
)

// Property-based differential testing: generate random programs, evaluate
// them three ways — a Go reference evaluator, the compiled original on the
// VM, and the recompiled binary — and require agreement. This exercises the
// whole stack (compiler, VM, disassembler, lifter, optimizer, lowering) on
// shapes no hand-written test covers.

// exprGen builds a random expression over variables a,b,c with a parallel
// Go evaluator.
type exprGen struct {
	r     *rand.Rand
	depth int
}

type expr struct {
	src  string
	eval func(a, b, c int64) int64
}

var safeBinOps = []struct {
	op string
	f  func(x, y int64) int64
}{
	{"+", func(x, y int64) int64 { return x + y }},
	{"-", func(x, y int64) int64 { return x - y }},
	{"*", func(x, y int64) int64 { return x * y }},
	{"&", func(x, y int64) int64 { return x & y }},
	{"|", func(x, y int64) int64 { return x | y }},
	{"^", func(x, y int64) int64 { return x ^ y }},
	{"<", func(x, y int64) int64 { return b2i(x < y) }},
	{">", func(x, y int64) int64 { return b2i(x > y) }},
	{"==", func(x, y int64) int64 { return b2i(x == y) }},
	{"<=", func(x, y int64) int64 { return b2i(x <= y) }},
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (g *exprGen) gen(d int) expr {
	if d >= g.depth || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return expr{"a", func(a, b, c int64) int64 { return a }}
		case 1:
			return expr{"b", func(a, b, c int64) int64 { return b }}
		case 2:
			return expr{"c", func(a, b, c int64) int64 { return c }}
		default:
			n := int64(g.r.Intn(200) - 100)
			return expr{fmt.Sprint(n), func(a, b, c int64) int64 { return n }}
		}
	}
	if g.r.Intn(8) == 0 {
		x := g.gen(d + 1)
		return expr{"(-(" + x.src + "))", func(a, b, c int64) int64 { return -x.eval(a, b, c) }}
	}
	op := safeBinOps[g.r.Intn(len(safeBinOps))]
	l, r := g.gen(d+1), g.gen(d+1)
	return expr{
		src: "(" + l.src + " " + op.op + " " + r.src + ")",
		eval: func(a, b, c int64) int64 {
			return op.f(l.eval(a, b, c), r.eval(a, b, c))
		},
	}
}

// genProgram builds a program with a loop accumulating random expressions.
func genProgram(r *rand.Rand) (string, func() int64) {
	g := &exprGen{r: r, depth: 4}
	e1, e2, e3 := g.gen(0), g.gen(0), g.gen(0)
	n := int64(r.Intn(20) + 3)
	src := fmt.Sprintf(`
func f(a, b) {
	var c = a - b;
	return %s;
}
func main() {
	var acc = 0;
	var a = 3;
	var b = -7;
	var i;
	for (i = 0; i < %d; i = i + 1) {
		var c = i * 5 - 11;
		acc = acc + %s;
		if (%s > acc) { acc = acc - f(i, acc & 63); }
		a = a + i;
		b = b ^ acc;
	}
	return acc %% 199;
}`, e1.src, n, e2.src, e3.src)
	ref := func() int64 {
		acc, a, b := int64(0), int64(3), int64(-7)
		f := func(x, y int64) int64 {
			c := x - y
			return e1.eval(x, y, c)
		}
		for i := int64(0); i < n; i++ {
			c := i*5 - 11
			acc += e2.eval(a, b, c)
			if e3.eval(a, b, c) > acc {
				acc -= f(i, acc&63)
			}
			a += i
			b ^= acc
		}
		return acc % 199
	}
	return src, ref
}

func TestQuickDifferentialRandomPrograms(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := 0; seed < n; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		src, ref := genProgram(r)
		want := int(int64(int32(ref()))) // exit codes truncate like the VM's int
		for _, ccOpt := range []int{0, 2} {
			img, _, err := cc.Compile(src, cc.Config{Name: "q", Opt: ccOpt})
			if err != nil {
				t.Fatalf("seed %d O%d: %v\nsrc:\n%s", seed, ccOpt, err, src)
			}
			// Reference vs original.
			m, err := vm.New(img, 1)
			if err != nil {
				t.Fatal(err)
			}
			orig := m.Run(500_000_000)
			if orig.Fault != nil {
				t.Fatalf("seed %d O%d original fault: %v\nsrc:\n%s", seed, ccOpt, orig.Fault, src)
			}
			if int64(int32(orig.ExitCode)) != int64(int32(want)) {
				t.Fatalf("seed %d O%d: original exit %d, reference %d\nsrc:\n%s",
					seed, ccOpt, orig.ExitCode, want, src)
			}
			// Original vs recompiled (optimized pipeline).
			rec := recompile(t, img, true)
			m2, err := vm.New(rec, 1)
			if err != nil {
				t.Fatal(err)
			}
			res := m2.Run(1_000_000_000)
			if res.Fault != nil {
				t.Fatalf("seed %d O%d recompiled fault: %v\nsrc:\n%s", seed, ccOpt, res.Fault, src)
			}
			if res.ExitCode != orig.ExitCode {
				t.Fatalf("seed %d O%d: recompiled %d != original %d\nsrc:\n%s",
					seed, ccOpt, res.ExitCode, orig.ExitCode, src)
			}
		}
	}
	_ = strings.TrimSpace
}
