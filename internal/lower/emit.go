package lower

import (
	"fmt"

	"repro/internal/mx"
)

// emitter is a two-pass machine-code emitter with label fixups, emitting one
// contiguous code blob at a configurable base address (the recompiled-code
// section lives above the original image, so the package asm builder's fixed
// section layout does not apply).
type emitter struct {
	base  uint64
	items []emitItem
	defs  map[string]int // label -> item index
	err   error
}

type emitFix uint8

const (
	fixNone  emitFix = iota
	fixRel32         // Disp = label - end of instruction
	fixAbs64         // Imm = label address
)

type emitItem struct {
	inst   mx.Inst
	fix    emitFix
	target string
	addr   uint64
}

func newEmitter(base uint64) *emitter {
	return &emitter{base: base, defs: map[string]int{}}
}

func (e *emitter) errf(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("lower: "+format, args...)
	}
}

// label defines a label at the current position.
func (e *emitter) label(name string) {
	if _, dup := e.defs[name]; dup {
		e.errf("duplicate label %q", name)
		return
	}
	e.defs[name] = len(e.items)
}

// freshLabel returns a unique local label.
func (e *emitter) freshLabel(tag string) string {
	return fmt.Sprintf(".%s_%d", tag, len(e.items))
}

func (e *emitter) emit(i mx.Inst) { e.items = append(e.items, emitItem{inst: i}) }

func (e *emitter) jmp(label string) {
	e.items = append(e.items, emitItem{inst: mx.Inst{Op: mx.JMP}, fix: fixRel32, target: label})
}

func (e *emitter) jcc(cc mx.Cond, label string) {
	e.items = append(e.items, emitItem{inst: mx.Inst{Op: mx.JCC, Cc: cc}, fix: fixRel32, target: label})
}

func (e *emitter) call(label string) {
	e.items = append(e.items, emitItem{inst: mx.Inst{Op: mx.CALL}, fix: fixRel32, target: label})
}

// movSym emits dst <- address-of(label).
func (e *emitter) movSym(dst mx.Reg, label string) {
	e.items = append(e.items, emitItem{inst: mx.Inst{Op: mx.MOVRI, Dst: dst}, fix: fixAbs64, target: label})
}

// assemble resolves labels and returns the code blob plus the label
// addresses.
func (e *emitter) assemble() ([]byte, map[string]uint64, error) {
	if e.err != nil {
		return nil, nil, e.err
	}
	addr := e.base
	for i := range e.items {
		e.items[i].addr = addr
		addr += uint64(e.items[i].inst.Len())
	}
	labels := map[string]uint64{}
	for name, idx := range e.defs {
		if idx < len(e.items) {
			labels[name] = e.items[idx].addr
		} else {
			labels[name] = addr
		}
	}
	var code []byte
	for _, it := range e.items {
		inst := it.inst
		if it.fix != fixNone {
			target, ok := labels[it.target]
			if !ok {
				return nil, nil, fmt.Errorf("lower: undefined label %q", it.target)
			}
			switch it.fix {
			case fixRel32:
				end := it.addr + uint64(inst.Len())
				d := int64(target) - int64(end)
				if int64(int32(d)) != d {
					return nil, nil, fmt.Errorf("lower: branch to %q out of range", it.target)
				}
				inst.Disp = int32(d)
			case fixAbs64:
				inst.Imm = int64(target)
			}
		}
		code = inst.Encode(code)
	}
	return code, labels, nil
}
