// Package lower translates optimized PIR back into MX64 machine code and
// assembles the standalone recompiled binary.
//
// Output layout (§3.1): the original image's sections are mapped at their
// original addresses — code and data pointers in the input keep meaning —
// and the recompiled code is placed in a new executable section above them.
// At the original entry address of every external (callback-capable)
// function, a trampoline jumps to a synthesized wrapper that transitions
// from native library state to the emulated execution context (§3.3.3):
// it saves the native register file, lazily initializes the thread's TLS
// virtual-CPU block and emulated stack on first entry in a new thread
// (§3.3.2), marshals the native argument registers into the virtual state,
// invokes the lifted function, and returns the virtual rax natively.
package lower

import (
	"fmt"
	"sort"

	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/lifter"
	"repro/internal/mx"
)

// tlsInitFlagOff is the TLS offset of the per-thread "state initialized"
// flag; virtual-state globals start above it.
const tlsInitFlagOff = 0

// Result is the outcome of lowering.
type Result struct {
	Img *image.Image
	// Labels maps function/wrapper labels to addresses (tests, diagnostics).
	Labels map[string]uint64
	// CodeSize is the recompiled code size in bytes.
	CodeSize int
	// Fences is the number of fence instructions emitted. Zero on
	// TSO-like targets, where ir.OpFence/OpBarrier lower to nothing.
	Fences int
}

// Options configures lowering variants.
type Options struct {
	// Target selects the ISA description the backend emits for; nil means
	// mx.MX64. The target decides the allocatable register pool, whether
	// fences are emitted (weak ordering) or dropped (TSO), the ABI
	// registers wrappers marshal, and the state-layout constants below.
	Target *mx.Target

	// SingleThreadState places the virtual CPU state in ordinary process
	// memory instead of TLS — the McSema/BinRec/Rev.Ng state model the
	// paper contrasts with (§2.2.1: "their implementation is not general as
	// they do [not] handle the multithreaded case where each thread of
	// execution needs to work with its own emulated stack"). All threads
	// then share one virtual state and one emulated stack, placed at the
	// target's SingleStateBase (a Target layout constant, so baseline
	// variants compose with any target).
	SingleThreadState bool
}

// target resolves the configured target, defaulting to MX64.
func (o Options) target() *mx.Target {
	if o.Target != nil {
		return o.Target
	}
	return mx.MX64
}

// Lower assembles the recompiled binary for a lifted (and typically
// optimized) module. The IR module is consumed: phi destruction mutates it.
func Lower(lf *lifter.Lifted) (*Result, error) {
	return LowerWithOptions(lf, Options{})
}

// LowerWithOptions is Lower with baseline-variant knobs.
func LowerWithOptions(lf *lifter.Lifted, opts Options) (*Result, error) {
	tgt := opts.target()
	mod := lf.Mod
	out := lf.Img.Clone()
	out.Name = lf.Img.Name + ".recompiled"
	// Stamp the machine mode so the VM executes the output under the
	// target's memory model (empty for the default MX64/TSO machine).
	out.Machine = tgt.MachineMode

	// State layout: init flag first, then every thread_local global. The
	// offsets are TLS offsets normally, or offsets into a shared state
	// section under SingleThreadState.
	tlsOff := map[*ir.Global]int32{}
	next := int32(tlsInitFlagOff + 8)
	for _, g := range mod.Globals {
		if !g.ThreadLocal {
			continue
		}
		tlsOff[g] = next
		next += int32((g.Size + 7) &^ 7)
	}
	if opts.SingleThreadState {
		out.TLSSize = 0
		if err := out.AddSection(image.Section{
			Name: ".lstate", Addr: tgt.SingleStateBase, Size: uint64(next),
		}); err != nil {
			return nil, err
		}
	} else {
		out.TLSSize = uint64(next)
	}

	// Non-TLS, non-pinned globals would need a fresh data section; the
	// lifter emits none today.
	for _, g := range mod.Globals {
		if !g.ThreadLocal && g.Addr == 0 {
			return nil, fmt.Errorf("lower: global %s has no storage strategy", g.Name)
		}
	}

	env := &env{
		tgt:       tgt,
		tlsOff:    tlsOff,
		importIdx: out.ImportIndex,
		fnLabel:   func(f *ir.Func) string { return "F_" + f.Name },
	}
	if opts.SingleThreadState {
		env.stateBase = tgt.SingleStateBase
	}
	e := newEmitter(image.RecompiledBase)

	// Lowering order: stable by name for reproducible binaries.
	funcs := append([]*ir.Func(nil), mod.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Name < funcs[j].Name })
	for _, f := range funcs {
		if err := lowerFunc(env, e, f); err != nil {
			return nil, fmt.Errorf("lower: %w", err)
		}
	}

	// Wrappers for external entry points.
	rspG := mod.Global("vr_rsp")
	raxG := mod.Global("vr_rax")
	if rspG == nil || raxG == nil {
		return nil, fmt.Errorf("lower: virtual rsp/rax globals missing")
	}
	argG := make([]*ir.Global, len(tgt.ArgRegs))
	for i, r := range tgt.ArgRegs {
		argG[i] = mod.Global("vr_" + r.String())
		if argG[i] == nil {
			return nil, fmt.Errorf("lower: virtual %s global missing", r)
		}
	}
	var wrapped []*ir.Func
	for _, f := range funcs {
		if f.External && f.OrigEntry != 0 {
			wrapped = append(wrapped, f)
			emitWrapper(e, env, f, tlsOff[rspG], tlsOff[raxG], argG, tlsOff)
		}
	}

	code, labels, err := e.assemble()
	if err != nil {
		return nil, err
	}
	if err := out.AddSection(image.Section{
		Name: ".ltext", Addr: image.RecompiledBase, Data: code, Exec: true,
	}); err != nil {
		return nil, err
	}

	// Trampolines: overwrite each wrapped function's original entry with a
	// jump to its wrapper.
	text := out.Text()
	entries := make([]uint64, 0, len(wrapped))
	for _, f := range wrapped {
		entries = append(entries, f.OrigEntry)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	jmpLen := uint64(mx.EncodedLen(mx.JMP))
	for i, f := range wrapped {
		_ = i
		entry := f.OrigEntry
		wAddr, ok := labels["W_"+f.Name]
		if !ok {
			return nil, fmt.Errorf("lower: wrapper for %s not assembled", f.Name)
		}
		off := entry - text.Addr
		if off+jmpLen > uint64(len(text.Data)) {
			return nil, fmt.Errorf("lower: no room for trampoline at %#x", entry)
		}
		// Refuse to clobber a later function's entry byte.
		pos := sort.Search(len(entries), func(k int) bool { return entries[k] > entry })
		if pos < len(entries) && entries[pos] < entry+jmpLen {
			return nil, fmt.Errorf("lower: function at %#x too small for a trampoline", entry)
		}
		disp := int64(wAddr) - int64(entry+jmpLen)
		if int64(int32(disp)) != disp {
			return nil, fmt.Errorf("lower: trampoline displacement out of range")
		}
		tramp := mx.Inst{Op: mx.JMP, Disp: int32(disp)}.Encode(nil)
		copy(text.Data[off:], tramp)
	}

	return &Result{Img: out, Labels: labels, CodeSize: len(code), Fences: env.fences}, nil
}

// emitWrapper synthesizes the native->emulated transition wrapper for f.
// Wrappers are ABI edges: they preserve the target's full SavedRegs file
// (everything except rax — the native return slot — and rsp) and marshal
// the target's native argument registers, regardless of how small the
// target's allocatable pool is.
func emitWrapper(e *emitter, env *env, f *ir.Func, rspOff, raxOff int32, argG []*ir.Global, tlsOff map[*ir.Global]int32) {
	savedRegs := env.tgt.SavedRegs
	e.label("W_" + f.Name)
	for _, r := range savedRegs {
		e.emit(mx.Inst{Op: mx.PUSH, Dst: r})
	}
	env.emitStateBase(e)
	// Lazy per-thread initialization: allocate the emulated stack on first
	// entry in this thread.
	done := e.freshLabel("init_done_" + f.Name)
	e.emit(mx.Inst{Op: mx.LOAD64, Dst: mx.R10, Base: mx.R15, Disp: tlsInitFlagOff})
	e.emit(mx.Inst{Op: mx.TESTRR, Dst: mx.R10, Src: mx.R10})
	e.jcc(mx.CondNE, done)
	e.emit(mx.Inst{Op: mx.CALLX, Ext: env.importIdx("__polynima_thread_init")})
	e.emit(mx.Inst{Op: mx.STOREI64, Base: mx.R15, Disp: tlsInitFlagOff, Imm: 1})
	e.emit(mx.Inst{Op: mx.STORE64, Dst: mx.RAX, Base: mx.R15, Disp: rspOff})
	e.label(done)
	// Marshal native argument registers into the virtual state. (The
	// pushes above did not clobber them.)
	for i, r := range env.tgt.ArgRegs {
		e.emit(mx.Inst{Op: mx.STORE64, Dst: r, Base: mx.R15, Disp: tlsOff[argG[i]]})
	}
	// Reserve the return-address slot the lifted RET will pop.
	e.emit(mx.Inst{Op: mx.LOAD64, Dst: mx.R10, Base: mx.R15, Disp: rspOff})
	e.emit(mx.Inst{Op: mx.SUBRI, Dst: mx.R10, Imm: 8})
	e.emit(mx.Inst{Op: mx.STORE64, Dst: mx.R10, Base: mx.R15, Disp: rspOff})
	e.emit(mx.Inst{Op: mx.STOREI64, Base: mx.R10, Imm: 0})
	e.call(env.fnLabel(f))
	// Marshal the virtual rax back as the native return value.
	env.emitStateBase(e)
	e.emit(mx.Inst{Op: mx.LOAD64, Dst: mx.RAX, Base: mx.R15, Disp: raxOff})
	for i := len(savedRegs) - 1; i >= 0; i-- {
		e.emit(mx.Inst{Op: mx.POP, Dst: savedRegs[i]})
	}
	e.emit(mx.Inst{Op: mx.RET})
}
