package ir

// CloneFuncInto deep-copies the body and attributes of src into dst, which
// must be empty (no blocks). Global and function references are rewritten
// through the two resolvers, so a body can be copied across modules — the
// function-cache replay path clones optimized bodies from a previous
// recompile into a fresh module skeleton. Value IDs, block names and every
// instruction attribute (SiteID, OrigPC, widths, ...) are preserved, so a
// cloned function prints and lowers identically to its source.
//
// The resolvers receive the referenced global/function of the source body
// and return the object to reference from the clone. Resolving to the input
// is a same-module clone.
func CloneFuncInto(dst, src *Func, globalOf func(*Global) *Global, funcOf func(*Func) *Func) {
	dst.External = src.External
	dst.HasResult = src.HasResult
	dst.NumParams = src.NumParams
	dst.OrigEntry = src.OrigEntry
	dst.IsWrapper = src.IsWrapper
	dst.nextID = src.nextID

	blocks := make(map[*Block]*Block, len(src.Blocks))
	for _, b := range src.Blocks {
		nb := dst.NewBlock(b.Name)
		nb.OrigAddr = b.OrigAddr
		blocks[b] = nb
	}

	// First pass: create every value with its scalar attributes; operand,
	// target and phi links are patched in the second pass (they may point
	// forward, across blocks, or at the containing function itself).
	values := make(map[*Value]*Value)
	for _, b := range src.Blocks {
		nb := blocks[b]
		for _, v := range b.Insts {
			nv := &Value{
				ID:         v.ID,
				Op:         v.Op,
				Block:      nb,
				Const:      v.Const,
				ExtName:    v.ExtName,
				Width:      v.Width,
				SignExt:    v.SignExt,
				Pred:       v.Pred,
				RMW:        v.RMW,
				Order:      v.Order,
				StackLocal: v.StackLocal,
				SiteID:     v.SiteID,
				OrigPC:     v.OrigPC,
			}
			if v.Global != nil {
				nv.Global = globalOf(v.Global)
			}
			if v.Fn != nil {
				nv.Fn = funcOf(v.Fn)
			}
			if v.SwitchVals != nil {
				nv.SwitchVals = append([]int64(nil), v.SwitchVals...)
			}
			nb.Insts = append(nb.Insts, nv)
			values[v] = nv
		}
	}
	for _, b := range src.Blocks {
		for _, v := range b.Insts {
			nv := values[v]
			if len(v.Args) > 0 {
				nv.Args = make([]*Value, len(v.Args))
				for i, a := range v.Args {
					nv.Args[i] = values[a]
				}
			}
			if len(v.Targets) > 0 {
				nv.Targets = make([]*Block, len(v.Targets))
				for i, t := range v.Targets {
					nv.Targets[i] = blocks[t]
				}
			}
			if len(v.PhiPreds) > 0 {
				nv.PhiPreds = make([]*Block, len(v.PhiPreds))
				for i, pb := range v.PhiPreds {
					nv.PhiPreds[i] = blocks[pb]
				}
			}
		}
	}
}
