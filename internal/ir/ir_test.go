package ir

import (
	"strings"
	"testing"
)

// buildDiamond constructs:
//
//	entry -> (left | right) -> join -> exit
func buildDiamond(t *testing.T) (*Module, *Func, map[string]*Block) {
	t.Helper()
	m := NewModule("t")
	f := m.NewFunc("f")
	entry := f.NewBlock("entry")
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	join := f.NewBlock("join")

	c := entry.Append(OpConst)
	c.Const = 1
	cb := entry.Append(OpCondBr, c)
	cb.Targets = []*Block{left, right}

	l := left.Append(OpConst)
	l.Const = 10
	lb := left.Append(OpBr)
	lb.Targets = []*Block{join}

	r := right.Append(OpConst)
	r.Const = 20
	rb := right.Append(OpBr)
	rb.Targets = []*Block{join}

	phi := join.Append(OpPhi, l, r)
	phi.PhiPreds = []*Block{left, right}
	add := join.Append(OpAdd, phi, phi)
	_ = add
	join.Append(OpRet)

	return m, f, map[string]*Block{"entry": entry, "left": left, "right": right, "join": join}
}

func TestVerifyDiamond(t *testing.T) {
	m, _, _ := buildDiamond(t)
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestDominators(t *testing.T) {
	_, f, bs := buildDiamond(t)
	d := BuildDom(f)
	if d.IDom[bs["left"]] != bs["entry"] || d.IDom[bs["right"]] != bs["entry"] {
		t.Fatal("branches must be dominated by entry")
	}
	if d.IDom[bs["join"]] != bs["entry"] {
		t.Fatalf("join idom = %s, want entry", d.IDom[bs["join"]].Name)
	}
	if !d.Dominates(bs["entry"], bs["join"]) {
		t.Fatal("entry must dominate join")
	}
	if d.Dominates(bs["left"], bs["join"]) {
		t.Fatal("left must not dominate join")
	}
	df := d.Frontiers()
	if len(df[bs["left"]]) != 1 || df[bs["left"]][0] != bs["join"] {
		t.Fatalf("DF(left) = %v", names(df[bs["left"]]))
	}
}

func names(bs []*Block) []string {
	var out []string
	for _, b := range bs {
		out = append(out, b.Name)
	}
	return out
}

func buildLoop(t *testing.T) (*Func, *Block, *Block, *Block) {
	t.Helper()
	m := NewModule("t")
	f := m.NewFunc("f")
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	eb := entry.Append(OpBr)
	eb.Targets = []*Block{header}

	zero := entry.Insts // silence
	_ = zero
	c := header.Append(OpConst)
	c.Const = 1
	hb := header.Append(OpCondBr, c)
	hb.Targets = []*Block{body, exit}

	bb := body.Append(OpBr)
	bb.Targets = []*Block{header}

	exit.Append(OpRet)
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	return f, header, body, exit
}

func TestNaturalLoops(t *testing.T) {
	f, header, body, exit := buildLoop(t)
	d := BuildDom(f)
	loops := d.FindLoops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != header {
		t.Fatalf("header = %s", l.Header.Name)
	}
	if !l.Blocks[body] || !l.Blocks[header] || l.Blocks[exit] {
		t.Fatal("loop membership wrong")
	}
	if len(l.Latches) != 1 || l.Latches[0] != body {
		t.Fatal("latch wrong")
	}
	if len(l.Exits) != 1 || l.Exits[0].To != exit {
		t.Fatalf("exits: %+v", l.Exits)
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	// Use before definition within a block.
	m := NewModule("t")
	f := m.NewFunc("f")
	b := f.NewBlock("entry")
	a := f.NewValue(OpConst)
	a.Const = 1
	use := b.Append(OpAdd, a, a) // a never placed in a block
	_ = use
	b.Append(OpRet)
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "not defined") {
		t.Fatalf("err = %v", err)
	}

	// Unterminated block.
	m2 := NewModule("t")
	f2 := m2.NewFunc("f")
	b2 := f2.NewBlock("entry")
	c := b2.Append(OpConst)
	c.Const = 1
	if err := Verify(m2); err == nil {
		t.Fatal("unterminated block accepted")
	}

	// Phi arity mismatch.
	m3, f3, bs := buildDiamond(t)
	join := bs["join"]
	phi := join.Insts[0]
	phi.PhiPreds = phi.PhiPreds[:1]
	_ = f3
	if err := Verify(m3); err == nil || !strings.Contains(err.Error(), "phi") {
		t.Fatalf("err = %v", err)
	}

	// Value dominance violation across blocks.
	m4, _, bs4 := buildDiamond(t)
	lval := bs4["left"].Insts[0]
	bs4["right"].Insts[0].Args = nil
	v := bs4["right"].Func.NewValue(OpAdd)
	v.Args = []*Value{lval, lval}
	bs4["right"].InsertBefore(v, 1)
	if err := Verify(m4); err == nil || !strings.Contains(err.Error(), "dominate") {
		t.Fatalf("err = %v", err)
	}
}

func TestPrinterSmoke(t *testing.T) {
	m, _, _ := buildDiamond(t)
	g := m.NewGlobal("vr_rax", 8)
	g.ThreadLocal = true
	s := m.String()
	for _, want := range []string{"func @f()", "phi", "condbr", "thread_local @vr_rax"} {
		if !strings.Contains(s, want) {
			t.Fatalf("printed module missing %q:\n%s", want, s)
		}
	}
}

func TestReplaceAllUses(t *testing.T) {
	m, f, bs := buildDiamond(t)
	phi := bs["join"].Insts[0]
	c := f.NewValue(OpConst)
	c.Const = 5
	bs["join"].InsertBefore(c, 0)
	// Move c to entry so it dominates uses... simpler: replace phi uses.
	bs["join"].RemoveAt(0)
	bs["entry"].InsertBefore(c, 0)
	ReplaceAllUses(f, phi, c)
	add := bs["join"].Insts[1]
	if add.Args[0] != c || add.Args[1] != c {
		t.Fatal("uses not replaced")
	}
	// phi is now dead but still present; module must still verify after
	// removing it.
	bs["join"].RemoveAt(0)
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestHasResultAndBarrierClassification(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f")
	b := f.NewBlock("entry")
	addr := b.Append(OpConst)
	ld := b.Append(OpLoad, addr)
	ld.Width = 8
	st := b.Append(OpStore, addr, ld)
	st.Width = 8
	fence := b.Append(OpFence)
	fence.Order = OrderAcquire
	rmw := b.Append(OpAtomicRMW, addr, ld)
	b.Append(OpRet)

	if !ld.HasResult() || st.HasResult() || fence.HasResult() {
		t.Fatal("HasResult misclassified")
	}
	if !fence.IsMemBarrier() || !rmw.IsMemBarrier() || ld.IsMemBarrier() {
		t.Fatal("IsMemBarrier misclassified")
	}
	if !st.WritesMemory() || st.ReadsMemory() || !ld.ReadsMemory() {
		t.Fatal("memory effects misclassified")
	}
}
