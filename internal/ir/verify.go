package ir

import "fmt"

// Verify checks module well-formedness: every block terminated exactly once,
// operands defined and dominating their uses, phis consistent with
// predecessors, widths valid. The recompiler pipeline verifies after lifting
// and after every optimization pass in debug runs.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := VerifyFunc(f); err != nil {
			return fmt.Errorf("func @%s: %w", f.Name, err)
		}
	}
	return nil
}

// VerifyFunc checks one function.
func VerifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	dom := BuildDom(f)
	preds := dom.Preds

	// Map each value to its defining block and intra-block position.
	defBlock := map[*Value]*Block{}
	defPos := map[*Value]int{}
	for _, b := range f.Blocks {
		if len(b.Insts) == 0 {
			return fmt.Errorf("block %s: empty", b.Name)
		}
		for i, v := range b.Insts {
			if v.IsTerminator() != (i == len(b.Insts)-1) {
				return fmt.Errorf("block %s: terminator misplaced at %d (%s)", b.Name, i, v)
			}
			if v.Block != b {
				return fmt.Errorf("block %s: inst %s has wrong owner", b.Name, v)
			}
			if _, dup := defBlock[v]; dup {
				return fmt.Errorf("value %%%d appears twice", v.ID)
			}
			defBlock[v] = b
			defPos[v] = i
		}
	}

	for _, b := range f.Blocks {
		if _, reachable := dom.Num[b]; !reachable {
			continue // unreachable blocks are tolerated (simplifycfg prunes)
		}
		for i, v := range b.Insts {
			switch v.Op {
			case OpLoad, OpStore:
				if v.Width != 1 && v.Width != 4 && v.Width != 8 {
					return fmt.Errorf("block %s: %s: bad width %d", b.Name, v, v.Width)
				}
			case OpPhi:
				if len(v.Args) != len(v.PhiPreds) {
					return fmt.Errorf("block %s: %s: phi arity mismatch", b.Name, v)
				}
				if len(v.Args) != len(preds[b]) {
					return fmt.Errorf("block %s: %s: phi has %d entries, block has %d preds",
						b.Name, v, len(v.Args), len(preds[b]))
				}
				for _, pb := range v.PhiPreds {
					found := false
					for _, p := range preds[b] {
						if p == pb {
							found = true
						}
					}
					if !found {
						return fmt.Errorf("block %s: %s: phi pred %s is not a predecessor", b.Name, v, pb.Name)
					}
				}
				// Phis must be grouped at the block head.
				if i > 0 && b.Insts[i-1].Op != OpPhi {
					return fmt.Errorf("block %s: phi %%%d not at block head", b.Name, v.ID)
				}
			case OpCondBr:
				if len(v.Targets) != 2 {
					return fmt.Errorf("block %s: condbr with %d targets", b.Name, len(v.Targets))
				}
			case OpBr:
				if len(v.Targets) != 1 {
					return fmt.Errorf("block %s: br with %d targets", b.Name, len(v.Targets))
				}
			case OpSwitch:
				if len(v.Targets) != len(v.SwitchVals)+1 {
					return fmt.Errorf("block %s: switch with %d targets, %d cases",
						b.Name, len(v.Targets), len(v.SwitchVals))
				}
			case OpInvalid:
				return fmt.Errorf("block %s: invalid op", b.Name)
			}
			// Operand checks.
			for ai, a := range v.Args {
				if a == nil {
					return fmt.Errorf("block %s: %s: nil arg %d", b.Name, v, ai)
				}
				if !a.HasResult() {
					return fmt.Errorf("block %s: %s: arg %d (%s) has no result", b.Name, v, ai, a.Op)
				}
				db, defined := defBlock[a]
				if !defined {
					return fmt.Errorf("block %s: %s: arg %%%d not defined in function", b.Name, v, a.ID)
				}
				if _, reach := dom.Num[db]; !reach {
					continue // defined in unreachable code; ignore
				}
				if v.Op == OpPhi {
					// Phi operands must dominate the corresponding pred edge.
					if !dom.Dominates(db, v.PhiPreds[ai]) {
						return fmt.Errorf("block %s: %s: phi arg %%%d does not dominate edge from %s",
							b.Name, v, a.ID, v.PhiPreds[ai].Name)
					}
					continue
				}
				if db == b {
					if defPos[a] >= i {
						return fmt.Errorf("block %s: %s: arg %%%d used before definition", b.Name, v, a.ID)
					}
				} else if !dom.Dominates(db, b) {
					return fmt.Errorf("block %s: %s: arg %%%d (def in %s) does not dominate use",
						b.Name, v, a.ID, db.Name)
				}
			}
			// Target sanity.
			for _, tb := range v.Targets {
				if tb.Func != f {
					return fmt.Errorf("block %s: %s: target %s in another function", b.Name, v, tb.Name)
				}
			}
		}
	}
	return nil
}
