package ir_test

import (
	"bytes"
	"testing"

	"repro/internal/ir"
)

// buildSample constructs a module with one function exercising every
// serialized field: phis, switches, atomics, global/function/extern
// references, site IDs, stack-local accesses, switch values.
func buildSample() (*ir.Module, *ir.Func) {
	m := ir.NewModule("sample")
	g := m.NewGlobal("counter", 8)
	g.ThreadLocal = true
	helper := m.NewFunc("helper")
	helper.HasResult = true
	helper.NumParams = 1

	f := m.NewFunc("body")
	f.External = true
	f.OrigEntry = 0x4000

	entry := f.NewBlock("entry")
	entry.OrigAddr = 0x4000
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")

	c0 := entry.Append(ir.OpConst)
	c0.Const = -7
	ga := entry.Append(ir.OpGlobalAddr)
	ga.Global = g
	fa := entry.Append(ir.OpFuncAddr)
	fa.Fn = f // self-reference
	ld := entry.Append(ir.OpLoad, ga)
	ld.Width = 4
	ld.SignExt = true
	ld.SiteID = 3
	ld.OrigPC = 0x4004
	ld.StackLocal = true
	br := entry.Append(ir.OpBr)
	br.Targets = []*ir.Block{loop}

	phi := loop.Append(ir.OpPhi, c0, ld)
	phi.PhiPreds = []*ir.Block{entry, loop}
	rmw := loop.Append(ir.OpAtomicRMW, ga, phi)
	rmw.RMW = ir.RMWXchg
	rmw.Width = 8
	fe := loop.Append(ir.OpFence)
	fe.Order = ir.OrderRelease
	_ = fe
	call := loop.Append(ir.OpCall, rmw)
	call.Fn = helper
	ext := loop.Append(ir.OpCallExt, call)
	ext.ExtName = "putchar"
	cmp := loop.Append(ir.OpICmp, ext, c0)
	cmp.Pred = ir.PredSLE
	sw := loop.Append(ir.OpSwitch, cmp)
	sw.Targets = []*ir.Block{exit, loop, entry}
	sw.SwitchVals = []int64{0, -1}

	exit.Append(ir.OpRet)
	return m, f
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m, f := buildSample()
	enc, err := ir.EncodeFunc(f)
	if err != nil {
		t.Fatal(err)
	}
	dst := &ir.Func{Name: f.Name, Mod: m}
	if err := ir.DecodeFuncInto(dst, enc, m.Global, m.Func); err != nil {
		t.Fatal(err)
	}
	if got, want := dst.String(), f.String(); got != want {
		t.Fatalf("decoded body prints differently:\n--- want\n%s\n--- got\n%s", want, got)
	}
	// Bit-exactness: the decoded body re-encodes to the same bytes, so every
	// serialized attribute (IDs, widths, site IDs, ...) survived.
	re, err := ir.EncodeFunc(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, enc) {
		t.Fatal("re-encoding the decoded body changed the bytes")
	}
	// Self-references resolve to the decode destination, not the source.
	var selfRef *ir.Value
	for _, b := range dst.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpFuncAddr {
				selfRef = v
			}
		}
	}
	// m.Func("body") is still the original f; a fresh-module decode resolves
	// by name, which is the contract — here both names map to f.
	if selfRef == nil || selfRef.Fn != m.Func("body") {
		t.Fatal("faddr did not resolve through the function lookup")
	}
}

func TestDecodeUnresolvedSymbolFails(t *testing.T) {
	m, f := buildSample()
	enc, err := ir.EncodeFunc(f)
	if err != nil {
		t.Fatal(err)
	}
	// A destination module that renamed the referenced global: decode must
	// fail (caller treats it as a cache miss), not fabricate a symbol.
	dst := &ir.Func{Name: f.Name}
	noGlobal := func(string) *ir.Global { return nil }
	if err := ir.DecodeFuncInto(dst, enc, noGlobal, m.Func); err == nil {
		t.Fatal("decode succeeded with an unresolvable global")
	}
	// Same for a dropped function.
	dst2 := &ir.Func{Name: f.Name}
	noFunc := func(string) *ir.Func { return nil }
	if err := ir.DecodeFuncInto(dst2, enc, m.Global, noFunc); err == nil {
		t.Fatal("decode succeeded with an unresolvable function")
	}
}

func TestDecodeRejectsMalformedData(t *testing.T) {
	m, f := buildSample()
	enc, err := ir.EncodeFunc(f)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"bad-magic": append([]byte("XIRF9\n"), enc[6:]...),
		"truncated": enc[:len(enc)/3],
		"trailing":  append(append([]byte(nil), enc...), 0xee),
	}
	for name, data := range cases {
		dst := &ir.Func{Name: f.Name}
		if err := ir.DecodeFuncInto(dst, data, m.Global, m.Func); err == nil {
			t.Errorf("%s: decode succeeded on malformed data", name)
		}
	}
	// Non-empty destinations are refused outright.
	used := &ir.Func{Name: "used"}
	used.NewBlock("b")
	if err := ir.DecodeFuncInto(used, enc, m.Global, m.Func); err == nil {
		t.Error("decode succeeded into a non-empty function")
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	m1, f1 := buildSample()
	m2, f2 := buildSample()
	_ = m1
	_ = m2
	e1, err1 := ir.EncodeFunc(f1)
	e2, err2 := ir.EncodeFunc(f2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(e1, e2) {
		t.Fatal("two identical bodies encoded differently")
	}
}
