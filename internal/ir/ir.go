// Package ir defines PIR, the typed SSA intermediate representation the
// recompiler lifts machine code into — the reproduction's stand-in for
// LLVM IR.
//
// PIR has the features the paper's techniques depend on:
//
//   - a single 64-bit integer value type, with memory accesses of width
//     1/4/8 bytes (loads zero/sign-extend like the source ISA);
//   - globals, optionally thread_local (the virtual CPU state: registers,
//     flags, emulated stack pointer are thread_local globals, §3.3.2);
//   - atomic read-modify-write and compare-exchange instructions with
//     sequentially consistent ordering, plus acquire/release fences and
//     compiler-only barriers (§3.3.1, §3.3.4) — fences and barriers emit no
//     machine code on same-ISA lowering but constrain the optimizer;
//   - calls to lifted functions (state passed through the thread-local
//     globals) and to external library functions with explicit register
//     arguments;
//   - switch terminators used to dispatch indirect control transfers over
//     their known-target sets, with a default edge to the control-flow-miss
//     handler (additive lifting, §3.2).
//
// The package also provides dominator trees, dominance frontiers and
// natural-loop detection (dom.go), a verifier (verify.go) and a printer
// (print.go); the optimization passes live in internal/opt and the spinloop
// analysis in internal/spindet.
package ir

import "fmt"

// Op is a PIR operation.
type Op uint8

const (
	OpInvalid Op = iota

	// Pure values.
	OpConst      // Const
	OpGlobalAddr // Global
	OpFuncAddr   // Fn
	OpUndef

	// Integer arithmetic (64-bit, wrapping).
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLshr
	OpAshr
	OpNeg
	OpNot

	OpICmp   // Pred; yields 0/1
	OpSelect // args: cond, a, b

	// Memory.
	OpLoad  // args: addr; Width
	OpStore // args: addr, value; Width; no result

	// Virtual CPU state access (thread_local register/flag globals). These
	// are distinguished from OpLoad/OpStore because registers are not
	// addressable: virtual-state traffic never aliases guest memory, so the
	// promotion pass can rebuild SSA over it without alias analysis, and the
	// Lasagne fence rules apply only to original-program accesses (§3.3.4).
	OpVRegLoad  // Global; result
	OpVRegStore // Global; args: value

	// Atomics & ordering.
	OpAtomicRMW // args: addr, operand; RMW kind; returns old value
	OpCmpXchg   // args: addr, expected, new; returns old value
	OpFence     // Order (acquire/release/seq_cst); no result
	OpBarrier   // compiler-only scheduling barrier; no result

	// Calls.
	OpCall    // Fn; args (runtime helpers); may return a value
	OpCallExt // ExtName; args (native register args); returns rax

	OpPhi // Args parallel to PhiPreds

	// Terminators.
	OpBr          // Targets[0]
	OpCondBr      // args: cond; Targets[0]=then, Targets[1]=else
	OpSwitch      // args: value; Targets[0]=default, Targets[1:] parallel to SwitchVals
	OpRet         // optional arg: return value (runtime helpers); lifted funcs ret void
	OpUnreachable // control-flow miss fallthrough / trap
)

var opNames = map[Op]string{
	OpConst: "const", OpGlobalAddr: "gaddr", OpFuncAddr: "faddr", OpUndef: "undef",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLshr: "lshr",
	OpAshr: "ashr", OpNeg: "neg", OpNot: "not",
	OpICmp: "icmp", OpSelect: "select",
	OpLoad: "load", OpStore: "store",
	OpVRegLoad: "vload", OpVRegStore: "vstore",
	OpAtomicRMW: "atomicrmw", OpCmpXchg: "cmpxchg", OpFence: "fence",
	OpBarrier: "barrier",
	OpCall:    "call", OpCallExt: "callext",
	OpPhi: "phi",
	OpBr:  "br", OpCondBr: "condbr", OpSwitch: "switch", OpRet: "ret",
	OpUnreachable: "unreachable",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Pred is an integer comparison predicate.
type Pred uint8

const (
	PredEQ Pred = iota
	PredNE
	PredSLT
	PredSLE
	PredSGT
	PredSGE
	PredULT
	PredULE
	PredUGT
	PredUGE
)

var predNames = [...]string{"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}

func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return "pred?"
}

// RMWKind is the operation of an atomicrmw.
type RMWKind uint8

const (
	RMWAdd RMWKind = iota
	RMWSub
	RMWAnd
	RMWOr
	RMWXor
	RMWXchg
)

var rmwNames = [...]string{"add", "sub", "and", "or", "xor", "xchg"}

func (k RMWKind) String() string {
	if int(k) < len(rmwNames) {
		return rmwNames[k]
	}
	return "rmw?"
}

// Order is a memory ordering for fences (atomics are always seq_cst here,
// matching the lifter's translation of lock-prefixed instructions).
type Order uint8

const (
	OrderAcquire Order = iota
	OrderRelease
	OrderSeqCst
)

var orderNames = [...]string{"acquire", "release", "seq_cst"}

func (o Order) String() string {
	if int(o) < len(orderNames) {
		return orderNames[o]
	}
	return "order?"
}

// Global is a module-level variable.
type Global struct {
	Name        string
	Size        uint64
	ThreadLocal bool
	// Addr pins the global at a fixed guest address (originals: the input
	// binary's sections are mapped at their original addresses). Zero means
	// the lowering assigns storage (new data for process globals, a TLS
	// offset for thread_local ones).
	Addr uint64
	Init []byte
}

// Value is an SSA value / instruction. Instructions are values; values with
// no result (stores, fences, terminators) still appear in the instruction
// stream but must not be referenced as operands.
type Value struct {
	ID    int
	Op    Op
	Args  []*Value
	Block *Block

	Const      int64
	Global     *Global
	Fn         *Func
	ExtName    string
	Width      int // 1, 4, or 8 (memory ops)
	SignExt    bool
	Pred       Pred
	RMW        RMWKind
	Order      Order
	Targets    []*Block
	SwitchVals []int64
	PhiPreds   []*Block // parallel to Args for OpPhi

	// StackLocal marks memory accesses whose address derives directly from
	// the emulated stack pointer (§3.3.4): they get no fences and are known
	// thread-exclusive by the spinloop analysis.
	StackLocal bool
	// SiteID identifies a memory access site for dynamic instrumentation
	// (spinloop detection, §3.4.2). Zero means uninstrumented.
	SiteID int
	// OrigPC is the original-binary instruction address this value was
	// lifted from (0 for synthesized values); used for diagnostics and for
	// mapping analysis results back to machine code.
	OrigPC uint64
}

// HasResult reports whether v produces an SSA result.
func (v *Value) HasResult() bool {
	switch v.Op {
	case OpStore, OpVRegStore, OpFence, OpBarrier, OpBr, OpCondBr, OpSwitch, OpRet, OpUnreachable:
		return false
	case OpCall:
		return v.Fn != nil && v.Fn.HasResult
	}
	return true
}

// IsTerminator reports whether v ends a block.
func (v *Value) IsTerminator() bool {
	switch v.Op {
	case OpBr, OpCondBr, OpSwitch, OpRet, OpUnreachable:
		return true
	}
	return false
}

// WritesMemory reports whether v may write guest memory.
func (v *Value) WritesMemory() bool {
	switch v.Op {
	case OpStore, OpAtomicRMW, OpCmpXchg, OpCall, OpCallExt:
		return true
	}
	return false
}

// ReadsMemory reports whether v may read guest memory.
func (v *Value) ReadsMemory() bool {
	switch v.Op {
	case OpLoad, OpAtomicRMW, OpCmpXchg, OpCall, OpCallExt:
		return true
	}
	return false
}

// IsMemBarrier reports whether the optimizer must not move memory accesses
// across v (fences, compiler barriers, atomics, calls).
func (v *Value) IsMemBarrier() bool {
	switch v.Op {
	case OpFence, OpBarrier, OpAtomicRMW, OpCmpXchg, OpCall, OpCallExt:
		return true
	}
	return false
}

// Block is a basic block.
type Block struct {
	Name  string
	Func  *Func
	Insts []*Value
	// OrigAddr is the original machine-code address this block was lifted
	// from (0 for synthesized blocks). The PC-to-block switch dispatch maps
	// original addresses to these blocks.
	OrigAddr uint64
}

// Term returns the block terminator, or nil if the block is unterminated.
func (b *Block) Term() *Value {
	if len(b.Insts) == 0 {
		return nil
	}
	t := b.Insts[len(b.Insts)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Targets
}

// Func is a PIR function.
type Func struct {
	Name   string
	Mod    *Module
	Blocks []*Block // entry first
	// External marks the function as a possible external entry point
	// (callback); such functions must keep their wrappers and may not be
	// removed or inlined away (§3.3.3).
	External bool
	// HasResult marks runtime-helper-style functions that return a value.
	// Lifted original functions communicate through the virtual state and
	// return void.
	HasResult bool
	// NumParams is the number of (register-like) parameters for helper
	// functions; lifted functions take none.
	NumParams int
	// OrigEntry is the original-binary entry address for lifted functions.
	OrigEntry uint64
	// IsWrapper marks synthesized callback wrappers.
	IsWrapper bool

	nextID int
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewBlock appends a new block to f.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: name, Func: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewValue creates a value owned by f (not yet placed in a block).
func (f *Func) NewValue(op Op) *Value {
	f.nextID++
	return &Value{ID: f.nextID, Op: op}
}

// Append creates a value and appends it to block b.
func (b *Block) Append(op Op, args ...*Value) *Value {
	v := b.Func.NewValue(op)
	v.Args = args
	v.Block = b
	b.Insts = append(b.Insts, v)
	return v
}

// InsertBefore inserts v into b before position idx.
func (b *Block) InsertBefore(v *Value, idx int) {
	v.Block = b
	b.Insts = append(b.Insts, nil)
	copy(b.Insts[idx+1:], b.Insts[idx:])
	b.Insts[idx] = v
}

// RemoveAt removes the instruction at idx.
func (b *Block) RemoveAt(idx int) {
	b.Insts = append(b.Insts[:idx], b.Insts[idx+1:]...)
}

// Module is a compilation unit.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global

	byName  map[string]*Func
	gByName map[string]*Global
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, byName: map[string]*Func{}, gByName: map[string]*Global{}}
}

// NewFunc creates and registers a function.
func (m *Module) NewFunc(name string) *Func {
	f := &Func{Name: name, Mod: m}
	m.Funcs = append(m.Funcs, f)
	m.byName[name] = f
	return f
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func { return m.byName[name] }

// RemoveFunc unregisters and removes a function.
func (m *Module) RemoveFunc(name string) {
	delete(m.byName, name)
	for i, f := range m.Funcs {
		if f.Name == name {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			return
		}
	}
}

// NewGlobal creates and registers a global.
func (m *Module) NewGlobal(name string, size uint64) *Global {
	g := &Global{Name: name, Size: size}
	m.Globals = append(m.Globals, g)
	m.gByName[name] = g
	return g
}

// Global returns the named global, or nil.
func (m *Module) Global(name string) *Global { return m.gByName[name] }

// Preds computes the predecessor map for f.
func Preds(f *Func) map[*Block][]*Block {
	preds := map[*Block][]*Block{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// ReplaceAllUses rewrites every operand reference to old with new within f.
func ReplaceAllUses(f *Func, old, new *Value) {
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			for i, a := range v.Args {
				if a == old {
					v.Args[i] = new
				}
			}
		}
	}
}
