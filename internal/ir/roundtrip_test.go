package ir_test

// Workload-wide serialization round-trip: every optimized function body of
// every benchmark workload must survive EncodeFunc/DecodeFuncInto
// bit-exactly — the store's disk tier replays these bytes across process
// restarts, so any lossy field here would silently break the determinism
// contract (DESIGN.md §3). The import of internal/workloads (which depends
// on core, which depends on ir) is legal because this is an external test
// package.

import (
	"bytes"
	"testing"

	"repro/internal/disasm"
	"repro/internal/ir"
	"repro/internal/lifter"
	"repro/internal/opt"
	"repro/internal/workloads"
)

func TestEncodeRoundTripAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("lifts and optimizes every workload")
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			img, err := w.Compile(2)
			if err != nil {
				t.Fatal(err)
			}
			g, err := disasm.Disassemble(img)
			if err != nil {
				t.Fatal(err)
			}
			lf, err := lifter.Lift(img, g, lifter.Options{InsertFences: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := opt.Run(lf.Mod, opt.Options{}); err != nil {
				t.Fatal(err)
			}
			for _, f := range lf.Mod.Funcs {
				enc, err := ir.EncodeFunc(f)
				if err != nil {
					t.Fatalf("%s: encode: %v", f.Name, err)
				}
				dst := &ir.Func{Name: f.Name, Mod: lf.Mod}
				if err := ir.DecodeFuncInto(dst, enc, lf.Mod.Global, lf.Mod.Func); err != nil {
					t.Fatalf("%s: decode: %v", f.Name, err)
				}
				if got, want := dst.String(), f.String(); got != want {
					t.Fatalf("%s: decoded body prints differently:\n--- want\n%s\n--- got\n%s", f.Name, want, got)
				}
				re, err := ir.EncodeFunc(dst)
				if err != nil {
					t.Fatalf("%s: re-encode: %v", f.Name, err)
				}
				if !bytes.Equal(re, enc) {
					t.Fatalf("%s: round trip is not bit-exact", f.Name)
				}
			}
		})
	}
}
