package ir

import (
	"fmt"
	"strings"
)

// String renders the module in a textual, LLVM-flavoured syntax for
// debugging and golden tests.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, g := range m.Globals {
		tl := ""
		if g.ThreadLocal {
			tl = " thread_local"
		}
		at := ""
		if g.Addr != 0 {
			at = fmt.Sprintf(" @%#x", g.Addr)
		}
		fmt.Fprintf(&sb, "global%s @%s [%d]%s\n", tl, g.Name, g.Size, at)
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders one function.
func (f *Func) String() string {
	var sb strings.Builder
	attrs := ""
	if f.External {
		attrs += " external"
	}
	if f.IsWrapper {
		attrs += " wrapper"
	}
	fmt.Fprintf(&sb, "\nfunc @%s()%s {\n", f.Name, attrs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:", b.Name)
		if b.OrigAddr != 0 {
			fmt.Fprintf(&sb, " ; orig %#x", b.OrigAddr)
		}
		sb.WriteByte('\n')
		for _, v := range b.Insts {
			fmt.Fprintf(&sb, "  %s\n", v.String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func (v *Value) ref() string {
	switch v.Op {
	case OpConst:
		return fmt.Sprintf("%d", v.Const)
	case OpGlobalAddr:
		return "@" + v.Global.Name
	case OpFuncAddr:
		return "@" + v.Fn.Name
	case OpUndef:
		return "undef"
	}
	return fmt.Sprintf("%%%d", v.ID)
}

func (v *Value) argRefs() string {
	parts := make([]string, len(v.Args))
	for i, a := range v.Args {
		parts[i] = a.ref()
	}
	return strings.Join(parts, ", ")
}

// String renders one instruction.
func (v *Value) String() string {
	res := ""
	if v.HasResult() {
		res = fmt.Sprintf("%%%d = ", v.ID)
	}
	sl := ""
	if v.StackLocal {
		sl = " !stack"
	}
	switch v.Op {
	case OpConst:
		return fmt.Sprintf("%sconst %d", res, v.Const)
	case OpGlobalAddr:
		return fmt.Sprintf("%sgaddr @%s", res, v.Global.Name)
	case OpFuncAddr:
		return fmt.Sprintf("%sfaddr @%s", res, v.Fn.Name)
	case OpICmp:
		return fmt.Sprintf("%sicmp %s %s", res, v.Pred, v.argRefs())
	case OpLoad:
		return fmt.Sprintf("%sload i%d %s%s", res, v.Width*8, v.argRefs(), sl)
	case OpStore:
		return fmt.Sprintf("store i%d %s, %s%s", v.Width*8, v.Args[1].ref(), v.Args[0].ref(), sl)
	case OpVRegLoad:
		return fmt.Sprintf("%svreg.load @%s", res, v.Global.Name)
	case OpVRegStore:
		return fmt.Sprintf("vreg.store @%s, %s", v.Global.Name, v.Args[0].ref())
	case OpAtomicRMW:
		return fmt.Sprintf("%satomicrmw %s %s seq_cst", res, v.RMW, v.argRefs())
	case OpCmpXchg:
		return fmt.Sprintf("%scmpxchg %s seq_cst", res, v.argRefs())
	case OpFence:
		return fmt.Sprintf("fence %s", v.Order)
	case OpCall:
		return fmt.Sprintf("%scall @%s(%s)", res, v.Fn.Name, v.argRefs())
	case OpCallExt:
		return fmt.Sprintf("%scallext %q(%s)", res, v.ExtName, v.argRefs())
	case OpPhi:
		parts := make([]string, len(v.Args))
		for i, a := range v.Args {
			parts[i] = fmt.Sprintf("[%s, %s]", a.ref(), v.PhiPreds[i].Name)
		}
		return fmt.Sprintf("%sphi %s", res, strings.Join(parts, ", "))
	case OpBr:
		return fmt.Sprintf("br %s", v.Targets[0].Name)
	case OpCondBr:
		return fmt.Sprintf("condbr %s, %s, %s", v.Args[0].ref(), v.Targets[0].Name, v.Targets[1].Name)
	case OpSwitch:
		parts := make([]string, len(v.SwitchVals))
		for i, c := range v.SwitchVals {
			parts[i] = fmt.Sprintf("%#x: %s", uint64(c), v.Targets[i+1].Name)
		}
		return fmt.Sprintf("switch %s, default %s [%s]", v.Args[0].ref(), v.Targets[0].Name, strings.Join(parts, ", "))
	case OpRet:
		if len(v.Args) > 0 {
			return fmt.Sprintf("ret %s", v.Args[0].ref())
		}
		return "ret"
	default:
		return fmt.Sprintf("%s%s %s", res, v.Op, v.argRefs())
	}
}
