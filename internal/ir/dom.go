package ir

// Dominator tree, dominance frontiers, and natural-loop detection.
// Used by the vreg-promotion (mem2reg) pass and by the spinloop analysis
// (§3.4.2 runs a loop-simplify-style restructuring before classifying loop
// termination conditions).

// DomTree holds immediate-dominator information for a function.
type DomTree struct {
	F     *Func
	Order []*Block          // reverse postorder
	Num   map[*Block]int    // block -> RPO number
	IDom  map[*Block]*Block // immediate dominator (entry maps to itself)
	Preds map[*Block][]*Block
}

// BuildDom computes the dominator tree with the Cooper-Harvey-Kennedy
// algorithm.
func BuildDom(f *Func) *DomTree {
	d := &DomTree{
		F:     f,
		Num:   map[*Block]int{},
		IDom:  map[*Block]*Block{},
		Preds: Preds(f),
	}
	// Reverse postorder over reachable blocks.
	seen := map[*Block]bool{}
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i := len(post) - 1; i >= 0; i-- {
		d.Order = append(d.Order, post[i])
	}
	for i, b := range d.Order {
		d.Num[b] = i
	}

	entry := f.Entry()
	d.IDom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range d.Order[1:] {
			var newIdom *Block
			for _, p := range d.Preds[b] {
				if _, ok := d.Num[p]; !ok {
					continue // unreachable predecessor
				}
				if d.IDom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.IDom[b] != newIdom {
				d.IDom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for d.Num[a] > d.Num[b] {
			a = d.IDom[a]
		}
		for d.Num[b] > d.Num[a] {
			b = d.IDom[b]
		}
	}
	return a
}

// Dominates reports whether a dominates b (reflexive).
func (d *DomTree) Dominates(a, b *Block) bool {
	if _, ok := d.Num[b]; !ok {
		return false
	}
	for {
		if a == b {
			return true
		}
		idom := d.IDom[b]
		if idom == nil || idom == b {
			return false
		}
		b = idom
	}
}

// Frontiers computes dominance frontiers.
func (d *DomTree) Frontiers() map[*Block][]*Block {
	df := map[*Block][]*Block{}
	add := func(b, f *Block) {
		for _, x := range df[b] {
			if x == f {
				return
			}
		}
		df[b] = append(df[b], f)
	}
	for _, b := range d.Order {
		preds := d.Preds[b]
		if len(preds) < 2 {
			continue
		}
		for _, p := range preds {
			if _, ok := d.Num[p]; !ok {
				continue
			}
			runner := p
			for runner != d.IDom[b] && runner != nil {
				add(runner, b)
				next := d.IDom[runner]
				if next == runner {
					break
				}
				runner = next
			}
		}
	}
	return df
}

// Loop is a natural loop.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
	// Latches are the blocks with back edges to the header.
	Latches []*Block
	// Exits are (block in loop -> successor outside loop) edges.
	Exits []LoopExit
}

// LoopExit is one exiting edge of a loop.
type LoopExit struct {
	From *Block // inside the loop
	To   *Block // outside the loop
}

// FindLoops detects natural loops from back edges (an edge a->h where h
// dominates a). Loops sharing a header are merged.
func (d *DomTree) FindLoops() []*Loop {
	byHeader := map[*Block]*Loop{}
	var order []*Block
	for _, b := range d.Order {
		for _, s := range b.Succs() {
			if d.Dominates(s, b) {
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
					byHeader[s] = l
					order = append(order, s)
				}
				l.Latches = append(l.Latches, b)
				// Collect the loop body: all blocks reaching the latch
				// without passing through the header.
				var stack []*Block
				if !l.Blocks[b] {
					l.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range d.Preds[x] {
						if _, ok := d.Num[p]; !ok {
							continue
						}
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	var loops []*Loop
	for _, h := range order {
		l := byHeader[h]
		for b := range l.Blocks {
			for _, s := range b.Succs() {
				if !l.Blocks[s] {
					l.Exits = append(l.Exits, LoopExit{From: b, To: s})
				}
			}
		}
		loops = append(loops, l)
	}
	return loops
}
