package ir

import (
	"encoding/binary"
	"fmt"
)

// Deterministic binary serialization for detached function bodies — the
// persistent form of the stub-global/stub-func convention the in-memory
// function cache used: cross-references leave a body as names and are
// resolved against the destination module on decode. The encoding is the
// artifact-store payload for the "func" namespace, so it must be
// byte-deterministic (same body → same bytes, no maps, no pointers) and a
// decode must reproduce the body bit-exactly: same value IDs, same block
// names, same instruction attributes — a decoded function prints and lowers
// identically to its source, which is what lets a disk-warm recompile emit
// the same image as a cold one.
//
// encMagic versions the format; DecodeFuncInto rejects anything else, and
// callers treat any decode failure as a cache miss.
const encMagic = "PIRF1\n"

// EncodeFunc serializes f's body and attributes. Operand references are
// encoded as instruction ordinals and global/function references by name
// (empty name = nil), so the result is self-contained. It fails if an
// operand is not an instruction of f — such a body is not well-formed SSA
// and cannot be replayed.
func EncodeFunc(f *Func) ([]byte, error) {
	ord := map[*Value]int{}
	n := 0
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			ord[v] = n
			n++
		}
	}
	e := &encoder{buf: make([]byte, 0, 64+n*24)}
	e.str(encMagic)
	var flags byte
	if f.External {
		flags |= 1
	}
	if f.HasResult {
		flags |= 2
	}
	if f.IsWrapper {
		flags |= 4
	}
	e.u8(flags)
	e.uv(uint64(f.NumParams))
	e.uv(f.OrigEntry)
	e.uv(uint64(f.nextID))

	blockIdx := map[*Block]int{}
	e.uv(uint64(len(f.Blocks)))
	for i, b := range f.Blocks {
		blockIdx[b] = i
		e.str(b.Name)
		e.uv(b.OrigAddr)
		e.uv(uint64(len(b.Insts)))
	}
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			e.uv(uint64(v.ID))
			e.u8(byte(v.Op))
			e.uv(uint64(len(v.Args)))
			for _, a := range v.Args {
				o, ok := ord[a]
				if !ok {
					return nil, fmt.Errorf("ir: encode %s: operand v%d of v%d is not an instruction of the function", f.Name, a.ID, v.ID)
				}
				e.uv(uint64(o))
			}
			e.sv(v.Const)
			if v.Global != nil {
				e.str(v.Global.Name)
			} else {
				e.str("")
			}
			if v.Fn != nil {
				e.str(v.Fn.Name)
			} else {
				e.str("")
			}
			e.str(v.ExtName)
			e.u8(byte(v.Width))
			e.bool(v.SignExt)
			e.u8(byte(v.Pred))
			e.u8(byte(v.RMW))
			e.u8(byte(v.Order))
			e.bool(v.StackLocal)
			e.uv(uint64(v.SiteID))
			e.uv(v.OrigPC)
			e.uv(uint64(len(v.Targets)))
			for _, t := range v.Targets {
				ti, ok := blockIdx[t]
				if !ok {
					return nil, fmt.Errorf("ir: encode %s: v%d targets a block outside the function", f.Name, v.ID)
				}
				e.uv(uint64(ti))
			}
			e.uv(uint64(len(v.SwitchVals)))
			for _, sv := range v.SwitchVals {
				e.sv(sv)
			}
			e.uv(uint64(len(v.PhiPreds)))
			for _, pb := range v.PhiPreds {
				pi, ok := blockIdx[pb]
				if !ok {
					return nil, fmt.Errorf("ir: encode %s: phi v%d names a pred outside the function", f.Name, v.ID)
				}
				e.uv(uint64(pi))
			}
		}
	}
	return e.buf, nil
}

// DecodeFuncInto materializes an encoded body into dst, which must be empty
// (a fresh skeleton function). Global and function references are resolved
// by name through the two lookups — the decode-side half of the stub
// convention; a lookup returning nil fails the decode (the destination
// module renamed or dropped the symbol, so the body no longer applies).
// On failure dst is restored to its pre-call state, so the caller can treat
// the error as a cache miss and lift into the same skeleton function — in
// particular the internal value-ID counter is rolled back, keeping a
// post-failure fresh lift byte-identical to one that never tried to decode.
func DecodeFuncInto(dst *Func, data []byte, globalOf func(string) *Global, funcOf func(string) *Func) error {
	saved := *dst
	if err := decodeFuncInto(dst, data, globalOf, funcOf); err != nil {
		*dst = saved
		return err
	}
	return nil
}

func decodeFuncInto(dst *Func, data []byte, globalOf func(string) *Global, funcOf func(string) *Func) error {
	if len(dst.Blocks) != 0 {
		return fmt.Errorf("ir: decode into non-empty function %s", dst.Name)
	}
	d := &decoder{buf: data}
	if d.str() != encMagic {
		return fmt.Errorf("ir: decode %s: bad magic", dst.Name)
	}
	flags := d.u8()
	dst.External = flags&1 != 0
	dst.HasResult = flags&2 != 0
	dst.IsWrapper = flags&4 != 0
	dst.NumParams = int(d.uv())
	dst.OrigEntry = d.uv()
	dst.nextID = int(d.uv())

	nblocks := d.uv()
	if d.err != nil || nblocks > uint64(len(data)) {
		return fmt.Errorf("ir: decode %s: corrupt header", dst.Name)
	}
	ninsts := make([]uint64, nblocks)
	total := uint64(0)
	for i := range ninsts {
		b := dst.NewBlock(d.str())
		b.OrigAddr = d.uv()
		ninsts[i] = d.uv()
		total += ninsts[i]
	}
	if d.err != nil || total > uint64(len(data)) {
		return fmt.Errorf("ir: decode %s: corrupt block table", dst.Name)
	}

	// First pass: materialize every value with its scalar attributes and
	// remember each value's operand ordinals; links are patched in a second
	// pass because operands may reference forward (phis).
	values := make([]*Value, 0, total)
	argOrds := make([][]uint64, 0, total)
	for bi, b := range dst.Blocks {
		for range ninsts[bi] {
			v := &Value{Block: b}
			v.ID = int(d.uv())
			v.Op = Op(d.u8())
			nargs := d.uv()
			if nargs > total {
				return fmt.Errorf("ir: decode %s: corrupt arg count", dst.Name)
			}
			ords := make([]uint64, nargs)
			for i := range ords {
				ords[i] = d.uv()
			}
			v.Const = d.sv()
			if gname := d.str(); gname != "" {
				if v.Global = globalOf(gname); v.Global == nil {
					return fmt.Errorf("ir: decode %s: unresolved global %q", dst.Name, gname)
				}
			}
			if fname := d.str(); fname != "" {
				if v.Fn = funcOf(fname); v.Fn == nil {
					return fmt.Errorf("ir: decode %s: unresolved function %q", dst.Name, fname)
				}
			}
			v.ExtName = d.str()
			v.Width = int(d.u8())
			v.SignExt = d.bool()
			v.Pred = Pred(d.u8())
			v.RMW = RMWKind(d.u8())
			v.Order = Order(d.u8())
			v.StackLocal = d.bool()
			v.SiteID = int(d.uv())
			v.OrigPC = d.uv()
			if ntgt := d.uv(); ntgt > 0 {
				if ntgt > nblocks {
					return fmt.Errorf("ir: decode %s: corrupt target count", dst.Name)
				}
				v.Targets = make([]*Block, ntgt)
				for i := range v.Targets {
					ti := d.uv()
					if ti >= nblocks {
						return fmt.Errorf("ir: decode %s: target index out of range", dst.Name)
					}
					v.Targets[i] = dst.Blocks[ti]
				}
			}
			if nsv := d.uv(); nsv > 0 {
				if nsv > uint64(len(data)) {
					return fmt.Errorf("ir: decode %s: corrupt switch table", dst.Name)
				}
				v.SwitchVals = make([]int64, nsv)
				for i := range v.SwitchVals {
					v.SwitchVals[i] = d.sv()
				}
			}
			if npp := d.uv(); npp > 0 {
				if npp > nblocks {
					return fmt.Errorf("ir: decode %s: corrupt phi pred count", dst.Name)
				}
				v.PhiPreds = make([]*Block, npp)
				for i := range v.PhiPreds {
					pi := d.uv()
					if pi >= nblocks {
						return fmt.Errorf("ir: decode %s: phi pred index out of range", dst.Name)
					}
					v.PhiPreds[i] = dst.Blocks[pi]
				}
			}
			b.Insts = append(b.Insts, v)
			values = append(values, v)
			argOrds = append(argOrds, ords)
		}
	}
	if d.err != nil {
		return fmt.Errorf("ir: decode %s: %w", dst.Name, d.err)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("ir: decode %s: %d trailing bytes", dst.Name, len(d.buf))
	}
	for i, v := range values {
		if len(argOrds[i]) == 0 {
			continue
		}
		v.Args = make([]*Value, len(argOrds[i]))
		for j, o := range argOrds[i] {
			if o >= uint64(len(values)) {
				return fmt.Errorf("ir: decode %s: operand ordinal out of range", dst.Name)
			}
			v.Args[j] = values[o]
		}
	}
	return nil
}

type encoder struct{ buf []byte }

func (e *encoder) u8(b byte)    { e.buf = append(e.buf, b) }
func (e *encoder) uv(x uint64)  { e.buf = binary.AppendUvarint(e.buf, x) }
func (e *encoder) sv(x int64)   { e.buf = binary.AppendVarint(e.buf, x) }
func (e *encoder) str(s string) { e.uv(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *encoder) bool(b bool) {
	if b {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// decoder reads the encoder's stream with a sticky error: after the first
// malformed read every accessor returns zero values, and the caller checks
// err at the structural checkpoints above.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated or malformed stream")
	}
	d.buf = nil
}

func (d *decoder) u8() byte {
	if len(d.buf) < 1 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uv() uint64 {
	x, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return x
}

func (d *decoder) sv() int64 {
	x, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return x
}

func (d *decoder) str() string {
	n := d.uv()
	if n > uint64(len(d.buf)) {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) bool() bool { return d.u8() != 0 }
