package mx

import (
	"math/rand"
	"testing"
)

func TestMaxEncodedLen(t *testing.T) {
	max := 0
	for op := Op(0); op < NumOps; op++ {
		if n := EncodedLen(op); n > max {
			max = n
		}
	}
	if max != MaxEncodedLen {
		t.Fatalf("MaxEncodedLen = %d, but the widest layout encodes to %d", MaxEncodedLen, max)
	}
}

// pageCorpus builds a byte buffer mixing well-formed encodings with random
// garbage, so DecodePage is checked over valid instructions, BAD bytes, and
// every misaligned suffix in between.
func pageCorpus(size int) []byte {
	rng := rand.New(rand.NewSource(42))
	code := make([]byte, 0, size+MaxEncodedLen)
	for len(code) < size {
		if rng.Intn(4) == 0 {
			code = append(code, byte(rng.Intn(256)))
			continue
		}
		inst := Inst{
			Op:    Op(1 + rng.Intn(int(NumOps)-1)),
			Dst:   Reg(rng.Intn(16)),
			Src:   Reg(rng.Intn(16)),
			Base:  Reg(rng.Intn(16)),
			Idx:   Reg(rng.Intn(16)),
			Scale: uint8(1 << rng.Intn(4)),
			Cc:    Cond(rng.Intn(8)),
			Imm:   rng.Int63n(1 << 20),
			Disp:  int32(rng.Intn(1 << 12)),
		}
		code = inst.Encode(code)
	}
	return code[:size]
}

// TestDecodePageMatchesDecode pins the predecode contract: at every byte
// offset of a page, DecodePage must report exactly what a linear Decode of
// the page-plus-tail bytes reports at that offset.
func TestDecodePageMatchesDecode(t *testing.T) {
	const size = 1024
	buf := pageCorpus(size + MaxEncodedLen - 1)
	page, tail := buf[:size], buf[size:]

	insts, lens := DecodePage(page, tail)
	if len(insts) != size || len(lens) != size {
		t.Fatalf("DecodePage sizes = %d/%d, want %d", len(insts), len(lens), size)
	}
	for i := 0; i < size; i++ {
		wantInst, wantN := Decode(buf[i:])
		if insts[i] != wantInst || int(lens[i]) != wantN {
			t.Fatalf("offset %d: DecodePage = %+v len %d; Decode = %+v len %d",
				i, insts[i], lens[i], wantInst, wantN)
		}
	}
}

// TestDecodePageTruncation checks both sides of the page boundary: without
// tail bytes an instruction cut off by the end of the page decodes as BAD
// (exactly like Decode on a short buffer), and with the successor's bytes
// supplied as tail the same instruction decodes fully.
func TestDecodePageTruncation(t *testing.T) {
	var buf []byte
	for len(buf) < 61 {
		buf = Inst{Op: NOP}.Encode(buf)
	}
	straddler := Inst{Op: MOVRI, Dst: RAX, Imm: 0x1122334455667788}
	buf = straddler.Encode(buf) // starts at 61, needs 10 bytes
	page, tail := buf[:64], buf[64:]

	noTail, _ := DecodePage(page, nil)
	if noTail[61].Op != BAD {
		t.Fatalf("truncated instruction decoded as %v, want BAD", noTail[61].Op)
	}

	withTail, lens := DecodePage(page, tail)
	if withTail[61] != straddler || int(lens[61]) != EncodedLen(MOVRI) {
		t.Fatalf("straddling instruction = %+v len %d; want %+v len %d",
			withTail[61], lens[61], straddler, EncodedLen(MOVRI))
	}
}
