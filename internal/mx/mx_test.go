package mx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randInst generates a random valid instruction for property tests.
func randInst(r *rand.Rand) Inst {
	for {
		op := Op(1 + r.Intn(int(NumOps)-1))
		i := Inst{Op: op}
		gpr := func() Reg { return Reg(r.Intn(NumRegs)) }
		vr := func() Reg { return Reg(r.Intn(NumVRegs)) }
		switch LayoutOf(op) {
		case LayoutR:
			i.Dst = gpr()
		case LayoutRR:
			switch op {
			case VADD, VMUL:
				i.Dst, i.Src = vr(), vr()
			case VBCAST:
				i.Dst, i.Src = vr(), gpr()
			case VHADD:
				i.Dst, i.Src = gpr(), vr()
			default:
				i.Dst, i.Src = gpr(), gpr()
			}
		case LayoutRI:
			i.Dst, i.Imm = gpr(), int64(int32(r.Uint32()))
		case LayoutRI64:
			i.Dst, i.Imm = gpr(), int64(r.Uint64())
		case LayoutRCc:
			i.Dst, i.Cc = gpr(), Cond(r.Intn(NumConds))
		case LayoutMem:
			if op == VLOAD || op == VSTORE {
				i.Dst = vr()
			} else {
				i.Dst = gpr()
			}
			i.Base, i.Disp = gpr(), int32(r.Uint32())
		case LayoutMemI:
			i.Base, i.Disp, i.Imm = gpr(), int32(r.Uint32()), int64(int32(r.Uint32()))
		case LayoutMemIdx:
			i.Dst, i.Base, i.Idx = gpr(), gpr(), gpr()
			i.Scale = []uint8{1, 2, 4, 8}[r.Intn(4)]
			i.Disp = int32(r.Uint32())
		case LayoutRel:
			i.Disp = int32(r.Uint32())
		case LayoutCcRel:
			i.Cc, i.Disp = Cond(r.Intn(NumConds)), int32(r.Uint32())
		case LayoutJmpM:
			i.Base, i.Idx, i.Disp = gpr(), gpr(), int32(r.Uint32())
		case LayoutExt:
			i.Ext = uint16(r.Uint32())
		}
		if i.valid() {
			return i
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		enc := in.Encode(nil)
		if len(enc) != in.Len() {
			t.Logf("len mismatch: %v encoded to %d bytes, Len()=%d", in, len(enc), in.Len())
			return false
		}
		out, n := Decode(enc)
		if n != len(enc) || out != in {
			t.Logf("roundtrip: in=%#v out=%#v n=%d", in, out, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEmptyAndBad(t *testing.T) {
	if i, n := Decode(nil); i.Op != BAD || n != 0 {
		t.Fatalf("Decode(nil) = %v, %d", i, n)
	}
	if i, n := Decode([]byte{0}); i.Op != BAD || n != 1 {
		t.Fatalf("Decode(BAD) = %v, %d", i, n)
	}
	if i, n := Decode([]byte{byte(NumOps) + 5}); i.Op != BAD || n != 1 {
		t.Fatalf("Decode(out of range) = %v, %d", i, n)
	}
	// Truncated MOVRI.
	if i, n := Decode([]byte{byte(MOVRI), 0, 1, 2}); i.Op != BAD || n != 1 {
		t.Fatalf("Decode(truncated) = %v, %d", i, n)
	}
}

func TestDecodeRejectsBadOperands(t *testing.T) {
	// MOVRR with register 200 must decode as BAD.
	enc := []byte{byte(MOVRR), 200, 0}
	if i, _ := Decode(enc); i.Op != BAD {
		t.Fatalf("bad register accepted: %v", i)
	}
	// MemIdx with scale 3 must decode as BAD.
	bad := Inst{Op: LOADIDX64, Dst: RAX, Base: RBX, Idx: RCX, Scale: 8}
	enc = bad.Encode(nil)
	enc[4] = 3 // corrupt scale
	if i, _ := Decode(enc); i.Op != BAD {
		t.Fatalf("bad scale accepted: %v", i)
	}
	// JCC with condition out of range.
	enc = []byte{byte(JCC), byte(NumConds), 0, 0, 0, 0}
	if i, _ := Decode(enc); i.Op != BAD {
		t.Fatalf("bad condition accepted: %v", i)
	}
}

func TestCondNegate(t *testing.T) {
	for c := Cond(0); c < NumConds; c++ {
		if c.Negate().Negate() != c {
			t.Fatalf("double negate of %v", c)
		}
		if c.Negate() == c {
			t.Fatalf("negate of %v is itself", c)
		}
	}
	want := map[Cond]Cond{
		CondE: CondNE, CondL: CondGE, CondLE: CondG,
		CondB: CondAE, CondBE: CondA, CondS: CondNS,
	}
	for c, n := range want {
		if c.Negate() != n {
			t.Fatalf("negate(%v) = %v, want %v", c, c.Negate(), n)
		}
	}
}

// TestCondNegateSemantics checks Negate against the actual flag semantics:
// for every flag combination, c and c.Negate() must evaluate oppositely.
// (The flag evaluation lives in package vm; here we replicate the truth
// table over the four flag bits symbolically via the vm package's tests, so
// this test only pins the table shape.)

func TestClassifiers(t *testing.T) {
	cases := []struct {
		in                        Inst
		term, call, indir, atomic bool
	}{
		{Inst{Op: JMP}, true, false, false, false},
		{Inst{Op: JCC}, true, false, false, false},
		{Inst{Op: JMPR}, true, false, true, false},
		{Inst{Op: JMPM}, true, false, true, false},
		{Inst{Op: RET}, true, false, false, false},
		{Inst{Op: HLT}, true, false, false, false},
		{Inst{Op: CALL}, false, true, false, false},
		{Inst{Op: CALLR}, false, true, true, false},
		{Inst{Op: CALLX}, false, true, false, false},
		{Inst{Op: LOCKADD}, false, false, false, true},
		{Inst{Op: CMPXCHG}, false, false, false, true},
		{Inst{Op: XCHG}, false, false, false, true},
		{Inst{Op: MOVRR}, false, false, false, false},
		{Inst{Op: MFENCE}, false, false, false, false},
	}
	for _, c := range cases {
		if c.in.IsTerminator() != c.term {
			t.Errorf("%v IsTerminator = %v", c.in.Op, !c.term)
		}
		if c.in.IsCall() != c.call {
			t.Errorf("%v IsCall = %v", c.in.Op, !c.call)
		}
		if c.in.IsIndirect() != c.indir {
			t.Errorf("%v IsIndirect = %v", c.in.Op, !c.indir)
		}
		if c.in.IsAtomic() != c.atomic {
			t.Errorf("%v IsAtomic = %v", c.in.Op, !c.atomic)
		}
	}
}

func TestStringSmoke(t *testing.T) {
	// Every opcode must render without panicking and non-empty.
	r := rand.New(rand.NewSource(1))
	seen := map[Op]bool{}
	for len(seen) < int(NumOps)-1 {
		i := randInst(r)
		seen[i.Op] = true
		if s := i.String(); s == "" {
			t.Fatalf("empty String for %v", i.Op)
		}
	}
	for c := Cond(0); c < NumConds; c++ {
		if c.String() == "" {
			t.Fatalf("empty cond name %d", c)
		}
	}
	for rg := Reg(0); rg < NumRegs; rg++ {
		if rg.String() == "" {
			t.Fatalf("empty reg name %d", rg)
		}
	}
}

func TestDecodeStreamResync(t *testing.T) {
	// A stream of valid instructions decodes back to the same sequence.
	r := rand.New(rand.NewSource(42))
	var insts []Inst
	var buf []byte
	for k := 0; k < 200; k++ {
		in := randInst(r)
		insts = append(insts, in)
		buf = in.Encode(buf)
	}
	pos := 0
	for k := 0; k < len(insts); k++ {
		i, n := Decode(buf[pos:])
		if i != insts[k] {
			t.Fatalf("stream decode diverged at %d: %v != %v", k, i, insts[k])
		}
		pos += n
	}
	if pos != len(buf) {
		t.Fatalf("stream length mismatch: %d != %d", pos, len(buf))
	}
}
