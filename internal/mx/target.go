package mx

// Target is an ISA description the lowering backend is parameterized over
// (the Macaw-style architecture-parameterized design). A Target specifies
// everything internal/lower needs to know about the machine it is emitting
// for — the allocatable register file, the memory-ordering model and its
// fence lowering recipe, the call/ABI conventions wrappers marshal across,
// and the state-layout constants baseline variants depend on. Both built-in
// targets share the MX64 byte encoding and are executed by the same VM; a
// weakly-ordered target is selected at run time via the image's machine
// mode flag (image.Image.Machine).
//
// Memory-model contract: on a Target with WeakOrder false (TSO-like — the
// interpreter serializes all memory accesses), ir.OpFence/OpBarrier are
// zero-cost ordering constraints and lowering drops them. With WeakOrder
// true, plain loads and stores may be reordered by the machine (the VM
// models a per-thread store buffer), so lowering must emit FenceOp for
// every fence the optimizer did not prove removable.
type Target struct {
	// Name is the user-facing target name (the -target flag value).
	Name string
	// ID is a stable one-byte target identifier folded into per-function
	// cache fingerprints and image artifact keys, so a warm store never
	// serves one target's bytes to another target's request. IDs are
	// append-only: never renumber.
	ID byte
	// WeakOrder reports whether plain loads/stores may reorder unless
	// fenced. When true, lowering emits FenceOp for ir.OpFence/OpBarrier.
	WeakOrder bool
	// MachineMode is the value stamped into image.Image.Machine so the VM
	// executes the output under this target's memory model. Empty means
	// the default machine (MX64, TSO) — old artifacts carry no field.
	MachineMode string
	// FenceOp is the full-fence instruction emitted for ir.OpFence and
	// ir.OpBarrier when WeakOrder is set.
	FenceOp Op
	// PoolRegs is the ordered allocatable register pool for function
	// bodies. Registers beyond the pool spill to stack slots, so a short
	// pool makes register pressure (and the resulting spill traffic) a
	// real, measurable cost on register-poor targets.
	PoolRegs []Reg
	// ArgRegs is the native argument-register sequence of the external
	// call ABI, in order. Pool registers that overlap ArgRegs must be
	// preserved around external calls (see IsMarshal).
	ArgRegs []Reg
	// SavedRegs is the register file wrappers preserve around re-entry
	// into guest code (everything except the native return slot and rsp).
	SavedRegs []Reg
	// SingleStateBase is where the shared virtual state lives under
	// lower.Options.SingleThreadState (below the recompiled code). It is
	// a target-layout constant: the address must fall outside every
	// section the target's images map.
	SingleStateBase uint64
}

// IsMarshal reports whether r is a native argument register of the external
// call ABI — a pool register for which lowering must save/restore its value
// around CALLX, and which wrappers marshal into the virtual state.
func (t *Target) IsMarshal(r Reg) bool {
	for _, a := range t.ArgRegs {
		if a == r {
			return true
		}
	}
	return false
}

// MX64 is the default target: the full 16-GPR register file (9 allocatable
// pool registers) under TSO-like ordering, so fences lower to nothing.
var MX64 = &Target{
	Name:      "mx64",
	ID:        0,
	WeakOrder: false,
	FenceOp:   MFENCE,
	PoolRegs:  []Reg{RBX, R12, R13, R14, RDI, RDX, RCX, R8, R9},
	ArgRegs:   []Reg{RDI, RSI, RDX, RCX, R8, R9},
	SavedRegs: []Reg{
		RCX, RDX, RBX, RBP, RSI, RDI,
		R8, R9, R10, R11, R12, R13, R14, R15,
	},
	SingleStateBase: 0x0098_0000,
}

// MX64W is the weakly-ordered, register-poor MX profile: same byte encoding
// and VM, but plain loads/stores may reorder unless fenced (the VM models a
// per-thread store buffer when Image.Machine == "mx64w") and only one pool
// register is allocatable, so function bodies touch at most 8 GPRs
// (rax, rbx, rsp, rbp, rsi, r10, r11, r15). ABI edges — wrappers and
// external-call marshaling — are exempt from the 8-GPR budget: they speak
// the full-file native calling convention by definition.
var MX64W = &Target{
	Name:        "mx64w",
	ID:          1,
	WeakOrder:   true,
	MachineMode: "mx64w",
	FenceOp:     MFENCE,
	PoolRegs:    []Reg{RBX},
	ArgRegs:     []Reg{RDI, RSI, RDX, RCX, R8, R9},
	SavedRegs: []Reg{
		RCX, RDX, RBX, RBP, RSI, RDI,
		R8, R9, R10, R11, R12, R13, R14, R15,
	},
	SingleStateBase: 0x0098_0000,
}

// Targets lists every built-in target.
var Targets = []*Target{MX64, MX64W}

// TargetByName resolves a -target flag value ("" and "mx64" mean the
// default target) or returns nil for an unknown name.
func TargetByName(name string) *Target {
	if name == "" {
		return MX64
	}
	for _, t := range Targets {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// TargetByMachine resolves an image machine-mode flag to its target ("" is
// the default MX64/TSO machine) or returns nil for an unknown mode.
func TargetByMachine(mode string) *Target {
	if mode == "" {
		return MX64
	}
	for _, t := range Targets {
		if t.MachineMode == mode {
			return t
		}
	}
	return nil
}
