// Package mx defines MX64, the machine ISA targeted by this repository.
//
// MX64 is a byte-encoded, variable-length, x86-64-flavoured instruction set:
// sixteen 64-bit general-purpose registers (with the usual rax..r15 aliases),
// an EFLAGS subset (ZF/SF/CF/OF), lock-prefixed read-modify-write and
// compare-exchange instructions, indirect jumps and calls, memory-indirect
// jump tables, and a small packed-SIMD extension (eight 4x64-bit vector
// registers). It stands in for x86/x64 in the Polynima reproduction: the
// properties the recompiler targets — disassembly ambiguity, indirect control
// flow, hardware atomics, per-thread stacks — are properties of this encoding
// and of the execution model in package vm.
//
// Instructions are encoded as a one-byte opcode followed by an
// opcode-determined operand layout (see layouts). Encode and Decode are exact
// inverses for every valid instruction, a property the package tests verify
// exhaustively and with testing/quick.
package mx

import (
	"encoding/binary"
	"fmt"
)

// Reg is a general-purpose register number (0..15) or a vector register
// number (0..7) depending on the operand slot it appears in.
type Reg uint8

// General-purpose registers, numbered as on x86-64.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	NumRegs = 16
)

// NumVRegs is the number of vector registers (V0..V7, each 4x64 bits).
const NumVRegs = 8

// VectorWidth is the number of 64-bit lanes in a vector register.
const VectorWidth = 4

var regNames = [...]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Cond is a branch/set condition, evaluated against the flags register.
type Cond uint8

// Conditions. Signed comparisons use SF/OF, unsigned use CF, equality uses ZF.
const (
	CondE    Cond = iota // equal (ZF)
	CondNE               // not equal (!ZF)
	CondL                // signed less (SF != OF)
	CondLE               // signed less-or-equal
	CondG                // signed greater
	CondGE               // signed greater-or-equal
	CondB                // unsigned below (CF)
	CondBE               // unsigned below-or-equal
	CondA                // unsigned above
	CondAE               // unsigned above-or-equal
	CondS                // sign (SF)
	CondNS               // no sign (!SF)
	NumConds = 12
)

var condNames = [...]string{"e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc?%d", uint8(c))
}

var condNegations = [NumConds]Cond{
	CondE: CondNE, CondNE: CondE,
	CondL: CondGE, CondGE: CondL,
	CondLE: CondG, CondG: CondLE,
	CondB: CondAE, CondAE: CondB,
	CondBE: CondA, CondA: CondBE,
	CondS: CondNS, CondNS: CondS,
}

// Negate returns the condition that is true exactly when c is false.
func (c Cond) Negate() Cond {
	if c < NumConds {
		return condNegations[c]
	}
	return c
}

// Op is an MX64 opcode.
type Op uint8

// Opcodes. The zero value is deliberately invalid so that zeroed memory
// decodes as an illegal instruction, as on real hardware it usually would.
const (
	BAD Op = iota // illegal instruction

	// Data movement.
	MOVRR   // dst <- src
	MOVRI   // dst <- imm64
	LEA     // dst <- base + disp
	LEAIDX  // dst <- base + idx*scale + disp
	LOAD8   // dst <- zx(mem8[base+disp])
	LOAD32  // dst <- sx(mem32[base+disp])
	LOAD64  // dst <- mem64[base+disp]
	STORE8  // mem8[base+disp] <- src
	STORE32 // mem32[base+disp] <- src
	STORE64 // mem64[base+disp] <- src
	STOREI8
	STOREI32 // mem32[base+disp] <- imm32
	STOREI64 // mem64[base+disp] <- sx(imm32)
	LOADIDX8
	LOADIDX32 // dst <- sx(mem32[base+idx*scale+disp])
	LOADIDX64
	STOREIDX8
	STOREIDX32
	STOREIDX64

	// ALU, register-register. All set ZF/SF; ADD/SUB/CMP also set CF/OF.
	ADDRR
	SUBRR
	ANDRR
	ORRR
	XORRR
	SHLRR
	SHRRR
	SARRR
	IMULRR
	DIVRR // signed quotient; traps on divide-by-zero
	MODRR // signed remainder
	CMPRR
	TESTRR

	// ALU, register-immediate (imm32, sign-extended).
	ADDRI
	SUBRI
	ANDRI
	ORRI
	XORRI
	SHLRI
	SHRRI
	SARRI
	IMULRI
	CMPRI
	TESTRI

	// Unary.
	NEG
	NOT
	SETCC // dst <- cond ? 1 : 0

	// Control flow. Relative displacements are from the end of the insn.
	JMP   // rel32
	JCC   // cc, rel32
	JMPR  // indirect jump to register
	JMPM  // indirect jump to mem64[base + idx*8 + disp] (jump table)
	CALL  // rel32
	CALLR // indirect call to register
	RET
	PUSH
	POP
	CALLX   // call external import #ext
	SYSCALL // raw system call (unsupported by the lifter, per the paper)
	HLT     // halt the machine (process exit)
	NOP
	UD2 // explicit undefined instruction

	// Hardware atomics (all 64-bit, lock-prefixed semantics).
	LOCKADD  // mem64[base+disp] atomically += src
	LOCKSUB  // atomically -=; sets ZF from result
	LOCKAND  // atomically &=
	LOCKOR   // atomically |=
	LOCKXOR  // atomically ^=
	LOCKXADD // old <- mem; mem += src; src(reg) <- old (exchange-add)
	LOCKINC  // mem64 atomically ++; sets ZF from result
	LOCKDEC  // mem64 atomically --; sets ZF from result
	XCHG     // atomically swap src(reg) and mem64[base+disp]
	CMPXCHG  // if rax==mem {mem<-src; ZF=1} else {rax<-mem; ZF=0}, atomic
	MFENCE   // full memory fence

	// Thread-local storage.
	TLSBASE // dst <- this thread's TLS base address

	// Packed SIMD (4x64-bit lanes; dst/src in the vector register file).
	VLOAD  // vdst <- mem256[base+disp]
	VSTORE // mem256[base+disp] <- vsrc
	VADD   // vdst += vsrc, lanewise
	VMUL   // vdst *= vsrc, lanewise
	VBCAST // vdst lanes <- src (GPR)
	VHADD  // dst (GPR) <- sum of vsrc lanes

	NumOps
)

var opNames = [...]string{
	BAD:   "bad",
	MOVRR: "mov", MOVRI: "mov", LEA: "lea", LEAIDX: "lea",
	LOAD8: "load8", LOAD32: "load32", LOAD64: "load64",
	STORE8: "store8", STORE32: "store32", STORE64: "store64",
	STOREI8: "storei8", STOREI32: "storei32", STOREI64: "storei64",
	LOADIDX8: "load8", LOADIDX32: "load32", LOADIDX64: "load64",
	STOREIDX8: "store8", STOREIDX32: "store32", STOREIDX64: "store64",
	ADDRR: "add", SUBRR: "sub", ANDRR: "and", ORRR: "or", XORRR: "xor",
	SHLRR: "shl", SHRRR: "shr", SARRR: "sar", IMULRR: "imul",
	DIVRR: "div", MODRR: "mod", CMPRR: "cmp", TESTRR: "test",
	ADDRI: "add", SUBRI: "sub", ANDRI: "and", ORRI: "or", XORRI: "xor",
	SHLRI: "shl", SHRRI: "shr", SARRI: "sar", IMULRI: "imul",
	CMPRI: "cmp", TESTRI: "test",
	NEG: "neg", NOT: "not", SETCC: "set",
	JMP: "jmp", JCC: "j", JMPR: "jmp", JMPM: "jmp",
	CALL: "call", CALLR: "call", RET: "ret",
	PUSH: "push", POP: "pop", CALLX: "callx", SYSCALL: "syscall",
	HLT: "hlt", NOP: "nop", UD2: "ud2",
	LOCKADD: "lock add", LOCKSUB: "lock sub", LOCKAND: "lock and",
	LOCKOR: "lock or", LOCKXOR: "lock xor", LOCKXADD: "lock xadd",
	LOCKINC: "lock inc", LOCKDEC: "lock dec",
	XCHG: "xchg", CMPXCHG: "lock cmpxchg", MFENCE: "mfence",
	TLSBASE: "tlsbase",
	VLOAD:   "vload", VSTORE: "vstore", VADD: "vadd", VMUL: "vmul",
	VBCAST: "vbcast", VHADD: "vhadd",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Layout describes how an opcode's operands are encoded after the opcode
// byte. Each opcode has exactly one layout.
type Layout uint8

const (
	LayoutNone   Layout = iota // no operands
	LayoutR                    // dst
	LayoutRR                   // dst, src
	LayoutRI                   // dst, imm32 (sign-extended into Imm)
	LayoutRI64                 // dst, imm64
	LayoutRCc                  // dst, cc (SETCC)
	LayoutMem                  // dst|src, base, disp32
	LayoutMemI                 // base, disp32, imm32
	LayoutMemIdx               // dst|src, base, idx, scale, disp32
	LayoutRel                  // disp32 (branch target, relative to end)
	LayoutCcRel                // cc, disp32
	LayoutJmpM                 // base, idx, disp32
	LayoutExt                  // ext (uint16 import index)
)

var opLayouts = [NumOps]Layout{
	BAD:   LayoutNone,
	MOVRR: LayoutRR, MOVRI: LayoutRI64, LEA: LayoutMem, LEAIDX: LayoutMemIdx,
	LOAD8: LayoutMem, LOAD32: LayoutMem, LOAD64: LayoutMem,
	STORE8: LayoutMem, STORE32: LayoutMem, STORE64: LayoutMem,
	STOREI8: LayoutMemI, STOREI32: LayoutMemI, STOREI64: LayoutMemI,
	LOADIDX8: LayoutMemIdx, LOADIDX32: LayoutMemIdx, LOADIDX64: LayoutMemIdx,
	STOREIDX8: LayoutMemIdx, STOREIDX32: LayoutMemIdx, STOREIDX64: LayoutMemIdx,
	ADDRR: LayoutRR, SUBRR: LayoutRR, ANDRR: LayoutRR, ORRR: LayoutRR,
	XORRR: LayoutRR, SHLRR: LayoutRR, SHRRR: LayoutRR, SARRR: LayoutRR,
	IMULRR: LayoutRR, DIVRR: LayoutRR, MODRR: LayoutRR,
	CMPRR: LayoutRR, TESTRR: LayoutRR,
	ADDRI: LayoutRI, SUBRI: LayoutRI, ANDRI: LayoutRI, ORRI: LayoutRI,
	XORRI: LayoutRI, SHLRI: LayoutRI, SHRRI: LayoutRI, SARRI: LayoutRI,
	IMULRI: LayoutRI, CMPRI: LayoutRI, TESTRI: LayoutRI,
	NEG: LayoutR, NOT: LayoutR, SETCC: LayoutRCc,
	JMP: LayoutRel, JCC: LayoutCcRel, JMPR: LayoutR, JMPM: LayoutJmpM,
	CALL: LayoutRel, CALLR: LayoutR, RET: LayoutNone,
	PUSH: LayoutR, POP: LayoutR, CALLX: LayoutExt, SYSCALL: LayoutNone,
	HLT: LayoutNone, NOP: LayoutNone, UD2: LayoutNone,
	LOCKADD: LayoutMem, LOCKSUB: LayoutMem, LOCKAND: LayoutMem,
	LOCKOR: LayoutMem, LOCKXOR: LayoutMem, LOCKXADD: LayoutMem,
	LOCKINC: LayoutMem, LOCKDEC: LayoutMem,
	XCHG: LayoutMem, CMPXCHG: LayoutMem, MFENCE: LayoutNone,
	TLSBASE: LayoutR,
	VLOAD:   LayoutMem, VSTORE: LayoutMem, VADD: LayoutRR, VMUL: LayoutRR,
	VBCAST: LayoutRR, VHADD: LayoutRR,
}

// LayoutOf returns the operand layout of op.
func LayoutOf(op Op) Layout {
	if op < NumOps {
		return opLayouts[op]
	}
	return LayoutNone
}

var layoutSizes = [...]int{
	LayoutNone:   0,
	LayoutR:      1,
	LayoutRR:     2,
	LayoutRI:     1 + 4,
	LayoutRI64:   1 + 8,
	LayoutRCc:    2,
	LayoutMem:    2 + 4,
	LayoutMemI:   1 + 4 + 4,
	LayoutMemIdx: 3 + 1 + 4,
	LayoutRel:    4,
	LayoutCcRel:  1 + 4,
	LayoutJmpM:   2 + 4,
	LayoutExt:    2,
}

// Inst is a decoded MX64 instruction. Fields that do not participate in the
// opcode's layout are zero.
type Inst struct {
	Op    Op
	Cc    Cond  // JCC, SETCC
	Dst   Reg   // destination (or the register operand of stores/atomics)
	Src   Reg   // source register
	Base  Reg   // memory base register
	Idx   Reg   // memory index register
	Scale uint8 // memory index scale (1, 2, 4, 8)
	Disp  int32 // memory displacement, or branch displacement
	Imm   int64 // immediate
	Ext   uint16
}

// EncodedLen returns the encoded byte length of an instruction with opcode op.
func EncodedLen(op Op) int {
	return 1 + layoutSizes[LayoutOf(op)]
}

// MaxEncodedLen is the byte length of the longest possible instruction
// encoding (opcode byte plus the largest operand layout, LayoutRI64).
// Package tests assert it matches the layout table.
const MaxEncodedLen = 1 + 1 + 8

// Len returns the encoded byte length of i.
func (i Inst) Len() int { return EncodedLen(i.Op) }

// Encode appends the encoding of i to buf and returns the extended slice.
func (i Inst) Encode(buf []byte) []byte {
	buf = append(buf, byte(i.Op))
	switch LayoutOf(i.Op) {
	case LayoutNone:
	case LayoutR:
		buf = append(buf, byte(i.Dst))
	case LayoutRR:
		buf = append(buf, byte(i.Dst), byte(i.Src))
	case LayoutRI:
		buf = append(buf, byte(i.Dst))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(i.Imm)))
	case LayoutRI64:
		buf = append(buf, byte(i.Dst))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(i.Imm))
	case LayoutRCc:
		buf = append(buf, byte(i.Dst), byte(i.Cc))
	case LayoutMem:
		buf = append(buf, byte(i.Dst), byte(i.Base))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(i.Disp))
	case LayoutMemI:
		buf = append(buf, byte(i.Base))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(i.Disp))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(i.Imm)))
	case LayoutMemIdx:
		buf = append(buf, byte(i.Dst), byte(i.Base), byte(i.Idx), i.Scale)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(i.Disp))
	case LayoutRel:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(i.Disp))
	case LayoutCcRel:
		buf = append(buf, byte(i.Cc))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(i.Disp))
	case LayoutJmpM:
		buf = append(buf, byte(i.Base), byte(i.Idx))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(i.Disp))
	case LayoutExt:
		buf = binary.LittleEndian.AppendUint16(buf, i.Ext)
	}
	return buf
}

// Decode decodes one instruction from the start of code. It returns the
// instruction and its encoded length. An empty or invalid prefix yields a
// BAD instruction with length 1 (or 0 if code is empty); callers treat BAD
// as an illegal-instruction fault.
func Decode(code []byte) (Inst, int) {
	if len(code) == 0 {
		return Inst{Op: BAD}, 0
	}
	op := Op(code[0])
	if op == BAD || op >= NumOps {
		return Inst{Op: BAD}, 1
	}
	n := EncodedLen(op)
	if len(code) < n {
		return Inst{Op: BAD}, 1
	}
	i := Inst{Op: op}
	b := code[1:]
	switch LayoutOf(op) {
	case LayoutR:
		i.Dst = Reg(b[0])
	case LayoutRR:
		i.Dst, i.Src = Reg(b[0]), Reg(b[1])
	case LayoutRI:
		i.Dst = Reg(b[0])
		i.Imm = int64(int32(binary.LittleEndian.Uint32(b[1:])))
	case LayoutRI64:
		i.Dst = Reg(b[0])
		i.Imm = int64(binary.LittleEndian.Uint64(b[1:]))
	case LayoutRCc:
		i.Dst, i.Cc = Reg(b[0]), Cond(b[1])
	case LayoutMem:
		i.Dst, i.Base = Reg(b[0]), Reg(b[1])
		i.Disp = int32(binary.LittleEndian.Uint32(b[2:]))
	case LayoutMemI:
		i.Base = Reg(b[0])
		i.Disp = int32(binary.LittleEndian.Uint32(b[1:]))
		i.Imm = int64(int32(binary.LittleEndian.Uint32(b[5:])))
	case LayoutMemIdx:
		i.Dst, i.Base, i.Idx, i.Scale = Reg(b[0]), Reg(b[1]), Reg(b[2]), b[3]
		i.Disp = int32(binary.LittleEndian.Uint32(b[4:]))
	case LayoutRel:
		i.Disp = int32(binary.LittleEndian.Uint32(b[0:]))
	case LayoutCcRel:
		i.Cc = Cond(b[0])
		i.Disp = int32(binary.LittleEndian.Uint32(b[1:]))
	case LayoutJmpM:
		i.Base, i.Idx = Reg(b[0]), Reg(b[1])
		i.Disp = int32(binary.LittleEndian.Uint32(b[2:]))
	case LayoutExt:
		i.Ext = binary.LittleEndian.Uint16(b)
	}
	if !i.valid() {
		return Inst{Op: BAD}, 1
	}
	return i, n
}

// DecodePage decodes one instruction at every byte offset of page, the unit
// of the interpreter's predecoded instruction cache. tail holds up to
// MaxEncodedLen-1 bytes that follow page in the address space, so an
// instruction whose opcode byte sits near the end of page decodes with its
// full operand bytes; pass an empty tail when nothing follows (the page ends
// at a section boundary), in which case a truncated final instruction decodes
// as BAD, exactly as Decode on the truncated slice would.
//
// The returned slices are indexed by offset into page: insts[i] and lens[i]
// are Decode's results for the instruction whose opcode byte is page[i].
func DecodePage(page, tail []byte) ([]Inst, []uint8) {
	code := make([]byte, 0, len(page)+len(tail))
	code = append(code, page...)
	code = append(code, tail...)
	insts := make([]Inst, len(page))
	lens := make([]uint8, len(page))
	for i := range page {
		inst, n := Decode(code[i:])
		insts[i] = inst
		lens[i] = uint8(n)
	}
	return insts, lens
}

// valid reports whether the decoded operand fields are in range, so that
// random bytes usually decode to BAD rather than to nonsense operands.
func (i Inst) valid() bool {
	vecRR := i.Op == VADD || i.Op == VMUL
	vecMem := i.Op == VLOAD || i.Op == VSTORE
	checkGPR := func(r Reg) bool { return r < NumRegs }
	checkV := func(r Reg) bool { return r < NumVRegs }
	switch LayoutOf(i.Op) {
	case LayoutR:
		return checkGPR(i.Dst)
	case LayoutRR:
		switch {
		case vecRR:
			return checkV(i.Dst) && checkV(i.Src)
		case i.Op == VBCAST:
			return checkV(i.Dst) && checkGPR(i.Src)
		case i.Op == VHADD:
			return checkGPR(i.Dst) && checkV(i.Src)
		default:
			return checkGPR(i.Dst) && checkGPR(i.Src)
		}
	case LayoutRI, LayoutRI64:
		return checkGPR(i.Dst)
	case LayoutRCc:
		return checkGPR(i.Dst) && i.Cc < NumConds
	case LayoutMem:
		if vecMem {
			return checkV(i.Dst) && checkGPR(i.Base)
		}
		return checkGPR(i.Dst) && checkGPR(i.Base)
	case LayoutMemI:
		return checkGPR(i.Base)
	case LayoutMemIdx:
		okScale := i.Scale == 1 || i.Scale == 2 || i.Scale == 4 || i.Scale == 8
		return checkGPR(i.Dst) && checkGPR(i.Base) && checkGPR(i.Idx) && okScale
	case LayoutCcRel:
		return i.Cc < NumConds
	case LayoutJmpM:
		return checkGPR(i.Base) && checkGPR(i.Idx)
	}
	return true
}

// IsTerminator reports whether i ends a basic block.
func (i Inst) IsTerminator() bool {
	switch i.Op {
	case JMP, JCC, JMPR, JMPM, RET, HLT, UD2, SYSCALL:
		return true
	}
	return false
}

// IsCall reports whether i is any flavour of call.
func (i Inst) IsCall() bool {
	return i.Op == CALL || i.Op == CALLR || i.Op == CALLX
}

// IsIndirect reports whether i transfers control to a target not encoded in
// the instruction itself.
func (i Inst) IsIndirect() bool {
	return i.Op == JMPR || i.Op == JMPM || i.Op == CALLR
}

// IsAtomic reports whether i is a lock-prefixed (hardware atomic) operation.
func (i Inst) IsAtomic() bool {
	switch i.Op {
	case LOCKADD, LOCKSUB, LOCKAND, LOCKOR, LOCKXOR, LOCKXADD,
		LOCKINC, LOCKDEC, XCHG, CMPXCHG:
		return true
	}
	return false
}

// vregName names vector registers for the printer.
func vregName(r Reg) string { return fmt.Sprintf("v%d", uint8(r)) }

// String renders i in a compact at&t-free syntax, e.g.
// "load64 rax, [rbp-8]" or "lock cmpxchg [rsi+0], rcx".
func (i Inst) String() string {
	mem := func() string {
		if i.Disp == 0 {
			return fmt.Sprintf("[%s]", i.Base)
		}
		return fmt.Sprintf("[%s%+d]", i.Base, i.Disp)
	}
	memIdx := func() string {
		return fmt.Sprintf("[%s+%s*%d%+d]", i.Base, i.Idx, i.Scale, i.Disp)
	}
	switch i.Op {
	case MOVRR, ADDRR, SUBRR, ANDRR, ORRR, XORRR, SHLRR, SHRRR, SARRR,
		IMULRR, DIVRR, MODRR, CMPRR, TESTRR:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Dst, i.Src)
	case MOVRI, ADDRI, SUBRI, ANDRI, ORRI, XORRI, SHLRI, SHRRI, SARRI,
		IMULRI, CMPRI, TESTRI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Dst, i.Imm)
	case LEA:
		return fmt.Sprintf("lea %s, %s", i.Dst, mem())
	case LEAIDX:
		return fmt.Sprintf("lea %s, %s", i.Dst, memIdx())
	case LOAD8, LOAD32, LOAD64:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Dst, mem())
	case STORE8, STORE32, STORE64:
		return fmt.Sprintf("%s %s, %s", i.Op, mem(), i.Dst)
	case STOREI8, STOREI32, STOREI64:
		return fmt.Sprintf("%s %s, %d", i.Op, mem(), i.Imm)
	case LOADIDX8, LOADIDX32, LOADIDX64:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Dst, memIdx())
	case STOREIDX8, STOREIDX32, STOREIDX64:
		return fmt.Sprintf("%s %s, %s", i.Op, memIdx(), i.Dst)
	case NEG, NOT, PUSH, POP, JMPR, CALLR, TLSBASE:
		return fmt.Sprintf("%s %s", i.Op, i.Dst)
	case SETCC:
		return fmt.Sprintf("set%s %s", i.Cc, i.Dst)
	case JMP, CALL:
		return fmt.Sprintf("%s %+d", i.Op, i.Disp)
	case JCC:
		return fmt.Sprintf("j%s %+d", i.Cc, i.Disp)
	case JMPM:
		return fmt.Sprintf("jmp %s", memIdx0(i))
	case CALLX:
		return fmt.Sprintf("callx #%d", i.Ext)
	case LOCKADD, LOCKSUB, LOCKAND, LOCKOR, LOCKXOR, LOCKXADD, XCHG, CMPXCHG:
		return fmt.Sprintf("%s %s, %s", i.Op, mem(), i.Dst)
	case LOCKINC, LOCKDEC:
		return fmt.Sprintf("%s %s", i.Op, mem())
	case VLOAD:
		return fmt.Sprintf("vload %s, %s", vregName(i.Dst), mem())
	case VSTORE:
		return fmt.Sprintf("vstore %s, %s", mem(), vregName(i.Dst))
	case VADD, VMUL:
		return fmt.Sprintf("%s %s, %s", i.Op, vregName(i.Dst), vregName(i.Src))
	case VBCAST:
		return fmt.Sprintf("vbcast %s, %s", vregName(i.Dst), i.Src)
	case VHADD:
		return fmt.Sprintf("vhadd %s, %s", i.Dst, vregName(i.Src))
	default:
		return i.Op.String()
	}
}

func memIdx0(i Inst) string {
	return fmt.Sprintf("[%s+%s*8%+d]", i.Base, i.Idx, i.Disp)
}
