package core

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/cfg"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/lifter"
	"repro/internal/store"
)

// Per-function artifacts: the content-addressed function cache behind
// incremental recompilation, backed by the project's tiered artifact store.
// An entry holds one function's fully lifted-and-optimized body in its
// serialized form (ir.EncodeFunc — cross-references by name, the store's
// persistent version of the old detached-stub clones), keyed by a
// fingerprint of everything the body depends on: the function's machine-code
// bytes, its per-function CFG shape (block extents, terminators, target
// sets, fallthroughs), whether each outgoing target resolves to a known
// function entry, and the lifter/optimizer options in effect. A recompile
// after an additive discovery therefore re-lifts and re-optimizes only the
// functions whose fingerprint changed — integrating a new indirect target
// perturbs exactly the owning function's target set — and replays every
// other body by decoding it into the fresh module skeleton.
//
// Invalidation is implicit: a changed function hashes to a new key, so its
// stale entry simply stops being referenced. The memory tier's generational
// pruning (store.Memory) evicts entries that went unused for a full
// recompile generation, bounding it to roughly one body per live function;
// a disk tier keeps everything and serves across processes.

// replayFunc decodes the stored body for key into the skeleton function for
// entry, resolving name references against lf's module. It reports the
// body's lift-time site count, the tier that served it, and whether the
// replay succeeded; any decode failure (corrupt payload, renamed or dropped
// symbol in the fresh module) is a miss and leaves the skeleton function
// empty for a fresh lift.
func (p *Project) replayFunc(key store.Key, lf *lifter.Lifted, entry uint64) (int, string, bool) {
	data, tier, ok := p.storeGet(nsFunc, key)
	if !ok || len(data) < 8 {
		return 0, "", false
	}
	sites := int(binary.LittleEndian.Uint64(data))
	dst := lf.FuncByAddr[entry]
	if err := ir.DecodeFuncInto(dst, data[8:], lf.Mod.Global, lf.Mod.Func); err != nil {
		return 0, "", false
	}
	return sites, tier, true
}

// putFunc stores f's optimized body under key (write-through to every
// tier). sites is the body's lift-time site count, needed by FinalizeSites
// on replay. Encode failures just skip the entry — the pipeline keeps the
// freshly built body either way.
func (p *Project) putFunc(key store.Key, f *ir.Func, sites int) {
	enc, err := ir.EncodeFunc(f)
	if err != nil {
		return
	}
	env := make([]byte, 8, 8+len(enc))
	binary.LittleEndian.PutUint64(env, uint64(sites))
	p.storePut(nsFunc, key, append(env, enc...))
}

// cacheKeyOpts packs every pipeline option that changes what a lifted and
// optimized body looks like. Worker count is deliberately absent: output is
// independent of -jpipe by the determinism contract (DESIGN.md §3).
type cacheKeyOpts struct {
	insertFences bool
	naiveAtomics bool
	optimize     bool
	verifyIR     bool
	removeFences bool
	// target is the lowering target's stable ID (mx.Target.ID). Bodies are
	// lifted IR and thus target-independent today, but the key is
	// deliberately conservative: a shared store must never serve an
	// artifact produced under one target configuration to another.
	target byte
}

func (k cacheKeyOpts) bits() byte {
	var b byte
	if k.insertFences {
		b |= 1
	}
	if k.naiveAtomics {
		b |= 2
	}
	if k.optimize {
		b |= 4
	}
	if k.verifyIR {
		b |= 8
	}
	if k.removeFences {
		b |= 16
	}
	return b
}

// fingerprintFunc computes the content-addressed cache key for cf.
//
// Everything the lifter reads when translating cf is folded in: the raw
// machine bytes of every block (hence any byte-level patch re-lifts), the
// block list itself (addresses, sizes, terminator kinds, fallthroughs,
// import indexes), the indirect/direct target sets in their dispatch order,
// and — because translating a transfer depends on whether its target is a
// known function entry (call vs. control-flow-miss) — one resolution bit per
// target against isFunc, the current set of function entries. Per-function
// CFG membership (which blocks belong to cf, used for intra-function
// dispatch) is covered by hashing cf.Blocks in order.
//
// A store key additionally folds in the whole-image fingerprint (funcKey,
// stages.go): bodies read image data these per-block bytes don't cover.
func fingerprintFunc(img *image.Image, g *cfg.Graph, cf *cfg.Func, isFunc map[uint64]bool, opts cacheKeyOpts) [32]byte {
	h := sha256.New()
	var w [8]byte
	u64 := func(x uint64) {
		binary.LittleEndian.PutUint64(w[:], x)
		h.Write(w[:])
	}
	h.Write([]byte{opts.bits(), opts.target})
	u64(cf.Entry)
	u64(uint64(len(cf.Blocks)))
	for _, ba := range cf.Blocks {
		b := g.Blocks[ba]
		if b == nil {
			u64(ba)
			u64(^uint64(0))
			continue
		}
		u64(b.Addr)
		u64(b.Size)
		h.Write([]byte(b.Term))
		u64(b.Fall)
		u64(uint64(b.Ext))
		if sec := img.FindSection(b.Addr); sec != nil && sec.Data != nil {
			off := b.Addr - sec.Addr
			if end := off + b.Size; end <= uint64(len(sec.Data)) {
				h.Write(sec.Data[off:end])
			}
		}
		u64(uint64(len(b.Targets)))
		for _, t := range b.Targets {
			u64(t)
			if isFunc[t] {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		}
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}
