package core

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/cfg"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/lifter"
)

// funcCache is the content-addressed function cache behind incremental
// recompilation. An entry holds one function's fully lifted-and-optimized
// body, keyed by a fingerprint of everything that body depends on: the
// function's machine-code bytes, its per-function CFG shape (block extents,
// terminators, target sets, fallthroughs), whether each outgoing target
// resolves to a known function entry, and the lifter/optimizer options in
// effect. A recompile after an additive discovery therefore re-lifts and
// re-optimizes only the functions whose fingerprint changed — integrating a
// new indirect target perturbs exactly the owning function's target set —
// and replays every other body from cache by cloning it into the fresh
// module skeleton.
//
// Invalidation is implicit: a changed function hashes to a new key, so its
// stale entry simply stops being referenced. endGen prunes entries that went
// unused for a full generation, bounding the cache to roughly one body per
// live function.
//
// Cached bodies are detached clones referencing name-only stub globals and
// functions, so an entry retains no previous module (modules are consumed by
// lowering's phi destruction and must not leak through cache references).
type funcCache struct {
	mu      sync.Mutex
	entries map[[32]byte]*cacheEntry
	// stub objects stand in for cross-references inside detached bodies;
	// replay resolves them by name against the destination module.
	stubGlobals map[string]*ir.Global
	stubFuncs   map[string]*ir.Func
	gen         int
}

type cacheEntry struct {
	fn      *ir.Func // detached optimized body
	sites   int      // lift-time site count (pre-optimization), for FinalizeSites
	lastGen int
}

func newFuncCache() *funcCache {
	return &funcCache{
		entries:     map[[32]byte]*cacheEntry{},
		stubGlobals: map[string]*ir.Global{},
		stubFuncs:   map[string]*ir.Func{},
	}
}

// beginGen opens a recompile generation; entries replayed or stored during
// it are marked live.
func (c *funcCache) beginGen() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
}

// endGen evicts every entry that was neither replayed nor stored in the
// generation that just completed (its function changed shape or vanished).
func (c *funcCache) endGen() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.lastGen < c.gen {
			delete(c.entries, k)
		}
	}
}

// len reports the number of live entries (tests, diagnostics).
func (c *funcCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// put stores f (an optimized body still wired into its module) under key as
// a detached clone. sites is the lift-time site count of the body.
func (c *funcCache) put(key [32]byte, f *ir.Func, sites int) {
	det := &ir.Func{Name: f.Name}
	c.mu.Lock()
	defer c.mu.Unlock()
	ir.CloneFuncInto(det, f, c.stubGlobal, c.stubFunc)
	c.entries[key] = &cacheEntry{fn: det, sites: sites, lastGen: c.gen}
}

// replay clones the cached body for key into the skeleton function for
// entry, resolving stub references against lf's module. It reports the
// body's lift-time site count and whether the cache had the key.
func (c *funcCache) replay(key [32]byte, lf *lifter.Lifted, entry uint64) (int, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		e.lastGen = c.gen
	}
	c.mu.Unlock()
	if !ok {
		return 0, false
	}
	dst := lf.FuncByAddr[entry]
	ir.CloneFuncInto(dst, e.fn,
		func(g *ir.Global) *ir.Global { return lf.Mod.Global(g.Name) },
		func(f *ir.Func) *ir.Func { return lf.Mod.Func(f.Name) })
	return e.sites, true
}

func (c *funcCache) stubGlobal(g *ir.Global) *ir.Global {
	s, ok := c.stubGlobals[g.Name]
	if !ok {
		s = &ir.Global{Name: g.Name}
		c.stubGlobals[g.Name] = s
	}
	return s
}

func (c *funcCache) stubFunc(f *ir.Func) *ir.Func {
	s, ok := c.stubFuncs[f.Name]
	if !ok {
		s = &ir.Func{Name: f.Name}
		c.stubFuncs[f.Name] = s
	}
	return s
}

// cacheKeyOpts packs every pipeline option that changes what a lifted and
// optimized body looks like. Worker count is deliberately absent: output is
// independent of -jpipe by the determinism contract (DESIGN.md §3).
type cacheKeyOpts struct {
	insertFences bool
	naiveAtomics bool
	optimize     bool
	verifyIR     bool
	removeFences bool
}

func (k cacheKeyOpts) bits() byte {
	var b byte
	if k.insertFences {
		b |= 1
	}
	if k.naiveAtomics {
		b |= 2
	}
	if k.optimize {
		b |= 4
	}
	if k.verifyIR {
		b |= 8
	}
	if k.removeFences {
		b |= 16
	}
	return b
}

// fingerprintFunc computes the content-addressed cache key for cf.
//
// Everything the lifter reads when translating cf is folded in: the raw
// machine bytes of every block (hence any byte-level patch re-lifts), the
// block list itself (addresses, sizes, terminator kinds, fallthroughs,
// import indexes), the indirect/direct target sets in their dispatch order,
// and — because translating a transfer depends on whether its target is a
// known function entry (call vs. control-flow-miss) — one resolution bit per
// target against isFunc, the current set of function entries. Per-function
// CFG membership (which blocks belong to cf, used for intra-function
// dispatch) is covered by hashing cf.Blocks in order.
func fingerprintFunc(img *image.Image, g *cfg.Graph, cf *cfg.Func, isFunc map[uint64]bool, opts cacheKeyOpts) [32]byte {
	h := sha256.New()
	var w [8]byte
	u64 := func(x uint64) {
		binary.LittleEndian.PutUint64(w[:], x)
		h.Write(w[:])
	}
	h.Write([]byte{opts.bits()})
	u64(cf.Entry)
	u64(uint64(len(cf.Blocks)))
	for _, ba := range cf.Blocks {
		b := g.Blocks[ba]
		if b == nil {
			u64(ba)
			u64(^uint64(0))
			continue
		}
		u64(b.Addr)
		u64(b.Size)
		h.Write([]byte(b.Term))
		u64(b.Fall)
		u64(uint64(b.Ext))
		if sec := img.FindSection(b.Addr); sec != nil && sec.Data != nil {
			off := b.Addr - sec.Addr
			if end := off + b.Size; end <= uint64(len(sec.Data)) {
				h.Write(sec.Data[off:end])
			}
		}
		u64(uint64(len(b.Targets)))
		for _, t := range b.Targets {
			u64(t)
			if isFunc[t] {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		}
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}
