package core_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/mx"
	"repro/internal/vm"
)

// TestJumpTableDispatchEndToEnd pushes an assembled jump-table binary (the
// JMPM form static disassemblers resolve heuristically) through the full
// pipeline: the table targets must lift into switch cases and the recompiled
// dispatch must execute correctly for every selector.
func TestJumpTableDispatchEndToEnd(t *testing.T) {
	b := asm.NewBuilder("jt")
	b.RodataLabel("table")
	for _, c := range []string{"case0", "case1", "case2", "case3"} {
		b.RodataAddr(c)
	}
	b.Entry("main")
	b.Label("main")
	// Selector arrives via input_byte; accumulate dispatch results.
	b.MovRI(mx.R12, 0) // accumulator
	b.Label("loop")
	b.CallExt("input_byte")
	b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.RAX, Imm: -1})
	b.Jcc(mx.CondE, "done")
	b.I(mx.Inst{Op: mx.SUBRI, Dst: mx.RAX, Imm: '0'})
	b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.RAX, Imm: 3})
	b.Jcc(mx.CondA, "loop")
	b.MovSym(mx.RBX, "table")
	b.MovRR(mx.RDI, mx.RAX)
	b.I(mx.Inst{Op: mx.JMPM, Base: mx.RBX, Idx: mx.RDI})
	b.Label("case0")
	b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 1})
	b.Jmp("loop")
	b.Label("case1")
	b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 10})
	b.Jmp("loop")
	b.Label("case2")
	b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 100})
	b.Jmp("loop")
	b.Label("case3")
	b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 1000})
	b.Jmp("loop")
	b.Label("done")
	b.MovRR(mx.RDI, mx.R12)
	b.CallExt("exit")
	img, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	p, err := core.NewProject(img, options())
	if err != nil {
		t.Fatal(err)
	}
	// Static-only recompilation: the jump-table heuristic must have
	// resolved all four targets, so no tracing and no misses are needed.
	rec, err := p.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	in := core.Input{Data: []byte("01231032"), Seed: 2}
	want := runImg(t, img, in)
	got := runImg(t, rec, in)
	if want.ExitCode != 2222 || got.ExitCode != 2222 {
		t.Fatalf("dispatch results: original %d, recompiled %d, want 2222",
			want.ExitCode, got.ExitCode)
	}
}

// TestOverlappingInstructionsAdditive reproduces the paper's hand-written
// overlapping-code case (§3.1): a jump lands in the middle of an encoded
// instruction, so the overlapping byte stream decodes to a second,
// legitimate instruction sequence that static recursive descent attributes
// incorrectly. Additive lifting recovers the alternate decoding at run time.
func TestOverlappingInstructionsAdditive(t *testing.T) {
	b := asm.NewBuilder("ovl")
	b.Entry("main")
	b.Label("main")
	// A MOVRI whose 8-byte immediate encodes a valid instruction sequence:
	// jumping into the immediate executes that hidden sequence.
	// hidden: MOVRI rdi, 42 is 10 bytes - too long; use ADDRI rdi, 41
	// (6 bytes) padded with NOPs inside an 8-byte immediate.
	hidden := mx.Inst{Op: mx.ADDRI, Dst: mx.RDI, Imm: 41}.Encode(nil)
	hidden = append(hidden, mx.Inst{Op: mx.NOP}.Encode(nil)...)
	hidden = append(hidden, mx.Inst{Op: mx.NOP}.Encode(nil)...)
	if len(hidden) != 8 {
		t.Fatalf("hidden sequence must fill the immediate: %d bytes", len(hidden))
	}
	var imm int64
	for i := 7; i >= 0; i-- {
		imm = imm<<8 | int64(hidden[i])
	}
	b.MovRI(mx.RDI, 1) // rdi = 1
	// Load the overlap target (the address of the immediate field) and
	// jump into it through a register: invisible to static descent.
	b.MovSym(mx.RBX, "carrier")
	b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RBX, Imm: 2}) // skip opcode+reg bytes
	b.I(mx.Inst{Op: mx.JMPR, Dst: mx.RBX})
	b.Label("carrier")
	b.I(mx.Inst{Op: mx.MOVRI, Dst: mx.RAX, Imm: imm}) // immediate hides code
	// The hidden sequence falls through to here with rdi = 1 + 41.
	b.CallExt("exit")
	img, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Original executes the overlapping path.
	m, err := vm.New(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	orig := m.Run(1_000_000)
	if orig.Fault != nil || orig.ExitCode != 42 {
		t.Fatalf("original overlap run: %+v", orig)
	}

	// Additive recompilation discovers the mid-instruction target at run
	// time and integrates the alternate decoding.
	p, err := core.NewProject(img, options())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunAdditive(core.Input{Seed: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.ExitCode != 42 {
		t.Fatalf("recompiled overlap exit %d, want 42", res.Result.ExitCode)
	}
	if res.Recompiles == 0 {
		t.Fatal("the overlapping target should have required additive recovery")
	}
	_ = image.TextBase
}
