package core_test

// Cancellation tests for Options.Ctx: a done context must stop guest runs
// within a bounded number of instructions and stop the pipeline from
// starting, surfacing an error that wraps the context's error — the
// contract internal/serve relies on to free a disconnected client's
// workers.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// longLoopSrc runs far past any reasonable test duration without
// cancellation (the full loop is ~10^10 instructions against default fuel).
const longLoopSrc = `
func main() {
	var i;
	for (i = 0; i < 2000000000; i = i + 1) { }
	return 0;
}`

// TestRunAdditiveCancelled: cancelling mid guest run stops the additive
// session promptly with an error wrapping context.Canceled.
func TestRunAdditiveCancelled(t *testing.T) {
	img := compile(t, longLoopSrc, 2)
	ctx, cancel := context.WithCancel(context.Background())
	o := core.DefaultOptions()
	o.Ctx = ctx
	p, err := core.NewProject(img, o)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err = p.RunAdditive(core.Input{Seed: 1}, 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want an error wrapping context.Canceled", err)
	}
	// Bounded stop: the cancel poll fires within a few thousand
	// instructions, not at fuel exhaustion (which takes tens of seconds).
	if d := time.Since(t0); d > 30*time.Second {
		t.Fatalf("cancelled run took %v to stop", d)
	}
}

// TestRecompileCancelledUpFront: a context that is already done stops
// Recompile before any work.
func TestRecompileCancelledUpFront(t *testing.T) {
	img := compile(t, threadedSrc, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := core.DefaultOptions()
	o.Ctx = ctx
	p, err := core.NewProject(img, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Recompile(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Recompile err = %v, want context.Canceled", err)
	}
}

// TestCancelledRunDoesNotAffectUncancelled: the same project options with a
// never-cancelled context produce exactly the bytes of a no-context run —
// the cancel seam costs nothing and changes nothing (determinism contract).
func TestCancelledRunDoesNotAffectUncancelled(t *testing.T) {
	img := compile(t, threadedSrc, 2)
	plain, err := core.NewProject(img, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	o := core.DefaultOptions()
	o.Ctx = context.Background()
	withCtx, err := core.NewProject(img, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := withCtx.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(wantBytes) {
		t.Fatal("a live context changed the recompiled bytes")
	}
}
