package core_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/vm"
)

func compile(t *testing.T, src string, opt int) *image.Image {
	t.Helper()
	img, _, err := cc.Compile(src, cc.Config{Name: "t", Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func options() core.Options {
	o := core.DefaultOptions()
	o.VerifyIR = true
	return o
}

func runImg(t *testing.T, img *image.Image, in core.Input) vm.Result {
	t.Helper()
	m, err := vm.NewWithExts(img, in.Seed, in.Exts)
	if err != nil {
		t.Fatal(err)
	}
	if in.Data != nil {
		m.SetInput(in.Data)
	}
	res := m.Run(2_000_000_000)
	if res.Fault != nil {
		t.Fatalf("fault: %v (out %q)", res.Fault, res.Output)
	}
	return res
}

const threadedSrc = `
extern thread_create;
extern thread_join;
extern print_i64;
var total = 0;
func worker(arg) {
	var i;
	for (i = 0; i < 200; i = i + 1) { atomic_add(&total, arg); }
	return 0;
}
func main() {
	var t1 = thread_create(worker, 1);
	var t2 = thread_create(worker, 3);
	thread_join(t1);
	thread_join(t2);
	print_i64(total);
	return total / 100;
}`

func TestProjectRecompileThreaded(t *testing.T) {
	for _, ccOpt := range []int{0, 2} {
		img := compile(t, threadedSrc, ccOpt)
		p, err := core.NewProject(img, options())
		if err != nil {
			t.Fatal(err)
		}
		rec, err := p.Recompile()
		if err != nil {
			t.Fatal(err)
		}
		want := runImg(t, img, core.Input{Seed: 5})
		got := runImg(t, rec, core.Input{Seed: 5})
		if want.ExitCode != got.ExitCode || want.Output != got.Output {
			t.Fatalf("O%d divergence: %d/%q vs %d/%q", ccOpt,
				want.ExitCode, want.Output, got.ExitCode, got.Output)
		}
		if p.Stats.Funcs == 0 || p.Stats.CodeSize == 0 {
			t.Fatalf("stats not recorded: %+v", &p.Stats)
		}
	}
}

const fptrSrc = `
extern input_byte;
func h_add(x) { return x + 10; }
func h_mul(x) { return x * 10; }
func h_neg(x) { return -x; }
var table[3];
func main() {
	store64(table, h_add);
	store64(table + 8, h_mul);
	store64(table + 16, h_neg);
	var sum = 0;
	var c = input_byte();
	while (c != -1) {
		var f = load64(table + (c - '0') * 8);
		sum = sum + f(7);
		c = input_byte();
	}
	return sum;
}`

func TestAdditiveLiftingConverges(t *testing.T) {
	img := compile(t, fptrSrc, 2)
	p, err := core.NewProject(img, options())
	if err != nil {
		t.Fatal(err)
	}
	in := core.Input{Data: []byte("012"), Seed: 3}
	want := runImg(t, img, in)

	res, err := p.RunAdditive(in, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.ExitCode != want.ExitCode {
		t.Fatalf("exit %d, want %d", res.Result.ExitCode, want.ExitCode)
	}
	// Three distinct indirect targets were unknown statically: the loop
	// must have gone through at least one recompile (likely three).
	if res.Recompiles == 0 {
		t.Fatal("no recompilation loops despite unknown indirect targets")
	}
	if len(res.Misses) != res.Recompiles {
		t.Fatalf("misses %d != recompiles %d", len(res.Misses), res.Recompiles)
	}

	// A second additive run with different input exercising a previously
	// seen path must need no further recompiles.
	res2, err := p.RunAdditive(core.Input{Data: []byte("0"), Seed: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Recompiles != 0 {
		t.Fatalf("unexpected recompiles on known path: %d", res2.Recompiles)
	}
	if res2.Result.ExitCode != 17 {
		t.Fatalf("exit %d, want 17", res2.Result.ExitCode)
	}
}

func TestTracerAvoidsAdditiveLoops(t *testing.T) {
	img := compile(t, fptrSrc, 2)
	p, err := core.NewProject(img, options())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Trace([]core.Input{{Data: []byte("012"), Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.ICFTs < 3 {
		t.Fatalf("ICFTs = %d, want >= 3", tr.ICFTs)
	}
	res, err := p.RunAdditive(core.Input{Data: []byte("210"), Seed: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recompiles != 0 {
		t.Fatalf("tracing should have resolved all targets; %d recompiles", res.Recompiles)
	}
}

func TestPruneCallbacks(t *testing.T) {
	// h_unused is address-taken (conservatively external) but never called.
	src := `
extern thread_create;
extern thread_join;
var fp = 0;
func h_unused(x) { return x; }
func worker(a) { return a * 2; }
func main() {
	store64(&fp, h_unused);
	var t1 = thread_create(worker, 21);
	return thread_join(t1);
}`
	img := compile(t, src, 2)

	p1, err := core.NewProject(img, options())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Recompile(); err != nil {
		t.Fatal(err)
	}
	conservative := p1.Stats.NumExternal
	sizeBefore := p1.Stats.CodeSize

	p2, err := core.NewProject(img, options())
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.PruneCallbacks([]core.Input{{Seed: 2}}); err != nil {
		t.Fatal(err)
	}
	rec, err := p2.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Stats.NumExternal >= conservative {
		t.Fatalf("pruning did not reduce external functions: %d -> %d",
			conservative, p2.Stats.NumExternal)
	}
	if p2.Stats.CodeSize >= sizeBefore {
		t.Fatalf("pruning did not reduce code size: %d -> %d", sizeBefore, p2.Stats.CodeSize)
	}
	// The pruned binary still runs correctly (worker is still a callback).
	got := runImg(t, rec, core.Input{Seed: 2})
	if got.ExitCode != 42 {
		t.Fatalf("exit %d, want 42", got.ExitCode)
	}
}

func TestFenceOptimizeOnSyncFreeProgram(t *testing.T) {
	// Pure data-parallel program synchronized only through thread_join:
	// every loop is non-spinning; fences must be removable.
	src := `
extern thread_create;
extern thread_join;
var out[2];
func worker(arg) {
	var s = 0;
	var i;
	for (i = 0; i < 50; i = i + 1) { s = s + i * arg; }
	store64(out + arg * 8, s);
	return 0;
}
func main() {
	var t1 = thread_create(worker, 0);
	var t2 = thread_create(worker, 1);
	thread_join(t1);
	thread_join(t2);
	return (load64(out) + load64(out + 8)) % 256;
}`
	img := compile(t, src, 2)
	p, err := core.NewProject(img, options())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.FenceOptimize([]core.Input{{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FencesRemovable {
		for _, l := range rep.Loops {
			t.Logf("loop %s@%#x spin=%v covered=%v: %s", l.Func, l.Header, l.Spinning, l.Covered, l.Reason)
		}
		t.Fatal("sync-free program not proven fence-removable")
	}
	rec, err := p.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stats.FencesGone {
		t.Fatal("fences not removed after positive verdict")
	}
	want := runImg(t, img, core.Input{Seed: 7})
	got := runImg(t, rec, core.Input{Seed: 7})
	if want.ExitCode != got.ExitCode {
		t.Fatalf("divergence after fence removal: %d vs %d", want.ExitCode, got.ExitCode)
	}
}

func TestFenceOptimizeDetectsSpinlock(t *testing.T) {
	src := `
extern thread_create;
extern thread_join;
var lock = 0;
var count = 0;
func worker(arg) {
	var i;
	for (i = 0; i < 50; i = i + 1) {
		while (load64(&lock) != 0) { }
		store64(&lock, 1);
		count = count + 1;
		store64(&lock, 0);
	}
	return 0;
}
func main() {
	var t1 = thread_create(worker, 0);
	thread_join(t1);
	return count;
}`
	img := compile(t, src, 2)
	p, err := core.NewProject(img, options())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.FenceOptimize([]core.Input{{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FencesRemovable {
		t.Fatal("spinlock program wrongly proven free of implicit synchronization")
	}
	if rep.Spinning == 0 {
		t.Fatal("no spinning loop reported")
	}
	found := false
	for _, l := range rep.Loops {
		if l.Spinning && strings.Contains(l.Reason, "no exit condition") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no spin verdict with explanation: %+v", rep.Loops)
	}
	// Conservative path: recompile keeps fences, output stays correct.
	rec, err := p.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.FencesGone {
		t.Fatal("fences removed despite spin verdict")
	}
	want := runImg(t, img, core.Input{Seed: 3})
	got := runImg(t, rec, core.Input{Seed: 3})
	if want.ExitCode != got.ExitCode {
		t.Fatalf("divergence: %d vs %d", want.ExitCode, got.ExitCode)
	}
}

func TestFenceOptimizeUncoveredLoopIsConservative(t *testing.T) {
	// The endianness-swap-style loop is never executed with these inputs
	// (the histogram false-negative case, §4.3).
	src := `
extern input_byte;
var buf[8];
func main() {
	var c = input_byte();
	var i;
	if (c == 'X') {
		for (i = 0; i < 8; i = i + 1) { buf[i] = load64(buf + (7-i)*8); }
	}
	var s = 0;
	for (i = 0; i < 8; i = i + 1) { s = s + buf[i]; }
	return s;
}`
	img := compile(t, src, 2)
	p, err := core.NewProject(img, options())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.FenceOptimize([]core.Input{{Data: []byte("y"), Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FencesRemovable {
		t.Fatal("uncovered loop must keep the verdict conservative")
	}
	if rep.Uncovered == 0 {
		t.Fatalf("expected an uncovered loop: %+v", rep.Loops)
	}
}

func TestNaiveVsOptimizedAtomics(t *testing.T) {
	src := `
extern thread_create;
extern thread_join;
var c = 0;
func w(a) {
	var i;
	for (i = 0; i < 300; i = i + 1) { atomic_add(&c, 1); }
	return 0;
}
func main() {
	var t1 = thread_create(w, 0);
	var t2 = thread_create(w, 0);
	thread_join(t1);
	thread_join(t2);
	return c / 3;
}`
	img := compile(t, src, 2)

	run := func(naive bool) vm.Result {
		o := options()
		o.NaiveAtomics = naive
		p, err := core.NewProject(img, o)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := p.Recompile()
		if err != nil {
			t.Fatal(err)
		}
		return runImg(t, rec, core.Input{Seed: 9})
	}
	naive := run(true)
	optimized := run(false)
	if naive.ExitCode != 200 || optimized.ExitCode != 200 {
		t.Fatalf("wrong results: naive=%d optimized=%d", naive.ExitCode, optimized.ExitCode)
	}
	// Listing 1 serializes every atomic on a global lock; Listing 2 must
	// be cheaper.
	if optimized.Cycles >= naive.Cycles {
		t.Fatalf("optimized atomics (%d cycles) not faster than naive (%d)",
			optimized.Cycles, naive.Cycles)
	}
}
