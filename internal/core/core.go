// Package core is the Polynima driver: it assembles the full hybrid
// recompilation pipeline (Figure 2) around the substrate packages.
//
//	disassemble (static CFG) -> [ICFT trace] -> lift -> [dynamic analyses]
//	  -> optimize -> lower -> standalone recompiled binary
//
// plus the additive-lifting loop (§3.2): run the recompiled output natively;
// when it reports a control-flow miss, integrate the newly discovered target
// into the on-disk CFG with a static recursive descent and re-run the
// pipeline.
//
// The optional dynamic analyses are callback-wrapper pruning (§3.3.3) and
// spinloop detection driving fence removal (§3.4); both consume concrete
// inputs and leave the output a fully functional replacement binary whether
// or not they run.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cfg"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/lifter"
	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/spindet"
	"repro/internal/store"
	"repro/internal/tracer"
	"repro/internal/vm"
)

// Options configures a recompilation project.
type Options struct {
	// InsertFences applies Lasagne-style fence insertion (default true via
	// DefaultOptions; disable only for the unsound ablation).
	InsertFences bool
	// NaiveAtomics selects the Listing 1 global-lock atomic translation.
	NaiveAtomics bool
	// Optimize runs the refinement pass pipeline.
	Optimize bool
	// VerifyIR re-verifies the IR after every pass (slow; tests).
	VerifyIR bool
	// Target names the ISA description lowering emits for ("" or "mx64"
	// is the default TSO MX64 backend; "mx64w" the weakly-ordered,
	// register-poor profile — see mx.TargetByName). The target id is
	// folded into per-function cache fingerprints and image artifact
	// keys, so a warm store never serves one target's bytes to another.
	Target string
	// Fuel bounds every VM execution (instructions).
	Fuel uint64
	// Seed drives VM scheduling for pipeline-internal runs.
	Seed int64
	// Workers bounds how many functions are lifted/optimized concurrently
	// per Recompile (0 = runtime.NumCPU(); 1 = the historical serial
	// path). Output bytes are identical at any setting (pipeline.go).
	Workers int
	// NoFuncCache disables the artifact store entirely — every stage of
	// every recompile runs from scratch (the differential-testing escape
	// hatch and the benchmark baseline). The name predates the staged
	// store; it now gates CFG, trace, function, and image artifacts alike.
	NoFuncCache bool
	// Store, when set, is a backing artifact tier (typically store.Disk or
	// store.Remote, the -store/-remote-store flags) composed under this
	// project's private generational memory tier. Artifacts written there
	// survive the process and may be shared between projects — keys are
	// content addresses over each stage's full input set, so sharing can
	// never alias (stages.go).
	Store store.Store
	// SharedStore, when set, is used directly as the project's artifact
	// store instead of wrapping a private memory tier over Store — the
	// fleet-daemon shape (internal/serve): one memory tier warm across
	// every request. It should be built with store.NewSharedTiered so the
	// pipeline's generation brackets become no-ops (a private pruning cycle
	// must not evict entries concurrent projects still use). Takes
	// precedence over Store; ignored when NoFuncCache is set.
	SharedStore *store.Tiered
	// Obs, when set, records a structured span for every pipeline stage
	// (disasm, ICFT trace, per-function lift+opt, site finalize, lower) and
	// every guest run, for Chrome-trace export. Nil — the default — costs
	// one predictable nil check per stage.
	Obs *obs.Tracer
	// Ctx, when set, makes the project's work cancellable: once the context
	// is done, the per-function worker pool stops dispatching, guest runs
	// (pipeline-internal and additive) stop within a bounded number of
	// instructions, and the interrupted call surfaces an error wrapping
	// ctx.Err(). The fleet daemon (internal/serve) threads each request's
	// context here so a disconnected or timed-out client frees its workers.
	// Nil — the default — is never cancelled and costs nil checks only.
	Ctx context.Context
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{InsertFences: true, Optimize: true, Fuel: 2_000_000_000, Seed: 1}
}

// Input is one concrete execution used by the dynamic analyses.
type Input struct {
	Data []byte
	Seed int64
	Exts map[string]vm.ExtFunc
}

// Stats records pipeline timing and counters (Table 4's metrics).
//
// The pipeline methods accumulate into it under mu (via update), so even a
// Project shared across goroutines keeps consistent counters. Reading the
// fields directly is safe once the pipeline calls have returned — the bench
// worker pool collects cells behind a WaitGroup, which establishes the
// required happens-before. Note Stats must not be copied (go vet's
// copylocks check enforces this); take the individual fields instead.
type Stats struct {
	mu sync.Mutex

	DisasmTime time.Duration
	TraceTime  time.Duration
	LiftTime   time.Duration // summed per-function lift CPU time
	OptTime    time.Duration // summed per-function optimization CPU time
	LowerTime  time.Duration
	// LiftOptWall is the wall-clock time of the (parallel) lift+optimize
	// sections; with several workers it is well below LiftTime+OptTime.
	LiftOptWall time.Duration
	// CacheHits/CacheMisses count function-cache outcomes across this
	// project's recompiles (a hit replays a cached optimized body; a miss
	// lifts and optimizes the function from scratch).
	CacheHits   int
	CacheMisses int
	// Per-tier artifact-store outcomes across every namespace (functions,
	// CFGs, trace sessions, lowered images). A memory miss that a disk
	// tier serves counts as StoreMemMisses + StoreDiskHits; disk counters
	// stay zero when no backing store is configured. StoreEvictions counts
	// memory-tier entries dropped by generational pruning.
	StoreMemHits    int
	StoreMemMisses  int
	StoreDiskHits   int
	StoreDiskMisses int
	StoreEvictions  int
	ICFTs           int
	Recompiles      int
	Funcs           int
	Blocks          int
	CodeSize        int
	TraceInsts      uint64
	FencesGone      bool
	NumExternal     int
	// Fences is the number of fence instructions the last Recompile's
	// lowering emitted (zero on TSO-like targets, where fences are free).
	Fences int
}

// update runs f with the stats lock held; every pipeline-side mutation goes
// through here.
func (s *Stats) update(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f()
}

// Total returns the total pipeline wall-clock time. LiftTime and OptTime sum
// per-function CPU time across workers, so whenever the parallel lift+opt
// sections recorded a wall clock (LiftOptWall), that is what counts toward
// the total — summing CPU time alongside the serial stages would overstate
// the pipeline by nearly the worker count.
func (s *Stats) Total() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	liftOpt := s.LiftTime + s.OptTime
	if s.LiftOptWall > 0 {
		liftOpt = s.LiftOptWall
	}
	return s.DisasmTime + s.TraceTime + liftOpt + s.LowerTime
}

// Project is one recompilation effort over an input binary.
type Project struct {
	Img   *image.Image
	Graph *cfg.Graph
	Opts  Options
	Stats Stats

	// OnCFGUpdate, when set, is invoked by RunAdditive after each batch of
	// control-flow misses is integrated into Graph and before the recompile
	// that consumes it — the crash-safe persistence hook: a caller that
	// writes the graph out here (atomically) never loses a discovery to a
	// crash mid-recompile. Returning an error aborts the session.
	OnCFGUpdate func(*cfg.Graph) error

	// dynamic-analysis state
	removeFences  bool
	callbackSet   map[uint64]bool // observed external entries; nil = not pruned
	spinReport    *spindet.Report
	lastRecording *spindet.Recording

	// store is the project's tiered artifact store (stages.go): a private
	// generational memory tier over the optional shared Opts.Store backing.
	// Nil when Opts.NoFuncCache is set — every stage then recomputes.
	store *store.Tiered

	// imgFP caches the input-image fingerprint, the root of every artifact
	// key (computed once; imgFPOK false disables all artifact traffic).
	imgFPOnce sync.Once
	imgFP     store.Key
	imgFPOK   bool

	// obsTrack is this project's serial-stage trace track, allocated on
	// first use (concurrent bench cells each hold their own Project, so
	// per-project tracks keep complete events from overlapping).
	obsOnce  sync.Once
	obsTrack int64
}

// obsTID returns the project's serial-stage trace track, or 0 when tracing
// is off.
func (p *Project) obsTID() int64 {
	if p.Opts.Obs == nil {
		return 0
	}
	p.obsOnce.Do(func() {
		p.obsTrack = p.Opts.Obs.AllocTID("pipeline " + p.Img.Name)
	})
	return p.obsTrack
}

// ctxDone returns the project's cancellation channel (nil — never polled —
// when no request context is attached).
func (p *Project) ctxDone() <-chan struct{} {
	if p.Opts.Ctx == nil {
		return nil
	}
	return p.Opts.Ctx.Done()
}

// ctxErr surfaces the project's cancellation state (nil when no context is
// attached or it is still live).
func (p *Project) ctxErr() error {
	if p.Opts.Ctx == nil {
		return nil
	}
	return p.Opts.Ctx.Err()
}

// cancelErr maps a guest-run result to the project's cancellation error
// when the fault was forced by the request context; nil otherwise.
func (p *Project) cancelErr(res vm.Result, what string) error {
	if res.Fault == nil || !res.Fault.Cancelled {
		return nil
	}
	cerr := p.ctxErr()
	if cerr == nil {
		cerr = context.Canceled
	}
	return fmt.Errorf("core: %s cancelled: %w", what, cerr)
}

// CachedFuncs reports how many function bodies the memory tier of the
// artifact store currently holds (tests, diagnostics).
func (p *Project) CachedFuncs() int {
	if p.store == nil {
		return 0
	}
	return p.store.Mem().Len(nsFunc)
}

// StoreStats returns the per-tier counter snapshot of this project's
// artifact store (nil map when the store is off). The memory tier is
// project-private; a disk tier may be shared, so its counters aggregate
// every sharer.
func (p *Project) StoreStats() map[string]store.Counters {
	if p.store == nil {
		return nil
	}
	return p.store.Stats()
}

// NewProject disassembles the binary and prepares a project. Disassembly is
// the first pipeline stage: its artifact (the static CFG) is a pure
// function of the image bytes, so with a store it replays instead of
// re-running recursive descent.
func NewProject(img *image.Image, opts Options) (*Project, error) {
	p := newProjectShell(img, opts)
	sp := opts.Obs.Begin(p.obsTID(), "pipeline", "disasm")
	t0 := time.Now()
	g, fromTier := p.replayCFG()
	if g == nil {
		var err error
		g, err = disasm.Disassemble(img)
		if err != nil {
			sp.End()
			return nil, err
		}
		if key, ok := p.cfgKey(); ok {
			if data, merr := g.Marshal(); merr == nil {
				p.storePut(nsCFG, key, data)
			}
		}
	}
	d := time.Since(t0)
	sp = sp.Arg("funcs", len(g.Funcs)).Arg("blocks", g.NumBlocks())
	if fromTier != "" {
		sp = sp.Arg("tier", fromTier)
	}
	sp.End()
	p.Graph = g
	p.Stats.update(func() {
		p.Stats.DisasmTime = d
		p.Stats.Funcs = len(g.Funcs)
		p.Stats.Blocks = g.NumBlocks()
	})
	return p, nil
}

// NewProjectWithGraph prepares a project over an externally supplied CFG
// (e.g. one persisted by a previous additive session) instead of
// disassembling the image.
func NewProjectWithGraph(img *image.Image, g *cfg.Graph, opts Options) *Project {
	p := newProjectShell(img, opts)
	p.Graph = g
	p.Stats.update(func() {
		p.Stats.Funcs = len(g.Funcs)
		p.Stats.Blocks = g.NumBlocks()
	})
	return p
}

// newProjectShell builds the project and its tiered artifact store: the
// caller-supplied shared store when one is set (daemon mode), otherwise a
// private generational memory tier over the optional backing store.
func newProjectShell(img *image.Image, opts Options) *Project {
	p := &Project{Img: img, Opts: opts}
	switch {
	case opts.NoFuncCache:
	case opts.SharedStore != nil:
		p.store = opts.SharedStore
	default:
		p.store = store.NewTiered(store.NewMemory(), opts.Store)
	}
	return p
}

// replayCFG probes the store for the image's static CFG; ("", nil) on miss
// or any decode failure.
func (p *Project) replayCFG() (*cfg.Graph, string) {
	key, ok := p.cfgKey()
	if !ok {
		return nil, ""
	}
	data, tier, ok := p.storeGet(nsCFG, key)
	if !ok {
		return nil, ""
	}
	g, err := cfg.Unmarshal(data)
	if err != nil {
		return nil, ""
	}
	return g, tier
}

// Trace augments the CFG with dynamically observed indirect targets (§3.2
// "Dynamic": the ICFT tracer, run upfront over concrete inputs).
//
// A trace session is a pipeline stage with a replayable artifact: its whole
// effect on the graph is the ordered list of merged (site, target) pairs,
// and its key covers the image, the pre-trace graph, the fuel bound, and
// every run's identity. On a store hit the pairs are re-applied to the
// graph — same merge, no execution — and the stored counts are reported, so
// a replayed session is indistinguishable from a live one. Only sessions
// that completed without error are persisted.
func (p *Project) Trace(inputs []Input) (*tracer.Result, error) {
	runs := make([]tracer.Run, len(inputs))
	for i, in := range inputs {
		runs[i] = tracer.Run{Input: in.Data, Seed: in.Seed, Exts: in.Exts}
	}
	if len(runs) == 0 {
		runs = []tracer.Run{{Seed: p.Opts.Seed}}
	}
	// The key fingerprints the graph the session starts from, so it must be
	// computed before any merging mutates it.
	traceKey, keyOK := p.traceKey(runs)
	sp := p.Opts.Obs.Begin(p.obsTID(), "pipeline", "icft-trace",
		obs.Arg{Key: "runs", Val: len(runs)})
	t0 := time.Now()
	var res *tracer.Result
	var err error
	replayed := ""
	if keyOK {
		if data, tier, ok := p.storeGet(nsTrace, traceKey); ok {
			if stored, sok := decodeTraceArtifact(data); sok && p.applyTraceMerges(stored.Merged) {
				res, replayed = stored, tier
			}
		}
	}
	if res == nil {
		res, err = tracer.TraceObs(p.Img, p.Graph, runs, p.Opts.Fuel, p.Opts.Obs, p.obsTID(), p.ctxDone())
		if err == nil && res != nil && keyOK {
			p.storePut(nsTrace, traceKey, encodeTraceArtifact(res))
		}
	}
	d := time.Since(t0)
	if res != nil {
		sp.Arg("icfts", res.ICFTs).Arg("new_targets", res.NewTargets)
	}
	if replayed != "" {
		sp.Arg("tier", replayed)
	}
	sp.End()
	p.Stats.update(func() {
		p.Stats.TraceTime += d
		if res != nil {
			// A faulted session still merged the ICFTs it observed before
			// (and during) the faulting run; account for them.
			p.Stats.ICFTs += res.ICFTs
			p.Stats.TraceInsts += res.Insts
		}
	})
	if err != nil {
		if cerr := p.ctxErr(); cerr != nil {
			return nil, fmt.Errorf("core: trace cancelled: %w", cerr)
		}
		return nil, err
	}
	return res, nil
}

// applyTraceMerges re-applies a stored trace session's merged pairs to the
// graph, in the order the live session merged them (target sets stay in
// their canonical sorted order either way, but recursive descent from a
// discovery point depends on what is already known). Reports false if any
// pair no longer applies — then the caller falls back to a live trace,
// which re-merges idempotently.
func (p *Project) applyTraceMerges(pairs []tracer.SiteTarget) bool {
	for _, st := range pairs {
		blk := p.Graph.BlockContaining(st.Site)
		if blk == nil {
			return false
		}
		if blk.HasTarget(st.Target) {
			continue
		}
		if _, known := p.Graph.Blocks[st.Target]; known {
			blk.AddTarget(st.Target)
		} else if err := disasm.ExploreFrom(p.Img, p.Graph, blk.Addr, st.Target); err != nil {
			return false
		}
	}
	return true
}

// lift runs the lifter with the project's options over the current CFG. The
// serial whole-module lift is its own wall-clock section, so its duration
// accumulates into LiftOptWall as well as LiftTime (Total counts the wall).
func (p *Project) lift() (*lifter.Lifted, error) {
	t0 := time.Now()
	lf, err := lifter.Lift(p.Img, p.Graph, lifter.Options{
		InsertFences: p.Opts.InsertFences,
		NaiveAtomics: p.Opts.NaiveAtomics,
		Obs:          p.Opts.Obs,
		ObsTID:       p.obsTID(),
	})
	d := time.Since(t0)
	p.Stats.update(func() {
		p.Stats.LiftTime += d
		p.Stats.LiftOptWall += d
	})
	return lf, err
}

// applyDynamicResults marks pruned callbacks and removes fences per the
// dynamic analyses that have run.
func (p *Project) applyDynamicResults(lf *lifter.Lifted) {
	if p.callbackSet != nil {
		for addr, f := range lf.FuncByAddr {
			if addr == p.Img.Entry {
				continue // the program entry always needs its wrapper
			}
			if !p.callbackSet[addr] {
				f.External = false
			}
		}
	}
	if p.removeFences {
		for _, f := range lf.Mod.Funcs {
			opt.RemoveFences(f)
		}
	}
	n := 0
	for _, f := range lf.Mod.Funcs {
		if f.External {
			n++
		}
	}
	p.Stats.update(func() {
		p.Stats.NumExternal = n
		p.Stats.FencesGone = p.removeFences
	})
}

// noCallbacks reports whether the callback analysis proved that no guest
// function other than the entry point is ever entered from the host.
func (p *Project) noCallbacks() bool {
	if p.callbackSet == nil {
		return false
	}
	for addr := range p.callbackSet {
		if addr != p.Img.Entry {
			return false
		}
	}
	return true
}

// Run executes a binary with this project's fuel and the given input.
func (p *Project) Run(img *image.Image, in Input) (vm.Result, error) {
	m, err := vm.NewWithExts(img, in.Seed, in.Exts)
	if err != nil {
		return vm.Result{}, err
	}
	m.SetCancel(p.ctxDone())
	if in.Data != nil {
		m.SetInput(in.Data)
	}
	sp := p.Opts.Obs.Begin(p.obsTID(), "guest", "guest-run",
		obs.Arg{Key: "dispatch", Val: m.Dispatch().String()})
	res := m.Run(p.Opts.Fuel)
	sp.Arg("insts", res.Insts).Arg("cycles", res.Cycles).End()
	return res, nil
}

// AdditiveResult describes an additive-lifting session.
type AdditiveResult struct {
	Result     vm.Result
	Recompiles int // recompilation loops triggered by misses
	Misses     []Miss
	Img        *image.Image // the final recompiled binary
	// Timeline records one entry per recompiling loop iteration — the
	// convergence history of the session (how many misses each run
	// discovered and what the recompile that integrated them cost).
	Timeline []AdditiveLoopStat
}

// AdditiveLoopStat is one additive-loop iteration of the convergence
// timeline.
type AdditiveLoopStat struct {
	Loop          int     // iteration index (0-based)
	Misses        int     // distinct control-flow misses this run discovered
	Relifted      int     // functions re-lifted by the recompile (cache misses)
	CacheHits     int     // functions replayed from the cache
	CacheHitRatio float64 // CacheHits / (CacheHits + Relifted), 0 with no cache
}

// Miss is one recorded control-flow miss.
type Miss struct {
	Site, Target uint64
}

// RunAdditive executes the recompiled binary on the input; when the run
// reports control-flow misses it batches every distinct miss the run
// observed (multithreaded programs can hit several unresolved targets before
// the VM halts), integrates them all into the CFG (recursive descent from
// each new block, §3.2), re-runs the recompilation pipeline once, and
// restarts the program — the incremental additive-lifting loop. Each
// recompile replays unchanged functions from the content-addressed cache, so
// a loop iteration pays only for the functions its discoveries touched.
func (p *Project) RunAdditive(in Input, maxLoops int) (*AdditiveResult, error) {
	if maxLoops <= 0 {
		maxLoops = 64
	}
	out := &AdditiveResult{}
	img, err := p.Recompile()
	if err != nil {
		return nil, err
	}
	for loop := 0; ; loop++ {
		lsp := p.Opts.Obs.Begin(p.obsTID(), "additive", "additive-loop",
			obs.Arg{Key: "loop", Val: loop})
		m, err := vm.NewWithExts(img, in.Seed, in.Exts)
		if err != nil {
			lsp.End()
			return nil, err
		}
		m.SetCancel(p.ctxDone())
		if in.Data != nil {
			m.SetInput(in.Data)
		}
		// Collect every distinct miss the run reports, not just the last:
		// each one is a real unresolved target and integrating them together
		// saves a full loop iteration per extra miss.
		var misses []Miss
		seen := map[Miss]bool{}
		m.MissHook = func(t *vm.Thread, site, target uint64) {
			ms := Miss{Site: site, Target: target}
			if !seen[ms] {
				seen[ms] = true
				misses = append(misses, ms)
			}
		}
		gsp := p.Opts.Obs.Begin(p.obsTID(), "guest", "guest-run",
			obs.Arg{Key: "loop", Val: loop},
			obs.Arg{Key: "dispatch", Val: m.Dispatch().String()})
		res := m.Run(p.Opts.Fuel)
		gsp.Arg("insts", res.Insts).Arg("misses", len(misses)).End()
		if res.Fault != nil {
			lsp.End()
			if cerr := p.cancelErr(res, "additive run"); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("core: additive run faulted at loop %d (after %d recompiles, misses integrated so far %s): %w",
				loop, out.Recompiles, formatMisses(out.Misses), res.Fault)
		}
		if res.ExitCode != vm.MissExitCode || len(misses) == 0 {
			lsp.Arg("converged", true).End()
			out.Result = res
			out.Img = img
			return out, nil
		}
		if loop >= maxLoops {
			lsp.End()
			return nil, fmt.Errorf("core: additive lifting did not converge after %d loops (%d recompiles; misses integrated %s; still missing %s)",
				maxLoops, out.Recompiles, formatMisses(out.Misses), formatMisses(misses))
		}
		// Integrate the whole batch, then recompile once.
		for _, ms := range misses {
			blk := p.Graph.BlockContaining(ms.Site)
			if blk == nil {
				lsp.End()
				return nil, fmt.Errorf("core: loop %d: miss site %#x not in CFG", loop, ms.Site)
			}
			if _, known := p.Graph.Blocks[ms.Target]; known {
				blk.AddTarget(ms.Target)
			} else if err := disasm.ExploreFrom(p.Img, p.Graph, blk.Addr, ms.Target); err != nil {
				lsp.End()
				return nil, fmt.Errorf("core: loop %d: integrating miss %#x->%#x: %w", loop, ms.Site, ms.Target, err)
			}
		}
		out.Misses = append(out.Misses, misses...)
		if p.OnCFGUpdate != nil {
			if err := p.OnCFGUpdate(p.Graph); err != nil {
				lsp.End()
				return nil, fmt.Errorf("core: loop %d: persisting updated CFG: %w", loop, err)
			}
		}
		// Snapshot the cache counters around the recompile so the timeline
		// entry carries this iteration's delta. The pipeline calls have
		// returned at both read points, so the direct field reads are safe.
		h0, m0 := p.Stats.CacheHits, p.Stats.CacheMisses
		img, err = p.Recompile()
		if err != nil {
			lsp.End()
			return nil, fmt.Errorf("core: loop %d: recompile after integrating %s: %w",
				loop, formatMisses(misses), err)
		}
		out.Recompiles++
		hits, relifted := p.Stats.CacheHits-h0, p.Stats.CacheMisses-m0
		ratio := 0.0
		if hits+relifted > 0 {
			ratio = float64(hits) / float64(hits+relifted)
		}
		out.Timeline = append(out.Timeline, AdditiveLoopStat{
			Loop: loop, Misses: len(misses),
			Relifted: relifted, CacheHits: hits, CacheHitRatio: ratio,
		})
		lsp.Arg("misses", len(misses)).Arg("relifted", relifted).
			Arg("cache_hits", hits).End()
	}
}

// formatMisses renders a miss batch for error messages (capped so a
// pathological non-convergence stays readable).
func formatMisses(ms []Miss) string {
	if len(ms) == 0 {
		return "none"
	}
	const cap = 8
	s := ""
	for i, m := range ms {
		if i == cap {
			s += fmt.Sprintf(" ... (%d more)", len(ms)-cap)
			break
		}
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%#x->%#x", m.Site, m.Target)
	}
	return "[" + s + "]"
}

// PruneCallbacks runs the callback-usage analysis (§3.3.3): it observes
// which functions are used as external entry points across the inputs and
// unmarks all others, shrinking the output and unlocking optimization.
func (p *Project) PruneCallbacks(inputs []Input) error {
	set := map[uint64]bool{}
	if len(inputs) == 0 {
		inputs = []Input{{Seed: p.Opts.Seed}}
	}
	for _, in := range inputs {
		m, err := vm.NewWithExts(p.Img, in.Seed, in.Exts)
		if err != nil {
			return err
		}
		m.SetCancel(p.ctxDone())
		if in.Data != nil {
			m.SetInput(in.Data)
		}
		m.OnGuestEntry = func(fn uint64) { set[fn] = true }
		res := m.Run(p.Opts.Fuel)
		if res.Fault != nil {
			if cerr := p.cancelErr(res, "callback analysis run"); cerr != nil {
				return cerr
			}
			return fmt.Errorf("core: callback analysis run faulted: %w", res.Fault)
		}
	}
	p.callbackSet = set
	return nil
}

// FenceOptimize runs the spinloop-detection pipeline (§3.4): instrument the
// lifted module, run the instrumented recompiled binary over the inputs,
// analyze every loop, and — only if the whole program is proven free of
// implicit synchronization — enable fence removal for subsequent
// recompilations. It returns the analysis report.
func (p *Project) FenceOptimize(inputs []Input) (*spindet.Report, error) {
	// Build the instrumented binary from a fresh lift (no optimization:
	// instrumentation must see every site). The configured target applies
	// here too: the instrumented binary runs under the same machine mode the
	// production recompile will.
	lf, err := p.lift()
	if err != nil {
		return nil, err
	}
	tgt := p.target()
	if tgt == nil {
		return nil, fmt.Errorf("core: unknown target %q", p.Opts.Target)
	}
	spindet.Instrument(lf.Mod)
	res, err := lower.LowerWithOptions(lf, lower.Options{Target: tgt})
	if err != nil {
		return nil, err
	}
	recorder := spindet.NewRecorder()
	if len(inputs) == 0 {
		inputs = []Input{{Seed: p.Opts.Seed}}
	}
	for _, in := range inputs {
		exts := map[string]vm.ExtFunc{}
		for k, v := range in.Exts {
			exts[k] = v
		}
		for k, v := range recorder.Exts() {
			exts[k] = v
		}
		m, err := vm.NewWithExts(res.Img, in.Seed, exts)
		if err != nil {
			return nil, err
		}
		m.SetCancel(p.ctxDone())
		if in.Data != nil {
			m.SetInput(in.Data)
		}
		r := m.Run(p.Opts.Fuel)
		if r.Fault != nil {
			if cerr := p.cancelErr(r, "instrumented run"); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("core: instrumented run faulted: %w", r.Fault)
		}
	}

	// Analyze a fresh, optimized module (site IDs are deterministic across
	// lifts of the same graph).
	lf2, err := p.lift()
	if err != nil {
		return nil, err
	}
	if err := opt.Run(lf2.Mod, opt.Options{Verify: p.Opts.VerifyIR, Obs: p.Opts.Obs, ObsTID: p.obsTID()}); err != nil {
		return nil, err
	}
	p.lastRecording = recorder.Recording()
	report := spindet.Analyze(lf2.Mod, p.lastRecording)
	p.spinReport = report
	if report.FencesRemovable {
		p.removeFences = true
	}
	return report, nil
}

// SpinReport returns the last fence-optimization report, or nil.
func (p *Project) SpinReport() *spindet.Report { return p.spinReport }

// ForceFenceRemoval enables fence removal unconditionally (the unsound
// ablation used to quantify the fence cost).
func (p *Project) ForceFenceRemoval() { p.removeFences = true }

// DebugSpin runs the fence-optimization recording and returns the influence
// trace for one loop (diagnostics).
func (p *Project) DebugSpin(fn string, header uint64, inputs []Input) (bool, bool, []string, error) {
	if _, err := p.FenceOptimize(inputs); err != nil {
		return false, false, nil, err
	}
	lf, err := p.lift()
	if err != nil {
		return false, false, nil, err
	}
	if err := opt.Run(lf.Mod, opt.Options{}); err != nil {
		return false, false, nil, err
	}
	v, e, notes := spindet.DebugInfluence(lf.Mod, fn, header, p.lastRecording)
	return v, e, notes, nil
}

// LastRecording exposes the last fence-optimization recording (diagnostics).
func (p *Project) LastRecording() *spindet.Recording { return p.lastRecording }

// LiftForDebug lifts with the project's dynamic results applied and returns
// the lifted handle and its module (diagnostics; skips optimization).
func (p *Project) LiftForDebug() (*lifter.Lifted, *ir.Module, error) {
	lf, err := p.lift()
	if err != nil {
		return nil, nil, err
	}
	p.applyDynamicResults(lf)
	return lf, lf.Mod, nil
}
