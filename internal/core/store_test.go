package core_test

// Differential tests for the staged artifact pipeline over the tiered
// store: the recompiled bytes must be identical cold, memory-warm,
// disk-warm (including across a process restart, modeled here as a fresh
// Disk handle + fresh Project over the same directory), at any -jpipe
// width, and in the face of arbitrary on-disk corruption — which must
// degrade to counted misses, never an error or different output
// (DESIGN.md §3).

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

// diskProject builds a project for src over a fresh Disk handle on dir —
// each call models a separate process attaching to the same store.
func diskProject(t *testing.T, src string, dir string, workers int) *core.Project {
	t.Helper()
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := options()
	o.Workers = workers
	o.Store = d
	p, err := core.NewProject(compile(t, src, 2), o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStoreDifferentialIdentity(t *testing.T) {
	for _, tc := range []struct{ name, src string }{
		{"threaded", threadedSrc},
		{"fptr", fptrSrc},
	} {
		t.Run(tc.name, func(t *testing.T) {
			img := compile(t, tc.src, 2)
			_, want := recompileWith(t, img, func(o *core.Options) {
				o.Workers = 1
				o.NoFuncCache = true
			})

			dir := t.TempDir()
			// Cold run populates the disk tier.
			cold := diskProject(t, tc.src, dir, 1)
			rec, err := cold.Recompile()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, marshalImg(t, rec)) {
				t.Fatal("cold disk-backed recompile diverged from serial baseline")
			}
			if cold.Stats.StoreDiskHits != 0 {
				t.Fatalf("cold run reported %d disk hits", cold.Stats.StoreDiskHits)
			}
			if cold.Stats.StoreDiskMisses == 0 {
				t.Fatal("cold run recorded no disk misses")
			}

			// Disk-warm runs across a "restart" (fresh handle + project), at
			// serial and parallel pipeline widths: byte-identical, served
			// from disk.
			for _, workers := range []int{1, 8} {
				p := diskProject(t, tc.src, dir, workers)
				rec, err := p.Recompile()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, marshalImg(t, rec)) {
					t.Fatalf("disk-warm recompile (workers=%d) diverged", workers)
				}
				if p.Stats.StoreDiskHits == 0 {
					t.Fatalf("disk-warm recompile (workers=%d) never hit the disk tier", workers)
				}
				// Memory-warm on the same project: still identical.
				rec2, err := p.Recompile()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, marshalImg(t, rec2)) {
					t.Fatalf("memory-warm recompile (workers=%d) diverged", workers)
				}
			}
		})
	}
}

// TestStoreTraceReplayAcrossRestart pins the trace artifact: a second
// project over the same disk store replays the ICFT session — same merged
// graph, same reported counts (Table 4 prints them) — without executing the
// program, and the recompiled bytes match.
func TestStoreTraceReplayAcrossRestart(t *testing.T) {
	in := core.Input{Data: []byte("012"), Seed: 3}
	dir := t.TempDir()

	run := func(workers int) (*core.Project, []byte) {
		p := diskProject(t, fptrSrc, dir, workers)
		res, err := p.Trace([]core.Input{in})
		if err != nil {
			t.Fatal(err)
		}
		if res.ICFTs == 0 {
			t.Fatal("trace merged nothing")
		}
		rec, err := p.Recompile()
		if err != nil {
			t.Fatal(err)
		}
		return p, marshalImg(t, rec)
	}

	p1, bytes1 := run(1)
	p2, bytes2 := run(8)
	if !bytes.Equal(bytes1, bytes2) {
		t.Fatal("trace-replayed recompile diverged from the traced original")
	}
	if p2.Stats.ICFTs != p1.Stats.ICFTs || p2.Stats.TraceInsts != p1.Stats.TraceInsts {
		t.Fatalf("replayed trace counts differ: icfts %d vs %d, insts %d vs %d",
			p2.Stats.ICFTs, p1.Stats.ICFTs, p2.Stats.TraceInsts, p1.Stats.TraceInsts)
	}
	if p2.Stats.StoreDiskHits == 0 {
		t.Fatal("second session never hit the disk tier")
	}
}

// TestStoreAdditiveAcrossRestart replays a whole additive session against a
// warm disk store: every loop's recompile is served as an image artifact,
// and the converged bytes match the cold session's.
func TestStoreAdditiveAcrossRestart(t *testing.T) {
	in := core.Input{Data: []byte("012"), Seed: 3}
	dir := t.TempDir()

	p1 := diskProject(t, fptrSrc, dir, 0)
	res1, err := p1.RunAdditive(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	p2 := diskProject(t, fptrSrc, dir, 0)
	res2, err := p2.RunAdditive(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalImg(t, res1.Img), marshalImg(t, res2.Img)) {
		t.Fatal("disk-warm additive session diverged from the cold one")
	}
	if res2.Recompiles != res1.Recompiles {
		t.Fatalf("warm session took %d recompiles, cold took %d", res2.Recompiles, res1.Recompiles)
	}
	if p2.Stats.StoreDiskHits == 0 {
		t.Fatal("warm additive session never hit the disk tier")
	}
	if p2.Stats.CacheMisses != 0 {
		t.Fatalf("warm additive session re-lifted %d functions; every recompile should be an image replay",
			p2.Stats.CacheMisses)
	}
}

// TestStoreCorruptionDegradesToMiss corrupts every on-disk artifact after a
// cold run; a fresh session over the damaged store must still produce the
// identical bytes with zero errors, counting the rejects.
func TestStoreCorruptionDegradesToMiss(t *testing.T) {
	img := compile(t, threadedSrc, 2)
	_, want := recompileWith(t, img, func(o *core.Options) {
		o.Workers = 1
		o.NoFuncCache = true
	})
	dir := t.TempDir()

	cold := diskProject(t, threadedSrc, dir, 1)
	if _, err := cold.Recompile(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte near the end of every stored entry (payload region, so
	// the checksum check must catch it).
	corrupted := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			return nil
		}
		data[len(data)-1] ^= 0xff
		corrupted++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("cold run left nothing on disk to corrupt")
	}

	d2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := options()
	o.Store = d2
	p2, err := core.NewProject(compile(t, threadedSrc, 2), o)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p2.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, marshalImg(t, rec)) {
		t.Fatal("recompile over corrupted store diverged")
	}
	if p2.Stats.StoreDiskHits != 0 {
		t.Fatalf("corrupted store served %d hits", p2.Stats.StoreDiskHits)
	}
	st := d2.Stats()["disk"]
	if st.Corrupt == 0 {
		t.Fatal("corrupt entries were not counted")
	}
}
