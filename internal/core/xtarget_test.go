package core_test

// Cross-target differential tests. The same project recompiled for the
// default MX64 target and for the weakly-ordered, register-poor MX64W
// profile must (a) produce guest-observable behavior identical to the
// original binary on both targets across seeds, (b) never alias artifacts
// between targets in a shared store (the target id is folded into every
// per-function fingerprint and image key), and (c) actually differ where
// the targets differ: MX64W images carry the machine mode tag and real
// fence instructions, MX64 images carry neither.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

// diskProjectTarget is diskProject with a target name.
func diskProjectTarget(t *testing.T, src, dir, target string, workers int) *core.Project {
	t.Helper()
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := options()
	o.Workers = workers
	o.Store = d
	o.Target = target
	p, err := core.NewProject(compile(t, src, 2), o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCrossTargetRunIdentity is the run-identity matrix: every workload,
// recompiled for each target, must produce output and exit code identical
// to the original binary at every seed. MX64W's store buffer drains before
// any other thread runs, so weak-mode executions stay observationally
// sequentially consistent and the outputs match byte for byte.
func TestCrossTargetRunIdentity(t *testing.T) {
	workloads := []struct {
		name  string
		src   string
		input []byte
		trace bool // needs an ICFT trace before recompiling (indirect calls)
	}{
		{"threaded", threadedSrc, nil, false},
		{"fptr", fptrSrc, []byte("0121"), true},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			img := compile(t, wl.src, 2)
			for _, target := range []string{"mx64", "mx64w"} {
				o := options()
				o.Target = target
				p, err := core.NewProject(img, o)
				if err != nil {
					t.Fatal(err)
				}
				if wl.trace {
					if _, err := p.Trace([]core.Input{{Data: wl.input, Seed: 1}}); err != nil {
						t.Fatal(err)
					}
				}
				rec, err := p.Recompile()
				if err != nil {
					t.Fatal(err)
				}
				for _, seed := range []int64{1, 3, 7} {
					in := core.Input{Seed: seed, Data: wl.input}
					want := runImg(t, img, in)
					got := runImg(t, rec, in)
					if want.ExitCode != got.ExitCode || want.Output != got.Output {
						t.Fatalf("%s seed %d: original %d/%q, recompiled %d/%q",
							target, seed, want.ExitCode, want.Output, got.ExitCode, got.Output)
					}
				}
				switch target {
				case "mx64":
					if rec.Machine != "" {
						t.Fatalf("mx64 image tagged with machine mode %q", rec.Machine)
					}
					if p.Stats.Fences != 0 {
						t.Fatalf("mx64 lowering emitted %d fences; TSO needs none", p.Stats.Fences)
					}
				case "mx64w":
					if rec.Machine != "mx64w" {
						t.Fatalf("mx64w image tagged %q", rec.Machine)
					}
					if p.Stats.Fences == 0 {
						t.Fatal("mx64w lowering emitted no fences")
					}
				}
			}
		})
	}
}

// TestCrossTargetSharedStore compiles the same program for both targets
// against one shared disk store. The second target must not replay any of
// the first target's artifacts (distinct keys at both the function and
// image tiers), each target's warm replay must be byte-identical to its own
// cold build, and both builds must run correctly.
func TestCrossTargetSharedStore(t *testing.T) {
	dir := t.TempDir()
	img := compile(t, threadedSrc, 2)
	want := runImg(t, img, core.Input{Seed: 5})

	// Cold MX64 populates the store.
	p64 := diskProjectTarget(t, threadedSrc, dir, "mx64", 1)
	rec64, err := p64.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	if p64.Stats.CacheMisses == 0 {
		t.Fatal("cold mx64 run hit a supposedly empty store")
	}

	// MX64W over the same store: every probe must miss — a hit would mean a
	// key collision across targets.
	p64w := diskProjectTarget(t, threadedSrc, dir, "mx64w", 1)
	rec64w, err := p64w.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	if p64w.Stats.CacheHits != 0 {
		t.Fatalf("mx64w recompile replayed %d of mx64's function bodies", p64w.Stats.CacheHits)
	}
	if rec64w.Machine != "mx64w" {
		t.Fatalf("shared store served a %q image to the mx64w target", rec64w.Machine)
	}
	if bytes.Equal(marshalImg(t, rec64), marshalImg(t, rec64w)) {
		t.Fatal("mx64 and mx64w lowered to identical images")
	}

	// Both outputs byte-correct against the original.
	got64 := runImg(t, rec64, core.Input{Seed: 5})
	got64w := runImg(t, rec64w, core.Input{Seed: 5})
	if got64.Output != want.Output || got64.ExitCode != want.ExitCode {
		t.Fatalf("mx64 output diverged: %d/%q vs %d/%q", got64.ExitCode, got64.Output, want.ExitCode, want.Output)
	}
	if got64w.Output != want.Output || got64w.ExitCode != want.ExitCode {
		t.Fatalf("mx64w output diverged: %d/%q vs %d/%q", got64w.ExitCode, got64w.Output, want.ExitCode, want.ExitCode)
	}

	// Warm replays: each target is served its own bytes back.
	for _, tc := range []struct {
		target string
		want   []byte
	}{
		{"mx64", marshalImg(t, rec64)},
		{"mx64w", marshalImg(t, rec64w)},
	} {
		p := diskProjectTarget(t, threadedSrc, dir, tc.target, 1)
		rec, err := p.Recompile()
		if err != nil {
			t.Fatal(err)
		}
		if p.Stats.StoreDiskHits == 0 {
			t.Fatalf("warm %s recompile never hit the disk tier", tc.target)
		}
		if !bytes.Equal(tc.want, marshalImg(t, rec)) {
			t.Fatalf("warm %s replay diverged from its cold build", tc.target)
		}
	}
}

// TestCrossTargetFenceStatsReplay pins Stats.Fences across image replay: a
// warm recompile must report the same emitted-fence count the cold build
// did (the count rides in the image artifact envelope).
func TestCrossTargetFenceStatsReplay(t *testing.T) {
	dir := t.TempDir()
	cold := diskProjectTarget(t, threadedSrc, dir, "mx64w", 1)
	if _, err := cold.Recompile(); err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Fences == 0 {
		t.Fatal("cold mx64w build emitted no fences")
	}
	warm := diskProjectTarget(t, threadedSrc, dir, "mx64w", 1)
	if _, err := warm.Recompile(); err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Fences != cold.Stats.Fences {
		t.Fatalf("replayed fence count %d, cold build reported %d", warm.Stats.Fences, cold.Stats.Fences)
	}
}

// TestUnknownTargetErrors: a bad target name must fail loudly, not fall
// back to the default backend.
func TestUnknownTargetErrors(t *testing.T) {
	o := options()
	o.Target = "mx128"
	p, err := core.NewProject(compile(t, threadedSrc, 2), o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Recompile(); err == nil || !strings.Contains(err.Error(), "unknown target") {
		t.Fatalf("Recompile with bogus target: err = %v", err)
	}
}
