// Parallel, cached recompilation pipeline.
//
// Recompile fans lifting and per-function optimization out over a bounded
// worker pool (the index-ordered collection pattern of internal/bench) and
// replays unchanged functions from the content-addressed function cache
// (cache.go). The determinism contract: the emitted module — and therefore
// every byte of the lowered image — is identical for any worker count and
// for cache-warm replays, because
//
//   - the module skeleton (globals, function list, names) is built serially
//     in entry order before any body exists (lifter.NewSkeleton);
//   - each body is produced by a pure per-function computation (lift →
//     fence removal → standard opt pipeline) that reads only the shared
//     immutable image/graph and writes only its own function;
//   - memory-access SiteIDs are numbered function-locally and rebased
//     serially in entry order afterwards (lifter.FinalizeSites), exactly
//     reproducing the serial whole-module numbering;
//   - a cache hit clones the byte-identical body the same computation
//     produced earlier (keys cover all of its inputs, cache.go).
//
// Only the interprocedural stages — callback-driven inlining and lowering —
// run serially, and the function cache is disabled while callback pruning is
// active (inlining couples function bodies across the module, so the
// per-function key no longer covers a body's inputs).
package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/lifter"
	"repro/internal/lower"
	"repro/internal/mx"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/pool"
	"repro/internal/store"
)

// target resolves Opts.Target to its ISA description ("" means the default
// MX64), or nil when the name is unknown.
func (p *Project) target() *mx.Target { return mx.TargetByName(p.Opts.Target) }

// pipeWorkers resolves the configured pipeline worker count.
func (p *Project) pipeWorkers() int {
	if p.Opts.Workers > 0 {
		return p.Opts.Workers
	}
	return runtime.NumCPU()
}

// Recompile runs lift -> optimize -> lower over the current CFG and returns
// the standalone recompiled binary. Lifting and optimization are parallel
// and cached per function; the output bytes are independent of the worker
// count and of cache warmth (see the package comment above).
//
// The final lowered image is itself an artifact, keyed by the input image
// bytes, the merged-CFG fingerprint, the option bits, and the
// dynamic-analysis state (stages.go). A store hit short-circuits the whole
// pipeline — no generation is opened, so the memory tier's function bodies
// stay live for the next recompile that does run.
func (p *Project) Recompile() (*image.Image, error) {
	if err := p.ctxErr(); err != nil {
		return nil, fmt.Errorf("core: recompile cancelled: %w", err)
	}
	tgt := p.target()
	if tgt == nil {
		return nil, fmt.Errorf("core: unknown target %q", p.Opts.Target)
	}
	rsp := p.Opts.Obs.Begin(p.obsTID(), "pipeline", "recompile")
	imgKey, imgKeyOK := p.imageKey()
	if imgKeyOK {
		if img, tier, ok := p.replayImage(imgKey); ok {
			rsp.Arg("code_size", p.Stats.CodeSize).Arg("tier", tier).End()
			return img, nil
		}
	}
	lf, err := p.buildOptimizedModule()
	if err != nil {
		rsp.End()
		return nil, err
	}
	lsp := p.Opts.Obs.Begin(p.obsTID(), "pipeline", "lower")
	t0 := time.Now()
	res, err := lower.LowerWithOptions(lf, lower.Options{Target: tgt})
	d := time.Since(t0)
	lsp.End()
	if err != nil {
		rsp.End()
		p.Stats.update(func() { p.Stats.LowerTime += d })
		return nil, err
	}
	var numExternal int
	var fencesGone bool
	p.Stats.update(func() {
		p.Stats.LowerTime += d
		p.Stats.CodeSize = res.CodeSize
		p.Stats.Fences = res.Fences
		p.Stats.Recompiles++
		numExternal = p.Stats.NumExternal
		fencesGone = p.Stats.FencesGone
	})
	if imgKeyOK {
		if env, ok := encodeImageArtifact(res.Img, res.CodeSize, numExternal, res.Fences, fencesGone); ok {
			p.storePut(nsImage, imgKey, env)
		}
	}
	rsp.Arg("code_size", res.CodeSize).End()
	return res.Img, nil
}

// replayImage probes the store for the final lowered image and, on a hit,
// restores the scalar stats a full pipeline run would have produced so cold
// and replayed recompiles report identically.
func (p *Project) replayImage(key store.Key) (*image.Image, string, bool) {
	data, tier, ok := p.storeGet(nsImage, key)
	if !ok {
		return nil, "", false
	}
	img, codeSize, numExternal, fences, fencesGone, ok := decodeImageArtifact(data)
	if !ok {
		return nil, "", false
	}
	p.Stats.update(func() {
		p.Stats.CodeSize = codeSize
		p.Stats.NumExternal = numExternal
		p.Stats.Fences = fences
		p.Stats.FencesGone = fencesGone
		p.Stats.Recompiles++
	})
	return img, tier, true
}

// buildOptimizedModule produces the fully optimized module for the current
// CFG, ready for lowering.
func (p *Project) buildOptimizedModule() (*lifter.Lifted, error) {
	wall0 := time.Now()
	defer func() {
		d := time.Since(wall0)
		p.Stats.update(func() { p.Stats.LiftOptWall += d })
	}()

	tr := p.Opts.Obs
	ssp := tr.Begin(p.obsTID(), "pipeline", "skeleton")
	lf := lifter.NewSkeleton(p.Img, p.Graph)
	funcs := lifter.SortedFuncs(p.Graph)
	ssp.Arg("funcs", len(funcs)).End()
	lopts := lifter.Options{
		InsertFences: p.Opts.InsertFences,
		NaiveAtomics: p.Opts.NaiveAtomics,
	}
	oo := opt.Options{Verify: p.Opts.VerifyIR, NoCallbacks: p.noCallbacks()}

	// One trace track per pool worker, allocated up front (AllocTID is safe
	// concurrently, but allocating serially keeps track numbering stable):
	// complete events on one track must not overlap, and each worker's
	// per-function spans do overlap those of its siblings.
	var wtids []int64
	if tr.Enabled() {
		nw := pool.Clamp(p.pipeWorkers(), len(funcs))
		wtids = make([]int64, nw)
		for w := range wtids {
			wtids[w] = tr.AllocTID(fmt.Sprintf("pipe-worker %d", w))
		}
	}
	workerTID := func(w int) int64 {
		if len(wtids) == 0 {
			return 0
		}
		return wtids[w]
	}

	// Fused per-function lift+optimize requires that no interprocedural
	// stage runs between them; callback pruning introduces one (inlining).
	fused := p.callbackSet == nil
	tgt := p.target()
	cacheable := fused && p.store != nil && tgt != nil

	var keys []store.Key
	if cacheable {
		p.store.BeginGen()
		isFunc := make(map[uint64]bool, len(funcs))
		for _, cf := range funcs {
			isFunc[cf.Entry] = true
		}
		ko := cacheKeyOpts{
			insertFences: p.Opts.InsertFences,
			naiveAtomics: p.Opts.NaiveAtomics,
			optimize:     p.Opts.Optimize,
			verifyIR:     p.Opts.VerifyIR,
			removeFences: p.removeFences,
			target:       tgt.ID,
		}
		fsp := tr.Begin(p.obsTID(), "pipeline", "fingerprint")
		keys = make([]store.Key, len(funcs))
		for i, cf := range funcs {
			fk, ok := p.funcKey(fingerprintFunc(p.Img, p.Graph, cf, isFunc, ko))
			if !ok {
				cacheable = false
				break
			}
			keys[i] = fk
		}
		fsp.Arg("funcs", len(funcs)).End()
	}

	counts := make([]int, len(funcs))
	var hits, misses atomic.Int64
	task := func(w, i int) error {
		cf := funcs[i]
		sp := tr.Begin(workerTID(w), "pipeline", "func",
			obs.Arg{Key: "entry", Val: fmt.Sprintf("%#x", cf.Entry)},
			obs.Arg{Key: "worker", Val: w})
		defer sp.End()
		if cacheable {
			if sites, tier, ok := p.replayFunc(keys[i], lf, cf.Entry); ok {
				counts[i] = sites
				hits.Add(1)
				sp.Arg("cache", "hit").Arg("tier", tier).Arg("sites", sites)
				return nil
			}
			misses.Add(1)
			sp.Arg("cache", "miss")
		} else {
			sp.Arg("cache", "off")
		}
		t0 := time.Now()
		sites, err := lf.LiftFunc(cf, lopts)
		ld := time.Since(t0)
		p.Stats.update(func() { p.Stats.LiftTime += ld })
		if err != nil {
			return err
		}
		counts[i] = sites
		sp.Arg("sites", sites).Arg("lift_us", ld.Microseconds())
		if fused {
			f := lf.FuncByAddr[cf.Entry]
			if p.removeFences {
				opt.RemoveFences(f)
			}
			if p.Opts.Optimize {
				t1 := time.Now()
				oerr := opt.RunFunc(f, oo)
				od := time.Since(t1)
				p.Stats.update(func() { p.Stats.OptTime += od })
				if oerr != nil {
					return oerr
				}
				sp.Arg("opt_us", od.Microseconds())
			}
			if cacheable {
				p.putFunc(keys[i], f, sites)
			}
		}
		return nil
	}
	if err := pool.RunCtx(p.Opts.Ctx, p.pipeWorkers(), len(funcs), task); err != nil {
		return nil, err
	}
	var evicted int
	if cacheable {
		evicted = p.store.EndGen()
	}
	p.Stats.update(func() {
		p.Stats.CacheHits += int(hits.Load())
		p.Stats.CacheMisses += int(misses.Load())
		p.Stats.StoreEvictions += evicted
	})

	fssp := tr.Begin(p.obsTID(), "pipeline", "finalize-sites")
	countByEntry := make(map[uint64]int, len(funcs))
	for i, cf := range funcs {
		countByEntry[cf.Entry] = counts[i]
	}
	lf.FinalizeSites(countByEntry)
	fssp.End()

	if fused {
		// Record the external-entry count and fence state (the fused tasks
		// already applied fence removal per function, pre-optimization).
		n := 0
		for _, f := range lf.Mod.Funcs {
			if f.External {
				n++
			}
		}
		p.Stats.update(func() {
			p.Stats.NumExternal = n
			p.Stats.FencesGone = p.removeFences
		})
	} else {
		// Callback pruning is active: apply the dynamic results module-wide,
		// inline the de-externalized functions (§3.3.3), then optimize —
		// per function, in parallel.
		p.applyDynamicResults(lf)
		if p.Opts.Optimize {
			isp := tr.Begin(p.obsTID(), "pipeline", "inline-opt")
			t0 := time.Now()
			opt.Inline(lf.Mod, 300)
			mfuncs := lf.Mod.Funcs
			oerr := pool.RunCtx(p.Opts.Ctx, p.pipeWorkers(), len(mfuncs), func(w, i int) error {
				sp := tr.Begin(workerTID(w), "pipeline", "opt-func",
					obs.Arg{Key: "name", Val: mfuncs[i].Name},
					obs.Arg{Key: "worker", Val: w})
				defer sp.End()
				return opt.RunFunc(mfuncs[i], oo)
			})
			od := time.Since(t0)
			p.Stats.update(func() { p.Stats.OptTime += od })
			isp.End()
			if oerr != nil {
				return nil, oerr
			}
		}
	}

	// Whole-module verification catches cross-function damage no matter
	// which path — fresh lift, cache replay, or inline — produced a body.
	vsp := tr.Begin(p.obsTID(), "pipeline", "verify")
	err := ir.Verify(lf.Mod)
	vsp.End()
	if err != nil {
		return nil, fmt.Errorf("core: module verification failed: %w", err)
	}
	return lf, nil
}
