// Parallel, cached recompilation pipeline.
//
// Recompile fans lifting and per-function optimization out over a bounded
// worker pool (the index-ordered collection pattern of internal/bench) and
// replays unchanged functions from the content-addressed function cache
// (cache.go). The determinism contract: the emitted module — and therefore
// every byte of the lowered image — is identical for any worker count and
// for cache-warm replays, because
//
//   - the module skeleton (globals, function list, names) is built serially
//     in entry order before any body exists (lifter.NewSkeleton);
//   - each body is produced by a pure per-function computation (lift →
//     fence removal → standard opt pipeline) that reads only the shared
//     immutable image/graph and writes only its own function;
//   - memory-access SiteIDs are numbered function-locally and rebased
//     serially in entry order afterwards (lifter.FinalizeSites), exactly
//     reproducing the serial whole-module numbering;
//   - a cache hit clones the byte-identical body the same computation
//     produced earlier (keys cover all of its inputs, cache.go).
//
// Only the interprocedural stages — callback-driven inlining and lowering —
// run serially, and the function cache is disabled while callback pruning is
// active (inlining couples function bodies across the module, so the
// per-function key no longer covers a body's inputs).
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/lifter"
	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/opt"
)

// pipeWorkers resolves the configured pipeline worker count.
func (p *Project) pipeWorkers() int {
	if p.Opts.Workers > 0 {
		return p.Opts.Workers
	}
	return runtime.NumCPU()
}

// runIndexed runs f(w, i) for every i in [0,n) on up to workers goroutines;
// w identifies the worker making the call (0 on the serial path), so callers
// can keep per-worker state — the tracer uses it to put each worker's spans
// on its own track. With one worker the calls run in index order and the
// first error stops the remaining ones — the historical serial contract.
// With more workers every index runs to completion and the error returned is
// the erroring index with the lowest value: the same error a serial run
// would surface first.
func runIndexed(workers, n int, f func(w, i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := f(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(w, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Recompile runs lift -> optimize -> lower over the current CFG and returns
// the standalone recompiled binary. Lifting and optimization are parallel
// and cached per function; the output bytes are independent of the worker
// count and of cache warmth (see the package comment above).
func (p *Project) Recompile() (*image.Image, error) {
	rsp := p.Opts.Obs.Begin(p.obsTID(), "pipeline", "recompile")
	lf, err := p.buildOptimizedModule()
	if err != nil {
		rsp.End()
		return nil, err
	}
	lsp := p.Opts.Obs.Begin(p.obsTID(), "pipeline", "lower")
	t0 := time.Now()
	res, err := lower.Lower(lf)
	d := time.Since(t0)
	lsp.End()
	if err != nil {
		rsp.End()
		p.Stats.update(func() { p.Stats.LowerTime += d })
		return nil, err
	}
	p.Stats.update(func() {
		p.Stats.LowerTime += d
		p.Stats.CodeSize = res.CodeSize
		p.Stats.Recompiles++
	})
	rsp.Arg("code_size", res.CodeSize).End()
	return res.Img, nil
}

// buildOptimizedModule produces the fully optimized module for the current
// CFG, ready for lowering.
func (p *Project) buildOptimizedModule() (*lifter.Lifted, error) {
	wall0 := time.Now()
	defer func() {
		d := time.Since(wall0)
		p.Stats.update(func() { p.Stats.LiftOptWall += d })
	}()

	tr := p.Opts.Obs
	ssp := tr.Begin(p.obsTID(), "pipeline", "skeleton")
	lf := lifter.NewSkeleton(p.Img, p.Graph)
	funcs := lifter.SortedFuncs(p.Graph)
	ssp.Arg("funcs", len(funcs)).End()
	lopts := lifter.Options{
		InsertFences: p.Opts.InsertFences,
		NaiveAtomics: p.Opts.NaiveAtomics,
	}
	oo := opt.Options{Verify: p.Opts.VerifyIR, NoCallbacks: p.noCallbacks()}

	// One trace track per pool worker, allocated up front (AllocTID is safe
	// concurrently, but allocating serially keeps track numbering stable):
	// complete events on one track must not overlap, and each worker's
	// per-function spans do overlap those of its siblings.
	var wtids []int64
	if tr.Enabled() {
		nw := p.pipeWorkers()
		if nw > len(funcs) {
			nw = len(funcs)
		}
		if nw < 1 {
			nw = 1
		}
		wtids = make([]int64, nw)
		for w := range wtids {
			wtids[w] = tr.AllocTID(fmt.Sprintf("pipe-worker %d", w))
		}
	}
	workerTID := func(w int) int64 {
		if len(wtids) == 0 {
			return 0
		}
		return wtids[w]
	}

	// Fused per-function lift+optimize requires that no interprocedural
	// stage runs between them; callback pruning introduces one (inlining).
	fused := p.callbackSet == nil
	cacheable := fused && !p.Opts.NoFuncCache

	var keys [][32]byte
	if cacheable {
		if p.cache == nil {
			p.cache = newFuncCache()
		}
		p.cache.beginGen()
		isFunc := make(map[uint64]bool, len(funcs))
		for _, cf := range funcs {
			isFunc[cf.Entry] = true
		}
		ko := cacheKeyOpts{
			insertFences: p.Opts.InsertFences,
			naiveAtomics: p.Opts.NaiveAtomics,
			optimize:     p.Opts.Optimize,
			verifyIR:     p.Opts.VerifyIR,
			removeFences: p.removeFences,
		}
		fsp := tr.Begin(p.obsTID(), "pipeline", "fingerprint")
		keys = make([][32]byte, len(funcs))
		for i, cf := range funcs {
			keys[i] = fingerprintFunc(p.Img, p.Graph, cf, isFunc, ko)
		}
		fsp.Arg("funcs", len(funcs)).End()
	}

	counts := make([]int, len(funcs))
	var hits, misses atomic.Int64
	task := func(w, i int) error {
		cf := funcs[i]
		sp := tr.Begin(workerTID(w), "pipeline", "func",
			obs.Arg{Key: "entry", Val: fmt.Sprintf("%#x", cf.Entry)},
			obs.Arg{Key: "worker", Val: w})
		defer sp.End()
		if cacheable {
			if sites, ok := p.cache.replay(keys[i], lf, cf.Entry); ok {
				counts[i] = sites
				hits.Add(1)
				sp.Arg("cache", "hit").Arg("sites", sites)
				return nil
			}
			misses.Add(1)
			sp.Arg("cache", "miss")
		} else {
			sp.Arg("cache", "off")
		}
		t0 := time.Now()
		sites, err := lf.LiftFunc(cf, lopts)
		ld := time.Since(t0)
		p.Stats.update(func() { p.Stats.LiftTime += ld })
		if err != nil {
			return err
		}
		counts[i] = sites
		sp.Arg("sites", sites).Arg("lift_us", ld.Microseconds())
		if fused {
			f := lf.FuncByAddr[cf.Entry]
			if p.removeFences {
				opt.RemoveFences(f)
			}
			if p.Opts.Optimize {
				t1 := time.Now()
				oerr := opt.RunFunc(f, oo)
				od := time.Since(t1)
				p.Stats.update(func() { p.Stats.OptTime += od })
				if oerr != nil {
					return oerr
				}
				sp.Arg("opt_us", od.Microseconds())
			}
			if cacheable {
				p.cache.put(keys[i], f, sites)
			}
		}
		return nil
	}
	if err := runIndexed(p.pipeWorkers(), len(funcs), task); err != nil {
		return nil, err
	}
	if cacheable {
		p.cache.endGen()
	}
	p.Stats.update(func() {
		p.Stats.CacheHits += int(hits.Load())
		p.Stats.CacheMisses += int(misses.Load())
	})

	fssp := tr.Begin(p.obsTID(), "pipeline", "finalize-sites")
	countByEntry := make(map[uint64]int, len(funcs))
	for i, cf := range funcs {
		countByEntry[cf.Entry] = counts[i]
	}
	lf.FinalizeSites(countByEntry)
	fssp.End()

	if fused {
		// Record the external-entry count and fence state (the fused tasks
		// already applied fence removal per function, pre-optimization).
		n := 0
		for _, f := range lf.Mod.Funcs {
			if f.External {
				n++
			}
		}
		p.Stats.update(func() {
			p.Stats.NumExternal = n
			p.Stats.FencesGone = p.removeFences
		})
	} else {
		// Callback pruning is active: apply the dynamic results module-wide,
		// inline the de-externalized functions (§3.3.3), then optimize —
		// per function, in parallel.
		p.applyDynamicResults(lf)
		if p.Opts.Optimize {
			isp := tr.Begin(p.obsTID(), "pipeline", "inline-opt")
			t0 := time.Now()
			opt.Inline(lf.Mod, 300)
			mfuncs := lf.Mod.Funcs
			oerr := runIndexed(p.pipeWorkers(), len(mfuncs), func(w, i int) error {
				sp := tr.Begin(workerTID(w), "pipeline", "opt-func",
					obs.Arg{Key: "name", Val: mfuncs[i].Name},
					obs.Arg{Key: "worker", Val: w})
				defer sp.End()
				return opt.RunFunc(mfuncs[i], oo)
			})
			od := time.Since(t0)
			p.Stats.update(func() { p.Stats.OptTime += od })
			isp.End()
			if oerr != nil {
				return nil, oerr
			}
		}
	}

	// Whole-module verification catches cross-function damage no matter
	// which path — fresh lift, cache replay, or inline — produced a body.
	vsp := tr.Begin(p.obsTID(), "pipeline", "verify")
	err := ir.Verify(lf.Mod)
	vsp.End()
	if err != nil {
		return nil, fmt.Errorf("core: module verification failed: %w", err)
	}
	return lf, nil
}
