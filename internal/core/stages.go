// Staged artifacts over the tiered content-addressed store.
//
// The pipeline is a sequence of explicit stages —
//
//	disasm -> ICFT trace/merge -> skeleton -> per-function lift+opt
//	  -> finalize -> verify -> lower
//
// — and each stage that is worth replaying declares a typed artifact plus a
// sha256 fingerprint over its full input set (internal/store.Key). This
// file defines the four artifact namespaces, their key composition, and
// their payload envelopes:
//
//	cfg    static disassembly CFG        key: image
//	                                     payload: cfg.Graph JSON
//	trace  one ICFT trace/merge session  key: image, pre-trace graph,
//	                                          fuel, runs (seed+input+exts)
//	                                     payload: counts + merged pairs
//	func   one lifted+optimized body     key: fingerprintFunc (machine
//	                                          bytes, CFG shape, option
//	                                          bits, target id) + image
//	                                     payload: site count + ir.EncodeFunc
//	image  the final lowered image       key: image, merged-CFG
//	                                          fingerprint, option bits,
//	                                          target id, callback set
//	                                     payload: stats + image JSON
//
// Every key starts with a schema tag, so an encoding change orphans old
// entries instead of misreading them; every payload decode failure is a
// miss (the stage recomputes), never an error. The determinism contract
// (DESIGN.md §3) is what makes replay sound: a stage's output is a pure
// function of its fingerprinted inputs, byte-identical at any worker count,
// so recompute and replay are indistinguishable.
package core

import (
	"encoding/binary"
	"sort"

	"repro/internal/image"
	"repro/internal/mx"
	"repro/internal/store"
	"repro/internal/tracer"
)

// Artifact namespaces (one payload schema each).
const (
	nsCFG   = "cfg"
	nsTrace = "trace"
	nsFunc  = "func"
	nsImage = "image"
)

// Schema tags folded into keys; bump alongside any payload format change.
var (
	schemaCFG   = []byte("cfg/1")
	schemaTrace = []byte("trace/1")
	schemaFunc  = []byte("func/2")  // v2: target id joined the key bytes
	schemaImage = []byte("image/2") // v2: target id in key; fences in payload
)

// storeGet probes the project's artifact store and attributes the outcome
// to the per-tier stats counters. Returns misses when the store is off.
// "Disk" in the counter names means any backing tier — disk, remote, or a
// chain of both; the Store interface's tier string distinguishes them in
// spans and in the per-tier Counters.
func (p *Project) storeGet(ns string, key store.Key) ([]byte, string, bool) {
	if p.store == nil {
		return nil, "", false
	}
	data, tier, ok := p.store.Get(ns, key)
	hasBacking := p.store.HasBacking()
	p.Stats.update(func() {
		switch {
		case !ok:
			p.Stats.StoreMemMisses++
			if hasBacking {
				p.Stats.StoreDiskMisses++
			}
		case tier == "mem":
			p.Stats.StoreMemHits++
		default:
			p.Stats.StoreMemMisses++
			p.Stats.StoreDiskHits++
		}
	})
	return data, tier, ok
}

// storePut stores an artifact (write-through to every tier); no-op when the
// store is off.
func (p *Project) storePut(ns string, key store.Key, data []byte) {
	if p.store != nil {
		p.store.Put(ns, key, data)
	}
}

// imageFP is the fingerprint of the input image bytes, the root of every
// artifact key. Computed once per project.
func (p *Project) imageFP() (store.Key, bool) {
	p.imgFPOnce.Do(func() {
		data, err := p.Img.Marshal()
		if err != nil {
			return // imgFPOK stays false: all artifact probes disabled
		}
		p.imgFP = store.KeyOf(data)
		p.imgFPOK = true
	})
	return p.imgFP, p.imgFPOK
}

// graphFP fingerprints the current CFG via its canonical serialized form
// (sorted block list, no map order anywhere).
func (p *Project) graphFP() (store.Key, bool) {
	data, err := p.Graph.Marshal()
	if err != nil {
		return store.Key{}, false
	}
	return store.KeyOf(data), true
}

// cfgKey keys the static-disassembly artifact: the CFG is a pure function
// of the image bytes.
func (p *Project) cfgKey() (store.Key, bool) {
	imgFP, ok := p.imageFP()
	if !ok {
		return store.Key{}, false
	}
	return store.KeyOf(schemaCFG, imgFP[:]), true
}

// traceKey keys one trace/merge session: the image, the graph the session
// started from, the fuel bound, and every run's full identity (seed, input
// bytes, sorted host-function names — the functions themselves are code,
// assumed stable for a given name set).
func (p *Project) traceKey(runs []tracer.Run) (store.Key, bool) {
	imgFP, ok := p.imageFP()
	if !ok {
		return store.Key{}, false
	}
	gFP, ok := p.graphFP()
	if !ok {
		return store.Key{}, false
	}
	parts := [][]byte{schemaTrace, imgFP[:], gFP[:], store.U64(p.Opts.Fuel), store.U64(uint64(len(runs)))}
	for _, r := range runs {
		parts = append(parts, store.U64(uint64(r.Seed)), r.Input)
		names := make([]string, 0, len(r.Exts))
		for name := range r.Exts {
			names = append(names, name)
		}
		sort.Strings(names)
		parts = append(parts, store.U64(uint64(len(names))))
		for _, name := range names {
			parts = append(parts, []byte(name))
		}
	}
	return store.KeyOf(parts...), true
}

// funcKey widens a per-function fingerprint (cache.go) into a store key by
// folding in the image fingerprint: bodies reference image data beyond
// their own machine bytes (original sections mapped as globals), so a
// shared disk tier must never alias bodies across input images.
func (p *Project) funcKey(fp [32]byte) (store.Key, bool) {
	imgFP, ok := p.imageFP()
	if !ok {
		return store.Key{}, false
	}
	return store.KeyOf(schemaFunc, fp[:], imgFP[:]), true
}

// imageKey keys the final lowered image: input image bytes, merged-CFG
// fingerprint, option bits, and the dynamic-analysis state that shapes the
// module (callback set, fence removal — the latter is in the option bits).
func (p *Project) imageKey() (store.Key, bool) {
	imgFP, ok := p.imageFP()
	if !ok {
		return store.Key{}, false
	}
	gFP, ok := p.graphFP()
	if !ok {
		return store.Key{}, false
	}
	tgt := mx.TargetByName(p.Opts.Target)
	if tgt == nil {
		return store.Key{}, false
	}
	ko := cacheKeyOpts{
		insertFences: p.Opts.InsertFences,
		naiveAtomics: p.Opts.NaiveAtomics,
		optimize:     p.Opts.Optimize,
		verifyIR:     p.Opts.VerifyIR,
		removeFences: p.removeFences,
		target:       tgt.ID,
	}
	parts := [][]byte{schemaImage, imgFP[:], gFP[:], {ko.bits(), ko.target}}
	if p.callbackSet == nil {
		parts = append(parts, store.U64(^uint64(0)))
	} else {
		addrs := make([]uint64, 0, len(p.callbackSet))
		for a := range p.callbackSet {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		parts = append(parts, store.U64(uint64(len(addrs))))
		for _, a := range addrs {
			parts = append(parts, store.U64(a))
		}
	}
	return store.KeyOf(parts...), true
}

// encodeTraceArtifact serializes a trace session: the counters the caller
// reports (Table 4 prints ICFTs, so replay must restore them exactly) and
// the merged pairs in merge order.
func encodeTraceArtifact(res *tracer.Result) []byte {
	buf := make([]byte, 0, 40+16*len(res.Merged))
	u64 := func(x uint64) { buf = binary.LittleEndian.AppendUint64(buf, x) }
	u64(uint64(res.ICFTs))
	u64(uint64(res.NewTargets))
	u64(uint64(res.Runs))
	u64(res.Insts)
	u64(uint64(len(res.Merged)))
	for _, st := range res.Merged {
		u64(st.Site)
		u64(st.Target)
	}
	return buf
}

// decodeTraceArtifact parses encodeTraceArtifact's form; !ok on any
// mismatch (the caller falls back to a live trace).
func decodeTraceArtifact(data []byte) (*tracer.Result, bool) {
	if len(data) < 40 {
		return nil, false
	}
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(data[off:]) }
	n := u64(32)
	if uint64(len(data)) != 40+16*n {
		return nil, false
	}
	res := &tracer.Result{
		ICFTs:      int(u64(0)),
		NewTargets: int(u64(8)),
		Runs:       int(u64(16)),
		Insts:      u64(24),
	}
	res.Merged = make([]tracer.SiteTarget, n)
	for i := range res.Merged {
		res.Merged[i] = tracer.SiteTarget{Site: u64(40 + 16*i), Target: u64(48 + 16*i)}
	}
	return res, true
}

// encodeImageArtifact serializes the final lowered image plus the scalar
// stats a replayed Recompile must restore (code size, external-entry count,
// emitted-fence count, fence state) so cold and replayed runs report
// identically.
func encodeImageArtifact(img *image.Image, codeSize, numExternal, fences int, fencesGone bool) ([]byte, bool) {
	data, err := img.Marshal()
	if err != nil {
		return nil, false
	}
	buf := make([]byte, 0, 25+len(data))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(codeSize))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(numExternal))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(fences))
	if fencesGone {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return append(buf, data...), true
}

// decodeImageArtifact parses encodeImageArtifact's form; !ok on any
// mismatch (the caller rebuilds the image through the full pipeline).
func decodeImageArtifact(data []byte) (img *image.Image, codeSize, numExternal, fences int, fencesGone, ok bool) {
	if len(data) < 25 {
		return nil, 0, 0, 0, false, false
	}
	img, err := image.Unmarshal(data[25:])
	if err != nil {
		return nil, 0, 0, 0, false, false
	}
	codeSize = int(binary.LittleEndian.Uint64(data))
	numExternal = int(binary.LittleEndian.Uint64(data[8:]))
	fences = int(binary.LittleEndian.Uint64(data[16:]))
	return img, codeSize, numExternal, fences, data[24] != 0, true
}
