package core

// Internal edge-case tests for the store-backed function cache: generational
// pruning keeps the memory tier bounded to the live bodies across an additive
// session, and a stored body whose symbol references no longer resolve in a
// fresh module degrades to a counted miss that the recompile then repairs.

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/cc"
	"repro/internal/ir"
	"repro/internal/lifter"
)

const edgeFptrSrc = `
extern input_byte;
func h_add(x) { return x + 10; }
func h_mul(x) { return x * 10; }
func h_neg(x) { return -x; }
var table[3];
func main() {
	store64(table, h_add);
	store64(table + 8, h_mul);
	store64(table + 16, h_neg);
	var sum = 0;
	var c = input_byte();
	while (c != -1) {
		var f = load64(table + (c - '0') * 8);
		sum = sum + f(7);
		c = input_byte();
	}
	return sum;
}`

func edgeProject(t *testing.T) *Project {
	t.Helper()
	img, _, err := cc.Compile(edgeFptrSrc, cc.Config{Name: "t", Opt: 2})
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.VerifyIR = true
	p, err := NewProject(img, o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStorePruningBoundsMemoryTier drives the additive session, whose every
// discovery changes one function's fingerprint and strands its old body. The
// generational bracket around each recompile must evict a stranded entry the
// first generation it goes unused, so the function namespace ends holding
// exactly one body per live function — not one per (function, graph version).
func TestStorePruningBoundsMemoryTier(t *testing.T) {
	p := edgeProject(t)
	res, err := p.RunAdditive(Input{Data: []byte("012"), Seed: 3}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recompiles < 3 {
		t.Fatalf("recompiles = %d, want >= 3", res.Recompiles)
	}
	if p.Stats.StoreEvictions == 0 {
		t.Fatal("additive session stranded bodies but evicted nothing")
	}
	if got, want := p.store.Mem().Len(nsFunc), p.Stats.Funcs; got != want {
		t.Fatalf("function namespace holds %d bodies after convergence, want %d (one per live function)", got, want)
	}
}

// TestStaleFuncArtifactDegradesToMiss plants a well-formed body artifact
// under a function's exact store key whose serialized references name a
// symbol the fresh module does not define — the persisted analogue of a
// module that renamed or dropped a global. Replay must reject it as a miss,
// the recompile must produce the same bytes a cache-less run does, and the
// poisoned entry must end up overwritten by the freshly built body.
func TestStaleFuncArtifactDegradesToMiss(t *testing.T) {
	p := edgeProject(t)

	funcs := lifter.SortedFuncs(p.Graph)
	if len(funcs) == 0 {
		t.Fatal("no functions in graph")
	}
	isFunc := make(map[uint64]bool, len(funcs))
	for _, cf := range funcs {
		isFunc[cf.Entry] = true
	}
	ko := cacheKeyOpts{
		insertFences: p.Opts.InsertFences,
		naiveAtomics: p.Opts.NaiveAtomics,
		optimize:     p.Opts.Optimize,
		verifyIR:     p.Opts.VerifyIR,
		removeFences: p.removeFences,
	}
	key, ok := p.funcKey(fingerprintFunc(p.Img, p.Graph, funcs[0], isFunc, ko))
	if !ok {
		t.Fatal("funcKey unavailable")
	}

	pm := ir.NewModule("poison")
	pg := pm.NewGlobal("no_such_global", 8)
	pf := pm.NewFunc("poison")
	pb := pf.NewBlock("entry")
	ga := pb.Append(ir.OpGlobalAddr)
	ga.Global = pg
	pb.Append(ir.OpRet)
	enc, err := ir.EncodeFunc(pf)
	if err != nil {
		t.Fatal(err)
	}
	poison := make([]byte, 8, 8+len(enc))
	binary.LittleEndian.PutUint64(poison, 0)
	poison = append(poison, enc...)
	p.storePut(nsFunc, key, poison)

	rec, err := p.Recompile()
	if err != nil {
		t.Fatalf("recompile over stale artifact errored: %v", err)
	}
	got, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.CacheHits != 0 {
		t.Fatalf("stale artifact was replayed as %d hits", p.Stats.CacheHits)
	}
	if p.Stats.CacheMisses != p.Stats.Funcs {
		t.Fatalf("misses = %d, want %d (every function freshly lifted)", p.Stats.CacheMisses, p.Stats.Funcs)
	}

	// Baseline: same image, cache off, serial.
	img2, _, err := cc.Compile(edgeFptrSrc, cc.Config{Name: "t", Opt: 2})
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.VerifyIR = true
	o.Workers = 1
	o.NoFuncCache = true
	p2, err := NewProject(img2, o)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := p2.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := rec2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recompile over stale artifact diverged from cache-less baseline")
	}

	// The entry was repaired: the stored payload is now the fresh body, not
	// the poison.
	data, _, ok := p.store.Get(nsFunc, key)
	if !ok {
		t.Fatal("function entry missing after recompile")
	}
	if bytes.Equal(data, poison) {
		t.Fatal("poisoned artifact survived the recompile")
	}
}
