package core_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/image"
)

func marshalImg(t *testing.T, img *image.Image) []byte {
	t.Helper()
	b, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func recompileWith(t *testing.T, img *image.Image, mod func(*core.Options)) (*core.Project, []byte) {
	t.Helper()
	o := options()
	if mod != nil {
		mod(&o)
	}
	p, err := core.NewProject(img, o)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	return p, marshalImg(t, rec)
}

// TestRecompileIdentityAcrossWorkersAndCache is the differential test behind
// the pipeline's determinism contract (DESIGN.md §3): the recompiled bytes
// must be identical for the historical serial path (-jpipe 1, cache off), a
// parallel run, a cold cached run, and a cache-warm replay.
func TestRecompileIdentityAcrossWorkersAndCache(t *testing.T) {
	for _, tc := range []struct{ name, src string }{
		{"threaded", threadedSrc},
		{"fptr", fptrSrc},
	} {
		t.Run(tc.name, func(t *testing.T) {
			img := compile(t, tc.src, 2)
			_, serial := recompileWith(t, img, func(o *core.Options) {
				o.Workers = 1
				o.NoFuncCache = true
			})
			_, parallel := recompileWith(t, img, func(o *core.Options) {
				o.Workers = 8
				o.NoFuncCache = true
			})
			if !bytes.Equal(serial, parallel) {
				t.Fatal("parallel recompile diverged from serial bytes")
			}

			// Cold cached recompile, then a cache-warm replay on the same
			// project: both must reproduce the serial bytes exactly.
			o := options()
			o.Workers = 8
			p, err := core.NewProject(img, o)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := p.Recompile()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial, marshalImg(t, cold)) {
				t.Fatal("cold cached recompile diverged from serial bytes")
			}
			if p.Stats.CacheHits != 0 || p.Stats.CacheMisses != p.Stats.Funcs {
				t.Fatalf("cold run: hits=%d misses=%d funcs=%d",
					p.Stats.CacheHits, p.Stats.CacheMisses, p.Stats.Funcs)
			}
			warm, err := p.Recompile()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial, marshalImg(t, warm)) {
				t.Fatal("cache-warm recompile diverged from serial bytes")
			}
			// The warm replay is served whole by the image-level artifact
			// (memory tier): nothing was re-fingerprinted or re-lifted, and
			// the function bodies stored by the cold run are still live.
			if p.Stats.CacheHits != 0 || p.Stats.CacheMisses != p.Stats.Funcs {
				t.Fatalf("warm run: hits=%d misses=%d funcs=%d (image replay must bypass the function stage)",
					p.Stats.CacheHits, p.Stats.CacheMisses, p.Stats.Funcs)
			}
			if p.Stats.StoreMemHits == 0 {
				t.Fatal("warm run: image artifact was not served from the memory tier")
			}
			if p.CachedFuncs() != p.Stats.Funcs {
				t.Fatalf("cache holds %d bodies, want %d", p.CachedFuncs(), p.Stats.Funcs)
			}
			if p.Stats.LiftOptWall == 0 {
				t.Fatal("LiftOptWall not recorded")
			}
		})
	}
}

// TestAdditiveBatchedConvergence drives the incremental additive loop over
// the function-pointer dispatch workload at -O2: three handler entries are
// unknown statically, so convergence needs at least three loops. The batched
// loop must converge well before maxLoops, recompile incrementally (cache
// misses bounded by the functions each discovery touches, not by a full
// re-lift per loop), and land on exactly the bytes a serial cache-less
// additive session and a fully traced recompile produce.
func TestAdditiveBatchedConvergence(t *testing.T) {
	img := compile(t, fptrSrc, 2)
	in := core.Input{Data: []byte("012"), Seed: 3}
	const maxLoops = 8
	want := runImg(t, img, in)

	p, err := core.NewProject(img, options())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunAdditive(in, maxLoops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recompiles < 3 {
		t.Fatalf("recompiles = %d, want >= 3 (three unknown handlers)", res.Recompiles)
	}
	if res.Recompiles >= maxLoops {
		t.Fatalf("recompiles = %d, did not converge before maxLoops %d", res.Recompiles, maxLoops)
	}
	if res.Result.ExitCode != want.ExitCode {
		t.Fatalf("exit %d, want %d", res.Result.ExitCode, want.ExitCode)
	}

	// Incrementality: after the first (cold) recompile, each loop may
	// re-lift only the function owning the missed site plus the newly
	// discovered callee — not the whole module.
	if p.Stats.CacheHits == 0 {
		t.Fatal("incremental recompiles replayed nothing from cache")
	}
	if max := p.Stats.Funcs + 2*res.Recompiles; p.Stats.CacheMisses > max {
		t.Fatalf("cache misses %d exceed incremental bound %d (funcs=%d, recompiles=%d)",
			p.Stats.CacheMisses, max, p.Stats.Funcs, res.Recompiles)
	}

	// The serial, cache-less additive session lands on the same bytes.
	o := options()
	o.Workers = 1
	o.NoFuncCache = true
	p2, err := core.NewProject(img, o)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p2.RunAdditive(in, maxLoops)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalImg(t, res.Img), marshalImg(t, res2.Img)) {
		t.Fatal("cached incremental additive bytes diverge from serial cache-less bytes")
	}

	// And so does a recompile after upfront tracing of the same input: the
	// additive loop converged onto the fully-traced CFG, byte for byte.
	p3, err := core.NewProject(img, options())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.Trace([]core.Input{in}); err != nil {
		t.Fatal(err)
	}
	rec3, err := p3.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalImg(t, res.Img), marshalImg(t, rec3)) {
		t.Fatal("additive final bytes diverge from fully-traced recompile")
	}
}
