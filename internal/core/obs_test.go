package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestObsEventSetStableAcrossWorkers is the tracing side of the pipeline
// determinism contract: a serial (-jpipe 1) and a wide parallel recompile of
// the same binary must record the identical span *set* (category/name/phase
// keys) — only timestamps, track ids, and track metadata may differ.
func TestObsEventSetStableAcrossWorkers(t *testing.T) {
	img := compile(t, fptrSrc, 2)
	shape := func(workers int) []string {
		tr := obs.New()
		o := options()
		o.Workers = workers
		o.NoFuncCache = true
		o.Obs = tr
		p, err := core.NewProject(img, o)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Recompile(); err != nil {
			t.Fatal(err)
		}
		if n := tr.OpenSpans(); n != 0 {
			t.Fatalf("workers=%d: %d span(s) still open after Recompile", workers, n)
		}
		return tr.Keys()
	}
	serial, parallel := shape(1), shape(8)
	if len(serial) == 0 {
		t.Fatal("serial recompile recorded no spans")
	}
	if strings.Join(serial, "\n") != strings.Join(parallel, "\n") {
		t.Fatalf("event set differs across worker widths:\nserial:   %v\nparallel: %v",
			serial, parallel)
	}
	for _, want := range []string{
		"pipeline/recompile/X", "pipeline/skeleton/X", "pipeline/func/X",
		"pipeline/finalize-sites/X", "pipeline/verify/X", "pipeline/lower/X",
	} {
		found := false
		for _, k := range serial {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("event set missing %q: %v", want, serial)
		}
	}
}

// TestObsAdditiveTimeline checks the additive session's convergence
// timeline: one entry per recompiling loop, 0-based loop indices, every loop
// discovering at least one miss, and the span balance holding across the
// whole session (trace, guest runs, recompiles).
func TestObsAdditiveTimeline(t *testing.T) {
	img := compile(t, fptrSrc, 2)
	tr := obs.New()
	o := options()
	o.Obs = tr
	p, err := core.NewProject(img, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunAdditive(core.Input{Data: []byte("012"), Seed: 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("%d span(s) still open after RunAdditive", n)
	}
	if len(res.Timeline) != res.Recompiles {
		t.Fatalf("timeline has %d entries, want one per recompile (%d)",
			len(res.Timeline), res.Recompiles)
	}
	var relifted, hits int
	for i, st := range res.Timeline {
		if st.Loop != i {
			t.Errorf("timeline[%d].Loop = %d, want %d", i, st.Loop, i)
		}
		if st.Misses == 0 {
			t.Errorf("timeline[%d] recompiled without misses", i)
		}
		if st.Relifted == 0 {
			t.Errorf("timeline[%d] integrated misses but re-lifted nothing", i)
		}
		relifted += st.Relifted
		hits += st.CacheHits
	}
	// The per-loop cache splits must reconcile with the project totals minus
	// the initial cold recompile (which lifted every function, no lookups
	// recorded as timeline entries).
	if got := p.Stats.CacheMisses - p.Stats.Funcs; relifted != got {
		t.Errorf("timeline relifted sum = %d, want %d (total misses minus cold lift)",
			relifted, got)
	}
	if hits != p.Stats.CacheHits {
		t.Errorf("timeline cache-hit sum = %d, want %d", hits, p.Stats.CacheHits)
	}

	// The additive spans are on record: one additive-loop span per VM run
	// (converged loop included), each paired with a guest-run span.
	var loops, guests int
	for _, k := range tr.Keys() {
		switch k {
		case "additive/additive-loop/X":
			loops++
		case "guest/guest-run/X":
			guests++
		}
	}
	if loops != res.Recompiles+1 {
		t.Errorf("additive-loop spans = %d, want %d (recompiles + converged run)",
			loops, res.Recompiles+1)
	}
	if guests != loops {
		t.Errorf("guest-run spans = %d, want %d (one per additive loop)", guests, loops)
	}
}

// TestObsStatsTotalUsesWall checks the Stats.Total fix: with per-function
// lift/opt CPU times summed across workers, the stage total must use the
// recorded lift+opt wall clock instead of double-counting the per-worker
// sums.
func TestObsStatsTotalUsesWall(t *testing.T) {
	s := core.Stats{}
	s.DisasmTime, s.TraceTime, s.LowerTime = 1, 2, 4
	s.LiftTime, s.OptTime = 100, 200
	if got := s.Total(); got != 307 {
		t.Fatalf("serial total = %d, want 307 (no wall recorded, sum lift+opt)", got)
	}
	s.LiftOptWall = 50
	if got := s.Total(); got != 57 {
		t.Fatalf("parallel total = %d, want 57 (wall replaces lift+opt sums)", got)
	}
}
