package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramGolden pins the full text rendering of a histogram family:
// ascending le order, cumulative bucket counts, the +Inf bucket, _sum and
// _count, and label escaping inside _bucket lines.
func TestHistogramGolden(t *testing.T) {
	ms := NewMetricSet()
	h := ms.Histogram("job_seconds", "Job latency.", []float64{0.1, 1, 10})
	h.Observe(0.05, Label{Key: "kind", Val: "recompile"})
	h.Observe(0.5, Label{Key: "kind", Val: "recompile"})
	h.Observe(0.5, Label{Key: "kind", Val: "recompile"})
	h.Observe(99, Label{Key: "kind", Val: "recompile"})
	h.Observe(1, Label{Key: "kind", Val: `we"ird\`}) // boundary goes in le="1"; value escaped

	var sb strings.Builder
	if err := ms.Write(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP job_seconds Job latency.
# TYPE job_seconds histogram
job_seconds_bucket{kind="recompile",le="0.1"} 1
job_seconds_bucket{kind="recompile",le="1"} 3
job_seconds_bucket{kind="recompile",le="10"} 3
job_seconds_bucket{kind="recompile",le="+Inf"} 4
job_seconds_sum{kind="recompile"} 100.05
job_seconds_count{kind="recompile"} 4
job_seconds_bucket{kind="we\"ird\\",le="0.1"} 0
job_seconds_bucket{kind="we\"ird\\",le="1"} 1
job_seconds_bucket{kind="we\"ird\\",le="10"} 1
job_seconds_bucket{kind="we\"ird\\",le="+Inf"} 1
job_seconds_sum{kind="we\"ird\\"} 1
job_seconds_count{kind="we\"ird\\"} 1
`
	if sb.String() != want {
		t.Errorf("histogram rendering:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestHistogramZeroObservations: a registered family with no observations
// renders its HELP/TYPE headers only — still a valid exposition.
func TestHistogramZeroObservations(t *testing.T) {
	ms := NewMetricSet()
	ms.Histogram("quiet_seconds", "Never observed.", []float64{1})
	var sb strings.Builder
	if err := ms.Write(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP quiet_seconds Never observed.\n# TYPE quiet_seconds histogram\n"
	if sb.String() != want {
		t.Errorf("zero-observation family:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestHistogramBucketNormalization: buckets sort, dedup, drop explicit
// +Inf, and an empty list selects the default ladder. An unlabeled child
// renders with the bare le label.
func TestHistogramBucketNormalization(t *testing.T) {
	ms := NewMetricSet()
	h := ms.Histogram("h", "", []float64{5, 1, 5, math.Inf(+1)})
	h.Observe(3)
	var sb strings.Builder
	if err := ms.Write(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE h histogram
h_bucket{le="1"} 0
h_bucket{le="5"} 1
h_bucket{le="+Inf"} 1
h_sum 3
h_count 1
`
	if sb.String() != want {
		t.Errorf("bucket normalization:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}

	def := NewMetricSet().Histogram("d", "", nil)
	if len(def.buckets) != len(DefSecondsBuckets) {
		t.Errorf("default buckets: got %d want %d", len(def.buckets), len(DefSecondsBuckets))
	}
}

// TestHistogramMisuse: Set on a histogram, Observe on a counter, and a
// reserved le label are surfaced as Write errors, not silent corruption.
func TestHistogramMisuse(t *testing.T) {
	for name, build := range map[string]func(*MetricSet){
		"set-on-histogram":  func(ms *MetricSet) { ms.Histogram("m", "", nil).Set(1) },
		"observe-on-count":  func(ms *MetricSet) { ms.Counter("m", "").Observe(1) },
		"reserved-le-label": func(ms *MetricSet) { ms.Histogram("m", "", nil).Observe(1, Label{Key: "le", Val: "x"}) },
	} {
		ms := NewMetricSet()
		build(ms)
		if err := ms.Write(&strings.Builder{}); err == nil {
			t.Errorf("%s: Write did not surface the misuse", name)
		}
	}
}

// TestHistogramConcurrentObserve: concurrent Observe and Write race-free
// (run under -race), with every observation accounted.
func TestHistogramConcurrentObserve(t *testing.T) {
	ms := NewMetricSet()
	h := ms.Histogram("c_seconds", "", []float64{0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.1, Label{Key: "w", Val: "x"})
				if i%100 == 0 {
					ms.Write(&strings.Builder{})
				}
			}
		}()
	}
	wg.Wait()
	var sb strings.Builder
	if err := ms.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `c_seconds_count{w="x"} 8000`) {
		t.Errorf("lost observations:\n%s", sb.String())
	}
}
