package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilSafety exercises every entry point on a nil tracer/span: the
// disabled-path contract is that instrumented code never branches on
// "tracing on?" — it calls unconditionally and nil receivers no-op.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tid := tr.AllocTID("x"); tid != 0 {
		t.Fatalf("nil AllocTID = %d, want 0", tid)
	}
	sp := tr.Begin(0, "cat", "name", Arg{Key: "k", Val: 1})
	if sp != nil {
		t.Fatal("nil tracer Begin returned non-nil span")
	}
	sp.Arg("k2", 2) // must not panic
	sp.End()
	tr.Instant(0, "cat", "mark")
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("nil OpenSpans = %d", n)
	}
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil Events = %v", evs)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var arr []any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil || len(arr) != 0 {
		t.Fatalf("nil trace = %q, want empty JSON array", buf.String())
	}
}

// TestSpanBalance checks the open-span accounting: Begin increments, End
// decrements, and a second End on the same span is a no-op (records once).
func TestSpanBalance(t *testing.T) {
	tr := New()
	a := tr.Begin(0, "c", "outer")
	b := tr.Begin(0, "c", "inner")
	if n := tr.OpenSpans(); n != 2 {
		t.Fatalf("open = %d, want 2", n)
	}
	b.End()
	b.End() // idempotent
	a.End()
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("open after End = %d, want 0", n)
	}
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2 (double End must record once)", len(evs))
	}
	for _, ev := range evs {
		if ev.Ph != PhaseComplete {
			t.Errorf("event %q ph = %q, want %q", ev.Name, ev.Ph, PhaseComplete)
		}
		if ev.Dur < 0 {
			t.Errorf("event %q dur = %d, want >= 0", ev.Name, ev.Dur)
		}
	}
}

// TestChromeTraceFormat validates the wire format: a JSON array where every
// event carries ph/ts/pid/tid, complete events carry dur, instants carry the
// thread scope, metadata events sort first, and span args come through.
func TestChromeTraceFormat(t *testing.T) {
	tr := New()
	wtid := tr.AllocTID("worker 0")
	if wtid == 0 {
		t.Fatal("AllocTID returned the main track")
	}
	tr.Begin(wtid, "pipeline", "lift", Arg{Key: "funcs", Val: 3}).
		Arg("cache", "miss").End()
	tr.Instant(0, "bench", "converged")

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	for i, ev := range evs {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %d missing %q: %v", i, key, ev)
			}
		}
	}
	if ph := evs[0]["ph"]; ph != PhaseMetadata {
		t.Errorf("first event ph = %v, want metadata first", ph)
	}
	var sawSpan, sawInstant bool
	for _, ev := range evs {
		switch ev["ph"] {
		case PhaseComplete:
			sawSpan = true
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
			args, ok := ev["args"].(map[string]any)
			if !ok || args["funcs"] != float64(3) || args["cache"] != "miss" {
				t.Errorf("span args = %v, want funcs=3 cache=miss", ev["args"])
			}
		case PhaseInstant:
			sawInstant = true
			if s := ev["s"]; s != "t" {
				t.Errorf("instant scope = %v, want t", s)
			}
		}
	}
	if !sawSpan || !sawInstant {
		t.Fatalf("missing phases: span=%v instant=%v", sawSpan, sawInstant)
	}
}

// TestKeysExcludeMetadata checks the event-set key view: metadata (track
// names) excluded, keys sorted, and identical regardless of which tracks the
// spans landed on — the basis of the cross-worker-width determinism tests.
func TestKeysExcludeMetadata(t *testing.T) {
	shape := func(tracks int) []string {
		tr := New()
		tids := make([]int64, tracks)
		for i := range tids {
			tids[i] = tr.AllocTID("w")
		}
		tr.Begin(tids[1%tracks], "c", "b").End()
		tr.Begin(tids[0], "c", "a").End()
		tr.Instant(tids[0], "c", "i")
		return tr.Keys()
	}
	one, four := shape(1), shape(4)
	want := []string{"c/a/X", "c/b/X", "c/i/i"}
	if strings.Join(one, ",") != strings.Join(want, ",") {
		t.Fatalf("keys = %v, want %v", one, want)
	}
	if strings.Join(one, ",") != strings.Join(four, ",") {
		t.Fatalf("keys differ across track counts: %v vs %v", one, four)
	}
}

// TestPrometheusFormat validates the text exposition: HELP/TYPE headers,
// label rendering with escaping, deterministic sample order, and g-format
// values.
func TestPrometheusFormat(t *testing.T) {
	ms := NewMetricSet()
	ms.Counter("vm_insts_total", "Guest instructions.").Set(12345)
	g := ms.Gauge("pipeline_stage_seconds", `Stage "wall" time\per stage.`)
	g.Set(0.25, Label{Key: "stage", Val: "lift"})
	g.Set(1.5, Label{Key: "stage", Val: `dis"asm\`})

	var buf bytes.Buffer
	if err := ms.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP vm_insts_total Guest instructions.\n",
		"# TYPE vm_insts_total counter\n",
		"vm_insts_total 12345\n",
		"# TYPE pipeline_stage_seconds gauge\n",
		`pipeline_stage_seconds{stage="lift"} 0.25` + "\n",
		`pipeline_stage_seconds{stage="dis\"asm\\"} 1.5` + "\n",
		`Stage "wall" time\\per stage.` + "\n", // HELP escapes backslash, not quotes
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Samples within a family sort by label signature regardless of Set order.
	if i, j := strings.Index(out, `stage="dis`), strings.Index(out, `stage="lift"`); i > j {
		t.Errorf("samples not sorted by label signature:\n%s", out)
	}
}

// TestPrometheusSetOverwrites checks re-Set semantics: same labels overwrite,
// different labels append.
func TestPrometheusSetOverwrites(t *testing.T) {
	ms := NewMetricSet()
	m := ms.Gauge("x", "")
	m.Set(1, Label{Key: "a", Val: "1"})
	m.Set(2, Label{Key: "a", Val: "1"})
	m.Set(3, Label{Key: "a", Val: "2"})
	var buf bytes.Buffer
	if err := ms.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `{a="1"} 1`) || !strings.Contains(out, `{a="1"} 2`) {
		t.Errorf("same-label Set did not overwrite:\n%s", out)
	}
	if !strings.Contains(out, `{a="2"} 3`) {
		t.Errorf("distinct-label Set missing:\n%s", out)
	}
}

// TestPrometheusInvalidNames checks that bad metric and label names are
// rejected at Write time instead of producing corrupt output.
func TestPrometheusInvalidNames(t *testing.T) {
	ms := NewMetricSet()
	ms.Counter("bad-name", "").Set(1)
	if err := ms.Write(&bytes.Buffer{}); err == nil {
		t.Error("invalid metric name accepted")
	}
	ms2 := NewMetricSet()
	ms2.Counter("ok_name", "").Set(1, Label{Key: "bad-label", Val: "v"})
	if err := ms2.Write(&bytes.Buffer{}); err == nil {
		t.Error("invalid label name accepted")
	}
}

// TestWriteChromeTraceStableOrder checks that the serialized event order is a
// function of the event list, not of recording interleaving: same spans
// recorded in a different order serialize identically.
func TestWriteChromeTraceStableOrder(t *testing.T) {
	render := func(reverse bool) string {
		tr := New()
		// Two spans on fixed tracks, begun together but *recorded* (ended) in
		// opposite orders; (ts, tid, name) sorting must converge on the same
		// serialization either way.
		t1, t2 := tr.AllocTID("a"), tr.AllocTID("b")
		sx := tr.Begin(t1, "c", "x")
		sy := tr.Begin(t2, "c", "y")
		if reverse {
			sy.End()
			sx.End()
		} else {
			sx.End()
			sy.End()
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var evs []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, ev := range evs {
			if ev["ph"] == PhaseMetadata {
				continue
			}
			names = append(names, ev["name"].(string))
		}
		return strings.Join(names, ",")
	}
	if a, b := render(false), render(true); a != b {
		t.Fatalf("serialization depends on record order: %q vs %q", a, b)
	}
}
