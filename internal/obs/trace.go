// Chrome trace_event export: the tracer's events serialized as the JSON
// array-of-events form of the Trace Event Format, which chrome://tracing and
// Perfetto's JSON importer both accept. Every event carries ph/ts/pid/tid
// (and dur for complete events); args render as a JSON object with sorted
// keys, so the encoding of a given event list is deterministic.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// jsonEvent is the wire form of one trace event.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes every recorded event as a JSON array. Events are
// ordered by (ts, tid, name) so the file is stable for a given event list
// regardless of the order concurrent spans were recorded in. A nil tracer
// writes an empty array.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		// Metadata first, so track names precede their events.
		if (a.Ph == PhaseMetadata) != (b.Ph == PhaseMetadata) {
			return a.Ph == PhaseMetadata
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Name < b.Name
	})
	out := make([]jsonEvent, len(evs))
	for i, ev := range evs {
		je := jsonEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: ev.Ph,
			TS: ev.TS, PID: ev.PID, TID: ev.TID,
		}
		if ev.Ph == PhaseComplete {
			dur := ev.Dur
			je.Dur = &dur
		}
		if ev.Ph == PhaseInstant {
			je.S = "t" // thread-scoped instant
		}
		if len(ev.Args) > 0 {
			je.Args = make(map[string]any, len(ev.Args))
			for _, a := range ev.Args {
				je.Args[a.Key] = a.Val
			}
		}
		out[i] = je
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes the Chrome trace JSON to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	werr := t.WriteChromeTrace(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: write %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("obs: close %s: %w", path, cerr)
	}
	return nil
}
