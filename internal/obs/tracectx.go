// W3C-style trace context: the fleet-tracing identity that stitches a
// client's span trace, the daemon's span trace, and the access log into one
// timeline. A TraceContext is the (trace id, span id, flags) triple of the
// W3C Trace Context `traceparent` header (version 00); job POSTs and
// store.Remote requests carry it, polynimad joins or starts the trace, and
// every job span is tagged with the 32-hex trace id.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// TraceContext identifies one position in a distributed trace: the
// trace-wide id, the id of the current (parent) span, and the W3C flags
// byte (bit 0 = sampled).
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// FlagSampled is the W3C trace-flags sampled bit.
const FlagSampled = 0x01

// NewTraceContext starts a fresh trace: random trace and span ids, sampled.
func NewTraceContext() TraceContext {
	tc := TraceContext{Flags: FlagSampled}
	rand.Read(tc.TraceID[:])
	rand.Read(tc.SpanID[:])
	return tc
}

// Valid reports whether the context names a real trace position: the W3C
// rules forbid all-zero trace and span ids.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceIDHex renders the 32-hex trace id — the value of the
// X-Polynima-Trace-Id response header and the access log's trace_id field.
func (tc TraceContext) TraceIDHex() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDHex renders the 16-hex span id.
func (tc TraceContext) SpanIDHex() string { return hex.EncodeToString(tc.SpanID[:]) }

// Traceparent renders the context as a version-00 W3C traceparent header
// value: "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>".
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceIDHex(), tc.SpanIDHex(), tc.Flags)
}

// Child returns a context in the same trace with a fresh random span id —
// what a server propagating the trace into its own work (or onward to an
// upstream) uses as its position.
func (tc TraceContext) Child() TraceContext {
	child := tc
	rand.Read(child.SpanID[:])
	return child
}

// ParseTraceparent parses a traceparent header value. Unknown future
// versions are accepted if their first two fields parse (per the W3C
// forward-compatibility rule); version "ff", malformed hex, wrong field
// widths, and all-zero ids are rejected.
func ParseTraceparent(s string) (TraceContext, bool) {
	// version(2) - trace-id(32) - parent-id(16) - flags(2), dash-separated;
	// future versions may append "-..." suffixes.
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	if len(s) > 55 && s[55] != '-' {
		return TraceContext{}, false
	}
	ver, err := hex.DecodeString(s[0:2])
	if err != nil || ver[0] == 0xff {
		return TraceContext{}, false
	}
	if ver[0] == 0 && len(s) != 55 {
		return TraceContext{}, false
	}
	var tc TraceContext
	tid, err := hex.DecodeString(s[3:35])
	if err != nil {
		return TraceContext{}, false
	}
	sid, err := hex.DecodeString(s[36:52])
	if err != nil {
		return TraceContext{}, false
	}
	fl, err := hex.DecodeString(s[53:55])
	if err != nil {
		return TraceContext{}, false
	}
	copy(tc.TraceID[:], tid)
	copy(tc.SpanID[:], sid)
	tc.Flags = fl[0]
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}
