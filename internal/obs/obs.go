// Package obs is the observability layer threaded through the whole system:
// structured spans over the recompilation pipeline and the bench harness
// (exported as Chrome trace_event JSON, loadable in chrome://tracing or
// Perfetto), and a Prometheus text exporter for machine- and pipeline-level
// counters (prom.go).
//
// Every entry point is nil-receiver safe: a nil *Tracer records nothing, a
// span begun on a nil tracer is a nil *Span whose methods are no-ops. The
// instrumented packages (core, lifter, opt, bench, cmd/polybench) therefore
// carry a *Tracer unconditionally and pay one predictable nil check when
// tracing is off — the same disabled-path contract vm.Counters follows.
//
// Tracks: Chrome trace events live on (pid, tid) tracks, and complete events
// on one track must not overlap. Each concurrently executing scope (a bench
// cell worker, a pipeline worker, a project's serial stages) allocates its
// own track with AllocTID and tags its spans with it, so spans from
// concurrent goroutines never share a track.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Arg is one span argument (rendered under "args" in the trace JSON).
type Arg struct {
	Key string
	Val any
}

// Event phases (the trace_event "ph" field).
const (
	PhaseComplete = "X" // a span with ts + dur
	PhaseInstant  = "i" // a point-in-time marker
	PhaseMetadata = "M" // track naming
)

// Event is one recorded trace event.
type Event struct {
	Name string
	Cat  string
	Ph   string
	TS   int64 // microseconds since tracer start
	Dur  int64 // microseconds (PhaseComplete only)
	PID  int64
	TID  int64
	Args []Arg
}

// Tracer records spans and instants from any number of goroutines.
type Tracer struct {
	t0      time.Time
	pid     int64
	nextTID atomic.Int64
	open    atomic.Int64 // begun-but-unended spans (balance invariant)

	mu     sync.Mutex
	events []Event
	tc     TraceContext // the process-root trace position (zero until set)
}

// New returns an empty tracer. The zero tid (0) names the main track; worker
// tracks come from AllocTID.
func New() *Tracer {
	return &Tracer{t0: time.Now(), pid: 1}
}

// Enabled reports whether the tracer records anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// SetTraceContext installs the tracer's root trace position and records it
// as an instant event on the main track (args trace_id/span_id), so the
// exported Chrome trace carries the distributed-trace identity and two
// processes' trace files can be stitched by trace id. Nil-safe.
func (t *Tracer) SetTraceContext(tc TraceContext) {
	if t == nil || !tc.Valid() {
		return
	}
	t.mu.Lock()
	t.tc = tc
	t.mu.Unlock()
	t.Instant(0, "obs", "trace-context",
		Arg{Key: "trace_id", Val: tc.TraceIDHex()},
		Arg{Key: "span_id", Val: tc.SpanIDHex()})
}

// TraceContext returns the root trace position set with SetTraceContext
// (the zero TraceContext — Valid() == false — when unset or nil).
func (t *Tracer) TraceContext() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tc
}

// now is the current trace timestamp in microseconds.
func (t *Tracer) now() int64 { return time.Since(t.t0).Microseconds() }

// AllocTID allocates a fresh track id and, when name is non-empty, emits the
// thread_name metadata event Perfetto uses to label the track. Returns 0 on
// a nil tracer.
func (t *Tracer) AllocTID(name string) int64 {
	if t == nil {
		return 0
	}
	tid := t.nextTID.Add(1)
	if name != "" {
		t.record(Event{
			Name: "thread_name", Ph: PhaseMetadata, PID: t.pid, TID: tid,
			Args: []Arg{{Key: "name", Val: name}},
		})
	}
	return tid
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Span is one begun (and not yet ended) pipeline span.
type Span struct {
	t    *Tracer
	tid  int64
	cat  string
	name string
	ts   int64
	args []Arg
}

// Begin starts a span on the given track. End records it. Nil-safe.
func (t *Tracer) Begin(tid int64, cat, name string, args ...Arg) *Span {
	if t == nil {
		return nil
	}
	t.open.Add(1)
	return &Span{t: t, tid: tid, cat: cat, name: name, ts: t.now(), args: args}
}

// Arg attaches an argument to the span (visible once it ends). Nil-safe;
// returns the span for chaining.
func (s *Span) Arg(key string, val any) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{Key: key, Val: val})
	return s
}

// End records the span as a complete ("X") event. Nil-safe; ending twice
// records once.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	s.t = nil
	t.open.Add(-1)
	end := t.now()
	dur := end - s.ts
	if dur < 0 {
		dur = 0
	}
	t.record(Event{
		Name: s.name, Cat: s.cat, Ph: PhaseComplete,
		TS: s.ts, Dur: dur, PID: t.pid, TID: s.tid, Args: s.args,
	})
}

// Instant records a point-in-time marker. Nil-safe.
func (t *Tracer) Instant(tid int64, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.record(Event{
		Name: name, Cat: cat, Ph: PhaseInstant,
		TS: t.now(), PID: t.pid, TID: tid, Args: args,
	})
}

// OpenSpans returns the number of begun-but-unended spans — the balance
// invariant tests assert it is zero once all pipeline calls return.
func (t *Tracer) OpenSpans() int64 {
	if t == nil {
		return 0
	}
	return t.open.Load()
}

// Events returns a snapshot copy of everything recorded so far.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Keys returns one "cat/name/ph" key per recorded event (metadata events
// excluded), sorted — the canonical event *set* of a run. Two runs of the
// same work at different worker counts record the same keys; only
// timestamps, track ids, and track metadata differ.
func (t *Tracer) Keys() []string {
	evs := t.Events()
	keys := make([]string, 0, len(evs))
	for _, ev := range evs {
		if ev.Ph == PhaseMetadata {
			continue
		}
		keys = append(keys, ev.Cat+"/"+ev.Name+"/"+ev.Ph)
	}
	sort.Strings(keys)
	return keys
}
