package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatal("fresh trace context not valid")
	}
	hdr := tc.Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("traceparent %q: bad shape", hdr)
	}
	back, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected", hdr)
	}
	if back != tc {
		t.Fatalf("round trip: got %+v want %+v", back, tc)
	}
}

func TestParseTraceparent(t *testing.T) {
	const good = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tc, ok := ParseTraceparent(good)
	if !ok {
		t.Fatalf("rejected valid traceparent %q", good)
	}
	if tc.TraceIDHex() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id %s", tc.TraceIDHex())
	}
	if tc.SpanIDHex() != "b7ad6b7169203331" {
		t.Errorf("span id %s", tc.SpanIDHex())
	}
	if tc.Flags != FlagSampled {
		t.Errorf("flags %02x", tc.Flags)
	}

	bad := []string{
		"",
		"00",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",     // missing flags
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",  // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",  // zero span id
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // forbidden version
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x", // trailing junk, v00
		"zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // non-hex version
		"00-0af7651916cd43dd8448eb211c8031zz-b7ad6b7169203331-01",  // non-hex trace id
		"000af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-011",  // missing dash
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("accepted invalid traceparent %q", s)
		}
	}

	// A future version with a trailing field parses (forward compatibility).
	future := "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"
	if _, ok := ParseTraceparent(future); !ok {
		t.Errorf("rejected future-version traceparent %q", future)
	}
}

func TestChildKeepsTraceID(t *testing.T) {
	tc := NewTraceContext()
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Error("child changed the trace id")
	}
	if child.SpanID == tc.SpanID {
		t.Error("child kept the parent span id")
	}
}

func TestTracerTraceContext(t *testing.T) {
	var nilT *Tracer
	nilT.SetTraceContext(NewTraceContext()) // must not panic
	if tc := nilT.TraceContext(); tc.Valid() {
		t.Error("nil tracer returned a valid trace context")
	}

	tr := New()
	if tr.TraceContext().Valid() {
		t.Error("fresh tracer has a trace context before SetTraceContext")
	}
	tc := NewTraceContext()
	tr.SetTraceContext(tc)
	if got := tr.TraceContext(); got != tc {
		t.Fatalf("TraceContext: got %+v want %+v", got, tc)
	}
	// The identity is in the event stream (and thus the Chrome export).
	found := false
	for _, ev := range tr.Events() {
		if ev.Name == "trace-context" {
			for _, a := range ev.Args {
				if a.Key == "trace_id" && a.Val == tc.TraceIDHex() {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("trace-context instant with trace_id arg not recorded")
	}

	// Setting an invalid context is ignored.
	tr.SetTraceContext(TraceContext{})
	if got := tr.TraceContext(); got != tc {
		t.Error("invalid SetTraceContext overwrote the root context")
	}
}
