// Prometheus text-format export (version 0.0.4): the metrics side of the
// observability layer. A MetricSet is an ordered registry of
// counter/gauge/histogram families; Write renders HELP/TYPE headers and
// samples with escaped label values, samples sorted by label signature
// within each family, so the output is deterministic for a given set of
// values. Histogram families render the full convention: cumulative
// `_bucket` samples in ascending `le` order ending at `+Inf`, then `_sum`
// and `_count` per label set.
//
// Mutation (Set/Observe) and rendering are safe to interleave from
// concurrent goroutines — the fleet daemon observes latencies from request
// goroutines while /metrics scrapes render — via a per-family mutex.
package obs

import (
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metric family types.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// DefSecondsBuckets is the default latency bucket ladder (seconds) used
// when a histogram is registered with no explicit buckets: sub-millisecond
// store ops through multi-minute recompile jobs.
var DefSecondsBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Label is one label pair of a sample.
type Label struct {
	Key, Val string
}

type sample struct {
	labels []Label
	val    float64
}

// histSample is one histogram child (a label set's accumulated
// observations): per-bucket counts (not yet cumulative; the +Inf overflow
// is the last slot), the running sum, and the observation count.
type histSample struct {
	labels []Label
	counts []uint64 // len(buckets)+1; counts[len(buckets)] is +Inf
	sum    float64
	count  uint64
}

// Metric is one metric family (a name, a type, and any number of samples
// distinguished by labels).
type Metric struct {
	name, help, typ string

	mu      sync.Mutex
	samples []sample
	buckets []float64 // histogram upper bounds, ascending; +Inf implicit
	hists   []*histSample
	err     error // first misuse (Set on a histogram, Observe elsewhere)
}

// Set records a sample. Calling Set again with the same labels overwrites
// the prior value, so accumulating callers can re-export freely. Calling
// Set on a histogram family is a recorded error, surfaced by Write.
func (m *Metric) Set(v float64, labels ...Label) *Metric {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.typ == TypeHistogram {
		m.misuseLocked("Set called on histogram family")
		return m
	}
	sig := labelSig(labels)
	for i := range m.samples {
		if labelSig(m.samples[i].labels) == sig {
			m.samples[i].val = v
			return m
		}
	}
	m.samples = append(m.samples, sample{labels: labels, val: v})
	return m
}

// Observe records one observation into the histogram child named by labels
// (created on first use). Calling Observe on a non-histogram family, or
// with a reserved "le" label, is a recorded error surfaced by Write.
// Safe for concurrent use.
func (m *Metric) Observe(v float64, labels ...Label) *Metric {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.typ != TypeHistogram {
		m.misuseLocked("Observe called on non-histogram family")
		return m
	}
	for _, l := range labels {
		if l.Key == "le" {
			m.misuseLocked(`label "le" is reserved on histograms`)
			return m
		}
	}
	sig := labelSig(labels)
	var h *histSample
	for _, hs := range m.hists {
		if labelSig(hs.labels) == sig {
			h = hs
			break
		}
	}
	if h == nil {
		h = &histSample{labels: labels, counts: make([]uint64, len(m.buckets)+1)}
		m.hists = append(m.hists, h)
	}
	i := sort.SearchFloat64s(m.buckets, v) // first bucket with upper bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
	return m
}

func (m *Metric) misuseLocked(msg string) {
	if m.err == nil {
		m.err = fmt.Errorf("obs: metric %s: %s", m.name, msg)
	}
}

// MetricSet is an ordered collection of metric families.
type MetricSet struct {
	metrics []*Metric
	byName  map[string]*Metric
}

// NewMetricSet returns an empty set.
func NewMetricSet() *MetricSet {
	return &MetricSet{byName: map[string]*Metric{}}
}

// Counter registers (or returns the existing) counter family.
func (s *MetricSet) Counter(name, help string) *Metric { return s.family(name, help, TypeCounter) }

// Gauge registers (or returns the existing) gauge family.
func (s *MetricSet) Gauge(name, help string) *Metric { return s.family(name, help, TypeGauge) }

// Histogram registers (or returns the existing) histogram family. Buckets
// are upper bounds in seconds-or-whatever units; they are sorted and
// deduplicated, an explicit +Inf is dropped (it is always rendered), and an
// empty list selects DefSecondsBuckets. Buckets are fixed at registration —
// a second call's buckets are ignored.
func (s *MetricSet) Histogram(name, help string, buckets []float64) *Metric {
	m := s.family(name, help, TypeHistogram)
	if m.buckets == nil {
		if len(buckets) == 0 {
			buckets = DefSecondsBuckets
		}
		bs := make([]float64, 0, len(buckets))
		for _, b := range buckets {
			if !math.IsInf(b, +1) && !math.IsNaN(b) {
				bs = append(bs, b)
			}
		}
		sort.Float64s(bs)
		dedup := bs[:0]
		for _, b := range bs {
			if len(dedup) == 0 || b != dedup[len(dedup)-1] {
				dedup = append(dedup, b)
			}
		}
		m.buckets = dedup
	}
	return m
}

func (s *MetricSet) family(name, help, typ string) *Metric {
	if m, ok := s.byName[name]; ok {
		return m
	}
	m := &Metric{name: name, help: help, typ: typ}
	s.metrics = append(s.metrics, m)
	s.byName[name] = m
	return m
}

// Write renders the set in Prometheus text format. Families render in
// registration order; samples within a family sort by label signature.
// Invalid metric or label names — and recorded family misuse (Set on a
// histogram, Observe elsewhere) — are an error, not silent corruption.
// A histogram family with no observations renders its headers only.
func (s *MetricSet) Write(w io.Writer) error {
	for _, m := range s.metrics {
		if !metricNameRE.MatchString(m.name) {
			return fmt.Errorf("obs: invalid metric name %q", m.name)
		}
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ); err != nil {
			return err
		}
		samples, buckets, hists, err := m.snapshot()
		if err != nil {
			return err
		}
		for _, sm := range samples {
			for _, l := range sm.labels {
				if !labelNameRE.MatchString(l.Key) {
					return fmt.Errorf("obs: invalid label name %q on metric %s", l.Key, m.name)
				}
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, renderLabels(sm.labels), formatValue(sm.val)); err != nil {
				return err
			}
		}
		for _, h := range hists {
			for _, l := range h.labels {
				if !labelNameRE.MatchString(l.Key) {
					return fmt.Errorf("obs: invalid label name %q on metric %s", l.Key, m.name)
				}
			}
			if err := writeHist(w, m.name, buckets, h); err != nil {
				return err
			}
		}
	}
	return nil
}

// snapshot copies a family's mutable state out under its lock, so rendering
// can proceed while request goroutines keep observing.
func (m *Metric) snapshot() ([]sample, []float64, []*histSample, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, nil, nil, m.err
	}
	samples := append([]sample(nil), m.samples...)
	sort.SliceStable(samples, func(i, j int) bool {
		return labelSig(samples[i].labels) < labelSig(samples[j].labels)
	})
	hists := make([]*histSample, 0, len(m.hists))
	for _, h := range m.hists {
		cp := &histSample{
			labels: h.labels,
			counts: append([]uint64(nil), h.counts...),
			sum:    h.sum,
			count:  h.count,
		}
		hists = append(hists, cp)
	}
	sort.SliceStable(hists, func(i, j int) bool {
		return labelSig(hists[i].labels) < labelSig(hists[j].labels)
	})
	return samples, m.buckets, hists, nil
}

// writeHist renders one histogram child: cumulative _bucket samples in
// ascending le order ending at +Inf, then _sum and _count.
func writeHist(w io.Writer, name string, buckets []float64, h *histSample) error {
	cum := uint64(0)
	for i, ub := range buckets {
		cum += h.counts[i]
		labels := append(append([]Label(nil), h.labels...), Label{Key: "le", Val: formatValue(ub)})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels), cum); err != nil {
			return err
		}
	}
	labels := append(append([]Label(nil), h.labels...), Label{Key: "le", Val: "+Inf"})
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels), h.count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(h.labels), formatValue(h.sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(h.labels), h.count)
	return err
}

// WriteFile writes the set to path.
func (s *MetricSet) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	werr := s.Write(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: write %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("obs: close %s: %w", path, cerr)
	}
	return nil
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l.Key, escapeLabel(l.Val))
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the text-format rules: backslash,
// double-quote, and newline.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP line: backslash and newline only.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func labelSig(labels []Label) string {
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('\x00')
		sb.WriteString(l.Val)
		sb.WriteByte('\x00')
	}
	return sb.String()
}
