// Prometheus text-format export (version 0.0.4): the metrics side of the
// observability layer. A MetricSet is an ordered registry of counter/gauge
// families; Write renders HELP/TYPE headers and samples with escaped label
// values, samples sorted by label signature within each family, so the
// output is deterministic for a given set of values.
package obs

import (
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metric family types.
const (
	TypeCounter = "counter"
	TypeGauge   = "gauge"
)

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Label is one label pair of a sample.
type Label struct {
	Key, Val string
}

type sample struct {
	labels []Label
	val    float64
}

// Metric is one metric family (a name, a type, and any number of samples
// distinguished by labels).
type Metric struct {
	name, help, typ string
	samples         []sample
}

// Set records a sample. Calling Set again with the same labels overwrites
// the prior value, so accumulating callers can re-export freely.
func (m *Metric) Set(v float64, labels ...Label) *Metric {
	sig := labelSig(labels)
	for i := range m.samples {
		if labelSig(m.samples[i].labels) == sig {
			m.samples[i].val = v
			return m
		}
	}
	m.samples = append(m.samples, sample{labels: labels, val: v})
	return m
}

// MetricSet is an ordered collection of metric families.
type MetricSet struct {
	metrics []*Metric
	byName  map[string]*Metric
}

// NewMetricSet returns an empty set.
func NewMetricSet() *MetricSet {
	return &MetricSet{byName: map[string]*Metric{}}
}

// Counter registers (or returns the existing) counter family.
func (s *MetricSet) Counter(name, help string) *Metric { return s.family(name, help, TypeCounter) }

// Gauge registers (or returns the existing) gauge family.
func (s *MetricSet) Gauge(name, help string) *Metric { return s.family(name, help, TypeGauge) }

func (s *MetricSet) family(name, help, typ string) *Metric {
	if m, ok := s.byName[name]; ok {
		return m
	}
	m := &Metric{name: name, help: help, typ: typ}
	s.metrics = append(s.metrics, m)
	s.byName[name] = m
	return m
}

// Write renders the set in Prometheus text format. Families render in
// registration order; samples within a family sort by label signature.
// Invalid metric or label names are an error, not silent corruption.
func (s *MetricSet) Write(w io.Writer) error {
	for _, m := range s.metrics {
		if !metricNameRE.MatchString(m.name) {
			return fmt.Errorf("obs: invalid metric name %q", m.name)
		}
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ); err != nil {
			return err
		}
		samples := append([]sample(nil), m.samples...)
		sort.SliceStable(samples, func(i, j int) bool {
			return labelSig(samples[i].labels) < labelSig(samples[j].labels)
		})
		for _, sm := range samples {
			for _, l := range sm.labels {
				if !labelNameRE.MatchString(l.Key) {
					return fmt.Errorf("obs: invalid label name %q on metric %s", l.Key, m.name)
				}
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, renderLabels(sm.labels), formatValue(sm.val)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFile writes the set to path.
func (s *MetricSet) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	werr := s.Write(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: write %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("obs: close %s: %w", path, cerr)
	}
	return nil
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l.Key, escapeLabel(l.Val))
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the text-format rules: backslash,
// double-quote, and newline.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP line: backslash and newline only.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func labelSig(labels []Label) string {
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('\x00')
		sb.WriteString(l.Val)
		sb.WriteByte('\x00')
	}
	return sb.String()
}
