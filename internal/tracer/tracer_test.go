package tracer_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/cfg"
	"repro/internal/disasm"
	"repro/internal/tracer"
	"repro/internal/vm"
)

func TestTracerResolvesIndirectCalls(t *testing.T) {
	img, syms, err := cc.Compile(`
extern input_byte;
func f1(x) { return x + 1; }
func f2(x) { return x + 2; }
func main() {
	var fp = f1;
	if (input_byte() == 'b') { fp = f2; }
	return fp(10);
}`, cc.Config{Name: "p", Opt: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	var ind *cfg.Block
	for _, b := range g.Blocks {
		if b.Term == cfg.TermCallInd {
			ind = b
		}
	}
	if ind == nil {
		t.Fatal("no indirect call block")
	}
	if len(ind.Targets) != 0 {
		t.Fatalf("unexpected static targets %v", ind.Targets)
	}

	res, err := tracer.Trace(img, g, []tracer.Run{
		{Input: []byte("a"), Seed: 1},
		{Input: []byte("b"), Seed: 2},
	}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 2 {
		t.Fatalf("runs = %d", res.Runs)
	}
	if res.ICFTs < 2 {
		t.Fatalf("ICFTs = %d, want >= 2 (both callees)", res.ICFTs)
	}
	for _, fn := range []string{"fn_f1", "fn_f2"} {
		if !ind.HasTarget(syms[fn]) {
			t.Fatalf("traced target %s missing; have %v", fn, ind.Targets)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerMergesAcrossRunsIdempotently(t *testing.T) {
	img, _, err := cc.Compile(`
func f1(x) { return x + 1; }
func main() {
	var fp = f1;
	return fp(1);
}`, cc.Config{Name: "p", Opt: 0})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := disasm.Disassemble(img)
	runs := []tracer.Run{{Seed: 1}, {Seed: 2}, {Seed: 3}}
	res, err := tracer.Trace(img, g, runs, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Same site+target in every run: counted once.
	if res.ICFTs != 1 {
		t.Fatalf("ICFTs = %d, want 1", res.ICFTs)
	}
	// A second session adds nothing new.
	res2, err := tracer.Trace(img, g, runs, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NewTargets != 0 {
		t.Fatalf("second session added %d targets", res2.NewTargets)
	}
}

func TestTracerMergesRecordsFromFaultedRun(t *testing.T) {
	// The run records a real ICFT (the fp call) and then faults on a null
	// load. The fault must propagate as an error, but the target recorded
	// before the fault must already be merged into the graph — the fault
	// often sits on the very path whose targets the caller is tracing.
	img, syms, err := cc.Compile(`
func f1(x) { return x + 1; }
func main() {
	var fp = f1;
	var r = fp(1);
	var p = 0;
	return r + *p;
}`, cc.Config{Name: "p", Opt: 0})
	if err != nil {
		t.Fatal(err)
	}
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tracer.Trace(img, g, []tracer.Run{{Seed: 1}}, 10_000_000)
	if err == nil {
		t.Fatal("expected the fault to propagate")
	}
	if res == nil {
		t.Fatal("faulted session returned no partial Result")
	}
	if res.ICFTs != 1 {
		t.Fatalf("ICFTs = %d, want 1 (the pair recorded before the fault)", res.ICFTs)
	}
	var ind *cfg.Block
	for _, b := range g.Blocks {
		if b.Term == cfg.TermCallInd {
			ind = b
		}
	}
	if ind == nil {
		t.Fatal("no indirect call block")
	}
	if !ind.HasTarget(syms["fn_f1"]) {
		t.Fatalf("target recorded before the fault was lost; have %v", ind.Targets)
	}
	// A second session re-observes the same pair but finds it merged: the
	// faulted run's records were not lost and not double-counted.
	res2, err := tracer.Trace(img, g, []tracer.Run{{Seed: 2}}, 10_000_000)
	if err == nil {
		t.Fatal("expected the fault to propagate on the second session too")
	}
	if res2.NewTargets != 0 {
		t.Fatalf("second session added %d targets; the first session's merge was lost", res2.NewTargets)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerFaultPropagates(t *testing.T) {
	img, _, err := cc.Compile(`
func main() {
	var p = 0;
	return *p;
}`, cc.Config{Name: "p", Opt: 0})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := disasm.Disassemble(img)
	if _, err := tracer.Trace(img, g, []tracer.Run{{Seed: 1}}, 1_000_000); err == nil {
		t.Fatal("expected fault to propagate")
	}
	_ = vm.Result{}
}
