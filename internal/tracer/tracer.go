// Package tracer implements the Indirect Control Flow Target (ICFT) tracer:
// the optional, low-overhead dynamic stage of hybrid control-flow recovery
// (§3.2 "Dynamic"). The paper implements it as a Pin tool over native
// execution; here it attaches to the emulator's indirect-transfer hook and
// observes concrete executions of the *original* binary, recording every
// dynamic target of JMPR/JMPM/CALLR instructions. Results from multiple runs
// (different inputs, different scheduler seeds) are merged into the static
// CFG, giving the recompiler the precision of a dynamic lifter without the
// full-emulation cost of BinRec-style tracing.
package tracer

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Run describes one concrete execution used for tracing.
type Run struct {
	Input []byte
	Seed  int64
	Exts  map[string]vm.ExtFunc // extra host functions (app-specific)
}

// SiteTarget is one merged (site, target) indirect control transfer.
type SiteTarget struct {
	Site, Target uint64
}

// Result summarizes a tracing session.
type Result struct {
	// ICFTs is the number of unique (site, target) indirect control
	// transfers recorded across all runs and merged into the graph (the
	// Table 4 metric). Records whose site block is unknown statically are
	// not counted: they were not merged and stay recordable by later runs.
	ICFTs int
	// NewTargets is how many recorded targets were not already known to the
	// static CFG.
	NewTargets int
	// Runs is the number of executions performed.
	Runs int
	// Insts is the total number of instructions executed while tracing.
	Insts uint64
	// Merged lists every merged pair in merge order — a replayable record of
	// the session's whole effect on the graph. Applying the pairs to the same
	// starting graph (internal/core's trace-artifact replay) reproduces the
	// merged graph without executing anything, so len(Merged) == ICFTs.
	Merged []SiteTarget
}

// Trace runs the original binary under the ICFT tracer for each run and
// merges all recorded indirect targets into g. Unknown targets are
// integrated with a static recursive descent from the discovery point, the
// same integration step additive lifting uses.
//
// A faulted run is still a run that executed real control flow: everything
// it recorded up to the fault is merged before the error is reported, and
// the returned Result carries the counts accumulated so far (the fault may
// well sit on the very path whose targets the caller is tracing toward).
func Trace(img *image.Image, g *cfg.Graph, runs []Run, fuel uint64) (*Result, error) {
	return TraceObs(img, g, runs, fuel, nil, 0, nil)
}

// TraceObs is Trace with span recording and cancellation: when tr is non-nil,
// every concrete execution records an "icft-run" span (with its instruction
// count and how many new ICFT records it produced) on the given trace track.
// When cancel is non-nil, each run stops within a bounded number of
// instructions once it is closed; the interrupted run surfaces as a faulted
// run (with everything recorded up to the stop merged, per the contract
// above), so cancelled callers still get the partial Result.
func TraceObs(img *image.Image, g *cfg.Graph, runs []Run, fuel uint64, tr *obs.Tracer, tid int64, cancel <-chan struct{}) (*Result, error) {
	res := &Result{}
	type siteTarget struct{ site, target uint64 }
	seen := map[siteTarget]bool{}
	merged := 0
	for ri, r := range runs {
		m, err := vm.NewWithExts(img, r.Seed, r.Exts)
		if err != nil {
			return nil, err
		}
		m.SetCancel(cancel)
		if r.Input != nil {
			m.SetInput(r.Input)
		}
		type rec struct{ site, target uint64 }
		var recs []rec
		m.OnIndirect = func(t *vm.Thread, from, target uint64, kind vm.ControlKind) {
			if kind == vm.KindRet {
				return // returns are not ICFT sites
			}
			st := siteTarget{from, target}
			if !seen[st] {
				seen[st] = true
				recs = append(recs, rec{from, target})
			}
		}
		sp := tr.Begin(tid, "tracer", "icft-run", obs.Arg{Key: "run", Val: ri})
		out := m.Run(fuel)
		sp.Arg("insts", out.Insts).Arg("records", len(recs)).End()
		res.Runs++
		res.Insts += out.Insts
		// Merge this run's records into the graph — before the fault check,
		// so a faulted run's observations are neither lost nor left marked
		// in seen where no later run could ever re-record them.
		for _, rc := range recs {
			blk := g.BlockContaining(rc.site)
			if blk == nil {
				// The site itself was unknown statically (e.g. code reached
				// only through an unresolved indirect transfer). Unmark it so
				// a later run can re-record the pair once the site is known.
				delete(seen, siteTarget{rc.site, rc.target})
				continue
			}
			merged++
			res.Merged = append(res.Merged, SiteTarget{rc.site, rc.target})
			if blk.HasTarget(rc.target) {
				continue
			}
			res.NewTargets++
			if _, known := g.Blocks[rc.target]; known {
				blk.AddTarget(rc.target)
			} else if err := disasm.ExploreFrom(img, g, blk.Addr, rc.target); err != nil {
				res.ICFTs = merged
				return res, fmt.Errorf("tracer: integrating %#x -> %#x: %w", rc.site, rc.target, err)
			}
		}
		if out.Fault != nil {
			res.ICFTs = merged
			return res, fmt.Errorf("tracer: run %d faulted: %v", res.Runs, out.Fault)
		}
	}
	res.ICFTs = merged
	return res, nil
}
