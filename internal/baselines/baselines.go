// Package baselines implements the comparator recompilers of the evaluation
// (Tables 1 and 4, Figure 4): a McSema-like static recompiler, a
// BinRec-like dynamic (emulator-coupled) recompiler with incremental
// lifting, a mctoll/Lasagne-like static translator with per-function
// stack-frame recovery, and a Rev.Ng-like static recompiler.
//
// Each baseline reproduces its namesake's characteristic capability set and
// failure modes as documented in the paper (§2, §4):
//
//   - McSema-like: static-only control-flow recovery; unresolved indirect
//     transfers trap at run time; the virtual CPU state and emulated stack
//     are process-global, so multithreaded programs corrupt each other's
//     state (§2.2.1).
//   - BinRec-like: control flow recovered purely from concrete executions
//     inside an emulator-coupled translator (high tracing cost, §2.1); no
//     per-thread state initialization on callback entry (§2.2.3);
//     control-flow misses trigger incremental lifting — a fresh
//     emulator-coupled trace of the whole input (Figure 4's comparison).
//   - mctoll/Lasagne-like: static frame-size recovery rejects binaries with
//     dynamically sized stack allocations (§2.2.1); indirect calls cannot be
//     resolved; only simple lock add/sub atomics are translated; OpenMP
//     runtimes are unsupported (Table 1's 5/7 Phoenix, 0/8 gapbs, 0/11 CKit).
//   - Rev.Ng-like: static recompiler whose recovered binaries fault in the
//     thread-spawn path (§4 "faults during execution of the do_fork
//     procedure") — modeled with the shared-state lowering.
package baselines

import (
	"fmt"
	"time"

	"repro/internal/cfg"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/lifter"
	"repro/internal/lower"
	"repro/internal/mx"
	"repro/internal/opt"
	"repro/internal/vm"
)

// McSemaLike statically recompiles img: COTS disassembly, heuristic-only
// indirect targets, trap on miss, process-global virtual state.
func McSemaLike(img *image.Image) (*image.Image, time.Duration, error) {
	t0 := time.Now()
	g, err := disasm.Disassemble(img)
	if err != nil {
		return nil, 0, err
	}
	lf, err := lifter.Lift(img, g, lifter.Options{InsertFences: false, TrapOnMiss: true})
	if err != nil {
		return nil, 0, err
	}
	if err := opt.Run(lf.Mod, opt.Options{}); err != nil {
		return nil, 0, err
	}
	res, err := lower.LowerWithOptions(lf, lower.Options{SingleThreadState: true})
	if err != nil {
		return nil, 0, err
	}
	return res.Img, time.Since(t0), nil
}

// RevNgLike statically recompiles img with jump-table recovery but the same
// shared-state model; like McSema it has no miss recovery.
func RevNgLike(img *image.Image) (*image.Image, time.Duration, error) {
	return McSemaLike(img) // distinguished only by provenance; see package doc
}

// MctollUnsupportedError explains why the mctoll/Lasagne-like baseline
// rejects a binary.
type MctollUnsupportedError struct{ Reason string }

func (e *MctollUnsupportedError) Error() string {
	return "mctoll/lasagne-like: unsupported binary: " + e.Reason
}

// MctollLike checks mctoll/Lasagne's static support envelope and, when the
// binary is inside it, recompiles statically (per-thread state is supported
// — Lasagne handles a subset of multithreaded binaries — but misses trap).
func MctollLike(img *image.Image) (*image.Image, time.Duration, error) {
	t0 := time.Now()
	if err := mctollSupports(img); err != nil {
		return nil, time.Since(t0), err
	}
	g, err := disasm.Disassemble(img)
	if err != nil {
		return nil, 0, err
	}
	lf, err := lifter.Lift(img, g, lifter.Options{InsertFences: true, TrapOnMiss: true})
	if err != nil {
		return nil, 0, err
	}
	if err := opt.Run(lf.Mod, opt.Options{}); err != nil {
		return nil, 0, err
	}
	res, err := lower.Lower(lf)
	if err != nil {
		return nil, 0, err
	}
	return res.Img, time.Since(t0), nil
}

// mctollSupports scans the binary for constructs outside mctoll/Lasagne's
// envelope.
func mctollSupports(img *image.Image) error {
	for _, name := range img.Imports {
		if name == "omp_parallel_for" {
			return &MctollUnsupportedError{"OpenMP runtime entry points"}
		}
	}
	text := img.Text()
	pc := text.Addr
	for pc < text.Addr+uint64(len(text.Data)) {
		inst, n := mx.Decode(text.Data[pc-text.Addr:])
		if n == 0 {
			break
		}
		switch inst.Op {
		case mx.CALLR:
			return &MctollUnsupportedError{
				fmt.Sprintf("indirect call at %#x (targets cannot be resolved statically)", pc)}
		case mx.CMPXCHG, mx.XCHG, mx.LOCKXADD, mx.LOCKINC, mx.LOCKDEC,
			mx.LOCKAND, mx.LOCKOR, mx.LOCKXOR:
			return &MctollUnsupportedError{
				fmt.Sprintf("atomic %s at %#x (only lock add/sub are translated)", inst.Op, pc)}
		case mx.SUBRR, mx.ADDRR:
			if inst.Dst == mx.RSP {
				return &MctollUnsupportedError{
					fmt.Sprintf("dynamically sized stack allocation at %#x (frame bound not statically recoverable)", pc)}
			}
		}
		pc += uint64(n)
	}
	return nil
}

// BinRecResult reports a BinRec-like dynamic lift.
type BinRecResult struct {
	Img         *image.Image
	LiftTime    time.Duration
	TracedInsts uint64
	Blocks      int
}

// BinRecLike performs emulator-coupled dynamic lifting: it executes the
// input under the interpreter, translating every executed basic block
// through the real lifter (the translate-and-execute loop that dominates
// BinRec's lifting times, §2.1/Table 4), building a CFG of exactly the
// traced paths, then recompiles with the shared-state model.
func BinRecLike(img *image.Image, input []byte, seed int64, fuel uint64,
	exts map[string]vm.ExtFunc) (*BinRecResult, error) {
	t0 := time.Now()
	g := cfg.NewGraph(img.Entry)

	m, err := vm.NewWithExts(img, seed, exts)
	if err != nil {
		return nil, err
	}
	if input != nil {
		m.SetInput(input)
	}
	seen := map[uint64]bool{}
	var hookErr error
	m.OnBlock = func(t *vm.Thread, pc uint64) {
		if !img.InText(pc) || hookErr != nil {
			return
		}
		// The translate-execute loop: a NEW block goes through the full
		// translator; a known block still pays the emulator's dispatch and
		// instrumentation cost on every entry (modeled by re-decoding the
		// block — the software-TB-lookup overhead that keeps BinRec's
		// tracing orders of magnitude slower than native or Pin-style
		// tracing, §2.1).
		if !seen[pc] {
			seen[pc] = true
			if err := integrateTracedBlock(img, g, pc); err != nil {
				hookErr = err
				return
			}
			if blk := g.Blocks[pc]; blk != nil {
				if _, err := lifter.TranslateBlock(img, blk); err != nil {
					hookErr = err
				}
			}
			return
		}
		if blk := g.Blocks[pc]; blk != nil {
			if err := emulationOverhead(img, blk); err != nil {
				hookErr = err
			}
		}
	}
	// Thread spawns and callbacks enter at function addresses: register the
	// function and integrate its entry block (no control-transfer hook
	// fires for the first block of an entered function).
	m.OnGuestEntry = func(fn uint64) {
		if !img.InText(fn) || hookErr != nil {
			return
		}
		f := g.AddFunc(fn)
		if !seen[fn] {
			seen[fn] = true
			if err := disasm.AddTracedBlock(img, g, f, fn); err != nil {
				hookErr = err
				return
			}
		}
	}
	// The main thread was spawned before the hooks attached: seed the
	// program entry explicitly.
	seen[img.Entry] = true
	ef := g.AddFunc(img.Entry)
	if err := disasm.AddTracedBlock(img, g, ef, img.Entry); err != nil {
		return nil, err
	}
	res := m.Run(fuel)
	if hookErr != nil {
		return nil, fmt.Errorf("baselines: binrec trace: %w", hookErr)
	}
	if res.Fault != nil {
		return nil, fmt.Errorf("baselines: binrec trace faulted: %w", res.Fault)
	}
	// A call target registered as a function may have had its entry block
	// integrated earlier under a different owner (e.g. reached first as a
	// fallthrough); make sure every function owns its entry block.
	for _, f := range g.Funcs {
		if len(f.Blocks) == 0 {
			if _, ok := g.Blocks[f.Entry]; ok {
				g.AddBlockToFunc(f, f.Entry)
			} else if err := disasm.AddTracedBlock(img, g, f, f.Entry); err != nil {
				return nil, err
			}
		}
	}

	// Assemble the traced control flow into functions and recompile.
	lf, err := lifter.Lift(img, g, lifter.Options{InsertFences: false, TrapOnMiss: true})
	if err != nil {
		return nil, err
	}
	if err := opt.Run(lf.Mod, opt.Options{}); err != nil {
		return nil, err
	}
	low, err := lower.LowerWithOptions(lf, lower.Options{SingleThreadState: true})
	if err != nil {
		return nil, err
	}
	return &BinRecResult{
		Img:         low.Img,
		LiftTime:    time.Since(t0),
		TracedInsts: res.Insts,
		Blocks:      len(g.Blocks),
	}, nil
}

// emulationOverhead models the per-entry cost of executing inside an
// S2E-style instrumented emulator (software TB lookup, per-instruction
// instrumentation callouts): repeated decode/encode of the executed block.
// Calibrated to keep the emulator-coupled trace one to two orders of
// magnitude slower than native-speed tracing, the Table 4 regime.
func emulationOverhead(img *image.Image, blk *cfg.Block) error {
	for k := 0; k < 8; k++ {
		insts, _, err := disasm.DecodeBlock(img, blk)
		if err != nil {
			return err
		}
		var buf []byte
		for _, in := range insts {
			buf = in.Encode(buf[:0])
		}
	}
	return nil
}

// integrateTracedBlock adds the block at pc to the traced graph, splitting
// or claiming as needed, and attributes it to the innermost containing
// function (or the entry function).
func integrateTracedBlock(img *image.Image, g *cfg.Graph, pc uint64) error {
	if _, ok := g.Blocks[pc]; ok {
		return nil
	}
	// Attach to the owning function: the function with the greatest entry
	// address not exceeding pc (traced entries are recorded by the hooks).
	var owner *cfg.Func
	for _, f := range g.Funcs {
		if f.Entry <= pc && (owner == nil || f.Entry > owner.Entry) {
			owner = f
		}
	}
	if owner == nil {
		owner = g.AddFunc(g.Entry)
	}
	if err := disasm.AddTracedBlock(img, g, owner, pc); err != nil {
		return err
	}
	// Direct call targets become function entries (their bodies are
	// integrated when execution reaches them).
	if b := g.Blocks[pc]; b != nil && b.Term == cfg.TermCall {
		for _, t := range b.Targets {
			if img.InText(t) {
				g.AddFunc(t)
			}
		}
	}
	return nil
}
