package baselines_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/cc"
	"repro/internal/image"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func compile(t *testing.T, src string, opt int) *image.Image {
	t.Helper()
	img, _, err := cc.Compile(src, cc.Config{Name: "b", Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func run(t *testing.T, img *image.Image, seed int64) vm.Result {
	t.Helper()
	m, err := vm.New(img, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run(500_000_000)
}

const singleThreaded = `
extern print_i64;
func main() {
	var s = 0;
	var i;
	for (i = 0; i < 100; i = i + 1) { s = s + i; }
	print_i64(s);
	return 42;
}`

// multiThreaded exercises per-thread emulated stacks: each worker fills a
// local array and recurses, so sharing one emulated stack corrupts state.
const multiThreaded = `
extern thread_create;
extern thread_join;
var c = 0;
func depth(n, a) {
	var buf[16];
	var i;
	for (i = 0; i < 16; i = i + 1) { buf[i] = a * 1000 + n * 16 + i; }
	if (n > 0) { depth(n - 1, a); }
	for (i = 0; i < 16; i = i + 1) {
		if (buf[i] != a * 1000 + n * 16 + i) { atomic_add(&c, 1000000); }
	}
	return 0;
}
func w(a) {
	var i;
	for (i = 0; i < 50; i = i + 1) {
		depth(6, a);
		atomic_add(&c, a);
	}
	return 0;
}
func main() {
	var t1 = thread_create(w, 1);
	var t2 = thread_create(w, 2);
	thread_join(t1);
	thread_join(t2);
	if (c != 150) { return 1; }
	return 42;
}`

func TestMcSemaLikeSingleThreadedWorks(t *testing.T) {
	img := compile(t, singleThreaded, 2)
	rec, _, err := baselines.McSemaLike(img)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rec, 1)
	if res.Fault != nil || res.ExitCode != 42 || res.Output != "4950\n" {
		t.Fatalf("single-threaded static recompile failed: %+v", res)
	}
}

func TestMcSemaLikeMultithreadedFails(t *testing.T) {
	// The shared virtual state / shared emulated stack corrupts
	// multithreaded executions (§2.2.1) — the Table 1 ✗ entries.
	img := compile(t, multiThreaded, 2)
	rec, _, err := baselines.McSemaLike(img)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rec, 1)
	if res.Fault == nil && res.ExitCode == 42 {
		t.Fatal("multithreaded program unexpectedly survived the shared-state model")
	}
}

func TestMctollRejectsVLA(t *testing.T) {
	img := compile(t, `
func f(n) {
	var a[n];
	a[0] = 7;
	return a[0];
}
func main() { return f(3); }`, 2)
	_, _, err := baselines.MctollLike(img)
	if err == nil || !strings.Contains(err.Error(), "stack allocation") {
		t.Fatalf("err = %v", err)
	}
}

func TestMctollRejectsIndirectCallsAndAtomicsAndOMP(t *testing.T) {
	cases := []struct{ src, want string }{
		{`func g(x) { return x; } func main() { var f = g; return f(1); }`, "indirect call"},
		{`var c = 0; func main() { return atomic_xadd(&c, 1); }`, "atomic"},
		{`extern omp_parallel_for;
func body(lo, hi, a) { return 0; }
func main() { omp_parallel_for(body, 0, 4, 0, 2); return 0; }`, "OpenMP"},
	}
	for _, c := range cases {
		img := compile(t, c.src, 2)
		_, _, err := baselines.MctollLike(img)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("src %q: err = %v", c.src[:30], err)
		}
	}
}

func TestMctollAcceptsSimplePthreadProgram(t *testing.T) {
	// Lasagne supports a subset of multithreaded binaries (5/7 Phoenix).
	img := compile(t, `
extern thread_create;
extern thread_join;
var c = 0;
func w(a) { atomic_add(&c, a); return 0; }
func main() {
	var t1 = thread_create(w, 40);
	thread_join(t1);
	atomic_add(&c, 2);
	return c;
}`, 2)
	rec, _, err := baselines.MctollLike(img)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rec, 1)
	if res.Fault != nil || res.ExitCode != 42 {
		t.Fatalf("supported program failed: %+v", res)
	}
}

func TestBinRecLikeTracesAndRecompiles(t *testing.T) {
	img := compile(t, singleThreaded, 2)
	br, err := baselines.BinRecLike(img, nil, 1, 100_000_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if br.TracedInsts == 0 || br.Blocks == 0 {
		t.Fatalf("no trace recorded: %+v", br)
	}
	res := run(t, br.Img, 1)
	if res.Fault != nil || res.ExitCode != 42 {
		t.Fatalf("binrec-like recompile of traced path failed: %+v", res)
	}
}

func TestBinRecLikeSlowerThanPolynimaTracer(t *testing.T) {
	// The emulator-coupled translate-execute loop must cost far more than
	// a plain traced run (the Table 4 gap).
	w := workloads.ByName("mcf_like")
	img, err := w.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	br, err := baselines.BinRecLike(img, nil, 1, 500_000_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Plain run for comparison.
	m, _ := vm.New(img, 1)
	t0 := nowNanos()
	m.Run(500_000_000)
	plain := nowNanos() - t0
	if br.LiftTime.Nanoseconds() < 5*plain {
		t.Fatalf("binrec-like lift (%v) not substantially slower than plain run (%dns)",
			br.LiftTime, plain)
	}
}

func nowNanos() int64 {
	return time.Now().UnixNano()
}
