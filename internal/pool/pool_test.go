package pool_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/pool"
)

func TestClamp(t *testing.T) {
	for _, tc := range []struct{ workers, n, want int }{
		{0, 5, 1}, {-3, 5, 1}, {1, 5, 1}, {8, 5, 5}, {4, 100, 4}, {2, 0, 1},
	} {
		if got := pool.Clamp(tc.workers, tc.n); got != tc.want {
			t.Errorf("Clamp(%d, %d) = %d, want %d", tc.workers, tc.n, got, tc.want)
		}
	}
}

func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 53
		var done [n]atomic.Int32
		if err := pool.Run(workers, n, func(w, i int) error {
			done[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range done {
			if got := done[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := pool.Run(1, 10, func(w, i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 4 {
		t.Fatalf("serial run executed %d items after error at index 3, want 4", ran)
	}
}

// TestRunParallelReturnsLowestIndexError pins the error-ordering contract:
// the parallel path runs everything and surfaces the lowest-index error —
// the one a serial run would have reported first.
func TestRunParallelReturnsLowestIndexError(t *testing.T) {
	const n = 40
	var ran atomic.Int32
	err := pool.Run(8, n, func(w, i int) error {
		ran.Add(1)
		if i == 7 || i == 31 {
			return fmt.Errorf("err-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "err-7" {
		t.Fatalf("err = %v, want err-7 (lowest erroring index)", err)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("parallel run executed %d of %d items", got, n)
	}
}

// TestRunCtxPreCancelled: an already-cancelled context dispatches nothing
// and the cancellation error surfaces, on both the serial and parallel
// paths.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		var ran atomic.Int32
		err := pool.RunCtx(ctx, workers, 50, func(w, i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got != 0 {
			t.Fatalf("workers=%d: %d items ran under a pre-cancelled context", workers, got)
		}
	}
}

// TestRunCtxStopsDispatching: cancelling mid-sweep stops new dispatches and
// returns the context's error when no dispatched index failed.
func TestRunCtxStopsDispatching(t *testing.T) {
	const n = 10_000
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := pool.RunCtx(ctx, 4, n, func(w, i int) error {
		if ran.Add(1) == 16 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers already past their cancellation check may finish one more
	// item each, but the sweep must not run to completion.
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d items ran despite cancellation at item 16", n)
	}
}

// TestRunCtxDispatchedErrorWins: per the error-ordering contract, an error
// from a dispatched index beats the cancellation error.
func TestRunCtxDispatchedErrorWins(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	err := pool.RunCtx(ctx, 4, 100, func(w, i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the dispatched index's error", err)
	}
}

// TestRunCtxNilIsRun: a nil context is exactly Run.
func TestRunCtxNilIsRun(t *testing.T) {
	var ran atomic.Int32
	if err := pool.RunCtx(nil, 4, 25, func(w, i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 25 {
		t.Fatalf("ran %d of 25", ran.Load())
	}
}

func TestRunWorkerIndexInRange(t *testing.T) {
	const workers, n = 6, 100
	max := pool.Clamp(workers, n)
	var bad atomic.Int32
	if err := pool.Run(workers, n, func(w, i int) error {
		if w < 0 || w >= max {
			bad.Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d calls saw a worker index outside [0, %d)", bad.Load(), max)
	}
}
