// Package pool provides the index-ordered bounded worker pool shared by the
// recompilation pipeline (internal/core) and the benchmark harness
// (internal/bench). Both packages fan independent units of work — pipeline
// functions, bench cells — over a fixed worker count while collecting
// results by index, so their formatted/serialized outputs are independent of
// the worker count.
//
// The single error-ordering contract, shared by every caller:
//
//   - With one worker (or one item) the calls run serially in index order
//     and the first error stops the remaining ones — the historical serial
//     behavior, including early exit.
//   - With more workers every index runs to completion regardless of other
//     indices' failures, and the error returned is the erroring index with
//     the lowest value: the same error a serial run would have surfaced
//     first. Callers that preallocate per-index result slots therefore see
//     a fully populated result set on the non-erroring indices.
package pool

import (
	"context"
	"sync"
	"sync/atomic"
)

// Clamp returns the worker count Run will actually use for n items: at least
// 1, at most n, and never more than workers (workers <= 0 is treated as 1 by
// Run's serial path, so callers resolving a default — e.g. runtime.NumCPU()
// — must do so before calling). Callers that allocate per-worker state (the
// tracer's per-worker spans tracks) size it with Clamp so worker indices
// passed to f always land in [0, Clamp(workers, n)).
func Clamp(workers, n int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes f(w, i) for every i in [0, n) on up to workers goroutines.
// w identifies the worker making the call (always 0 on the serial path), so
// callers can keep per-worker state without locking. The error-ordering
// contract is documented on the package.
func Run(workers, n int, f func(w, i int) error) error {
	return RunCtx(nil, workers, n, f)
}

// RunCtx is Run with cooperative cancellation: once ctx is done, no new
// index is dispatched — indices already running finish normally, so f never
// observes a half-executed call — and, when no dispatched index returned
// its own error, ctx's error is returned so a cancelled caller cannot
// mistake a partial sweep for success. Per the error-ordering contract,
// an error from a dispatched index still wins over the cancellation error
// (it is what a serial run would have surfaced first). A nil or
// never-cancellable ctx is exactly Run.
func RunCtx(ctx context.Context, workers, n int, f func(w, i int) error) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if cancelled() {
				return ctx.Err()
			}
			if err := f(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	workers = Clamp(workers, n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !cancelled() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(w, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}
