package store

// Tiered composes a memory tier over an optional backing tier (typically
// Disk or Remote, possibly shared between owners). Gets probe memory first
// and promote backing hits into memory; Puts write through to both, so a
// fresh computation persists even if the process exits before it is reused.
//
// Generational pruning applies only to the memory tier — the backing tier
// keeps everything (subject to its own size limit) — so Tiered forwards
// BeginGen/EndGen to its Memory. A *shared* Tiered (NewSharedTiered) is one
// memory tier serving many concurrent owners — the fleet daemon's shape —
// where per-owner generation brackets would evict entries other owners are
// still using; there BeginGen/EndGen are no-ops and nothing is ever evicted
// from memory.
type Tiered struct {
	mem    *Memory
	back   Store // nil when memory-only
	shared bool  // generation brackets are no-ops (many concurrent owners)
}

// NewTiered returns mem composed over back; back may be nil for a
// memory-only store.
func NewTiered(mem *Memory, back Store) *Tiered {
	if mem == nil {
		mem = NewMemory()
	}
	return &Tiered{mem: mem, back: back}
}

// NewSharedTiered returns a Tiered meant to be shared across concurrent
// owners (e.g. every request of a long-running daemon): generation brackets
// are no-ops, so one owner's pruning cycle can never evict entries another
// owner is relying on.
func NewSharedTiered(mem *Memory, back Store) *Tiered {
	t := NewTiered(mem, back)
	t.shared = true
	return t
}

// Mem exposes the memory tier (for Len in tests and diagnostics).
func (t *Tiered) Mem() *Memory { return t.mem }

// HasBacking reports whether a backing tier is attached.
func (t *Tiered) HasBacking() bool { return t.back != nil }

// Shared reports whether this store is in shared (no-eviction) mode.
func (t *Tiered) Shared() bool { return t.shared }

// BeginGen opens a pruning generation on the memory tier (no-op when
// shared).
func (t *Tiered) BeginGen() {
	if t.shared {
		return
	}
	t.mem.BeginGen()
}

// EndGen closes the memory tier's generation and returns its evicted count
// (always 0 when shared).
func (t *Tiered) EndGen() int {
	if t.shared {
		return 0
	}
	return t.mem.EndGen()
}

// Get implements Store; tier reports which tier served the hit ("mem" or
// the backing tier's own name). On a backing hit the bytes are promoted
// into memory; the caller receives a private copy, so mutating it cannot
// corrupt the promoted entry.
func (t *Tiered) Get(ns string, key Key) ([]byte, string, bool) {
	if data, tier, ok := t.mem.Get(ns, key); ok {
		return data, tier, true
	}
	if t.back == nil {
		return nil, "", false
	}
	data, tier, ok := t.back.Get(ns, key)
	if !ok {
		return nil, "", false
	}
	t.mem.Put(ns, key, data)
	return cloneBytes(data), tier, true
}

// Put implements Store.
func (t *Tiered) Put(ns string, key Key, data []byte) {
	t.mem.Put(ns, key, data)
	if t.back != nil {
		t.back.Put(ns, key, data)
	}
}

// Stats implements Store, merging per-tier counters from both tiers.
func (t *Tiered) Stats() map[string]Counters {
	out := map[string]Counters{}
	for name, c := range t.mem.Stats() {
		cc := out[name]
		cc.Add(c)
		out[name] = cc
	}
	if t.back != nil {
		for name, c := range t.back.Stats() {
			cc := out[name]
			cc.Add(c)
			out[name] = cc
		}
	}
	return out
}
