package store

// Tiered composes a memory tier over an optional backing tier (typically
// Disk, possibly shared between owners). Gets probe memory first and
// promote backing hits into memory; Puts write through to both, so a fresh
// computation persists even if the process exits before it is reused.
//
// Generational pruning applies only to the memory tier — the backing tier
// keeps everything — so Tiered forwards BeginGen/EndGen to its Memory.
type Tiered struct {
	mem  *Memory
	back Store // nil when memory-only
}

// NewTiered returns mem composed over back; back may be nil for a
// memory-only store.
func NewTiered(mem *Memory, back Store) *Tiered {
	if mem == nil {
		mem = NewMemory()
	}
	return &Tiered{mem: mem, back: back}
}

// Mem exposes the memory tier (for Len in tests and diagnostics).
func (t *Tiered) Mem() *Memory { return t.mem }

// BeginGen opens a pruning generation on the memory tier.
func (t *Tiered) BeginGen() { t.mem.BeginGen() }

// EndGen closes the memory tier's generation and returns its evicted count.
func (t *Tiered) EndGen() int { return t.mem.EndGen() }

// Get implements Store; tier reports which tier served the hit ("mem" or
// the backing tier's own name).
func (t *Tiered) Get(ns string, key Key) ([]byte, string, bool) {
	if data, tier, ok := t.mem.Get(ns, key); ok {
		return data, tier, true
	}
	if t.back == nil {
		return nil, "", false
	}
	data, tier, ok := t.back.Get(ns, key)
	if !ok {
		return nil, "", false
	}
	t.mem.Put(ns, key, data)
	return data, tier, true
}

// Put implements Store.
func (t *Tiered) Put(ns string, key Key, data []byte) {
	t.mem.Put(ns, key, data)
	if t.back != nil {
		t.back.Put(ns, key, data)
	}
}

// Stats implements Store, merging per-tier counters from both tiers.
func (t *Tiered) Stats() map[string]Counters {
	out := map[string]Counters{}
	for name, c := range t.mem.Stats() {
		cc := out[name]
		cc.Add(c)
		out[name] = cc
	}
	if t.back != nil {
		for name, c := range t.back.Stats() {
			cc := out[name]
			cc.Add(c)
			out[name] = cc
		}
	}
	return out
}
