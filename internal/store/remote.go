package store

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Remote is a store tier backed by a content-addressed blob service over
// HTTP — the fleet-sharing tier: a farm of workers pointing at one
// polynimad (internal/serve) shares one warm store.
//
// Wire protocol: GET/PUT <base>/store/v1/<ns>/<key hex>, body framed as
// magic ++ len ++ sha256(payload) ++ payload (frame.go), so a truncated or
// corrupted response can never decode into data.
//
// Degradation contract: the remote side is untrusted and the network is
// unreliable, and neither may ever change recompiled bytes or surface an
// error to the pipeline. Every failure mode — timeout, connection refused,
// 5xx, truncated body, checksum mismatch — degrades to a counted miss (Get)
// or a counted dropped write (Put). Transient failures are retried with
// exponential backoff a bounded number of times; a 404 is an authoritative
// miss and is never retried. Each attempt runs under its own timeout, so a
// hung server costs a bounded delay, not a hung pipeline.
type Remote struct {
	base    string // e.g. "http://stores.internal:8379", no trailing slash
	hc      *http.Client
	timeout time.Duration
	retries int // attempts beyond the first
	backoff time.Duration
	token   string // bearer token sent with every request ("" = none)
	tparent string // W3C traceparent header sent with every request ("" = none)
	lat     LatencyObserver

	// sleep is the backoff sleep, a test seam.
	sleep func(time.Duration)

	mu sync.Mutex
	c  Counters
}

// RemoteOptions tunes a Remote tier; zero values select the defaults.
type RemoteOptions struct {
	// Timeout bounds each individual request attempt (default 2s).
	Timeout time.Duration
	// Retries is how many times a transiently failed request is retried
	// beyond the first attempt (default 2; negative = no retries).
	Retries int
	// Backoff is the delay before the first retry; it doubles per retry
	// (default 50ms).
	Backoff time.Duration
	// Client overrides the HTTP client (default http.DefaultTransport-based
	// client; the per-attempt timeout comes from Timeout, not the client).
	Client *http.Client
	// AuthToken, when non-empty, is sent as "Authorization: Bearer <token>"
	// with every request — the credential a hardened polynimad
	// (-auth-token) requires.
	AuthToken string
	// Traceparent, when non-empty, is sent as the W3C `traceparent` header
	// with every request, so the store service joins the client's
	// distributed trace: store ops it serves are tagged with the client's
	// trace id in its span trace and access log. The value is the client
	// process's root trace position (obs.TraceContext.Traceparent()) — all
	// of one process's store ops are children of its root span.
	Traceparent string
}

// NewRemote returns a remote tier talking to the store service at base
// (scheme + host[:port], with or without a trailing slash). The URL is
// validated here so a misconfigured flag fails at startup, not as an
// eternal stream of counted errors.
func NewRemote(base string, opts RemoteOptions) (*Remote, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("store: remote base %q: %w", base, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("store: remote base %q: scheme must be http or https", base)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("store: remote base %q: missing host", base)
	}
	r := &Remote{
		base:    strings.TrimRight(base, "/"),
		hc:      opts.Client,
		timeout: opts.Timeout,
		retries: opts.Retries,
		backoff: opts.Backoff,
		token:   opts.AuthToken,
		tparent: opts.Traceparent,
		sleep:   time.Sleep,
	}
	if r.hc == nil {
		r.hc = &http.Client{}
	}
	if r.timeout <= 0 {
		r.timeout = 2 * time.Second
	}
	if r.retries == 0 {
		r.retries = 2
	} else if r.retries < 0 {
		r.retries = 0
	}
	if r.backoff <= 0 {
		r.backoff = 50 * time.Millisecond
	}
	return r, nil
}

// Base reports the service base URL.
func (r *Remote) Base() string { return r.base }

func (r *Remote) url(ns string, key Key) string {
	return r.base + "/store/" + diskVersion + "/" + ns + "/" + key.Hex()
}

// maxRemoteEntry bounds how many bytes Get will read from a response, so a
// misbehaving server cannot exhaust memory. Artifacts are at most a lowered
// image; 1 GiB is far beyond any of them.
const maxRemoteEntry = 1 << 30

// maxBackoff caps the per-retry delay: a large -remote-store-retries must
// cost at most retries*maxBackoff, not a shift-overflowed (huge or negative)
// sleep.
const maxBackoff = 5 * time.Second

// backoffFor returns the delay before retry number attempt (0-based):
// exponential doubling from the configured base, capped at maxBackoff, plus
// a small deterministic jitter (±d/8, cycling by attempt) that staggers a
// fleet of workers retrying against the same recovering server. Doubling by
// repeated addition, not a shift, so no attempt count can overflow.
func (r *Remote) backoffFor(attempt int) time.Duration {
	d := r.backoff
	for i := 0; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	d += time.Duration(attempt%3-1) * (d / 8)
	return d
}

// Get implements Store. Every failure is a miss; see the degradation
// contract in the type comment. An installed LatencyObserver times the
// whole logical operation, retries and backoff sleeps included — that is
// the latency the pipeline actually pays.
func (r *Remote) Get(ns string, key Key) ([]byte, string, bool) {
	if r.lat != nil {
		defer observeSince(r.lat, "remote", "get", time.Now())
	}
	for attempt := 0; ; attempt++ {
		raw, status, err := r.do(http.MethodGet, r.url(ns, key), nil)
		switch {
		case err == nil && status == http.StatusOK:
			payload, ok := DecodeFrame(raw)
			if !ok {
				// Truncated body, checksum mismatch, garbage: counted
				// corruption, served as a miss. Not retried — the server
				// answered authoritatively, it just answered garbage.
				r.count(func(c *Counters) { c.Misses++; c.Corrupt++ })
				return nil, "", false
			}
			r.count(func(c *Counters) { c.Hits++ })
			return payload, "remote", true
		case err == nil && status == http.StatusNotFound:
			// Authoritative miss: the entry is not there. No retry.
			r.count(func(c *Counters) { c.Misses++ })
			return nil, "", false
		case err == nil && status == http.StatusTooManyRequests:
			// Server shed the request (admission control): counted as
			// throttled, retried like a transient failure — the entry may
			// well be there once the server has capacity.
			r.count(func(c *Counters) { c.Throttled++ })
		case err == nil && status >= 400 && status < 500:
			// Other 4xx: the request itself is broken (bad namespace, bad
			// credential). Retrying cannot help.
			r.count(func(c *Counters) { c.Misses++; c.Errors++ })
			return nil, "", false
		}
		// Transport error, timeout, 5xx, or 429: transient, retry with
		// capped backoff.
		if attempt >= r.retries {
			r.count(func(c *Counters) { c.Misses++; c.Errors++ })
			return nil, "", false
		}
		r.count(func(c *Counters) { c.Retries++ })
		r.sleep(r.backoffFor(attempt))
	}
}

// Put implements Store: best-effort write-through. Failures are counted and
// swallowed; the caller keeps its freshly computed artifact either way.
func (r *Remote) Put(ns string, key Key, data []byte) {
	if r.lat != nil {
		defer observeSince(r.lat, "remote", "put", time.Now())
	}
	body := EncodeFrame(data)
	for attempt := 0; ; attempt++ {
		_, status, err := r.do(http.MethodPut, r.url(ns, key), body)
		switch {
		case err == nil && status >= 200 && status < 300:
			return
		case err == nil && status == http.StatusTooManyRequests:
			// Shed by admission control: throttled, retried.
			r.count(func(c *Counters) { c.Throttled++ })
		case err == nil && status >= 400 && status < 500:
			r.count(func(c *Counters) { c.Errors++ })
			return
		}
		if attempt >= r.retries {
			r.count(func(c *Counters) { c.Errors++ })
			return
		}
		r.count(func(c *Counters) { c.Retries++ })
		r.sleep(r.backoffFor(attempt))
	}
}

// do runs one request attempt under the per-request timeout. It returns the
// response body (GET only) and status; any transport or read failure is an
// error.
func (r *Remote) do(method, u string, body []byte) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	if r.token != "" {
		req.Header.Set("Authorization", "Bearer "+r.token)
	}
	if r.tparent != "" {
		req.Header.Set("traceparent", r.tparent)
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if method != http.MethodGet || resp.StatusCode != http.StatusOK {
		// Drain (bounded) so the connection can be reused.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil, resp.StatusCode, nil
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteEntry))
	if err != nil {
		// A read error mid-body is transport trouble, not an authoritative
		// answer — let the caller's retry policy decide.
		return nil, 0, err
	}
	return raw, resp.StatusCode, nil
}

// SetLatencyObserver implements LatencyObservable. Install before the tier
// serves traffic (the observer is read without synchronization in Get/Put).
func (r *Remote) SetLatencyObserver(obs LatencyObserver) { r.lat = obs }

// Stats implements Store.
func (r *Remote) Stats() map[string]Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return map[string]Counters{"remote": r.c}
}

func (r *Remote) count(f func(*Counters)) {
	r.mu.Lock()
	f(&r.c)
	r.mu.Unlock()
}
