package store_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// TestMemoryGetAliasing is the mutation-aliasing regression test: a caller
// mutating the slice it got back must never corrupt the cached entry —
// fatal once the memory tier is shared across daemon requests.
func TestMemoryGetAliasing(t *testing.T) {
	m := store.NewMemory()
	k := store.KeyOf([]byte("k"))
	m.Put("f", k, []byte("pristine"))

	got, _, ok := m.Get("f", k)
	if !ok {
		t.Fatal("miss")
	}
	for i := range got {
		got[i] = 'X'
	}
	again, _, ok := m.Get("f", k)
	if !ok || string(again) != "pristine" {
		t.Fatalf("cached entry corrupted by caller mutation: %q", again)
	}
}

// TestTieredPromoteAliasing covers the promotion path: after a backing hit
// is promoted into memory, mutating the returned slice must not corrupt the
// promoted entry.
func TestTieredPromoteAliasing(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := store.KeyOf([]byte("k"))
	disk.Put("img", k, []byte("pristine"))

	ts := store.NewTiered(store.NewMemory(), disk)
	got, tier, ok := ts.Get("img", k)
	if !ok || tier != "disk" {
		t.Fatalf("Get = %q, %v, want disk hit", tier, ok)
	}
	for i := range got {
		got[i] = 'X'
	}
	again, tier, ok := ts.Get("img", k)
	if !ok || tier != "mem" || string(again) != "pristine" {
		t.Fatalf("promoted entry corrupted: %q (tier %q, ok %v)", again, tier, ok)
	}
}

// TestDiskGetErrorIsCountedDistinctly: a real I/O failure (here: the entry
// path is a directory, so ReadFile fails with EISDIR) must count under
// Errors as well as Misses, so operational problems are distinguishable
// from cold entries.
func TestDiskGetErrorIsCountedDistinctly(t *testing.T) {
	d, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := store.KeyOf([]byte("k"))
	hex := k.Hex()
	// Plant a directory where the entry file would live.
	p := filepath.Join(d.Dir(), "v1", "func", hex[:2], hex)
	if err := os.MkdirAll(p, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d.Get("func", k); ok {
		t.Fatal("hit on unreadable entry")
	}
	// A plain cold key stays a plain miss.
	if _, _, ok := d.Get("func", store.KeyOf([]byte("cold"))); ok {
		t.Fatal("hit on cold key")
	}
	st := d.Stats()["disk"]
	if st.Misses != 2 || st.Errors != 1 {
		t.Fatalf("counters = %+v, want 2 misses / 1 error", st)
	}
}

// TestDiskPruning: with a size limit set, the tier prunes its
// least-recently-modified entries back under the limit instead of growing
// monotonically.
func TestDiskPruning(t *testing.T) {
	d, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xab}, 1024)
	// Each entry is frame header (48B) + 1KiB; limit to ~8 entries.
	d.SetMaxBytes(8 * 1100)

	keys := make([]store.Key, 32)
	for i := range keys {
		keys[i] = store.KeyOf([]byte(fmt.Sprintf("entry-%d", i)))
		d.Put("func", keys[i], payload)
		// Backdate older entries so mtime ordering is deterministic even on
		// coarse-mtime filesystems.
		mt := time.Now().Add(time.Duration(i-len(keys)) * time.Minute)
		hex := keys[i].Hex()
		os.Chtimes(filepath.Join(d.Dir(), "v1", "func", hex[:2], hex), mt, mt)
	}

	var total int64
	filepath.Walk(d.Dir(), func(p string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	if total > 8*1100 {
		t.Fatalf("store holds %d bytes after pruning, limit %d", total, 8*1100)
	}
	st := d.Stats()["disk"]
	if st.Evictions == 0 {
		t.Fatalf("counters = %+v, want evictions > 0", st)
	}
	// The newest entry must have survived; pruned entries read as plain
	// misses and can be rewritten.
	if _, _, ok := d.Get("func", keys[len(keys)-1]); !ok {
		t.Fatal("newest entry was pruned")
	}
	if _, _, ok := d.Get("func", keys[0]); ok {
		t.Fatal("oldest entry survived pruning past the limit")
	}
	d.Put("func", keys[0], payload)
	if data, _, ok := d.Get("func", keys[0]); !ok || !bytes.Equal(data, payload) {
		t.Fatal("rewrite after pruning failed")
	}
}

// TestSharedTieredNoEviction: generation brackets on a shared Tiered are
// no-ops, so one owner's Begin/End cycle can never evict entries another
// owner still needs.
func TestSharedTieredNoEviction(t *testing.T) {
	ts := store.NewSharedTiered(store.NewMemory(), nil)
	k1, k2 := store.KeyOf([]byte("1")), store.KeyOf([]byte("2"))
	ts.Put("f", k1, []byte("v1"))
	ts.Put("f", k2, []byte("v2"))
	ts.BeginGen()
	ts.Get("f", k1) // k2 untouched this "generation"
	if ev := ts.EndGen(); ev != 0 {
		t.Fatalf("shared EndGen evicted %d", ev)
	}
	if _, _, ok := ts.Get("f", k2); !ok {
		t.Fatal("shared tier evicted an entry across a generation bracket")
	}
	if !ts.Shared() || ts.HasBacking() {
		t.Fatal("Shared/HasBacking misreport")
	}
}

// TestTieredSharedConcurrent exercises one shared Tiered from many
// goroutines across namespaces — Put, Get, promotion from disk, and
// generation brackets all interleaving. Run under -race in CI; correctness
// here means every hit returns exactly the bytes put under that key.
func TestTieredSharedConcurrent(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := store.NewSharedTiered(store.NewMemory(), disk)
	namespaces := []string{"cfg", "func", "image"}

	value := func(ns string, i int) []byte {
		return []byte(fmt.Sprintf("%s/value-%d", ns, i))
	}
	key := func(ns string, i int) store.Key {
		return store.KeyOf([]byte(ns), store.U64(uint64(i)))
	}

	const workers = 8
	const keysPerNS = 24
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for op := 0; op < 400; op++ {
				ns := namespaces[rng.Intn(len(namespaces))]
				i := rng.Intn(keysPerNS)
				switch rng.Intn(4) {
				case 0:
					ts.Put(ns, key(ns, i), value(ns, i))
				case 1:
					ts.BeginGen()
					ts.EndGen()
				default:
					if data, _, ok := ts.Get(ns, key(ns, i)); ok {
						if !bytes.Equal(data, value(ns, i)) {
							t.Errorf("corrupted read: ns %s key %d = %q", ns, i, data)
							return
						}
						// Exercise the aliasing hardening under load.
						for j := range data {
							data[j] = 0
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// After the dust settles every key that was ever put must read back
	// exactly, whichever tier serves it.
	for _, ns := range namespaces {
		for i := 0; i < keysPerNS; i++ {
			if data, _, ok := ts.Get(ns, key(ns, i)); ok && !bytes.Equal(data, value(ns, i)) {
				t.Fatalf("post-run corrupted read: ns %s key %d = %q", ns, i, data)
			}
		}
	}
}

// TestChainProbesInOrderAndWritesThrough covers the composite backing tier
// used when a local disk fronts a shared remote store.
func TestChainProbesInOrderAndWritesThrough(t *testing.T) {
	d1, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ch := store.NewChain(nil, d1, d2)
	k := store.KeyOf([]byte("k"))
	ch.Put("f", k, []byte("v"))
	// Both tiers hold the entry; the first serves it.
	if _, _, ok := d2.Get("f", k); !ok {
		t.Fatal("write-through skipped the second tier")
	}
	if data, tier, ok := ch.Get("f", k); !ok || tier != "disk" || string(data) != "v" {
		t.Fatalf("Get = %q, %q, %v", data, tier, ok)
	}
	// Degenerate compositions.
	if store.NewChain(nil, nil) != nil {
		t.Fatal("empty chain should be nil")
	}
	if got := store.NewChain(nil, d1); got != store.Store(d1) {
		t.Fatal("single-tier chain should be the tier itself")
	}
}
