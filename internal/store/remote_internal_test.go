package store

// White-box Remote tests: the backoff schedule and throttling counters need
// the unexported sleep seam and backoffFor, so unlike remote_test.go
// (package store_test) these live in the package.

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRemoteBackoffSchedule pins the exact backoff sequence: exponential
// doubling from the base, capped at maxBackoff, with the deterministic
// ±d/8 jitter cycle — and in particular no shift overflow at large attempt
// counts (the historical r.backoff << attempt bug went huge/negative).
func TestRemoteBackoffSchedule(t *testing.T) {
	r, err := NewRemote("http://127.0.0.1:1", RemoteOptions{Backoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ms := time.Millisecond
	want := map[int]time.Duration{
		0: 50*ms - 50*ms/8,   // jitter cycle position -1
		1: 100 * ms,          // position 0
		2: 200*ms + 200*ms/8, // position +1
		3: 400*ms - 400*ms/8,
		4: 800 * ms,
		6: 3200*ms - 3200*ms/8,
		7: 5000 * ms, // capped: 50ms*2^7 = 6.4s > maxBackoff; jitter position 0
		8: 5000*ms + 5000*ms/8,
	}
	for attempt, w := range want {
		if got := r.backoffFor(attempt); got != w {
			t.Errorf("backoffFor(%d) = %v, want %v", attempt, got, w)
		}
	}
	// Any attempt count — including ones that would overflow a shift —
	// stays within (0, maxBackoff + maxBackoff/8].
	for _, attempt := range []int{8, 63, 64, 100, 1 << 20} {
		d := r.backoffFor(attempt)
		if d <= 0 || d > maxBackoff+maxBackoff/8 {
			t.Errorf("backoffFor(%d) = %v, outside (0, %v]", attempt, d, maxBackoff+maxBackoff/8)
		}
	}
}

// TestRemoteRetrySleepsCapped drives a Remote with a huge retry budget
// against an always-500 server and asserts, counter-exactly, that every
// recorded sleep matches the capped schedule — no overflowed sleep ever
// reaches the seam.
func TestRemoteRetrySleepsCapped(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	const retries = 70 // far past where << attempt would overflow
	r, err := NewRemote(srv.URL, RemoteOptions{Retries: retries, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	r.sleep = func(d time.Duration) { slept = append(slept, d) }

	if _, _, ok := r.Get("func", KeyOf([]byte("k"))); ok {
		t.Fatal("Get succeeded against an always-500 server")
	}
	if len(slept) != retries {
		t.Fatalf("slept %d times, want %d", len(slept), retries)
	}
	for i, d := range slept {
		if want := r.backoffFor(i); d != want {
			t.Fatalf("sleep %d = %v, want %v", i, d, want)
		}
		if d <= 0 || d > maxBackoff+maxBackoff/8 {
			t.Fatalf("sleep %d = %v out of range", i, d)
		}
	}
	st := r.Stats()["remote"]
	if st.Retries != retries || st.Misses != 1 || st.Errors != 1 {
		t.Fatalf("counters = %+v", st)
	}
}

// TestRemoteThrottledRetries: a 429 is counted under Throttled and retried
// like a transient failure, on both Get and Put.
func TestRemoteThrottledRetries(t *testing.T) {
	key := KeyOf([]byte("k"))
	payload := []byte("artifact")
	var fails int
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		switch r.Method {
		case http.MethodGet:
			w.Write(EncodeFrame(payload))
		case http.MethodPut:
			w.WriteHeader(http.StatusNoContent)
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	r, err := NewRemote(srv.URL, RemoteOptions{Retries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r.sleep = func(time.Duration) {}

	fails = 2
	got, tier, ok := r.Get("func", key)
	if !ok || tier != "remote" || string(got) != string(payload) {
		t.Fatalf("Get after throttling = %q, %q, %v", got, tier, ok)
	}
	fails = 1
	r.Put("func", key, payload)

	st := r.Stats()["remote"]
	if st.Throttled != 3 || st.Retries != 3 || st.Hits != 1 || st.Errors != 0 {
		t.Fatalf("counters = %+v, want Throttled 3, Retries 3, Hits 1", st)
	}

	// Throttled past the retry budget: degrades to a miss like any other
	// transient failure.
	fails = 10
	if _, _, ok := r.Get("func", key); ok {
		t.Fatal("Get succeeded through an exhausted retry budget")
	}
	st = r.Stats()["remote"]
	if st.Misses != 1 || st.Errors != 1 {
		t.Fatalf("post-exhaustion counters = %+v", st)
	}
}

// TestRemoteAuthHeader: AuthToken rides as "Authorization: Bearer" on every
// request; without it no Authorization header is sent.
func TestRemoteAuthHeader(t *testing.T) {
	var got []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, r.Header.Get("Authorization"))
		if r.Method == http.MethodGet {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	key := KeyOf([]byte("k"))
	withTok, err := NewRemote(srv.URL, RemoteOptions{AuthToken: "s3cret", Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	withTok.Get("func", key)
	withTok.Put("func", key, []byte("v"))

	noTok, err := NewRemote(srv.URL, RemoteOptions{Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	noTok.Get("func", key)

	want := []string{"Bearer s3cret", "Bearer s3cret", ""}
	if len(got) != len(want) {
		t.Fatalf("saw %d requests, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("request %d Authorization = %q, want %q", i, got[i], want[i])
		}
	}
}
