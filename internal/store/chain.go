package store

// Chain composes several backing tiers in probe order: Get returns the
// first tier's hit, Put writes through to every tier, Stats merges all of
// them. Unlike Tiered it performs no promotion — it is meant as the backing
// side of a Tiered (e.g. local disk probed before a shared remote store),
// where the fronting memory tier already absorbs repeated reads and the
// write-through keeps every tier warm.
type Chain struct {
	tiers []Store
}

// NewChain returns the tiers composed in probe order. Nil entries are
// dropped; a chain of zero or one tier degenerates to that tier (nil for
// zero), so callers can compose optional tiers unconditionally.
func NewChain(tiers ...Store) Store {
	var live []Store
	for _, s := range tiers {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &Chain{tiers: live}
}

// Get implements Store: the first tier that has the key serves it.
func (ch *Chain) Get(ns string, key Key) ([]byte, string, bool) {
	for _, s := range ch.tiers {
		if data, tier, ok := s.Get(ns, key); ok {
			return data, tier, true
		}
	}
	return nil, "", false
}

// Put implements Store: write-through to every tier.
func (ch *Chain) Put(ns string, key Key, data []byte) {
	for _, s := range ch.tiers {
		s.Put(ns, key, data)
	}
}

// Stats implements Store, merging per-tier counters across the chain.
func (ch *Chain) Stats() map[string]Counters {
	out := map[string]Counters{}
	for _, s := range ch.tiers {
		for name, c := range s.Stats() {
			cc := out[name]
			cc.Add(c)
			out[name] = cc
		}
	}
	return out
}
