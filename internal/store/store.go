// Package store is the tiered content-addressed artifact store behind the
// staged recompilation pipeline (internal/core).
//
// Every pipeline stage declares a typed artifact — the static CFG, an ICFT
// trace merge, a lifted+optimized function body, the final lowered image —
// and a sha256 fingerprint over that artifact's full input set. The
// fingerprint is the store key: artifacts are content-addressed, so
// invalidation is implicit (a changed input hashes to a new key and the
// stale entry simply stops being referenced).
//
// Two tiers implement the Store interface:
//
//   - Memory (mem.go): a process-local map with generational pruning — the
//     generalization of core's original content-addressed function cache.
//     Each core.Project owns one, so pruning semantics stay project-local.
//   - Disk (disk.go): a persistent tier under a versioned key namespace,
//     written atomically (temp file + rename, atomic.go). Any corrupt,
//     short, or version-mismatched entry is treated as a miss and counted —
//     never surfaced as an error and never able to produce a wrong output,
//     because payloads are checksummed and artifacts are content-addressed.
//
// Tiered (tiered.go) composes a memory tier over an optional backing tier
// and promotes backing hits into memory. The determinism contract
// (DESIGN.md §3): recompiled bytes are identical whether an artifact is
// recomputed, replayed from memory, or replayed from disk.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Key is a content-address: a sha256 fingerprint over an artifact's full
// input set.
type Key [32]byte

// Hex renders the key for paths and diagnostics.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// KeyOf hashes the parts in order into a Key. Each part is framed by its
// length, so distinct part boundaries can never collide by concatenation.
func KeyOf(parts ...[]byte) Key {
	h := sha256.New()
	var w [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(w[:], uint64(len(p)))
		h.Write(w[:])
		h.Write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// U64 renders x as a little-endian KeyOf part.
func U64(x uint64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], x)
	return w[:]
}

// Counters is a point-in-time snapshot of one tier's outcome counts.
type Counters struct {
	Hits      int64 // Get served from this tier
	Misses    int64 // Get that this tier could not serve
	Evictions int64 // entries dropped by pruning (memory generations, disk size limit)
	Corrupt   int64 // entries rejected as corrupt/short/checksum-mismatched
	Errors    int64 // I/O or transport errors swallowed (degraded to misses / dropped writes)
	Retries   int64 // remote-tier request attempts beyond the first
	Throttled int64 // remote-tier requests shed by the server (429), retried after backoff
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Evictions += o.Evictions
	c.Corrupt += o.Corrupt
	c.Errors += o.Errors
	c.Retries += o.Retries
	c.Throttled += o.Throttled
}

// Store is a content-addressed blob store. Namespaces separate artifact
// types (one encoding schema each); ns must be non-empty and match
// [A-Za-z0-9._-]+ so it can double as a directory name (and a URL path
// segment, remote.go).
//
// Get returns the stored bytes, the name of the tier that served them
// ("mem", "disk", "remote"), and whether the key was present. The returned
// slice is the caller's to use: tiers that retain internal buffers (the
// memory tier) hand out a private copy, so mutating it can never corrupt a
// later read. Put stores data under (ns, key); the store takes ownership of
// the slice, so the caller must not mutate it afterwards. Puts are
// best-effort: a tier that cannot persist (I/O error, remote outage) counts
// the failure and stays usable.
type Store interface {
	Get(ns string, key Key) (data []byte, tier string, ok bool)
	Put(ns string, key Key, data []byte)
	// Stats returns per-tier counter snapshots, keyed by tier name.
	Stats() map[string]Counters
}

// cloneBytes returns a private copy of b (nil stays nil).
func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp
}
