package store

// White-box Disk test: the overwrite accounting fix is only directly
// observable through the unexported tracked size, so this lives in the
// package.

import (
	"bytes"
	"testing"
)

// TestDiskOverwriteAccounting: repeated Puts of the same key replace one
// entry, so under SetMaxBytes they must neither inflate the tracked size
// (the historical full-frame-per-Put double count) nor ever evict.
func TestDiskOverwriteAccounting(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xA5}, 1024)
	frameLen := int64(len(EncodeFrame(payload)))
	// Budget fits the entry a handful of times over; 100 double-counted
	// Puts would cross it dozens of times.
	d.SetMaxBytes(4 * frameLen)

	key := KeyOf([]byte("hot"))
	for i := 0; i < 100; i++ {
		d.Put("func", key, payload)
	}

	if got, _, ok := d.Get("func", key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after repeated overwrites = %v bytes, ok=%v", len(got), ok)
	}
	if ev := d.Stats()["disk"].Evictions; ev != 0 {
		t.Fatalf("repeated same-key Puts evicted %d entries", ev)
	}
	d.pmu.Lock()
	size, sizeOK := d.size, d.sizeOK
	d.pmu.Unlock()
	if !sizeOK || size != frameLen {
		t.Fatalf("tracked size = %d (ok=%v), want the single entry's %d bytes",
			size, sizeOK, frameLen)
	}

	// A different key still accounts additively.
	d.Put("func", KeyOf([]byte("cold")), payload)
	d.pmu.Lock()
	size = d.size
	d.pmu.Unlock()
	if size != 2*frameLen {
		t.Fatalf("tracked size after second key = %d, want %d", size, 2*frameLen)
	}
}
