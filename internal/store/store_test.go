package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

func TestKeyOfFraming(t *testing.T) {
	// Length framing: moving a byte across a part boundary changes the key.
	a := store.KeyOf([]byte("ab"), []byte("c"))
	b := store.KeyOf([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("KeyOf collides across part boundaries")
	}
	if a != store.KeyOf([]byte("ab"), []byte("c")) {
		t.Fatal("KeyOf is not deterministic")
	}
	if len(a.Hex()) != 64 {
		t.Fatalf("Hex length = %d, want 64", len(a.Hex()))
	}
}

func TestMemoryGenerationalPruning(t *testing.T) {
	m := store.NewMemory()
	k1 := store.KeyOf([]byte("one"))
	k2 := store.KeyOf([]byte("two"))

	m.BeginGen()
	m.Put("f", k1, []byte("b1"))
	m.Put("f", k2, []byte("b2"))
	if ev := m.EndGen(); ev != 0 {
		t.Fatalf("gen 1 evicted %d, want 0", ev)
	}

	// Gen 2 touches only k1; k2 goes unused for exactly one generation and
	// must be evicted at its close.
	m.BeginGen()
	if _, _, ok := m.Get("f", k1); !ok {
		t.Fatal("k1 missing in gen 2")
	}
	if ev := m.EndGen(); ev != 1 {
		t.Fatalf("gen 2 evicted %d, want 1 (the untouched entry)", ev)
	}
	if m.Len("f") != 1 {
		t.Fatalf("Len = %d after eviction, want 1", m.Len("f"))
	}
	if _, _, ok := m.Get("f", k2); ok {
		t.Fatal("evicted entry still readable")
	}
	// The entry touched every generation survives indefinitely.
	m.BeginGen()
	if _, _, ok := m.Get("f", k1); !ok {
		t.Fatal("k1 evicted despite being touched every generation")
	}
	m.EndGen()

	st := m.Stats()["mem"]
	if st.Evictions != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("counters = %+v, want 2 hits / 1 miss / 1 eviction", st)
	}
}

func TestMemoryNamespacesAreDisjoint(t *testing.T) {
	m := store.NewMemory()
	k := store.KeyOf([]byte("x"))
	m.Put("a", k, []byte("in-a"))
	if _, _, ok := m.Get("b", k); ok {
		t.Fatal("key leaked across namespaces")
	}
	if data, tier, ok := m.Get("a", k); !ok || tier != "mem" || string(data) != "in-a" {
		t.Fatalf("Get(a) = %q, %q, %v", data, tier, ok)
	}
}

func TestDiskRoundTripAndLayout(t *testing.T) {
	d, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := store.KeyOf([]byte("payload"))
	want := []byte("the artifact bytes")
	d.Put("func", k, want)
	got, tier, ok := d.Get("func", k)
	if !ok || tier != "disk" || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %q, %v", got, tier, ok)
	}
	// Versioned, sharded layout: dir/v1/<ns>/<hex2>/<hexkey>.
	p := filepath.Join(d.Dir(), "v1", "func", k.Hex()[:2], k.Hex())
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry not at expected path %s: %v", p, err)
	}
	// Absent key: a plain miss, not corruption.
	if _, _, ok := d.Get("func", store.KeyOf([]byte("other"))); ok {
		t.Fatal("hit on absent key")
	}
	st := d.Stats()["disk"]
	if st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("counters = %+v, want 1 hit / 1 miss / 0 corrupt", st)
	}
}

// TestDiskCorruptionIsACountedMiss pins the acceptance criterion: a
// truncated entry, a flipped payload byte, and a wrong version/magic prefix
// each degrade to a counted miss — never an error, never stale data.
func TestDiskCorruptionIsACountedMiss(t *testing.T) {
	corruptions := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"short-header", func(b []byte) []byte { return b[:10] }},
		{"flipped-payload-byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xff
			return c
		}},
		{"wrong-version-prefix", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c, "PNSTORE9")
			return c
		}},
		{"trailing-garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xcc) }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			d, err := store.OpenDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			k := store.KeyOf([]byte(tc.name))
			d.Put("func", k, []byte("good bytes"))
			p := filepath.Join(d.Dir(), "v1", "func", k.Hex()[:2], k.Hex())
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, tc.mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, ok := d.Get("func", k); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			st := d.Stats()["disk"]
			if st.Corrupt != 1 || st.Misses != 1 {
				t.Fatalf("counters = %+v, want 1 corrupt / 1 miss", st)
			}
			// The bad entry is dropped, so a rewrite restores service.
			d.Put("func", k, []byte("good bytes"))
			if got, _, ok := d.Get("func", k); !ok || string(got) != "good bytes" {
				t.Fatalf("rewrite after corruption: Get = %q, %v", got, ok)
			}
		})
	}
}

func TestTieredPromotionAndWriteThrough(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := store.NewTiered(store.NewMemory(), disk)
	k := store.KeyOf([]byte("k"))
	ts.Put("img", k, []byte("v"))

	// Write-through: a second Tiered over the same disk sees the entry,
	// first from disk, then (promoted) from memory.
	ts2 := store.NewTiered(store.NewMemory(), disk)
	if _, tier, ok := ts2.Get("img", k); !ok || tier != "disk" {
		t.Fatalf("first Get tier = %q, %v, want disk hit", tier, ok)
	}
	if _, tier, ok := ts2.Get("img", k); !ok || tier != "mem" {
		t.Fatalf("second Get tier = %q, %v, want mem hit (promoted)", tier, ok)
	}
	st := ts2.Stats()
	if st["mem"].Hits != 1 || st["mem"].Misses != 1 {
		t.Fatalf("mem counters = %+v", st["mem"])
	}
	if st["disk"].Hits < 1 {
		t.Fatalf("disk counters = %+v", st["disk"])
	}
}

func TestTieredMemoryOnly(t *testing.T) {
	ts := store.NewTiered(nil, nil)
	k := store.KeyOf([]byte("k"))
	if _, _, ok := ts.Get("x", k); ok {
		t.Fatal("hit on empty store")
	}
	ts.Put("x", k, []byte("v"))
	if data, tier, ok := ts.Get("x", k); !ok || tier != "mem" || string(data) != "v" {
		t.Fatalf("Get = %q, %q, %v", data, tier, ok)
	}
	if _, ok := ts.Stats()["disk"]; ok {
		t.Fatal("memory-only store reports a disk tier")
	}
}
