package store

import (
	"sync"
	"time"
)

// Memory is the in-process store tier: a content-addressed map with
// generational pruning. It generalizes core's original function cache — the
// owner brackets each unit of reuse (one Recompile pass) with BeginGen /
// EndGen, every Get or Put within the bracket marks its entry live, and
// EndGen drops entries not touched for a full generation. An entry reused
// every pass therefore lives forever; one that goes unused for exactly one
// complete generation is evicted (additive workflows re-lift only what the
// new trace invalidated, so anything untouched for a whole pass is stale).
//
// Outside a generation bracket (gen 0, e.g. a shared harness-level tier)
// nothing is ever evicted.
//
// Memory is safe for concurrent use.
type Memory struct {
	lat     LatencyObserver // construction-time seam; see SetLatencyObserver
	mu      sync.Mutex
	gen     uint64
	entries map[string]map[Key]*memEntry
	c       Counters
}

type memEntry struct {
	data []byte
	gen  uint64 // last generation that touched the entry
}

// NewMemory returns an empty memory tier.
func NewMemory() *Memory {
	return &Memory{entries: map[string]map[Key]*memEntry{}}
}

// BeginGen opens a new generation: subsequent Get/Put calls mark their
// entries as live in it.
func (m *Memory) BeginGen() {
	m.mu.Lock()
	m.gen++
	m.mu.Unlock()
}

// EndGen closes the current generation, evicting every entry that was not
// touched during it, and returns the number of entries evicted.
func (m *Memory) EndGen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	evicted := 0
	for _, ents := range m.entries {
		for k, e := range ents {
			if e.gen != m.gen {
				delete(ents, k)
				evicted++
			}
		}
	}
	m.c.Evictions += int64(evicted)
	return evicted
}

// Len reports the number of live entries in namespace ns.
func (m *Memory) Len(ns string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries[ns])
}

// Get implements Store. The returned slice is a private copy: the tier's
// internal buffer is never handed out, so a caller that mutates what it got
// back cannot corrupt the entry for every later reader — essential once one
// memory tier is shared across daemon requests.
func (m *Memory) Get(ns string, key Key) ([]byte, string, bool) {
	if m.lat != nil {
		defer observeSince(m.lat, "mem", "get", time.Now())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[ns][key]
	if !ok {
		m.c.Misses++
		return nil, "", false
	}
	e.gen = m.gen
	m.c.Hits++
	return cloneBytes(e.data), "mem", true
}

// Put implements Store.
func (m *Memory) Put(ns string, key Key, data []byte) {
	if m.lat != nil {
		defer observeSince(m.lat, "mem", "put", time.Now())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ents := m.entries[ns]
	if ents == nil {
		ents = map[Key]*memEntry{}
		m.entries[ns] = ents
	}
	ents[key] = &memEntry{data: data, gen: m.gen}
}

// SetLatencyObserver implements LatencyObservable. Install before the tier
// serves traffic (the observer is read without synchronization in Get/Put).
func (m *Memory) SetLatencyObserver(obs LatencyObserver) { m.lat = obs }

// Stats implements Store.
func (m *Memory) Stats() map[string]Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return map[string]Counters{"mem": m.c}
}
