package store

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file and a completed write survives power loss: the bytes land in
// a temp file in the same directory, the temp file is fsynced, and only
// then is it renamed over path (rename within a directory is atomic on
// POSIX). Without the fsync, common filesystems may persist the rename
// before the data blocks, so a crash could surface a zero-length or garbage
// file under the final name — the sync closes that window. After the
// rename, the directory itself is synced best-effort so the new name is
// durable too (some filesystems don't support fsync on directories; that
// failure is ignored, as the rename's atomicity already guarantees the
// reader sees either the old or the new complete file).
//
// A crash mid-write leaves at most a stray temp file, never a truncated
// path. Parent directories are created as needed.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Best-effort directory sync: makes the rename itself durable where
	// supported, and is harmless where not.
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
	return nil
}
