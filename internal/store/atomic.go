package store

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file: the bytes land in a temp file in the same directory, which
// is then renamed over path (rename within a directory is atomic on POSIX).
// A crash mid-write leaves at most a stray temp file, never a truncated
// path. Parent directories are created as needed.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
