package store

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
)

// Framed entry container, shared by the disk tier's on-disk format and the
// remote tier's wire protocol:
//
//	magic ++ 8-byte little-endian payload length ++ sha256(payload) ++ payload
//
// The frame is self-validating: DecodeFrame rejects anything unexpected —
// short input, bad magic, length mismatch, checksum mismatch, trailing
// garbage — so a consumer can treat any undecodable frame as a miss and
// never as data. That is what makes an untrusted tier (a remote store, a
// disk another process scribbled on) safe to compose: corruption degrades
// to a recompute, never to a wrong artifact.

// frameMagic opens every framed entry. The trailing digit is the container
// format version; bumping it (or diskVersion in disk.go) orphans old
// entries, which then read as misses and are rewritten — never misparsed.
const frameMagic = "PNSTORE1"

// frameHeaderLen is magic + 8-byte little-endian payload length + 32-byte
// sha256 of the payload.
const frameHeaderLen = len(frameMagic) + 8 + sha256.Size

// EncodeFrame wraps payload in the store frame.
func EncodeFrame(payload []byte) []byte {
	buf := make([]byte, frameHeaderLen+len(payload))
	copy(buf, frameMagic)
	binary.LittleEndian.PutUint64(buf[len(frameMagic):], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[len(frameMagic)+8:], sum[:])
	copy(buf[frameHeaderLen:], payload)
	return buf
}

// DecodeFrame unwraps a frame, reporting !ok on any mismatch. The returned
// payload aliases raw.
func DecodeFrame(raw []byte) ([]byte, bool) {
	if len(raw) < frameHeaderLen {
		return nil, false
	}
	if string(raw[:len(frameMagic)]) != frameMagic {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[len(frameMagic):])
	payload := raw[frameHeaderLen:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	want := raw[len(frameMagic)+8 : frameHeaderLen]
	if subtle.ConstantTimeCompare(sum[:], want) != 1 {
		return nil, false
	}
	return payload, true
}
