package store

import "time"

// LatencyObserver receives the wall-clock duration of one store operation:
// tier is the serving tier's name ("mem", "disk", "remote"), op is "get" or
// "put". The fleet daemon installs one to feed its per-tier latency
// histograms (store_tier_op_seconds in /metrics); nil — the default —
// costs one predictable nil check per operation.
//
// Observers must be safe for concurrent calls. SetLatencyObserver is a
// construction-time seam: install the observer before the store serves
// traffic (it is read without synchronization on the operation path).
type LatencyObserver func(tier, op string, seconds float64)

// LatencyObservable is implemented by every tier that can time its
// operations; composites (Tiered, Chain) forward the observer to each child
// that implements it.
type LatencyObservable interface {
	SetLatencyObserver(LatencyObserver)
}

// observeSince reports one finished operation to obs (callers nil-check obs
// before arming the deferred call).
func observeSince(obs LatencyObserver, tier, op string, t0 time.Time) {
	obs(tier, op, time.Since(t0).Seconds())
}

// SetLatencyObserver implements LatencyObservable by forwarding to both
// tiers.
func (t *Tiered) SetLatencyObserver(obs LatencyObserver) {
	t.mem.SetLatencyObserver(obs)
	if lo, ok := t.back.(LatencyObservable); ok {
		lo.SetLatencyObserver(obs)
	}
}

// SetLatencyObserver implements LatencyObservable by forwarding to every
// tier in the chain.
func (ch *Chain) SetLatencyObserver(obs LatencyObserver) {
	for _, s := range ch.tiers {
		if lo, ok := s.(LatencyObservable); ok {
			lo.SetLatencyObserver(obs)
		}
	}
}
