package store_test

import (
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// TestRemoteSendsTraceparent: a Remote built with a Traceparent carries it
// on every GET and PUT, so the upstream store service can join the trace.
func TestRemoteSendsTraceparent(t *testing.T) {
	const tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	var mu sync.Mutex
	seen := map[string]int{}
	bs := newBlobServer()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.Header.Get("traceparent")]++
		mu.Unlock()
		bs.ServeHTTP(w, r)
	}))
	defer srv.Close()

	r, err := store.NewRemote(srv.URL, store.RemoteOptions{
		Timeout: 250 * time.Millisecond, Retries: -1, Traceparent: tp,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := store.KeyOf([]byte("tp"))
	r.Put("ns", key, []byte("payload"))
	if _, _, ok := r.Get("ns", key); !ok {
		t.Fatal("Get missed after Put")
	}
	mu.Lock()
	defer mu.Unlock()
	if seen[tp] != 2 {
		t.Fatalf("traceparent header seen on %d of 2 requests (%v)", seen[tp], seen)
	}
}

// latRecorder collects LatencyObserver callbacks, concurrency-safe.
type latRecorder struct {
	mu  sync.Mutex
	ops map[[2]string]int
}

func newLatRecorder() *latRecorder { return &latRecorder{ops: map[[2]string]int{}} }

func (lr *latRecorder) observe(tier, op string, seconds float64) {
	if seconds < 0 {
		panic("negative latency")
	}
	lr.mu.Lock()
	lr.ops[[2]string{tier, op}]++
	lr.mu.Unlock()
}

func (lr *latRecorder) count(tier, op string) int {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.ops[[2]string{tier, op}]
}

// TestLatencyObserverPerTier: installing an observer on a Tiered over a
// Chain(disk, remote) forwards it to every tier, and each Get/Put is timed
// under its own tier name.
func TestLatencyObserverPerTier(t *testing.T) {
	dir, err := os.MkdirTemp("", "latobs")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	disk, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	bs := newBlobServer()
	srv := httptest.NewServer(bs)
	defer srv.Close()
	remote := newTestRemote(t, srv.URL, 0)

	tiered := store.NewTiered(store.NewMemory(), store.NewChain(disk, remote))
	lr := newLatRecorder()
	tiered.SetLatencyObserver(lr.observe)

	key := store.KeyOf([]byte("lat"))
	tiered.Put("ns", key, []byte("data")) // mem + disk + remote
	if _, _, ok := tiered.Get("ns", key); !ok {
		t.Fatal("Get missed after Put")
	}
	// Miss probes every tier.
	tiered.Get("ns", store.KeyOf([]byte("absent")))

	for _, want := range [][2]string{
		{"mem", "put"}, {"disk", "put"}, {"remote", "put"},
		{"mem", "get"}, {"disk", "get"}, {"remote", "get"},
	} {
		if lr.count(want[0], want[1]) == 0 {
			t.Errorf("no %s/%s latency observed (%v)", want[0], want[1], lr.ops)
		}
	}
}
