package store_test

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

func TestWriteFileAtomicBasic(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "sub", "deep", "file.json")
	if err := store.WriteFileAtomic(p, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFileAtomic(p, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil || string(got) != "two" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// No stray temp files after clean writes.
	ents, err := os.ReadDir(filepath.Dir(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries after clean writes, want 1", len(ents))
	}
}

// TestWriteFileAtomicSurvivesKill kills a child process that is overwriting
// the same target in a tight loop, mid-stream, and asserts the target is
// always one complete payload — never truncated or interleaved. This is the
// crash-safety contract cmd/polynima's additive CFG persistence relies on.
func TestWriteFileAtomicSurvivesKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a helper process")
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "target")

	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcessAtomicWriter")
	cmd.Env = append(os.Environ(),
		"STORE_ATOMIC_HELPER=1",
		"STORE_ATOMIC_TARGET="+target,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until the child has completed one full write and is mid-loop.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() || sc.Text() != "READY" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("helper did not report READY (got %q, err %v)", sc.Text(), sc.Err())
	}
	time.Sleep(30 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatalf("target unreadable after kill: %v", err)
	}
	if len(got) != helperPayloadLen {
		t.Fatalf("target is %d bytes after kill, want a complete %d-byte payload", len(got), helperPayloadLen)
	}
	first := got[0]
	if first != 'a' && first != 'b' {
		t.Fatalf("target starts with %q, want 'a' or 'b'", first)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{first}, helperPayloadLen)) {
		t.Fatal("target interleaves two payloads: write was not atomic")
	}
}

const helperPayloadLen = 1 << 20

// TestHelperProcessAtomicWriter is not a real test: it is the child body
// for TestWriteFileAtomicSurvivesKill, alternating two large payloads into
// the target until killed.
func TestHelperProcessAtomicWriter(t *testing.T) {
	if os.Getenv("STORE_ATOMIC_HELPER") != "1" {
		t.Skip("helper process body")
	}
	target := os.Getenv("STORE_ATOMIC_TARGET")
	a := bytes.Repeat([]byte{'a'}, helperPayloadLen)
	b := bytes.Repeat([]byte{'b'}, helperPayloadLen)
	if err := store.WriteFileAtomic(target, a, 0o644); err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	fmt.Println("READY")
	for {
		if err := store.WriteFileAtomic(target, b, 0o644); err != nil {
			os.Exit(1)
		}
		if err := store.WriteFileAtomic(target, a, 0o644); err != nil {
			os.Exit(1)
		}
	}
}
