package store_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

// blobServer is a minimal in-memory store service speaking the Remote wire
// protocol, with injectable fault behavior per request.
type blobServer struct {
	blobs map[string][]byte // URL path -> framed entry
	// fault, when set, runs first and may fully handle the request
	// (returning true) to inject timeouts, 5xx, or corrupt bodies.
	fault func(w http.ResponseWriter, r *http.Request) bool
}

func newBlobServer() *blobServer { return &blobServer{blobs: map[string][]byte{}} }

func (s *blobServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.fault != nil && s.fault(w, r) {
		return
	}
	switch r.Method {
	case http.MethodGet:
		b, ok := s.blobs[r.URL.Path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(b)
	case http.MethodPut:
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		s.blobs[r.URL.Path] = buf.Bytes()
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method", http.StatusMethodNotAllowed)
	}
}

// newTestRemote dials srv with fast timeouts and no real sleeping.
func newTestRemote(t *testing.T, url string, retries int) *store.Remote {
	t.Helper()
	r, err := store.NewRemote(url, store.RemoteOptions{
		Timeout: 250 * time.Millisecond,
		Retries: retries,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRemoteRoundTrip(t *testing.T) {
	bs := newBlobServer()
	srv := httptest.NewServer(bs)
	defer srv.Close()
	r := newTestRemote(t, srv.URL, 0)

	k := store.KeyOf([]byte("k"))
	want := []byte("artifact bytes")
	r.Put("func", k, want)
	got, tier, ok := r.Get("func", k)
	if !ok || tier != "remote" || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %q, %v", got, tier, ok)
	}
	// Absent key: a plain miss, no retries (404 is authoritative).
	if _, _, ok := r.Get("func", store.KeyOf([]byte("absent"))); ok {
		t.Fatal("hit on absent key")
	}
	st := r.Stats()["remote"]
	if st.Hits != 1 || st.Misses != 1 || st.Errors != 0 || st.Retries != 0 {
		t.Fatalf("counters = %+v, want 1 hit / 1 miss / 0 errors / 0 retries", st)
	}
}

// TestRemoteFaultsDegradeToMisses pins the degradation contract: timeouts,
// 5xx, truncated bodies, and checksum mismatches are counted misses —
// never an error surfaced to the caller, never data.
func TestRemoteFaultsDegradeToMisses(t *testing.T) {
	k := store.KeyOf([]byte("k"))
	payload := []byte("good artifact")
	frame := store.EncodeFrame(payload)

	cases := []struct {
		name        string
		fault       func(w http.ResponseWriter, r *http.Request) bool
		wantCorrupt bool // else counted under Errors
		wantRetries bool
	}{
		{
			name: "server-5xx",
			fault: func(w http.ResponseWriter, r *http.Request) bool {
				http.Error(w, "boom", http.StatusInternalServerError)
				return true
			},
			wantRetries: true,
		},
		{
			name: "timeout",
			fault: func(w http.ResponseWriter, r *http.Request) bool {
				time.Sleep(2 * time.Second)
				return true
			},
			wantRetries: true,
		},
		{
			name: "truncated-body",
			fault: func(w http.ResponseWriter, r *http.Request) bool {
				w.Write(frame[:len(frame)-3])
				return true
			},
			wantCorrupt: true,
		},
		{
			name: "checksum-mismatch",
			fault: func(w http.ResponseWriter, r *http.Request) bool {
				bad := append([]byte(nil), frame...)
				bad[len(bad)-1] ^= 0xff
				w.Write(bad)
				return true
			},
			wantCorrupt: true,
		},
		{
			name: "garbage-body",
			fault: func(w http.ResponseWriter, r *http.Request) bool {
				w.Write([]byte("not a frame at all"))
				return true
			},
			wantCorrupt: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bs := newBlobServer()
			bs.fault = tc.fault
			srv := httptest.NewServer(bs)
			defer srv.Close()
			r := newTestRemote(t, srv.URL, 1)
			if tc.name == "timeout" {
				// Keep the test fast: one attempt, tight timeout.
				r = newTestRemote(t, srv.URL, 1)
			}

			if data, _, ok := r.Get("func", k); ok {
				t.Fatalf("faulty server served a hit: %q", data)
			}
			st := r.Stats()["remote"]
			if st.Hits != 0 || st.Misses != 1 {
				t.Fatalf("counters = %+v, want 0 hits / 1 miss", st)
			}
			if tc.wantCorrupt && st.Corrupt != 1 {
				t.Fatalf("counters = %+v, want 1 corrupt", st)
			}
			if !tc.wantCorrupt && st.Errors != 1 {
				t.Fatalf("counters = %+v, want 1 error", st)
			}
			if tc.wantRetries && st.Retries == 0 {
				t.Fatalf("counters = %+v, want retries > 0", st)
			}
			if !tc.wantRetries && st.Retries != 0 {
				t.Fatalf("counters = %+v, want no retries (authoritative answer)", st)
			}
		})
	}
}

func TestRemoteConnectionRefusedIsAMiss(t *testing.T) {
	// A dead endpoint: nothing is listening on a closed port.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	r := newTestRemote(t, url, 1)
	if _, _, ok := r.Get("func", store.KeyOf([]byte("k"))); ok {
		t.Fatal("hit from a dead endpoint")
	}
	r.Put("func", store.KeyOf([]byte("k")), []byte("v")) // must not panic or block
	st := r.Stats()["remote"]
	if st.Misses != 1 || st.Errors != 2 || st.Retries != 2 {
		t.Fatalf("counters = %+v, want 1 miss / 2 errors / 2 retries", st)
	}
}

// TestRemoteRetrySucceeds exercises the backoff path: two 5xx responses,
// then success.
func TestRemoteRetrySucceeds(t *testing.T) {
	bs := newBlobServer()
	var calls atomic.Int64
	bs.fault = func(w http.ResponseWriter, r *http.Request) bool {
		if r.Method == http.MethodGet && calls.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusServiceUnavailable)
			return true
		}
		return false
	}
	srv := httptest.NewServer(bs)
	defer srv.Close()
	r := newTestRemote(t, srv.URL, 2)

	k := store.KeyOf([]byte("k"))
	want := []byte("v")
	r.Put("func", k, want)
	got, tier, ok := r.Get("func", k)
	if !ok || tier != "remote" || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %q, %v after retries", got, tier, ok)
	}
	st := r.Stats()["remote"]
	if st.Hits != 1 || st.Retries != 2 {
		t.Fatalf("counters = %+v, want 1 hit / 2 retries", st)
	}
}

func TestRemotePutFailureIsCounted(t *testing.T) {
	bs := newBlobServer()
	bs.fault = func(w http.ResponseWriter, r *http.Request) bool {
		if r.Method == http.MethodPut {
			http.Error(w, "read-only", http.StatusForbidden)
			return true
		}
		return false
	}
	srv := httptest.NewServer(bs)
	defer srv.Close()
	r := newTestRemote(t, srv.URL, 2)
	r.Put("func", store.KeyOf([]byte("k")), []byte("v"))
	st := r.Stats()["remote"]
	if st.Errors != 1 || st.Retries != 0 {
		t.Fatalf("counters = %+v, want 1 error / 0 retries (4xx is authoritative)", st)
	}
}

func TestNewRemoteValidatesURL(t *testing.T) {
	for _, bad := range []string{"", "not-a-url", "ftp://host", "http://"} {
		if _, err := store.NewRemote(bad, store.RemoteOptions{}); err == nil {
			t.Errorf("NewRemote(%q) accepted an invalid base", bad)
		}
	}
	if _, err := store.NewRemote("http://127.0.0.1:9/", store.RemoteOptions{}); err != nil {
		t.Errorf("NewRemote rejected a valid base: %v", err)
	}
}

// TestTieredOverFaultyRemoteStaysCorrect: a Tiered composed over a remote
// tier that always fails still serves every Get it can (memory) and misses
// cleanly otherwise — the composition never errors, blocks, or corrupts.
func TestTieredOverFaultyRemoteStaysCorrect(t *testing.T) {
	bs := newBlobServer()
	bs.fault = func(w http.ResponseWriter, r *http.Request) bool {
		http.Error(w, "down", http.StatusBadGateway)
		return true
	}
	srv := httptest.NewServer(bs)
	defer srv.Close()
	r := newTestRemote(t, srv.URL, 0)
	ts := store.NewTiered(store.NewMemory(), r)

	k := store.KeyOf([]byte("k"))
	want := []byte("bytes")
	ts.Put("img", k, want) // remote write fails silently
	got, tier, ok := ts.Get("img", k)
	if !ok || tier != "mem" || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %q, %v", got, tier, ok)
	}
	if _, _, ok := ts.Get("img", store.KeyOf([]byte("cold"))); ok {
		t.Fatal("hit on cold key through a downed remote")
	}
	st := ts.Stats()
	if st["remote"].Errors == 0 {
		t.Fatalf("remote counters = %+v, want errors > 0", st["remote"])
	}
}
