package store

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// diskVersion is the key-namespace version directory. Artifact encoding
// schema changes bump this so a new binary never decodes an old binary's
// payloads.
const diskVersion = "v1"

// Disk is the persistent store tier. Entries live at
//
//	dir/v1/<ns>/<first two key hex digits>/<full key hex>
//
// and are framed as magic ++ len ++ sha256(payload) ++ payload (frame.go).
// Writes are atomic and durable (temp file + fsync + rename, atomic.go), so
// a crashed writer leaves no partial entry and a completed Put survives
// power loss. On read, anything unexpected — short file, bad magic, length
// mismatch, checksum mismatch, trailing garbage — is a counted miss, never
// an error: the store is an accelerator, and a bad entry must only ever
// cost a recompute. Real read failures (permissions, EIO) also degrade to
// misses but are additionally counted under Errors, so operational problems
// stay distinguishable from cold entries in the metrics.
//
// SetMaxBytes bounds the tier: once the total size of all entries exceeds
// the limit, the least-recently-modified entries are pruned until the tier
// is back under pruneTargetNum/pruneTargetDen of the limit — a long-lived
// store directory no longer grows monotonically. Pruned entries read as
// misses and are rewritten on the next Put, exactly like corrupt ones.
type Disk struct {
	dir string
	lat LatencyObserver // construction-time seam; see SetLatencyObserver
	mu  sync.Mutex
	c   Counters

	// pruning state, guarded by pmu (separate from the counter mutex so a
	// prune walk never blocks counter reads).
	pmu      sync.Mutex
	maxBytes int64
	size     int64 // approximate total entry bytes; exact after each prune walk
	sizeOK   bool  // size has been initialized by a walk
}

// Prune hysteresis: prune down to 80% of the limit so every Put just over
// the line doesn't trigger a walk.
const (
	pruneTargetNum = 4
	pruneTargetDen = 5
)

// OpenDisk returns a disk tier rooted at dir, creating the versioned root
// if needed.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(filepath.Join(dir, diskVersion), 0o755); err != nil {
		return nil, err
	}
	return &Disk{dir: dir}, nil
}

// Dir reports the store root.
func (d *Disk) Dir() string { return d.dir }

// SetMaxBytes enables size-based pruning: after any Put that pushes the
// tier's total entry bytes above max, the oldest entries (by modification
// time) are removed until the tier is back under the prune target.
// max <= 0 disables pruning (the default).
func (d *Disk) SetMaxBytes(max int64) {
	d.pmu.Lock()
	d.maxBytes = max
	d.sizeOK = false // re-walk lazily against the new limit
	d.pmu.Unlock()
}

func (d *Disk) path(ns string, key Key) string {
	hex := key.Hex()
	return filepath.Join(d.dir, diskVersion, ns, hex[:2], hex)
}

// Get implements Store. Every failure mode is a miss; corrupt entries are
// additionally counted and removed so they are rewritten on the next Put,
// and real I/O errors (anything but not-exist) are counted under Errors.
func (d *Disk) Get(ns string, key Key) ([]byte, string, bool) {
	if d.lat != nil {
		defer observeSince(d.lat, "disk", "get", time.Now())
	}
	raw, err := os.ReadFile(d.path(ns, key))
	if err != nil {
		if os.IsNotExist(err) {
			d.count(func(c *Counters) { c.Misses++ })
		} else {
			d.count(func(c *Counters) { c.Misses++; c.Errors++ })
		}
		return nil, "", false
	}
	payload, ok := DecodeFrame(raw)
	if !ok {
		os.Remove(d.path(ns, key))
		d.count(func(c *Counters) { c.Misses++; c.Corrupt++ })
		return nil, "", false
	}
	d.count(func(c *Counters) { c.Hits++ })
	return payload, "disk", true
}

// Put implements Store. Write failures are counted and swallowed — the
// caller keeps its freshly computed artifact either way.
func (d *Disk) Put(ns string, key Key, data []byte) {
	if d.lat != nil {
		defer observeSince(d.lat, "disk", "put", time.Now())
	}
	buf := EncodeFrame(data)
	// An overwrite replaces the existing entry, so the size delta is the
	// difference, not the full frame — otherwise repeated Puts of the same
	// key would inflate the tracked size and trigger premature prunes.
	var old int64
	if fi, err := os.Stat(d.path(ns, key)); err == nil {
		old = fi.Size()
	}
	if err := WriteFileAtomic(d.path(ns, key), buf, 0o644); err != nil {
		d.count(func(c *Counters) { c.Errors++ })
		return
	}
	d.noteWrite(int64(len(buf)) - old)
}

// SetLatencyObserver implements LatencyObservable. Install before the tier
// serves traffic (the observer is read without synchronization in Get/Put).
func (d *Disk) SetLatencyObserver(obs LatencyObserver) { d.lat = obs }

// Stats implements Store.
func (d *Disk) Stats() map[string]Counters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return map[string]Counters{"disk": d.c}
}

func (d *Disk) count(f func(*Counters)) {
	d.mu.Lock()
	f(&d.c)
	d.mu.Unlock()
}

// noteWrite tracks the tier size after a successful Put and prunes when the
// configured limit is exceeded.
func (d *Disk) noteWrite(n int64) {
	d.pmu.Lock()
	defer d.pmu.Unlock()
	if d.maxBytes <= 0 {
		return
	}
	if !d.sizeOK {
		d.size = d.walkSizeLocked()
		d.sizeOK = true
	} else {
		d.size += n
	}
	if d.size > d.maxBytes {
		d.pruneLocked()
	}
}

// diskEntry is one on-disk entry observed by a prune walk.
type diskEntry struct {
	path  string
	size  int64
	mtime int64 // unix nanos
}

// walkEntries lists every entry under the versioned root. Walk errors are
// tolerated (concurrent writers rename files mid-walk); unreadable entries
// simply don't contribute.
func (d *Disk) walkEntries() []diskEntry {
	var out []diskEntry
	root := filepath.Join(d.dir, diskVersion)
	filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil || info == nil || info.IsDir() {
			return nil
		}
		out = append(out, diskEntry{path: p, size: info.Size(), mtime: info.ModTime().UnixNano()})
		return nil
	})
	return out
}

func (d *Disk) walkSizeLocked() int64 {
	var total int64
	for _, e := range d.walkEntries() {
		total += e.size
	}
	return total
}

// pruneLocked removes least-recently-modified entries until the tier is
// under the prune target, recomputing the exact size from a fresh walk (the
// tracked counter drifts when several processes share the directory).
// Callers hold pmu.
func (d *Disk) pruneLocked() {
	entries := d.walkEntries()
	var total int64
	for _, e := range entries {
		total += e.size
	}
	target := d.maxBytes / pruneTargetDen * pruneTargetNum
	if total <= d.maxBytes {
		d.size = total
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime < entries[j].mtime })
	pruned := 0
	for _, e := range entries {
		if total <= target {
			break
		}
		if err := os.Remove(e.path); err != nil {
			continue // already gone or unremovable; skip, stay best-effort
		}
		total -= e.size
		pruned++
	}
	d.size = total
	if pruned > 0 {
		d.count(func(c *Counters) { c.Evictions += int64(pruned) })
	}
}
