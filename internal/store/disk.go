package store

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
)

// diskMagic opens every on-disk entry. The trailing digit is the container
// format version; bumping it (or diskVersion below) orphans old entries,
// which then read as misses and are rewritten — never misparsed.
const diskMagic = "PNSTORE1"

// diskVersion is the key-namespace version directory. Artifact encoding
// schema changes bump this so a new binary never decodes an old binary's
// payloads.
const diskVersion = "v1"

// diskHeaderLen is magic + 8-byte little-endian payload length + 32-byte
// sha256 of the payload.
const diskHeaderLen = len(diskMagic) + 8 + sha256.Size

// Disk is the persistent store tier. Entries live at
//
//	dir/v1/<ns>/<first two key hex digits>/<full key hex>
//
// and are framed as magic ++ len ++ sha256(payload) ++ payload. Writes are
// atomic (temp file + rename), so a crashed writer leaves no partial entry.
// On read, anything unexpected — short file, bad magic, length mismatch,
// checksum mismatch, trailing garbage — is a counted miss, never an error:
// the store is an accelerator, and a bad entry must only ever cost a
// recompute.
type Disk struct {
	dir string
	mu  sync.Mutex
	c   Counters
}

// OpenDisk returns a disk tier rooted at dir, creating the versioned root
// if needed.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(filepath.Join(dir, diskVersion), 0o755); err != nil {
		return nil, err
	}
	return &Disk{dir: dir}, nil
}

// Dir reports the store root.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) path(ns string, key Key) string {
	hex := key.Hex()
	return filepath.Join(d.dir, diskVersion, ns, hex[:2], hex)
}

// Get implements Store. Every failure mode is a miss; corrupt entries are
// additionally counted and removed so they are rewritten on the next Put.
func (d *Disk) Get(ns string, key Key) ([]byte, string, bool) {
	raw, err := os.ReadFile(d.path(ns, key))
	if err != nil {
		d.count(func(c *Counters) { c.Misses++ })
		return nil, "", false
	}
	payload, ok := decodeDiskEntry(raw)
	if !ok {
		os.Remove(d.path(ns, key))
		d.count(func(c *Counters) { c.Misses++; c.Corrupt++ })
		return nil, "", false
	}
	d.count(func(c *Counters) { c.Hits++ })
	return payload, "disk", true
}

func decodeDiskEntry(raw []byte) ([]byte, bool) {
	if len(raw) < diskHeaderLen {
		return nil, false
	}
	if string(raw[:len(diskMagic)]) != diskMagic {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[len(diskMagic):])
	payload := raw[diskHeaderLen:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	want := raw[len(diskMagic)+8 : diskHeaderLen]
	if subtle.ConstantTimeCompare(sum[:], want) != 1 {
		return nil, false
	}
	return payload, true
}

// Put implements Store. Write failures are counted and swallowed — the
// caller keeps its freshly computed artifact either way.
func (d *Disk) Put(ns string, key Key, data []byte) {
	buf := make([]byte, diskHeaderLen+len(data))
	copy(buf, diskMagic)
	binary.LittleEndian.PutUint64(buf[len(diskMagic):], uint64(len(data)))
	sum := sha256.Sum256(data)
	copy(buf[len(diskMagic)+8:], sum[:])
	copy(buf[diskHeaderLen:], data)
	if err := WriteFileAtomic(d.path(ns, key), buf, 0o644); err != nil {
		d.count(func(c *Counters) { c.Errors++ })
	}
}

// Stats implements Store.
func (d *Disk) Stats() map[string]Counters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return map[string]Counters{"disk": d.c}
}

func (d *Disk) count(f func(*Counters)) {
	d.mu.Lock()
	f(&d.c)
	d.mu.Unlock()
}
