package cc

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/mx"
)

// Config selects compilation options.
type Config struct {
	Name string // image name
	Opt  int    // 0 (gcc -O0 model) or 2 (gcc -O3 model)
}

// Compile compiles mcc source to a PXE image. The returned symbol table maps
// "fn_<name>" labels to addresses; it is ground truth for tests only — the
// image itself is stripped.
func Compile(src string, cfg Config) (*image.Image, map[string]uint64, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return CompileProgram(prog, cfg)
}

// CompileProgram compiles a parsed program.
func CompileProgram(prog *Program, cfg Config) (*image.Image, map[string]uint64, error) {
	g := &codegen{
		prog:      prog,
		b:         asm.NewBuilder(cfg.Name),
		opt:       cfg.Opt,
		externs:   map[string]bool{},
		funcs:     map[string]bool{},
		globals:   map[string]bool{},
		strs:      map[string]string{},
		globalArr: map[string]bool{},
	}
	for _, e := range prog.Externs {
		g.externs[e] = true
	}
	for _, f := range prog.Funcs {
		if g.funcs[f.Name] {
			return nil, nil, fmt.Errorf("cc: duplicate function %s", f.Name)
		}
		g.funcs[f.Name] = true
	}
	hasMain := g.funcs["main"]
	if !hasMain {
		return nil, nil, fmt.Errorf("cc: no main function")
	}
	for _, gd := range prog.Globals {
		g.globals[gd.Name] = true
		g.globalArr[gd.Name] = gd.IsArray
		g.emitGlobal(gd)
	}
	g.b.Entry("fn_main")
	for _, f := range prog.Funcs {
		if err := g.emitFunc(f); err != nil {
			return nil, nil, err
		}
	}
	return g.b.Build()
}

type codegen struct {
	prog    *Program
	b       *asm.Builder
	opt     int
	externs map[string]bool
	funcs   map[string]bool
	globals map[string]bool
	strs    map[string]string // literal -> label
	nlabel  int
	nstr    int

	globalArr map[string]bool // global name -> is array (name = address)

	// per-function state
	fn        *FuncDecl
	slots     map[string]int32  // local -> rbp-relative offset (negative)
	regLocals map[string]mx.Reg // O2: local -> callee-saved register
	arrays    map[string]bool   // local fixed arrays (name = frame address)
	vlaNames  map[string]bool   // local VLAs (slot holds a pointer)
	frameSize int32
	breaks    []string
	conts     []string
	epilogue  string
	usedCS    []mx.Reg // callee-saved registers used (O2)
	hasVLA    bool
}

func (g *codegen) label() string {
	g.nlabel++
	return fmt.Sprintf(".L%d", g.nlabel)
}

func (g *codegen) strLabel(s string) string {
	if l, ok := g.strs[s]; ok {
		return l
	}
	l := fmt.Sprintf("str%d", g.nstr)
	g.nstr++
	g.strs[s] = l
	g.b.RodataLabel(l)
	g.b.Rodata(append([]byte(s), 0))
	return l
}

func (g *codegen) emitGlobal(gd *GlobalDecl) {
	name := "g_" + gd.Name
	if !gd.IsArray {
		g.b.DataLabel(name)
		g.b.DataQuad(uint64(gd.Init))
		return
	}
	if len(gd.ArrayInit) == 0 {
		g.b.BSS(name, uint64(gd.ArrayLen)*8)
		return
	}
	g.b.DataLabel(name)
	for i := int64(0); i < gd.ArrayLen; i++ {
		var v int64
		if int(i) < len(gd.ArrayInit) {
			v = gd.ArrayInit[i]
		}
		g.b.DataQuad(uint64(v))
	}
}

// scratch register pool for O2 expression evaluation. R11 is the emergency
// register used when the pool is exhausted.
var scratchPool = []mx.Reg{mx.RAX, mx.RCX, mx.RDX, mx.RSI, mx.R8, mx.R9, mx.R10}

var calleeSaved = []mx.Reg{mx.RBX, mx.R12, mx.R13, mx.R14, mx.R15}

var argRegs = []mx.Reg{mx.RDI, mx.RSI, mx.RDX, mx.RCX, mx.R8, mx.R9}

// emitFunc compiles one function.
func (g *codegen) emitFunc(f *FuncDecl) error {
	g.fn = f
	g.slots = map[string]int32{}
	g.regLocals = map[string]mx.Reg{}
	g.arrays = map[string]bool{}
	g.vlaNames = map[string]bool{}
	g.frameSize = 0
	g.breaks, g.conts = nil, nil
	g.epilogue = g.label()
	g.usedCS = nil
	g.hasVLA = false

	// Discover locals: params first, then var/arr statements.
	type localInfo struct {
		name      string
		arrayLen  int64 // 0 scalar; -1 VLA; >0 fixed array
		uses      int
		addrTaken bool
	}
	order := []*localInfo{}
	byName := map[string]*localInfo{}
	addLocal := func(name string, arrayLen int64) error {
		if byName[name] != nil {
			return fmt.Errorf("cc: func %s: duplicate local %q", f.Name, name)
		}
		li := &localInfo{name: name, arrayLen: arrayLen}
		byName[name] = li
		order = append(order, li)
		return nil
	}
	for _, pn := range f.Params {
		if err := addLocal(pn, 0); err != nil {
			return err
		}
	}
	var scanStmts func(ss []Stmt) error
	var scanExpr func(e Expr)
	scanExpr = func(e Expr) {
		switch x := e.(type) {
		case *IdentExpr:
			if li := byName[x.Name]; li != nil {
				li.uses++
			}
		case *UnaryExpr:
			if x.Op == "&" {
				if id, ok := x.X.(*IdentExpr); ok {
					if li := byName[id.Name]; li != nil {
						li.addrTaken = true
					}
				}
			}
			scanExpr(x.X)
		case *BinExpr:
			scanExpr(x.L)
			scanExpr(x.R)
		case *CondExpr:
			scanExpr(x.L)
			scanExpr(x.R)
		case *IndexExpr:
			scanExpr(x.Base)
			scanExpr(x.Idx)
		case *CallExpr:
			for _, a := range x.Args {
				scanExpr(a)
			}
		}
	}
	scanStmts = func(ss []Stmt) error {
		for _, s := range ss {
			switch x := s.(type) {
			case *VarStmt:
				if err := addLocal(x.Name, 0); err != nil {
					return err
				}
				if x.Init != nil {
					scanExpr(x.Init)
				}
			case *ArrStmt:
				ln := int64(-1)
				if n, ok := foldConst(x.Len).(*NumExpr); ok && n.V > 0 {
					ln = n.V
					g.arrays[x.Name] = true
				} else {
					g.hasVLA = true
					g.vlaNames[x.Name] = true
				}
				if err := addLocal(x.Name, ln); err != nil {
					return err
				}
				scanExpr(x.Len)
			case *ExprStmt:
				scanExpr(x.X)
			case *AssignStmt:
				scanExpr(x.LHS)
				scanExpr(x.RHS)
			case *IfStmt:
				scanExpr(x.Cond)
				if err := scanStmts(x.Then); err != nil {
					return err
				}
				if err := scanStmts(x.Else); err != nil {
					return err
				}
			case *WhileStmt:
				scanExpr(x.Cond)
				if err := scanStmts(x.Body); err != nil {
					return err
				}
			case *ForStmt:
				if x.Init != nil {
					if err := scanStmts([]Stmt{x.Init}); err != nil {
						return err
					}
				}
				if x.Cond != nil {
					scanExpr(x.Cond)
				}
				if x.Post != nil {
					if err := scanStmts([]Stmt{x.Post}); err != nil {
						return err
					}
				}
				if err := scanStmts(x.Body); err != nil {
					return err
				}
			case *ReturnStmt:
				if x.X != nil {
					scanExpr(x.X)
				}
			}
		}
		return nil
	}
	if err := scanStmts(f.Body); err != nil {
		return err
	}

	// Assign storage. At O2, the most-used non-addressed scalars get
	// callee-saved registers; everything else gets a frame slot.
	if g.opt >= 2 {
		cands := []*localInfo{}
		for _, li := range order {
			if li.arrayLen == 0 && !li.addrTaken {
				cands = append(cands, li)
			}
		}
		// Stable selection by use count.
		for len(g.regLocals) < len(calleeSaved) {
			var best *localInfo
			for _, li := range cands {
				if _, done := g.regLocals[li.name]; done {
					continue
				}
				if best == nil || li.uses > best.uses {
					best = li
				}
			}
			if best == nil || best.uses == 0 {
				break
			}
			r := calleeSaved[len(g.regLocals)]
			g.regLocals[best.name] = r
			g.usedCS = append(g.usedCS, r)
		}
	}
	for _, li := range order {
		if _, inReg := g.regLocals[li.name]; inReg {
			continue
		}
		switch {
		case li.arrayLen > 0:
			g.frameSize += int32(li.arrayLen) * 8
			g.slots[li.name] = -g.frameSize
		default: // scalar or VLA pointer slot
			g.frameSize += 8
			g.slots[li.name] = -g.frameSize
		}
	}
	g.frameSize = (g.frameSize + 15) &^ 15

	// Prologue.
	g.b.Label("fn_" + f.Name)
	g.b.I(mx.Inst{Op: mx.PUSH, Dst: mx.RBP})
	g.b.MovRR(mx.RBP, mx.RSP)
	if g.frameSize > 0 {
		g.b.I(mx.Inst{Op: mx.SUBRI, Dst: mx.RSP, Imm: int64(g.frameSize)})
	}
	for _, r := range g.usedCS {
		g.b.I(mx.Inst{Op: mx.PUSH, Dst: r})
	}
	// Spill/move parameters into their homes.
	for i, pn := range f.Params {
		if r, ok := g.regLocals[pn]; ok {
			g.b.MovRR(r, argRegs[i])
		} else {
			g.b.I(mx.Inst{Op: mx.STORE64, Dst: argRegs[i], Base: mx.RBP, Disp: g.slots[pn]})
		}
	}

	// Body.
	if err := g.stmts(f.Body); err != nil {
		return err
	}

	// Implicit return 0.
	g.b.MovRI(mx.RAX, 0)
	g.b.Label(g.epilogue)
	for i := len(g.usedCS) - 1; i >= 0; i-- {
		g.b.I(mx.Inst{Op: mx.POP, Dst: g.usedCS[i]})
	}
	g.b.MovRR(mx.RSP, mx.RBP)
	g.b.I(mx.Inst{Op: mx.POP, Dst: mx.RBP})
	g.b.Ret()
	return nil
}

// --- statements -------------------------------------------------------------

func (g *codegen) stmts(ss []Stmt) error {
	for _, s := range ss {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) stmt(s Stmt) error {
	switch x := s.(type) {
	case *VarStmt:
		if x.Init == nil {
			return g.storeLocal(x.Name, func(r mx.Reg) { g.b.MovRI(r, 0) })
		}
		r, err := g.eval(x.Init, 0)
		if err != nil {
			return err
		}
		return g.storeLocalReg(x.Name, r)
	case *ArrStmt:
		if !g.vlaNames[x.Name] {
			return nil // fixed array: space already reserved in the frame
		}
		// VLA: rsp -= round16(len*8); slot <- rsp
		r, err := g.eval(x.Len, 0)
		if err != nil {
			return err
		}
		g.b.I(mx.Inst{Op: mx.SHLRI, Dst: r, Imm: 3})
		g.b.I(mx.Inst{Op: mx.ADDRI, Dst: r, Imm: 15})
		g.b.I(mx.Inst{Op: mx.ANDRI, Dst: r, Imm: ^int64(15)})
		g.b.I(mx.Inst{Op: mx.SUBRR, Dst: mx.RSP, Src: r})
		g.b.MovRR(r, mx.RSP)
		return g.storeLocalReg(x.Name, r)
	case *ExprStmt:
		_, err := g.eval(x.X, 0)
		return err
	case *AssignStmt:
		return g.assign(x)
	case *IfStmt:
		elseL, endL := g.label(), g.label()
		target := endL
		if len(x.Else) > 0 {
			target = elseL
		}
		if err := g.branchIfFalse(x.Cond, target); err != nil {
			return err
		}
		if err := g.stmts(x.Then); err != nil {
			return err
		}
		if len(x.Else) > 0 {
			g.b.Jmp(endL)
			g.b.Label(elseL)
			if err := g.stmts(x.Else); err != nil {
				return err
			}
		}
		g.b.Label(endL)
		return nil
	case *WhileStmt:
		head, end := g.label(), g.label()
		g.breaks = append(g.breaks, end)
		g.conts = append(g.conts, head)
		g.b.Label(head)
		if err := g.branchIfFalse(x.Cond, end); err != nil {
			return err
		}
		if err := g.stmts(x.Body); err != nil {
			return err
		}
		g.b.Jmp(head)
		g.b.Label(end)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		return nil
	case *ForStmt:
		head, post, end := g.label(), g.label(), g.label()
		if x.Init != nil {
			if err := g.stmt(x.Init); err != nil {
				return err
			}
		}
		g.breaks = append(g.breaks, end)
		g.conts = append(g.conts, post)
		g.b.Label(head)
		if x.Cond != nil {
			if err := g.branchIfFalse(x.Cond, end); err != nil {
				return err
			}
		}
		if err := g.stmts(x.Body); err != nil {
			return err
		}
		g.b.Label(post)
		if x.Post != nil {
			if err := g.stmt(x.Post); err != nil {
				return err
			}
		}
		g.b.Jmp(head)
		g.b.Label(end)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		return nil
	case *ReturnStmt:
		if x.X != nil {
			r, err := g.eval(x.X, 0)
			if err != nil {
				return err
			}
			if r != mx.RAX {
				g.b.MovRR(mx.RAX, r)
			}
		} else {
			g.b.MovRI(mx.RAX, 0)
		}
		g.b.Jmp(g.epilogue)
		return nil
	case *BreakStmt:
		if len(g.breaks) == 0 {
			return fmt.Errorf("cc: func %s: break outside loop", g.fn.Name)
		}
		g.b.Jmp(g.breaks[len(g.breaks)-1])
		return nil
	case *ContinueStmt:
		if len(g.conts) == 0 {
			return fmt.Errorf("cc: func %s: continue outside loop", g.fn.Name)
		}
		g.b.Jmp(g.conts[len(g.conts)-1])
		return nil
	}
	return fmt.Errorf("cc: unknown statement %T", s)
}

// assign compiles an assignment statement.
func (g *codegen) assign(x *AssignStmt) error {
	// Rewrite compound assignment a op= b as a = a op b (re-evaluating the
	// address for Index/Deref targets; fine because mcc expressions are
	// side-effect free apart from calls, which we re-evaluate as C does not
	// guarantee single evaluation for this lowering at O0 anyway).
	rhs := x.RHS
	if x.Op != "=" {
		rhs = &BinExpr{Op: x.Op[:len(x.Op)-1], L: x.LHS, R: x.RHS}
	}
	switch lhs := x.LHS.(type) {
	case *IdentExpr:
		r, err := g.eval(rhs, 0)
		if err != nil {
			return err
		}
		return g.storeLocalReg(lhs.Name, r)
	case *IndexExpr:
		rv, err := g.eval(rhs, 0)
		if err != nil {
			return err
		}
		base, err := g.eval(lhs.Base, 1)
		if err != nil {
			return err
		}
		idx, err := g.eval(lhs.Idx, 2)
		if err != nil {
			return err
		}
		g.b.I(mx.Inst{Op: mx.STOREIDX64, Dst: rv, Base: base, Idx: idx, Scale: 8})
		return nil
	case *UnaryExpr: // *p = v
		rv, err := g.eval(rhs, 0)
		if err != nil {
			return err
		}
		addr, err := g.eval(lhs.X, 1)
		if err != nil {
			return err
		}
		g.b.I(mx.Inst{Op: mx.STORE64, Dst: rv, Base: addr})
		return nil
	}
	return fmt.Errorf("cc: bad assignment target %T", x.LHS)
}

// storeLocal stores the result of fill(reg) into the named local or global.
func (g *codegen) storeLocal(name string, fill func(mx.Reg)) error {
	r := g.scratch(0)
	fill(r)
	return g.storeLocalReg(name, r)
}

// storeLocalReg stores register r into the named local or global scalar.
func (g *codegen) storeLocalReg(name string, r mx.Reg) error {
	if g.arrays[name] || g.globalArr[name] {
		return fmt.Errorf("cc: func %s: assignment to array %q", g.fn.Name, name)
	}
	if reg, ok := g.regLocals[name]; ok {
		if reg != r {
			g.b.MovRR(reg, r)
		}
		return nil
	}
	if off, ok := g.slots[name]; ok {
		g.b.I(mx.Inst{Op: mx.STORE64, Dst: r, Base: mx.RBP, Disp: off})
		return nil
	}
	if g.globals[name] {
		g.b.MovSym(mx.R11, "g_"+name)
		g.b.I(mx.Inst{Op: mx.STORE64, Dst: r, Base: mx.R11})
		return nil
	}
	return fmt.Errorf("cc: func %s: assignment to undeclared %q", g.fn.Name, name)
}
