// Package cc implements mcc, a mini-C compiler targeting MX64.
//
// mcc stands in for gcc-8 in the reproduction: every input binary in the
// evaluation is compiled from mcc source at -O0 (all locals in stack slots,
// stack-machine expression evaluation — the memory-heavy code Polynima can
// speed up after recompilation) or -O2 (register-allocated locals, folded
// constants, direct conditional branches — the tight code whose recompilation
// costs show up as slowdowns).
//
// The language is untyped mini-C: every value is a 64-bit integer; pointers
// are integers; memory of other widths is accessed through load8/store8/
// load32/store32 builtins. It has functions (usable as values — function
// pointers), globals, arrays, variable-length arrays (the construct that
// defeats static stack-frame-bound recovery, §2.2.1), strings, the usual
// statements, hardware-atomic builtins that compile to lock-prefixed
// instructions, and packed-SIMD builtins.
package cc

import (
	"fmt"
	"strconv"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNum
	tStr
	tPunct
	tKeyword
)

type token struct {
	kind tokKind
	s    string // ident, punct, keyword text
	n    int64  // number value
	str  string // string literal value (decoded)
	line int
}

var keywords = map[string]bool{
	"func": true, "var": true, "if": true, "else": true, "while": true,
	"for": true, "return": true, "break": true, "continue": true,
	"extern": true, "switch": true, "case": true, "default": true,
	"goto": true, "label": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("cc: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	src := l.src
	for l.pos < len(src) {
		c := src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(src) && src[l.pos+1] == '/':
			for l.pos < len(src) && src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(src) && src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(src) && !(src[l.pos] == '*' && src[l.pos+1] == '/') {
				if src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(src) {
				return token{}, l.errf("unterminated block comment")
			}
			l.pos += 2
		default:
			goto scan
		}
	}
	return token{kind: tEOF, line: l.line}, nil

scan:
	c := src[l.pos]
	start := l.pos
	switch {
	case isIdentStart(c):
		for l.pos < len(src) && isIdentCont(src[l.pos]) {
			l.pos++
		}
		s := src[start:l.pos]
		if keywords[s] {
			return token{kind: tKeyword, s: s, line: l.line}, nil
		}
		return token{kind: tIdent, s: s, line: l.line}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(src) && (isIdentCont(src[l.pos])) {
			l.pos++
		}
		s := src[start:l.pos]
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			// allow full-range hex like 0xffffffffffffffff
			u, uerr := strconv.ParseUint(s, 0, 64)
			if uerr != nil {
				return token{}, l.errf("bad number %q", s)
			}
			v = int64(u)
		}
		return token{kind: tNum, n: v, line: l.line}, nil
	case c == '\'':
		l.pos++
		if l.pos >= len(src) {
			return token{}, l.errf("unterminated char literal")
		}
		var v int64
		if src[l.pos] == '\\' {
			l.pos++
			if l.pos >= len(src) {
				return token{}, l.errf("unterminated char literal")
			}
			e, err := unescape(src[l.pos])
			if err != nil {
				return token{}, l.errf("%v", err)
			}
			v = int64(e)
		} else {
			v = int64(src[l.pos])
		}
		l.pos++
		if l.pos >= len(src) || src[l.pos] != '\'' {
			return token{}, l.errf("unterminated char literal")
		}
		l.pos++
		return token{kind: tNum, n: v, line: l.line}, nil
	case c == '"':
		l.pos++
		var out []byte
		for l.pos < len(src) && src[l.pos] != '"' {
			ch := src[l.pos]
			if ch == '\n' {
				return token{}, l.errf("newline in string literal")
			}
			if ch == '\\' {
				l.pos++
				if l.pos >= len(src) {
					return token{}, l.errf("unterminated string")
				}
				e, err := unescape(src[l.pos])
				if err != nil {
					return token{}, l.errf("%v", err)
				}
				out = append(out, e)
			} else {
				out = append(out, ch)
			}
			l.pos++
		}
		if l.pos >= len(src) {
			return token{}, l.errf("unterminated string")
		}
		l.pos++
		return token{kind: tStr, str: string(out), line: l.line}, nil
	default:
		two := ""
		if l.pos+1 < len(src) {
			two = src[l.pos : l.pos+2]
		}
		switch two {
		case "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
			"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=":
			l.pos += 2
			return token{kind: tPunct, s: two, line: l.line}, nil
		}
		switch c {
		case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>',
			'=', '(', ')', '{', '}', '[', ']', ',', ';', ':':
			l.pos++
			return token{kind: tPunct, s: string(c), line: l.line}, nil
		}
		return token{}, l.errf("unexpected character %q", c)
	}
}

func unescape(c byte) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, fmt.Errorf("bad escape \\%c", c)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == 'x' || c == 'X'
}
