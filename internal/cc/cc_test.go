package cc_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/vm"
)

// compileRun compiles src at the given opt level, runs it, and returns the
// result.
func compileRun(t *testing.T, src string, opt int) vm.Result {
	t.Helper()
	img, _, err := cc.Compile(src, cc.Config{Name: "test", Opt: opt})
	if err != nil {
		t.Fatalf("compile (O%d): %v", opt, err)
	}
	m, err := vm.New(img, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(100_000_000)
	if res.Fault != nil {
		t.Fatalf("O%d fault: %v (output %q)", opt, res.Fault, res.Output)
	}
	return res
}

// runBoth runs src at O0 and O2 and checks both produce the expected exit
// code; it returns the two results for cost comparisons.
func runBoth(t *testing.T, src string, wantExit int) (o0, o2 vm.Result) {
	t.Helper()
	o0 = compileRun(t, src, 0)
	o2 = compileRun(t, src, 2)
	if o0.ExitCode != wantExit {
		t.Fatalf("O0 exit %d, want %d (output %q)", o0.ExitCode, wantExit, o0.Output)
	}
	if o2.ExitCode != wantExit {
		t.Fatalf("O2 exit %d, want %d (output %q)", o2.ExitCode, wantExit, o2.Output)
	}
	return o0, o2
}

func TestReturnConstant(t *testing.T) {
	runBoth(t, `func main() { return 42; }`, 42)
}

func TestArithmetic(t *testing.T) {
	runBoth(t, `
func main() {
	var a = 10;
	var b = 3;
	return a*b + a/b - a%b + (a<<2) - (a>>1) + (a&b) + (a|b) + (a^b);
}`, 30+3-1+40-5+2+11+9)
}

func TestUnaryOps(t *testing.T) {
	runBoth(t, `
func main() {
	var a = 5;
	return -a + 20 + ~a + 10 + !a + !0;
}`, -5+20-6+10+0+1)
}

func TestComparisonsAndConds(t *testing.T) {
	runBoth(t, `
func main() {
	var a = 7;
	var b = 9;
	var n = 0;
	if (a < b) { n = n + 1; }
	if (a > b) { n = n + 10; }
	if (a <= 7) { n = n + 2; }
	if (a >= 8) { n = n + 20; }
	if (a == 7 && b == 9) { n = n + 4; }
	if (a == 0 || b == 9) { n = n + 8; }
	if (!(a != 7)) { n = n + 16; }
	return n;
}`, 1+2+4+8+16)
}

func TestWhileAndFor(t *testing.T) {
	runBoth(t, `
func main() {
	var s = 0;
	var i = 0;
	while (i < 10) { s = s + i; i = i + 1; }
	for (i = 0; i < 5; i = i + 1) { s = s + 100; }
	return s;
}`, 45+500)
}

func TestBreakContinue(t *testing.T) {
	runBoth(t, `
func main() {
	var s = 0;
	var i;
	for (i = 0; i < 100; i = i + 1) {
		if (i % 2 == 0) { continue; }
		if (i > 10) { break; }
		s = s + i;
	}
	return s;
}`, 1+3+5+7+9)
}

func TestFunctionsAndRecursion(t *testing.T) {
	runBoth(t, `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
func main() { return fib(12); }`, 144)
}

func TestSixParams(t *testing.T) {
	runBoth(t, `
func sum6(a, b, c, d, e, f) { return a + b + c + d + e + f; }
func main() { return sum6(1, 2, 3, 4, 5, 6); }`, 21)
}

func TestGlobalsAndArrays(t *testing.T) {
	runBoth(t, `
var g = 5;
var tbl[4] = {10, 20, 30, 40};
var buf[8];
func main() {
	g = g + 1;
	buf[0] = tbl[3];
	buf[1] = tbl[0];
	return g + buf[0] + buf[1];
}`, 6+40+10)
}

func TestLocalArrays(t *testing.T) {
	runBoth(t, `
func main() {
	var a[10];
	var i;
	for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
	var s = 0;
	for (i = 0; i < 10; i = i + 1) { s = s + a[i]; }
	return s;
}`, 285)
}

func TestVLA(t *testing.T) {
	// Variable-length array: defeats static frame-size recovery.
	runBoth(t, `
func sumn(n) {
	var a[n];
	var i;
	for (i = 0; i < n; i = i + 1) { a[i] = i; }
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
	return s;
}
func main() { return sumn(10) + sumn(20); }`, 45+190)
}

func TestAlloca(t *testing.T) {
	runBoth(t, `
func main() {
	var p = alloca(64);
	store64(p, 7);
	store64(p + 8, 8);
	return load64(p) + load64(p + 8);
}`, 15)
}

func TestPointersAndAddressOf(t *testing.T) {
	runBoth(t, `
func bump(p) { *p = *p + 1; }
func main() {
	var x = 10;
	bump(&x);
	bump(&x);
	var q = &x;
	return *q;
}`, 12)
}

func TestWidthBuiltins(t *testing.T) {
	runBoth(t, `
var buf[4];
func main() {
	store8(buf, 200);
	store32(buf + 8, -5);
	return load8(buf) + load32(buf + 8) + 5;
}`, 200)
}

func TestStringsAndPrint(t *testing.T) {
	res := compileRun(t, `
extern print_str;
extern print_i64;
func main() {
	print_str("sum=");
	print_i64(1 + 2);
	return 0;
}`, 2)
	if res.Output != "sum=3\n" {
		t.Fatalf("output %q", res.Output)
	}
}

func TestFunctionPointers(t *testing.T) {
	runBoth(t, `
func add(a, b) { return a + b; }
func mul(a, b) { return a * b; }
func apply(f, a, b) { return f(a, b); }
func main() {
	var g = apply(add, 3, 4) ;
	var h = apply(mul, 3, 4);
	return g * 100 + h;
}`, 712)
}

func TestAtomicsBuiltins(t *testing.T) {
	runBoth(t, `
var c = 0;
func main() {
	atomic_add(&c, 5);
	atomic_sub(&c, 1);
	var old = atomic_xadd(&c, 10);  // old = 4, c = 14
	var ok = atomic_cas(&c, 14, 20); // ok = 1, c = 20
	var bad = atomic_cas(&c, 999, 7); // bad = 0
	var prev = xchg(&c, 30);         // prev = 20, c = 30
	fence();
	return c + old + ok*100 + bad*1000 + prev;
}`, 30+4+100+0+20)
}

func TestAtomicIncDec(t *testing.T) {
	runBoth(t, `
var c = 0;
func main() {
	atomic_add(&c, 2);
	var z1 = atomic_dec(&c); // c=1, not zero
	var z2 = atomic_dec(&c); // c=0, zero -> 1
	return z1*10 + z2;
}`, 1)
}

func TestThreadsFromC(t *testing.T) {
	src := `
extern thread_create;
extern thread_join;
var counter = 0;
func worker(arg) {
	var i;
	for (i = 0; i < 1000; i = i + 1) { atomic_add(&counter, arg); }
	return 0;
}
func main() {
	var t1 = thread_create(worker, 1);
	var t2 = thread_create(worker, 2);
	thread_join(t1);
	thread_join(t2);
	return counter / 30;
}`
	runBoth(t, src, 100)
}

func TestSpinlockInC(t *testing.T) {
	src := `
extern thread_create;
extern thread_join;
var lock = 0;
var count = 0;
func worker(arg) {
	var i;
	for (i = 0; i < 400; i = i + 1) {
		while (atomic_cas(&lock, 0, 1) == 0) { }
		count = count + 1;
		store64(&lock, 0);
	}
	return 0;
}
func main() {
	var t1 = thread_create(worker, 0);
	var t2 = thread_create(worker, 0);
	thread_join(t1);
	thread_join(t2);
	return count / 8;
}`
	runBoth(t, src, 100)
}

func TestVectorBuiltins(t *testing.T) {
	runBoth(t, `
var a[4] = {1, 2, 3, 4};
var b[4] = {5, 6, 7, 8};
func main() {
	vload(0, a);
	vload(1, b);
	vmul(0, 1);   // {5, 12, 21, 32}
	return vhadd(0);
}`, 70)
}

func TestO2UsesFewerCycles(t *testing.T) {
	src := `
func main() {
	var s = 0;
	var i;
	for (i = 0; i < 10000; i = i + 1) { s = s + i * 3 - (i & 7); }
	return s % 251;
}`
	o0, o2 := runBoth(t, src, func() int {
		s := int64(0)
		for i := int64(0); i < 10000; i++ {
			s += i*3 - (i & 7)
		}
		return int(s % 251)
	}())
	if o2.Cycles >= o0.Cycles {
		t.Fatalf("O2 (%d cycles) not faster than O0 (%d cycles)", o2.Cycles, o0.Cycles)
	}
	// The gap should be substantial (the Table 2 O0-vs-O3 premise).
	if float64(o0.Cycles)/float64(o2.Cycles) < 1.5 {
		t.Fatalf("O0/O2 ratio too small: %d / %d", o0.Cycles, o2.Cycles)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`func main() { return undefined_var; }`, "undefined identifier"},
		{`func main() { nosuchfn(); }`, "undefined"},
		{`func f() {} func f() {} func main() {}`, "duplicate function"},
		{`func main() { var x; var x; }`, "duplicate local"},
		{`func f(a,b,c,d,e,f,g) {} func main() {}`, "6 parameters"},
		{`func main() { break; }`, "break outside loop"},
		{`var g = x;`, "constant"},
		{`func main() { 3 = 4; }`, "assignment target"},
		{`func main() { return load8(1, 2); }`, "expects 1 args"},
	}
	for _, c := range cases {
		_, _, err := cc.Compile(c.src, cc.Config{Name: "e", Opt: 0})
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not contain %q", err, c.want)
		}
	}
}

func TestNoMain(t *testing.T) {
	if _, _, err := cc.Compile(`func f() {}`, cc.Config{}); err == nil ||
		!strings.Contains(err.Error(), "no main") {
		t.Fatalf("err = %v", err)
	}
}

func TestCommentsAndLiterals(t *testing.T) {
	runBoth(t, `
// line comment
/* block
   comment */
func main() {
	var c = 'A';        // 65
	var h = 0x10;       // 16
	var n = -3;
	return c + h + n + '\n';
}`, 65+16-3+10)
}

func TestDeepExpression(t *testing.T) {
	// Forces scratch-pool overflow handling.
	runBoth(t, `
func main() {
	var a = 1;
	return ((((((((a+1)*2)+3)*2)+5)*2)+7)*2) + (a + (a + (a + (a + (a + (a + (a + (a + 1))))))));
}`, func() int {
		a := 1
		v := ((((((((a+1)*2)+3)*2)+5)*2)+7)*2 + (a + (a + (a + (a + (a + (a + (a + (a + 1)))))))))
		return v
	}()) //nolint
}

func TestCompoundAssign(t *testing.T) {
	runBoth(t, `
var g = 10;
func main() {
	var a = 1;
	a += 5; a -= 2; a *= 3;
	g += a;
	var arr[2];
	arr[0] = 7;
	arr[0] += 3;
	return a + g + arr[0];
}`, 12+22+10)
}

func TestNestedCallsInArgs(t *testing.T) {
	runBoth(t, `
func inc(x) { return x + 1; }
func add(a, b) { return a + b; }
func main() { return add(inc(inc(1)), add(inc(2), inc(3))); }`, 3+3+4)
}

func TestQsortFromC(t *testing.T) {
	src := `
extern qsort;
var arr[6] = {9, 1, 8, 2, 7, 3};
func cmp(pa, pb) { return load64(pa) - load64(pb); }
func main() {
	qsort(arr, 6, 8, cmp);
	var i;
	var bad = 0;
	for (i = 0; i < 5; i = i + 1) {
		if (arr[i] > arr[i+1]) { bad = 1; }
	}
	if (bad) { return 255; }
	return arr[0]*10 + arr[5];
}`
	runBoth(t, src, 19)
}
