package cc

import "fmt"

type parser struct {
	toks []token
	pos  int
	err  error
}

// Parse parses an mcc source file.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tEOF, "") {
		switch {
		case p.at(tKeyword, "extern"):
			p.pos++
			name := p.expectIdent()
			p.expect(";")
			prog.Externs = append(prog.Externs, name)
		case p.at(tKeyword, "var"):
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case p.at(tKeyword, "func"):
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, p.errf("expected top-level declaration, got %q", p.cur().s)
		}
		if p.err != nil {
			return nil, p.err
		}
	}
	return prog, p.err
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokKind, s string) bool {
	t := p.cur()
	return t.kind == kind && (s == "" || t.s == s)
}

func (p *parser) errf(format string, args ...any) error {
	if p.err == nil {
		p.err = fmt.Errorf("cc: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
	}
	return p.err
}

func (p *parser) expect(punct string) {
	if p.cur().kind == tPunct && p.cur().s == punct {
		p.pos++
		return
	}
	p.errf("expected %q, got %q", punct, p.cur().s)
}

func (p *parser) expectIdent() string {
	if p.cur().kind == tIdent {
		s := p.cur().s
		p.pos++
		return s
	}
	p.errf("expected identifier, got %q", p.cur().s)
	return "_error_"
}

// err sticks: once set, parsing unwinds quickly because expect() no-ops.
// A stuck parser still terminates because statement loops check p.err.

func (p *parser) globalDecl() (*GlobalDecl, error) {
	p.pos++ // var
	g := &GlobalDecl{Name: p.expectIdent()}
	switch {
	case p.at(tPunct, "["):
		p.pos++
		if p.cur().kind != tNum {
			return nil, p.errf("global array length must be a constant")
		}
		g.ArrayLen = p.cur().n
		g.IsArray = true
		p.pos++
		p.expect("]")
		if p.at(tPunct, "=") {
			p.pos++
			p.expect("{")
			for !p.at(tPunct, "}") {
				if p.cur().kind != tNum {
					neg := false
					if p.at(tPunct, "-") {
						p.pos++
						neg = true
					}
					if p.cur().kind != tNum {
						return nil, p.errf("global array initializer must be constant")
					}
					v := p.cur().n
					if neg {
						v = -v
					}
					g.ArrayInit = append(g.ArrayInit, v)
					p.pos++
				} else {
					g.ArrayInit = append(g.ArrayInit, p.cur().n)
					p.pos++
				}
				if p.at(tPunct, ",") {
					p.pos++
				}
			}
			p.expect("}")
		}
	case p.at(tPunct, "="):
		p.pos++
		neg := false
		if p.at(tPunct, "-") {
			p.pos++
			neg = true
		}
		if p.cur().kind != tNum {
			return nil, p.errf("global initializer must be a constant")
		}
		g.Init = p.cur().n
		if neg {
			g.Init = -g.Init
		}
		p.pos++
	}
	p.expect(";")
	return g, p.err
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	line := p.cur().line
	p.pos++ // func
	f := &FuncDecl{Name: p.expectIdent(), Line: line}
	p.expect("(")
	for !p.at(tPunct, ")") {
		f.Params = append(f.Params, p.expectIdent())
		if p.at(tPunct, ",") {
			p.pos++
		} else {
			break
		}
	}
	p.expect(")")
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	if len(f.Params) > 6 {
		return nil, p.errf("func %s: more than 6 parameters", f.Name)
	}
	return f, p.err
}

func (p *parser) block() ([]Stmt, error) {
	p.expect("{")
	var out []Stmt
	for !p.at(tPunct, "}") && !p.at(tEOF, "") && p.err == nil {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.expect("}")
	return out, p.err
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.at(tKeyword, "var"):
		p.pos++
		name := p.expectIdent()
		if p.at(tPunct, "[") {
			p.pos++
			ln, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.expect("]")
			p.expect(";")
			return &ArrStmt{Name: name, Len: ln}, p.err
		}
		var init Expr
		if p.at(tPunct, "=") {
			p.pos++
			var err error
			init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		p.expect(";")
		return &VarStmt{Name: name, Init: init}, p.err
	case p.at(tKeyword, "if"):
		p.pos++
		p.expect("(")
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.expect(")")
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.at(tKeyword, "else") {
			p.pos++
			if p.at(tKeyword, "if") {
				s, err := p.stmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, p.err
	case p.at(tKeyword, "while"):
		p.pos++
		p.expect("(")
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.expect(")")
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, p.err
	case p.at(tKeyword, "for"):
		p.pos++
		p.expect("(")
		var init, post Stmt
		var cond Expr
		var err error
		if !p.at(tPunct, ";") {
			init, err = p.simpleStmt()
			if err != nil {
				return nil, err
			}
		}
		p.expect(";")
		if !p.at(tPunct, ";") {
			cond, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		p.expect(";")
		if !p.at(tPunct, ")") {
			post, err = p.simpleStmt()
			if err != nil {
				return nil, err
			}
		}
		p.expect(")")
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Init: init, Cond: cond, Post: post, Body: body}, p.err
	case p.at(tKeyword, "return"):
		p.pos++
		if p.at(tPunct, ";") {
			p.pos++
			return &ReturnStmt{}, p.err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.expect(";")
		return &ReturnStmt{X: x}, p.err
	case p.at(tKeyword, "break"):
		p.pos++
		p.expect(";")
		return &BreakStmt{}, p.err
	case p.at(tKeyword, "continue"):
		p.pos++
		p.expect(";")
		return &ContinueStmt{}, p.err
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		p.expect(";")
		return s, p.err
	}
}

// simpleStmt is an assignment or expression statement (no trailing ';').
func (p *parser) simpleStmt() (Stmt, error) {
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tPunct {
		op := p.cur().s
		switch op {
		case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=":
			p.pos++
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			switch lhs.(type) {
			case *IdentExpr, *IndexExpr:
			case *UnaryExpr:
				if lhs.(*UnaryExpr).Op != "*" {
					return nil, p.errf("invalid assignment target")
				}
			default:
				return nil, p.errf("invalid assignment target")
			}
			return &AssignStmt{LHS: lhs, Op: op, RHS: rhs}, nil
		}
	}
	return &ExprStmt{X: lhs}, nil
}

// Expression grammar, precedence climbing.
var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(0) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.s]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		if t.s == "&&" || t.s == "||" {
			lhs = &CondExpr{Op: t.s, L: lhs, R: rhs}
		} else {
			lhs = &BinExpr{Op: t.s, L: lhs, R: rhs}
		}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tPunct {
		switch t.s {
		case "-", "~", "!", "*", "&":
			p.pos++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: t.s, X: x}, nil
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tPunct, "["):
			p.pos++
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.expect("]")
			x = &IndexExpr{Base: x, Idx: idx}
		case p.at(tPunct, "("):
			id, ok := x.(*IdentExpr)
			if !ok {
				return nil, p.errf("call of non-identifier")
			}
			p.pos++
			var args []Expr
			for !p.at(tPunct, ")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.at(tPunct, ",") {
					p.pos++
				} else {
					break
				}
			}
			p.expect(")")
			if len(args) > 6 {
				return nil, p.errf("call %s: more than 6 arguments", id.Name)
			}
			if want, isB := builtins[id.Name]; isB && want != len(args) {
				return nil, p.errf("builtin %s expects %d args, got %d", id.Name, want, len(args))
			}
			x = &CallExpr{Name: id.Name, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tNum:
		p.pos++
		return &NumExpr{V: t.n}, nil
	case t.kind == tStr:
		p.pos++
		return &StrExpr{S: t.str}, nil
	case t.kind == tIdent:
		p.pos++
		return &IdentExpr{Name: t.s}, nil
	case t.kind == tPunct && t.s == "(":
		p.pos++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.expect(")")
		return x, p.err
	}
	return nil, p.errf("unexpected token %q", t.s)
}
