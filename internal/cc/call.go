package cc

import (
	"fmt"

	"repro/internal/mx"
)

// evalCall compiles a call expression: builtin, direct guest call, external
// library call, or indirect call through a function-pointer variable.
func (g *codegen) evalCall(x *CallExpr, depth int) (mx.Reg, error) {
	if _, isBuiltin := builtins[x.Name]; isBuiltin {
		return g.evalBuiltin(x, depth)
	}
	dst := g.scratch(depth)
	dmin := depth
	if dmin > len(scratchPool)-1 {
		dmin = len(scratchPool) - 1
	}

	// Save live intermediates of the enclosing expression.
	for i := 0; i < dmin; i++ {
		g.b.I(mx.Inst{Op: mx.PUSH, Dst: scratchPool[i]})
	}
	// Evaluate arguments left to right, stashing each on the stack.
	for _, a := range x.Args {
		r, err := g.eval(a, depth)
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.PUSH, Dst: r})
	}
	for i := len(x.Args) - 1; i >= 0; i-- {
		g.b.I(mx.Inst{Op: mx.POP, Dst: argRegs[i]})
	}

	// Resolve the callee. A local or global variable shadowing a function
	// name is an indirect call through the variable's value.
	_, isLocal := g.slots[x.Name]
	_, isRegLocal := g.regLocals[x.Name]
	switch {
	case isLocal || isRegLocal || (g.globals[x.Name] && !g.funcs[x.Name]):
		if err := g.loadIdent(x.Name, mx.R11); err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.CALLR, Dst: mx.R11})
	case g.funcs[x.Name]:
		g.b.Call("fn_" + x.Name)
	case g.externs[x.Name]:
		g.b.CallExt(x.Name)
	default:
		return 0, fmt.Errorf("cc: func %s: call of undefined %q", g.fn.Name, x.Name)
	}

	if dst != mx.RAX {
		g.b.MovRR(dst, mx.RAX)
	}
	for i := dmin - 1; i >= 0; i-- {
		g.b.I(mx.Inst{Op: mx.POP, Dst: scratchPool[i]})
	}
	return dst, nil
}

// constVReg extracts a constant vector-register index from a builtin arg.
func constVReg(e Expr) (mx.Reg, error) {
	n, ok := foldConst(e).(*NumExpr)
	if !ok || n.V < 0 || n.V >= int64(mx.NumVRegs) {
		return 0, fmt.Errorf("cc: vector register index must be a constant 0..%d", mx.NumVRegs-1)
	}
	return mx.Reg(n.V), nil
}

func (g *codegen) evalBuiltin(x *CallExpr, depth int) (mx.Reg, error) {
	dst := g.scratch(depth)
	switch x.Name {
	case "load8", "load32", "load64":
		r, err := g.eval(x.Args[0], depth)
		if err != nil {
			return 0, err
		}
		op := map[string]mx.Op{"load8": mx.LOAD8, "load32": mx.LOAD32, "load64": mx.LOAD64}[x.Name]
		g.b.I(mx.Inst{Op: op, Dst: dst, Base: r})
		return dst, nil
	case "store8", "store32", "store64":
		p, v, err := g.evalPair(x.Args[0], x.Args[1], depth)
		if err != nil {
			return 0, err
		}
		op := map[string]mx.Op{"store8": mx.STORE8, "store32": mx.STORE32, "store64": mx.STORE64}[x.Name]
		g.b.I(mx.Inst{Op: op, Dst: v, Base: p})
		if dst != v {
			g.b.MovRR(dst, v)
		}
		return dst, nil
	case "atomic_add", "atomic_sub", "atomic_and", "atomic_or":
		p, v, err := g.evalPair(x.Args[0], x.Args[1], depth)
		if err != nil {
			return 0, err
		}
		op := map[string]mx.Op{
			"atomic_add": mx.LOCKADD, "atomic_sub": mx.LOCKSUB,
			"atomic_and": mx.LOCKAND, "atomic_or": mx.LOCKOR,
		}[x.Name]
		g.b.I(mx.Inst{Op: op, Dst: v, Base: p})
		g.b.MovRI(dst, 0)
		return dst, nil
	case "atomic_xadd":
		p, v, err := g.evalPair(x.Args[0], x.Args[1], depth)
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.LOCKXADD, Dst: v, Base: p})
		if dst != v {
			g.b.MovRR(dst, v)
		}
		return dst, nil
	case "atomic_inc", "atomic_dec":
		// Returns 1 when the new value is zero (CKit-style dec locks).
		p, err := g.eval(x.Args[0], depth)
		if err != nil {
			return 0, err
		}
		op := mx.LOCKINC
		if x.Name == "atomic_dec" {
			op = mx.LOCKDEC
		}
		g.b.I(mx.Inst{Op: op, Base: p})
		g.b.I(mx.Inst{Op: mx.SETCC, Dst: dst, Cc: mx.CondE})
		return dst, nil
	case "xchg":
		p, v, err := g.evalPair(x.Args[0], x.Args[1], depth)
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.XCHG, Dst: v, Base: p})
		if dst != v {
			g.b.MovRR(dst, v)
		}
		return dst, nil
	case "atomic_cas":
		// atomic_cas(p, old, new) -> 1 if swapped, else 0.
		if depth >= 6 {
			return 0, fmt.Errorf("cc: atomic_cas nested too deep")
		}
		if depth > 0 {
			g.b.I(mx.Inst{Op: mx.PUSH, Dst: mx.RAX})
		}
		for i := 0; i < 3; i++ {
			r, err := g.eval(x.Args[i], depth)
			if err != nil {
				return 0, err
			}
			g.b.I(mx.Inst{Op: mx.PUSH, Dst: r})
		}
		g.b.I(mx.Inst{Op: mx.POP, Dst: mx.R11}) // new
		pReg := mx.R10
		g.b.I(mx.Inst{Op: mx.POP, Dst: mx.RAX}) // old (cmpxchg contract)
		g.b.I(mx.Inst{Op: mx.POP, Dst: pReg})   // p
		g.b.I(mx.Inst{Op: mx.CMPXCHG, Dst: mx.R11, Base: pReg})
		g.b.I(mx.Inst{Op: mx.SETCC, Dst: dst, Cc: mx.CondE})
		if depth > 0 {
			g.b.I(mx.Inst{Op: mx.POP, Dst: mx.RAX})
		}
		return dst, nil
	case "fence":
		g.b.I(mx.Inst{Op: mx.MFENCE})
		g.b.MovRI(dst, 0)
		return dst, nil
	case "vload", "vstore":
		vr, err := constVReg(x.Args[0])
		if err != nil {
			return 0, err
		}
		p, err := g.eval(x.Args[1], depth)
		if err != nil {
			return 0, err
		}
		op := mx.VLOAD
		if x.Name == "vstore" {
			op = mx.VSTORE
		}
		g.b.I(mx.Inst{Op: op, Dst: vr, Base: p})
		g.b.MovRI(dst, 0)
		return dst, nil
	case "vadd", "vmul":
		vd, err := constVReg(x.Args[0])
		if err != nil {
			return 0, err
		}
		vs, err := constVReg(x.Args[1])
		if err != nil {
			return 0, err
		}
		op := mx.VADD
		if x.Name == "vmul" {
			op = mx.VMUL
		}
		g.b.I(mx.Inst{Op: op, Dst: vd, Src: vs})
		g.b.MovRI(dst, 0)
		return dst, nil
	case "vbcast":
		vd, err := constVReg(x.Args[0])
		if err != nil {
			return 0, err
		}
		r, err := g.eval(x.Args[1], depth)
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.VBCAST, Dst: vd, Src: r})
		g.b.MovRI(dst, 0)
		return dst, nil
	case "vhadd":
		vs, err := constVReg(x.Args[0])
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.VHADD, Dst: dst, Src: vs})
		return dst, nil
	case "alloca":
		// alloca(nbytes): only valid where no expression temporaries are
		// stacked (enforced by construction in workloads: used as a simple
		// initializer).
		r, err := g.eval(x.Args[0], depth)
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.ADDRI, Dst: r, Imm: 15})
		g.b.I(mx.Inst{Op: mx.ANDRI, Dst: r, Imm: ^int64(15)})
		g.b.I(mx.Inst{Op: mx.SUBRR, Dst: mx.RSP, Src: r})
		g.b.MovRR(dst, mx.RSP)
		return dst, nil
	}
	return 0, fmt.Errorf("cc: unknown builtin %q", x.Name)
}
