package cc

// AST node definitions. The language is expression/statement mini-C with a
// single 64-bit integer value type.

// Program is a parsed translation unit.
type Program struct {
	Externs []string
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global scalar or array.
type GlobalDecl struct {
	Name string
	Init int64 // scalar initializer
	// ArrayLen > 0 declares an array of 64-bit elements (the name evaluates
	// to its address). ArrayInit optionally initializes leading elements.
	ArrayLen  int64
	IsArray   bool
	ArrayInit []int64
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// Stmt is a statement.
type Stmt interface{ stmt() }

type (
	// VarStmt declares a local scalar: var name = init;
	VarStmt struct {
		Name string
		Init Expr // nil means zero
	}
	// ArrStmt declares a local array: var name[len];
	// If Len is a constant expression the array lives in the frame;
	// otherwise it is a variable-length array allocated by moving the
	// stack pointer (the construct that defeats mctoll-style static
	// frame-size recovery).
	ArrStmt struct {
		Name string
		Len  Expr
	}
	ExprStmt   struct{ X Expr }
	AssignStmt struct {
		LHS Expr // Ident, Index, or Deref
		Op  string
		RHS Expr
	}
	IfStmt struct {
		Cond Expr
		Then []Stmt
		Else []Stmt
	}
	WhileStmt struct {
		Cond Expr
		Body []Stmt
	}
	ForStmt struct {
		Init Stmt // may be nil
		Cond Expr // may be nil (infinite)
		Post Stmt // may be nil
		Body []Stmt
	}
	ReturnStmt   struct{ X Expr } // X may be nil
	BreakStmt    struct{}
	ContinueStmt struct{}
)

func (*VarStmt) stmt()      {}
func (*ArrStmt) stmt()      {}
func (*ExprStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expr is an expression; every expression evaluates to an int64.
type Expr interface{ expr() }

type (
	NumExpr   struct{ V int64 }
	StrExpr   struct{ S string } // address of NUL-terminated .rodata string
	IdentExpr struct{ Name string }
	UnaryExpr struct {
		Op string // "-", "~", "!", "*", "&"
		X  Expr
	}
	BinExpr struct {
		Op   string
		L, R Expr
	}
	// IndexExpr is e[i]: 64-bit load at e + 8*i (or store when assigned).
	IndexExpr struct {
		Base, Idx Expr
	}
	CallExpr struct {
		Name string // function, extern, or builtin name
		Args []Expr
	}
	// CondExpr is && / || with short-circuit evaluation.
	CondExpr struct {
		Op   string
		L, R Expr
	}
)

func (*NumExpr) expr()   {}
func (*StrExpr) expr()   {}
func (*IdentExpr) expr() {}
func (*UnaryExpr) expr() {}
func (*BinExpr) expr()   {}
func (*IndexExpr) expr() {}
func (*CallExpr) expr()  {}
func (*CondExpr) expr()  {}

// Builtins compile to dedicated instruction sequences rather than calls.
var builtins = map[string]int{ // name -> arity
	"load8": 1, "load32": 1, "load64": 1,
	"store8": 2, "store32": 2, "store64": 2,
	"atomic_add": 2, "atomic_sub": 2, "atomic_and": 2, "atomic_or": 2,
	"atomic_xadd": 2, "atomic_inc": 1, "atomic_dec": 1,
	"atomic_cas": 3, "xchg": 2, "fence": 0,
	"vload": 2, "vstore": 2, "vadd": 2, "vmul": 2, "vbcast": 2, "vhadd": 1,
	"alloca": 1,
}
