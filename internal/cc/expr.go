package cc

import (
	"fmt"

	"repro/internal/mx"
)

// This file implements expression code generation.
//
// The evaluator keeps intermediate results in a scratch register pool indexed
// by expression depth. At -O2 subexpressions occupy adjacent pool registers;
// at -O0 every binary operation spills its left operand to the machine stack
// and every variable access goes through its frame slot, modelling the
// memory-heavy code gcc -O0 emits (this is what gives the recompiler's
// optimizer something to win back in Table 2's O0 column).

// scratch returns the pool register for a depth, clamping at the pool edge
// (the overflow path spills through the stack instead).
func (g *codegen) scratch(depth int) mx.Reg {
	if depth >= len(scratchPool) {
		depth = len(scratchPool) - 1
	}
	return scratchPool[depth]
}

// foldConst folds constant expressions (used for array-length classification
// in both modes, and for general folding at -O2).
func foldConst(e Expr) Expr {
	switch x := e.(type) {
	case *BinExpr:
		l, r := foldConst(x.L), foldConst(x.R)
		ln, lok := l.(*NumExpr)
		rn, rok := r.(*NumExpr)
		if lok && rok {
			if v, ok := foldBin(x.Op, ln.V, rn.V); ok {
				return &NumExpr{V: v}
			}
		}
		return &BinExpr{Op: x.Op, L: l, R: r}
	case *UnaryExpr:
		sub := foldConst(x.X)
		if n, ok := sub.(*NumExpr); ok {
			switch x.Op {
			case "-":
				return &NumExpr{V: -n.V}
			case "~":
				return &NumExpr{V: ^n.V}
			case "!":
				if n.V == 0 {
					return &NumExpr{V: 1}
				}
				return &NumExpr{V: 0}
			}
		}
		return &UnaryExpr{Op: x.Op, X: sub}
	}
	return e
}

func foldBin(op string, a, b int64) (int64, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case "%":
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case "&":
		return a & b, true
	case "|":
		return a | b, true
	case "^":
		return a ^ b, true
	case "<<":
		return a << (uint64(b) & 63), true
	case ">>":
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case "==":
		return b2i(a == b), true
	case "!=":
		return b2i(a != b), true
	case "<":
		return b2i(a < b), true
	case "<=":
		return b2i(a <= b), true
	case ">":
		return b2i(a > b), true
	case ">=":
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// fold applies constant folding only at -O2 (O0 keeps the junk).
func (g *codegen) fold(e Expr) Expr {
	if g.opt >= 2 {
		return foldConst(e)
	}
	return e
}

var cmpToCond = map[string]mx.Cond{
	"==": mx.CondE, "!=": mx.CondNE,
	"<": mx.CondL, "<=": mx.CondLE, ">": mx.CondG, ">=": mx.CondGE,
}

var binToOpRR = map[string]mx.Op{
	"+": mx.ADDRR, "-": mx.SUBRR, "*": mx.IMULRR, "/": mx.DIVRR,
	"%": mx.MODRR, "&": mx.ANDRR, "|": mx.ORRR, "^": mx.XORRR,
	"<<": mx.SHLRR, ">>": mx.SARRR, // >> is arithmetic (values are signed)
}

var binToOpRI = map[string]mx.Op{
	"+": mx.ADDRI, "-": mx.SUBRI, "*": mx.IMULRI,
	"&": mx.ANDRI, "|": mx.ORRI, "^": mx.XORRI,
	"<<": mx.SHLRI, ">>": mx.SARRI,
}

// eval generates code computing e into the pool register for depth, which it
// returns.
func (g *codegen) eval(e Expr, depth int) (mx.Reg, error) {
	e = g.fold(e)
	dst := g.scratch(depth)
	switch x := e.(type) {
	case *NumExpr:
		g.b.MovRI(dst, x.V)
		return dst, nil
	case *StrExpr:
		g.b.MovSym(dst, g.strLabel(x.S))
		return dst, nil
	case *IdentExpr:
		return dst, g.loadIdent(x.Name, dst)
	case *UnaryExpr:
		return g.evalUnary(x, depth)
	case *BinExpr:
		return g.evalBin(x, depth)
	case *CondExpr:
		return g.evalCond(x, depth)
	case *IndexExpr:
		base, err := g.eval(x.Base, depth)
		if err != nil {
			return 0, err
		}
		// Evaluate the index one depth up; protect base if we are at the
		// pool edge.
		if depth+1 >= len(scratchPool) {
			g.b.I(mx.Inst{Op: mx.PUSH, Dst: base})
			idx, err := g.eval(x.Idx, depth)
			if err != nil {
				return 0, err
			}
			g.b.I(mx.Inst{Op: mx.POP, Dst: mx.R11})
			g.b.I(mx.Inst{Op: mx.LOADIDX64, Dst: dst, Base: mx.R11, Idx: idx, Scale: 8})
			return dst, nil
		}
		idx, err := g.eval(x.Idx, depth+1)
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.LOADIDX64, Dst: dst, Base: base, Idx: idx, Scale: 8})
		return dst, nil
	case *CallExpr:
		return g.evalCall(x, depth)
	}
	return 0, fmt.Errorf("cc: unknown expression %T", e)
}

func (g *codegen) loadIdent(name string, dst mx.Reg) error {
	if r, ok := g.regLocals[name]; ok {
		g.b.MovRR(dst, r)
		return nil
	}
	if off, ok := g.slots[name]; ok {
		switch {
		case g.arrays[name]:
			g.b.I(mx.Inst{Op: mx.LEA, Dst: dst, Base: mx.RBP, Disp: off})
		default: // scalar or VLA pointer slot
			g.b.I(mx.Inst{Op: mx.LOAD64, Dst: dst, Base: mx.RBP, Disp: off})
		}
		return nil
	}
	if g.globals[name] {
		if g.globalArr[name] {
			g.b.MovSym(dst, "g_"+name)
		} else {
			g.b.MovSym(dst, "g_"+name)
			g.b.I(mx.Inst{Op: mx.LOAD64, Dst: dst, Base: dst})
		}
		return nil
	}
	if g.funcs[name] {
		g.b.MovSym(dst, "fn_"+name)
		return nil
	}
	return fmt.Errorf("cc: func %s: undefined identifier %q", g.fn.Name, name)
}

func (g *codegen) evalUnary(x *UnaryExpr, depth int) (mx.Reg, error) {
	dst := g.scratch(depth)
	switch x.Op {
	case "&":
		id, ok := x.X.(*IdentExpr)
		if !ok {
			return 0, fmt.Errorf("cc: func %s: & of non-variable", g.fn.Name)
		}
		if _, inReg := g.regLocals[id.Name]; inReg {
			return 0, fmt.Errorf("cc: internal: address-taken local %q in register", id.Name)
		}
		if off, ok := g.slots[id.Name]; ok {
			g.b.I(mx.Inst{Op: mx.LEA, Dst: dst, Base: mx.RBP, Disp: off})
			return dst, nil
		}
		if g.globals[id.Name] {
			g.b.MovSym(dst, "g_"+id.Name)
			return dst, nil
		}
		return 0, fmt.Errorf("cc: func %s: & of undefined %q", g.fn.Name, id.Name)
	case "*":
		r, err := g.eval(x.X, depth)
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.LOAD64, Dst: dst, Base: r})
		return dst, nil
	case "-":
		r, err := g.eval(x.X, depth)
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.NEG, Dst: r})
		return r, nil
	case "~":
		r, err := g.eval(x.X, depth)
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.NOT, Dst: r})
		return r, nil
	case "!":
		r, err := g.eval(x.X, depth)
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.TESTRR, Dst: r, Src: r})
		g.b.I(mx.Inst{Op: mx.SETCC, Dst: r, Cc: mx.CondE})
		return r, nil
	}
	return 0, fmt.Errorf("cc: unknown unary %q", x.Op)
}

func (g *codegen) evalBin(x *BinExpr, depth int) (mx.Reg, error) {
	dst := g.scratch(depth)

	// Comparison: compute both sides, CMP, SETcc.
	if cc, isCmp := cmpToCond[x.Op]; isCmp {
		l, r, err := g.evalPair(x.L, x.R, depth)
		if err != nil {
			return 0, err
		}
		g.b.I(mx.Inst{Op: mx.CMPRR, Dst: l, Src: r})
		g.b.I(mx.Inst{Op: mx.SETCC, Dst: dst, Cc: cc})
		return dst, nil
	}

	// Register-immediate form at -O2 when RHS is a small constant.
	if g.opt >= 2 {
		if n, ok := foldConst(x.R).(*NumExpr); ok && int64(int32(n.V)) == n.V {
			if opri, ok := binToOpRI[x.Op]; ok {
				l, err := g.eval(x.L, depth)
				if err != nil {
					return 0, err
				}
				g.b.I(mx.Inst{Op: opri, Dst: l, Imm: n.V})
				return l, nil
			}
		}
	}

	op, ok := binToOpRR[x.Op]
	if !ok {
		return 0, fmt.Errorf("cc: unknown binary operator %q", x.Op)
	}
	l, r, err := g.evalPair(x.L, x.R, depth)
	if err != nil {
		return 0, err
	}
	g.b.I(mx.Inst{Op: op, Dst: l, Src: r})
	if l != dst {
		g.b.MovRR(dst, l)
	}
	return dst, nil
}

// evalPair evaluates two operands, returning the registers holding them.
// The left result lands in the depth register. At -O0 (or at the pool edge)
// the left value is spilled to the stack while the right is computed,
// modelling -O0 stack-machine code.
func (g *codegen) evalPair(le, re Expr, depth int) (mx.Reg, mx.Reg, error) {
	spill := g.opt < 2 || depth+1 >= len(scratchPool)
	if !spill {
		l, err := g.eval(le, depth)
		if err != nil {
			return 0, 0, err
		}
		r, err := g.eval(re, depth+1)
		if err != nil {
			return 0, 0, err
		}
		return l, r, nil
	}
	l, err := g.eval(le, depth)
	if err != nil {
		return 0, 0, err
	}
	g.b.I(mx.Inst{Op: mx.PUSH, Dst: l})
	rtmp, err := g.eval(re, depth)
	if err != nil {
		return 0, 0, err
	}
	g.b.MovRR(mx.R11, rtmp)
	g.b.I(mx.Inst{Op: mx.POP, Dst: l})
	return l, mx.R11, nil
}

// evalCond computes a short-circuit && / || as a value.
func (g *codegen) evalCond(x *CondExpr, depth int) (mx.Reg, error) {
	dst := g.scratch(depth)
	end := g.label()
	l, err := g.eval(x.L, depth)
	if err != nil {
		return 0, err
	}
	g.b.I(mx.Inst{Op: mx.TESTRR, Dst: l, Src: l})
	g.b.I(mx.Inst{Op: mx.SETCC, Dst: dst, Cc: mx.CondNE})
	if x.Op == "&&" {
		g.b.Jcc(mx.CondE, end) // L false: result 0
	} else {
		g.b.Jcc(mx.CondNE, end) // L true: result 1
	}
	r, err := g.eval(x.R, depth)
	if err != nil {
		return 0, err
	}
	g.b.I(mx.Inst{Op: mx.TESTRR, Dst: r, Src: r})
	g.b.I(mx.Inst{Op: mx.SETCC, Dst: dst, Cc: mx.CondNE})
	g.b.Label(end)
	return dst, nil
}

// branchIfFalse branches to target when cond evaluates to zero.
func (g *codegen) branchIfFalse(cond Expr, target string) error {
	return g.branchCond(cond, target, false)
}

// branchCond branches to target when cond's truth equals want.
func (g *codegen) branchCond(cond Expr, target string, want bool) error {
	cond = g.fold(cond)
	if g.opt >= 2 {
		switch x := cond.(type) {
		case *NumExpr:
			if (x.V != 0) == want {
				g.b.Jmp(target)
			}
			return nil
		case *BinExpr:
			if cc, isCmp := cmpToCond[x.Op]; isCmp {
				if !want {
					cc = cc.Negate()
				}
				// CMP reg, imm form when possible.
				if n, ok := foldConst(x.R).(*NumExpr); ok && int64(int32(n.V)) == n.V {
					l, err := g.eval(x.L, 0)
					if err != nil {
						return err
					}
					g.b.I(mx.Inst{Op: mx.CMPRI, Dst: l, Imm: n.V})
					g.b.Jcc(cc, target)
					return nil
				}
				l, r, err := g.evalPair(x.L, x.R, 0)
				if err != nil {
					return err
				}
				g.b.I(mx.Inst{Op: mx.CMPRR, Dst: l, Src: r})
				g.b.Jcc(cc, target)
				return nil
			}
		case *UnaryExpr:
			if x.Op == "!" {
				return g.branchCond(x.X, target, !want)
			}
		case *CondExpr:
			if x.Op == "&&" && !want {
				// jump if either is false
				if err := g.branchCond(x.L, target, false); err != nil {
					return err
				}
				return g.branchCond(x.R, target, false)
			}
			if x.Op == "||" && want {
				if err := g.branchCond(x.L, target, true); err != nil {
					return err
				}
				return g.branchCond(x.R, target, true)
			}
			if x.Op == "&&" && want {
				skip := g.label()
				if err := g.branchCond(x.L, skip, false); err != nil {
					return err
				}
				if err := g.branchCond(x.R, target, true); err != nil {
					return err
				}
				g.b.Label(skip)
				return nil
			}
			if x.Op == "||" && !want {
				skip := g.label()
				if err := g.branchCond(x.L, skip, true); err != nil {
					return err
				}
				if err := g.branchCond(x.R, target, false); err != nil {
					return err
				}
				g.b.Label(skip)
				return nil
			}
		}
	}
	// Generic (and -O0) path: materialize the condition, TEST, branch.
	r, err := g.eval(cond, 0)
	if err != nil {
		return err
	}
	g.b.I(mx.Inst{Op: mx.TESTRR, Dst: r, Src: r})
	cc := mx.CondNE
	if !want {
		cc = mx.CondE
	}
	g.b.Jcc(cc, target)
	return nil
}
