package spindet_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/spindet"
)

// The tests mirror Listing 3: each case builds a small program whose loop
// has the shape in question and checks the analysis verdict through the full
// instrument-run-analyze pipeline.

func analyze(t *testing.T, src string, ccOpt int, inputs ...core.Input) *spindet.Report {
	t.Helper()
	img, _, err := cc.Compile(src, cc.Config{Name: "t", Opt: ccOpt})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.VerifyIR = true
	p, err := core.NewProject(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) == 0 {
		inputs = []core.Input{{Seed: 11}}
	}
	rep, err := p.FenceOptimize(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// Case (a): direct external dependency — spin on a shared global.
func TestListing3aSpinOnGlobalLoad(t *testing.T) {
	src := `
extern thread_create;
extern thread_join;
var flag = 0;
func waiter(a) {
	while (load64(&flag) == 0) { }
	return 1;
}
func main() {
	var t1 = thread_create(waiter, 0);
	store64(&flag, 1);
	return thread_join(t1);
}`
	rep := analyze(t, src, 2)
	if rep.FencesRemovable || rep.Spinning == 0 {
		t.Fatalf("shared-load spinloop not detected: %+v", rep)
	}
}

// Case (b): indirect external dependency — the shared value flows through a
// local slot before influencing the exit.
func TestListing3bSpinThroughLocalCopy(t *testing.T) {
	src := `
extern thread_create;
extern thread_join;
var flag = 0;
func waiter(a) {
	var seen = 0;
	while (seen == 0) {
		seen = load64(&flag);
	}
	return 1;
}
func main() {
	var t1 = thread_create(waiter, 0);
	store64(&flag, 1);
	return thread_join(t1);
}`
	// At O0 the local lives in stack memory, exactly Listing 3 (b).
	rep := analyze(t, src, 0)
	if rep.FencesRemovable || rep.Spinning == 0 {
		t.Fatalf("indirect spin dependency not detected: %+v", rep)
	}
}

// Case (e): register-allocated loop index — the canonical non-spinloop.
func TestListing3eCountedLoopRegister(t *testing.T) {
	src := `
func main() {
	var s = 0;
	var i;
	for (i = 0; i < 20; i = i + 1) { s = s + i; }
	return s;
}`
	rep := analyze(t, src, 2)
	if !rep.FencesRemovable {
		for _, l := range rep.Loops {
			t.Logf("%+v", l)
		}
		t.Fatal("counted register loop not proven non-spinning")
	}
}

// Case (d): the loop index lives in stack memory (unoptimized code) — the
// exit depends on a local store of a non-constant value.
func TestListing3dCountedLoopMemory(t *testing.T) {
	src := `
func main() {
	var s = 0;
	var i;
	for (i = 0; i < 20; i = i + 1) { s = s + i; }
	return s;
}`
	rep := analyze(t, src, 0)
	if !rep.FencesRemovable {
		for _, l := range rep.Loops {
			t.Logf("%+v", l)
		}
		t.Fatal("memory-resident counted loop not proven non-spinning (Listing 3 (d))")
	}
}

// Case (c): a loop whose exit-feeding local only ever receives a constant —
// must be classified as (potentially) spinning.
func TestListing3cConstantStoreSpins(t *testing.T) {
	src := `
extern thread_create;
extern thread_join;
var sync = 0;
func waiter(a) {
	var done = 0;
	while (done == 0) {
		if (load64(&sync) != 0) { done = 1; }
	}
	return 0;
}
func main() {
	var t1 = thread_create(waiter, 0);
	store64(&sync, 1);
	return thread_join(t1);
}`
	rep := analyze(t, src, 0)
	if rep.FencesRemovable {
		t.Fatalf("constant-store spin wrongly proven non-spinning: %+v", rep.Loops)
	}
}

// CKit-style cmpxchg spinlock: the atomic in the exit condition is an
// external dependency by definition.
func TestCasSpinlockDetected(t *testing.T) {
	src := `
extern thread_create;
extern thread_join;
var lock = 0;
var n = 0;
func w(a) {
	var i;
	for (i = 0; i < 20; i = i + 1) {
		while (atomic_cas(&lock, 0, 1) == 0) { }
		n = n + 1;
		store64(&lock, 0);
	}
	return 0;
}
func main() {
	var t1 = thread_create(w, 0);
	var t2 = thread_create(w, 0);
	thread_join(t1);
	thread_join(t2);
	return n;
}`
	rep := analyze(t, src, 2)
	if rep.FencesRemovable || rep.Spinning == 0 {
		t.Fatalf("cmpxchg spinlock not detected: %+v", rep)
	}
}

// Phoenix-style program: pthread-like synchronization only; everything else
// is data-parallel loops. All loops non-spinning.
func TestExternalSyncOnlyProgramRemovable(t *testing.T) {
	src := `
extern thread_create;
extern thread_join;
extern mutex_lock;
extern mutex_unlock;
var mu = 0;
var acc = 0;
func worker(arg) {
	var local = 0;
	var i;
	for (i = 0; i < 30; i = i + 1) { local = local + i * arg; }
	mutex_lock(&mu);
	acc = acc + local;
	mutex_unlock(&mu);
	return 0;
}
func main() {
	var t1 = thread_create(worker, 1);
	var t2 = thread_create(worker, 2);
	thread_join(t1);
	thread_join(t2);
	return acc % 97;
}`
	rep := analyze(t, src, 2)
	if !rep.FencesRemovable {
		for _, l := range rep.Loops {
			t.Logf("%+v", l)
		}
		t.Fatal("externally synchronized program not proven fence-removable")
	}
}

func TestMergeRecordingsAcrossRuns(t *testing.T) {
	r1 := spindet.NewRecorder().Recording()
	r2 := spindet.NewRecorder().Recording()
	r1.Sites[1] = &spindet.SiteRec{Class: spindet.ClassLocal, Addrs: map[uint64]bool{0x10: true}}
	r2.Sites[1] = &spindet.SiteRec{Class: spindet.ClassShared, Addrs: map[uint64]bool{0x20: true}}
	r2.Sites[2] = &spindet.SiteRec{Class: spindet.ClassLocal, Addrs: map[uint64]bool{0x30: true}}
	r1.Merge(r2)
	if r1.Sites[1].Class != spindet.ClassShared {
		t.Fatalf("merge did not escalate to shared: %v", r1.Sites[1].Class)
	}
	if !r1.Sites[1].Addrs[0x10] || !r1.Sites[1].Addrs[0x20] {
		t.Fatal("merge lost addresses")
	}
	if r1.Sites[2] == nil || r1.Sites[2].Class != spindet.ClassLocal {
		t.Fatal("merge dropped new site")
	}
}
