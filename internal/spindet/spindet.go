// Package spindet implements the implicit-synchronization (spinloop)
// detection of §3.4 and its dynamic memory-access classification.
//
// The analysis decides, per natural loop in the lifted IR, whether the loop
// can be shown NOT to be a spinloop: it is non-spinning if some exit
// condition is influenced by a local value that is (1) not loop-constant and
// (2) free of external dependencies, where a value has an external
// dependency if it depends on a shared-memory access through some dataflow
// (Listing 3's cases). When every loop of a program is proven non-spinning,
// the program implements no implicit synchronization primitives, and the
// Lasagne fences inserted at lift time are superfluous and may be removed
// (the FO columns of Table 2).
//
// Memory-access locality is recorded dynamically: an instrumented build of
// the recompiled binary reports every executed access site to the host
// recorder, which classifies addresses against the per-thread emulated-stack
// allocations it controls (§3.4.2). Uncovered loops leave the verdict
// conservative: fences are preserved (§3.4.3, false negatives).
package spindet

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/vm"
)

// ExtRecMem is the instrumentation runtime hook name.
const ExtRecMem = "__polynima_recmem"

// maxAddrsPerSite bounds the recorded address set per site.
const maxAddrsPerSite = 64

// SiteClass classifies the dynamically observed addresses of a site.
type SiteClass uint8

const (
	ClassUnseen SiteClass = iota // never executed
	ClassLocal                   // only this-thread emulated-stack addresses
	ClassShared                  // at least one non-stack or cross-thread address
)

func (c SiteClass) String() string {
	switch c {
	case ClassLocal:
		return "local"
	case ClassShared:
		return "shared"
	}
	return "unseen"
}

// SiteRec is the dynamic record of one memory access site. Local (own
// emulated stack) accesses are normalized to stack-relative offsets — the
// recorder controls each thread's stack allocation (§3.4.2), and distinct
// threads' stacks are disjoint, so local-vs-local aliasing is exactly offset
// equality. Shared accesses are recorded by raw address.
type SiteRec struct {
	Class SiteClass
	// Offs holds stack-relative offsets of local accesses.
	Offs         map[uint64]bool
	OffsOverflow bool
	// Addrs holds raw addresses (shared accesses, plus local ones for
	// local-vs-shared comparisons).
	Addrs    map[uint64]bool
	Overflow bool
	// Min/Max bound every raw address ever recorded (maintained even after
	// the exact set overflows, so overflowed sites compare by range).
	Min, Max uint64
}

// Recording maps SiteID -> observation.
type Recording struct {
	Sites map[int]*SiteRec
}

// Merge folds another recording into r (merging across runs, §3.4.2).
func (r *Recording) Merge(other *Recording) {
	for id, o := range other.Sites {
		rec := r.Sites[id]
		if rec == nil {
			rec = newSiteRec()
			r.Sites[id] = rec
		}
		if o.Class > rec.Class {
			rec.Class = o.Class
		}
		rec.Overflow = rec.Overflow || o.Overflow
		rec.OffsOverflow = rec.OffsOverflow || o.OffsOverflow
		if o.Max != 0 || o.Min != ^uint64(0) {
			rec.bound(o.Min)
			rec.bound(o.Max)
		}
		for a := range o.Addrs {
			if len(rec.Addrs) >= maxAddrsPerSite {
				rec.Overflow = true
				break
			}
			rec.Addrs[a] = true
		}
		for a := range o.Offs {
			if len(rec.Offs) >= maxAddrsPerSite {
				rec.OffsOverflow = true
				break
			}
			rec.Offs[a] = true
		}
	}
}

func newSiteRec() *SiteRec {
	return &SiteRec{Class: ClassUnseen, Addrs: map[uint64]bool{}, Offs: map[uint64]bool{},
		Min: ^uint64(0)}
}

func (r *SiteRec) bound(addr uint64) {
	if addr < r.Min {
		r.Min = addr
	}
	if addr > r.Max {
		r.Max = addr
	}
}

// Recorder collects dynamic memory-access records from an instrumented run.
// It supplies the __polynima_recmem external and a thread-aware override of
// the emulated-stack allocator so it knows each thread's stack range.
type Recorder struct {
	rec    *Recording
	stacks map[int][2]uint64 // thread ID -> [base, end) of its emulated stack
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		rec:    &Recording{Sites: map[int]*SiteRec{}},
		stacks: map[int][2]uint64{},
	}
}

// Recording returns the collected records.
func (r *Recorder) Recording() *Recording { return r.rec }

// Exts returns the host functions an instrumented machine needs.
func (r *Recorder) Exts() map[string]vm.ExtFunc {
	return map[string]vm.ExtFunc{
		// Override the runtime's stack allocator so the recorder controls
		// (and remembers) each thread's emulated-stack allocation.
		"__polynima_thread_init": func(m *vm.Machine, t *vm.Thread) error {
			const sz = 1 << 20
			base := m.Malloc(sz)
			r.stacks[t.ID] = [2]uint64{base, base + sz}
			top := (base + sz - 64) &^ 15
			t.Regs[0] = top // rax
			return nil
		},
		ExtRecMem: func(m *vm.Machine, t *vm.Thread) error {
			site := int(int64(t.Regs[7])) // rdi
			addr := t.Regs[6]             // rsi
			rec := r.rec.Sites[site]
			if rec == nil {
				rec = newSiteRec()
				r.rec.Sites[site] = rec
			}
			rng, ok := r.stacks[t.ID]
			local := ok && addr >= rng[0] && addr < rng[1]
			if local {
				if rec.Class == ClassUnseen {
					rec.Class = ClassLocal
				}
				off := addr - rng[0]
				if len(rec.Offs) < maxAddrsPerSite {
					rec.Offs[off] = true
				} else {
					rec.OffsOverflow = true
				}
			} else {
				rec.Class = ClassShared
			}
			rec.bound(addr)
			if len(rec.Addrs) < maxAddrsPerSite {
				rec.Addrs[addr] = true
			} else {
				rec.Overflow = true
			}
			return nil
		},
	}
}

// Instrument inserts a __polynima_recmem call before every original-program
// memory access site (loads, stores, atomics) of the module. It returns the
// number of instrumented sites. Instrument the freshly lifted module — the
// instrumented build only records; its performance is irrelevant.
func Instrument(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Insts); i++ {
				v := b.Insts[i]
				if v.SiteID == 0 {
					continue
				}
				switch v.Op {
				case ir.OpLoad, ir.OpStore, ir.OpAtomicRMW, ir.OpCmpXchg:
				default:
					continue
				}
				n++
				id := f.NewValue(ir.OpConst)
				id.Const = int64(v.SiteID)
				call := f.NewValue(ir.OpCallExt)
				call.ExtName = ExtRecMem
				call.Args = []*ir.Value{id, v.Args[0]}
				b.InsertBefore(id, i)
				b.InsertBefore(call, i+1)
				i += 2
			}
		}
	}
	return n
}

// LoopVerdict reports the analysis of one natural loop.
type LoopVerdict struct {
	Func     string
	Header   uint64 // original address of the loop header block
	Spinning bool   // could not be proven non-spinning
	Covered  bool   // all memory sites in the loop were observed dynamically
	Reason   string
}

// Report is the whole-module verdict.
type Report struct {
	Loops []LoopVerdict
	// NonSpinning counts proven non-spinning loops; Spinning the rest.
	NonSpinning, Spinning, Uncovered int
	// FencesRemovable is true when every loop is proven non-spinning: the
	// binary implements no implicit synchronization (§3.4.1).
	FencesRemovable bool
}

// Analyze classifies every loop of the (optimized) module against the
// dynamic recording.
func Analyze(m *ir.Module, rec *Recording) *Report {
	rep := &Report{FencesRemovable: true}
	for _, f := range m.Funcs {
		dom := ir.BuildDom(f)
		for _, l := range dom.FindLoops() {
			v := analyzeLoop(f, l, rec)
			rep.Loops = append(rep.Loops, v)
			switch {
			case v.Spinning:
				rep.Spinning++
				rep.FencesRemovable = false
			case !v.Covered:
				rep.Uncovered++
				rep.FencesRemovable = false
			default:
				rep.NonSpinning++
			}
		}
	}
	sort.Slice(rep.Loops, func(i, j int) bool {
		if rep.Loops[i].Func != rep.Loops[j].Func {
			return rep.Loops[i].Func < rep.Loops[j].Func
		}
		return rep.Loops[i].Header < rep.Loops[j].Header
	})
	return rep
}

// analyzeLoop decides whether l is provably non-spinning.
func analyzeLoop(f *ir.Func, l *ir.Loop, rec *Recording) LoopVerdict {
	v := LoopVerdict{Func: f.Name, Header: l.Header.OrigAddr, Covered: true}

	// Coverage: every site inside the loop must have been observed.
	for b := range l.Blocks {
		for _, in := range b.Insts {
			if in.SiteID == 0 {
				continue
			}
			if r := rec.Sites[in.SiteID]; r == nil || r.Class == ClassUnseen {
				v.Covered = false
				v.Reason = fmt.Sprintf("site %d at %#x not covered by the provided inputs", in.SiteID, in.OrigPC)
			}
		}
	}

	a := &analyzer{f: f, loop: l, rec: rec}
	// The loop is non-spinning if SOME exit condition has SOME operand
	// influenced by a local, loop-varying, external-free value (§3.4.2
	// analyzes the operands of each termination condition individually).
	for _, ex := range l.Exits {
		t := ex.From.Term()
		if t == nil {
			continue
		}
		var operands []*ir.Value
		switch t.Op {
		case ir.OpCondBr, ir.OpSwitch:
			c := t.Args[0]
			if c.Op == ir.OpICmp {
				operands = append(operands, c.Args...)
			} else {
				operands = append(operands, c)
			}
		default:
			continue // unconditional exit (br out of loop): no condition
		}
		for _, c := range operands {
			res := a.influence(c, map[*ir.Value]bool{}, 0)
			if res.varying && !res.external {
				v.Spinning = false
				if v.Covered {
					v.Reason = fmt.Sprintf("exit at %#x depends on a loop-varying local value", t.OrigPC)
				}
				return v
			}
		}
	}
	v.Spinning = true
	if v.Reason == "" {
		v.Reason = "no exit condition has a loop-varying, external-free influence"
	}
	return v
}

// influenceResult is the instruction-influence classification of a value
// with respect to the analyzed loop.
type influenceResult struct {
	varying  bool // influenced by a loop-modified local value
	external bool // depends on a shared-memory access / call / atomic
}

type analyzer struct {
	f    *ir.Func
	loop *ir.Loop
	rec  *Recording
}

const maxDepth = 64

// influence performs the backwards dataflow of §3.4.2 over use-def chains,
// chasing local memory through dynamically recorded locations.
func (a *analyzer) influence(v *ir.Value, visiting map[*ir.Value]bool, depth int) influenceResult {
	if depth > maxDepth {
		return influenceResult{external: true} // give up conservatively
	}
	if visiting[v] {
		return influenceResult{} // neutral on cycles
	}
	visiting[v] = true
	defer delete(visiting, v)

	inLoop := v.Block != nil && a.loop.Blocks[v.Block]

	switch v.Op {
	case ir.OpConst, ir.OpGlobalAddr, ir.OpFuncAddr, ir.OpUndef:
		return influenceResult{}
	case ir.OpPhi:
		res := influenceResult{}
		if inLoop {
			// A loop phi IS a loop-modified value (Listing 3 case (e)).
			res.varying = true
		}
		for _, arg := range v.Args {
			r := a.influence(arg, visiting, depth+1)
			res.varying = res.varying || r.varying
			res.external = res.external || r.external
		}
		return res
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLshr, ir.OpAshr,
		ir.OpNeg, ir.OpNot, ir.OpICmp, ir.OpSelect:
		res := influenceResult{}
		for _, arg := range v.Args {
			r := a.influence(arg, visiting, depth+1)
			res.varying = res.varying || r.varying
			res.external = res.external || r.external
		}
		return res
	case ir.OpAtomicRMW, ir.OpCmpXchg:
		// Atomic accesses are synchronization by definition.
		return influenceResult{external: true}
	case ir.OpCall, ir.OpCallExt:
		return influenceResult{external: true}
	case ir.OpVRegLoad:
		// An entry-state load (argument registers, incoming context) is a
		// plain local value — the paper lifts arguments as parameters.
		if a.isEntryState(v) {
			return influenceResult{}
		}
		// A reload of a callee-saved register after a call observes the
		// value flushed before the call (the ABI round-trip the paper's
		// pre-analysis inlining makes explicit): chase the reaching store.
		if stored := a.reachingVRegStore(v); stored != nil {
			return a.influence(stored, visiting, depth+1)
		}
		return influenceResult{external: true}
	case ir.OpLoad:
		return a.loadInfluence(v, visiting, depth)
	}
	return influenceResult{external: true}
}

// loadInfluence resolves a memory load using the dynamic records: shared
// sites are external dependencies; local sites are chased through the
// intra-loop stores to the same recorded locations (Listing 3 (b)-(d)).
func (a *analyzer) loadInfluence(v *ir.Value, visiting map[*ir.Value]bool, depth int) influenceResult {
	rec := a.rec.Sites[v.SiteID]
	if rec == nil || rec.Class == ClassUnseen {
		return influenceResult{external: true} // uncovered: conservative
	}
	if rec.Class == ClassShared {
		return influenceResult{external: true}
	}
	// Local location: find intra-loop stores whose observed addresses
	// overlap this load's.
	res := influenceResult{}
	for b := range a.loop.Blocks {
		for _, in := range b.Insts {
			if in.Op != ir.OpStore || in.SiteID == 0 {
				continue
			}
			srec := a.rec.Sites[in.SiteID]
			if srec == nil || srec.Class == ClassUnseen {
				continue // store never executed on these inputs
			}
			if !addrsOverlap(rec, srec) {
				continue
			}
			stored := in.Args[1]
			// Listing 3 (c): a constant store does not vary across
			// iterations. (d): a non-constant store is loop-modified,
			// provided it carries no external dependency.
			r := a.influence(stored, visiting, depth+1)
			if r.external {
				res.external = true
				continue
			}
			if stored.Op != ir.OpConst {
				res.varying = true
			}
		}
	}
	return res
}

// calleeSavedVReg reports whether g is a callee-saved virtual register
// (preserved across calls by the source ABI).
func calleeSavedVReg(g *ir.Global) bool {
	switch g.Name {
	case "vr_rbx", "vr_rbp", "vr_rsp", "vr_r12", "vr_r13", "vr_r14", "vr_r15":
		return true
	}
	return false
}

// reachingVRegStore finds the unique virtual-register store whose value a
// reload observes, walking backwards through the block and unique
// predecessors. Calls are transparent for callee-saved registers (the
// callee restores them); anything ambiguous returns nil.
func (a *analyzer) reachingVRegStore(v *ir.Value) *ir.Value {
	g := v.Global
	if !calleeSavedVReg(g) {
		return nil
	}
	preds := ir.Preds(a.f)
	b := v.Block
	// Position of v within its block.
	idx := -1
	for i, in := range b.Insts {
		if in == v {
			idx = i
			break
		}
	}
	for hops := 0; hops < 64; hops++ {
		for i := idx - 1; i >= 0; i-- {
			in := b.Insts[i]
			if in.Op == ir.OpVRegStore && in.Global == g {
				return in.Args[0]
			}
			// Calls preserve callee-saved registers; barriers and
			// atomics do not touch them either.
		}
		ps := preds[b]
		if len(ps) != 1 {
			return nil
		}
		b = ps[0]
		idx = len(b.Insts)
	}
	return nil
}

// isEntryState reports whether a vreg load observes only entry state: it
// sits in the entry block with no call preceding it.
func (a *analyzer) isEntryState(v *ir.Value) bool {
	entry := a.f.Entry()
	if v.Block != entry {
		return false
	}
	for _, in := range entry.Insts {
		if in == v {
			return true
		}
		if in.Op == ir.OpCall || in.Op == ir.OpCallExt {
			return false
		}
	}
	return false
}

func addrsOverlap(a, b *SiteRec) bool {
	// Two purely local sites can only alias at equal stack offsets: each
	// thread's accesses stay inside its own (disjoint) stack allocation, so
	// raw-address comparison adds nothing.
	if a.Class == ClassLocal && b.Class == ClassLocal {
		if a.OffsOverflow || b.OffsOverflow {
			return true
		}
		return setsIntersect(a.Offs, b.Offs)
	}
	if a.Overflow || b.Overflow {
		// Exact sets overflowed: compare by the maintained address ranges
		// (accesses are at most 8 bytes wide).
		return a.Min <= b.Max+8 && b.Min <= a.Max+8
	}
	return setsIntersect(a.Addrs, b.Addrs)
}

func setsIntersect(a, b map[uint64]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for x := range a {
		if b[x] {
			return true
		}
	}
	return false
}

// DebugInfluence exposes the influence classification for diagnostics and
// tests: it returns (varying, external) for the first exit condition of the
// loop with the given header address in the named function.
func DebugInfluence(m *ir.Module, fn string, header uint64, rec *Recording) (bool, bool, []string) {
	var notes []string
	for _, f := range m.Funcs {
		if f.Name != fn {
			continue
		}
		dom := ir.BuildDom(f)
		for _, l := range dom.FindLoops() {
			if l.Header.OrigAddr != header {
				continue
			}
			a := &analyzer{f: f, loop: l, rec: rec}
			for _, ex := range l.Exits {
				t := ex.From.Term()
				if t == nil || (t.Op != ir.OpCondBr && t.Op != ir.OpSwitch) {
					continue
				}
				cond := t.Args[0]
				var walk func(v *ir.Value, d int)
				walk = func(v *ir.Value, d int) {
					if d > 5 {
						return
					}
					r := a.influence(v, map[*ir.Value]bool{}, 0)
					notes = append(notes, fmt.Sprintf("%*s%%%d %s varying=%v external=%v", d*2, "", v.ID, v.Op, r.varying, r.external))
					for _, arg := range v.Args {
						walk(arg, d+1)
					}
				}
				walk(cond, 0)
				r := a.influence(cond, map[*ir.Value]bool{}, 0)
				return r.varying, r.external, notes
			}
		}
	}
	return false, false, notes
}
