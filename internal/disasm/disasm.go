// Package disasm is the static disassembler: the COTS-disassembler stage of
// the pipeline (the paper wraps radare2; we implement the equivalent).
//
// It performs recursive-descent disassembly from the entry point, treating
// calls and jumps as block terminators, discovers additional function entries
// from direct call targets and from address-taken heuristics (immediate
// operands and data words that point into the text section), and resolves
// jump tables with the classic bounded-scan heuristic (find the table base
// register's defining MOVRI, read consecutive code pointers, bound by a
// preceding CMP when present).
//
// Like any static disassembler it overapproximates and can miss targets of
// register-indirect transfers; those are recovered dynamically by the ICFT
// tracer and by additive lifting (§3.2).
package disasm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/image"
	"repro/internal/mx"
)

// maxJumpTable bounds the table-scan heuristic.
const maxJumpTable = 1024

// Disassemble recovers the static CFG of img.
func Disassemble(img *image.Image) (*cfg.Graph, error) {
	text := img.Text()
	if text == nil {
		return nil, fmt.Errorf("disasm: image has no text section")
	}
	d := &state{
		img:     img,
		text:    text,
		g:       cfg.NewGraph(img.Entry),
		inTable: map[uint64]bool{},
	}
	d.addFunc(img.Entry)
	for {
		progress := false
		// Drain the function worklist.
		for len(d.funcWork) > 0 {
			fe := d.funcWork[len(d.funcWork)-1]
			d.funcWork = d.funcWork[:len(d.funcWork)-1]
			d.exploreFunc(fe)
			progress = true
		}
		// Address-taken heuristics may reveal more entries.
		if d.scanAddressTaken() {
			progress = true
		}
		if !progress {
			break
		}
	}
	return d.g, nil
}

// ExploreFrom integrates newly discovered control flow starting at target
// into an existing graph (the additive-lifting static descent, §3.2:
// "starting at this target, we perform a static recursive descent style
// exploration ... and integrate back all the discovered paths"). The new
// blocks are attached to the function owning fromBlock.
func ExploreFrom(img *image.Image, g *cfg.Graph, fromBlock, target uint64) error {
	text := img.Text()
	if text == nil {
		return fmt.Errorf("disasm: image has no text section")
	}
	owner := g.FuncOf(fromBlock)
	if owner == nil {
		return fmt.Errorf("disasm: additive target from unknown block %#x", fromBlock)
	}
	b, ok := g.Blocks[fromBlock]
	if !ok {
		return fmt.Errorf("disasm: missing source block %#x", fromBlock)
	}
	d := &state{img: img, text: text, g: g, inTable: map[uint64]bool{}}
	if b.Term == cfg.TermCallInd {
		// New indirect-call target: a whole new function.
		b.AddTarget(target)
		d.addFunc(target)
	} else {
		// New jump target: explore within the owning function.
		b.AddTarget(target)
		d.exploreBlocks(owner, []uint64{target})
	}
	for len(d.funcWork) > 0 {
		fe := d.funcWork[len(d.funcWork)-1]
		d.funcWork = d.funcWork[:len(d.funcWork)-1]
		d.exploreFunc(fe)
	}
	return nil
}

type state struct {
	img      *image.Image
	text     *image.Section
	g        *cfg.Graph
	funcWork []uint64
	inTable  map[uint64]bool // rodata addresses identified as jump-table slots
}

func (d *state) addFunc(entry uint64) {
	if d.g.Func(entry) != nil {
		return
	}
	if !d.img.InText(entry) {
		return
	}
	d.g.AddFunc(entry)
	d.funcWork = append(d.funcWork, entry)
}

// exploreFunc recursively disassembles the function at entry.
func (d *state) exploreFunc(entry uint64) {
	f := d.g.Func(entry)
	d.exploreBlocks(f, []uint64{entry})
}

// exploreBlocks walks intraprocedural control flow from the given seeds,
// attaching every reached block to f.
func (d *state) exploreBlocks(f *cfg.Func, seeds []uint64) {
	work := append([]uint64(nil), seeds...)
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		if b, ok := d.g.Blocks[addr]; ok {
			// Known block: just claim it for f and follow its edges once.
			if owned := inFunc(f, addr); !owned {
				d.g.AddBlockToFunc(f, addr)
				work = append(work, d.intraSuccs(b)...)
			}
			continue
		}
		// The address may split an existing block.
		if host := d.g.BlockContaining(addr); host != nil && host.Addr != addr {
			if nb := d.splitBlock(host, addr); nb != nil {
				d.g.AddBlockToFunc(f, nb.Addr)
				work = append(work, d.intraSuccs(nb)...)
				continue
			}
			// Split failed: addr is not on an instruction boundary of the
			// host block — overlapping code. Decode it independently.
		}
		b := d.decodeBlock(addr, f)
		if b == nil {
			continue
		}
		d.g.Blocks[addr] = b
		d.g.AddBlockToFunc(f, addr)
		work = append(work, d.intraSuccs(b)...)
	}
}

func inFunc(f *cfg.Func, addr uint64) bool {
	for _, b := range f.Blocks {
		if b == addr {
			return true
		}
	}
	return false
}

// intraSuccs returns the intraprocedural successor addresses of b (and
// queues interprocedural call targets as functions).
func (d *state) intraSuccs(b *cfg.Block) []uint64 {
	var out []uint64
	switch b.Term {
	case cfg.TermJmp, cfg.TermJcc, cfg.TermJmpInd:
		out = append(out, b.Targets...)
	case cfg.TermCall, cfg.TermCallInd:
		for _, t := range b.Targets {
			d.addFunc(t)
		}
	}
	if b.Fall != 0 {
		out = append(out, b.Fall)
	}
	return out
}

// decodeBlock linearly decodes a basic block starting at addr.
func (d *state) decodeBlock(addr uint64, f *cfg.Func) *cfg.Block {
	if !d.img.InText(addr) {
		return nil
	}
	b := &cfg.Block{Addr: addr}
	pc := addr
	var insts []mx.Inst
	var instAddrs []uint64
	for {
		// Stop if we run into an existing block: fall into it.
		if _, exists := d.g.Blocks[pc]; exists && pc != addr {
			b.Term = cfg.TermFall
			b.Fall = pc
			b.Size = pc - addr
			return b
		}
		off := pc - d.text.Addr
		if off >= uint64(len(d.text.Data)) {
			b.Term = cfg.TermHalt
			b.Size = pc - addr
			return b
		}
		inst, n := mx.Decode(d.text.Data[off:])
		if inst.Op == mx.BAD {
			// Undecodable: halt block (lifting will emit a trap here).
			b.Term = cfg.TermHalt
			b.Size = pc - addr + uint64(n)
			return b
		}
		insts = append(insts, inst)
		instAddrs = append(instAddrs, pc)
		next := pc + uint64(n)
		switch {
		case inst.Op == mx.JMP:
			b.Term = cfg.TermJmp
			b.Targets = []uint64{uint64(int64(next) + int64(inst.Disp))}
			b.Size = next - addr
			return b
		case inst.Op == mx.JCC:
			b.Term = cfg.TermJcc
			b.Targets = []uint64{uint64(int64(next) + int64(inst.Disp))}
			b.Fall = next
			b.Size = next - addr
			return b
		case inst.Op == mx.JMPR:
			b.Term = cfg.TermJmpInd
			b.Size = next - addr
			return b
		case inst.Op == mx.JMPM:
			b.Term = cfg.TermJmpInd
			b.Size = next - addr
			b.Targets = d.resolveJumpTable(insts, instAddrs, inst)
			return b
		case inst.Op == mx.CALL:
			b.Term = cfg.TermCall
			b.Targets = []uint64{uint64(int64(next) + int64(inst.Disp))}
			b.Fall = next
			b.Size = next - addr
			return b
		case inst.Op == mx.CALLR:
			b.Term = cfg.TermCallInd
			b.Fall = next
			b.Size = next - addr
			return b
		case inst.Op == mx.CALLX:
			b.Term = cfg.TermCallExt
			b.Ext = inst.Ext
			b.Fall = next
			b.Size = next - addr
			return b
		case inst.Op == mx.RET:
			b.Term = cfg.TermRet
			b.Size = next - addr
			return b
		case inst.Op == mx.HLT || inst.Op == mx.UD2 || inst.Op == mx.SYSCALL:
			b.Term = cfg.TermHalt
			b.Size = next - addr
			return b
		}
		pc = next
	}
}

// splitBlock splits host at addr (which must be an instruction boundary
// strictly inside host). The low half keeps host's address and falls through
// to the new high half, which inherits the terminator.
func (d *state) splitBlock(host *cfg.Block, addr uint64) *cfg.Block {
	// Verify addr is on an instruction boundary by re-decoding.
	pc := host.Addr
	for pc < addr {
		off := pc - d.text.Addr
		inst, n := mx.Decode(d.text.Data[off:])
		if inst.Op == mx.BAD || n == 0 {
			return nil
		}
		pc += uint64(n)
	}
	if pc != addr {
		return nil // overlapping instructions
	}
	hi := &cfg.Block{
		Addr:    addr,
		Size:    host.Addr + host.Size - addr,
		Term:    host.Term,
		Targets: host.Targets,
		Fall:    host.Fall,
		Ext:     host.Ext,
	}
	host.Size = addr - host.Addr
	host.Term = cfg.TermFall
	host.Targets = nil
	host.Fall = addr
	host.Ext = 0
	d.g.Blocks[addr] = hi
	// The new half belongs to every function that owned the host.
	for _, f := range d.g.Funcs {
		if inFunc(f, host.Addr) {
			d.g.AddBlockToFunc(f, addr)
		}
	}
	return hi
}

// resolveJumpTable applies the jump-table heuristic to a JMPM terminator:
// find the defining MOVRI of the base register within the block, then read
// consecutive code pointers from the table, bounded by a preceding CMP on
// the index register when present.
func (d *state) resolveJumpTable(insts []mx.Inst, addrs []uint64, jmp mx.Inst) []uint64 {
	var tableAddr uint64
	bound := -1
	for i := len(insts) - 2; i >= 0; i-- {
		in := insts[i]
		if tableAddr == 0 && in.Op == mx.MOVRI && in.Dst == jmp.Base {
			tableAddr = uint64(in.Imm)
		}
		if bound < 0 && in.Op == mx.CMPRI && in.Dst == jmp.Idx {
			bound = int(in.Imm)
		}
		if tableAddr != 0 && bound >= 0 {
			break
		}
	}
	if tableAddr == 0 {
		return nil
	}
	base := tableAddr + uint64(int64(jmp.Disp))
	sec := d.img.FindSection(base)
	if sec == nil || sec.Exec {
		return nil
	}
	max := maxJumpTable
	if bound >= 0 && bound+1 < max {
		// cmp idx, N; ja default  ==> N+1 entries (the common shape).
		max = bound + 1
	}
	var targets []uint64
	seen := map[uint64]bool{}
	for i := 0; i < max; i++ {
		slot := base + uint64(i)*8
		off := slot - sec.Addr
		if off+8 > uint64(len(sec.Data)) {
			break
		}
		entry := binary.LittleEndian.Uint64(sec.Data[off:])
		if !d.img.InText(entry) {
			break
		}
		d.inTable[slot] = true
		if !seen[entry] {
			seen[entry] = true
			targets = append(targets, entry)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	return targets
}

// scanAddressTaken scans decoded blocks for MOVRI immediates that point into
// text, and data sections for code pointers (excluding identified jump-table
// slots). Hits become candidate function entries. It reports whether any new
// function was queued.
func (d *state) scanAddressTaken() bool {
	before := len(d.funcWork)
	// Immediates inside known blocks.
	for _, b := range d.g.Blocks {
		pc := b.Addr
		for pc < b.Addr+b.Size {
			off := pc - d.text.Addr
			inst, n := mx.Decode(d.text.Data[off:])
			if n == 0 || inst.Op == mx.BAD {
				break
			}
			if inst.Op == mx.MOVRI && d.img.InText(uint64(inst.Imm)) {
				d.addFunc(uint64(inst.Imm))
			}
			pc += uint64(n)
		}
	}
	// Code pointers in data sections.
	for i := range d.img.Sections {
		sec := &d.img.Sections[i]
		if sec.Exec || sec.Data == nil {
			continue
		}
		for off := 0; off+8 <= len(sec.Data); off += 8 {
			slot := sec.Addr + uint64(off)
			if d.inTable[slot] {
				continue
			}
			v := binary.LittleEndian.Uint64(sec.Data[off:])
			if d.img.InText(v) {
				d.addFunc(v)
			}
		}
	}
	return len(d.funcWork) > before
}

// DecodeBlock decodes the instructions of a block from the image (shared by
// the lifter and tests; the CFG stores only extents).
func DecodeBlock(img *image.Image, b *cfg.Block) ([]mx.Inst, []uint64, error) {
	text := img.FindSection(b.Addr)
	if text == nil || !text.Exec {
		return nil, nil, fmt.Errorf("disasm: block %#x not in text", b.Addr)
	}
	var insts []mx.Inst
	var addrs []uint64
	pc := b.Addr
	for pc < b.Addr+b.Size {
		off := pc - text.Addr
		inst, n := mx.Decode(text.Data[off:])
		if n == 0 {
			return nil, nil, fmt.Errorf("disasm: decode failure at %#x", pc)
		}
		insts = append(insts, inst)
		addrs = append(addrs, pc)
		pc += uint64(n)
	}
	return insts, addrs, nil
}

// AddTracedBlock integrates the single basic block executing at pc into g,
// claiming it for f — the per-executed-block CFG construction of dynamic
// lifters (no recursive descent: only realized paths are integrated). If pc
// falls inside an already-decoded block, that block is split.
func AddTracedBlock(img *image.Image, g *cfg.Graph, f *cfg.Func, pc uint64) error {
	text := img.Text()
	if text == nil {
		return fmt.Errorf("disasm: image has no text section")
	}
	d := &state{img: img, text: text, g: g, inTable: map[uint64]bool{}}
	if _, ok := g.Blocks[pc]; ok {
		g.AddBlockToFunc(f, pc)
		return nil
	}
	if host := g.BlockContaining(pc); host != nil && host.Addr != pc {
		if nb := d.splitBlock(host, pc); nb != nil {
			g.AddBlockToFunc(f, pc)
			return nil
		}
	}
	b := d.decodeBlock(pc, f)
	if b == nil {
		return fmt.Errorf("disasm: traced pc %#x not in text", pc)
	}
	g.Blocks[pc] = b
	g.AddBlockToFunc(f, pc)
	return nil
}

// ExploreFromBlockSeed runs intraprocedural recursive descent from seed,
// attaching discovered blocks to f (additive integration entry point for
// drivers that manage their own worklists).
func ExploreFromBlockSeed(img *image.Image, g *cfg.Graph, f *cfg.Func, seed uint64) error {
	text := img.Text()
	if text == nil {
		return fmt.Errorf("disasm: image has no text section")
	}
	d := &state{img: img, text: text, g: g, inTable: map[uint64]bool{}}
	d.exploreBlocks(f, []uint64{seed})
	for len(d.funcWork) > 0 {
		fe := d.funcWork[len(d.funcWork)-1]
		d.funcWork = d.funcWork[:len(d.funcWork)-1]
		d.exploreFunc(fe)
	}
	return nil
}
