package disasm_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/cfg"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/mx"
)

func TestDisassembleSimpleProgram(t *testing.T) {
	img, syms, err := cc.Compile(`
func helper(x) { return x * 2; }
func main() {
	var a = helper(21);
	if (a > 10) { a = a + 1; }
	return a;
}`, cc.Config{Name: "p", Opt: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Entry != img.Entry {
		t.Fatalf("entry %#x != %#x", g.Entry, img.Entry)
	}
	for _, fn := range []string{"fn_main", "fn_helper"} {
		if g.Func(syms[fn]) == nil {
			t.Fatalf("function %s at %#x not recovered", fn, syms[fn])
		}
	}
	// main must contain a direct-call block targeting helper.
	found := false
	for _, ba := range g.Func(syms["fn_main"]).Blocks {
		b := g.Blocks[ba]
		if b.Term == cfg.TermCall && b.HasTarget(syms["fn_helper"]) {
			found = true
		}
	}
	if !found {
		t.Fatal("no call edge from main to helper")
	}
}

func TestAddressTakenFunctionsDiscovered(t *testing.T) {
	img, syms, err := cc.Compile(`
extern thread_create;
extern thread_join;
func worker(a) { return a + 1; }
func main() {
	var tid = thread_create(worker, 1);
	return thread_join(tid);
}`, cc.Config{Name: "p", Opt: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	// worker is only reachable as a function-pointer argument; the
	// address-taken heuristic must still recover it as a function.
	if g.Func(syms["fn_worker"]) == nil {
		t.Fatalf("address-taken worker at %#x not recovered", syms["fn_worker"])
	}
}

func TestIndirectCallHasNoStaticTargets(t *testing.T) {
	img, syms, err := cc.Compile(`
func f1(x) { return x + 1; }
func f2(x) { return x + 2; }
func main() {
	var fp = f1;
	if (load64(&fp)) { fp = f2; }
	return fp(1);
}`, cc.Config{Name: "p", Opt: 0})
	if err != nil {
		t.Fatal(err)
	}
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	var ind *cfg.Block
	for _, ba := range g.Func(syms["fn_main"]).Blocks {
		if g.Blocks[ba].Term == cfg.TermCallInd {
			ind = g.Blocks[ba]
		}
	}
	if ind == nil {
		t.Fatal("no indirect call block in main")
	}
	if len(ind.Targets) != 0 {
		t.Fatalf("static disassembly should not resolve register-indirect call targets, got %v", ind.Targets)
	}
	// But both candidates must have been found as address-taken functions.
	if g.Func(syms["fn_f1"]) == nil || g.Func(syms["fn_f2"]) == nil {
		t.Fatal("address-taken candidates not recovered as functions")
	}
}

// buildJumpTableProg assembles a program with a bounded jump table.
func buildJumpTableProg(t *testing.T) (*image.Image, map[string]uint64) {
	t.Helper()
	b := asm.NewBuilder("jt")
	b.RodataLabel("table")
	b.RodataAddr("case0")
	b.RodataAddr("case1")
	b.RodataAddr("case2")
	b.Entry("main")
	b.Label("main")
	b.MovRI(mx.RDI, 1)
	b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.RDI, Imm: 2})
	b.Jcc(mx.CondA, "deflt")
	b.MovSym(mx.RBX, "table")
	b.I(mx.Inst{Op: mx.JMPM, Base: mx.RBX, Idx: mx.RDI})
	b.Label("case0")
	b.MovRI(mx.RAX, 0)
	b.Ret()
	b.Label("case1")
	b.MovRI(mx.RAX, 1)
	b.Ret()
	b.Label("case2")
	b.MovRI(mx.RAX, 2)
	b.Ret()
	b.Label("deflt")
	b.MovRI(mx.RAX, 9)
	b.Ret()
	img, syms, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img, syms
}

func TestJumpTableHeuristic(t *testing.T) {
	img, syms := buildJumpTableProg(t)
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	var jt *cfg.Block
	for _, b := range g.Blocks {
		if b.Term == cfg.TermJmpInd {
			jt = b
		}
	}
	if jt == nil {
		t.Fatal("no indirect jump block")
	}
	for _, c := range []string{"case0", "case1", "case2"} {
		if !jt.HasTarget(syms[c]) {
			t.Fatalf("jump table target %s (%#x) not resolved; got %v", c, syms[c], jt.Targets)
		}
	}
	// Table entries must not have been misread as function entries.
	for _, c := range []string{"case0", "case1", "case2"} {
		if g.Func(syms[c]) != nil {
			t.Fatalf("jump-table entry %s misclassified as function", c)
		}
	}
}

func TestBlockSplitting(t *testing.T) {
	// A backward branch into the middle of an already-decoded block forces
	// a split.
	b := asm.NewBuilder("split")
	b.Entry("main")
	b.Label("main")
	b.MovRI(mx.RAX, 0)
	b.Label("mid") // decoded first as part of the entry block
	b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RAX, Imm: 1})
	b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.RAX, Imm: 3})
	b.Jcc(mx.CondL, "mid")
	b.Ret()
	img, syms, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mid, ok := g.Blocks[syms["mid"]]
	if !ok {
		t.Fatalf("block at mid (%#x) missing after split; blocks: %v", syms["mid"], addrsOf(g))
	}
	entry := g.Blocks[syms["main"]]
	if entry.Term != cfg.TermFall || entry.Fall != mid.Addr {
		t.Fatalf("entry block not split correctly: term=%s fall=%#x", entry.Term, entry.Fall)
	}
}

func addrsOf(g *cfg.Graph) []uint64 {
	var out []uint64
	for a := range g.Blocks {
		out = append(out, a)
	}
	return out
}

func TestExploreFromAddsJumpTargets(t *testing.T) {
	img, syms := buildJumpTableProg(t)
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	// Remove one known target to simulate a miss, then re-add via additive
	// exploration.
	var jt *cfg.Block
	for _, b := range g.Blocks {
		if b.Term == cfg.TermJmpInd {
			jt = b
		}
	}
	target := syms["case2"]
	var kept []uint64
	for _, x := range jt.Targets {
		if x != target {
			kept = append(kept, x)
		}
	}
	jt.Targets = kept
	if err := disasm.ExploreFrom(img, g, jt.Addr, target); err != nil {
		t.Fatal(err)
	}
	if !jt.HasTarget(target) {
		t.Fatal("additive exploration did not add the target")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCFGJSONRoundTrip(t *testing.T) {
	img, _ := buildJumpTableProg(t)
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	data, err := g.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := cfg.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Entry != g.Entry || len(g2.Blocks) != len(g.Blocks) || len(g2.Funcs) != len(g.Funcs) {
		t.Fatalf("roundtrip mismatch: %d/%d blocks, %d/%d funcs",
			len(g2.Blocks), len(g.Blocks), len(g2.Funcs), len(g.Funcs))
	}
	for a, b := range g.Blocks {
		b2 := g2.Blocks[a]
		if b2 == nil || b2.Term != b.Term || b2.Size != b.Size || b2.Fall != b.Fall ||
			len(b2.Targets) != len(b.Targets) {
			t.Fatalf("block %#x mismatch after roundtrip", a)
		}
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBlockMatchesExtent(t *testing.T) {
	img, _, err := cc.Compile(`func main() { var i; var s = 0;
		for (i = 0; i < 4; i = i + 1) { s = s + i; } return s; }`,
		cc.Config{Name: "p", Opt: 0})
	if err != nil {
		t.Fatal(err)
	}
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range g.Blocks {
		insts, addrs, err := disasm.DecodeBlock(img, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(insts) == 0 || len(insts) != len(addrs) {
			t.Fatalf("block %#x decoded badly", b.Addr)
		}
		total := uint64(0)
		for _, in := range insts {
			total += uint64(in.Len())
		}
		if total != b.Size {
			t.Fatalf("block %#x: decoded %d bytes, extent %d", b.Addr, total, b.Size)
		}
	}
}

func TestGraphMerge(t *testing.T) {
	img, syms := buildJumpTableProg(t)
	g1, _ := disasm.Disassemble(img)
	g2 := g1.Clone()
	var jt1, jt2 *cfg.Block
	for _, b := range g1.Blocks {
		if b.Term == cfg.TermJmpInd {
			jt1 = b
		}
	}
	jt2 = g2.Blocks[jt1.Addr]
	jt1.Targets = nil
	jt2.Targets = []uint64{syms["case0"], syms["case1"]}
	if added := g1.Merge(g2); added != 2 {
		t.Fatalf("merge added %d, want 2", added)
	}
	if !jt1.HasTarget(syms["case0"]) || !jt1.HasTarget(syms["case1"]) {
		t.Fatal("merge lost targets")
	}
	if added := g1.Merge(g2); added != 0 {
		t.Fatal("idempotence violated")
	}
}
