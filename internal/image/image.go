// Package image defines PXE, the executable image format consumed and
// produced by the recompiler.
//
// A PXE image is the moral equivalent of a stripped, non-relocatable ELF
// executable: named sections mapped at fixed virtual addresses, an import
// table naming the external library functions the program calls through
// CALLX, and an entry point. There is no relocation or symbol information —
// exactly the input class Polynima targets (legacy binaries).
package image

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Conventional load addresses. The original binary's sections live in low
// memory; recompiled code is appended above RecompiledBase so the original
// image can be mapped at its original addresses in the output (the paper's
// strategy for handling code/data pointers without relocation info).
const (
	TextBase       uint64 = 0x0000_0000_0040_0000
	DataBase       uint64 = 0x0000_0000_0060_0000
	RodataBase     uint64 = 0x0000_0000_0068_0000
	BSSBase        uint64 = 0x0000_0000_0070_0000
	HeapBase       uint64 = 0x0000_0000_1000_0000
	StackTop       uint64 = 0x0000_0000_7fff_0000
	RecompiledBase uint64 = 0x0000_0000_00a0_0000
	TLSBase        uint64 = 0x0000_0000_0090_0000 // template address space only
)

// Section is a named, contiguous region of the image.
type Section struct {
	Name string `json:"name"` // ".text", ".data", ".rodata", ".bss", ...
	Addr uint64 `json:"addr"`
	Data []byte `json:"data"` // nil for .bss
	Size uint64 `json:"size"` // == len(Data) except for .bss
	Exec bool   `json:"exec"`
}

// Image is a loadable PXE executable.
type Image struct {
	Name     string    `json:"name"`
	Entry    uint64    `json:"entry"`
	Sections []Section `json:"sections"`
	// Imports names the external functions reachable through CALLX, indexed
	// by the instruction's Ext field. This models the dynamic-symbol table of
	// a dynamically linked executable: the only symbolic information a
	// stripped binary retains.
	Imports []string `json:"imports"`
	// TLSSize is the number of bytes of thread-local storage each thread
	// needs. The loader allocates and zeroes a TLS block per thread;
	// TLSBASE yields its address. Recompiled binaries use this for the
	// thread_local virtual CPU state.
	TLSSize uint64 `json:"tls_size"`
	// Machine selects the execution mode the VM runs this image under.
	// Empty means the default machine (MX64, TSO-like ordering); "mx64w"
	// selects the weakly-ordered profile, where plain loads/stores may
	// reorder through a per-thread store buffer unless fenced. Old
	// artifacts carry no field and decode as the default machine.
	Machine string `json:"machine,omitempty"`
}

// Section returns the section with the given name, or nil.
func (im *Image) Section(name string) *Section {
	for i := range im.Sections {
		if im.Sections[i].Name == name {
			return &im.Sections[i]
		}
	}
	return nil
}

// Text returns the primary executable section, or nil.
func (im *Image) Text() *Section { return im.Section(".text") }

// AddSection appends a section, keeping sections sorted by address and
// rejecting overlap.
func (im *Image) AddSection(s Section) error {
	if s.Size == 0 {
		s.Size = uint64(len(s.Data))
	}
	if s.Size < uint64(len(s.Data)) {
		return fmt.Errorf("image: section %s size %d < data %d", s.Name, s.Size, len(s.Data))
	}
	for _, old := range im.Sections {
		if s.Addr < old.Addr+old.Size && old.Addr < s.Addr+s.Size {
			return fmt.Errorf("image: section %s [%#x,%#x) overlaps %s [%#x,%#x)",
				s.Name, s.Addr, s.Addr+s.Size, old.Name, old.Addr, old.Addr+old.Size)
		}
	}
	im.Sections = append(im.Sections, s)
	sort.Slice(im.Sections, func(a, b int) bool { return im.Sections[a].Addr < im.Sections[b].Addr })
	return nil
}

// ImportIndex returns the import-table index for name, adding it if needed.
func (im *Image) ImportIndex(name string) uint16 {
	for i, n := range im.Imports {
		if n == name {
			return uint16(i)
		}
	}
	im.Imports = append(im.Imports, name)
	return uint16(len(im.Imports) - 1)
}

// FindSection returns the section containing addr, or nil.
func (im *Image) FindSection(addr uint64) *Section {
	for i := range im.Sections {
		s := &im.Sections[i]
		if addr >= s.Addr && addr < s.Addr+s.Size {
			return s
		}
	}
	return nil
}

// InText reports whether addr falls inside an executable section.
func (im *Image) InText(addr uint64) bool {
	s := im.FindSection(addr)
	return s != nil && s.Exec
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := &Image{Name: im.Name, Entry: im.Entry, TLSSize: im.TLSSize, Machine: im.Machine}
	out.Imports = append([]string(nil), im.Imports...)
	for _, s := range im.Sections {
		s.Data = append([]byte(nil), s.Data...)
		out.Sections = append(out.Sections, s)
	}
	return out
}

// Marshal serializes the image (JSON; the reproduction's on-disk format).
func (im *Image) Marshal() ([]byte, error) { return json.MarshalIndent(im, "", " ") }

// Unmarshal parses a serialized image.
func Unmarshal(data []byte) (*Image, error) {
	im := new(Image)
	if err := json.Unmarshal(data, im); err != nil {
		return nil, fmt.Errorf("image: %w", err)
	}
	return im, nil
}
