package image_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/image"
)

func TestSectionLookupAndOverlap(t *testing.T) {
	im := &image.Image{Name: "t"}
	if err := im.AddSection(image.Section{Name: ".text", Addr: 0x1000, Data: make([]byte, 16), Exec: true}); err != nil {
		t.Fatal(err)
	}
	if err := im.AddSection(image.Section{Name: ".data", Addr: 0x2000, Size: 32}); err != nil {
		t.Fatal(err)
	}
	if err := im.AddSection(image.Section{Name: ".bad", Addr: 0x1008, Size: 16}); err == nil ||
		!strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("overlap not rejected: %v", err)
	}
	if s := im.FindSection(0x100f); s == nil || s.Name != ".text" {
		t.Fatal("FindSection inside .text failed")
	}
	if s := im.FindSection(0x1010); s != nil {
		t.Fatal("FindSection past end matched")
	}
	if !im.InText(0x1000) || im.InText(0x2000) {
		t.Fatal("InText wrong")
	}
	if im.Text() == nil || im.Section(".data") == nil || im.Section(".nope") != nil {
		t.Fatal("named lookup wrong")
	}
}

func TestImportIndexStable(t *testing.T) {
	im := &image.Image{}
	a := im.ImportIndex("malloc")
	b := im.ImportIndex("free")
	if a == b || im.ImportIndex("malloc") != a || im.ImportIndex("free") != b {
		t.Fatal("import indices unstable")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	im := &image.Image{Name: "prog", Entry: 0x400000, TLSSize: 128,
		Imports: []string{"exit", "malloc"}}
	if err := im.AddSection(image.Section{Name: ".text", Addr: 0x400000,
		Data: []byte{1, 2, 3}, Exec: true}); err != nil {
		t.Fatal(err)
	}
	data, err := im.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := image.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != im.Name || got.Entry != im.Entry || got.TLSSize != im.TLSSize ||
		len(got.Sections) != 1 || len(got.Imports) != 2 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	im := &image.Image{Name: "a", Imports: []string{"x"}}
	if err := im.AddSection(image.Section{Name: ".text", Addr: 0x1000,
		Data: []byte{9}, Exec: true}); err != nil {
		t.Fatal(err)
	}
	cl := im.Clone()
	cl.Sections[0].Data[0] = 42
	cl.Imports[0] = "y"
	if im.Sections[0].Data[0] != 9 || im.Imports[0] != "x" {
		t.Fatal("clone shares backing storage")
	}
}

func TestFindSectionProperty(t *testing.T) {
	im := &image.Image{}
	if err := im.AddSection(image.Section{Name: ".a", Addr: 100, Size: 50}); err != nil {
		t.Fatal(err)
	}
	if err := im.AddSection(image.Section{Name: ".b", Addr: 200, Size: 50}); err != nil {
		t.Fatal(err)
	}
	f := func(addr uint16) bool {
		a := uint64(addr)
		s := im.FindSection(a)
		inA := a >= 100 && a < 150
		inB := a >= 200 && a < 250
		switch {
		case inA:
			return s != nil && s.Name == ".a"
		case inB:
			return s != nil && s.Name == ".b"
		default:
			return s == nil
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
