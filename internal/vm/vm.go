// Package vm executes MX64 binaries on a deterministic multithreaded
// emulator.
//
// The machine stands in for the paper's execution environment (x86-64 Linux):
// it provides multiple threads of execution over a shared flat memory with
// TSO-like semantics (the interpreter serializes instructions, so every
// execution is a sequentially consistent interleaving — a legal TSO
// execution), per-thread stacks and thread-local storage, hardware atomic
// instructions, a seeded instruction-level interleaving scheduler, and a
// cycle cost model that yields reproducible performance ratios.
//
// A host library (ext.go) models the native shared libraries (glibc,
// libpthread) the paper treats as external: threads are spawned clone-style
// through an entry-point callback, qsort calls back into guest code, and an
// OpenMP-like parallel-for spawns one callback thread per chunk.
package vm

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/image"
	"repro/internal/mx"
)

// Distinguished return addresses. RET to one of these transfers control to
// the host rather than to guest code.
const (
	magicThreadExit uint64 = 0xffff_ffff_ffff_f000 // thread entry returned
	magicHostFrame  uint64 = 0xffff_ffff_ffff_f100 // re-enter a host state machine
)

// stack geometry
const (
	stackSize  = 1 << 20
	stackGuard = 1 << 12
)

// ThreadState describes what a thread is doing.
type ThreadState uint8

const (
	Runnable ThreadState = iota
	Blocked
	Done
)

// Thread is one guest execution context.
type Thread struct {
	ID    int
	Regs  [mx.NumRegs]uint64
	VRegs [mx.NumVRegs][mx.VectorWidth]uint64
	ZF    bool
	SF    bool
	CF    bool
	OF    bool
	PC    uint64
	TLS   uint64 // base of this thread's TLS block (0 if none)

	State     ThreadState
	ExitValue uint64 // RAX when the entry function returned
	StackLo   uint64 // lowest mapped stack address (for diagnostics)

	// sbuf is this thread's store buffer in weak-ordering machine mode
	// (weak.go); always empty on the default TSO machine.
	sbuf []sbEntry

	// wakeup is called when whatever the thread blocked on resolves.
	wakeup func()
	// hostFrames holds suspended host-library state machines (qsort etc.)
	// that resume when guest code RETs to magicHostFrame. Each entry also
	// records the guest address execution continues at once the state
	// machine completes (the instruction after the originating CALLX).
	hostFrames []hostFrameEntry

	Cycles uint64 // cycles attributed to this thread
}

type hostFrameEntry struct {
	frame hostFrame
	cont  uint64
}

type hostFrame interface {
	// resume is called when the guest callback returned; ret is guest RAX.
	// It either schedules another guest call (returns done=false) or
	// finishes (done=true), in which case the thread continues after the
	// original CALLX.
	resume(m *Machine, t *Thread, ret uint64) (done bool, err error)
}

// Fault describes an abnormal machine stop.
type Fault struct {
	Thread int
	PC     uint64
	Reason string
	// Cancelled marks a stop forced by the machine's cancel signal
	// (SetCancel) rather than by guest behavior.
	Cancelled bool
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vm: fault in thread %d at %#x: %s", f.Thread, f.PC, f.Reason)
}

// Result summarizes a completed run.
type Result struct {
	ExitCode int
	Cycles   uint64 // total cycles across all threads
	Insts    uint64 // total instructions executed
	Output   string
	Fault    *Fault // nil on clean exit
}

// ExtFunc is a host-library function. It reads arguments from t's registers
// (rdi, rsi, rdx, rcx, r8, r9), may block the thread or spawn threads, and
// returns a result in rax by mutating t.
type ExtFunc func(m *Machine, t *Thread) error

// ControlKind classifies a dynamic control transfer for hooks.
type ControlKind uint8

const (
	KindJump ControlKind = iota
	KindCall
	KindRet
)

// Machine is an MX64 virtual machine executing one loaded image.
type Machine struct {
	Mem *Memory
	Img *image.Image

	threads  []*Thread
	nextTID  int
	liveCnt  int
	rng      *rand.Rand
	quantum  int
	exited   bool
	exitCode int
	fault    *Fault

	cycles uint64
	insts  uint64

	// machine counters (counters.go); nil when disabled, which is the
	// uninstrumented default — every counting site is behind a nil check.
	ctr  *Counters
	sink *CounterSink

	// dispatch engine (dispatch.go / step_threaded.go)
	dispatch DispatchMode

	// weak-ordering machine mode (weak.go), selected by the image's
	// Machine field: plain stores buffer per thread until a drain point.
	// sbOwner is the only thread with a nonempty store buffer (the buffer
	// drains before any other thread runs), or nil.
	weak    bool
	sbOwner *Thread

	// predecoded instruction cache (icache.go). icBase/icPage are the
	// last-fetched page, the common case of straight-line execution.
	nocache      bool
	icache       map[uint64]*codePage
	icBase       uint64
	icPage       *codePage
	uncachedInst mx.Inst // decode target of the -nocache fetch path

	Out   bytes.Buffer
	input []byte // consumed by input externals

	heapNext uint64
	freeList map[uint64][]uint64 // size -> addresses (trivial recycler)
	tlsNext  uint64

	exts    []ExtFunc // indexed by image import table
	extCost []uint64
	extra   map[string]ExtFunc // registered before Load for custom imports

	// OnIndirect, if set, is invoked for every dynamically executed
	// indirect control transfer (JMPR/JMPM/CALLR) and for RETs, with the
	// source instruction address and dynamic target. The ICFT tracer
	// (internal/tracer) attaches here, standing in for the paper's Pin tool.
	OnIndirect func(t *Thread, from, target uint64, kind ControlKind)
	// OnBlock, if set, is invoked at every control transfer with the new PC.
	// The BinRec-like baseline tracer attaches here.
	OnBlock func(t *Thread, pc uint64)
	// ExtraCostPerInst inflates every instruction's cost; the BinRec-like
	// baseline uses it to model emulator-coupled lifting overhead.
	ExtraCostPerInst uint64
	// MissHook observes __polynima_miss calls from recompiled binaries
	// (site address, dynamic target) before the machine stops with
	// MissExitCode. The additive-lifting driver attaches here.
	MissHook func(t *Thread, site, target uint64)
	// OnGuestEntry observes every external entry into guest code: thread
	// spawns (clone-style entry points) and host-library callbacks (qsort
	// comparators). The callback-pruning analysis (§3.3.3) attaches here.
	OnGuestEntry func(fn uint64)

	// scheduler bookkeeping. runFuel and extFrom belong to the fast batch
	// loop's sole-runnable grant extension (step_threaded.go): runFuel is
	// the active Run's fuel limit, extFrom the batch offset at which the
	// most recent in-batch quantum began (-1 when no extension fired).
	sliceLeft int
	curIdx    int
	runFuel   uint64
	extFrom   int

	// cancel, when non-nil, is polled at scheduling boundaries (SetCancel);
	// once closed, Run stops with a Cancelled fault.
	cancel      <-chan struct{}
	cancelCheck uint64 // next insts value at which Run polls cancel

	// synchronization objects keyed by guest address
	mutexMap   map[uint64]*hostMutex
	condMap    map[uint64]*hostCond
	barrierMap map[uint64]*hostBarrier
}

// New creates a machine, loads img, and creates the main thread at the entry
// point. seed drives the interleaving scheduler.
func New(img *image.Image, seed int64) (*Machine, error) {
	return NewWithExts(img, seed, nil)
}

// NewWithExts is New with additional host functions made available to the
// import binder under the given names (overriding builtins on collision).
func NewWithExts(img *image.Image, seed int64, exts map[string]ExtFunc) (*Machine, error) {
	tgt := mx.TargetByMachine(img.Machine)
	if tgt == nil {
		return nil, fmt.Errorf("vm: image %q requires unknown machine mode %q", img.Name, img.Machine)
	}
	m := &Machine{
		Mem:      NewMemory(),
		Img:      img,
		rng:      rand.New(rand.NewSource(seed)),
		quantum:  41, // prime, so threads drift against loop periods
		heapNext: image.HeapBase,
		freeList: map[uint64][]uint64{},
		extra:    map[string]ExtFunc{},
	}
	for name, fn := range exts {
		m.extra[name] = fn
	}
	for _, s := range img.Sections {
		if s.Data != nil {
			m.Mem.WriteBytes(s.Addr, s.Data)
		}
		if s.Size > uint64(len(s.Data)) {
			m.Mem.Map(s.Addr, s.Size)
		}
	}
	// Instruction fetch decodes from guest memory (loaded above), so guest
	// stores into code pages are architecturally visible; watch the
	// executable ranges so such stores invalidate the predecode cache.
	m.nocache = NoCacheDefault
	m.dispatch = DispatchDefault
	m.weak = tgt.WeakOrder
	m.icache = map[uint64]*codePage{}
	m.icBase = noPage
	if CounterSinkDefault != nil {
		m.sink = CounterSinkDefault
		m.EnableCounters()
	}
	var execRanges [][2]uint64
	for _, s := range img.Sections {
		if s.Exec && s.Size > 0 {
			execRanges = append(execRanges, [2]uint64{s.Addr, s.Addr + s.Size})
		}
	}
	m.Mem.watchWrites(execRanges, m.invalidateCode)
	m.tlsNext = image.HeapBase + (1 << 28)
	if err := m.bindImports(); err != nil {
		return nil, err
	}
	m.spawn(img.Entry, [6]uint64{})
	return m, nil
}

// SetInput provides the byte stream consumed by the input externals.
func (m *Machine) SetInput(p []byte) { m.input = append([]byte(nil), p...) }

// SetCancel installs a cancellation signal: once ch is closed, a running
// Run stops within a bounded number of instructions with a Cancelled fault
// instead of executing to completion — the seam that lets a request-scoped
// context (a disconnected daemon client) reclaim a guest run. The default
// nil channel is never polled, so uncancellable runs pay only a nil check
// per scheduling quantum; with a channel installed the poll is amortized
// over cancelPollInsts instructions.
func (m *Machine) SetCancel(ch <-chan struct{}) { m.cancel = ch }

// cancelPollInsts bounds how many instructions may retire between cancel
// polls: small enough that a cancelled run stops in well under a
// millisecond, large enough that the channel select vanishes in the noise.
const cancelPollInsts = 4096

// cancelled reports whether the cancel signal has fired.
func (m *Machine) cancelled() bool {
	if m.cancel == nil {
		return false
	}
	select {
	case <-m.cancel:
		return true
	default:
		return false
	}
}

// Threads returns the machine's threads (live and dead), for inspection.
func (m *Machine) Threads() []*Thread { return m.threads }

// Cycles returns total cycles executed so far.
func (m *Machine) Cycles() uint64 { return m.cycles }

// spawn creates a new thread entering fn with up to six register arguments.
func (m *Machine) spawn(fn uint64, args [6]uint64) *Thread {
	if m.OnGuestEntry != nil {
		m.OnGuestEntry(fn)
	}
	t := &Thread{ID: m.nextTID, PC: fn, State: Runnable}
	m.nextTID++
	// Per-thread stack, with an unmapped guard page below.
	top := image.StackTop - uint64(t.ID)*(stackSize+stackGuard)
	lo := top - stackSize
	m.Mem.Map(lo, stackSize)
	t.StackLo = lo
	t.Regs[mx.RSP] = top - 8
	// Push the magic return address so the entry function's RET exits the
	// thread (the clone-style entry-point contract from the paper).
	m.Mem.Store(t.Regs[mx.RSP], magicThreadExit, 8)
	argRegs := []mx.Reg{mx.RDI, mx.RSI, mx.RDX, mx.RCX, mx.R8, mx.R9}
	for i, v := range args {
		t.Regs[argRegs[i]] = v
	}
	// TLS block.
	if m.Img.TLSSize > 0 {
		sz := (m.Img.TLSSize + pageSize - 1) &^ (pageSize - 1)
		t.TLS = m.tlsNext
		m.tlsNext += sz + pageSize
		m.Mem.Map(t.TLS, sz)
	}
	m.threads = append(m.threads, t)
	m.liveCnt++
	return t
}

// Malloc allocates n bytes of guest heap (host-side allocator).
func (m *Machine) Malloc(n uint64) uint64 {
	if n == 0 {
		n = 8
	}
	n = (n + 15) &^ 15
	if lst := m.freeList[n]; len(lst) > 0 {
		a := lst[len(lst)-1]
		m.freeList[n] = lst[:len(lst)-1]
		return a
	}
	a := m.heapNext
	m.heapNext += n + 16
	m.Mem.Map(a, n)
	return a
}

// Free returns a Malloc'd block of the given size to the allocator.
func (m *Machine) Free(addr, size uint64) {
	size = (size + 15) &^ 15
	m.freeList[size] = append(m.freeList[size], addr)
}

// pickThread selects the next runnable thread (deterministic, seeded).
func (m *Machine) pickThread() *Thread {
	n := len(m.threads)
	if m.sliceLeft > 0 && m.curIdx < n && m.threads[m.curIdx].State == Runnable {
		m.sliceLeft--
		return m.threads[m.curIdx]
	}
	// Choose the next runnable thread after curIdx (round-robin), with a
	// small seeded chance of skipping one extra thread to vary interleavings.
	start := m.curIdx + 1
	if m.rng.Intn(8) == 0 {
		start++
	}
	for k := 0; k < n; k++ {
		idx := (start + k) % n
		if m.threads[idx].State == Runnable {
			if m.ctr != nil && idx != m.curIdx && m.curIdx < n && m.threads[m.curIdx].State == Runnable {
				// Switched away from a still-runnable thread: a preemption,
				// as opposed to a switch forced by a block or exit.
				m.ctr.Preemptions++
			}
			m.curIdx = idx
			m.sliceLeft = m.quantum - 1
			return m.threads[idx]
		}
	}
	return nil
}

// Run executes until clean exit, fault, deadlock, or the fuel limit (in
// instructions) is exhausted.
func (m *Machine) Run(fuel uint64) Result {
	// Threaded dispatch needs predecoded pages; -nocache decodes per step
	// and so always runs the switch engine, as does weak-ordering mode
	// (the store buffer lives behind the switch engine's memory seam).
	threaded := m.dispatch == DispatchThreaded && !m.nocache && !m.weak
	m.runFuel = fuel
	m.cancelCheck = 0
	for !m.exited && m.fault == nil && m.insts < fuel {
		if m.cancel != nil && m.insts >= m.cancelCheck {
			m.cancelCheck = m.insts + cancelPollInsts
			if m.cancelled() {
				m.fault = &Fault{Reason: "run cancelled", Cancelled: true}
				break
			}
		}
		t := m.pickThread()
		if m.weak && m.sbOwner != nil && m.sbOwner != t {
			// Thread switch: the outgoing thread's buffered stores become
			// globally visible before any other thread executes. This keeps
			// every weak-mode execution observationally SC (weak.go).
			m.drainSB(m.sbOwner)
		}
		if t == nil {
			if m.liveCnt == 0 {
				// All threads returned; treat main's return as exit code.
				m.exited = true
				m.exitCode = int(int64(m.threads[0].ExitValue))
				break
			}
			m.fault = &Fault{Reason: "deadlock: no runnable threads"}
			break
		}
		if !threaded {
			m.stepThread(t)
			continue
		}
		// One batch stands in for this pick plus every fast-path re-pick
		// the scheduler would grant t before its slice expires: the fast
		// path consumes no randomness and decrements sliceLeft once per
		// instruction, so granting `1 + sliceLeft` up front and settling
		// the decrement after the batch is the identical schedule.
		budget := uint64(m.sliceLeft) + 1
		if rem := fuel - m.insts; budget > rem {
			budget = rem
		}
		m.extFrom = -1
		if ran := m.stepBatch(t, int(budget)); ran > 0 {
			if m.extFrom >= 0 {
				// The batch extended past slice boundaries (sole-runnable
				// fast path); the last fresh quantum began at batch offset
				// extFrom, so its remainder is what a per-step scheduler
				// would have left.
				m.sliceLeft = m.quantum - (ran - m.extFrom)
			} else {
				m.sliceLeft -= ran - 1
			}
		}
	}
	if m.weak && m.sbOwner != nil {
		// Make the final thread's stores visible before the host inspects
		// memory (and before a later Run resumes a different thread).
		m.drainSB(m.sbOwner)
	}
	if !m.exited && m.fault == nil && m.insts >= fuel {
		m.fault = &Fault{Reason: fmt.Sprintf("fuel exhausted after %d instructions", m.insts)}
	}
	if m.sink != nil && m.ctr != nil {
		// Hand this run's deltas to the sink and start fresh, so a machine
		// that Runs repeatedly (the additive-lifting driver) is not
		// double-counted.
		m.sink.Absorb(m.ctr)
		m.ctr = NewCounters()
		m.Mem.ctr = m.ctr
	}
	return Result{
		ExitCode: m.exitCode,
		Cycles:   m.cycles,
		Insts:    m.insts,
		Output:   m.Out.String(),
		Fault:    m.fault,
	}
}

func (m *Machine) faultf(t *Thread, pc uint64, format string, args ...any) {
	if m.fault == nil {
		m.fault = &Fault{Thread: t.ID, PC: pc, Reason: fmt.Sprintf(format, args...)}
	}
}

// exit stops the whole machine with the given code.
func (m *Machine) exit(code int) {
	m.exited = true
	m.exitCode = code
}

// threadReturned handles a RET to magicThreadExit.
func (m *Machine) threadReturned(t *Thread) {
	t.State = Done
	t.ExitValue = t.Regs[mx.RAX]
	m.liveCnt--
	if t.wakeup != nil {
		w := t.wakeup
		t.wakeup = nil
		w()
	}
	if t.ID == 0 {
		// Main returned: process exits (remaining threads are torn down,
		// as on Linux when main returns).
		m.exit(int(int64(t.ExitValue)))
	}
}

// charge adds cycle cost to the machine and thread.
func (m *Machine) charge(t *Thread, c uint64) {
	c += m.ExtraCostPerInst
	m.cycles += c
	t.Cycles += c
	if m.ctr != nil {
		m.ctr.addCycles(t.ID, c)
	}
}
