package vm

import (
	"repro/internal/mx"
)

// costs is the cycle cost model. Values are chosen so that relative costs
// resemble a modern OoO core at the granularity that matters for the paper's
// ratios: memory ops cost more than ALU ops, locked ops and fences are
// expensive, vector ops amortize over four lanes, external (library) calls
// carry a fixed dispatch cost plus per-function work.
var costs = func() [mx.NumOps]uint64 {
	var c [mx.NumOps]uint64
	for i := range c {
		c[i] = 1
	}
	mem := []mx.Op{mx.LOAD8, mx.LOAD32, mx.LOAD64, mx.STORE8, mx.STORE32,
		mx.STORE64, mx.STOREI8, mx.STOREI32, mx.STOREI64}
	for _, op := range mem {
		c[op] = 2
	}
	memIdx := []mx.Op{mx.LOADIDX8, mx.LOADIDX32, mx.LOADIDX64,
		mx.STOREIDX8, mx.STOREIDX32, mx.STOREIDX64}
	for _, op := range memIdx {
		c[op] = 2
	}
	c[mx.IMULRR], c[mx.IMULRI] = 3, 3
	c[mx.DIVRR], c[mx.MODRR] = 20, 20
	c[mx.CALL], c[mx.CALLR], c[mx.RET] = 2, 3, 2
	c[mx.PUSH], c[mx.POP] = 2, 2
	c[mx.JMPR] = 2
	c[mx.JMPM] = 4
	locked := []mx.Op{mx.LOCKADD, mx.LOCKSUB, mx.LOCKAND, mx.LOCKOR,
		mx.LOCKXOR, mx.LOCKXADD, mx.LOCKINC, mx.LOCKDEC, mx.XCHG, mx.CMPXCHG}
	for _, op := range locked {
		c[op] = 8
	}
	c[mx.MFENCE] = 12
	c[mx.CALLX] = 10 // dispatch cost; per-function work added by the ext
	c[mx.VLOAD], c[mx.VSTORE] = 4, 4
	c[mx.VADD], c[mx.VMUL] = 2, 3
	c[mx.VBCAST], c[mx.VHADD] = 2, 3
	c[mx.TLSBASE] = 1
	return c
}()

// CostOf exposes the cycle cost of an opcode (used by lifting-time models).
func CostOf(op mx.Op) uint64 { return costs[op] }

func (t *Thread) setZS(v uint64) {
	t.ZF = v == 0
	t.SF = int64(v) < 0
}

func (t *Thread) setAddFlags(a, b, r uint64) {
	t.setZS(r)
	t.CF = r < a
	t.OF = (int64(a) >= 0) == (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
}

func (t *Thread) setSubFlags(a, b, r uint64) {
	t.setZS(r)
	t.CF = a < b
	t.OF = (int64(a) >= 0) != (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
}

// Eval evaluates a condition against the thread's flags.
func (t *Thread) Eval(cc mx.Cond) bool {
	switch cc {
	case mx.CondE:
		return t.ZF
	case mx.CondNE:
		return !t.ZF
	case mx.CondL:
		return t.SF != t.OF
	case mx.CondLE:
		return t.ZF || t.SF != t.OF
	case mx.CondG:
		return !t.ZF && t.SF == t.OF
	case mx.CondGE:
		return t.SF == t.OF
	case mx.CondB:
		return t.CF
	case mx.CondBE:
		return t.CF || t.ZF
	case mx.CondA:
		return !t.CF && !t.ZF
	case mx.CondAE:
		return !t.CF
	case mx.CondS:
		return t.SF
	case mx.CondNS:
		return !t.SF
	}
	return false
}

func sx8(v uint64) uint64  { return uint64(int64(int8(v))) }
func sx32(v uint64) uint64 { return uint64(int64(int32(v))) }

// ea computes inst's base+disp effective address.
func (t *Thread) ea(inst *mx.Inst) uint64 {
	return t.Regs[inst.Base] + uint64(int64(inst.Disp))
}

// eaIdx computes inst's base+idx*scale+disp effective address.
func (t *Thread) eaIdx(inst *mx.Inst) uint64 {
	return t.Regs[inst.Base] + t.Regs[inst.Idx]*uint64(inst.Scale) + uint64(int64(inst.Disp))
}

// loadMem and storeMem are the fault-reporting memory accessors of the step
// loop (hoisted from per-step closures so that stepping allocates nothing).

func (m *Machine) loadMem(t *Thread, pc, addr uint64, w int, sext bool) (uint64, bool) {
	if m.weak && len(t.sbuf) > 0 {
		// Store-to-load forwarding from this thread's buffer (weak.go):
		// an exact match forwards, a partial overlap drains first.
		if v, hit, overlap := t.sbLoad(addr, w); hit {
			if sext && w == 4 {
				v = sx32(v)
			}
			return v, true
		} else if overlap {
			m.drainSB(t)
		}
	}
	v, ok := m.Mem.Load(addr, w)
	if !ok {
		m.faultf(t, pc, "load from unmapped address %#x", addr)
		return 0, false
	}
	if sext && w == 4 {
		v = sx32(v)
	}
	return v, true
}

func (m *Machine) storeMem(t *Thread, pc, addr, v uint64, w int) bool {
	if m.weak {
		return m.storeBuffered(t, pc, addr, v, w)
	}
	if !m.Mem.Store(addr, v, w) {
		m.faultf(t, pc, "store to unmapped address %#x", addr)
		return false
	}
	return true
}

// stepThread executes one instruction on t.
func (m *Machine) stepThread(t *Thread) {
	pc := t.PC
	inst, n, ok := m.fetchInst(pc)
	if !ok {
		m.faultf(t, pc, "instruction fetch from unmapped or non-executable memory")
		return
	}
	if inst.Op == mx.BAD {
		m.faultf(t, pc, "illegal instruction")
		return
	}
	m.insts++
	m.charge(t, costs[inst.Op])
	if m.ctr != nil {
		m.ctr.count(t.ID, inst)
	}
	if m.weak && len(t.sbuf) > 0 && opDrainsSB[inst.Op] {
		// Fences, atomics, external calls, jump-table loads, and
		// machine-stopping ops are drain points (weak.go).
		m.drainSB(t)
	}
	next := pc + uint64(n)
	t.PC = next // default; control flow overrides

	switch inst.Op {
	case mx.NOP:
	case mx.MOVRR:
		t.Regs[inst.Dst] = t.Regs[inst.Src]
	case mx.MOVRI:
		t.Regs[inst.Dst] = uint64(inst.Imm)
	case mx.LEA:
		t.Regs[inst.Dst] = t.ea(inst)
	case mx.LEAIDX:
		t.Regs[inst.Dst] = t.eaIdx(inst)
	case mx.LOAD8:
		if v, ok := m.loadMem(t, pc,t.ea(inst), 1, false); ok {
			t.Regs[inst.Dst] = v
		}
	case mx.LOAD32:
		if v, ok := m.loadMem(t, pc,t.ea(inst), 4, true); ok {
			t.Regs[inst.Dst] = v
		}
	case mx.LOAD64:
		if v, ok := m.loadMem(t, pc,t.ea(inst), 8, false); ok {
			t.Regs[inst.Dst] = v
		}
	case mx.STORE8:
		m.storeMem(t, pc,t.ea(inst), t.Regs[inst.Dst], 1)
	case mx.STORE32:
		m.storeMem(t, pc,t.ea(inst), t.Regs[inst.Dst], 4)
	case mx.STORE64:
		m.storeMem(t, pc,t.ea(inst), t.Regs[inst.Dst], 8)
	case mx.STOREI8:
		m.storeMem(t, pc,t.ea(inst), uint64(inst.Imm), 1)
	case mx.STOREI32:
		m.storeMem(t, pc,t.ea(inst), uint64(inst.Imm), 4)
	case mx.STOREI64:
		m.storeMem(t, pc,t.ea(inst), uint64(inst.Imm), 8)
	case mx.LOADIDX8:
		if v, ok := m.loadMem(t, pc,t.eaIdx(inst), 1, false); ok {
			t.Regs[inst.Dst] = v
		}
	case mx.LOADIDX32:
		if v, ok := m.loadMem(t, pc,t.eaIdx(inst), 4, true); ok {
			t.Regs[inst.Dst] = v
		}
	case mx.LOADIDX64:
		if v, ok := m.loadMem(t, pc,t.eaIdx(inst), 8, false); ok {
			t.Regs[inst.Dst] = v
		}
	case mx.STOREIDX8:
		m.storeMem(t, pc,t.eaIdx(inst), t.Regs[inst.Dst], 1)
	case mx.STOREIDX32:
		m.storeMem(t, pc,t.eaIdx(inst), t.Regs[inst.Dst], 4)
	case mx.STOREIDX64:
		m.storeMem(t, pc,t.eaIdx(inst), t.Regs[inst.Dst], 8)

	case mx.ADDRR, mx.ADDRI:
		a := t.Regs[inst.Dst]
		b := m.aluSrc(t, inst)
		r := a + b
		t.setAddFlags(a, b, r)
		t.Regs[inst.Dst] = r
	case mx.SUBRR, mx.SUBRI:
		a := t.Regs[inst.Dst]
		b := m.aluSrc(t, inst)
		r := a - b
		t.setSubFlags(a, b, r)
		t.Regs[inst.Dst] = r
	case mx.CMPRR, mx.CMPRI:
		a := t.Regs[inst.Dst]
		b := m.aluSrc(t, inst)
		t.setSubFlags(a, b, a-b)
	case mx.ANDRR, mx.ANDRI:
		r := t.Regs[inst.Dst] & m.aluSrc(t, inst)
		t.setZS(r)
		t.CF, t.OF = false, false
		t.Regs[inst.Dst] = r
	case mx.ORRR, mx.ORRI:
		r := t.Regs[inst.Dst] | m.aluSrc(t, inst)
		t.setZS(r)
		t.CF, t.OF = false, false
		t.Regs[inst.Dst] = r
	case mx.XORRR, mx.XORRI:
		r := t.Regs[inst.Dst] ^ m.aluSrc(t, inst)
		t.setZS(r)
		t.CF, t.OF = false, false
		t.Regs[inst.Dst] = r
	case mx.TESTRR, mx.TESTRI:
		r := t.Regs[inst.Dst] & m.aluSrc(t, inst)
		t.setZS(r)
		t.CF, t.OF = false, false
	case mx.SHLRR, mx.SHLRI:
		r := t.Regs[inst.Dst] << (m.aluSrc(t, inst) & 63)
		t.setZS(r)
		t.Regs[inst.Dst] = r
	case mx.SHRRR, mx.SHRRI:
		r := t.Regs[inst.Dst] >> (m.aluSrc(t, inst) & 63)
		t.setZS(r)
		t.Regs[inst.Dst] = r
	case mx.SARRR, mx.SARRI:
		r := uint64(int64(t.Regs[inst.Dst]) >> (m.aluSrc(t, inst) & 63))
		t.setZS(r)
		t.Regs[inst.Dst] = r
	case mx.IMULRR, mx.IMULRI:
		r := uint64(int64(t.Regs[inst.Dst]) * int64(m.aluSrc(t, inst)))
		t.setZS(r)
		t.Regs[inst.Dst] = r
	case mx.DIVRR:
		d := int64(t.Regs[inst.Src])
		if d == 0 {
			m.faultf(t, pc, "integer divide by zero")
			return
		}
		r := uint64(int64(t.Regs[inst.Dst]) / d)
		t.setZS(r)
		t.Regs[inst.Dst] = r
	case mx.MODRR:
		d := int64(t.Regs[inst.Src])
		if d == 0 {
			m.faultf(t, pc, "integer divide by zero")
			return
		}
		r := uint64(int64(t.Regs[inst.Dst]) % d)
		t.setZS(r)
		t.Regs[inst.Dst] = r
	case mx.NEG:
		r := -t.Regs[inst.Dst]
		t.setSubFlags(0, t.Regs[inst.Dst], r)
		t.Regs[inst.Dst] = r
	case mx.NOT:
		t.Regs[inst.Dst] = ^t.Regs[inst.Dst]
	case mx.SETCC:
		if t.Eval(inst.Cc) {
			t.Regs[inst.Dst] = 1
		} else {
			t.Regs[inst.Dst] = 0
		}

	case mx.JMP:
		t.PC = next + uint64(int64(inst.Disp))
	case mx.JCC:
		if t.Eval(inst.Cc) {
			t.PC = next + uint64(int64(inst.Disp))
		} else if m.OnBlock != nil {
			// Block-granularity tracing: the untaken edge also enters a
			// block (the fallthrough), even though PC advances linearly.
			m.OnBlock(t, next)
		}
	case mx.JMPR:
		target := t.Regs[inst.Dst]
		if m.OnIndirect != nil {
			m.OnIndirect(t, pc, target, KindJump)
		}
		t.PC = target
	case mx.JMPM:
		slot := t.Regs[inst.Base] + t.Regs[inst.Idx]*8 + uint64(int64(inst.Disp))
		target, ok := m.Mem.Load(slot, 8)
		if !ok {
			m.faultf(t, pc, "jump table load from unmapped %#x", slot)
			return
		}
		if m.OnIndirect != nil {
			m.OnIndirect(t, pc, target, KindJump)
		}
		t.PC = target
	case mx.CALL:
		if !m.push(t, next) {
			return
		}
		t.PC = next + uint64(int64(inst.Disp))
	case mx.CALLR:
		target := t.Regs[inst.Dst]
		if m.OnIndirect != nil {
			m.OnIndirect(t, pc, target, KindCall)
		}
		if !m.push(t, next) {
			return
		}
		t.PC = target
	case mx.RET:
		retAddr, ok := m.pop(t)
		if !ok {
			return
		}
		switch retAddr {
		case magicThreadExit:
			m.threadReturned(t)
			return
		case magicHostFrame:
			m.resumeHostFrame(t)
			return
		}
		if m.OnIndirect != nil {
			m.OnIndirect(t, pc, retAddr, KindRet)
		}
		t.PC = retAddr
	case mx.CALLX:
		if int(inst.Ext) >= len(m.exts) || m.exts[inst.Ext] == nil {
			m.faultf(t, pc, "call to unbound import #%d", inst.Ext)
			return
		}
		m.charge(t, m.extCost[inst.Ext])
		if err := m.exts[inst.Ext](m, t); err != nil {
			m.faultf(t, pc, "external %q: %v", m.Img.Imports[inst.Ext], err)
			return
		}
		if m.OnBlock != nil && t.PC == next && t.State == Runnable {
			// The instruction after an external call starts a new block.
			m.OnBlock(t, next)
		}
	case mx.SYSCALL:
		m.faultf(t, pc, "raw syscall executed (unsupported)")
	case mx.HLT:
		m.exit(int(int64(t.Regs[mx.RDI])))
	case mx.UD2:
		m.faultf(t, pc, "ud2 executed")

	case mx.PUSH:
		m.push(t, t.Regs[inst.Dst])
	case mx.POP:
		if v, ok := m.pop(t); ok {
			t.Regs[inst.Dst] = v
		}

	case mx.LOCKADD, mx.LOCKSUB, mx.LOCKAND, mx.LOCKOR, mx.LOCKXOR:
		addr := t.ea(inst)
		old, ok := m.loadMem(t, pc,addr, 8, false)
		if !ok {
			return
		}
		var r uint64
		s := t.Regs[inst.Dst]
		switch inst.Op {
		case mx.LOCKADD:
			r = old + s
		case mx.LOCKSUB:
			r = old - s
		case mx.LOCKAND:
			r = old & s
		case mx.LOCKOR:
			r = old | s
		case mx.LOCKXOR:
			r = old ^ s
		}
		if !m.storeMem(t, pc,addr, r, 8) {
			return
		}
		t.setZS(r)
	case mx.LOCKXADD:
		addr := t.ea(inst)
		old, ok := m.loadMem(t, pc,addr, 8, false)
		if !ok {
			return
		}
		if !m.storeMem(t, pc,addr, old+t.Regs[inst.Dst], 8) {
			return
		}
		t.Regs[inst.Dst] = old
	case mx.LOCKINC:
		addr := t.ea(inst)
		old, ok := m.loadMem(t, pc,addr, 8, false)
		if !ok {
			return
		}
		if !m.storeMem(t, pc,addr, old+1, 8) {
			return
		}
		t.setZS(old + 1)
	case mx.LOCKDEC:
		addr := t.ea(inst)
		old, ok := m.loadMem(t, pc,addr, 8, false)
		if !ok {
			return
		}
		if !m.storeMem(t, pc,addr, old-1, 8) {
			return
		}
		t.setZS(old - 1)
	case mx.XCHG:
		addr := t.ea(inst)
		old, ok := m.loadMem(t, pc,addr, 8, false)
		if !ok {
			return
		}
		if !m.storeMem(t, pc,addr, t.Regs[inst.Dst], 8) {
			return
		}
		t.Regs[inst.Dst] = old
	case mx.CMPXCHG:
		addr := t.ea(inst)
		old, ok := m.loadMem(t, pc,addr, 8, false)
		if !ok {
			return
		}
		if old == t.Regs[mx.RAX] {
			if !m.storeMem(t, pc,addr, t.Regs[inst.Dst], 8) {
				return
			}
			t.ZF = true
		} else {
			t.Regs[mx.RAX] = old
			t.ZF = false
		}
	case mx.MFENCE:
		// TSO machine: interpreter execution is sequentially consistent
		// already. Weak machine: the store buffer drained above.

	case mx.TLSBASE:
		t.Regs[inst.Dst] = t.TLS

	case mx.VLOAD:
		addr := t.ea(inst)
		for l := 0; l < mx.VectorWidth; l++ {
			v, ok := m.loadMem(t, pc,addr+uint64(l*8), 8, false)
			if !ok {
				return
			}
			t.VRegs[inst.Dst][l] = v
		}
	case mx.VSTORE:
		addr := t.ea(inst)
		for l := 0; l < mx.VectorWidth; l++ {
			if !m.storeMem(t, pc,addr+uint64(l*8), t.VRegs[inst.Dst][l], 8) {
				return
			}
		}
	case mx.VADD:
		for l := 0; l < mx.VectorWidth; l++ {
			t.VRegs[inst.Dst][l] += t.VRegs[inst.Src][l]
		}
	case mx.VMUL:
		for l := 0; l < mx.VectorWidth; l++ {
			t.VRegs[inst.Dst][l] = uint64(int64(t.VRegs[inst.Dst][l]) * int64(t.VRegs[inst.Src][l]))
		}
	case mx.VBCAST:
		for l := 0; l < mx.VectorWidth; l++ {
			t.VRegs[inst.Dst][l] = t.Regs[inst.Src]
		}
	case mx.VHADD:
		var s uint64
		for l := 0; l < mx.VectorWidth; l++ {
			s += t.VRegs[inst.Src][l]
		}
		t.Regs[inst.Dst] = s

	default:
		m.faultf(t, pc, "unimplemented opcode %v", inst.Op)
	}

	if m.OnBlock != nil && t.PC != next && t.State == Runnable {
		m.OnBlock(t, t.PC)
	}
}

func (m *Machine) aluSrc(t *Thread, inst *mx.Inst) uint64 {
	if mx.LayoutOf(inst.Op) == mx.LayoutRI {
		return uint64(inst.Imm)
	}
	return t.Regs[inst.Src]
}

func (m *Machine) push(t *Thread, v uint64) bool {
	t.Regs[mx.RSP] -= 8
	if !m.Mem.store64(t.Regs[mx.RSP], v) {
		m.faultf(t, t.PC, "stack overflow: push to unmapped %#x", t.Regs[mx.RSP])
		return false
	}
	return true
}

func (m *Machine) pop(t *Thread) (uint64, bool) {
	v, ok := m.Mem.load64(t.Regs[mx.RSP])
	if !ok {
		m.faultf(t, t.PC, "pop from unmapped %#x", t.Regs[mx.RSP])
		return 0, false
	}
	t.Regs[mx.RSP] += 8
	return v, true
}

// resumeHostFrame re-enters the topmost suspended host state machine.
func (m *Machine) resumeHostFrame(t *Thread) {
	if len(t.hostFrames) == 0 {
		m.faultf(t, t.PC, "return to host frame with no frame pending")
		return
	}
	fr := t.hostFrames[len(t.hostFrames)-1]
	done, err := fr.frame.resume(m, t, t.Regs[mx.RAX])
	if err != nil {
		m.faultf(t, t.PC, "host frame: %v", err)
		return
	}
	if done {
		t.PC = fr.cont
		t.hostFrames = t.hostFrames[:len(t.hostFrames)-1]
	}
}

// callGuest arranges for t to call the guest function at fn with the given
// register arguments, returning control to the host frame when it RETs.
func (m *Machine) callGuest(t *Thread, fn uint64, args ...uint64) {
	if m.OnGuestEntry != nil {
		m.OnGuestEntry(fn)
	}
	argRegs := []mx.Reg{mx.RDI, mx.RSI, mx.RDX, mx.RCX, mx.R8, mx.R9}
	for i, v := range args {
		t.Regs[argRegs[i]] = v
	}
	m.push(t, magicHostFrame)
	t.PC = fn
}
