package vm

import (
	"repro/internal/mx"
)

// Weak-ordering machine mode (the MX64W target's execution model).
//
// An image whose Machine field names a weakly-ordered target runs with a
// per-thread FIFO store buffer: plain stores are buffered and become
// globally visible only when the buffer drains. Drains happen at every
// fence, atomic, external call, jump-table load, syscall/halt, when the
// buffer reaches capacity, and — crucially — whenever the scheduler runs a
// different thread. The running thread forwards its own buffered stores to
// its own loads (exact-match store-to-load forwarding; partially
// overlapping loads drain first), so single-threaded semantics are
// unchanged, while unfenced cross-thread visibility is exactly what the
// drain points allow.
//
// Because the buffer always drains before any other thread executes an
// instruction and before any host-visible access, every weak-mode execution
// is observationally equivalent to a sequentially consistent interleaving —
// the same guarantee the TSO machine gives — so a correctly fenced program
// produces byte-identical output on both machines. What changes is the
// contract: on this machine the *target's code generator* is responsible
// for ordering (emitting real fence instructions), not the machine, which
// is what makes emitted-fence counts and the fence-optimization pass
// measurable (§3.4). Native PUSH/POP and instruction fetch write through
// directly (stronger ordering than required, still correct).
//
// Weak mode always runs the switch dispatch engine: like -nocache, the
// threaded engine's fused handlers bypass the loadMem/storeMem seam the
// store buffer lives behind.

// sbCap is the store-buffer capacity in entries; reaching it drains the
// whole buffer (modeling limited store-queue depth).
const sbCap = 8

// sbEntry is one buffered store.
type sbEntry struct {
	addr uint64
	val  uint64
	w    uint8
}

// opDrainsSB marks opcodes that drain the executing thread's store buffer
// before the instruction's own memory semantics run: fences (their whole
// point), atomics (globally-visible ordering points on every machine),
// external calls (the host reads guest memory directly), memory-indirect
// jumps (the jump-table load bypasses loadMem), and machine-stopping ops.
var opDrainsSB = func() [mx.NumOps]bool {
	var t [mx.NumOps]bool
	for op := mx.Op(0); op < mx.NumOps; op++ {
		if (mx.Inst{Op: op}).IsAtomic() {
			t[op] = true
		}
	}
	t[mx.MFENCE] = true
	t[mx.CALLX] = true
	t[mx.JMPM] = true
	t[mx.SYSCALL] = true
	t[mx.HLT] = true
	return t
}()

// drainSB flushes t's buffered stores to memory in FIFO order. Entries were
// validated as mapped when buffered, so the stores cannot fault.
func (m *Machine) drainSB(t *Thread) {
	for i := range t.sbuf {
		e := &t.sbuf[i]
		m.Mem.Store(e.addr, e.val, int(e.w))
	}
	t.sbuf = t.sbuf[:0]
	if m.sbOwner == t {
		m.sbOwner = nil
	}
}

// sbLoad attempts store-to-load forwarding from t's buffer. hit means val
// holds the newest buffered store to exactly (addr, w); overlap means some
// buffered store intersects the loaded range without matching exactly, so
// the caller must drain before loading from memory.
func (t *Thread) sbLoad(addr uint64, w int) (val uint64, hit, overlap bool) {
	end := addr + uint64(w)
	for i := len(t.sbuf) - 1; i >= 0; i-- {
		e := &t.sbuf[i]
		if e.addr == addr && int(e.w) == w {
			return e.val, true, false
		}
		if e.addr < end && addr < e.addr+uint64(e.w) {
			return 0, false, true
		}
	}
	return 0, false, false
}

// storeBuffered is storeMem's weak-mode path: validate the target (fault
// attribution is identical to the direct path), then buffer the store.
// Stores into watched executable ranges write through after a drain, so
// self-modifying code invalidates the predecode cache at store time, in
// program order.
func (m *Machine) storeBuffered(t *Thread, pc, addr, v uint64, w int) bool {
	mem := m.Mem
	if mem.onWrite != nil && addr < mem.watchHi && addr+uint64(w) > mem.watchLo {
		m.drainSB(t)
		if !mem.Store(addr, v, w) {
			m.faultf(t, pc, "store to unmapped address %#x", addr)
			return false
		}
		return true
	}
	if !mem.Mapped(addr, uint64(w)) {
		m.faultf(t, pc, "store to unmapped address %#x", addr)
		return false
	}
	// Mask to the stored width now, so forwarded loads see exactly what a
	// memory round-trip would have produced.
	switch w {
	case 1:
		v &= 0xff
	case 4:
		v &= 0xffff_ffff
	}
	t.sbuf = append(t.sbuf, sbEntry{addr: addr, val: v, w: uint8(w)})
	m.sbOwner = t
	if len(t.sbuf) >= sbCap {
		m.drainSB(t)
	}
	return true
}
