package vm

import (
	"testing"

	"repro/internal/mx"
)

// TestEvalNegateOpposite pins that for every flag combination, a condition
// and its negation evaluate oppositely (this caught a real bug in an early
// Cond.Negate implementation).
func TestEvalNegateOpposite(t *testing.T) {
	var th Thread
	for bits := 0; bits < 16; bits++ {
		th.ZF = bits&1 != 0
		th.SF = bits&2 != 0
		th.CF = bits&4 != 0
		th.OF = bits&8 != 0
		for c := mx.Cond(0); c < mx.NumConds; c++ {
			if th.Eval(c) == th.Eval(c.Negate()) {
				t.Fatalf("flags %04b: Eval(%v)=%v == Eval(%v)", bits, c, th.Eval(c), c.Negate())
			}
		}
	}
}

// TestSubFlagsMatchComparisons pins the flag-setting rules against direct
// integer comparisons for a grid of interesting values.
func TestSubFlagsMatchComparisons(t *testing.T) {
	vals := []uint64{0, 1, 2, ^uint64(0), 1 << 63, (1 << 63) - 1, 42, ^uint64(41)}
	var th Thread
	for _, a := range vals {
		for _, b := range vals {
			th.setSubFlags(a, b, a-b)
			checks := []struct {
				cc   mx.Cond
				want bool
			}{
				{mx.CondE, a == b},
				{mx.CondNE, a != b},
				{mx.CondL, int64(a) < int64(b)},
				{mx.CondLE, int64(a) <= int64(b)},
				{mx.CondG, int64(a) > int64(b)},
				{mx.CondGE, int64(a) >= int64(b)},
				{mx.CondB, a < b},
				{mx.CondBE, a <= b},
				{mx.CondA, a > b},
				{mx.CondAE, a >= b},
			}
			for _, c := range checks {
				if th.Eval(c.cc) != c.want {
					t.Fatalf("cmp %d,%d: cond %v = %v, want %v", int64(a), int64(b), c.cc, th.Eval(c.cc), c.want)
				}
			}
		}
	}
}
