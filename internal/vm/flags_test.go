package vm

import (
	"testing"

	"repro/internal/mx"
)

// TestEvalNegateOpposite pins that for every flag combination, a condition
// and its negation evaluate oppositely (this caught a real bug in an early
// Cond.Negate implementation).
func TestEvalNegateOpposite(t *testing.T) {
	var th Thread
	for bits := 0; bits < 16; bits++ {
		th.ZF = bits&1 != 0
		th.SF = bits&2 != 0
		th.CF = bits&4 != 0
		th.OF = bits&8 != 0
		for c := mx.Cond(0); c < mx.NumConds; c++ {
			if th.Eval(c) == th.Eval(c.Negate()) {
				t.Fatalf("flags %04b: Eval(%v)=%v == Eval(%v)", bits, c, th.Eval(c), c.Negate())
			}
		}
	}
}

// TestEvalAllCondsAllFlags checks every condition code against an
// independently-written reference model (transcribed from the x86 Jcc
// definitions, not from Eval) over all 16 flag combinations, so a regression
// in either the Eval switch or a future fused/threaded fast path that
// re-derives conditions cannot hide in an untested flag corner.
func TestEvalAllCondsAllFlags(t *testing.T) {
	type flags struct{ zf, sf, cf, of bool }
	ref := map[mx.Cond]func(f flags) bool{
		mx.CondE:  func(f flags) bool { return f.zf },
		mx.CondNE: func(f flags) bool { return !f.zf },
		mx.CondL:  func(f flags) bool { return f.sf != f.of },
		mx.CondLE: func(f flags) bool { return f.zf || f.sf != f.of },
		mx.CondG:  func(f flags) bool { return !f.zf && f.sf == f.of },
		mx.CondGE: func(f flags) bool { return f.sf == f.of },
		mx.CondB:  func(f flags) bool { return f.cf },
		mx.CondBE: func(f flags) bool { return f.cf || f.zf },
		mx.CondA:  func(f flags) bool { return !f.cf && !f.zf },
		mx.CondAE: func(f flags) bool { return !f.cf },
		mx.CondS:  func(f flags) bool { return f.sf },
		mx.CondNS: func(f flags) bool { return !f.sf },
	}
	if len(ref) != int(mx.NumConds) {
		t.Fatalf("reference model covers %d conditions, mx defines %d", len(ref), mx.NumConds)
	}
	var th Thread
	for bits := 0; bits < 16; bits++ {
		f := flags{bits&1 != 0, bits&2 != 0, bits&4 != 0, bits&8 != 0}
		th.ZF, th.SF, th.CF, th.OF = f.zf, f.sf, f.cf, f.of
		for c := mx.Cond(0); c < mx.NumConds; c++ {
			if got, want := th.Eval(c), ref[c](f); got != want {
				t.Errorf("flags ZF=%v SF=%v CF=%v OF=%v: Eval(%v) = %v, want %v",
					f.zf, f.sf, f.cf, f.of, c, got, want)
			}
		}
	}
}

// TestSubFlagsMatchComparisons pins the flag-setting rules against direct
// integer comparisons for a grid of interesting values.
func TestSubFlagsMatchComparisons(t *testing.T) {
	vals := []uint64{0, 1, 2, ^uint64(0), 1 << 63, (1 << 63) - 1, 42, ^uint64(41)}
	var th Thread
	for _, a := range vals {
		for _, b := range vals {
			th.setSubFlags(a, b, a-b)
			checks := []struct {
				cc   mx.Cond
				want bool
			}{
				{mx.CondE, a == b},
				{mx.CondNE, a != b},
				{mx.CondL, int64(a) < int64(b)},
				{mx.CondLE, int64(a) <= int64(b)},
				{mx.CondG, int64(a) > int64(b)},
				{mx.CondGE, int64(a) >= int64(b)},
				{mx.CondB, a < b},
				{mx.CondBE, a <= b},
				{mx.CondA, a > b},
				{mx.CondAE, a >= b},
			}
			for _, c := range checks {
				if th.Eval(c.cc) != c.want {
					t.Fatalf("cmp %d,%d: cond %v = %v, want %v", int64(a), int64(b), c.cc, th.Eval(c.cc), c.want)
				}
			}
		}
	}
}
