package vm_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/mx"
	"repro/internal/vm"
)

// Weak-ordering machine mode (weak.go): store-buffer forwarding semantics,
// the observational-equivalence guarantee against the default machine, and
// the fence/spill machine counters the cross-ISA bench reads.

// weakClone returns img tagged for the weakly-ordered machine mode.
func weakClone(img *image.Image) *image.Image {
	out := img.Clone()
	out.Machine = "mx64w"
	return out
}

// TestWeakModeForwardingSemantics exercises every store-buffer path in one
// program: exact-match store-to-load forwarding, a partial-overlap load
// (drains, then reads merged memory), a capacity drain (more buffered
// stores than sbCap), and a fence drain. The program computes a checksum
// and must produce it identically on both machines.
func TestWeakModeForwardingSemantics(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.BSS("buf", 128)
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RBX, "buf")

		// Exact-match forwarding: an 8-byte store, loaded right back.
		b.MovRI(mx.RDX, 0x1234)
		b.I(mx.Inst{Op: mx.STORE64, Dst: mx.RDX, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDI, Base: mx.RBX})

		// Partial overlap: a byte store into the middle of the quad, then an
		// 8-byte load over it — the weak machine must drain and read the
		// merged bytes (0x1234 with byte 1 replaced by 0x56 = 0x5634).
		b.MovRI(mx.RCX, 0x56)
		b.I(mx.Inst{Op: mx.STORE8, Dst: mx.RCX, Base: mx.RBX, Disp: 1})
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RAX, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.ADDRR, Dst: mx.RDI, Src: mx.RAX})

		// Capacity drain: 12 distinct slots (> sbCap 8) written, fence, then
		// summed back from memory.
		b.MovRI(mx.RCX, 0)
		b.Label("fill")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.RCX, Imm: 12})
		b.Jcc(mx.CondGE, "fence")
		b.MovRR(mx.RDX, mx.RCX)
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RDX, Imm: 1})
		b.I(mx.Inst{Op: mx.STOREIDX64, Dst: mx.RDX, Base: mx.RBX, Idx: mx.RCX, Scale: 8, Disp: 16})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RCX, Imm: 1})
		b.Jmp("fill")
		b.Label("fence")
		b.I(mx.Inst{Op: mx.MFENCE})
		b.MovRI(mx.RCX, 0)
		b.Label("sum")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.RCX, Imm: 12})
		b.Jcc(mx.CondGE, "done")
		b.I(mx.Inst{Op: mx.LOADIDX64, Dst: mx.RAX, Base: mx.RBX, Idx: mx.RCX, Scale: 8, Disp: 16})
		b.I(mx.Inst{Op: mx.ADDRR, Dst: mx.RDI, Src: mx.RAX})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RCX, Imm: 1})
		b.Jmp("sum")
		b.Label("done")
		// Fold to a single byte so the checksum fits an exit code.
		b.I(mx.Inst{Op: mx.ANDRI, Dst: mx.RDI, Imm: 0x7f})
		b.CallExt("exit")
	})

	// Expected checksum: 0x1234 + 0x5634 + (1+2+...+12), masked.
	want := (0x1234 + 0x5634 + 78) & 0x7f

	strong := run(t, img)
	mustExit(t, strong, want)

	m, err := vm.New(weakClone(img), 1)
	if err != nil {
		t.Fatal(err)
	}
	weak := m.Run(50_000_000)
	mustExit(t, weak, want)
	if strong.Output != weak.Output {
		t.Fatalf("output diverged: %q vs %q", strong.Output, weak.Output)
	}
}

// TestWeakModeMatchesDefaultOnThreadedWorkload runs the 4-thread lock-add
// workload on both machines at several seeds: the weak machine drains the
// store buffer before any other thread executes, so every execution stays
// observationally sequentially consistent and the results agree exactly.
func TestWeakModeMatchesDefaultOnThreadedWorkload(t *testing.T) {
	img := threadedCounterImage(t)
	weak := weakClone(img)
	for _, seed := range []int64{1, 2, 3} {
		ms, err := vm.New(img, seed)
		if err != nil {
			t.Fatal(err)
		}
		rs := ms.Run(50_000_000)
		mw, err := vm.New(weak, seed)
		if err != nil {
			t.Fatal(err)
		}
		rw := mw.Run(50_000_000)
		if rs.Fault != nil || rw.Fault != nil {
			t.Fatalf("seed %d: faults %v / %v", seed, rs.Fault, rw.Fault)
		}
		if rs.ExitCode != rw.ExitCode || rs.Output != rw.Output {
			t.Fatalf("seed %d: default %d/%q, weak %d/%q",
				seed, rs.ExitCode, rs.Output, rw.ExitCode, rw.Output)
		}
	}
}

// TestUnknownMachineModeErrors: an image demanding a machine mode this VM
// does not implement must be rejected at construction, not misrun.
func TestUnknownMachineModeErrors(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("main")
		b.Label("main")
		b.MovRI(mx.RDI, 0)
		b.CallExt("exit")
	})
	bad := img.Clone()
	bad.Machine = "mx96"
	if _, err := vm.New(bad, 1); err == nil {
		t.Fatal("vm.New accepted an unknown machine mode")
	}
}

// TestCountersFenceAndSpillAccounting retires a known mix of fences and
// frame-slot accesses: 2 fences; 3 spill-idiom ops (8-byte rbp-relative
// negative displacement), with a global-based store and a positive-
// displacement load as non-counting controls.
func TestCountersFenceAndSpillAccounting(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.BSS("g", 16)
		b.Entry("main")
		b.Label("main")
		b.MovRR(mx.RBP, mx.RSP)
		b.I(mx.Inst{Op: mx.SUBRI, Dst: mx.RSP, Imm: 32})
		b.MovRI(mx.RDX, 41)
		b.I(mx.Inst{Op: mx.STORE64, Dst: mx.RDX, Base: mx.RBP, Disp: -8})  // spill
		b.I(mx.Inst{Op: mx.MFENCE})
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RAX, Base: mx.RBP, Disp: -8})   // spill
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RCX, Base: mx.RBP, Disp: -16})  // spill
		b.I(mx.Inst{Op: mx.MFENCE})
		b.MovSym(mx.RBX, "g")
		b.I(mx.Inst{Op: mx.STORE64, Dst: mx.RDX, Base: mx.RBX})            // control: global base
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RCX, Base: mx.RBX, Disp: 8})    // control: positive disp
		b.MovRR(mx.RDI, mx.RAX)
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RDI, Imm: 1})
		b.CallExt("exit")
	})
	res, c := runCounted(t, img, 1)
	mustExit(t, res, 42)
	if c.Fences != 2 {
		t.Errorf("Fences = %d, want 2", c.Fences)
	}
	if c.SpillOps != 3 {
		t.Errorf("SpillOps = %d, want 3", c.SpillOps)
	}
	if c.OpClassCounts[vm.OpClassFence] != 2 {
		t.Errorf("fence class = %d, want 2", c.OpClassCounts[vm.OpClassFence])
	}
}
