package vm

import (
	"sync"

	"repro/internal/mx"
)

// This file implements the machine-counter side of the observability layer
// (internal/obs): hardware-level event counts for one Machine, gated behind
// a single nil check on every hot path so the uninstrumented interpreter
// keeps its decode-once speed. Enable with Machine.EnableCounters (or
// machine-wide via CounterSinkDefault); everything counted is derived from
// the deterministic execution, so for a fixed image, input, and scheduler
// seed the snapshot is identical run over run.

// OpClass buckets opcodes for the per-class retired-instruction histogram.
type OpClass uint8

const (
	OpClassALU      OpClass = iota // mov/lea/arith/logic/shift/setcc/tlsbase/nop
	OpClassMem                     // loads and stores (incl. indexed, push/pop)
	OpClassBranch                  // direct jumps and conditional branches
	OpClassIndirect                // register/memory-indirect jumps and calls
	OpClassCall                    // direct calls and returns
	OpClassAtomic                  // lock-prefixed RMW, XCHG, CMPXCHG
	OpClassFence                   // mfence
	OpClassVector                  // packed-SIMD ops
	OpClassExt                     // external (host-library) calls
	OpClassSys                     // syscall/hlt/ud2 and anything illegal
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{
	"alu", "mem", "branch", "indirect", "call", "atomic", "fence", "vector", "ext", "sys",
}

// String returns the class's metrics label ("alu", "mem", ...).
func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return "unknown"
}

// opClasses maps every opcode to its class; opLockRMW marks lock-prefixed
// read-modify-writes (the paper's `lock`-prefixed instruction budget), and
// opIndirect marks dynamically resolved control transfers (ICFT sites).
var opClasses = func() [mx.NumOps]OpClass {
	var t [mx.NumOps]OpClass
	for op := mx.Op(0); op < mx.NumOps; op++ {
		i := mx.Inst{Op: op}
		switch {
		case op == mx.CALLX:
			t[op] = OpClassExt
		case op == mx.MFENCE:
			t[op] = OpClassFence
		case i.IsAtomic():
			t[op] = OpClassAtomic
		case i.IsIndirect():
			t[op] = OpClassIndirect
		case op == mx.CALL || op == mx.RET:
			t[op] = OpClassCall
		case op == mx.JMP || op == mx.JCC:
			t[op] = OpClassBranch
		case op >= mx.LOAD8 && op <= mx.STOREIDX64:
			t[op] = OpClassMem
		case op == mx.PUSH || op == mx.POP:
			t[op] = OpClassMem
		case op >= mx.VLOAD && op <= mx.VHADD:
			t[op] = OpClassVector
		case op == mx.SYSCALL || op == mx.HLT || op == mx.UD2 || op == mx.BAD:
			t[op] = OpClassSys
		default:
			t[op] = OpClassALU
		}
	}
	return t
}()

var opLockRMW = func() [mx.NumOps]bool {
	var t [mx.NumOps]bool
	for op := mx.Op(0); op < mx.NumOps; op++ {
		t[op] = (mx.Inst{Op: op}).IsAtomic()
	}
	return t
}()

var opIndirect = func() [mx.NumOps]bool {
	var t [mx.NumOps]bool
	for op := mx.Op(0); op < mx.NumOps; op++ {
		t[op] = (mx.Inst{Op: op}).IsIndirect()
	}
	return t
}()

// ThreadCounters is one thread's retired-work totals.
type ThreadCounters struct {
	Insts  uint64 // instructions retired by this thread
	Cycles uint64 // cycles charged to this thread
}

// Counters is a machine-counter snapshot. The fields are plain values: copy
// or Merge them freely once the owning machine's Run has returned.
type Counters struct {
	// Insts is the total retired-instruction count.
	Insts uint64
	// Predecoded-instruction-cache outcomes (icache.go). A hit served a
	// fetch from a predecoded page; a miss predecoded the page; an
	// invalidation dropped a predecoded page because guest code was
	// stored over.
	ICacheHits, ICacheMisses, ICacheInvalidations uint64
	// Software-TLB outcomes (mem.go): a hit translated through the
	// direct-mapped entry, a miss walked the page map.
	TLBHits, TLBMisses uint64
	// Preemptions counts scheduler switches away from a still-runnable
	// thread at quantum expiry.
	Preemptions uint64
	// LockRMW counts lock-prefixed read-modify-writes (incl. XCHG and
	// CMPXCHG); Cmpxchg counts CMPXCHG alone.
	LockRMW, Cmpxchg uint64
	// IndirectBranches counts dynamically resolved control transfers
	// (JMPR/JMPM/CALLR — the ICFT site executions).
	IndirectBranches uint64
	// Fences counts fence instructions retired. Nonzero only for code
	// that actually carries fences — recompiled output for a
	// weakly-ordered target, or hand-written guest code.
	Fences uint64
	// SpillOps counts 8-byte frame-slot accesses (rbp-relative loads and
	// stores with a negative displacement — the lowered code's spill-slot
	// idiom), the dynamic cost of register pressure on register-poor
	// targets.
	SpillOps uint64
	// OpClassCounts is the per-opcode-class retired histogram.
	OpClassCounts [NumOpClasses]uint64
	// Threads holds per-thread retired instructions and cycles, indexed by
	// thread ID.
	Threads []ThreadCounters
}

// NewCounters returns a zeroed counter block.
func NewCounters() *Counters { return &Counters{} }

// thread returns the per-thread slot for tid, growing the slice as threads
// spawn.
func (c *Counters) thread(tid int) *ThreadCounters {
	for tid >= len(c.Threads) {
		c.Threads = append(c.Threads, ThreadCounters{})
	}
	return &c.Threads[tid]
}

// opSpillable marks the opcodes whose rbp-relative negative-displacement
// form is the lowered code's spill-slot access idiom.
var opSpillable = func() [mx.NumOps]bool {
	var t [mx.NumOps]bool
	t[mx.LOAD64] = true
	t[mx.STORE64] = true
	return t
}()

// count accounts one retired instruction (the stepThread hook). Both
// dispatch engines call it with the decoded instruction, so engine choice
// never changes a counter value (TestDispatchIdentity).
func (c *Counters) count(tid int, inst *mx.Inst) {
	op := inst.Op
	c.Insts++
	c.thread(tid).Insts++
	c.OpClassCounts[opClasses[op]]++
	if opLockRMW[op] {
		c.LockRMW++
		if op == mx.CMPXCHG {
			c.Cmpxchg++
		}
	}
	if opIndirect[op] {
		c.IndirectBranches++
	}
	if op == mx.MFENCE {
		c.Fences++
	}
	if opSpillable[op] && inst.Base == mx.RBP && inst.Disp < 0 {
		c.SpillOps++
	}
}

// addCycles accounts charged cycles (the charge hook).
func (c *Counters) addCycles(tid int, n uint64) {
	c.thread(tid).Cycles += n
}

// Merge adds o's totals into c (per-thread slots merge by thread ID).
func (c *Counters) Merge(o *Counters) {
	if o == nil {
		return
	}
	c.Insts += o.Insts
	c.ICacheHits += o.ICacheHits
	c.ICacheMisses += o.ICacheMisses
	c.ICacheInvalidations += o.ICacheInvalidations
	c.TLBHits += o.TLBHits
	c.TLBMisses += o.TLBMisses
	c.Preemptions += o.Preemptions
	c.LockRMW += o.LockRMW
	c.Cmpxchg += o.Cmpxchg
	c.IndirectBranches += o.IndirectBranches
	c.Fences += o.Fences
	c.SpillOps += o.SpillOps
	for i := range c.OpClassCounts {
		c.OpClassCounts[i] += o.OpClassCounts[i]
	}
	for tid, tc := range o.Threads {
		slot := c.thread(tid)
		slot.Insts += tc.Insts
		slot.Cycles += tc.Cycles
	}
}

// Clone returns a deep copy.
func (c *Counters) Clone() *Counters {
	out := *c
	out.Threads = append([]ThreadCounters(nil), c.Threads...)
	return &out
}

// ICacheHitRatio returns hits/(hits+misses), or 0 with no fetches.
func (c *Counters) ICacheHitRatio() float64 {
	return ratio64(c.ICacheHits, c.ICacheMisses)
}

// TLBHitRatio returns hits/(hits+misses), or 0 with no translations.
func (c *Counters) TLBHitRatio() float64 {
	return ratio64(c.TLBHits, c.TLBMisses)
}

func ratio64(hit, miss uint64) float64 {
	if hit+miss == 0 {
		return 0
	}
	return float64(hit) / float64(hit+miss)
}

// CounterSink aggregates counter snapshots across machines (polybench runs
// hundreds of concurrent VMs under -j; each absorbs its totals here when its
// Run completes).
type CounterSink struct {
	mu    sync.Mutex
	total Counters
}

// NewCounterSink returns an empty sink.
func NewCounterSink() *CounterSink { return &CounterSink{} }

// Absorb merges one machine's counters into the sink total.
func (s *CounterSink) Absorb(c *Counters) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.total.Merge(c)
	s.mu.Unlock()
}

// Snapshot returns a deep copy of the aggregated totals.
func (s *CounterSink) Snapshot() *Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total.Clone()
}

// CounterSinkDefault, when set before machines are created (polybench
// -metrics does this once at startup), enables counters on every new Machine
// and absorbs each machine's totals into the sink when its Run returns —
// the same machine-wide seam NoCacheDefault uses for the predecode cache.
var CounterSinkDefault *CounterSink

// EnableCounters turns on machine counters for this machine and returns the
// live counter block (also reachable via Counters). Call before Run.
func (m *Machine) EnableCounters() *Counters {
	if m.ctr == nil {
		m.ctr = NewCounters()
		m.Mem.ctr = m.ctr
	}
	return m.ctr
}

// Counters returns the machine's live counter block, or nil when counters
// are disabled. With a CounterSinkDefault installed the block is absorbed
// into the sink and replaced at the end of every Run; read the sink instead.
func (m *Machine) Counters() *Counters { return m.ctr }
