package vm_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/mx"
	"repro/internal/vm"
)

// Randomized differential for the dispatch engines: generated guest programs
// — straight-line streams of ALU/memory/stack/atomic/vector instructions
// with forward-only branches (fusion candidates included), self-modifying
// stores that patch later instructions, leaf calls, racy shared-memory
// traffic from a second thread, and enough code volume that instructions
// straddle page boundaries — must behave bit-identically under switch and
// threaded dispatch at every scheduler seed. Register and memory state are
// folded into the exit checksum; cycles, instruction counts, faults, and
// the full Counters snapshot are compared directly.

// fuzzPool is the register set generated streams may clobber freely. RBX
// holds the scratch-buffer base, R15 is the generator's addressing scratch,
// and RSP/RBP stay untouched.
var fuzzPool = []mx.Reg{
	mx.RAX, mx.RCX, mx.RDX, mx.RSI, mx.RDI,
	mx.R8, mx.R9, mx.R10, mx.R11, mx.R12, mx.R13, mx.R14,
}

var fuzzScales = []uint8{1, 2, 4, 8}

type fuzzGen struct {
	b      *asm.Builder
	r      *rand.Rand
	tag    string // label prefix; both streams share one builder namespace
	labels int
}

func (g *fuzzGen) reg() mx.Reg { return fuzzPool[g.r.Intn(len(fuzzPool))] }
func (g *fuzzGen) vreg() mx.Reg { return mx.Reg(g.r.Intn(mx.NumVRegs)) }
func (g *fuzzGen) cond() mx.Cond { return mx.Cond(g.r.Intn(mx.NumConds)) }
func (g *fuzzGen) imm32() int64 { return int64(int32(g.r.Uint32())) }

func (g *fuzzGen) label() string {
	g.labels++
	return fmt.Sprintf("%s_l%d", g.tag, g.labels)
}

// simple emits one non-branching instruction (or a short fixed group, e.g. a
// balanced push/pop pair or an index-masking AND before an indexed access).
// All memory operands stay inside the 4KiB scratch buffer based at RBX.
func (g *fuzzGen) simple() {
	r := g.r
	switch r.Intn(12) {
	case 0:
		ops := []mx.Op{mx.ADDRR, mx.SUBRR, mx.ANDRR, mx.ORRR, mx.XORRR,
			mx.IMULRR, mx.SHLRR, mx.SHRRR, mx.SARRR, mx.CMPRR, mx.TESTRR}
		g.b.I(mx.Inst{Op: ops[r.Intn(len(ops))], Dst: g.reg(), Src: g.reg()})
	case 1:
		ops := []mx.Op{mx.ADDRI, mx.SUBRI, mx.ANDRI, mx.ORRI, mx.XORRI,
			mx.SHLRI, mx.SHRRI, mx.SARRI, mx.IMULRI, mx.CMPRI, mx.TESTRI}
		g.b.I(mx.Inst{Op: ops[r.Intn(len(ops))], Dst: g.reg(), Imm: g.imm32()})
	case 2:
		g.b.MovRR(g.reg(), g.reg())
	case 3:
		g.b.MovRI(g.reg(), int64(r.Uint64()))
	case 4:
		if r.Intn(2) == 0 {
			g.b.I(mx.Inst{Op: mx.LEA, Dst: g.reg(), Base: g.reg(), Disp: int32(r.Uint32())})
		} else {
			g.b.I(mx.Inst{Op: mx.LEAIDX, Dst: g.reg(), Base: g.reg(), Idx: g.reg(),
				Scale: fuzzScales[r.Intn(4)], Disp: int32(r.Uint32())})
		}
	case 5:
		switch r.Intn(4) {
		case 0:
			g.b.I(mx.Inst{Op: mx.SETCC, Dst: g.reg(), Cc: g.cond()})
		case 1:
			g.b.I(mx.Inst{Op: mx.TLSBASE, Dst: g.reg()})
		case 2:
			g.b.I(mx.Inst{Op: mx.NEG, Dst: g.reg()})
		default:
			g.b.I(mx.Inst{Op: mx.NOT, Dst: g.reg()})
		}
	case 6: // plain load, unaligned displacements included
		ops := []mx.Op{mx.LOAD8, mx.LOAD32, mx.LOAD64}
		g.b.I(mx.Inst{Op: ops[r.Intn(3)], Dst: g.reg(), Base: mx.RBX, Disp: int32(r.Intn(4080))})
	case 7: // plain store or store-immediate
		if r.Intn(2) == 0 {
			ops := []mx.Op{mx.STORE8, mx.STORE32, mx.STORE64}
			g.b.I(mx.Inst{Op: ops[r.Intn(3)], Dst: g.reg(), Base: mx.RBX, Disp: int32(r.Intn(4080))})
		} else {
			ops := []mx.Op{mx.STOREI8, mx.STOREI32, mx.STOREI64}
			g.b.I(mx.Inst{Op: ops[r.Intn(3)], Base: mx.RBX, Disp: int32(r.Intn(4080)), Imm: g.imm32()})
		}
	case 8: // indexed access behind an index mask (max 255*8+1990+8 < 4096)
		idx := g.reg()
		g.b.I(mx.Inst{Op: mx.ANDRI, Dst: idx, Imm: 255})
		disp := int32(r.Intn(1990))
		scale := fuzzScales[r.Intn(4)]
		if r.Intn(2) == 0 {
			ops := []mx.Op{mx.LOADIDX8, mx.LOADIDX32, mx.LOADIDX64}
			g.b.I(mx.Inst{Op: ops[r.Intn(3)], Dst: g.reg(), Base: mx.RBX, Idx: idx, Scale: scale, Disp: disp})
		} else {
			ops := []mx.Op{mx.STOREIDX8, mx.STOREIDX32, mx.STOREIDX64}
			g.b.I(mx.Inst{Op: ops[r.Intn(3)], Dst: g.reg(), Base: mx.RBX, Idx: idx, Scale: scale, Disp: disp})
		}
	case 9: // balanced stack pair
		g.b.I(mx.Inst{Op: mx.PUSH, Dst: g.reg()})
		g.b.I(mx.Inst{Op: mx.POP, Dst: g.reg()})
	case 10: // atomics on aligned buffer slots (racy across threads, by design)
		if r.Intn(8) == 0 {
			g.b.I(mx.Inst{Op: mx.MFENCE})
			return
		}
		ops := []mx.Op{mx.LOCKADD, mx.LOCKSUB, mx.LOCKAND, mx.LOCKOR, mx.LOCKXOR,
			mx.LOCKXADD, mx.LOCKINC, mx.LOCKDEC, mx.XCHG, mx.CMPXCHG}
		g.b.I(mx.Inst{Op: ops[r.Intn(len(ops))], Dst: g.reg(), Base: mx.RBX, Disp: int32(8 * r.Intn(512))})
	default: // vector
		switch r.Intn(4) {
		case 0:
			g.b.I(mx.Inst{Op: mx.VLOAD, Dst: g.vreg(), Base: mx.RBX, Disp: int32(8 * r.Intn(500))})
		case 1:
			g.b.I(mx.Inst{Op: mx.VSTORE, Dst: g.vreg(), Base: mx.RBX, Disp: int32(8 * r.Intn(500))})
		case 2:
			ops := []mx.Op{mx.VADD, mx.VMUL}
			g.b.I(mx.Inst{Op: ops[r.Intn(2)], Dst: g.vreg(), Src: g.vreg()})
		default:
			if r.Intn(2) == 0 {
				g.b.I(mx.Inst{Op: mx.VBCAST, Dst: g.vreg(), Src: g.reg()})
			} else {
				g.b.I(mx.Inst{Op: mx.VHADD, Dst: g.reg(), Src: g.vreg()})
			}
		}
	}
}

// flagSetter emits one flag-setting instruction, biased toward the ops the
// threaded engine fuses with a following JCC.
func (g *fuzzGen) flagSetter() {
	ops := []mx.Op{mx.CMPRR, mx.CMPRI, mx.TESTRR, mx.TESTRI, mx.SUBRR, mx.SUBRI, mx.ADDRR, mx.ANDRI}
	op := ops[g.r.Intn(len(ops))]
	if mx.LayoutOf(op) == mx.LayoutRR {
		g.b.I(mx.Inst{Op: op, Dst: g.reg(), Src: g.reg()})
	} else {
		g.b.I(mx.Inst{Op: op, Dst: g.reg(), Imm: g.imm32()})
	}
}

// stream emits n random emissions with forward-only control flow, so every
// generated program terminates.
func (g *fuzzGen) stream(n int, leaves []string) {
	for i := 0; i < n; i++ {
		switch g.r.Intn(10) {
		case 0, 1: // flag setter + forward JCC over a small window (fusion candidate)
			g.flagSetter()
			lbl := g.label()
			g.b.Jcc(g.cond(), lbl)
			for k := g.r.Intn(3); k >= 0; k-- {
				g.simple()
			}
			g.b.Label(lbl)
		case 2: // forward unconditional jump
			lbl := g.label()
			g.b.Jmp(lbl)
			for k := g.r.Intn(2); k >= 0; k-- {
				g.simple()
			}
			g.b.Label(lbl)
		case 3: // self-modifying store patching a later MOVRI's low immediate byte
			lbl := g.label()
			g.b.MovSym(mx.R15, lbl)
			g.b.I(mx.Inst{Op: mx.STOREI8, Base: mx.R15, Disp: 2, Imm: int64(g.r.Intn(256))})
			for k := g.r.Intn(3); k > 0; k-- {
				g.simple()
			}
			g.b.Label(lbl)
			g.b.MovRI(g.reg(), int64(g.r.Uint64()))
		case 4: // leaf call
			g.b.Call(leaves[g.r.Intn(len(leaves))])
		default:
			g.simple()
		}
	}
}

// emitLeaves defines the straight-line leaf functions a stream calls.
func (g *fuzzGen) emitLeaves(names []string) {
	for _, n := range names {
		g.b.Label(n)
		for k := 2 + g.r.Intn(3); k > 0; k-- {
			g.simple()
		}
		g.b.Ret()
	}
}

// buildFuzzImage generates one deterministic two-thread program from
// progSeed: main spawns a worker running its own random stream, runs a
// random stream of its own (the two race on the shared buffer), joins, and
// exits with a checksum over all pool registers and the buffer contents.
func buildFuzzImage(t *testing.T, progSeed int64) *image.Image {
	t.Helper()
	r := rand.New(rand.NewSource(progSeed))
	b := asm.NewBuilder(fmt.Sprintf("fuzz%d", progSeed))
	b.BSS("buf", 4096)
	b.BSS("wtid", 8)
	b.SetTLSSize(64)

	b.Entry("main")
	b.Label("main")
	b.MovSym(mx.RBX, "buf")
	b.MovSym(mx.RDI, "worker")
	b.MovRI(mx.RSI, 0)
	b.CallExt("thread_create")
	b.MovSym(mx.R15, "wtid")
	b.I(mx.Inst{Op: mx.STORE64, Dst: mx.RAX, Base: mx.R15})

	mg := &fuzzGen{b: b, r: r, tag: "m"}
	mleaves := []string{"m_f0", "m_f1", "m_f2"}
	mg.stream(400, mleaves)

	b.MovSym(mx.R15, "wtid")
	b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDI, Base: mx.R15})
	b.CallExt("thread_join")

	// Checksum: pool registers first, then every quad of the buffer.
	b.MovRI(mx.R15, 0)
	for _, rg := range fuzzPool {
		b.I(mx.Inst{Op: mx.ADDRR, Dst: mx.R15, Src: rg})
	}
	b.MovRI(mx.RCX, 0)
	b.Label("chk")
	b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.RCX, Imm: 512})
	b.Jcc(mx.CondGE, "chkdone")
	b.I(mx.Inst{Op: mx.LOADIDX64, Dst: mx.RAX, Base: mx.RBX, Idx: mx.RCX, Scale: 8})
	b.I(mx.Inst{Op: mx.ADDRR, Dst: mx.R15, Src: mx.RAX})
	b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RCX, Imm: 1})
	b.Jmp("chk")
	b.Label("chkdone")
	b.MovRR(mx.RDI, mx.R15)
	b.I(mx.Inst{Op: mx.ANDRI, Dst: mx.RDI, Imm: 255})
	b.CallExt("exit")
	mg.emitLeaves(mleaves)

	b.Label("worker")
	b.MovSym(mx.RBX, "buf")
	wg := &fuzzGen{b: b, r: r, tag: "w"}
	wleaves := []string{"w_f0", "w_f1", "w_f2"}
	wg.stream(400, wleaves)
	b.MovRI(mx.RAX, 0)
	b.Ret()
	wg.emitLeaves(wleaves)

	img, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var textSize uint64
	for i := range img.Sections {
		if img.Sections[i].Exec {
			textSize += img.Sections[i].Size
		}
	}
	if textSize <= 4096 {
		t.Fatalf("generated text is %d bytes; need >1 page so instructions straddle boundaries", textSize)
	}
	return img
}

// TestDispatchFuzzDifferential runs each generated program under both
// dispatch engines, with and without counters, at several scheduler seeds,
// and requires bit-identical Results everywhere, identical Counters between
// engines, and that enabling counters never perturbs execution.
func TestDispatchFuzzDifferential(t *testing.T) {
	for progSeed := int64(1); progSeed <= 6; progSeed++ {
		progSeed := progSeed
		t.Run(fmt.Sprintf("prog%d", progSeed), func(t *testing.T) {
			t.Parallel()
			img := buildFuzzImage(t, progSeed)
			for _, seed := range []int64{1, 4, 9} {
				exec := func(mode vm.DispatchMode, counted bool) (vm.Result, *vm.Counters) {
					m, err := vm.New(img, seed)
					if err != nil {
						t.Fatal(err)
					}
					m.SetDispatch(mode)
					var c *vm.Counters
					if counted {
						c = m.EnableCounters()
					}
					return m.Run(10_000_000), c
				}
				sw, _ := exec(vm.DispatchSwitch, false)
				th, _ := exec(vm.DispatchThreaded, false)
				swc, swCtr := exec(vm.DispatchSwitch, true)
				thc, thCtr := exec(vm.DispatchThreaded, true)
				if sw.Fault != nil {
					// The generator keeps every access in bounds; a fault
					// means lost coverage, not a legitimate program.
					t.Fatalf("seed %d: generated program faults: %v", seed, sw.Fault)
				}
				if !sameResult(sw, th) {
					t.Fatalf("seed %d: engines diverge (uncounted):\n  switch:   %+v\n  threaded: %+v", seed, sw, th)
				}
				if !sameResult(swc, thc) {
					t.Fatalf("seed %d: engines diverge (counted):\n  switch:   %+v\n  threaded: %+v", seed, swc, thc)
				}
				if !sameResult(sw, swc) {
					t.Fatalf("seed %d: enabling counters perturbs execution:\n  off: %+v\n  on:  %+v", seed, sw, swc)
				}
				if !reflect.DeepEqual(swCtr, thCtr) {
					t.Fatalf("seed %d: counters diverge:\n  switch:   %+v\n  threaded: %+v", seed, swCtr, thCtr)
				}
			}
		})
	}
}
