package vm

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/mx"
)

// This file implements the host library: the native shared libraries
// (libc, libpthread, an OpenMP runtime) that the paper treats as external
// code reached through the PLT. Guest programs call these through CALLX.
//
// Two functions re-enter guest code — qsort (comparator callbacks) and
// omp_parallel_for / thread_create (thread entry-point callbacks). These are
// exactly the external-entry-point cases (§2.2.3, §3.3.3) that make
// recompilation of multithreaded binaries hard, so the host library
// reproduces their contracts faithfully: entry points are plain code
// addresses, invoked on a fresh thread with a fresh stack (clone-style) or on
// the caller's thread (qsort).

func arg(t *Thread, i int) uint64 {
	return t.Regs[[]mx.Reg{mx.RDI, mx.RSI, mx.RDX, mx.RCX, mx.R8, mx.R9}[i]]
}

func ret(t *Thread, v uint64) { t.Regs[mx.RAX] = v }

// mallocHeaderSize is the hidden size header before each allocation.
const mallocHeaderSize = 16

type extDef struct {
	fn   ExtFunc
	cost uint64
}

var builtinExts = map[string]extDef{
	"exit": {func(m *Machine, t *Thread) error {
		m.exit(int(int64(arg(t, 0))))
		return nil
	}, 10},

	"print_i64": {func(m *Machine, t *Thread) error {
		m.Out.WriteString(strconv.FormatInt(int64(arg(t, 0)), 10))
		m.Out.WriteByte('\n')
		return nil
	}, 40},

	"print_str": {func(m *Machine, t *Thread) error {
		s, ok := m.Mem.CString(arg(t, 0))
		if !ok {
			return fmt.Errorf("bad string pointer %#x", arg(t, 0))
		}
		m.Out.WriteString(s)
		return nil
	}, 40},

	"print_char": {func(m *Machine, t *Thread) error {
		m.Out.WriteByte(byte(arg(t, 0)))
		return nil
	}, 10},

	"write": {func(m *Machine, t *Thread) error {
		buf, ok := m.Mem.ReadBytes(arg(t, 0), arg(t, 1))
		if !ok {
			return fmt.Errorf("bad buffer %#x+%d", arg(t, 0), arg(t, 1))
		}
		m.Out.Write(buf)
		ret(t, arg(t, 1))
		return nil
	}, 40},

	"clock": {func(m *Machine, t *Thread) error {
		ret(t, m.cycles)
		return nil
	}, 5},

	"input_read": {func(m *Machine, t *Thread) error {
		n := arg(t, 1)
		if n > uint64(len(m.input)) {
			n = uint64(len(m.input))
		}
		m.Mem.WriteBytes(arg(t, 0), m.input[:n])
		m.input = m.input[n:]
		m.charge(t, n/8)
		ret(t, n)
		return nil
	}, 30},

	"input_byte": {func(m *Machine, t *Thread) error {
		if len(m.input) == 0 {
			ret(t, ^uint64(0)) // -1 on EOF
			return nil
		}
		ret(t, uint64(m.input[0]))
		m.input = m.input[1:]
		return nil
	}, 5},

	"malloc": {func(m *Machine, t *Thread) error {
		n := arg(t, 0)
		a := m.Malloc(n + mallocHeaderSize)
		m.Mem.Store(a, n+mallocHeaderSize, 8)
		ret(t, a+mallocHeaderSize)
		return nil
	}, 30},

	"calloc": {func(m *Machine, t *Thread) error {
		n := arg(t, 0) * arg(t, 1)
		a := m.Malloc(n + mallocHeaderSize)
		m.Mem.Store(a, n+mallocHeaderSize, 8)
		// Malloc'd pages are freshly mapped (zero) or recycled; zero
		// explicitly to be safe.
		zero := make([]byte, n)
		m.Mem.WriteBytes(a+mallocHeaderSize, zero)
		m.charge(t, n/16)
		ret(t, a+mallocHeaderSize)
		return nil
	}, 40},

	"free": {func(m *Machine, t *Thread) error {
		p := arg(t, 0)
		if p == 0 {
			return nil
		}
		sz, ok := m.Mem.Load(p-mallocHeaderSize, 8)
		if !ok {
			return fmt.Errorf("free of invalid pointer %#x", p)
		}
		m.Free(p-mallocHeaderSize, sz)
		return nil
	}, 15},

	"memcpy": {func(m *Machine, t *Thread) error {
		n := arg(t, 2)
		buf, ok := m.Mem.ReadBytes(arg(t, 1), n)
		if !ok {
			return fmt.Errorf("memcpy source unmapped")
		}
		m.Mem.WriteBytes(arg(t, 0), buf)
		m.charge(t, n/8)
		ret(t, arg(t, 0))
		return nil
	}, 20},

	"memset": {func(m *Machine, t *Thread) error {
		n := arg(t, 2)
		buf := make([]byte, n)
		c := byte(arg(t, 1))
		for i := range buf {
			buf[i] = c
		}
		m.Mem.WriteBytes(arg(t, 0), buf)
		m.charge(t, n/8)
		ret(t, arg(t, 0))
		return nil
	}, 20},

	"strlen": {func(m *Machine, t *Thread) error {
		s, ok := m.Mem.CString(arg(t, 0))
		if !ok {
			return fmt.Errorf("strlen of bad pointer")
		}
		m.charge(t, uint64(len(s))/8)
		ret(t, uint64(len(s)))
		return nil
	}, 15},

	"strcmp": {func(m *Machine, t *Thread) error {
		a, ok1 := m.Mem.CString(arg(t, 0))
		b, ok2 := m.Mem.CString(arg(t, 1))
		if !ok1 || !ok2 {
			return fmt.Errorf("strcmp of bad pointer")
		}
		switch {
		case a < b:
			ret(t, ^uint64(0))
		case a > b:
			ret(t, 1)
		default:
			ret(t, 0)
		}
		return nil
	}, 20},

	"strcpy": {func(m *Machine, t *Thread) error {
		s, ok := m.Mem.CString(arg(t, 1))
		if !ok {
			return fmt.Errorf("strcpy of bad pointer")
		}
		m.Mem.WriteBytes(arg(t, 0), append([]byte(s), 0))
		ret(t, arg(t, 0))
		return nil
	}, 20},

	// --- threading (libpthread model) ----------------------------------

	"thread_create": {func(m *Machine, t *Thread) error {
		fn, a := arg(t, 0), arg(t, 1)
		nt := m.spawn(fn, [6]uint64{a})
		ret(t, uint64(nt.ID))
		return nil
	}, 200},

	"thread_join": {func(m *Machine, t *Thread) error {
		tid := int(arg(t, 0))
		if tid < 0 || tid >= len(m.threads) {
			return fmt.Errorf("join of invalid thread %d", tid)
		}
		target := m.threads[tid]
		if target.State == Done {
			ret(t, target.ExitValue)
			return nil
		}
		if target.wakeup != nil {
			return fmt.Errorf("thread %d joined twice", tid)
		}
		t.State = Blocked
		target.wakeup = func() {
			ret(t, target.ExitValue)
			t.State = Runnable
		}
		return nil
	}, 50},

	"sched_yield": {func(m *Machine, t *Thread) error {
		m.sliceLeft = 0
		return nil
	}, 10},

	"thread_id": {func(m *Machine, t *Thread) error {
		ret(t, uint64(t.ID))
		return nil
	}, 5},

	"mutex_lock": {func(m *Machine, t *Thread) error {
		return m.mutexLock(t, arg(t, 0))
	}, 25},

	"mutex_unlock": {func(m *Machine, t *Thread) error {
		return m.mutexUnlock(t, arg(t, 0))
	}, 25},

	"cond_wait": {func(m *Machine, t *Thread) error {
		return m.condWait(t, arg(t, 0), arg(t, 1))
	}, 30},

	"cond_signal": {func(m *Machine, t *Thread) error {
		m.condSignal(arg(t, 0), false)
		return nil
	}, 30},

	"cond_broadcast": {func(m *Machine, t *Thread) error {
		m.condSignal(arg(t, 0), true)
		return nil
	}, 30},

	"barrier_wait": {func(m *Machine, t *Thread) error {
		return m.barrierWait(t, arg(t, 0), arg(t, 1))
	}, 30},

	// --- callbacks -------------------------------------------------------

	"qsort": {func(m *Machine, t *Thread) error {
		return m.startQsort(t, arg(t, 0), arg(t, 1), arg(t, 2), arg(t, 3))
	}, 100},

	"omp_parallel_for": {func(m *Machine, t *Thread) error {
		return m.ompParallelFor(t, arg(t, 0), int64(arg(t, 1)), int64(arg(t, 2)), arg(t, 3), int(arg(t, 4)))
	}, 300},

	// --- recompiled-binary runtime (Polynima) ---------------------------

	// __polynima_thread_init allocates this thread's emulated program
	// stack and returns its (aligned) top. Called once per thread by the
	// callback wrappers when they observe an uninitialized TLS (§3.3.2).
	"__polynima_thread_init": {func(m *Machine, t *Thread) error {
		const emuStackSize = 1 << 20
		base := m.Malloc(emuStackSize)
		top := (base + emuStackSize - 64) &^ 15
		ret(t, top)
		return nil
	}, 100},

	// __polynima_miss(site, target) records a control-flow miss (an
	// indirect transfer to a target unknown at recompile time) and stops
	// the program so the additive-lifting loop can integrate the new path
	// (§3.2).
	"__polynima_miss": {func(m *Machine, t *Thread) error {
		if m.MissHook != nil {
			m.MissHook(t, arg(t, 0), arg(t, 1))
		}
		m.exit(MissExitCode)
		return nil
	}, 20},

	// __polynima_lock / __polynima_unlock serialize the naive (Listing 1)
	// atomic translation on one global runtime lock.
	"__polynima_lock": {func(m *Machine, t *Thread) error {
		return m.mutexLock(t, polyGlobalLockKey)
	}, 25},
	"__polynima_unlock": {func(m *Machine, t *Thread) error {
		return m.mutexUnlock(t, polyGlobalLockKey)
	}, 25},
}

// MissExitCode is the distinguished exit code of a recompiled binary that
// hit a control-flow miss.
const MissExitCode = 121

// polyGlobalLockKey keys the naive-atomics global lock (an address no guest
// object occupies).
const polyGlobalLockKey = 1

// bindImports resolves the image's import table against the builtin host
// library plus any machine-specific registrations.
func (m *Machine) bindImports() error {
	m.exts = make([]ExtFunc, len(m.Img.Imports))
	m.extCost = make([]uint64, len(m.Img.Imports))
	for i, name := range m.Img.Imports {
		if fn, ok := m.extra[name]; ok {
			m.exts[i] = fn
			m.extCost[i] = 30
			continue
		}
		def, ok := builtinExts[name]
		if !ok {
			return fmt.Errorf("vm: unresolved import %q", name)
		}
		m.exts[i] = def.fn
		m.extCost[i] = def.cost
	}
	return nil
}

// ExtNames returns the sorted names of all builtin host-library functions.
func ExtNames() []string {
	names := make([]string, 0, len(builtinExts))
	for n := range builtinExts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- synchronization objects (keyed by guest address) ----------------------

type hostMutex struct {
	owner   int // thread ID + 1; 0 = unlocked
	waiters []*Thread
}

type hostCond struct {
	waiters []*Thread
	mutexes []uint64 // mutex to re-acquire per waiter
}

type hostBarrier struct {
	arrived []*Thread
}

func (m *Machine) mutexes() map[uint64]*hostMutex {
	if m.mutexMap == nil {
		m.mutexMap = map[uint64]*hostMutex{}
	}
	return m.mutexMap
}

func (m *Machine) mutexLock(t *Thread, addr uint64) error {
	mu := m.mutexes()[addr]
	if mu == nil {
		mu = &hostMutex{}
		m.mutexes()[addr] = mu
	}
	if mu.owner == 0 {
		mu.owner = t.ID + 1
		return nil
	}
	if mu.owner == t.ID+1 {
		return fmt.Errorf("recursive lock of mutex %#x", addr)
	}
	t.State = Blocked
	mu.waiters = append(mu.waiters, t)
	return nil
}

func (m *Machine) mutexUnlock(t *Thread, addr uint64) error {
	mu := m.mutexes()[addr]
	if mu == nil || mu.owner == 0 {
		return fmt.Errorf("unlock of unlocked mutex %#x", addr)
	}
	if mu.owner != t.ID+1 {
		return fmt.Errorf("unlock of mutex %#x by non-owner", addr)
	}
	if len(mu.waiters) == 0 {
		mu.owner = 0
		return nil
	}
	next := mu.waiters[0]
	mu.waiters = mu.waiters[1:]
	mu.owner = next.ID + 1
	next.State = Runnable
	return nil
}

func (m *Machine) conds() map[uint64]*hostCond {
	if m.condMap == nil {
		m.condMap = map[uint64]*hostCond{}
	}
	return m.condMap
}

func (m *Machine) condWait(t *Thread, condAddr, mutexAddr uint64) error {
	if err := m.mutexUnlock(t, mutexAddr); err != nil {
		return err
	}
	c := m.conds()[condAddr]
	if c == nil {
		c = &hostCond{}
		m.conds()[condAddr] = c
	}
	t.State = Blocked
	c.waiters = append(c.waiters, t)
	c.mutexes = append(c.mutexes, mutexAddr)
	return nil
}

func (m *Machine) condSignal(condAddr uint64, all bool) {
	c := m.conds()[condAddr]
	if c == nil {
		return
	}
	n := 1
	if all {
		n = len(c.waiters)
	}
	for i := 0; i < n && len(c.waiters) > 0; i++ {
		w := c.waiters[0]
		muAddr := c.mutexes[0]
		c.waiters = c.waiters[1:]
		c.mutexes = c.mutexes[1:]
		// Re-acquire the mutex on behalf of the waiter; it stays blocked
		// until the mutex is granted.
		w.State = Runnable
		if err := m.mutexLock(w, muAddr); err != nil {
			m.faultf(w, w.PC, "cond re-acquire: %v", err)
		}
	}
}

func (m *Machine) barriers() map[uint64]*hostBarrier {
	if m.barrierMap == nil {
		m.barrierMap = map[uint64]*hostBarrier{}
	}
	return m.barrierMap
}

func (m *Machine) barrierWait(t *Thread, addr, count uint64) error {
	if count == 0 {
		return fmt.Errorf("barrier with count 0")
	}
	b := m.barriers()[addr]
	if b == nil {
		b = &hostBarrier{}
		m.barriers()[addr] = b
	}
	b.arrived = append(b.arrived, t)
	if uint64(len(b.arrived)) >= count {
		for _, w := range b.arrived {
			w.State = Runnable
		}
		b.arrived = nil
		return nil
	}
	t.State = Blocked
	return nil
}

// --- qsort: a host state machine driving guest comparator callbacks --------

// qsortFrame implements iterative Lomuto quicksort with exactly one guest
// comparator call outstanding at a time.
type qsortFrame struct {
	base, size, cmp uint64
	stack           [][2]int64 // pending [lo, hi] ranges
	lo, hi, i, j    int64
	inPartition     bool
}

func (m *Machine) startQsort(t *Thread, base, n, size, cmp uint64) error {
	if size == 0 {
		return fmt.Errorf("qsort with element size 0")
	}
	f := &qsortFrame{base: base, size: size, cmp: cmp}
	if n > 1 {
		f.stack = append(f.stack, [2]int64{0, int64(n) - 1})
	}
	t.hostFrames = append(t.hostFrames, hostFrameEntry{frame: f, cont: t.PC})
	// Kick off: resume with a dummy "previous result" that is ignored
	// because inPartition is false.
	done, err := f.resume(m, t, 0)
	if err != nil {
		return err
	}
	if done {
		// Nothing to sort: t.PC is still the post-CALLX address.
		t.hostFrames = t.hostFrames[:len(t.hostFrames)-1]
	}
	return nil
}

func (f *qsortFrame) elem(i int64) uint64 { return f.base + uint64(i)*f.size }

func (f *qsortFrame) swap(m *Machine, a, b int64) error {
	if a == b {
		return nil
	}
	x, ok1 := m.Mem.ReadBytes(f.elem(a), f.size)
	y, ok2 := m.Mem.ReadBytes(f.elem(b), f.size)
	if !ok1 || !ok2 {
		return fmt.Errorf("qsort: unmapped element")
	}
	m.Mem.WriteBytes(f.elem(a), y)
	m.Mem.WriteBytes(f.elem(b), x)
	return nil
}

func (f *qsortFrame) resume(m *Machine, t *Thread, cmpResult uint64) (bool, error) {
	if f.inPartition {
		// Guest comparator returned: cmp(elem[j], pivot=elem[hi]).
		if int64(cmpResult) < 0 {
			if err := f.swap(m, f.i, f.j); err != nil {
				return false, err
			}
			f.i++
		}
		f.j++
		if f.j < f.hi {
			m.callGuest(t, f.cmp, f.elem(f.j), f.elem(f.hi))
			return false, nil
		}
		// Partition finished.
		if err := f.swap(m, f.i, f.hi); err != nil {
			return false, err
		}
		if f.lo < f.i-1 {
			f.stack = append(f.stack, [2]int64{f.lo, f.i - 1})
		}
		if f.i+1 < f.hi {
			f.stack = append(f.stack, [2]int64{f.i + 1, f.hi})
		}
		f.inPartition = false
	}
	// Start the next pending range, if any.
	for len(f.stack) > 0 {
		r := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		f.lo, f.hi = r[0], r[1]
		if f.lo >= f.hi {
			continue
		}
		f.i, f.j = f.lo, f.lo
		f.inPartition = true
		m.callGuest(t, f.cmp, f.elem(f.j), f.elem(f.hi))
		return false, nil
	}
	return true, nil
}

// --- omp_parallel_for: the OpenMP-outlined-function model -------------------

// ompParallelFor spawns nthreads worker threads, each entering fn with the
// register arguments (chunkLo, chunkHi, arg), and blocks the caller until all
// workers complete. Each pragma-annotated loop in an OpenMP binary compiles
// into exactly this pattern: an outlined function used as an external entry
// point on a fresh thread (§4.2: "with OpenMP, each of the pragma-annotated
// loops compile into a distinct function which acts as an entry point into a
// new thread context").
func (m *Machine) ompParallelFor(t *Thread, fn uint64, lo, hi int64, a uint64, nthreads int) error {
	if nthreads <= 0 {
		nthreads = 4
	}
	total := hi - lo
	if total <= 0 {
		return nil
	}
	if int64(nthreads) > total {
		nthreads = int(total)
	}
	remaining := nthreads
	t.State = Blocked
	chunk := (total + int64(nthreads) - 1) / int64(nthreads)
	for w := 0; w < nthreads; w++ {
		clo := lo + int64(w)*chunk
		chi := clo + chunk
		if chi > hi {
			chi = hi
		}
		nt := m.spawn(fn, [6]uint64{uint64(clo), uint64(chi), a})
		nt.wakeup = func() {
			remaining--
			if remaining == 0 {
				t.State = Runnable
			}
		}
	}
	return nil
}
