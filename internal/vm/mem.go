package vm

import "encoding/binary"

// pageSize is the granularity of the sparse guest address space.
const pageSize = 1 << 12

// Memory is a sparse, paged, flat 64-bit guest address space. All threads of
// a machine share one Memory; per-thread stacks are just disjoint regions of
// it, which is what makes stack-escape and false-sharing hazards expressible.
type Memory struct {
	pages map[uint64][]byte
}

// NewMemory returns an empty address space.
func NewMemory() *Memory { return &Memory{pages: map[uint64][]byte{}} }

func (m *Memory) page(addr uint64, create bool) ([]byte, uint64) {
	base := addr &^ (pageSize - 1)
	p, ok := m.pages[base]
	if !ok {
		if !create {
			return nil, 0
		}
		p = make([]byte, pageSize)
		m.pages[base] = p
	}
	return p, addr - base
}

// Mapped reports whether every byte of [addr, addr+n) is mapped.
func (m *Memory) Mapped(addr, n uint64) bool {
	for a := addr &^ (pageSize - 1); a < addr+n; a += pageSize {
		if _, ok := m.pages[a]; !ok {
			return false
		}
	}
	return true
}

// Map ensures [addr, addr+n) is mapped (zero-filled where new).
func (m *Memory) Map(addr, n uint64) {
	for a := addr &^ (pageSize - 1); a < addr+n; a += pageSize {
		m.page(a, true)
	}
}

// WriteBytes copies p into guest memory at addr, mapping as needed.
func (m *Memory) WriteBytes(addr uint64, p []byte) {
	for len(p) > 0 {
		pg, off := m.page(addr, true)
		n := copy(pg[off:], p)
		p = p[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n bytes of guest memory at addr into a new slice. It
// returns false if any byte is unmapped.
func (m *Memory) ReadBytes(addr, n uint64) ([]byte, bool) {
	out := make([]byte, n)
	got := out
	for n > 0 {
		pg, off := m.page(addr, false)
		if pg == nil {
			return nil, false
		}
		c := copy(got, pg[off:])
		if uint64(c) > n {
			c = int(n)
		}
		got = got[c:]
		n -= uint64(c)
		addr += uint64(c)
	}
	return out, true
}

// fast single-page accessors; fall back to byte-wise for page straddles.

// Load reads a little-endian value of the given width (1, 4, or 8 bytes).
func (m *Memory) Load(addr uint64, width int) (uint64, bool) {
	pg, off := m.page(addr, false)
	if pg != nil && off+uint64(width) <= pageSize {
		switch width {
		case 1:
			return uint64(pg[off]), true
		case 4:
			return uint64(binary.LittleEndian.Uint32(pg[off:])), true
		case 8:
			return binary.LittleEndian.Uint64(pg[off:]), true
		}
	}
	// Slow path: straddling or unmapped.
	b, ok := m.ReadBytes(addr, uint64(width))
	if !ok {
		return 0, false
	}
	switch width {
	case 1:
		return uint64(b[0]), true
	case 4:
		return uint64(binary.LittleEndian.Uint32(b)), true
	case 8:
		return binary.LittleEndian.Uint64(b), true
	}
	return 0, false
}

// Store writes a little-endian value of the given width. It returns false if
// the destination is unmapped (stores never implicitly map memory; only the
// loader, heap and stacks map pages — wild stores fault, as on hardware).
func (m *Memory) Store(addr uint64, v uint64, width int) bool {
	pg, off := m.page(addr, false)
	if pg != nil && off+uint64(width) <= pageSize {
		switch width {
		case 1:
			pg[off] = byte(v)
		case 4:
			binary.LittleEndian.PutUint32(pg[off:], uint32(v))
		case 8:
			binary.LittleEndian.PutUint64(pg[off:], v)
		}
		return true
	}
	if !m.Mapped(addr, uint64(width)) {
		return false
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.WriteBytes(addr, b[:width])
	return true
}

// CString reads a NUL-terminated string at addr (capped at 1<<16 bytes).
func (m *Memory) CString(addr uint64) (string, bool) {
	var out []byte
	for i := 0; i < 1<<16; i++ {
		v, ok := m.Load(addr+uint64(i), 1)
		if !ok {
			return "", false
		}
		if v == 0 {
			return string(out), true
		}
		out = append(out, byte(v))
	}
	return "", false
}
