package vm

import (
	"bytes"
	"encoding/binary"
)

// pageSize is the granularity of the sparse guest address space.
const (
	pageSize  = 1 << pageShift
	pageShift = 12
)

// tlbSize is the number of entries in the direct-mapped software TLB that
// fronts the pages map (power of two; indexed by page number).
const tlbSize = 64

// tlbEntry caches one positive page translation. pg == nil marks an empty
// slot; only mapped pages are cached, so a hit never needs re-validation.
type tlbEntry struct {
	base uint64
	pg   []byte
}

// Memory is a sparse, paged, flat 64-bit guest address space. All threads of
// a machine share one Memory; per-thread stacks are just disjoint regions of
// it, which is what makes stack-escape and false-sharing hazards expressible.
type Memory struct {
	pages map[uint64][]byte

	// tlb is a direct-mapped translation cache in front of pages, so the
	// hot fetch/load/store paths index an array instead of hashing into a
	// map. Only positive translations are cached, and the address space
	// has no unmap operation (Machine.Free recycles blocks without
	// unmapping), so entries never go stale; Map inserts through page(),
	// which refreshes the corresponding entry in place.
	tlb [tlbSize]tlbEntry

	// onWrite, when set, is called with the base of every page written
	// through Store/WriteBytes that intersects one of watchRanges (page
	// aligned, disjoint). The machine registers its executable ranges here
	// so the predecoded instruction cache is invalidated when guest code
	// is stored over (self-modifying or overwritten code). watchLo/watchHi
	// bound all ranges for a cheap reject on the store fast path.
	watchLo, watchHi uint64
	watchRanges      [][2]uint64
	onWrite          func(pageBase uint64)

	// ctr, when the owning machine has counters enabled, receives TLB
	// hit/miss counts from page() (counters.go).
	ctr *Counters
}

// NewMemory returns an empty address space.
func NewMemory() *Memory { return &Memory{pages: map[uint64][]byte{}} }

// watchWrites registers onWrite to fire for every page of ranges written
// through Store/WriteBytes. Ranges are rounded out to page boundaries.
func (m *Memory) watchWrites(ranges [][2]uint64, onWrite func(pageBase uint64)) {
	m.watchRanges = m.watchRanges[:0]
	m.watchLo, m.watchHi = ^uint64(0), 0
	for _, r := range ranges {
		lo := r[0] &^ (pageSize - 1)
		hi := (r[1] + pageSize - 1) &^ (pageSize - 1)
		if lo >= hi {
			continue
		}
		m.watchRanges = append(m.watchRanges, [2]uint64{lo, hi})
		if lo < m.watchLo {
			m.watchLo = lo
		}
		if hi > m.watchHi {
			m.watchHi = hi
		}
	}
	if len(m.watchRanges) == 0 {
		m.onWrite = nil
		return
	}
	m.onWrite = onWrite
}

// noteWrite reports the write [addr, end) to the watcher. Callers guard with
// the watchLo/watchHi envelope so the common case (heap/stack stores) costs
// two compares and no call.
func (m *Memory) noteWrite(addr, end uint64) {
	for _, r := range m.watchRanges {
		lo, hi := r[0], r[1]
		if end <= lo || addr >= hi {
			continue
		}
		a, b := addr, end
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		for base := a &^ (pageSize - 1); base < b; base += pageSize {
			m.onWrite(base)
		}
	}
}

func (m *Memory) page(addr uint64, create bool) ([]byte, uint64) {
	base := addr &^ (pageSize - 1)
	e := &m.tlb[(addr>>pageShift)&(tlbSize-1)]
	if e.pg != nil && e.base == base {
		if m.ctr != nil {
			m.ctr.TLBHits++
		}
		return e.pg, addr - base
	}
	if m.ctr != nil {
		m.ctr.TLBMisses++
	}
	p, ok := m.pages[base]
	if !ok {
		if !create {
			return nil, 0
		}
		p = make([]byte, pageSize)
		m.pages[base] = p
	}
	e.base, e.pg = base, p
	return p, addr - base
}

// Mapped reports whether every byte of [addr, addr+n) is mapped. An empty
// range is trivially mapped; a range that wraps the top of the address space
// is not.
func (m *Memory) Mapped(addr, n uint64) bool {
	if n == 0 {
		return true
	}
	last := addr + n - 1
	if last < addr {
		return false
	}
	for p := addr >> pageShift; ; p++ {
		if _, ok := m.pages[p<<pageShift]; !ok {
			return false
		}
		if p == last>>pageShift {
			return true
		}
	}
}

// Map ensures [addr, addr+n) is mapped (zero-filled where new). A range that
// would wrap the top of the address space is clamped to it, so mapping the
// last page terminates instead of walking the whole address space.
func (m *Memory) Map(addr, n uint64) {
	if n == 0 {
		return
	}
	last := addr + n - 1
	if last < addr {
		last = ^uint64(0)
	}
	for a := addr &^ (pageSize - 1); ; a += pageSize {
		m.page(a, true)
		if a == last&^(pageSize-1) {
			break
		}
	}
}

// WriteBytes copies p into guest memory at addr, mapping as needed.
func (m *Memory) WriteBytes(addr uint64, p []byte) {
	if m.onWrite != nil && addr < m.watchHi && addr+uint64(len(p)) > m.watchLo {
		m.noteWrite(addr, addr+uint64(len(p)))
	}
	for len(p) > 0 {
		pg, off := m.page(addr, true)
		n := copy(pg[off:], p)
		p = p[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n bytes of guest memory at addr into a new slice. It
// returns false if any byte is unmapped.
func (m *Memory) ReadBytes(addr, n uint64) ([]byte, bool) {
	out := make([]byte, n)
	got := out
	for n > 0 {
		pg, off := m.page(addr, false)
		if pg == nil {
			return nil, false
		}
		c := copy(got, pg[off:])
		if uint64(c) > n {
			c = int(n)
		}
		got = got[c:]
		n -= uint64(c)
		addr += uint64(c)
	}
	return out, true
}

// readInto copies up to len(buf) bytes of guest memory at addr into buf
// without allocating, stopping at the first unmapped byte. It returns the
// number of bytes copied. The uncached fetch path uses it to pull one
// instruction window per step.
func (m *Memory) readInto(addr uint64, buf []byte) int {
	n := 0
	for n < len(buf) {
		pg, off := m.page(addr, false)
		if pg == nil {
			break
		}
		c := copy(buf[n:], pg[off:])
		n += c
		addr += uint64(c)
	}
	return n
}

// fast single-page accessors; fall back to byte-wise for page straddles.

// Load reads a little-endian value of the given width (1, 4, or 8 bytes).
func (m *Memory) Load(addr uint64, width int) (uint64, bool) {
	pg, off := m.page(addr, false)
	if pg != nil && off+uint64(width) <= pageSize {
		switch width {
		case 1:
			return uint64(pg[off]), true
		case 4:
			return uint64(binary.LittleEndian.Uint32(pg[off:])), true
		case 8:
			return binary.LittleEndian.Uint64(pg[off:]), true
		}
	}
	// Slow path: straddling or unmapped.
	b, ok := m.ReadBytes(addr, uint64(width))
	if !ok {
		return 0, false
	}
	switch width {
	case 1:
		return uint64(b[0]), true
	case 4:
		return uint64(binary.LittleEndian.Uint32(b)), true
	case 8:
		return binary.LittleEndian.Uint64(b), true
	}
	return 0, false
}

// Store writes a little-endian value of the given width. It returns false if
// the destination is unmapped (stores never implicitly map memory; only the
// loader, heap and stacks map pages — wild stores fault, as on hardware).
func (m *Memory) Store(addr uint64, v uint64, width int) bool {
	pg, off := m.page(addr, false)
	if pg != nil && off+uint64(width) <= pageSize {
		if m.onWrite != nil && addr < m.watchHi && addr+uint64(width) > m.watchLo {
			m.noteWrite(addr, addr+uint64(width))
		}
		switch width {
		case 1:
			pg[off] = byte(v)
		case 4:
			binary.LittleEndian.PutUint32(pg[off:], uint32(v))
		case 8:
			binary.LittleEndian.PutUint64(pg[off:], v)
		}
		return true
	}
	if !m.Mapped(addr, uint64(width)) {
		return false
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.WriteBytes(addr, b[:width]) // notifies the write watcher itself
	return true
}

// Width-specialized accessors: the TLB probe and bounds check inline into
// the caller, specialized to a constant width, so the dominant single-page
// access pays no call and no width switch. Every fallback (TLB miss, page
// straddle, watched store) routes through the generic path, which also owns
// all counter attribution for those cases — TLB hit/miss counts are
// identical to calling Load/Store directly.

func (m *Memory) load8(addr uint64) (uint64, bool) {
	e := &m.tlb[(addr>>pageShift)&(tlbSize-1)]
	off := addr & (pageSize - 1)
	if e.pg != nil && e.base == addr-off {
		if m.ctr != nil {
			m.ctr.TLBHits++
		}
		return uint64(e.pg[off]), true
	}
	return m.Load(addr, 1)
}

func (m *Memory) load32(addr uint64) (uint64, bool) {
	e := &m.tlb[(addr>>pageShift)&(tlbSize-1)]
	off := addr & (pageSize - 1)
	if e.pg != nil && e.base == addr-off && off <= pageSize-4 {
		if m.ctr != nil {
			m.ctr.TLBHits++
		}
		return uint64(binary.LittleEndian.Uint32(e.pg[off:])), true
	}
	return m.Load(addr, 4)
}

func (m *Memory) load64(addr uint64) (uint64, bool) {
	e := &m.tlb[(addr>>pageShift)&(tlbSize-1)]
	off := addr & (pageSize - 1)
	if e.pg != nil && e.base == addr-off && off <= pageSize-8 {
		if m.ctr != nil {
			m.ctr.TLBHits++
		}
		return binary.LittleEndian.Uint64(e.pg[off:]), true
	}
	return m.Load(addr, 8)
}

func (m *Memory) store8(addr, v uint64) bool {
	e := &m.tlb[(addr>>pageShift)&(tlbSize-1)]
	off := addr & (pageSize - 1)
	if e.pg != nil && e.base == addr-off &&
		(m.onWrite == nil || addr >= m.watchHi || addr+1 <= m.watchLo) {
		if m.ctr != nil {
			m.ctr.TLBHits++
		}
		e.pg[off] = byte(v)
		return true
	}
	return m.Store(addr, v, 1)
}

func (m *Memory) store32(addr, v uint64) bool {
	e := &m.tlb[(addr>>pageShift)&(tlbSize-1)]
	off := addr & (pageSize - 1)
	if e.pg != nil && e.base == addr-off && off <= pageSize-4 &&
		(m.onWrite == nil || addr >= m.watchHi || addr+4 <= m.watchLo) {
		if m.ctr != nil {
			m.ctr.TLBHits++
		}
		binary.LittleEndian.PutUint32(e.pg[off:], uint32(v))
		return true
	}
	return m.Store(addr, v, 4)
}

func (m *Memory) store64(addr, v uint64) bool {
	e := &m.tlb[(addr>>pageShift)&(tlbSize-1)]
	off := addr & (pageSize - 1)
	if e.pg != nil && e.base == addr-off && off <= pageSize-8 &&
		(m.onWrite == nil || addr >= m.watchHi || addr+8 <= m.watchLo) {
		if m.ctr != nil {
			m.ctr.TLBHits++
		}
		binary.LittleEndian.PutUint64(e.pg[off:], v)
		return true
	}
	return m.Store(addr, v, 8)
}

// cstringMax caps CString scans, as a corrupt guest pointer would otherwise
// walk the whole mapped address space.
const cstringMax = 1 << 16

// CString reads a NUL-terminated string at addr. It returns false if the
// string runs into unmapped memory or no NUL appears within cstringMax
// bytes. The scan walks whole pages rather than issuing one Load (and one
// page translation) per byte.
func (m *Memory) CString(addr uint64) (string, bool) {
	var out []byte
	remain := uint64(cstringMax)
	for remain > 0 {
		pg, off := m.page(addr, false)
		if pg == nil {
			return "", false
		}
		chunk := pg[off:]
		if uint64(len(chunk)) > remain {
			chunk = chunk[:remain]
		}
		if i := bytes.IndexByte(chunk, 0); i >= 0 {
			return string(append(out, chunk[:i]...)), true
		}
		out = append(out, chunk...)
		addr += uint64(len(chunk))
		remain -= uint64(len(chunk))
	}
	return "", false
}
