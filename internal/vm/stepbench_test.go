package vm_test

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/image"
	"repro/internal/mx"
	"repro/internal/vm"
)

// stepLoopFuel is the guest-instruction budget per benchmark iteration. The
// benchmark program loops forever; Run stops it by fuel exhaustion, so every
// iteration executes exactly this many instructions.
const stepLoopFuel = 1_000_000

// stepLoopImage builds an infinite hot loop that mixes the step loop's main
// costs: ALU ops, an indexed store + load through memory, a call/ret pair,
// and an always-taken conditional branch.
func stepLoopImage(tb testing.TB) *image.Image {
	tb.Helper()
	b := asm.NewBuilder("steploop")
	b.BSS("buf", 4096)
	b.Entry("main")
	b.Label("main")
	b.MovSym(mx.RBX, "buf")
	b.MovRI(mx.RCX, 0)
	b.MovRI(mx.RSI, 0)
	b.Label("loop")
	b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RCX, Imm: 1})
	b.I(mx.Inst{Op: mx.ANDRI, Dst: mx.RCX, Imm: 255})
	b.I(mx.Inst{Op: mx.STOREIDX64, Dst: mx.RSI, Base: mx.RBX, Idx: mx.RCX, Scale: 8})
	b.I(mx.Inst{Op: mx.LOADIDX64, Dst: mx.RDX, Base: mx.RBX, Idx: mx.RCX, Scale: 8})
	b.I(mx.Inst{Op: mx.ADDRR, Dst: mx.RSI, Src: mx.RDX})
	b.Call("leaf")
	b.I(mx.Inst{Op: mx.TESTRR, Dst: mx.RCX, Src: mx.RCX})
	b.Jcc(mx.CondNS, "loop") // rcx is in [0,255], so SF is clear: always taken
	b.Jmp("loop")
	b.Label("leaf")
	b.I(mx.Inst{Op: mx.XORRI, Dst: mx.RAX, Imm: 1})
	b.Ret()
	img, _, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

// runStepLoop executes the hot loop until fuel exhaustion under the given
// dispatch engine and returns the instruction count and wall-clock time.
func runStepLoop(tb testing.TB, img *image.Image, dispatch vm.DispatchMode, nocache bool) (uint64, time.Duration) {
	m, err := vm.New(img, 1)
	if err != nil {
		tb.Fatal(err)
	}
	m.SetDispatch(dispatch)
	if nocache {
		m.DisableCache()
	}
	start := time.Now()
	res := m.Run(stepLoopFuel)
	elapsed := time.Since(start)
	if res.Fault == nil || !strings.Contains(res.Fault.Reason, "fuel exhausted") {
		tb.Fatalf("expected fuel exhaustion, got fault=%v exit=%d", res.Fault, res.ExitCode)
	}
	return res.Insts, elapsed
}

// vmBenchEntries collects the latest measurement per (name, dispatch, cache)
// variant; TestMain serializes them to ../bench/BENCH_vm.json after the
// benchmarks run.
var (
	vmBenchMu      sync.Mutex
	vmBenchEntries = map[string]bench.VMBenchEntry{}
)

func recordVMBench(e bench.VMBenchEntry) {
	vmBenchMu.Lock()
	defer vmBenchMu.Unlock()
	key := e.Name + "/" + e.Dispatch
	if !e.Cache {
		key += "/nocache"
	}
	// testing.B re-runs each benchmark with increasing b.N; keep only the
	// final (largest, most precise) measurement per variant.
	vmBenchEntries[key] = e
}

// BenchmarkStepLoop measures interpreter throughput in guest instructions
// per second across the dispatch tiers: threaded code over predecoded pages
// (the default engine), the per-step switch interpreter over the same
// predecode cache (the -dispatch=switch escape hatch and PR 2 baseline), and
// switch dispatch with decode-every-step (-nocache, the pre-cache
// interpreter). The threaded-over-switch ratio is this PR's headline number
// in BENCH_vm.json.
func BenchmarkStepLoop(b *testing.B) {
	img := stepLoopImage(b)
	variants := []struct {
		name     string
		dispatch vm.DispatchMode
		nocache  bool
	}{
		{"threaded", vm.DispatchThreaded, false},
		{"switch", vm.DispatchSwitch, false},
		{"nocache", vm.DispatchSwitch, true},
	}
	for _, variant := range variants {
		b.Run(variant.name, func(b *testing.B) {
			var insts uint64
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				n, d := runStepLoop(b, img, variant.dispatch, variant.nocache)
				insts += n
				elapsed += d
			}
			b.ReportMetric(float64(insts)/elapsed.Seconds(), "insts/s")
		})
	}
	// Recording pass: the sub-benchmarks above are the human-readable
	// display, but they measure the variants sequentially, seconds apart —
	// on a busy or frequency-scaled host the machine's throughput drifts
	// between them and the recorded ratios inherit that drift. The entries
	// written to BENCH_vm.json instead come from this round-robin pass,
	// which interleaves the variants so any drift biases all of them
	// equally and the speedup ratios stay meaningful.
	accs := make([]struct {
		insts   uint64
		elapsed time.Duration
	}, len(variants))
	const rounds = 24
	for r := 0; r < rounds; r++ {
		for vi, variant := range variants {
			n, d := runStepLoop(b, img, variant.dispatch, variant.nocache)
			if r == 0 {
				continue // warmup round: cold caches and branch predictors
			}
			accs[vi].insts += n
			accs[vi].elapsed += d
		}
	}
	for vi, variant := range variants {
		recordVMBench(bench.VMBenchEntry{
			Name:        "StepLoop",
			Dispatch:    variant.dispatch.String(),
			Cache:       !variant.nocache,
			Insts:       accs[vi].insts,
			Seconds:     accs[vi].elapsed.Seconds(),
			InstsPerSec: float64(accs[vi].insts) / accs[vi].elapsed.Seconds(),
		})
	}
}

// TestMain emits the regenerated BENCH_vm.json when benchmarks ran (the test
// binary's working directory is this package, so the committed record at
// internal/bench/BENCH_vm.json is overwritten in place). Plain `go test`
// runs record nothing and write nothing.
func TestMain(m *testing.M) {
	code := m.Run()
	vmBenchMu.Lock()
	entries := make([]bench.VMBenchEntry, 0, len(vmBenchEntries))
	for _, e := range vmBenchEntries {
		entries = append(entries, e)
	}
	vmBenchMu.Unlock()
	if len(entries) > 0 {
		if err := bench.WriteVMBench("../bench/BENCH_vm.json", entries); err != nil {
			os.Stderr.WriteString("BENCH_vm.json: " + err.Error() + "\n")
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}
