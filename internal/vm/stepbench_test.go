package vm_test

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/image"
	"repro/internal/mx"
	"repro/internal/vm"
)

// stepLoopFuel is the guest-instruction budget per benchmark iteration. The
// benchmark program loops forever; Run stops it by fuel exhaustion, so every
// iteration executes exactly this many instructions.
const stepLoopFuel = 1_000_000

// stepLoopImage builds an infinite hot loop that mixes the step loop's main
// costs: ALU ops, an indexed store + load through memory, a call/ret pair,
// and an always-taken conditional branch.
func stepLoopImage(tb testing.TB) *image.Image {
	tb.Helper()
	b := asm.NewBuilder("steploop")
	b.BSS("buf", 4096)
	b.Entry("main")
	b.Label("main")
	b.MovSym(mx.RBX, "buf")
	b.MovRI(mx.RCX, 0)
	b.MovRI(mx.RSI, 0)
	b.Label("loop")
	b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RCX, Imm: 1})
	b.I(mx.Inst{Op: mx.ANDRI, Dst: mx.RCX, Imm: 255})
	b.I(mx.Inst{Op: mx.STOREIDX64, Dst: mx.RSI, Base: mx.RBX, Idx: mx.RCX, Scale: 8})
	b.I(mx.Inst{Op: mx.LOADIDX64, Dst: mx.RDX, Base: mx.RBX, Idx: mx.RCX, Scale: 8})
	b.I(mx.Inst{Op: mx.ADDRR, Dst: mx.RSI, Src: mx.RDX})
	b.Call("leaf")
	b.I(mx.Inst{Op: mx.TESTRR, Dst: mx.RCX, Src: mx.RCX})
	b.Jcc(mx.CondNS, "loop") // rcx is in [0,255], so SF is clear: always taken
	b.Jmp("loop")
	b.Label("leaf")
	b.I(mx.Inst{Op: mx.XORRI, Dst: mx.RAX, Imm: 1})
	b.Ret()
	img, _, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

// runStepLoop executes the hot loop until fuel exhaustion and returns the
// instruction count and wall-clock time of the run.
func runStepLoop(tb testing.TB, img *image.Image, nocache bool) (uint64, time.Duration) {
	m, err := vm.New(img, 1)
	if err != nil {
		tb.Fatal(err)
	}
	if nocache {
		m.DisableCache()
	}
	start := time.Now()
	res := m.Run(stepLoopFuel)
	elapsed := time.Since(start)
	if res.Fault == nil || !strings.Contains(res.Fault.Reason, "fuel exhausted") {
		tb.Fatalf("expected fuel exhaustion, got fault=%v exit=%d", res.Fault, res.ExitCode)
	}
	return res.Insts, elapsed
}

// vmBenchEntries collects the latest measurement per (name, cache) variant;
// TestMain serializes them to BENCH_vm.json after the benchmarks run.
var (
	vmBenchMu      sync.Mutex
	vmBenchEntries = map[string]bench.VMBenchEntry{}
)

func recordVMBench(e bench.VMBenchEntry) {
	vmBenchMu.Lock()
	defer vmBenchMu.Unlock()
	key := e.Name
	if !e.Cache {
		key += "/nocache"
	}
	// testing.B re-runs each benchmark with increasing b.N; keep only the
	// final (largest, most precise) measurement per variant.
	vmBenchEntries[key] = e
}

// BenchmarkStepLoop measures interpreter throughput in guest instructions
// per second, with the predecoded instruction cache on (the default engine)
// and off (the decode-every-step differential path, i.e. the pre-cache
// interpreter). The ratio between the two is the headline speedup recorded
// in BENCH_vm.json.
func BenchmarkStepLoop(b *testing.B) {
	img := stepLoopImage(b)
	for _, variant := range []struct {
		name    string
		nocache bool
	}{{"cache", false}, {"nocache", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var insts uint64
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				n, d := runStepLoop(b, img, variant.nocache)
				insts += n
				elapsed += d
			}
			ips := float64(insts) / elapsed.Seconds()
			b.ReportMetric(ips, "insts/s")
			recordVMBench(bench.VMBenchEntry{
				Name:        "StepLoop",
				Cache:       !variant.nocache,
				Insts:       insts,
				Seconds:     elapsed.Seconds(),
				InstsPerSec: ips,
			})
		})
	}
}

// TestMain emits BENCH_vm.json when benchmarks ran (the file lands in this
// package directory, the test binary's working directory). Plain `go test`
// runs record nothing and write nothing.
func TestMain(m *testing.M) {
	code := m.Run()
	vmBenchMu.Lock()
	entries := make([]bench.VMBenchEntry, 0, len(vmBenchEntries))
	for _, e := range vmBenchEntries {
		entries = append(entries, e)
	}
	vmBenchMu.Unlock()
	if len(entries) > 0 {
		if err := bench.WriteVMBench("BENCH_vm.json", entries); err != nil {
			os.Stderr.WriteString("BENCH_vm.json: " + err.Error() + "\n")
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}
