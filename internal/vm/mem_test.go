package vm

import (
	"strings"
	"testing"
)

func TestMappedZeroLength(t *testing.T) {
	m := NewMemory()
	if !m.Mapped(0x1234, 0) {
		t.Fatal("Mapped(addr, 0) = false, want true (empty range)")
	}
	if len(m.pages) != 0 {
		t.Fatalf("Mapped(addr, 0) materialized %d page(s)", len(m.pages))
	}
}

func TestMappedOverflow(t *testing.T) {
	m := NewMemory()
	last := ^uint64(0)

	// addr+n wraps past zero: must return false, and must terminate.
	if m.Mapped(last-10, 100) {
		t.Fatal("Mapped over wrapped range = true, want false")
	}
	if m.Mapped(last, 2) {
		t.Fatal("Mapped(^0, 2) = true, want false")
	}

	// The very last page of the address space is still usable.
	m.Map(last&^(pageSize-1), 1)
	if !m.Mapped(last-10, 11) {
		t.Fatal("Mapped tail of last page = false, want true")
	}
	if !m.Mapped(last, 1) {
		t.Fatal("Mapped(^0, 1) on mapped page = false, want true")
	}
	if m.Mapped(last, 2) {
		t.Fatal("Mapped(^0, 2) = true, want false (range wraps)")
	}
}

func TestMappedSpansPages(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, 2*pageSize)
	if !m.Mapped(0x1000, 2*pageSize) {
		t.Fatal("fully mapped range reported unmapped")
	}
	if !m.Mapped(0x1000+pageSize-4, 8) {
		t.Fatal("range straddling two mapped pages reported unmapped")
	}
	if m.Mapped(0x1000+2*pageSize-4, 8) {
		t.Fatal("range leaking past the mapping reported mapped")
	}
	if m.Mapped(0x0, 8) {
		t.Fatal("unmapped low page reported mapped")
	}
}

func TestCStringSpansPages(t *testing.T) {
	m := NewMemory()
	base := uint64(0x10000)
	m.Map(base, 2*pageSize)
	want := strings.Repeat("x", 100) + "end"
	addr := base + pageSize - 50 // string crosses the page boundary
	m.WriteBytes(addr, append([]byte(want), 0))
	got, ok := m.CString(addr)
	if !ok || got != want {
		t.Fatalf("CString across pages = %q, %v; want %q, true", got, ok, want)
	}
}

func TestCStringUnmapped(t *testing.T) {
	m := NewMemory()
	base := uint64(0x10000)
	m.Map(base, pageSize)
	// Fill the whole page with non-NUL bytes: the scan must stop at the
	// unmapped successor page and report failure, not fault or spin.
	m.WriteBytes(base, []byte(strings.Repeat("a", pageSize)))
	if s, ok := m.CString(base); ok {
		t.Fatalf("CString into unmapped page = %q, true; want false", s)
	}
	if _, ok := m.CString(0xdead0000); ok {
		t.Fatal("CString at unmapped address = true, want false")
	}
}

func TestCStringLengthCap(t *testing.T) {
	m := NewMemory()
	base := uint64(0x10000)
	m.Map(base, cstringMax+pageSize)

	// NUL at exactly cstringMax-1: longest accepted string.
	m.WriteBytes(base, []byte(strings.Repeat("a", cstringMax-1)))
	m.Store(base+cstringMax-1, 0, 1)
	s, ok := m.CString(base)
	if !ok || len(s) != cstringMax-1 {
		t.Fatalf("CString at cap = len %d, %v; want %d, true", len(s), ok, cstringMax-1)
	}

	// First NUL at cstringMax: over the cap, rejected.
	m.Store(base+cstringMax-1, 'a', 1)
	m.Store(base+cstringMax, 0, 1)
	if s, ok := m.CString(base); ok {
		t.Fatalf("CString past cap = len %d, true; want false", len(s))
	}
}

// TestTLBConflict exercises direct-mapped TLB eviction: two pages whose
// page numbers collide in the same TLB slot, accessed alternately.
func TestTLBConflict(t *testing.T) {
	m := NewMemory()
	a := uint64(0x100000)
	b := a + tlbSize*pageSize // same slot index as a
	m.Map(a, pageSize)
	m.Map(b, pageSize)
	for i := 0; i < 8; i++ {
		m.Store(a+8, uint64(100+i), 8)
		m.Store(b+8, uint64(200+i), 8)
		va, ok := m.Load(a+8, 8)
		if !ok || va != uint64(100+i) {
			t.Fatalf("iter %d: page a read %d, %v; want %d", i, va, ok, 100+i)
		}
		vb, ok := m.Load(b+8, 8)
		if !ok || vb != uint64(200+i) {
			t.Fatalf("iter %d: page b read %d, %v; want %d", i, vb, ok, 200+i)
		}
	}
}

// TestWriteWatch pins the code-write watch plumbing the instruction cache
// relies on: page-granular callbacks for watched ranges, no callbacks for
// writes outside them, and straddling writes reported once per page.
func TestWriteWatch(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, 4*pageSize)
	var hits []uint64
	m.watchWrites([][2]uint64{{0x2000, 0x4000}}, func(pageBase uint64) {
		hits = append(hits, pageBase)
	})

	m.Store(0x1000, 1, 8) // below the watched range
	if len(hits) != 0 {
		t.Fatalf("unwatched store fired %v", hits)
	}
	m.Store(0x2008, 1, 8) // inside
	m.WriteBytes(0x2ffc, make([]byte, 8)) // straddles 0x2000->0x3000
	m.Store(0x4800, 1, 8) // above
	want := []uint64{0x2000, 0x2000, 0x3000}
	if len(hits) != len(want) {
		t.Fatalf("watch hits = %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("watch hits = %v, want %v", hits, want)
		}
	}
}
