package vm_test

import (
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/mx"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// dispatchModes is the engine matrix for differential dispatch testing.
var dispatchModes = []vm.DispatchMode{vm.DispatchSwitch, vm.DispatchThreaded}

// TestDispatchIdentity proves the threaded engine is invisible: for every
// workload and every scheduler seed, switch and threaded dispatch produce
// identical Results (exit code, cycles, instruction count, output, fault).
// With machine counters enabled the full Counters snapshot must also match
// bit for bit — instruction totals, op-class histogram, preemptions, cache
// and TLB attribution, per-thread cycles — which pins the block-level
// accounting and the fused-pair/budget interactions to the per-step oracle.
// The counters-off leg exercises the uninstrumented fast path (inline
// micro-ops, flat runs, promoted control flow), the counters-on leg the
// eager counted path.
func TestDispatchIdentity(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			img, err := w.Compile(2)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range identitySeeds {
				for _, counted := range []bool{false, true} {
					in := w.Input()
					exec := func(mode vm.DispatchMode) (vm.Result, *vm.Counters) {
						m, err := vm.NewWithExts(img, seed, in.Exts)
						if err != nil {
							t.Fatal(err)
						}
						if in.Data != nil {
							m.SetInput(in.Data)
						}
						m.SetDispatch(mode)
						var c *vm.Counters
						if counted {
							c = m.EnableCounters()
						}
						return m.Run(bench.Fuel), c
					}
					sw, swc := exec(vm.DispatchSwitch)
					th, thc := exec(vm.DispatchThreaded)
					if !sameResult(sw, th) {
						t.Fatalf("seed %d counted=%v: dispatch engines diverge:\n  switch:   %+v\n  threaded: %+v",
							seed, counted, sw, th)
					}
					if counted && !reflect.DeepEqual(swc, thc) {
						t.Fatalf("seed %d: counters diverge:\n  switch:   %+v\n  threaded: %+v",
							seed, swc, thc)
					}
				}
			}
		})
	}
}

// TestDispatchSelfModifyingStore repeats the self-modifying-code contract
// under both dispatch engines: threaded state (handler table, fused pairs,
// flat-run metadata) compiled from stale bytes must be dropped when the
// guest stores over its code. The patched instruction straddles a page
// boundary with the store landing in the second page, so this also covers
// the predecessor-page invalidation rule for compiled dispatch state.
func TestDispatchSelfModifyingStore(t *testing.T) {
	var results []vm.Result
	for _, mode := range dispatchModes {
		b := asm.NewBuilder("selfmod")
		for i := 0; i < pagePad; i++ {
			b.I(mx.Inst{Op: mx.NOP})
		}
		b.Label("patch")
		b.MovRI(mx.RAX, 111)
		b.Ret()
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RBX, "patch")
		b.Call("patch") // first execution compiles the page: rax=111
		b.I(mx.Inst{Op: mx.STOREI8, Base: mx.RBX, Disp: 2, Imm: 222})
		b.Call("patch") // must observe the new bytes: rax=222
		b.MovRR(mx.RDI, mx.RAX)
		b.CallExt("exit")
		img, _, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(img, 1)
		if err != nil {
			t.Fatal(err)
		}
		m.SetDispatch(mode)
		res := m.Run(1_000_000)
		if res.Fault != nil {
			t.Fatalf("%v: fault: %v", mode, res.Fault)
		}
		if res.ExitCode != 222 {
			t.Fatalf("%v: exit %d, want 222 (stale compiled code executed)", mode, res.ExitCode)
		}
		results = append(results, res)
	}
	if !sameResult(results[0], results[1]) {
		t.Fatalf("dispatch engines diverge: %+v vs %+v", results[0], results[1])
	}
}

// TestDispatchFlatRunSelfPatch stores over the instruction that immediately
// follows the store in straight-line code. Under threaded dispatch both
// instructions can sit in one precomputed flat run, so the engine must
// observe the invalidation mid-run and refetch before executing the patched
// instruction: executing the stale immediate (111) instead of the patched
// one (222) means a flat run outlived its page's bytes.
func TestDispatchFlatRunSelfPatch(t *testing.T) {
	var results []vm.Result
	for _, mode := range dispatchModes {
		b := asm.NewBuilder("flatpatch")
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RBX, "tgt")
		// Patch the low immediate byte (tgt+2) of the MOVRI directly below.
		b.I(mx.Inst{Op: mx.STOREI8, Base: mx.RBX, Disp: 2, Imm: 222})
		b.Label("tgt")
		b.MovRI(mx.RDI, 111)
		b.CallExt("exit")
		img, _, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(img, 1)
		if err != nil {
			t.Fatal(err)
		}
		m.SetDispatch(mode)
		res := m.Run(1_000_000)
		if res.Fault != nil {
			t.Fatalf("%v: fault: %v", mode, res.Fault)
		}
		if res.ExitCode != 222 {
			t.Fatalf("%v: exit %d, want 222 (flat run executed stale bytes)", mode, res.ExitCode)
		}
		results = append(results, res)
	}
	if !sameResult(results[0], results[1]) {
		t.Fatalf("dispatch engines diverge: %+v vs %+v", results[0], results[1])
	}
}

// TestDispatchFusedPairsAtSliceBoundaries runs two threads through tight
// loops whose bodies are dense flag-setter+JCC fusion candidates. The
// scheduler quantum (41) is odd and coprime to the loop body length, so over
// thousands of iterations the step budget expires at every phase of the body
// — in particular between a flag setter and its branch, where the threaded
// engine must retire exactly one instruction via the unfused handler rather
// than let a superinstruction overrun the slice. Any overrun shifts every
// later preemption boundary and shows up as diverging Counters.
func TestDispatchFusedPairsAtSliceBoundaries(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.BSS("sum", 8)
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RDI, "w")
		b.MovRI(mx.RSI, 0)
		b.CallExt("thread_create")
		b.MovRR(mx.R13, mx.RAX)
		b.MovSym(mx.RDI, "w")
		b.MovRI(mx.RSI, 0)
		b.CallExt("thread_create")
		b.MovRR(mx.R14, mx.RAX)
		b.MovRR(mx.RDI, mx.R13)
		b.CallExt("thread_join")
		b.MovRR(mx.RDI, mx.R14)
		b.CallExt("thread_join")
		b.MovSym(mx.RBX, "sum")
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDI, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.ANDRI, Dst: mx.RDI, Imm: 255})
		b.CallExt("exit")

		b.Label("w")
		b.MovRI(mx.R12, 0)
		b.MovRI(mx.RAX, 0)
		b.Label("wl")
		b.I(mx.Inst{Op: mx.TESTRR, Dst: mx.R12, Src: mx.R12})
		b.Jcc(mx.CondS, "s1") // never taken: r12 stays non-negative
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RAX, Imm: 3})
		b.Label("s1")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.R12, Imm: 700})
		b.Jcc(mx.CondG, "s2") // taken for the tail of the loop
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RAX, Imm: 1})
		b.Label("s2")
		b.I(mx.Inst{Op: mx.SUBRI, Dst: mx.RAX, Imm: 1}) // SUB+JCC fusion
		b.Jcc(mx.CondE, "s3")
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RAX, Imm: 2})
		b.Label("s3")
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 1})
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.R12, Imm: 1500})
		b.Jcc(mx.CondL, "wl") // backward fused pair
		b.MovSym(mx.RBX, "sum")
		b.I(mx.Inst{Op: mx.LOCKADD, Dst: mx.RAX, Base: mx.RBX})
		b.MovRI(mx.RAX, 0)
		b.Ret()
	})
	for _, seed := range []int64{1, 2, 3, 5, 9} {
		for _, counted := range []bool{false, true} {
			exec := func(mode vm.DispatchMode) (vm.Result, *vm.Counters) {
				m, err := vm.New(img, seed)
				if err != nil {
					t.Fatal(err)
				}
				m.SetDispatch(mode)
				var c *vm.Counters
				if counted {
					c = m.EnableCounters()
				}
				return m.Run(50_000_000), c
			}
			sw, swc := exec(vm.DispatchSwitch)
			th, thc := exec(vm.DispatchThreaded)
			if sw.Fault != nil {
				t.Fatalf("seed %d: fault: %v", seed, sw.Fault)
			}
			if !sameResult(sw, th) {
				t.Fatalf("seed %d counted=%v: dispatch engines diverge:\n  switch:   %+v\n  threaded: %+v",
					seed, counted, sw, th)
			}
			if counted && !reflect.DeepEqual(swc, thc) {
				t.Fatalf("seed %d: counters diverge:\n  switch:   %+v\n  threaded: %+v",
					seed, swc, thc)
			}
		}
	}
}
