package vm_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/mx"
	"repro/internal/vm"
)

func build(t *testing.T, f func(b *asm.Builder)) *image.Image {
	t.Helper()
	b := asm.NewBuilder("t")
	f(b)
	img, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func run(t *testing.T, img *image.Image) vm.Result {
	t.Helper()
	m, err := vm.New(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run(50_000_000)
}

func mustExit(t *testing.T, res vm.Result, code int) {
	t.Helper()
	if res.Fault != nil {
		t.Fatalf("fault: %v (output %q)", res.Fault, res.Output)
	}
	if res.ExitCode != code {
		t.Fatalf("exit code %d, want %d (output %q)", res.ExitCode, code, res.Output)
	}
}

func TestArithmeticAndExit(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("main")
		b.Label("main")
		b.MovRI(mx.RAX, 6)
		b.I(mx.Inst{Op: mx.IMULRI, Dst: mx.RAX, Imm: 7})
		b.MovRR(mx.RDI, mx.RAX)
		b.I(mx.Inst{Op: mx.SUBRI, Dst: mx.RDI, Imm: 2})
		b.CallExt("exit")
	})
	mustExit(t, run(t, img), 40)
}

func TestMainReturnIsExitCode(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("main")
		b.Label("main")
		b.MovRI(mx.RAX, 13)
		b.Ret()
	})
	mustExit(t, run(t, img), 13)
}

func TestCallRetAndStack(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("main")
		b.Label("main")
		b.MovRI(mx.RDI, 20)
		b.Call("double")
		b.MovRR(mx.RDI, mx.RAX)
		b.CallExt("exit")
		b.Label("double")
		b.I(mx.Inst{Op: mx.PUSH, Dst: mx.RBX})
		b.MovRR(mx.RBX, mx.RDI)
		b.I(mx.Inst{Op: mx.ADDRR, Dst: mx.RBX, Src: mx.RBX})
		b.MovRR(mx.RAX, mx.RBX)
		b.I(mx.Inst{Op: mx.POP, Dst: mx.RBX})
		b.Ret()
	})
	mustExit(t, run(t, img), 40)
}

func TestLoopAndBranches(t *testing.T) {
	// sum 1..10 == 55
	img := build(t, func(b *asm.Builder) {
		b.Entry("main")
		b.Label("main")
		b.MovRI(mx.RAX, 0)
		b.MovRI(mx.RCX, 1)
		b.Label("loop")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.RCX, Imm: 10})
		b.Jcc(mx.CondG, "done")
		b.I(mx.Inst{Op: mx.ADDRR, Dst: mx.RAX, Src: mx.RCX})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RCX, Imm: 1})
		b.Jmp("loop")
		b.Label("done")
		b.MovRR(mx.RDI, mx.RAX)
		b.CallExt("exit")
	})
	mustExit(t, run(t, img), 55)
}

func TestGlobalDataAndBSS(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.DataLabel("g")
		b.DataQuad(100)
		b.BSS("scratch", 64)
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RBX, "g")
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RAX, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RAX, Imm: 1})
		b.MovSym(mx.RBX, "scratch")
		b.I(mx.Inst{Op: mx.STORE64, Dst: mx.RAX, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDI, Base: mx.RBX})
		b.CallExt("exit")
	})
	mustExit(t, run(t, img), 101)
}

func TestJumpTable(t *testing.T) {
	// Dispatch on rdi=2 through a jump table in .rodata.
	img := build(t, func(b *asm.Builder) {
		b.RodataLabel("table")
		b.RodataAddr("case0")
		b.RodataAddr("case1")
		b.RodataAddr("case2")
		b.Entry("main")
		b.Label("main")
		b.MovRI(mx.RDI, 2)
		b.MovSym(mx.RBX, "table")
		b.I(mx.Inst{Op: mx.JMPM, Base: mx.RBX, Idx: mx.RDI})
		b.Label("case0")
		b.MovRI(mx.RDI, 10)
		b.Jmp("out")
		b.Label("case1")
		b.MovRI(mx.RDI, 11)
		b.Jmp("out")
		b.Label("case2")
		b.MovRI(mx.RDI, 12)
		b.Label("out")
		b.CallExt("exit")
	})
	mustExit(t, run(t, img), 12)
}

func TestIndirectCallThroughRegister(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RBX, "target")
		b.I(mx.Inst{Op: mx.CALLR, Dst: mx.RBX})
		b.MovRR(mx.RDI, mx.RAX)
		b.CallExt("exit")
		b.Label("target")
		b.MovRI(mx.RAX, 77)
		b.Ret()
	})
	mustExit(t, run(t, img), 77)
}

func TestPrintOutput(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.RodataLabel("msg")
		b.Rodata(append([]byte("hello\n"), 0))
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RDI, "msg")
		b.CallExt("print_str")
		b.MovRI(mx.RDI, 42)
		b.CallExt("print_i64")
		b.MovRI(mx.RDI, 0)
		b.CallExt("exit")
	})
	res := run(t, img)
	mustExit(t, res, 0)
	if res.Output != "hello\n42\n" {
		t.Fatalf("output %q", res.Output)
	}
}

func TestThreadsAtomicCounter(t *testing.T) {
	// 4 threads each lock-add 1000 to a counter; result must be 4000.
	img := build(t, func(b *asm.Builder) {
		b.BSS("counter", 8)
		b.BSS("tids", 64)
		b.Entry("main")
		b.Label("main")
		// spawn 4 threads
		b.MovRI(mx.R12, 0)
		b.Label("spawn")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.R12, Imm: 4})
		b.Jcc(mx.CondGE, "joinloop")
		b.MovSym(mx.RDI, "worker")
		b.MovRI(mx.RSI, 0)
		b.CallExt("thread_create")
		b.MovSym(mx.RBX, "tids")
		b.I(mx.Inst{Op: mx.STOREIDX64, Dst: mx.RAX, Base: mx.RBX, Idx: mx.R12, Scale: 8})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 1})
		b.Jmp("spawn")
		b.Label("joinloop")
		b.MovRI(mx.R12, 0)
		b.Label("join1")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.R12, Imm: 4})
		b.Jcc(mx.CondGE, "report")
		b.MovSym(mx.RBX, "tids")
		b.I(mx.Inst{Op: mx.LOADIDX64, Dst: mx.RDI, Base: mx.RBX, Idx: mx.R12, Scale: 8})
		b.CallExt("thread_join")
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 1})
		b.Jmp("join1")
		b.Label("report")
		b.MovSym(mx.RBX, "counter")
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDI, Base: mx.RBX})
		b.CallExt("exit")

		b.Label("worker")
		b.MovRI(mx.RCX, 0)
		b.MovSym(mx.RBX, "counter")
		b.MovRI(mx.RDX, 1)
		b.Label("wloop")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.RCX, Imm: 1000})
		b.Jcc(mx.CondGE, "wdone")
		b.I(mx.Inst{Op: mx.LOCKADD, Dst: mx.RDX, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RCX, Imm: 1})
		b.Jmp("wloop")
		b.Label("wdone")
		b.MovRI(mx.RAX, 0)
		b.Ret()
	})
	mustExit(t, run(t, img), 4000)
}

func TestSpinlockWithCmpxchg(t *testing.T) {
	// Two threads increment a non-atomic counter under a cmpxchg spinlock.
	img := build(t, func(b *asm.Builder) {
		b.BSS("lock", 8)
		b.BSS("count", 8)
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RDI, "worker")
		b.MovRI(mx.RSI, 0)
		b.CallExt("thread_create")
		b.MovRR(mx.R13, mx.RAX)
		b.MovSym(mx.RDI, "worker")
		b.CallExt("thread_create")
		b.MovRR(mx.R14, mx.RAX)
		b.MovRR(mx.RDI, mx.R13)
		b.CallExt("thread_join")
		b.MovRR(mx.RDI, mx.R14)
		b.CallExt("thread_join")
		b.MovSym(mx.RBX, "count")
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDI, Base: mx.RBX})
		b.CallExt("exit")

		b.Label("worker")
		b.MovRI(mx.R12, 0)
		b.Label("iter")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.R12, Imm: 500})
		b.Jcc(mx.CondGE, "done")
		// acquire: while (!cas(lock, 0, 1)) spin
		b.Label("acquire")
		b.MovRI(mx.RAX, 0)
		b.MovRI(mx.RCX, 1)
		b.MovSym(mx.RBX, "lock")
		b.I(mx.Inst{Op: mx.CMPXCHG, Dst: mx.RCX, Base: mx.RBX})
		b.Jcc(mx.CondNE, "acquire")
		// critical section: count++ (plain, racy without the lock)
		b.MovSym(mx.RBX, "count")
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDX, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RDX, Imm: 1})
		b.I(mx.Inst{Op: mx.STORE64, Dst: mx.RDX, Base: mx.RBX})
		// release
		b.MovSym(mx.RBX, "lock")
		b.I(mx.Inst{Op: mx.STOREI64, Base: mx.RBX, Imm: 0})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 1})
		b.Jmp("iter")
		b.Label("done")
		b.MovRI(mx.RAX, 0)
		b.Ret()
	})
	mustExit(t, run(t, img), 1000)
}

func TestQsortCallback(t *testing.T) {
	// Sort 8 quads with a guest comparator, then verify ordering in guest.
	img := build(t, func(b *asm.Builder) {
		b.DataLabel("arr")
		for _, v := range []uint64{5, 3, 8, 1, 9, 2, 7, 4} {
			b.DataQuad(v)
		}
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RDI, "arr")
		b.MovRI(mx.RSI, 8)
		b.MovRI(mx.RDX, 8)
		b.MovSym(mx.RCX, "cmp")
		b.CallExt("qsort")
		// check sorted: fail fast with exit(100+i)
		b.MovRI(mx.R12, 0)
		b.Label("chk")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.R12, Imm: 7})
		b.Jcc(mx.CondGE, "ok")
		b.MovSym(mx.RBX, "arr")
		b.I(mx.Inst{Op: mx.LOADIDX64, Dst: mx.RAX, Base: mx.RBX, Idx: mx.R12, Scale: 8})
		b.MovRR(mx.R13, mx.R12)
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R13, Imm: 1})
		b.I(mx.Inst{Op: mx.LOADIDX64, Dst: mx.RCX, Base: mx.RBX, Idx: mx.R13, Scale: 8})
		b.I(mx.Inst{Op: mx.CMPRR, Dst: mx.RAX, Src: mx.RCX})
		b.Jcc(mx.CondG, "bad")
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 1})
		b.Jmp("chk")
		b.Label("bad")
		b.MovRI(mx.RDI, 100)
		b.CallExt("exit")
		b.Label("ok")
		// exit(first + last) = 1 + 9 = 10
		b.MovSym(mx.RBX, "arr")
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDI, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RAX, Base: mx.RBX, Disp: 56})
		b.I(mx.Inst{Op: mx.ADDRR, Dst: mx.RDI, Src: mx.RAX})
		b.CallExt("exit")

		b.Label("cmp")
		// return *(i64*)a - *(i64*)b
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RAX, Base: mx.RDI})
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RCX, Base: mx.RSI})
		b.I(mx.Inst{Op: mx.SUBRR, Dst: mx.RAX, Src: mx.RCX})
		b.Ret()
	})
	mustExit(t, run(t, img), 10)
}

func TestOmpParallelFor(t *testing.T) {
	// Workers atomically add their chunk sums of [0,100); total = 4950.
	img := build(t, func(b *asm.Builder) {
		b.BSS("total", 8)
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RDI, "body")
		b.MovRI(mx.RSI, 0)
		b.MovRI(mx.RDX, 100)
		b.MovRI(mx.RCX, 0)
		b.MovRI(mx.R8, 4)
		b.CallExt("omp_parallel_for")
		b.MovSym(mx.RBX, "total")
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDI, Base: mx.RBX})
		b.CallExt("exit")

		b.Label("body") // body(lo, hi, arg)
		b.MovRI(mx.RAX, 0)
		b.Label("bl")
		b.I(mx.Inst{Op: mx.CMPRR, Dst: mx.RDI, Src: mx.RSI})
		b.Jcc(mx.CondGE, "bdone")
		b.I(mx.Inst{Op: mx.ADDRR, Dst: mx.RAX, Src: mx.RDI})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RDI, Imm: 1})
		b.Jmp("bl")
		b.Label("bdone")
		b.MovSym(mx.RBX, "total")
		b.I(mx.Inst{Op: mx.LOCKADD, Dst: mx.RAX, Base: mx.RBX})
		b.MovRI(mx.RAX, 0)
		b.Ret()
	})
	mustExit(t, run(t, img), 4950)
}

func TestMutexProtectsCounter(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.BSS("mu", 8)
		b.BSS("n", 8)
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RDI, "w")
		b.MovRI(mx.RSI, 0)
		b.CallExt("thread_create")
		b.MovRR(mx.R13, mx.RAX)
		b.MovSym(mx.RDI, "w")
		b.CallExt("thread_create")
		b.MovRR(mx.R14, mx.RAX)
		b.MovRR(mx.RDI, mx.R13)
		b.CallExt("thread_join")
		b.MovRR(mx.RDI, mx.R14)
		b.CallExt("thread_join")
		b.MovSym(mx.RBX, "n")
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDI, Base: mx.RBX})
		b.CallExt("exit")

		b.Label("w")
		b.MovRI(mx.R12, 0)
		b.Label("l")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.R12, Imm: 300})
		b.Jcc(mx.CondGE, "e")
		b.MovSym(mx.RDI, "mu")
		b.CallExt("mutex_lock")
		b.MovSym(mx.RBX, "n")
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDX, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RDX, Imm: 1})
		b.I(mx.Inst{Op: mx.STORE64, Dst: mx.RDX, Base: mx.RBX})
		b.MovSym(mx.RDI, "mu")
		b.CallExt("mutex_unlock")
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 1})
		b.Jmp("l")
		b.Label("e")
		b.MovRI(mx.RAX, 0)
		b.Ret()
	})
	mustExit(t, run(t, img), 600)
}

func TestTLSIsPerThread(t *testing.T) {
	// Each thread writes its arg to TLS[0] then reads it back after yielding.
	img := build(t, func(b *asm.Builder) {
		b.SetTLSSize(64)
		b.BSS("sum", 8)
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RDI, "w")
		b.MovRI(mx.RSI, 5)
		b.CallExt("thread_create")
		b.MovRR(mx.R13, mx.RAX)
		b.MovSym(mx.RDI, "w")
		b.MovRI(mx.RSI, 9)
		b.CallExt("thread_create")
		b.MovRR(mx.R14, mx.RAX)
		b.MovRR(mx.RDI, mx.R13)
		b.CallExt("thread_join")
		b.MovRR(mx.RDI, mx.R14)
		b.CallExt("thread_join")
		b.MovSym(mx.RBX, "sum")
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDI, Base: mx.RBX})
		b.CallExt("exit")

		b.Label("w") // arg in rdi
		b.I(mx.Inst{Op: mx.TLSBASE, Dst: mx.RBX})
		b.I(mx.Inst{Op: mx.STORE64, Dst: mx.RDI, Base: mx.RBX})
		b.CallExt("sched_yield")
		b.I(mx.Inst{Op: mx.TLSBASE, Dst: mx.RBX})
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RAX, Base: mx.RBX})
		b.MovSym(mx.RCX, "sum")
		b.I(mx.Inst{Op: mx.LOCKADD, Dst: mx.RAX, Base: mx.RCX})
		b.MovRI(mx.RAX, 0)
		b.Ret()
	})
	mustExit(t, run(t, img), 14)
}

func TestVectorOps(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.DataLabel("v1")
		for _, v := range []uint64{1, 2, 3, 4} {
			b.DataQuad(v)
		}
		b.DataLabel("v2")
		for _, v := range []uint64{10, 20, 30, 40} {
			b.DataQuad(v)
		}
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RBX, "v1")
		b.I(mx.Inst{Op: mx.VLOAD, Dst: 0, Base: mx.RBX})
		b.MovSym(mx.RBX, "v2")
		b.I(mx.Inst{Op: mx.VLOAD, Dst: 1, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.VADD, Dst: 0, Src: 1})
		b.I(mx.Inst{Op: mx.VHADD, Dst: mx.RDI, Src: 0})
		b.CallExt("exit") // (1+10)+(2+20)+(3+30)+(4+40) = 110
	})
	mustExit(t, run(t, img), 110)
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		prog func(b *asm.Builder)
		want string
	}{
		{"unmapped load", func(b *asm.Builder) {
			b.Entry("main")
			b.Label("main")
			b.MovRI(mx.RBX, 0xdead0000)
			b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RAX, Base: mx.RBX})
			b.Ret()
		}, "unmapped"},
		{"div by zero", func(b *asm.Builder) {
			b.Entry("main")
			b.Label("main")
			b.MovRI(mx.RAX, 7)
			b.MovRI(mx.RCX, 0)
			b.I(mx.Inst{Op: mx.DIVRR, Dst: mx.RAX, Src: mx.RCX})
			b.Ret()
		}, "divide by zero"},
		{"syscall", func(b *asm.Builder) {
			b.Entry("main")
			b.Label("main")
			b.I(mx.Inst{Op: mx.SYSCALL})
			b.Ret()
		}, "syscall"},
		{"ud2", func(b *asm.Builder) {
			b.Entry("main")
			b.Label("main")
			b.I(mx.Inst{Op: mx.UD2})
		}, "ud2"},
		{"wild jump", func(b *asm.Builder) {
			b.Entry("main")
			b.Label("main")
			b.MovRI(mx.RBX, 0x1234)
			b.I(mx.Inst{Op: mx.JMPR, Dst: mx.RBX})
		}, "fetch"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := run(t, build(t, c.prog))
			if res.Fault == nil {
				t.Fatalf("no fault; exit=%d", res.ExitCode)
			}
			if !strings.Contains(res.Fault.Reason, c.want) {
				t.Fatalf("fault %q does not mention %q", res.Fault.Reason, c.want)
			}
		})
	}
}

func TestUnresolvedImport(t *testing.T) {
	b := asm.NewBuilder("t")
	b.Entry("main")
	b.Label("main")
	b.CallExt("no_such_function")
	b.Ret()
	img, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.New(img, 1); err == nil {
		t.Fatal("expected unresolved import error")
	}
}

func TestDeterminism(t *testing.T) {
	// Same seed, same interleaving-sensitive result; we just require the
	// cycle counts to be identical across runs.
	img := build(t, func(b *asm.Builder) {
		b.BSS("counter", 8)
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RDI, "w")
		b.MovRI(mx.RSI, 0)
		b.CallExt("thread_create")
		b.MovRR(mx.RDI, mx.RAX)
		b.CallExt("thread_join")
		b.MovRI(mx.RDI, 0)
		b.CallExt("exit")
		b.Label("w")
		b.MovRI(mx.RCX, 0)
		b.Label("l")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.RCX, Imm: 100})
		b.Jcc(mx.CondGE, "d")
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RCX, Imm: 1})
		b.Jmp("l")
		b.Label("d")
		b.Ret()
	})
	r1 := run(t, img)
	r2 := run(t, img)
	if r1.Cycles != r2.Cycles || r1.Insts != r2.Insts {
		t.Fatalf("nondeterministic: %v vs %v", r1, r2)
	}
}

func TestInputExternals(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.BSS("buf", 16)
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RDI, "buf")
		b.MovRI(mx.RSI, 16)
		b.CallExt("input_read")
		b.MovRR(mx.R12, mx.RAX) // n
		b.MovSym(mx.RBX, "buf")
		b.I(mx.Inst{Op: mx.LOAD8, Dst: mx.RDI, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.ADDRR, Dst: mx.RDI, Src: mx.R12})
		b.CallExt("exit")
	})
	m, err := vm.New(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetInput([]byte("AB"))
	res := m.Run(1_000_000)
	mustExit(t, res, 'A'+2)
}

func TestMallocFree(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("main")
		b.Label("main")
		b.MovRI(mx.RDI, 64)
		b.CallExt("malloc")
		b.MovRR(mx.R12, mx.RAX)
		b.I(mx.Inst{Op: mx.STOREI64, Base: mx.R12, Imm: 99})
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.R13, Base: mx.R12})
		b.MovRR(mx.RDI, mx.R12)
		b.CallExt("free")
		b.MovRR(mx.RDI, mx.R13)
		b.CallExt("exit")
	})
	mustExit(t, run(t, img), 99)
}
