package vm

import (
	"encoding/binary"

	"repro/internal/mx"
)

// This file implements the threaded-code dispatch engine: instead of one
// switch per step (step.go), each predecoded page carries a handler pointer
// per byte offset, so the hot loop is an indirect call per instruction —
// Go's idiom for computed-goto dispatch. Three tiers stack on top of the
// predecode cache:
//
//   - per-opcode handlers: cp.disp[off].h(m, t, cp, inst, pc, next), with
//     RR/RI layout variants specialized so the operand-source branch of
//     aluSrc disappears from the hot path;
//   - fused superinstructions: a flag-setting CMP/TEST/SUB immediately
//     followed by a same-page JCC dispatches as one handler retiring two
//     instructions (selected at compile() time);
//   - block accounting: straight-line runs of "simple" instructions (no
//     control transfer, no external call, no hook site) retire with one
//     precomputed insts/cycles sum applied at the next flush point, with an
//     exact per-prefix fallback when a run exits early on a fault, a
//     scheduling-grant boundary, or a self-modifying-code invalidation.
//
// The contract is bit-identical semantics with stepThread: same faults at
// the same PCs, same Counters, same hook call sites, and — because batching
// is provably equivalent to the per-step scheduler fast path — the same
// interleavings at every seed. Deviations are bugs; the differential matrix
// in dispatch_test.go and fuzz_test.go is the enforcement.

// handler executes one predecoded instruction (or a fused pair). pc is the
// instruction address, next the fallthrough address; t.PC == next on entry.
// The return value is the "fallthrough" the batch loop compares t.PC against
// for the generic OnBlock site: handlers that must suppress that check (host
// frame resume, thread exit) return the final t.PC instead.
type handler func(m *Machine, t *Thread, cp *codePage, i *mx.Inst, pc, next uint64) uint64

// dispatchEnt is the per-offset threaded-dispatch record. It is packed to
// 16 bytes — handler, length, retire class, flat-run length, and precomputed
// cost — so one entry load (four entries per cache line) gives the batch
// loop everything it needs without touching lens, insts.Op, or costs[].
type dispatchEnt struct {
	h handler
	// n is the encoded instruction length (mirrors codePage.lens so the
	// batch loops index a single table).
	n uint8
	// retire classifies the dispatch; see the retire* constants.
	retire uint8
	// mop is the dense micro-op code for the flat-run loop's inline
	// dispatch tier (mopCall routes through h); see the mop* constants.
	mop uint8
	// flat is the length of the straight-line run of simple instructions
	// starting at this offset (all within this page); 0 or 1 means the
	// offset dispatches singly.
	flat uint16
	// runCost is the precomputed cycle cost of the flat run starting here
	// (prefix costs of early-exited runs fall out as runCost differences
	// along the chain). For offsets outside flat runs it is the single
	// instruction's own cost — the pair sum for a fused offset.
	runCost uint32
}

// retire classes: how many instructions disp[off].h retires, plus the two
// dispatches the batch loop must treat specially before calling the handler.
const (
	// retireFault marks a fetch hole or predecoded BAD instruction: the
	// sentinel handler faults and retires nothing.
	retireFault = iota
	retireOne
	// retireFused is a superinstruction retiring two instructions.
	retireFused
	// retireCallX is an external call: the one dispatch that must settle
	// deferred accounting first (the clock external reads machine cycles).
	retireCallX
	// retireJmp is a direct jump whose target is in the same page (and not
	// its own fallthrough): the fast batch loop takes it without a handler
	// call or fault/exit checks, since a jump cannot fault, block, or
	// write memory. The counted loop dispatches it generically through h.
	retireJmp
	// retireJcc is a conditional branch with a non-zero displacement: pure,
	// so the fast loop evaluates it inline and fires the block hook on
	// both edges (matching hJcc's untaken call plus the generic taken
	// site). The counted loop dispatches it generically through h.
	retireJcc
	// retireCall and retireRet mark direct same-page calls (non-zero
	// displacement) and returns; the fast loop hand-inlines their
	// stack-slot TLB probe and falls back to the generic handler for
	// misses, watched stacks, and magic return addresses.
	retireCall
	retireRet
)

// Micro-op codes for the flat-run loop's inline dispatch tier: the densest
// simple opcodes execute through an inline jump table instead of an indirect
// handler call, which is worth several cycles per instruction on the hot
// path. mopCall (zero) falls back to disp.h. Each inline body must mirror
// the corresponding handler exactly; the switch/threaded differential matrix
// is the enforcement.
const (
	mopCall = iota
	mopMovRR
	mopMovRI
	mopLea
	mopLeaIdx
	mopAddRR
	mopAddRI
	mopSubRR
	mopSubRI
	mopCmpRR
	mopCmpRI
	mopAndRR
	mopAndRI
	mopOrRR
	mopOrRI
	mopXorRR
	mopXorRI
	mopTestRR
	mopTestRI
	mopLoad64
	mopStore64
	mopLoadIdx64
	mopStoreIdx64
	mopPush
	mopPop
)

// mopOf maps opcodes to their inline micro-op; zero (mopCall) everywhere
// else.
var mopOf [mx.NumOps]uint8

func init() {
	for op, mop := range map[mx.Op]uint8{
		mx.MOVRR:      mopMovRR,
		mx.MOVRI:      mopMovRI,
		mx.LEA:        mopLea,
		mx.LEAIDX:     mopLeaIdx,
		mx.ADDRR:      mopAddRR,
		mx.ADDRI:      mopAddRI,
		mx.SUBRR:      mopSubRR,
		mx.SUBRI:      mopSubRI,
		mx.CMPRR:      mopCmpRR,
		mx.CMPRI:      mopCmpRI,
		mx.ANDRR:      mopAndRR,
		mx.ANDRI:      mopAndRI,
		mx.ORRR:       mopOrRR,
		mx.ORRI:       mopOrRI,
		mx.XORRR:      mopXorRR,
		mx.XORRI:      mopXorRI,
		mx.TESTRR:     mopTestRR,
		mx.TESTRI:     mopTestRI,
		mx.LOAD64:     mopLoad64,
		mx.STORE64:    mopStore64,
		mx.LOADIDX64:  mopLoadIdx64,
		mx.STOREIDX64: mopStoreIdx64,
		mx.PUSH:       mopPush,
		mx.POP:        mopPop,
	} {
		mopOf[op] = mop
	}
}

var (
	opHandlers [mx.NumOps]handler
	// fusedHandlers maps a flag-setting opcode to its op+JCC superinstruction
	// handler; nil means the opcode does not fuse.
	fusedHandlers [mx.NumOps]handler
	// simpleOps marks instructions eligible for flat runs: always fall
	// through, never call hooks or externals, never end the step loop.
	simpleOps [mx.NumOps]bool
)

func init() {
	for i := range opHandlers {
		opHandlers[i] = hUnimplemented
	}
	reg := func(op mx.Op, h handler, simple bool) {
		opHandlers[op] = h
		simpleOps[op] = simple
	}
	reg(mx.NOP, hNop, true)
	reg(mx.MOVRR, hMovRR, true)
	reg(mx.MOVRI, hMovRI, true)
	reg(mx.LEA, hLea, true)
	reg(mx.LEAIDX, hLeaIdx, true)
	reg(mx.LOAD8, hLoad8, true)
	reg(mx.LOAD32, hLoad32, true)
	reg(mx.LOAD64, hLoad64, true)
	reg(mx.STORE8, hStore8, true)
	reg(mx.STORE32, hStore32, true)
	reg(mx.STORE64, hStore64, true)
	reg(mx.STOREI8, hStoreI8, true)
	reg(mx.STOREI32, hStoreI32, true)
	reg(mx.STOREI64, hStoreI64, true)
	reg(mx.LOADIDX8, hLoadIdx8, true)
	reg(mx.LOADIDX32, hLoadIdx32, true)
	reg(mx.LOADIDX64, hLoadIdx64, true)
	reg(mx.STOREIDX8, hStoreIdx8, true)
	reg(mx.STOREIDX32, hStoreIdx32, true)
	reg(mx.STOREIDX64, hStoreIdx64, true)
	reg(mx.ADDRR, hAddRR, true)
	reg(mx.ADDRI, hAddRI, true)
	reg(mx.SUBRR, hSubRR, true)
	reg(mx.SUBRI, hSubRI, true)
	reg(mx.CMPRR, hCmpRR, true)
	reg(mx.CMPRI, hCmpRI, true)
	reg(mx.ANDRR, hAndRR, true)
	reg(mx.ANDRI, hAndRI, true)
	reg(mx.ORRR, hOrRR, true)
	reg(mx.ORRI, hOrRI, true)
	reg(mx.XORRR, hXorRR, true)
	reg(mx.XORRI, hXorRI, true)
	reg(mx.TESTRR, hTestRR, true)
	reg(mx.TESTRI, hTestRI, true)
	reg(mx.SHLRR, hShlRR, true)
	reg(mx.SHLRI, hShlRI, true)
	reg(mx.SHRRR, hShrRR, true)
	reg(mx.SHRRI, hShrRI, true)
	reg(mx.SARRR, hSarRR, true)
	reg(mx.SARRI, hSarRI, true)
	reg(mx.IMULRR, hImulRR, true)
	reg(mx.IMULRI, hImulRI, true)
	reg(mx.DIVRR, hDivRR, true)
	reg(mx.MODRR, hModRR, true)
	reg(mx.NEG, hNeg, true)
	reg(mx.NOT, hNot, true)
	reg(mx.SETCC, hSetcc, true)
	reg(mx.JMP, hJmp, false)
	reg(mx.JCC, hJcc, false)
	reg(mx.JMPR, hJmpR, false)
	reg(mx.JMPM, hJmpM, false)
	reg(mx.CALL, hCall, false)
	reg(mx.CALLR, hCallR, false)
	reg(mx.RET, hRet, false)
	reg(mx.CALLX, hCallX, false)
	reg(mx.SYSCALL, hSyscall, false)
	reg(mx.HLT, hHlt, false)
	reg(mx.UD2, hUd2, false)
	reg(mx.PUSH, hPush, true)
	reg(mx.POP, hPop, true)
	reg(mx.LOCKADD, hLockAdd, true)
	reg(mx.LOCKSUB, hLockSub, true)
	reg(mx.LOCKAND, hLockAnd, true)
	reg(mx.LOCKOR, hLockOr, true)
	reg(mx.LOCKXOR, hLockXor, true)
	reg(mx.LOCKXADD, hLockXadd, true)
	reg(mx.LOCKINC, hLockInc, true)
	reg(mx.LOCKDEC, hLockDec, true)
	reg(mx.XCHG, hXchg, true)
	reg(mx.CMPXCHG, hCmpxchg, true)
	reg(mx.MFENCE, hMfence, true)
	reg(mx.TLSBASE, hTlsBase, true)
	reg(mx.VLOAD, hVload, true)
	reg(mx.VSTORE, hVstore, true)
	reg(mx.VADD, hVadd, true)
	reg(mx.VMUL, hVmul, true)
	reg(mx.VBCAST, hVbcast, true)
	reg(mx.VHADD, hVhadd, true)

	fusedHandlers[mx.CMPRR] = hFusedCmpRR
	fusedHandlers[mx.CMPRI] = hFusedCmpRI
	fusedHandlers[mx.TESTRR] = hFusedTestRR
	fusedHandlers[mx.TESTRI] = hFusedTestRI
	fusedHandlers[mx.SUBRR] = hFusedSubRR
	fusedHandlers[mx.SUBRI] = hFusedSubRI
}

// compile fills the page's handler table and dispatch metadata from its
// predecoded instructions: fusion selection first (a fused offset is not a
// flat-run member — it retires two instructions through one handler), then a
// backward pass over fallthrough chains for flat-run lengths and block cycle
// sums. Compilation is lazy — the switch engine never pays for it — and the
// write-watch invalidation contract needs no extra work here: stores into
// code drop the whole codePage, handler table, fusion choices and all.
func (cp *codePage) compile() {
	for off := 0; off < pageSize; off++ {
		d := &cp.disp[off]
		n := int(cp.lens[off])
		d.n = uint8(n)
		if n == 0 {
			d.h, d.retire = hFetchHole, retireFault
			continue
		}
		op := cp.insts[off].Op
		if op == mx.BAD {
			d.h, d.retire = hIllegal, retireFault
			continue
		}
		d.h = opHandlers[op]
		d.retire = retireOne
		d.mop = mopOf[op]
		d.runCost = uint32(costs[op])
		if op == mx.CALLX {
			d.retire = retireCallX
			continue
		}
		switch op {
		case mx.JMP:
			// Promote same-page jumps (excluding the degenerate
			// jump-to-fallthrough, whose untaken-looking edge must skip
			// the block hook exactly like the generic fall==PC check).
			if tgt := int64(off) + int64(n) + int64(cp.insts[off].Disp); tgt >= 0 && tgt < pageSize && cp.insts[off].Disp != 0 {
				d.retire = retireJmp
			}
			continue
		case mx.JCC:
			if cp.insts[off].Disp != 0 {
				d.retire = retireJcc
			}
			continue
		case mx.CALL:
			if tgt := int64(off) + int64(n) + int64(cp.insts[off].Disp); tgt >= 0 && tgt < pageSize && cp.insts[off].Disp != 0 {
				d.retire = retireCall
			}
			continue
		case mx.RET:
			d.retire = retireRet
			continue
		}
		if f := fusedHandlers[op]; f != nil {
			if off2 := off + n; off2 < pageSize && cp.lens[off2] != 0 && cp.insts[off2].Op == mx.JCC {
				d.h = f
				d.retire = retireFused
				d.runCost = uint32(costs[op] + costs[mx.JCC])
			}
		}
	}
	for off := pageSize - 1; off >= 0; off-- {
		d := &cp.disp[off]
		if d.retire != retireOne || !simpleOps[cp.insts[off].Op] {
			continue // flat stays 0: dispatch singly
		}
		run, cost := uint32(1), d.runCost
		if nxt := off + int(d.n); nxt < pageSize && cp.disp[nxt].flat > 0 {
			run += uint32(cp.disp[nxt].flat)
			cost += cp.disp[nxt].runCost
		}
		d.flat = uint16(run)
		d.runCost = cost
	}
	cp.compiled = true
}

// stepBatch executes up to budget instructions of t's current scheduling
// grant under threaded dispatch and returns how many retired. budget is the
// remainder of t's time slice (clamped to remaining fuel), so one batch is
// equivalent to budget iterations of the per-step loop: the scheduler's
// fast path grants exactly these picks without consuming randomness, and
// the batch ends early exactly where the per-step loop would switch away
// (fault, block, exit) or re-decide (preemption boundary).
//
// Counters mode dispatches per step — per-instruction fetch attribution
// (ICache hits), opcode-class counts, and per-thread cycle deltas are part
// of the Counters exactness contract — while the uninstrumented path defers
// insts/cycles sums to flush points. The only mid-run observer of machine
// totals is the clock external, so a flush is owed exactly before CALLX
// (and at every batch exit, so Run and Result always see settled totals).
func (m *Machine) stepBatch(t *Thread, budget int) int {
	if m.ctr == nil {
		return m.stepBatchFast(t, budget)
	}
	return m.stepBatchCounted(t, budget)
}

// extendGrant is the fast batch loop's inline scheduler slow path. When a
// batch exhausts its scheduling grant but t is the machine's only runnable
// thread, the per-step scheduler's next pick is forced: it consumes one rng
// draw (whose value cannot change the pick) and grants t a fresh quantum.
// Emulating that boundary here lets the batch continue without the
// per-quantum flush/Run/pickThread round trip — the dominant fixed cost on
// single-threaded phases. The moment a second thread is runnable (or fuel is
// spent, matching Run's loop condition — pendI is the batch's unflushed
// instruction count, which fuel must see) it declines without drawing, and
// the real scheduler decides, and draws, as usual. Every budget-exhaustion
// site in stepBatchFast may call this because those sites are only reached
// with t runnable and no fault or exit pending.
func (m *Machine) extendGrant(t *Thread, budget *int, ran int, pendI uint64) bool {
	if m.insts+pendI >= m.runFuel {
		return false
	}
	// A sole-runnable batch never returns to Run's loop, so the cancel
	// signal must also be polled here (at most once per granted quantum);
	// declining sends the batch back to Run, which observes the
	// cancellation. Declines before the rng draw, like the
	// second-thread-runnable case, so an uncancelled run's draws are
	// untouched.
	if m.cancelled() {
		return false
	}
	for _, o := range m.threads {
		if o != t && o.State == Runnable {
			return false
		}
	}
	m.rng.Intn(8) // the skip draw pickThread's slow path consumes
	g := m.quantum
	if rem := m.runFuel - (m.insts + pendI); uint64(g) > rem {
		g = int(rem)
	}
	m.extFrom = ran
	*budget += g
	return true
}

// stepBatchFast is the uninstrumented batch loop: an outer iteration per
// page entered, an inner iteration per dispatch within that page, and block
// accounting for both flat runs and single dispatches, flushed before CALLX
// and on every exit path.
func (m *Machine) stepBatchFast(t *Thread, budget int) int {
	extra := m.ExtraCostPerInst
	ran := 0
	var pendI, pendC uint64 // block accounting deferred to the next flush point
	pc := t.PC
	for ran < budget {
		base := pc &^ (pageSize - 1)
		cp := m.icPage
		if base != m.icBase {
			cp = m.icache[base]
			if cp == nil {
				cp = m.fillCodePage(base)
				m.icache[base] = cp
			}
			m.icBase, m.icPage = base, cp
		}
		if !cp.compiled {
			cp.compile()
		}
		// Same-page dispatch loop: fall out to the outer loop only when
		// control leaves the page or a store invalidated it.
	page:
		for {
			off := pc & (pageSize - 1)
			d := &cp.disp[off]

			// Flat run: retire a straight line of simple instructions with
			// one precomputed block sum. The densest micro-ops execute
			// through the inline jump table (bodies mirror their handlers);
			// the rest dispatch through the handler pointer.
			if r := int(d.flat); r > 0 {
				if max := budget - ran; r > max {
					r = max
				}
				start := off
				k := 0
				for {
					next := pc + uint64(d.n)
					t.PC = next
					i := &cp.insts[off]
					switch d.mop {
					case mopMovRR:
						t.Regs[i.Dst] = t.Regs[i.Src]
					case mopMovRI:
						t.Regs[i.Dst] = uint64(i.Imm)
					case mopLea:
						t.Regs[i.Dst] = t.ea(i)
					case mopLeaIdx:
						t.Regs[i.Dst] = t.eaIdx(i)
					case mopAddRR:
						a, b := t.Regs[i.Dst], t.Regs[i.Src]
						v := a + b
						t.setAddFlags(a, b, v)
						t.Regs[i.Dst] = v
					case mopAddRI:
						a, b := t.Regs[i.Dst], uint64(i.Imm)
						v := a + b
						t.setAddFlags(a, b, v)
						t.Regs[i.Dst] = v
					case mopSubRR:
						a, b := t.Regs[i.Dst], t.Regs[i.Src]
						v := a - b
						t.setSubFlags(a, b, v)
						t.Regs[i.Dst] = v
					case mopSubRI:
						a, b := t.Regs[i.Dst], uint64(i.Imm)
						v := a - b
						t.setSubFlags(a, b, v)
						t.Regs[i.Dst] = v
					case mopCmpRR:
						a, b := t.Regs[i.Dst], t.Regs[i.Src]
						t.setSubFlags(a, b, a-b)
					case mopCmpRI:
						a, b := t.Regs[i.Dst], uint64(i.Imm)
						t.setSubFlags(a, b, a-b)
					case mopAndRR:
						v := t.Regs[i.Dst] & t.Regs[i.Src]
						t.setZS(v)
						t.CF, t.OF = false, false
						t.Regs[i.Dst] = v
					case mopAndRI:
						v := t.Regs[i.Dst] & uint64(i.Imm)
						t.setZS(v)
						t.CF, t.OF = false, false
						t.Regs[i.Dst] = v
					case mopOrRR:
						v := t.Regs[i.Dst] | t.Regs[i.Src]
						t.setZS(v)
						t.CF, t.OF = false, false
						t.Regs[i.Dst] = v
					case mopOrRI:
						v := t.Regs[i.Dst] | uint64(i.Imm)
						t.setZS(v)
						t.CF, t.OF = false, false
						t.Regs[i.Dst] = v
					case mopXorRR:
						v := t.Regs[i.Dst] ^ t.Regs[i.Src]
						t.setZS(v)
						t.CF, t.OF = false, false
						t.Regs[i.Dst] = v
					case mopXorRI:
						v := t.Regs[i.Dst] ^ uint64(i.Imm)
						t.setZS(v)
						t.CF, t.OF = false, false
						t.Regs[i.Dst] = v
					case mopTestRR:
						v := t.Regs[i.Dst] & t.Regs[i.Src]
						t.setZS(v)
						t.CF, t.OF = false, false
					case mopTestRI:
						v := t.Regs[i.Dst] & uint64(i.Imm)
						t.setZS(v)
						t.CF, t.OF = false, false
					// The memory micro-ops hand-inline Memory's TLB-hit
					// fast path: counters are off in this engine by
					// construction (stepBatch routes counter runs to
					// stepBatchCounted, and Mem.ctr is only ever set
					// together with m.ctr), so a hit needs no attribution,
					// and stores only need the write-watch envelope check.
					// Misses, straddles, and watched stores take the same
					// slow path as the handlers.
					case mopLoad64:
						addr := t.ea(i)
						e := &m.Mem.tlb[(addr>>pageShift)&(tlbSize-1)]
						o := addr & (pageSize - 1)
						if e.pg != nil && e.base == addr-o && o <= pageSize-8 {
							t.Regs[i.Dst] = binary.LittleEndian.Uint64(e.pg[o:])
						} else if v, ok := m.loadMem64(t, pc, addr); ok {
							t.Regs[i.Dst] = v
						}
					case mopStore64:
						addr := t.ea(i)
						mem := m.Mem
						e := &mem.tlb[(addr>>pageShift)&(tlbSize-1)]
						o := addr & (pageSize - 1)
						if e.pg != nil && e.base == addr-o && o <= pageSize-8 &&
							(mem.onWrite == nil || addr >= mem.watchHi || addr+8 <= mem.watchLo) {
							binary.LittleEndian.PutUint64(e.pg[o:], t.Regs[i.Dst])
						} else {
							m.storeMem64(t, pc, addr, t.Regs[i.Dst])
						}
					case mopLoadIdx64:
						addr := t.eaIdx(i)
						e := &m.Mem.tlb[(addr>>pageShift)&(tlbSize-1)]
						o := addr & (pageSize - 1)
						if e.pg != nil && e.base == addr-o && o <= pageSize-8 {
							t.Regs[i.Dst] = binary.LittleEndian.Uint64(e.pg[o:])
						} else if v, ok := m.loadMem64(t, pc, addr); ok {
							t.Regs[i.Dst] = v
						}
					case mopStoreIdx64:
						addr := t.eaIdx(i)
						mem := m.Mem
						e := &mem.tlb[(addr>>pageShift)&(tlbSize-1)]
						o := addr & (pageSize - 1)
						if e.pg != nil && e.base == addr-o && o <= pageSize-8 &&
							(mem.onWrite == nil || addr >= mem.watchHi || addr+8 <= mem.watchLo) {
							binary.LittleEndian.PutUint64(e.pg[o:], t.Regs[i.Dst])
						} else {
							m.storeMem64(t, pc, addr, t.Regs[i.Dst])
						}
					case mopPush:
						sp := t.Regs[mx.RSP] - 8
						t.Regs[mx.RSP] = sp
						mem := m.Mem
						e := &mem.tlb[(sp>>pageShift)&(tlbSize-1)]
						o := sp & (pageSize - 1)
						if e.pg != nil && e.base == sp-o && o <= pageSize-8 &&
							(mem.onWrite == nil || sp >= mem.watchHi || sp+8 <= mem.watchLo) {
							binary.LittleEndian.PutUint64(e.pg[o:], t.Regs[i.Dst])
						} else if !mem.store64(sp, t.Regs[i.Dst]) {
							m.faultf(t, t.PC, "stack overflow: push to unmapped %#x", sp)
						}
					case mopPop:
						sp := t.Regs[mx.RSP]
						e := &m.Mem.tlb[(sp>>pageShift)&(tlbSize-1)]
						o := sp & (pageSize - 1)
						if e.pg != nil && e.base == sp-o && o <= pageSize-8 {
							t.Regs[i.Dst] = binary.LittleEndian.Uint64(e.pg[o:])
							t.Regs[mx.RSP] = sp + 8
						} else if v, ok := m.Mem.load64(sp); ok {
							t.Regs[i.Dst] = v
							t.Regs[mx.RSP] = sp + 8
						} else {
							m.faultf(t, t.PC, "pop from unmapped %#x", sp)
						}
					default:
						d.h(m, t, cp, i, pc, next)
					}
					k++
					if k >= r || m.fault != nil || m.icBase != base {
						break
					}
					pc = next
					off = next & (pageSize - 1)
					d = &cp.disp[off]
				}
				ran += k
				pendI += uint64(k)
				if k == int(cp.disp[start].flat) {
					pendC += uint64(cp.disp[start].runCost) + extra*uint64(k)
				} else {
					// Early exit (grant boundary, fault, or self-modifying-
					// code invalidation): the executed prefix's cost is the
					// chain's runCost minus the unexecuted suffix's. A
					// faulting instruction is charged, matching stepThread's
					// account-then-execute order.
					nxt := off + uint64(d.n)
					pendC += uint64(cp.disp[start].runCost-cp.disp[nxt].runCost) + extra*uint64(k)
				}
				if m.fault != nil {
					m.insts += pendI
					m.cycles += pendC
					t.Cycles += pendC
					return ran
				}
				pc = t.PC
				if ran >= budget && !m.extendGrant(t, &budget, ran, pendI) {
					m.insts += pendI
					m.cycles += pendC
					t.Cycles += pendC
					return ran
				}
				if m.icBase != base || pc&^(pageSize-1) != base {
					break
				}
				continue
			}

			// Single dispatch: control flow, externals, fused pairs,
			// fetch holes and illegal instructions.
			h := d.h
			k := 1
			next := pc + uint64(d.n)
			switch d.retire {
			case retireFault:
				// Sentinel: faults without retiring (and without moving
				// t.PC, like a failed stepThread fetch).
				m.insts += pendI
				m.cycles += pendC
				t.Cycles += pendC
				h(m, t, cp, &cp.insts[off], pc, next)
				return ran
			case retireJmp:
				// Same-page direct jump: no handler call, no fault or
				// exit checks (a jump cannot fault, block, or write
				// memory). The block hook always fires when set — the
				// jump-to-fallthrough case is excluded at compile time.
				pendI++
				pendC += uint64(d.runCost) + extra
				ran++
				pc = next + uint64(int64(cp.insts[off].Disp))
				t.PC = pc
				if m.OnBlock != nil {
					m.OnBlock(t, pc)
				}
				if ran >= budget && !m.extendGrant(t, &budget, ran, pendI) {
					m.insts += pendI
					m.cycles += pendC
					t.Cycles += pendC
					return ran
				}
				if m.icBase != base {
					break page
				}
				continue
			case retireJcc:
				// Conditional branch, non-zero displacement: pure, so no
				// fault or exit checks. The block hook fires on both
				// edges — hJcc calls it on the untaken edge and the
				// generic fall check fires on the taken one — so inline
				// it fires unconditionally when set.
				pendI++
				pendC += uint64(d.runCost) + extra
				ran++
				if t.Eval(cp.insts[off].Cc) {
					pc = next + uint64(int64(cp.insts[off].Disp))
				} else {
					pc = next
				}
				t.PC = pc
				if m.OnBlock != nil {
					m.OnBlock(t, pc)
				}
				if ran >= budget && !m.extendGrant(t, &budget, ran, pendI) {
					m.insts += pendI
					m.cycles += pendC
					t.Cycles += pendC
					return ran
				}
				if m.icBase != base || pc&^(pageSize-1) != base {
					break page
				}
				continue
			case retireCall:
				// Same-page direct call: hand-inline the return-address
				// push when the stack slot is a TLB hit outside the write
				// watch (so it cannot fault or invalidate code); fall back
				// to the generic handler dispatch otherwise.
				sp := t.Regs[mx.RSP] - 8
				mem := m.Mem
				e := &mem.tlb[(sp>>pageShift)&(tlbSize-1)]
				o := sp & (pageSize - 1)
				if e.pg != nil && e.base == sp-o && o <= pageSize-8 &&
					(mem.onWrite == nil || sp >= mem.watchHi || sp+8 <= mem.watchLo) {
					pendI++
					pendC += uint64(d.runCost) + extra
					ran++
					t.Regs[mx.RSP] = sp
					binary.LittleEndian.PutUint64(e.pg[o:], next)
					pc = next + uint64(int64(cp.insts[off].Disp))
					t.PC = pc
					if m.OnBlock != nil {
						m.OnBlock(t, pc)
					}
					if ran >= budget && !m.extendGrant(t, &budget, ran, pendI) {
						m.insts += pendI
						m.cycles += pendC
						t.Cycles += pendC
						return ran
					}
					if m.icBase != base {
						break page
					}
					continue
				}
				pendI++
				pendC += uint64(d.runCost) + extra
			case retireRet:
				// Return: hand-inline the TLB-hit pop for ordinary return
				// addresses; magic host/thread-exit frames and misses take
				// the generic handler.
				sp := t.Regs[mx.RSP]
				e := &m.Mem.tlb[(sp>>pageShift)&(tlbSize-1)]
				o := sp & (pageSize - 1)
				if e.pg != nil && e.base == sp-o && o <= pageSize-8 {
					if ra := binary.LittleEndian.Uint64(e.pg[o:]); ra != magicThreadExit && ra != magicHostFrame {
						pendI++
						pendC += uint64(d.runCost) + extra
						ran++
						t.Regs[mx.RSP] = sp + 8
						if m.OnIndirect != nil {
							m.OnIndirect(t, pc, ra, KindRet)
						}
						t.PC = ra
						if ra != next && m.OnBlock != nil {
							m.OnBlock(t, ra)
						}
						pc = ra
						if ran >= budget && !m.extendGrant(t, &budget, ran, pendI) {
							m.insts += pendI
							m.cycles += pendC
							t.Cycles += pendC
							return ran
						}
						if m.icBase != base || pc&^(pageSize-1) != base {
							break page
						}
						continue
					}
				}
				pendI++
				pendC += uint64(d.runCost) + extra
			case retireCallX:
				// The external may read m.cycles (clock) and charges its
				// own cost: settle all accounting through this instruction
				// before it runs, in stepThread's order.
				m.insts += pendI + 1
				m.cycles += pendC
				t.Cycles += pendC
				pendI, pendC = 0, 0
				m.charge(t, costs[mx.CALLX])
			case retireFused:
				if budget-ran >= 2 {
					// Fused pairs are pure register ops plus a direct
					// branch: they cannot fault, exit, block the thread,
					// or write memory, so the generic post-dispatch
					// checks reduce to the block hook and the page and
					// budget checks. The six fused flag-setters are also
					// inlined here (d.mop still holds the leading op's
					// micro-op code), saving the handler and fuseJcc
					// calls; the bodies mirror the hFused* handlers.
					pendI += 2
					pendC += uint64(d.runCost) + 2*extra
					ran += 2
					fi := &cp.insts[off]
					inlined := true
					switch d.mop {
					case mopCmpRR:
						a, b := t.Regs[fi.Dst], t.Regs[fi.Src]
						t.setSubFlags(a, b, a-b)
					case mopCmpRI:
						a, b := t.Regs[fi.Dst], uint64(fi.Imm)
						t.setSubFlags(a, b, a-b)
					case mopTestRR:
						r := t.Regs[fi.Dst] & t.Regs[fi.Src]
						t.setZS(r)
						t.CF, t.OF = false, false
					case mopTestRI:
						r := t.Regs[fi.Dst] & uint64(fi.Imm)
						t.setZS(r)
						t.CF, t.OF = false, false
					case mopSubRR:
						a, b := t.Regs[fi.Dst], t.Regs[fi.Src]
						r := a - b
						t.setSubFlags(a, b, r)
						t.Regs[fi.Dst] = r
					case mopSubRI:
						a, b := t.Regs[fi.Dst], uint64(fi.Imm)
						r := a - b
						t.setSubFlags(a, b, r)
						t.Regs[fi.Dst] = r
					default:
						inlined = false
					}
					var fall uint64
					if inlined {
						// fuseJcc, inlined: the trailing JCC's untaken
						// edge fires the block hook with PC at the
						// fallthrough, the taken edge via the generic
						// fall check below.
						off2 := next & (pageSize - 1)
						j := &cp.insts[off2]
						fall = next + uint64(cp.lens[off2])
						if t.Eval(j.Cc) {
							t.PC = fall + uint64(int64(j.Disp))
						} else {
							t.PC = fall
							if m.OnBlock != nil {
								m.OnBlock(t, fall)
							}
						}
					} else {
						t.PC = next
						fall = h(m, t, cp, fi, pc, next)
					}
					if t.PC != fall && m.OnBlock != nil {
						m.OnBlock(t, t.PC)
					}
					pc = t.PC
					if ran >= budget && !m.extendGrant(t, &budget, ran, pendI) {
						m.insts += pendI
						m.cycles += pendC
						t.Cycles += pendC
						return ran
					}
					if m.icBase != base || pc&^(pageSize-1) != base {
						break page
					}
					continue
				}
				// The fused pair would overrun the scheduling grant (or
				// fuel); dispatch the leading instruction unfused so
				// preemption and fuel boundaries stay bit-identical to
				// per-step dispatch.
				op := cp.insts[off].Op
				h = opHandlers[op]
				pendI++
				pendC += costs[op] + extra
			default:
				pendI++
				pendC += uint64(d.runCost) + extra
			}
			t.PC = next
			fall := h(m, t, cp, &cp.insts[off], pc, next)
			ran += k
			if m.fault != nil {
				m.insts += pendI
				m.cycles += pendC
				t.Cycles += pendC
				return ran
			}
			if t.PC != fall && m.OnBlock != nil && t.State == Runnable {
				m.OnBlock(t, t.PC)
			}
			if m.exited || t.State != Runnable {
				m.insts += pendI
				m.cycles += pendC
				t.Cycles += pendC
				return ran
			}
			pc = t.PC
			if ran >= budget && !m.extendGrant(t, &budget, ran, pendI) {
				m.insts += pendI
				m.cycles += pendC
				t.Cycles += pendC
				return ran
			}
			if m.icBase != base || pc&^(pageSize-1) != base {
				break
			}
		}
	}
	m.insts += pendI
	m.cycles += pendC
	t.Cycles += pendC
	return ran
}

// stepBatchCounted is the batch loop with machine counters enabled: every
// instruction dispatches singly with eager accounting, replicating
// stepThread's fetch/hit/class attribution bit for bit (fused pairs count
// their second fetch as the ICache hit it would have been).
func (m *Machine) stepBatchCounted(t *Thread, budget int) int {
	ctr := m.ctr
	ran := 0
	for ran < budget {
		pc := t.PC
		base := pc &^ (pageSize - 1)
		cp := m.icPage
		if base != m.icBase {
			cp = m.icache[base]
			if cp == nil {
				cp = m.fillCodePage(base)
				m.icache[base] = cp
				ctr.ICacheMisses++
			} else {
				ctr.ICacheHits++
			}
			m.icBase, m.icPage = base, cp
		} else {
			ctr.ICacheHits++
		}
		if !cp.compiled {
			cp.compile()
		}
		off := pc & (pageSize - 1)
		d := &cp.disp[off]
		if d.retire == retireFault {
			d.h(m, t, cp, &cp.insts[off], pc, pc+uint64(d.n))
			return ran
		}
		inst := &cp.insts[off]
		h := d.h
		k := 1
		if d.retire == retireFused {
			if budget-ran < 2 {
				h = opHandlers[inst.Op]
			} else {
				k = 2
			}
		}
		next := pc + uint64(d.n)
		m.insts++
		m.charge(t, costs[inst.Op])
		ctr.count(t.ID, inst)
		if k == 2 {
			inst2 := &cp.insts[next&(pageSize-1)]
			m.insts++
			m.charge(t, costs[inst2.Op])
			ctr.ICacheHits++ // the pair's second fetch, same page by construction
			ctr.count(t.ID, inst2)
		}
		t.PC = next
		fall := h(m, t, cp, inst, pc, next)
		ran += k
		if m.fault != nil {
			return ran
		}
		if m.OnBlock != nil && t.PC != fall && t.State == Runnable {
			m.OnBlock(t, t.PC)
		}
		if m.exited || t.State != Runnable {
			return ran
		}
	}
	return ran
}

// ---- per-opcode handlers -------------------------------------------------
//
// Each handler is the corresponding stepThread case verbatim, with the
// RR/RI source operand specialized away and `return` mapped to the
// fallthrough contract described on the handler type.

// Width-specialized loadMem/storeMem variants: handlers know their access
// width statically, so the Memory TLB fast path inlines into the handler
// body instead of going through the generic width-switched call chain.
// Fault messages and counter attribution match loadMem/storeMem exactly.

func (m *Machine) loadMem8(t *Thread, pc, addr uint64) (uint64, bool) {
	v, ok := m.Mem.load8(addr)
	if !ok {
		m.faultf(t, pc, "load from unmapped address %#x", addr)
	}
	return v, ok
}

func (m *Machine) loadMem32(t *Thread, pc, addr uint64) (uint64, bool) {
	v, ok := m.Mem.load32(addr)
	if !ok {
		m.faultf(t, pc, "load from unmapped address %#x", addr)
		return 0, false
	}
	return sx32(v), true
}

func (m *Machine) loadMem64(t *Thread, pc, addr uint64) (uint64, bool) {
	v, ok := m.Mem.load64(addr)
	if !ok {
		m.faultf(t, pc, "load from unmapped address %#x", addr)
	}
	return v, ok
}

func (m *Machine) storeMem8(t *Thread, pc, addr, v uint64) bool {
	if !m.Mem.store8(addr, v) {
		m.faultf(t, pc, "store to unmapped address %#x", addr)
		return false
	}
	return true
}

func (m *Machine) storeMem32(t *Thread, pc, addr, v uint64) bool {
	if !m.Mem.store32(addr, v) {
		m.faultf(t, pc, "store to unmapped address %#x", addr)
		return false
	}
	return true
}

func (m *Machine) storeMem64(t *Thread, pc, addr, v uint64) bool {
	if !m.Mem.store64(addr, v) {
		m.faultf(t, pc, "store to unmapped address %#x", addr)
		return false
	}
	return true
}

func hUnimplemented(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	m.faultf(t, pc, "unimplemented opcode %v", i.Op)
	return next
}

// hFetchHole and hIllegal are the retireFault sentinels compile() installs
// for non-executable offsets and predecoded BAD instructions, so the batch
// loops need no per-dispatch fetch checks: the fault is the dispatch.

func hFetchHole(m *Machine, t *Thread, _ *codePage, _ *mx.Inst, pc, next uint64) uint64 {
	m.faultf(t, pc, "instruction fetch from unmapped or non-executable memory")
	return next
}

func hIllegal(m *Machine, t *Thread, _ *codePage, _ *mx.Inst, pc, next uint64) uint64 {
	m.faultf(t, pc, "illegal instruction")
	return next
}

func hNop(_ *Machine, _ *Thread, _ *codePage, _ *mx.Inst, _, next uint64) uint64 {
	return next
}

func hMovRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	t.Regs[i.Dst] = t.Regs[i.Src]
	return next
}

func hMovRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	t.Regs[i.Dst] = uint64(i.Imm)
	return next
}

func hLea(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	t.Regs[i.Dst] = t.ea(i)
	return next
}

func hLeaIdx(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	t.Regs[i.Dst] = t.eaIdx(i)
	return next
}

func hLoad8(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	if v, ok := m.loadMem8(t, pc, t.ea(i)); ok {
		t.Regs[i.Dst] = v
	}
	return next
}

func hLoad32(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	if v, ok := m.loadMem32(t, pc, t.ea(i)); ok {
		t.Regs[i.Dst] = v
	}
	return next
}

func hLoad64(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	if v, ok := m.loadMem64(t, pc, t.ea(i)); ok {
		t.Regs[i.Dst] = v
	}
	return next
}

func hStore8(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	m.storeMem8(t, pc, t.ea(i), t.Regs[i.Dst])
	return next
}

func hStore32(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	m.storeMem32(t, pc, t.ea(i), t.Regs[i.Dst])
	return next
}

func hStore64(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	m.storeMem64(t, pc, t.ea(i), t.Regs[i.Dst])
	return next
}

func hStoreI8(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	m.storeMem8(t, pc, t.ea(i), uint64(i.Imm))
	return next
}

func hStoreI32(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	m.storeMem32(t, pc, t.ea(i), uint64(i.Imm))
	return next
}

func hStoreI64(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	m.storeMem64(t, pc, t.ea(i), uint64(i.Imm))
	return next
}

func hLoadIdx8(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	if v, ok := m.loadMem8(t, pc, t.eaIdx(i)); ok {
		t.Regs[i.Dst] = v
	}
	return next
}

func hLoadIdx32(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	if v, ok := m.loadMem32(t, pc, t.eaIdx(i)); ok {
		t.Regs[i.Dst] = v
	}
	return next
}

func hLoadIdx64(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	if v, ok := m.loadMem64(t, pc, t.eaIdx(i)); ok {
		t.Regs[i.Dst] = v
	}
	return next
}

func hStoreIdx8(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	m.storeMem8(t, pc, t.eaIdx(i), t.Regs[i.Dst])
	return next
}

func hStoreIdx32(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	m.storeMem32(t, pc, t.eaIdx(i), t.Regs[i.Dst])
	return next
}

func hStoreIdx64(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	m.storeMem64(t, pc, t.eaIdx(i), t.Regs[i.Dst])
	return next
}

func hAddRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	a, b := t.Regs[i.Dst], t.Regs[i.Src]
	r := a + b
	t.setAddFlags(a, b, r)
	t.Regs[i.Dst] = r
	return next
}

func hAddRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	a, b := t.Regs[i.Dst], uint64(i.Imm)
	r := a + b
	t.setAddFlags(a, b, r)
	t.Regs[i.Dst] = r
	return next
}

func hSubRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	a, b := t.Regs[i.Dst], t.Regs[i.Src]
	r := a - b
	t.setSubFlags(a, b, r)
	t.Regs[i.Dst] = r
	return next
}

func hSubRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	a, b := t.Regs[i.Dst], uint64(i.Imm)
	r := a - b
	t.setSubFlags(a, b, r)
	t.Regs[i.Dst] = r
	return next
}

func hCmpRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	a, b := t.Regs[i.Dst], t.Regs[i.Src]
	t.setSubFlags(a, b, a-b)
	return next
}

func hCmpRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	a, b := t.Regs[i.Dst], uint64(i.Imm)
	t.setSubFlags(a, b, a-b)
	return next
}

func hAndRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] & t.Regs[i.Src]
	t.setZS(r)
	t.CF, t.OF = false, false
	t.Regs[i.Dst] = r
	return next
}

func hAndRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] & uint64(i.Imm)
	t.setZS(r)
	t.CF, t.OF = false, false
	t.Regs[i.Dst] = r
	return next
}

func hOrRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] | t.Regs[i.Src]
	t.setZS(r)
	t.CF, t.OF = false, false
	t.Regs[i.Dst] = r
	return next
}

func hOrRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] | uint64(i.Imm)
	t.setZS(r)
	t.CF, t.OF = false, false
	t.Regs[i.Dst] = r
	return next
}

func hXorRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] ^ t.Regs[i.Src]
	t.setZS(r)
	t.CF, t.OF = false, false
	t.Regs[i.Dst] = r
	return next
}

func hXorRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] ^ uint64(i.Imm)
	t.setZS(r)
	t.CF, t.OF = false, false
	t.Regs[i.Dst] = r
	return next
}

func hTestRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] & t.Regs[i.Src]
	t.setZS(r)
	t.CF, t.OF = false, false
	return next
}

func hTestRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] & uint64(i.Imm)
	t.setZS(r)
	t.CF, t.OF = false, false
	return next
}

func hShlRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] << (t.Regs[i.Src] & 63)
	t.setZS(r)
	t.Regs[i.Dst] = r
	return next
}

func hShlRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] << (uint64(i.Imm) & 63)
	t.setZS(r)
	t.Regs[i.Dst] = r
	return next
}

func hShrRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] >> (t.Regs[i.Src] & 63)
	t.setZS(r)
	t.Regs[i.Dst] = r
	return next
}

func hShrRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] >> (uint64(i.Imm) & 63)
	t.setZS(r)
	t.Regs[i.Dst] = r
	return next
}

func hSarRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := uint64(int64(t.Regs[i.Dst]) >> (t.Regs[i.Src] & 63))
	t.setZS(r)
	t.Regs[i.Dst] = r
	return next
}

func hSarRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := uint64(int64(t.Regs[i.Dst]) >> (uint64(i.Imm) & 63))
	t.setZS(r)
	t.Regs[i.Dst] = r
	return next
}

func hImulRR(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := uint64(int64(t.Regs[i.Dst]) * int64(t.Regs[i.Src]))
	t.setZS(r)
	t.Regs[i.Dst] = r
	return next
}

func hImulRI(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := uint64(int64(t.Regs[i.Dst]) * i.Imm)
	t.setZS(r)
	t.Regs[i.Dst] = r
	return next
}

func hDivRR(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	d := int64(t.Regs[i.Src])
	if d == 0 {
		m.faultf(t, pc, "integer divide by zero")
		return next
	}
	r := uint64(int64(t.Regs[i.Dst]) / d)
	t.setZS(r)
	t.Regs[i.Dst] = r
	return next
}

func hModRR(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	d := int64(t.Regs[i.Src])
	if d == 0 {
		m.faultf(t, pc, "integer divide by zero")
		return next
	}
	r := uint64(int64(t.Regs[i.Dst]) % d)
	t.setZS(r)
	t.Regs[i.Dst] = r
	return next
}

func hNeg(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := -t.Regs[i.Dst]
	t.setSubFlags(0, t.Regs[i.Dst], r)
	t.Regs[i.Dst] = r
	return next
}

func hNot(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	t.Regs[i.Dst] = ^t.Regs[i.Dst]
	return next
}

func hSetcc(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	if t.Eval(i.Cc) {
		t.Regs[i.Dst] = 1
	} else {
		t.Regs[i.Dst] = 0
	}
	return next
}

func hJmp(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	t.PC = next + uint64(int64(i.Disp))
	return next
}

func hJcc(m *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	if t.Eval(i.Cc) {
		t.PC = next + uint64(int64(i.Disp))
	} else if m.OnBlock != nil {
		// Block-granularity tracing: the untaken edge also enters a block
		// (the fallthrough), even though PC advances linearly.
		m.OnBlock(t, next)
	}
	return next
}

func hJmpR(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	target := t.Regs[i.Dst]
	if m.OnIndirect != nil {
		m.OnIndirect(t, pc, target, KindJump)
	}
	t.PC = target
	return next
}

func hJmpM(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	slot := t.Regs[i.Base] + t.Regs[i.Idx]*8 + uint64(int64(i.Disp))
	target, ok := m.Mem.load64(slot)
	if !ok {
		m.faultf(t, pc, "jump table load from unmapped %#x", slot)
		return next
	}
	if m.OnIndirect != nil {
		m.OnIndirect(t, pc, target, KindJump)
	}
	t.PC = target
	return next
}

func hCall(m *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	if !m.push(t, next) {
		return next
	}
	t.PC = next + uint64(int64(i.Disp))
	return next
}

func hCallR(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	target := t.Regs[i.Dst]
	if m.OnIndirect != nil {
		m.OnIndirect(t, pc, target, KindCall)
	}
	if !m.push(t, next) {
		return next
	}
	t.PC = target
	return next
}

func hRet(m *Machine, t *Thread, _ *codePage, _ *mx.Inst, pc, next uint64) uint64 {
	retAddr, ok := m.pop(t)
	if !ok {
		return next
	}
	switch retAddr {
	case magicThreadExit:
		m.threadReturned(t)
		// stepThread returns before its OnBlock site here; suppress ours.
		return t.PC
	case magicHostFrame:
		m.resumeHostFrame(t)
		return t.PC
	}
	if m.OnIndirect != nil {
		m.OnIndirect(t, pc, retAddr, KindRet)
	}
	t.PC = retAddr
	return next
}

func hCallX(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	if int(i.Ext) >= len(m.exts) || m.exts[i.Ext] == nil {
		m.faultf(t, pc, "call to unbound import #%d", i.Ext)
		return next
	}
	m.charge(t, m.extCost[i.Ext])
	if err := m.exts[i.Ext](m, t); err != nil {
		m.faultf(t, pc, "external %q: %v", m.Img.Imports[i.Ext], err)
		return next
	}
	if m.OnBlock != nil && t.PC == next && t.State == Runnable {
		// The instruction after an external call starts a new block.
		m.OnBlock(t, next)
	}
	return next
}

func hSyscall(m *Machine, t *Thread, _ *codePage, _ *mx.Inst, pc, next uint64) uint64 {
	m.faultf(t, pc, "raw syscall executed (unsupported)")
	return next
}

func hHlt(m *Machine, t *Thread, _ *codePage, _ *mx.Inst, _, next uint64) uint64 {
	m.exit(int(int64(t.Regs[mx.RDI])))
	return next
}

func hUd2(m *Machine, t *Thread, _ *codePage, _ *mx.Inst, pc, next uint64) uint64 {
	m.faultf(t, pc, "ud2 executed")
	return next
}

func hPush(m *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	m.push(t, t.Regs[i.Dst])
	return next
}

func hPop(m *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	if v, ok := m.pop(t); ok {
		t.Regs[i.Dst] = v
	}
	return next
}

func hLockAdd(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	old, ok := m.loadMem64(t, pc, addr)
	if !ok {
		return next
	}
	r := old + t.Regs[i.Dst]
	if !m.storeMem64(t, pc, addr, r) {
		return next
	}
	t.setZS(r)
	return next
}

func hLockSub(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	old, ok := m.loadMem64(t, pc, addr)
	if !ok {
		return next
	}
	r := old - t.Regs[i.Dst]
	if !m.storeMem64(t, pc, addr, r) {
		return next
	}
	t.setZS(r)
	return next
}

func hLockAnd(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	old, ok := m.loadMem64(t, pc, addr)
	if !ok {
		return next
	}
	r := old & t.Regs[i.Dst]
	if !m.storeMem64(t, pc, addr, r) {
		return next
	}
	t.setZS(r)
	return next
}

func hLockOr(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	old, ok := m.loadMem64(t, pc, addr)
	if !ok {
		return next
	}
	r := old | t.Regs[i.Dst]
	if !m.storeMem64(t, pc, addr, r) {
		return next
	}
	t.setZS(r)
	return next
}

func hLockXor(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	old, ok := m.loadMem64(t, pc, addr)
	if !ok {
		return next
	}
	r := old ^ t.Regs[i.Dst]
	if !m.storeMem64(t, pc, addr, r) {
		return next
	}
	t.setZS(r)
	return next
}

func hLockXadd(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	old, ok := m.loadMem64(t, pc, addr)
	if !ok {
		return next
	}
	if !m.storeMem64(t, pc, addr, old+t.Regs[i.Dst]) {
		return next
	}
	t.Regs[i.Dst] = old
	return next
}

func hLockInc(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	old, ok := m.loadMem64(t, pc, addr)
	if !ok {
		return next
	}
	if !m.storeMem64(t, pc, addr, old+1) {
		return next
	}
	t.setZS(old + 1)
	return next
}

func hLockDec(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	old, ok := m.loadMem64(t, pc, addr)
	if !ok {
		return next
	}
	if !m.storeMem64(t, pc, addr, old-1) {
		return next
	}
	t.setZS(old - 1)
	return next
}

func hXchg(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	old, ok := m.loadMem64(t, pc, addr)
	if !ok {
		return next
	}
	if !m.storeMem64(t, pc, addr, t.Regs[i.Dst]) {
		return next
	}
	t.Regs[i.Dst] = old
	return next
}

func hCmpxchg(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	old, ok := m.loadMem64(t, pc, addr)
	if !ok {
		return next
	}
	if old == t.Regs[mx.RAX] {
		if !m.storeMem64(t, pc, addr, t.Regs[i.Dst]) {
			return next
		}
		t.ZF = true
	} else {
		t.Regs[mx.RAX] = old
		t.ZF = false
	}
	return next
}

func hMfence(_ *Machine, _ *Thread, _ *codePage, _ *mx.Inst, _, next uint64) uint64 {
	// Interpreter execution is sequentially consistent already.
	return next
}

func hTlsBase(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	t.Regs[i.Dst] = t.TLS
	return next
}

func hVload(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	for l := 0; l < mx.VectorWidth; l++ {
		v, ok := m.loadMem64(t, pc, addr+uint64(l*8))
		if !ok {
			return next
		}
		t.VRegs[i.Dst][l] = v
	}
	return next
}

func hVstore(m *Machine, t *Thread, _ *codePage, i *mx.Inst, pc, next uint64) uint64 {
	addr := t.ea(i)
	for l := 0; l < mx.VectorWidth; l++ {
		if !m.storeMem64(t, pc, addr+uint64(l*8), t.VRegs[i.Dst][l]) {
			return next
		}
	}
	return next
}

func hVadd(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	for l := 0; l < mx.VectorWidth; l++ {
		t.VRegs[i.Dst][l] += t.VRegs[i.Src][l]
	}
	return next
}

func hVmul(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	for l := 0; l < mx.VectorWidth; l++ {
		t.VRegs[i.Dst][l] = uint64(int64(t.VRegs[i.Dst][l]) * int64(t.VRegs[i.Src][l]))
	}
	return next
}

func hVbcast(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	for l := 0; l < mx.VectorWidth; l++ {
		t.VRegs[i.Dst][l] = t.Regs[i.Src]
	}
	return next
}

func hVhadd(_ *Machine, t *Thread, _ *codePage, i *mx.Inst, _, next uint64) uint64 {
	var s uint64
	for l := 0; l < mx.VectorWidth; l++ {
		s += t.VRegs[i.Src][l]
	}
	t.Regs[i.Dst] = s
	return next
}

// ---- fused superinstructions ---------------------------------------------
//
// A flag-setting CMP/TEST/SUB whose fallthrough is a JCC in the same page
// dispatches as one handler retiring both instructions. The pair can never
// fault or block, and the leading op never writes memory, so the JCC read
// from the (immutable) codePage is always consistent with what predecode
// selected. fuseJcc mirrors the stepThread JCC case, including the
// untaken-edge OnBlock call with PC already at the JCC's fallthrough.

func fuseJcc(m *Machine, t *Thread, cp *codePage, next uint64) uint64 {
	off2 := next & (pageSize - 1)
	j := &cp.insts[off2]
	next2 := next + uint64(cp.lens[off2])
	if t.Eval(j.Cc) {
		t.PC = next2 + uint64(int64(j.Disp))
	} else {
		t.PC = next2
		if m.OnBlock != nil {
			m.OnBlock(t, next2)
		}
	}
	return next2
}

func hFusedCmpRR(m *Machine, t *Thread, cp *codePage, i *mx.Inst, _, next uint64) uint64 {
	a, b := t.Regs[i.Dst], t.Regs[i.Src]
	t.setSubFlags(a, b, a-b)
	return fuseJcc(m, t, cp, next)
}

func hFusedCmpRI(m *Machine, t *Thread, cp *codePage, i *mx.Inst, _, next uint64) uint64 {
	a, b := t.Regs[i.Dst], uint64(i.Imm)
	t.setSubFlags(a, b, a-b)
	return fuseJcc(m, t, cp, next)
}

func hFusedTestRR(m *Machine, t *Thread, cp *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] & t.Regs[i.Src]
	t.setZS(r)
	t.CF, t.OF = false, false
	return fuseJcc(m, t, cp, next)
}

func hFusedTestRI(m *Machine, t *Thread, cp *codePage, i *mx.Inst, _, next uint64) uint64 {
	r := t.Regs[i.Dst] & uint64(i.Imm)
	t.setZS(r)
	t.CF, t.OF = false, false
	return fuseJcc(m, t, cp, next)
}

func hFusedSubRR(m *Machine, t *Thread, cp *codePage, i *mx.Inst, _, next uint64) uint64 {
	a, b := t.Regs[i.Dst], t.Regs[i.Src]
	r := a - b
	t.setSubFlags(a, b, r)
	t.Regs[i.Dst] = r
	return fuseJcc(m, t, cp, next)
}

func hFusedSubRI(m *Machine, t *Thread, cp *codePage, i *mx.Inst, _, next uint64) uint64 {
	a, b := t.Regs[i.Dst], uint64(i.Imm)
	r := a - b
	t.setSubFlags(a, b, r)
	t.Regs[i.Dst] = r
	return fuseJcc(m, t, cp, next)
}
