package vm_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mx"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// identitySeeds is the scheduler-seed matrix for differential cache testing.
var identitySeeds = []int64{1, 2, 3, 5}

func sameResult(a, b vm.Result) bool {
	if a.ExitCode != b.ExitCode || a.Cycles != b.Cycles ||
		a.Insts != b.Insts || a.Output != b.Output {
		return false
	}
	if (a.Fault == nil) != (b.Fault == nil) {
		return false
	}
	return a.Fault == nil || *a.Fault == *b.Fault
}

// TestCacheIdentity proves the decode-once engine is invisible: for every
// workload and every seed in the matrix, a run with the predecoded
// instruction cache and a -nocache run produce byte-identical Results
// (exit code, cycles, instruction count, output, fault).
func TestCacheIdentity(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			img, err := w.Compile(2)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range identitySeeds {
				in := w.Input()
				exec := func(nocache bool) vm.Result {
					m, err := vm.NewWithExts(img, seed, in.Exts)
					if err != nil {
						t.Fatal(err)
					}
					if in.Data != nil {
						m.SetInput(in.Data)
					}
					if nocache {
						m.DisableCache()
					}
					return m.Run(bench.Fuel)
				}
				cached, uncached := exec(false), exec(true)
				if !sameResult(cached, uncached) {
					t.Fatalf("seed %d: cache on/off diverge:\n  on:  %+v\n  off: %+v",
						seed, cached, uncached)
				}
			}
		})
	}
}

// TestCacheIdentityRecompiled repeats the differential check on recompiled
// binaries, whose images carry two executable sections (the original text
// and the appended recompiled code) and therefore exercise the multi-range
// code-write watch and multi-page predecode paths.
func TestCacheIdentityRecompiled(t *testing.T) {
	for _, name := range []string{"linear_regression", "string_match"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w := workloads.ByName(name)
			if w == nil {
				t.Fatalf("no workload %q", name)
			}
			img, err := w.Compile(2)
			if err != nil {
				t.Fatal(err)
			}
			p, err := core.NewProject(img, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			rec, err := p.Recompile()
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range identitySeeds {
				in := w.Input()
				exec := func(nocache bool) vm.Result {
					m, err := vm.NewWithExts(rec, seed, in.Exts)
					if err != nil {
						t.Fatal(err)
					}
					if in.Data != nil {
						m.SetInput(in.Data)
					}
					if nocache {
						m.DisableCache()
					}
					return m.Run(bench.Fuel)
				}
				cached, uncached := exec(false), exec(true)
				if !sameResult(cached, uncached) {
					t.Fatalf("seed %d: cache on/off diverge on recompiled binary:\n  on:  %+v\n  off: %+v",
						seed, cached, uncached)
				}
			}
		})
	}
}

// TestSelfModifyingStoreInvalidatesCache pins the invalidation contract: a
// guest that executes a function (so its page is predecoded), stores new
// bytes over one of its instructions, and executes it again must observe the
// new bytes — with the cache on and off, identically.
//
// The patched instruction is placed so that it starts in the last bytes of
// one page and its immediate straddles into the next: the store lands in the
// second page while the cached instruction lives in the first page's
// predecode entry, which exercises the predecessor-page invalidation rule.
func TestSelfModifyingStoreInvalidatesCache(t *testing.T) {
	var results []vm.Result
	for _, nocache := range []bool{false, true} {
		b := asm.NewBuilder("selfmod")
		// Pad so "patch" starts 1 byte before the first page boundary:
		// its MOVRI (10 bytes: op, dst, imm64) straddles into page 1 with
		// the low immediate byte at page offset +2.
		for i := 0; i < pagePad; i++ {
			b.I(mx.Inst{Op: mx.NOP})
		}
		b.Label("patch")
		b.MovRI(mx.RAX, 111)
		b.Ret()
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RBX, "patch")
		b.Call("patch") // first execution: predecodes the page, rax=111
		// Overwrite the MOVRI's low immediate byte (patch+2) with 222.
		b.I(mx.Inst{Op: mx.STOREI8, Base: mx.RBX, Disp: 2, Imm: 222})
		b.Call("patch") // must now observe the new bytes: rax=222
		b.MovRR(mx.RDI, mx.RAX)
		b.CallExt("exit")
		img, _, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(img, 1)
		if err != nil {
			t.Fatal(err)
		}
		if nocache {
			m.DisableCache()
		}
		res := m.Run(1_000_000)
		if res.Fault != nil {
			t.Fatalf("nocache=%v: fault: %v", nocache, res.Fault)
		}
		if res.ExitCode != 222 {
			t.Fatalf("nocache=%v: exit %d, want 222 (stale code executed)", nocache, res.ExitCode)
		}
		results = append(results, res)
	}
	if !sameResult(results[0], results[1]) {
		t.Fatalf("cache on/off diverge: %+v vs %+v", results[0], results[1])
	}
}

// pagePad positions the "patch" label one byte before the 4KiB page
// boundary (pages are 1<<12 bytes; NOP encodes in 1 byte).
const pagePad = 1<<12 - 1
