package vm_test

import (
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/mx"
	"repro/internal/vm"
)

// threadedCounterImage is the 4-thread lock-add workload: enough concurrent
// execution to exercise preemption, atomic, icache, and TLB counting.
func threadedCounterImage(t *testing.T) *image.Image {
	return build(t, func(b *asm.Builder) {
		b.BSS("counter", 8)
		b.BSS("tids", 64)
		b.Entry("main")
		b.Label("main")
		b.MovRI(mx.R12, 0)
		b.Label("spawn")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.R12, Imm: 4})
		b.Jcc(mx.CondGE, "joinloop")
		b.MovSym(mx.RDI, "worker")
		b.MovRI(mx.RSI, 0)
		b.CallExt("thread_create")
		b.MovSym(mx.RBX, "tids")
		b.I(mx.Inst{Op: mx.STOREIDX64, Dst: mx.RAX, Base: mx.RBX, Idx: mx.R12, Scale: 8})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 1})
		b.Jmp("spawn")
		b.Label("joinloop")
		b.MovRI(mx.R12, 0)
		b.Label("join1")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.R12, Imm: 4})
		b.Jcc(mx.CondGE, "report")
		b.MovSym(mx.RBX, "tids")
		b.I(mx.Inst{Op: mx.LOADIDX64, Dst: mx.RDI, Base: mx.RBX, Idx: mx.R12, Scale: 8})
		b.CallExt("thread_join")
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.R12, Imm: 1})
		b.Jmp("join1")
		b.Label("report")
		b.MovSym(mx.RBX, "counter")
		b.I(mx.Inst{Op: mx.LOAD64, Dst: mx.RDI, Base: mx.RBX})
		b.CallExt("exit")

		b.Label("worker")
		b.MovRI(mx.RCX, 0)
		b.MovSym(mx.RBX, "counter")
		b.MovRI(mx.RDX, 1)
		b.Label("wloop")
		b.I(mx.Inst{Op: mx.CMPRI, Dst: mx.RCX, Imm: 1000})
		b.Jcc(mx.CondGE, "wdone")
		b.I(mx.Inst{Op: mx.LOCKADD, Dst: mx.RDX, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.ADDRI, Dst: mx.RCX, Imm: 1})
		b.Jmp("wloop")
		b.Label("wdone")
		b.MovRI(mx.RAX, 0)
		b.Ret()
	})
}

func runCounted(t *testing.T, img *image.Image, seed int64) (vm.Result, *vm.Counters) {
	t.Helper()
	m, err := vm.New(img, seed)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableCounters()
	res := m.Run(50_000_000)
	return res, m.Counters()
}

// TestCountersDeterministic runs the same threaded workload twice with the
// same scheduler seed: the full counter snapshot — per-thread splits,
// preemptions, cache outcomes, everything — must be identical, because the
// counters only observe the (deterministic) execution.
func TestCountersDeterministic(t *testing.T) {
	img := threadedCounterImage(t)
	res1, c1 := runCounted(t, img, 7)
	res2, c2 := runCounted(t, img, 7)
	mustExit(t, res1, 4000)
	mustExit(t, res2, 4000)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("counter snapshots differ for identical seeds:\n%+v\nvs\n%+v", c1, c2)
	}
	if c1.Preemptions == 0 {
		t.Error("no preemptions counted across 4 spinning threads")
	}
	if c1.LockRMW < 4000 {
		t.Errorf("lock-RMW count = %d, want >= 4000 (4 threads x 1000 lock-adds)", c1.LockRMW)
	}
	if c1.ICacheHits == 0 || c1.TLBHits == 0 {
		t.Errorf("icache hits = %d, tlb hits = %d, want both > 0", c1.ICacheHits, c1.TLBHits)
	}
	if len(c1.Threads) != 5 {
		t.Errorf("thread slots = %d, want 5 (main + 4 workers)", len(c1.Threads))
	}
}

// TestCountersDoNotPerturbExecution checks that enabling counters is purely
// observational: result and retired-instruction count match the
// uninstrumented run exactly.
func TestCountersDoNotPerturbExecution(t *testing.T) {
	img := threadedCounterImage(t)
	m, err := vm.New(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	plain := m.Run(50_000_000)
	counted, c := runCounted(t, img, 3)
	mustExit(t, plain, 4000)
	mustExit(t, counted, 4000)
	if plain.Insts != counted.Insts {
		t.Fatalf("instrumentation changed execution: %d vs %d insts", plain.Insts, counted.Insts)
	}
	if c.Insts != counted.Insts {
		t.Fatalf("counter insts %d != result insts %d", c.Insts, counted.Insts)
	}
}

// TestCountersOpcodeAccounting retires a known opcode mix and checks the
// per-kind counters exactly: 3 lock-adds + 2 cmpxchgs = 5 lock-RMWs, 1
// indirect call, and a class histogram that sums to the retired total with
// per-thread totals agreeing.
func TestCountersOpcodeAccounting(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.BSS("cell", 8)
		b.Entry("main")
		b.Label("main")
		b.MovSym(mx.RBX, "cell")
		b.MovRI(mx.RDX, 1)
		b.I(mx.Inst{Op: mx.LOCKADD, Dst: mx.RDX, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.LOCKADD, Dst: mx.RDX, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.LOCKADD, Dst: mx.RDX, Base: mx.RBX})
		b.MovRI(mx.RAX, 0)
		b.MovRI(mx.RCX, 7)
		b.I(mx.Inst{Op: mx.CMPXCHG, Dst: mx.RCX, Base: mx.RBX})
		b.I(mx.Inst{Op: mx.CMPXCHG, Dst: mx.RCX, Base: mx.RBX})
		b.MovSym(mx.RAX, "leaf")
		b.I(mx.Inst{Op: mx.CALLR, Dst: mx.RAX})
		b.MovRI(mx.RDI, 0)
		b.CallExt("exit")
		b.Label("leaf")
		b.Ret()
	})
	res, c := runCounted(t, img, 1)
	mustExit(t, res, 0)
	if c.LockRMW != 5 {
		t.Errorf("LockRMW = %d, want 5", c.LockRMW)
	}
	if c.Cmpxchg != 2 {
		t.Errorf("Cmpxchg = %d, want 2", c.Cmpxchg)
	}
	if c.IndirectBranches != 1 {
		t.Errorf("IndirectBranches = %d, want 1", c.IndirectBranches)
	}
	if c.OpClassCounts[vm.OpClassAtomic] != 5 {
		t.Errorf("atomic class = %d, want 5", c.OpClassCounts[vm.OpClassAtomic])
	}
	if c.OpClassCounts[vm.OpClassIndirect] != 1 {
		t.Errorf("indirect class = %d, want 1", c.OpClassCounts[vm.OpClassIndirect])
	}
	var classSum, threadSum uint64
	for _, n := range c.OpClassCounts {
		classSum += n
	}
	for _, tc := range c.Threads {
		threadSum += tc.Insts
	}
	if classSum != c.Insts || threadSum != c.Insts {
		t.Errorf("class sum %d / thread sum %d, want both == Insts %d", classSum, threadSum, c.Insts)
	}
	if c.Insts != res.Insts {
		t.Errorf("counter insts %d != result insts %d", c.Insts, res.Insts)
	}
}

// TestCounterSinkAbsorbsRuns checks the machine-wide sink seam polybench
// -metrics uses: with CounterSinkDefault installed every new machine counts,
// each Run's totals land in the sink, and repeated Runs are deltas (no
// double counting).
func TestCounterSinkAbsorbsRuns(t *testing.T) {
	sink := vm.NewCounterSink()
	vm.CounterSinkDefault = sink
	defer func() { vm.CounterSinkDefault = nil }()

	img := build(t, func(b *asm.Builder) {
		b.Entry("main")
		b.Label("main")
		b.MovRI(mx.RDI, 9)
		b.CallExt("exit")
	})
	var want uint64
	for i := 0; i < 3; i++ {
		m, err := vm.New(img, 1)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run(1_000_000)
		mustExit(t, res, 9)
		want += res.Insts
	}
	got := sink.Snapshot()
	if got.Insts != want {
		t.Fatalf("sink insts = %d, want %d (3 machines, one Run each)", got.Insts, want)
	}
	var threadSum uint64
	for _, tc := range got.Threads {
		threadSum += tc.Insts
	}
	if threadSum != want {
		t.Fatalf("sink per-thread sum = %d, want %d", threadSum, want)
	}
}

// TestCountersMergeAndClone checks snapshot arithmetic used by the sink.
func TestCountersMergeAndClone(t *testing.T) {
	a := vm.NewCounters()
	b := vm.NewCounters()
	img := threadedCounterImage(t)
	_, c := runCounted(t, img, 5)
	a.Merge(c)
	a.Merge(c)
	b.Merge(c)
	if a.Insts != 2*b.Insts || a.LockRMW != 2*b.LockRMW {
		t.Fatalf("double merge: %d/%d insts, %d/%d lockRMW", a.Insts, b.Insts, a.LockRMW, b.LockRMW)
	}
	cl := c.Clone()
	if !reflect.DeepEqual(cl, c) {
		t.Fatal("clone differs from original")
	}
	cl.Threads[0].Insts++
	if c.Threads[0].Insts == cl.Threads[0].Insts {
		t.Fatal("clone shares thread slice with original")
	}
}
