package vm

import (
	"repro/internal/mx"
)

// This file implements the interpreter's decode-once fast path: a predecoded
// instruction cache keyed by page base. On the first fetch into an executable
// page the machine decodes the whole page — one instruction per byte offset,
// since MX64 is variable-length and control can enter at any byte — and every
// later fetch in that page indexes a struct instead of calling mx.Decode.
//
// Code bytes are read from guest Memory, not from the image, so the cache
// (and the -nocache differential path, which decodes from the same memory on
// every step) sees stores into code pages: Memory's write watcher calls
// invalidateCode for any store that lands in an executable range, and the
// page is re-decoded from the updated bytes on the next fetch. Decode windows
// are clamped to the owning section's end, so a final truncated instruction
// decodes as BAD exactly as a byte-exact uncached fetch would see it.

// codePage is the predecoded form of one executable guest page. Under
// threaded dispatch (step_threaded.go) it additionally carries a per-offset
// dispatch table, compiled lazily by compile() on the page's first threaded
// execution; the switch engine ignores it. Write invalidation drops the
// whole codePage, so fused superinstruction choices and flat-run metadata
// can never outlive the bytes they were compiled from.
type codePage struct {
	insts [pageSize]mx.Inst
	// lens[off] is the encoded length of insts[off]; 0 means the address
	// is outside every executable section and fetching it faults.
	lens [pageSize]uint8

	// threaded-dispatch state (see step_threaded.go)
	compiled bool
	disp     [pageSize]dispatchEnt
}

// noPage is the icBase sentinel for "no page cached" (never a page base:
// page bases are page-aligned).
const noPage = ^uint64(0)

// fetchInst returns the decoded instruction at pc and its encoded length.
// ok=false means pc is not executable (unmapped or outside every Exec
// section); a BAD instruction with ok=true is an illegal-instruction fault.
// The returned pointer aliases the cache (or the machine's uncached scratch
// slot) and is only valid until the next fetch or code-page invalidation.
func (m *Machine) fetchInst(pc uint64) (*mx.Inst, int, bool) {
	if m.nocache {
		return m.decodeUncached(pc)
	}
	base := pc &^ (pageSize - 1)
	cp := m.icPage
	if base != m.icBase {
		cp = m.icache[base]
		if cp == nil {
			cp = m.fillCodePage(base)
			m.icache[base] = cp
			if m.ctr != nil {
				m.ctr.ICacheMisses++
			}
		} else if m.ctr != nil {
			m.ctr.ICacheHits++
		}
		m.icBase, m.icPage = base, cp
	} else if m.ctr != nil {
		m.ctr.ICacheHits++
	}
	off := pc & (pageSize - 1)
	n := cp.lens[off]
	if n == 0 {
		return nil, 0, false
	}
	return &cp.insts[off], int(n), true
}

// fillCodePage predecodes the executable portions of the page at base from
// guest memory. Offsets outside every Exec section keep lens 0 (fetch
// faults there).
func (m *Machine) fillCodePage(base uint64) *codePage {
	cp := new(codePage)
	for i := range m.Img.Sections {
		s := &m.Img.Sections[i]
		if !s.Exec {
			continue
		}
		lo, hi := s.Addr, s.Addr+s.Size
		if lo < base {
			lo = base
		}
		if hi > base+pageSize {
			hi = base + pageSize
		}
		if lo >= hi {
			continue
		}
		run, ok := m.Mem.ReadBytes(lo, hi-lo)
		if !ok {
			continue // loader maps every section page; unreachable
		}
		// Tail: bytes after the page boundary that a straddling
		// instruction may need, clamped to the section end so
		// truncation semantics match an uncached fetch.
		var tail []byte
		tailEnd := s.Addr + s.Size
		if max := hi + mx.MaxEncodedLen - 1; tailEnd > max {
			tailEnd = max
		}
		if tailEnd > hi {
			if tb, ok := m.Mem.ReadBytes(hi, tailEnd-hi); ok {
				tail = tb
			}
		}
		insts, lens := mx.DecodePage(run, tail)
		copy(cp.insts[lo-base:], insts)
		copy(cp.lens[lo-base:], lens)
	}
	return cp
}

// decodeUncached is the -nocache fetch path: find the executable section,
// read one instruction window from guest memory, and decode it. Semantically
// identical to the cached path (including window clamping at section ends),
// just without memoization.
func (m *Machine) decodeUncached(pc uint64) (*mx.Inst, int, bool) {
	s := m.Img.FindSection(pc)
	if s == nil || !s.Exec {
		return nil, 0, false
	}
	window := s.Addr + s.Size - pc
	if window > mx.MaxEncodedLen {
		window = mx.MaxEncodedLen
	}
	var buf [mx.MaxEncodedLen]byte
	got := m.Mem.readInto(pc, buf[:window])
	inst, n := mx.Decode(buf[:got])
	m.uncachedInst = inst
	return &m.uncachedInst, n, true
}

// invalidateCode drops the predecoded pages that could hold an instruction
// overlapping a written code page: the page itself and its predecessor (an
// instruction starting in the last MaxEncodedLen-1 bytes of the previous
// page straddles into this one). Registered as the Memory write watcher over
// the image's executable ranges.
func (m *Machine) invalidateCode(pageBase uint64) {
	if m.ctr != nil {
		if _, ok := m.icache[pageBase]; ok {
			m.ctr.ICacheInvalidations++
		}
		if _, ok := m.icache[pageBase-pageSize]; ok {
			m.ctr.ICacheInvalidations++
		}
	}
	delete(m.icache, pageBase)
	delete(m.icache, pageBase-pageSize)
	if m.icBase == pageBase || m.icBase == pageBase-pageSize {
		m.icBase, m.icPage = noPage, nil
	}
}

// DisableCache turns off the predecoded instruction cache for this machine:
// every step decodes its instruction from guest memory. Execution results
// are identical either way — this is the -nocache escape hatch used for
// differential testing of the cache. Call before Run.
func (m *Machine) DisableCache() { m.nocache = true }

// NoCacheDefault, when set before machines are created, disables the
// predecode cache machine-wide (set once at startup by polybench -nocache;
// individual machines can still be switched with DisableCache).
var NoCacheDefault bool
