package vm

import "fmt"

// DispatchMode selects the interpreter's dispatch engine.
//
// The two engines are architecturally identical by contract: same results,
// same faults, same cycle/instruction totals, same Counters, same scheduler
// interleavings at every seed. TestDispatchIdentity and the randomized
// differential in fuzz_test.go pin that contract.
type DispatchMode uint8

const (
	// DispatchThreaded executes threaded code over predecoded pages: each
	// page carries a per-offset handler table (fused superinstructions
	// included) compiled lazily on first execution, and straight-line runs
	// of simple instructions retire with block-level accounting. The
	// default engine.
	DispatchThreaded DispatchMode = iota
	// DispatchSwitch is the classic one-switch-per-step interpreter
	// (stepThread), kept as the escape hatch and differential oracle.
	DispatchSwitch
)

func (d DispatchMode) String() string {
	if d == DispatchSwitch {
		return "switch"
	}
	return "threaded"
}

// ParseDispatchMode parses a -dispatch flag value.
func ParseDispatchMode(s string) (DispatchMode, error) {
	switch s {
	case "threaded":
		return DispatchThreaded, nil
	case "switch":
		return DispatchSwitch, nil
	}
	return DispatchThreaded, fmt.Errorf("unknown dispatch mode %q (want threaded or switch)", s)
}

// DispatchDefault is the engine new machines start with (set once at startup
// by the -dispatch flag; individual machines can still be switched with
// SetDispatch before Run).
var DispatchDefault = DispatchThreaded

// SetDispatch selects this machine's dispatch engine. Call before Run.
func (m *Machine) SetDispatch(d DispatchMode) { m.dispatch = d }

// Dispatch reports the machine's dispatch engine. Note that -nocache
// execution always decodes and dispatches per step regardless of mode
// (threaded dispatch is a property of predecoded pages).
func (m *Machine) Dispatch() DispatchMode { return m.dispatch }
