package lifter_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/cfg"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/lifter"
)

func liftSrc(t *testing.T, src string, opt int, opts lifter.Options) (*lifter.Lifted, map[string]uint64) {
	t.Helper()
	img, syms, err := cc.Compile(src, cc.Config{Name: "t", Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	g, err := disasm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := lifter.Lift(img, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return lf, syms
}

func defaultOpts() lifter.Options { return lifter.Options{InsertFences: true} }

func TestLiftVerifies(t *testing.T) {
	lf, syms := liftSrc(t, `
func helper(a, b) { return a * b + 1; }
func main() {
	var x = helper(3, 4);
	if (x > 10) { x = x - 1; }
	return x;
}`, 2, defaultOpts())
	if err := ir.Verify(lf.Mod); err != nil {
		t.Fatal(err)
	}
	if lf.FuncByAddr[syms["fn_main"]] == nil || lf.FuncByAddr[syms["fn_helper"]] == nil {
		t.Fatal("lifted functions missing")
	}
}

func TestVirtualStateIsThreadLocal(t *testing.T) {
	lf, _ := liftSrc(t, `func main() { return 0; }`, 0, defaultOpts())
	for _, name := range []string{"vr_rax", "vr_rsp", "fl_zf", "vv0_0"} {
		g := lf.Mod.Global(name)
		if g == nil {
			t.Fatalf("global %s missing", name)
		}
		if !g.ThreadLocal {
			t.Fatalf("global %s must be thread_local (§3.3.2)", name)
		}
	}
	// Original sections are pinned at their original addresses.
	og := lf.Mod.Global("orig.text")
	if og == nil || og.Addr != image.TextBase {
		t.Fatal("original text not mapped at its original address")
	}
}

func TestFenceInsertionAndStackElision(t *testing.T) {
	// O0 code accesses locals through the frame (stack-derived, rbp-based):
	// those loads/stores must be fence-free; the global access must be
	// fenced (acquire after load, release before store).
	lf, syms := liftSrc(t, `
var g = 1;
func main() {
	var x = 5;
	x = x + g;
	g = x;
	return x;
}`, 0, defaultOpts())
	f := lf.FuncByAddr[syms["fn_main"]]
	var fences, stackAccesses, fencedAccesses int
	for _, b := range f.Blocks {
		for i, v := range b.Insts {
			switch v.Op {
			case ir.OpFence:
				fences++
			case ir.OpLoad:
				if v.StackLocal {
					stackAccesses++
					if i+1 < len(b.Insts) && b.Insts[i+1].Op == ir.OpFence {
						t.Fatalf("stack-local load at %#x has a fence", v.OrigPC)
					}
				} else {
					fencedAccesses++
					if i+1 >= len(b.Insts) || b.Insts[i+1].Op != ir.OpFence ||
						b.Insts[i+1].Order != ir.OrderAcquire {
						t.Fatalf("non-stack load at %#x lacks acquire fence", v.OrigPC)
					}
				}
			case ir.OpStore:
				if !v.StackLocal {
					fencedAccesses++
					if i == 0 || b.Insts[i-1].Op != ir.OpFence ||
						b.Insts[i-1].Order != ir.OrderRelease {
						t.Fatalf("non-stack store at %#x lacks release fence", v.OrigPC)
					}
				} else {
					stackAccesses++
				}
			}
		}
	}
	if fences == 0 || stackAccesses == 0 || fencedAccesses == 0 {
		t.Fatalf("fences=%d stack=%d fenced=%d; expected all nonzero",
			fences, stackAccesses, fencedAccesses)
	}
}

func TestNoFencesWhenDisabled(t *testing.T) {
	lf, _ := liftSrc(t, `var g = 1; func main() { g = g + 1; return g; }`, 0,
		lifter.Options{InsertFences: false})
	for _, f := range lf.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if v.Op == ir.OpFence {
					t.Fatal("fence emitted with insertion disabled")
				}
			}
		}
	}
}

func TestIndirectCallBecomesSwitchWithMissDefault(t *testing.T) {
	lf, syms := liftSrc(t, `
func f1(x) { return x + 1; }
func main() {
	var fp = f1;
	return fp(1);
}`, 0, defaultOpts())
	f := lf.FuncByAddr[syms["fn_main"]]
	var sw *ir.Value
	for _, b := range f.Blocks {
		if tv := b.Term(); tv != nil && tv.Op == ir.OpSwitch {
			sw = tv
		}
	}
	if sw == nil {
		t.Fatal("no switch dispatch for indirect call")
	}
	// Default edge must reach the miss runtime.
	def := sw.Targets[0]
	found := false
	for _, v := range def.Insts {
		if v.Op == ir.OpCallExt && v.ExtName == lifter.ExtMiss {
			found = true
		}
	}
	if !found {
		t.Fatal("switch default does not call the miss runtime")
	}
}

func TestAtomicTranslationOptimized(t *testing.T) {
	lf, syms := liftSrc(t, `
var c = 0;
func main() {
	atomic_add(&c, 5);
	var ok = atomic_cas(&c, 5, 9);
	return ok;
}`, 0, defaultOpts())
	f := lf.FuncByAddr[syms["fn_main"]]
	var rmw, cmpx, barriers int
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			switch v.Op {
			case ir.OpAtomicRMW:
				rmw++
			case ir.OpCmpXchg:
				cmpx++
			case ir.OpBarrier:
				barriers++
			}
		}
	}
	if rmw == 0 || cmpx == 0 {
		t.Fatalf("rmw=%d cmpxchg=%d; want both > 0", rmw, cmpx)
	}
	if barriers < 2*(rmw+cmpx) {
		t.Fatalf("atomic translations not bracketed by barriers: %d barriers for %d atomics",
			barriers, rmw+cmpx)
	}
}

func TestAtomicTranslationNaive(t *testing.T) {
	lf, syms := liftSrc(t, `
var c = 0;
func main() { atomic_add(&c, 1); return 0; }`, 0,
		lifter.Options{InsertFences: true, NaiveAtomics: true})
	f := lf.FuncByAddr[syms["fn_main"]]
	var lock, unlock, rmw int
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			switch {
			case v.Op == ir.OpCallExt && v.ExtName == lifter.ExtLock:
				lock++
			case v.Op == ir.OpCallExt && v.ExtName == lifter.ExtUnlock:
				unlock++
			case v.Op == ir.OpAtomicRMW:
				rmw++
			}
		}
	}
	if lock != 1 || unlock != 1 {
		t.Fatalf("lock=%d unlock=%d; want 1/1", lock, unlock)
	}
	if rmw != 0 {
		t.Fatal("naive translation must not use atomicrmw")
	}
}

func TestExternalCallMarshalsSixArgs(t *testing.T) {
	lf, syms := liftSrc(t, `
extern print_i64;
func main() { print_i64(7); return 0; }`, 0, defaultOpts())
	f := lf.FuncByAddr[syms["fn_main"]]
	var call *ir.Value
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpCallExt && v.ExtName == "print_i64" {
				call = v
			}
		}
	}
	if call == nil {
		t.Fatal("external call not lifted")
	}
	if len(call.Args) != 6 {
		t.Fatalf("external call has %d args, want 6 (unknown signature marshals all arg registers)", len(call.Args))
	}
}

func TestAllFunctionsExternalByDefault(t *testing.T) {
	lf, _ := liftSrc(t, `
func a() { return 1; }
func main() { return a(); }`, 0, defaultOpts())
	for _, f := range lf.Mod.Funcs {
		if !f.External {
			t.Fatalf("lifted function %s not marked external (conservative callback handling, §3.3.3)", f.Name)
		}
	}
}

func TestSIMDScalarization(t *testing.T) {
	lf, syms := liftSrc(t, `
var a[4] = {1,2,3,4};
func main() {
	vload(0, a);
	vadd(0, 0);
	return vhadd(0);
}`, 0, defaultOpts())
	f := lf.FuncByAddr[syms["fn_main"]]
	lanes := 0
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpVRegLoad && strings.HasPrefix(v.Global.Name, "vv0_") {
				lanes++
			}
		}
	}
	if lanes < 8 { // vadd reads 8 lane values; vhadd 4 more
		t.Fatalf("SIMD not scalarized through lane globals (saw %d lane loads)", lanes)
	}
}

func TestJumpTableLiftsToSwitch(t *testing.T) {
	// Reuse the cfg jump-table program via raw cc: function pointer table
	// in a global array dispatched with load64 + indirect call.
	lf, _ := liftSrc(t, `
func h0() { return 0; }
func h1() { return 1; }
var handlers[2];
func main() {
	store64(handlers, h0);
	store64(handlers + 8, h1);
	var f = load64(handlers + 8);
	return f();
}`, 0, defaultOpts())
	// Tracing hasn't run: the indirect call's switch has no cases, only the
	// miss default. That is the statically-recompiled contract.
	var sw *ir.Value
	for _, f := range lf.Mod.Funcs {
		for _, b := range f.Blocks {
			if tv := b.Term(); tv != nil && tv.Op == ir.OpSwitch {
				sw = tv
			}
		}
	}
	if sw == nil {
		t.Fatal("no switch")
	}
	// h0/h1 are address-taken: discovered as functions by the disassembler
	// even though the call sites have no static targets.
	if len(lf.FuncByAddr) < 3 {
		t.Fatalf("expected >= 3 lifted functions, got %d", len(lf.FuncByAddr))
	}
}

func TestRetPopsEmulatedStack(t *testing.T) {
	lf, syms := liftSrc(t, `func main() { return 7; }`, 0, defaultOpts())
	f := lf.FuncByAddr[syms["fn_main"]]
	// Find the ret block: it must add 8 to vr_rsp before ret.
	var foundAdjust bool
	for _, b := range f.Blocks {
		tv := b.Term()
		if tv == nil || tv.Op != ir.OpRet {
			continue
		}
		for _, v := range b.Insts {
			if v.Op == ir.OpVRegStore && v.Global.Name == "vr_rsp" {
				if add := v.Args[0]; add.Op == ir.OpAdd {
					if cst := add.Args[1]; cst.Op == ir.OpConst && cst.Const == 8 {
						foundAdjust = true
					}
				}
			}
		}
	}
	if !foundAdjust {
		t.Fatal("ret does not pop the emulated return-address slot")
	}
}

func TestGraphNotMutatedByLift(t *testing.T) {
	img, _, err := cc.Compile(`func main() { return 1; }`, cc.Config{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := disasm.Disassemble(img)
	data1, _ := g.Marshal()
	if _, err := lifter.Lift(img, g, defaultOpts()); err != nil {
		t.Fatal(err)
	}
	data2, _ := g.Marshal()
	if string(data1) != string(data2) {
		t.Fatal("lift mutated the CFG")
	}
	_ = cfg.Graph{}
}
