package lifter

import (
	"repro/internal/cfg"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/mx"
)

// Stack-derivation analysis (§3.3.4): a register is stack-derived at a
// program point if its value was produced from the emulated stack pointer by
// a chain of register moves and constant additions/subtractions (LEA with
// displacement counts; indexed addressing does not). Loads and stores whose
// base register is stack-derived are marked stack-local: they get no fences
// and are known thread-exclusive to the spinloop analysis.
//
// The analysis is a forward dataflow over each function's blocks: the meet
// is intersection (derived only if derived along every path), so it is
// conservative in exactly the direction the paper requires — imprecision can
// only cause extra fences, never missing ones.

type regMask uint16

func (m regMask) has(r mx.Reg) bool    { return m&(1<<r) != 0 }
func (m regMask) set(r mx.Reg) regMask { return m | (1 << r) }
func (m regMask) clear(r mx.Reg) regMask {
	return (m &^ (1 << r)) | (1 << mx.RSP) // rsp is derived by definition
}

// onlyRSP is the state at function entry and after calls.
const onlyRSP = regMask(1 << mx.RSP)

// stackTaint computes, for every block of f, the register mask that is
// stack-derived at block entry.
func stackTaint(img *image.Image, g *cfg.Graph, f *cfg.Func) (map[uint64]regMask, error) {
	const all = regMask(0xffff)
	in := map[uint64]regMask{}
	decoded := map[uint64][]mx.Inst{}
	for _, ba := range f.Blocks {
		in[ba] = all // top; refined by the fixpoint
		insts, _, err := disasm.DecodeBlock(img, g.Blocks[ba])
		if err != nil {
			return nil, err
		}
		decoded[ba] = insts
	}
	in[f.Entry] = onlyRSP

	preds := map[uint64][]uint64{}
	for _, ba := range f.Blocks {
		for _, s := range blockSuccs(g.Blocks[ba]) {
			preds[s] = append(preds[s], ba)
		}
	}

	transferBlock := func(ba uint64) regMask {
		cur := in[ba]
		for _, inst := range decoded[ba] {
			cur = taintTransfer(inst, cur)
		}
		return cur
	}

	for changed := true; changed; {
		changed = false
		for _, ba := range f.Blocks {
			if ba == f.Entry {
				continue
			}
			meet := all
			havePred := false
			for _, p := range preds[ba] {
				meet &= transferBlock(p)
				havePred = true
			}
			if !havePred {
				// Reached only through indirect transfers or an external
				// entry: assume only RSP, the safe default.
				meet = onlyRSP
			}
			meet = meet.set(mx.RSP)
			if meet != in[ba] {
				in[ba] = meet
				changed = true
			}
		}
	}
	return in, nil
}

// blockSuccs returns intraprocedural successor addresses used by the taint
// propagation (direct targets, indirect jump targets — blocks of the same
// function — and fallthroughs).
func blockSuccs(b *cfg.Block) []uint64 {
	var out []uint64
	switch b.Term {
	case cfg.TermJmp, cfg.TermJcc, cfg.TermJmpInd:
		out = append(out, b.Targets...)
	}
	if b.Fall != 0 {
		out = append(out, b.Fall)
	}
	return out
}

// taintTransfer applies one instruction's effect on the derived set.
func taintTransfer(inst mx.Inst, cur regMask) regMask {
	switch inst.Op {
	case mx.MOVRR:
		if cur.has(inst.Src) {
			return cur.set(inst.Dst)
		}
		return cur.clear(inst.Dst)
	case mx.LEA: // dst = base + disp: direct derivation
		if cur.has(inst.Base) {
			return cur.set(inst.Dst)
		}
		return cur.clear(inst.Dst)
	case mx.ADDRI, mx.SUBRI: // dst += const: preserves derivation
		return cur
	case mx.PUSH: // rsp -= 8: rsp stays derived
		return cur
	case mx.POP: // dst <- mem: not derived (rsp stays)
		return cur.clear(inst.Dst)
	case mx.CALL, mx.CALLR, mx.CALLX:
		// Unknown callee effects on registers; rsp is restored by the
		// calling convention.
		return onlyRSP
	case mx.CMPRR, mx.CMPRI, mx.TESTRR, mx.TESTRI,
		mx.STORE8, mx.STORE32, mx.STORE64, mx.STOREI8, mx.STOREI32,
		mx.STOREI64, mx.STOREIDX8, mx.STOREIDX32, mx.STOREIDX64,
		mx.MFENCE, mx.NOP, mx.VSTORE, mx.VADD, mx.VMUL, mx.VBCAST,
		mx.LOCKINC, mx.LOCKDEC,
		mx.JMP, mx.JCC, mx.JMPR, mx.JMPM, mx.RET, mx.HLT, mx.UD2, mx.SYSCALL:
		// No GPR writes.
		return cur
	case mx.LOCKADD, mx.LOCKSUB, mx.LOCKAND, mx.LOCKOR, mx.LOCKXOR:
		return cur // memory destination; Dst register is a source here
	default:
		// Every other instruction writes Dst with a non-derived value.
		// (SUBRR/ADDRR with a register operand are not "direct" derivation
		// per the paper, so a VLA's rsp -= n would clear rsp — clear()
		// keeps rsp set unconditionally, since rsp is the stack pointer.)
		if mx.LayoutOf(inst.Op) == mx.LayoutNone {
			return cur
		}
		return cur.clear(inst.Dst)
	}
}
