// Package lifter translates MX64 machine code into PIR, the package ir
// intermediate representation.
//
// The lifted IR emulates execution of each machine instruction against a
// virtual CPU state held in thread_local globals: sixteen general-purpose
// registers, the four flags, and the vector-register lanes (§3.3.2). The
// emulated program stack is ordinary guest memory addressed through the
// virtual rsp. Translation is deliberately verbose and unrefined (§2.2.1) —
// every register read/write becomes a vreg load/store, every flag update is
// materialized — and the optimizer (internal/opt) is responsible for
// refinement, exactly as the paper relies on LLVM passes.
//
// Key translations:
//   - indirect jumps/calls become switch dispatch over the known-target set
//     with a default edge into the control-flow-miss runtime (additive
//     lifting, §3.2);
//   - direct calls push a faithful return-address slot on the emulated
//     stack and call the lifted callee natively; RET pops it;
//   - lock-prefixed instructions map to seq_cst atomicrmw/cmpxchg wrapped in
//     compiler barriers (Listing 2; §3.3.1) — or, in NaiveAtomics mode, to
//     the global-spinlock translation of Listing 1 for the ablation;
//   - SIMD instructions are scalarized through per-lane globals, modelling
//     the QEMU-helper-style lifting whose cost §4.2 discusses;
//   - acquire/release fences are inserted per Lasagne's strategy around
//     original-program loads/stores, except accesses whose address is
//     stack-derived (taint.go; §3.3.4).
package lifter

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/mx"
	"repro/internal/obs"
)

// Runtime external names (bound by the recompiled binary's host runtime).
const (
	ExtMiss   = "__polynima_miss"
	ExtLock   = "__polynima_lock"
	ExtUnlock = "__polynima_unlock"
)

// Options controls lifting.
type Options struct {
	// InsertFences enables Lasagne-style fence insertion (default in the
	// pipeline; disabled only for ablation benchmarks).
	InsertFences bool
	// NaiveAtomics selects the Listing 1 global-lock translation of atomic
	// instructions instead of the optimized Listing 2 mapping.
	NaiveAtomics bool
	// TrapOnMiss replaces the control-flow-miss runtime call with a plain
	// trap: the static-only baseline behavior (unresolved indirect transfer
	// => crash), with no additive recovery.
	TrapOnMiss bool
	// Obs/ObsTID, when set, record a span for the serial whole-module Lift
	// on the given trace track. The parallel pipeline (internal/core)
	// records its own per-function spans instead.
	Obs    *obs.Tracer
	ObsTID int64
}

// Lifted is the result of lifting a binary.
type Lifted struct {
	Mod        *ir.Module
	FuncByAddr map[uint64]*ir.Func
	VRegs      [mx.NumRegs]*ir.Global
	Flags      [4]*ir.Global // zf, sf, cf, of
	VLanes     [mx.NumVRegs][mx.VectorWidth]*ir.Global
	Img        *image.Image
	Graph      *cfg.Graph
	// NumSites is the number of original-program memory access sites
	// (loads, stores, atomics), each tagged with a deterministic SiteID.
	// Lifting the same (image, graph) twice yields identical SiteIDs, which
	// is how the spinloop analysis correlates dynamic records from an
	// instrumented build with the optimized build it analyzes (§3.4.2).
	NumSites int
}

// Flag indices into Lifted.Flags.
const (
	FlagZF = iota
	FlagSF
	FlagCF
	FlagOF
)

// NewSkeleton builds the module skeleton shared by every lifting strategy:
// the virtual CPU state globals, the original image mapped at its original
// addresses, and one empty registered function per CFG function (created in
// ascending entry order so module layout is independent of how — and in what
// order — function bodies are later produced). Bodies are filled in by
// LiftFunc, or replayed from a function cache (internal/core).
func NewSkeleton(img *image.Image, g *cfg.Graph) *Lifted {
	m := ir.NewModule(img.Name)
	lf := &Lifted{Mod: m, FuncByAddr: map[uint64]*ir.Func{}, Img: img, Graph: g}

	// Virtual CPU state.
	for r := mx.Reg(0); r < mx.NumRegs; r++ {
		lf.VRegs[r] = m.NewGlobal("vr_"+r.String(), 8)
		lf.VRegs[r].ThreadLocal = true
	}
	for i, n := range []string{"zf", "sf", "cf", "of"} {
		lf.Flags[i] = m.NewGlobal("fl_"+n, 8)
		lf.Flags[i].ThreadLocal = true
	}
	for v := 0; v < mx.NumVRegs; v++ {
		for l := 0; l < mx.VectorWidth; l++ {
			lf.VLanes[v][l] = m.NewGlobal(fmt.Sprintf("vv%d_%d", v, l), 8)
			lf.VLanes[v][l].ThreadLocal = true
		}
	}

	// The original image mapped at its original addresses (code pointers
	// and data references keep working without relocation info, §3.1).
	for _, s := range img.Sections {
		og := m.NewGlobal("orig"+s.Name, s.Size)
		og.Addr = s.Addr
		og.Init = s.Data
	}

	// Create all functions first so calls can reference them.
	for _, cf := range SortedFuncs(g) {
		f := m.NewFunc(fmt.Sprintf("lifted_%x", cf.Entry))
		f.External = true // conservatively a possible callback entry (§3.3.3)
		f.OrigEntry = cf.Entry
		lf.FuncByAddr[cf.Entry] = f
	}
	return lf
}

// SortedFuncs returns g's functions in lift order (ascending entry address),
// the order skeleton functions are registered in and site-ID bases are
// assigned in.
func SortedFuncs(g *cfg.Graph) []*cfg.Func {
	funcs := append([]*cfg.Func(nil), g.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Entry < funcs[j].Entry })
	return funcs
}

// LiftFunc lifts the single CFG function cf into its skeleton function,
// numbering memory-access SiteIDs locally from 1, and returns how many sites
// it emitted. It touches only cf's own function and reads the shared
// image/graph/skeleton, so distinct functions may be lifted concurrently;
// FinalizeSites rebases the local site numbers into the module-wide
// numbering once every body exists.
func (lf *Lifted) LiftFunc(cf *cfg.Func, opts Options) (int, error) {
	sites, err := lf.liftFunc(cf, opts)
	if err != nil {
		return 0, fmt.Errorf("lifter: func %#x: %w", cf.Entry, err)
	}
	return sites, nil
}

// FinalizeSites rewrites per-function-local SiteIDs into the global
// numbering: functions are visited in entry order and each gets the running
// total of prior functions' lift-time site counts as its base — exactly the
// IDs a serial whole-module lift assigns. counts maps function entry to the
// site count its body was lifted with (whether lifted now or replayed from
// cache). NumSites is set to the total.
func (lf *Lifted) FinalizeSites(counts map[uint64]int) {
	base := 0
	for _, cf := range SortedFuncs(lf.Graph) {
		f := lf.FuncByAddr[cf.Entry]
		if f == nil {
			continue
		}
		if base > 0 {
			for _, b := range f.Blocks {
				for _, v := range b.Insts {
					if v.SiteID > 0 {
						v.SiteID += base
					}
				}
			}
		}
		base += counts[cf.Entry]
	}
	lf.NumSites = base
}

// Lift translates the program described by g into a PIR module.
func Lift(img *image.Image, g *cfg.Graph, opts Options) (*Lifted, error) {
	sp := opts.Obs.Begin(opts.ObsTID, "lifter", "lift-module",
		obs.Arg{Key: "funcs", Val: len(g.Funcs)})
	defer sp.End()
	lf := NewSkeleton(img, g)
	counts := make(map[uint64]int, len(g.Funcs))
	for _, cf := range SortedFuncs(g) {
		sites, err := lf.LiftFunc(cf, opts)
		if err != nil {
			return nil, err
		}
		counts[cf.Entry] = sites
	}
	lf.FinalizeSites(counts)
	if err := ir.Verify(lf.Mod); err != nil {
		return nil, fmt.Errorf("lifter: verification failed: %w", err)
	}
	return lf, nil
}

// fnLifter lifts one function.
type fnLifter struct {
	lf     *Lifted
	opts   Options
	f      *ir.Func
	cfgF   *cfg.Func
	blocks map[uint64]*ir.Block
	taint  map[uint64]regMask

	cur     *ir.Block
	derived regMask
	pc      uint64 // current original instruction address
	nextPC  uint64
	dead    bool // an unreachable was emitted; skip the rest of the block
	naux    int
	sites   int // function-local site counter; rebased by FinalizeSites

	// lastFlag tracks, within a block, the operation that last set the
	// flags, so conditions can be lifted as direct comparisons on the SSA
	// operands instead of reloading materialized flag globals — the
	// instcombine-style cleanup LLVM performs on flag-emulating lifted IR.
	// The flag globals are still written at every flag-setting instruction;
	// the dead-store eliminator removes the unread ones.
	lastFlag flagState
}

// flagKind classifies the instruction that last set the flags.
type flagKind uint8

const (
	flagsUnknown flagKind = iota
	flagsSub              // CMP/SUB/NEG: full a-vs-b semantics
	flagsLogic            // AND/OR/XOR/TEST: ZF/SF from result, CF=OF=0
	flagsZS               // ADD/IMUL/SHIFT/...: only ZF/SF valid via result
	flagsBool             // CMPXCHG: ZF holds a known 0/1 value
)

type flagState struct {
	kind flagKind
	a, b *ir.Value // flagsSub operands
	r    *ir.Value // result value (flagsSub/flagsLogic/flagsZS)
	v    *ir.Value // flagsBool 0/1 value
}

func (lf *Lifted) liftFunc(cf *cfg.Func, opts Options) (int, error) {
	f := lf.FuncByAddr[cf.Entry]
	taint, err := stackTaint(lf.Img, lf.Graph, cf)
	if err != nil {
		return 0, err
	}
	n := &fnLifter{lf: lf, opts: opts, f: f, cfgF: cf, taint: taint,
		blocks: map[uint64]*ir.Block{}}

	// Entry block first, then the rest in address order.
	addrs := append([]uint64(nil), cf.Blocks...)
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i] == cf.Entry {
			return true
		}
		if addrs[j] == cf.Entry {
			return false
		}
		return addrs[i] < addrs[j]
	})
	for _, a := range addrs {
		b := f.NewBlock(fmt.Sprintf("b_%x", a))
		b.OrigAddr = a
		n.blocks[a] = b
	}
	for _, a := range addrs {
		if err := n.liftBlock(a); err != nil {
			return 0, err
		}
	}
	return n.sites, nil
}

// --- small emission helpers -------------------------------------------------

func (n *fnLifter) emit(op ir.Op, args ...*ir.Value) *ir.Value {
	v := n.cur.Append(op, args...)
	v.OrigPC = n.pc
	return v
}

func (n *fnLifter) c(x int64) *ir.Value {
	v := n.emit(ir.OpConst)
	v.Const = x
	return v
}

func (n *fnLifter) ld(r mx.Reg) *ir.Value {
	v := n.emit(ir.OpVRegLoad)
	v.Global = n.lf.VRegs[r]
	return v
}

func (n *fnLifter) st(r mx.Reg, val *ir.Value) {
	v := n.emit(ir.OpVRegStore, val)
	v.Global = n.lf.VRegs[r]
}

func (n *fnLifter) ldFlag(i int) *ir.Value {
	v := n.emit(ir.OpVRegLoad)
	v.Global = n.lf.Flags[i]
	return v
}

func (n *fnLifter) stFlag(i int, val *ir.Value) {
	v := n.emit(ir.OpVRegStore, val)
	v.Global = n.lf.Flags[i]
}

func (n *fnLifter) ldLane(vr mx.Reg, lane int) *ir.Value {
	v := n.emit(ir.OpVRegLoad)
	v.Global = n.lf.VLanes[vr][lane]
	return v
}

func (n *fnLifter) stLane(vr mx.Reg, lane int, val *ir.Value) {
	v := n.emit(ir.OpVRegStore, val)
	v.Global = n.lf.VLanes[vr][lane]
}

func (n *fnLifter) icmp(p ir.Pred, a, b *ir.Value) *ir.Value {
	v := n.emit(ir.OpICmp, a, b)
	v.Pred = p
	return v
}

func (n *fnLifter) fence(o ir.Order) {
	v := n.emit(ir.OpFence)
	v.Order = o
}

func (n *fnLifter) barrier() { n.emit(ir.OpBarrier) }

func (n *fnLifter) newSite() int {
	n.sites++
	return n.sites
}

// gload emits an original-program memory load with fence insertion.
func (n *fnLifter) gload(addr *ir.Value, width int, sext, stackLocal bool) *ir.Value {
	v := n.emit(ir.OpLoad, addr)
	v.Width = width
	v.SignExt = sext
	v.StackLocal = stackLocal
	v.SiteID = n.newSite()
	if n.opts.InsertFences && !stackLocal {
		n.fence(ir.OrderAcquire)
	}
	return v
}

// gstore emits an original-program memory store with fence insertion.
func (n *fnLifter) gstore(addr, val *ir.Value, width int, stackLocal bool) {
	if n.opts.InsertFences && !stackLocal {
		n.fence(ir.OrderRelease)
	}
	v := n.emit(ir.OpStore, addr, val)
	v.Width = width
	v.StackLocal = stackLocal
	v.SiteID = n.newSite()
}

// memAddr computes the effective address of a Mem-layout operand.
func (n *fnLifter) memAddr(inst mx.Inst) (*ir.Value, bool) {
	addr := n.ld(inst.Base)
	if inst.Disp != 0 {
		addr = n.emit(ir.OpAdd, addr, n.c(int64(inst.Disp)))
	}
	return addr, n.derived.has(inst.Base)
}

// memAddrIdx computes the effective address of a MemIdx-layout operand.
// Indexed addressing is never "directly" stack-derived (§3.3.4).
func (n *fnLifter) memAddrIdx(inst mx.Inst) *ir.Value {
	base := n.ld(inst.Base)
	idx := n.ld(inst.Idx)
	if inst.Scale > 1 {
		sh := int64(0)
		for s := inst.Scale; s > 1; s >>= 1 {
			sh++
		}
		idx = n.emit(ir.OpShl, idx, n.c(sh))
	}
	addr := n.emit(ir.OpAdd, base, idx)
	if inst.Disp != 0 {
		addr = n.emit(ir.OpAdd, addr, n.c(int64(inst.Disp)))
	}
	return addr
}

// --- flags -------------------------------------------------------------------

func (n *fnLifter) setZS(r *ir.Value) {
	n.stFlag(FlagZF, n.icmp(ir.PredEQ, r, n.c(0)))
	n.stFlag(FlagSF, n.icmp(ir.PredSLT, r, n.c(0)))
	n.lastFlag = flagState{kind: flagsZS, r: r}
}

func (n *fnLifter) clearCFOF(r *ir.Value) {
	n.stFlag(FlagCF, n.c(0))
	n.stFlag(FlagOF, n.c(0))
	n.lastFlag = flagState{kind: flagsLogic, r: r}
}

func (n *fnLifter) setAddFlags(a, b, r *ir.Value) {
	n.setZS(r)
	n.stFlag(FlagCF, n.icmp(ir.PredULT, r, a))
	sa := n.icmp(ir.PredSLT, a, n.c(0))
	sb := n.icmp(ir.PredSLT, b, n.c(0))
	sr := n.icmp(ir.PredSLT, r, n.c(0))
	same := n.icmp(ir.PredEQ, sa, sb)
	diff := n.icmp(ir.PredNE, sr, sa)
	n.stFlag(FlagOF, n.emit(ir.OpAnd, same, diff))
}

func (n *fnLifter) setSubFlags(a, b, r *ir.Value) {
	n.setZS(r)
	n.stFlag(FlagCF, n.icmp(ir.PredULT, a, b))
	sa := n.icmp(ir.PredSLT, a, n.c(0))
	sb := n.icmp(ir.PredSLT, b, n.c(0))
	sr := n.icmp(ir.PredSLT, r, n.c(0))
	diffAB := n.icmp(ir.PredNE, sa, sb)
	diffRA := n.icmp(ir.PredNE, sr, sa)
	n.stFlag(FlagOF, n.emit(ir.OpAnd, diffAB, diffRA))
	n.lastFlag = flagState{kind: flagsSub, a: a, b: b, r: r}
}

// condValue materializes an MX64 condition as a 0/1 value — directly from
// the SSA operands of the last flag-setting instruction when it is known in
// this block, otherwise from the materialized flag globals.
func (n *fnLifter) condValue(cc mx.Cond) *ir.Value {
	if v := n.condDirect(cc); v != nil {
		return v
	}
	return n.condFromFlags(cc)
}

// condDirect lowers a condition against the tracked flag source, or returns
// nil when it cannot.
func (n *fnLifter) condDirect(cc mx.Cond) *ir.Value {
	fs := n.lastFlag
	switch fs.kind {
	case flagsSub:
		preds := map[mx.Cond]ir.Pred{
			mx.CondE: ir.PredEQ, mx.CondNE: ir.PredNE,
			mx.CondL: ir.PredSLT, mx.CondLE: ir.PredSLE,
			mx.CondG: ir.PredSGT, mx.CondGE: ir.PredSGE,
			mx.CondB: ir.PredULT, mx.CondBE: ir.PredULE,
			mx.CondA: ir.PredUGT, mx.CondAE: ir.PredUGE,
		}
		if p, ok := preds[cc]; ok {
			return n.icmp(p, fs.a, fs.b)
		}
		switch cc {
		case mx.CondS:
			return n.icmp(ir.PredSLT, fs.r, n.c(0))
		case mx.CondNS:
			return n.icmp(ir.PredSGE, fs.r, n.c(0))
		}
	case flagsLogic:
		// CF = OF = 0; ZF/SF from the result.
		switch cc {
		case mx.CondE, mx.CondBE:
			return n.icmp(ir.PredEQ, fs.r, n.c(0))
		case mx.CondNE, mx.CondA:
			return n.icmp(ir.PredNE, fs.r, n.c(0))
		case mx.CondS, mx.CondL:
			return n.icmp(ir.PredSLT, fs.r, n.c(0))
		case mx.CondNS, mx.CondGE:
			return n.icmp(ir.PredSGE, fs.r, n.c(0))
		case mx.CondLE:
			return n.icmp(ir.PredSLE, fs.r, n.c(0))
		case mx.CondG:
			return n.icmp(ir.PredSGT, fs.r, n.c(0))
		case mx.CondB:
			return n.c(0)
		case mx.CondAE:
			return n.c(1)
		}
	case flagsZS:
		switch cc {
		case mx.CondE:
			return n.icmp(ir.PredEQ, fs.r, n.c(0))
		case mx.CondNE:
			return n.icmp(ir.PredNE, fs.r, n.c(0))
		case mx.CondS:
			return n.icmp(ir.PredSLT, fs.r, n.c(0))
		case mx.CondNS:
			return n.icmp(ir.PredSGE, fs.r, n.c(0))
		}
	case flagsBool:
		switch cc {
		case mx.CondE:
			return fs.v
		case mx.CondNE:
			return n.icmp(ir.PredEQ, fs.v, n.c(0))
		}
	}
	return nil
}

// condFromFlags materializes a condition from the flag globals.
func (n *fnLifter) condFromFlags(cc mx.Cond) *ir.Value {
	not := func(v *ir.Value) *ir.Value { return n.icmp(ir.PredEQ, v, n.c(0)) }
	switch cc {
	case mx.CondE:
		return n.ldFlag(FlagZF)
	case mx.CondNE:
		return not(n.ldFlag(FlagZF))
	case mx.CondL:
		return n.icmp(ir.PredNE, n.ldFlag(FlagSF), n.ldFlag(FlagOF))
	case mx.CondLE:
		l := n.icmp(ir.PredNE, n.ldFlag(FlagSF), n.ldFlag(FlagOF))
		return n.emit(ir.OpOr, n.ldFlag(FlagZF), l)
	case mx.CondG:
		ge := n.icmp(ir.PredEQ, n.ldFlag(FlagSF), n.ldFlag(FlagOF))
		return n.emit(ir.OpAnd, not(n.ldFlag(FlagZF)), ge)
	case mx.CondGE:
		return n.icmp(ir.PredEQ, n.ldFlag(FlagSF), n.ldFlag(FlagOF))
	case mx.CondB:
		return n.ldFlag(FlagCF)
	case mx.CondBE:
		return n.emit(ir.OpOr, n.ldFlag(FlagCF), n.ldFlag(FlagZF))
	case mx.CondA:
		return n.emit(ir.OpAnd, not(n.ldFlag(FlagCF)), not(n.ldFlag(FlagZF)))
	case mx.CondAE:
		return not(n.ldFlag(FlagCF))
	case mx.CondS:
		return n.ldFlag(FlagSF)
	case mx.CondNS:
		return not(n.ldFlag(FlagSF))
	}
	return n.c(0)
}

// --- block lifting -----------------------------------------------------------

func (n *fnLifter) liftBlock(addr uint64) error {
	cb := n.lf.Graph.Blocks[addr]
	if cb == nil {
		return fmt.Errorf("missing cfg block %#x", addr)
	}
	insts, pcs, err := disasm.DecodeBlock(n.lf.Img, cb)
	if err != nil {
		return err
	}
	n.cur = n.blocks[addr]
	n.derived = n.taint[addr]
	n.dead = false
	n.lastFlag = flagState{}

	for i, inst := range insts {
		n.pc = pcs[i]
		n.nextPC = n.pc + uint64(inst.Len())
		if n.dead {
			break
		}
		if err := n.liftInst(inst, cb); err != nil {
			return fmt.Errorf("at %#x (%s): %w", n.pc, inst, err)
		}
		n.derived = taintTransfer(inst, n.derived)
	}
	// Unterminated IR block: the cfg block fell through (split or callext).
	if !n.dead && n.cur.Term() == nil {
		fall := cb.Fall
		if fall == 0 {
			fall = addr + cb.Size
		}
		if fb, ok := n.blocks[fall]; ok {
			n.emit(ir.OpBr).Targets = []*ir.Block{fb}
		} else {
			n.missTo(n.c(int64(fall)))
		}
	}
	return nil
}

// missTo terminates the current block with a control-flow-miss runtime call
// (the additive-lifting hook): record the dynamic target, then stop. Under
// TrapOnMiss it emits a bare trap instead (static-only baselines).
func (n *fnLifter) missTo(target *ir.Value) {
	if !n.opts.TrapOnMiss {
		call := n.emit(ir.OpCallExt, n.c(int64(n.pc)), target)
		call.ExtName = ExtMiss
	}
	n.emit(ir.OpUnreachable)
	n.dead = true
}

// dummyPush writes the return address to the emulated stack before a call,
// preserving the original stack layout (callees may take addresses relative
// to their frame; alignment guarantees are maintained, §3.3.1).
func (n *fnLifter) dummyPush(retAddr uint64) {
	rsp := n.ld(mx.RSP)
	nrsp := n.emit(ir.OpSub, rsp, n.c(8))
	n.st(mx.RSP, nrsp)
	n.gstore(nrsp, n.c(int64(retAddr)), 8, true)
}

func (n *fnLifter) liftInst(inst mx.Inst, cb *cfg.Block) error {
	switch inst.Op {
	case mx.NOP:
	case mx.MOVRR:
		n.st(inst.Dst, n.ld(inst.Src))
	case mx.MOVRI:
		n.st(inst.Dst, n.c(inst.Imm))
	case mx.LEA:
		addr, _ := n.memAddr(inst)
		n.st(inst.Dst, addr)
	case mx.LEAIDX:
		n.st(inst.Dst, n.memAddrIdx(inst))

	case mx.LOAD8, mx.LOAD32, mx.LOAD64:
		addr, sl := n.memAddr(inst)
		w, sext := widthOf(inst.Op)
		n.st(inst.Dst, n.gload(addr, w, sext, sl))
	case mx.STORE8, mx.STORE32, mx.STORE64:
		addr, sl := n.memAddr(inst)
		w, _ := widthOf(inst.Op)
		n.gstore(addr, n.ld(inst.Dst), w, sl)
	case mx.STOREI8, mx.STOREI32, mx.STOREI64:
		addr, sl := n.memAddr(inst)
		w, _ := widthOf(inst.Op)
		n.gstore(addr, n.c(inst.Imm), w, sl)
	case mx.LOADIDX8, mx.LOADIDX32, mx.LOADIDX64:
		addr := n.memAddrIdx(inst)
		w, sext := widthOf(inst.Op)
		n.st(inst.Dst, n.gload(addr, w, sext, false))
	case mx.STOREIDX8, mx.STOREIDX32, mx.STOREIDX64:
		addr := n.memAddrIdx(inst)
		w, _ := widthOf(inst.Op)
		n.gstore(addr, n.ld(inst.Dst), w, false)

	case mx.ADDRR, mx.ADDRI:
		a := n.ld(inst.Dst)
		b := n.aluSrc(inst)
		r := n.emit(ir.OpAdd, a, b)
		n.setAddFlags(a, b, r)
		n.st(inst.Dst, r)
	case mx.SUBRR, mx.SUBRI:
		a := n.ld(inst.Dst)
		b := n.aluSrc(inst)
		r := n.emit(ir.OpSub, a, b)
		n.setSubFlags(a, b, r)
		n.st(inst.Dst, r)
	case mx.CMPRR, mx.CMPRI:
		a := n.ld(inst.Dst)
		b := n.aluSrc(inst)
		r := n.emit(ir.OpSub, a, b)
		n.setSubFlags(a, b, r)
	case mx.ANDRR, mx.ANDRI, mx.ORRR, mx.ORRI, mx.XORRR, mx.XORRI:
		a := n.ld(inst.Dst)
		b := n.aluSrc(inst)
		var r *ir.Value
		switch inst.Op {
		case mx.ANDRR, mx.ANDRI:
			r = n.emit(ir.OpAnd, a, b)
		case mx.ORRR, mx.ORRI:
			r = n.emit(ir.OpOr, a, b)
		default:
			r = n.emit(ir.OpXor, a, b)
		}
		n.setZS(r)
		n.clearCFOF(r)
		n.st(inst.Dst, r)
	case mx.TESTRR, mx.TESTRI:
		a := n.ld(inst.Dst)
		b := n.aluSrc(inst)
		r := n.emit(ir.OpAnd, a, b)
		n.setZS(r)
		n.clearCFOF(r)
	case mx.SHLRR, mx.SHLRI, mx.SHRRR, mx.SHRRI, mx.SARRR, mx.SARRI:
		a := n.ld(inst.Dst)
		b := n.aluSrc(inst)
		var r *ir.Value
		switch inst.Op {
		case mx.SHLRR, mx.SHLRI:
			r = n.emit(ir.OpShl, a, b)
		case mx.SHRRR, mx.SHRRI:
			r = n.emit(ir.OpLshr, a, b)
		default:
			r = n.emit(ir.OpAshr, a, b)
		}
		n.setZS(r)
		n.st(inst.Dst, r)
	case mx.IMULRR, mx.IMULRI:
		a := n.ld(inst.Dst)
		b := n.aluSrc(inst)
		r := n.emit(ir.OpMul, a, b)
		n.setZS(r)
		n.st(inst.Dst, r)
	case mx.DIVRR, mx.MODRR:
		a := n.ld(inst.Dst)
		b := n.ld(inst.Src)
		op := ir.OpSDiv
		if inst.Op == mx.MODRR {
			op = ir.OpSRem
		}
		r := n.emit(op, a, b)
		n.setZS(r)
		n.st(inst.Dst, r)
	case mx.NEG:
		a := n.ld(inst.Dst)
		r := n.emit(ir.OpNeg, a)
		n.setSubFlags(n.c(0), a, r)
		n.st(inst.Dst, r)
	case mx.NOT:
		n.st(inst.Dst, n.emit(ir.OpNot, n.ld(inst.Dst)))
	case mx.SETCC:
		n.st(inst.Dst, n.condValue(inst.Cc))

	case mx.PUSH:
		val := n.ld(inst.Dst)
		rsp := n.ld(mx.RSP)
		nrsp := n.emit(ir.OpSub, rsp, n.c(8))
		n.st(mx.RSP, nrsp)
		n.gstore(nrsp, val, 8, true)
	case mx.POP:
		rsp := n.ld(mx.RSP)
		v := n.gload(rsp, 8, false, true)
		n.st(inst.Dst, v)
		n.st(mx.RSP, n.emit(ir.OpAdd, rsp, n.c(8)))

	case mx.JMP:
		target := uint64(int64(n.nextPC) + int64(inst.Disp))
		if tb, ok := n.blocks[target]; ok {
			n.emit(ir.OpBr).Targets = []*ir.Block{tb}
		} else {
			n.missTo(n.c(int64(target)))
		}
		n.dead = true
	case mx.JCC:
		target := uint64(int64(n.nextPC) + int64(inst.Disp))
		tb, okT := n.blocks[target]
		fb, okF := n.blocks[n.nextPC]
		if !okT || !okF {
			// Partially lifted graph (single-block translation, trace-only
			// baselines): route missing edges through the miss handler.
			cond := n.condValue(inst.Cc)
			takenB := n.newAuxBlock("jcc_t")
			fallB := n.newAuxBlock("jcc_f")
			cbv := n.emit(ir.OpCondBr, cond)
			cbv.Targets = []*ir.Block{takenB, fallB}
			save := n.cur
			n.cur = takenB
			if okT {
				n.emit(ir.OpBr).Targets = []*ir.Block{tb}
			} else {
				n.dead = false
				n.missTo(n.c(int64(target)))
			}
			n.cur = fallB
			if okF {
				n.emit(ir.OpBr).Targets = []*ir.Block{fb}
			} else {
				n.dead = false
				n.missTo(n.c(int64(n.nextPC)))
			}
			n.cur = save
			n.dead = true
			return nil
		}
		cond := n.condValue(inst.Cc)
		cbv := n.emit(ir.OpCondBr, cond)
		cbv.Targets = []*ir.Block{tb, fb}
		n.dead = true
	case mx.JMPR:
		n.liftIndirectJump(n.ld(inst.Dst), cb)
	case mx.JMPM:
		slot := n.memAddrIdx(mx.Inst{Op: mx.LEAIDX, Base: inst.Base, Idx: inst.Idx, Scale: 8, Disp: inst.Disp})
		target := n.gload(slot, 8, false, false)
		n.liftIndirectJump(target, cb)
	case mx.CALL:
		target := uint64(int64(n.nextPC) + int64(inst.Disp))
		callee, ok := n.lf.FuncByAddr[target]
		if !ok {
			n.missTo(n.c(int64(target)))
			return nil
		}
		n.dummyPush(n.nextPC)
		n.emit(ir.OpCall).Fn = callee
		n.brFall(cb)
	case mx.CALLR:
		n.liftIndirectCall(n.ld(inst.Dst), cb)
	case mx.CALLX:
		if int(inst.Ext) >= len(n.lf.Img.Imports) {
			return fmt.Errorf("import #%d out of range", inst.Ext)
		}
		n.liftExternalCall(n.lf.Img.Imports[inst.Ext])
	case mx.RET:
		rsp := n.ld(mx.RSP)
		n.st(mx.RSP, n.emit(ir.OpAdd, rsp, n.c(8)))
		n.emit(ir.OpRet)
		n.dead = true
	case mx.HLT:
		call := n.emit(ir.OpCallExt, n.ld(mx.RDI))
		call.ExtName = "exit"
		n.emit(ir.OpUnreachable)
		n.dead = true
	case mx.SYSCALL, mx.UD2, mx.BAD:
		// Unsupported (§3.1) / trap: the lifted program must never reach
		// here; if it does, stop deterministically.
		n.emit(ir.OpUnreachable)
		n.dead = true
	case mx.TLSBASE:
		// Input binaries do not use TLS directly (pthread-style TLS is
		// behind library calls); only recompiled outputs do.
		n.emit(ir.OpUnreachable)
		n.dead = true

	case mx.MFENCE:
		n.fence(ir.OrderSeqCst)

	case mx.LOCKADD, mx.LOCKSUB, mx.LOCKAND, mx.LOCKOR, mx.LOCKXOR,
		mx.LOCKXADD, mx.LOCKINC, mx.LOCKDEC, mx.XCHG, mx.CMPXCHG:
		if n.opts.NaiveAtomics {
			n.liftAtomicNaive(inst)
		} else {
			n.liftAtomicOptimized(inst)
		}

	case mx.VLOAD:
		addr, sl := n.memAddr(inst)
		for l := 0; l < mx.VectorWidth; l++ {
			la := addr
			if l > 0 {
				la = n.emit(ir.OpAdd, addr, n.c(int64(l*8)))
			}
			n.stLane(inst.Dst, l, n.gload(la, 8, false, sl))
		}
	case mx.VSTORE:
		addr, sl := n.memAddr(inst)
		for l := 0; l < mx.VectorWidth; l++ {
			la := addr
			if l > 0 {
				la = n.emit(ir.OpAdd, addr, n.c(int64(l*8)))
			}
			n.gstore(la, n.ldLane(inst.Dst, l), 8, sl)
		}
	case mx.VADD, mx.VMUL:
		op := ir.OpAdd
		if inst.Op == mx.VMUL {
			op = ir.OpMul
		}
		for l := 0; l < mx.VectorWidth; l++ {
			n.stLane(inst.Dst, l, n.emit(op, n.ldLane(inst.Dst, l), n.ldLane(inst.Src, l)))
		}
	case mx.VBCAST:
		v := n.ld(inst.Src)
		for l := 0; l < mx.VectorWidth; l++ {
			n.stLane(inst.Dst, l, v)
		}
	case mx.VHADD:
		sum := n.ldLane(inst.Src, 0)
		for l := 1; l < mx.VectorWidth; l++ {
			sum = n.emit(ir.OpAdd, sum, n.ldLane(inst.Src, l))
		}
		n.st(inst.Dst, sum)

	default:
		return fmt.Errorf("unhandled opcode %v", inst.Op)
	}
	return nil
}

func widthOf(op mx.Op) (int, bool) {
	switch op {
	case mx.LOAD8, mx.STORE8, mx.STOREI8, mx.LOADIDX8, mx.STOREIDX8:
		return 1, false
	case mx.LOAD32, mx.STORE32, mx.STOREI32, mx.LOADIDX32, mx.STOREIDX32:
		return 4, true
	default:
		return 8, false
	}
}

func (n *fnLifter) aluSrc(inst mx.Inst) *ir.Value {
	if mx.LayoutOf(inst.Op) == mx.LayoutRI {
		return n.c(inst.Imm)
	}
	return n.ld(inst.Src)
}

// brFall terminates the current block with a branch to the fallthrough.
func (n *fnLifter) brFall(cb *cfg.Block) {
	if fb, ok := n.blocks[cb.Fall]; ok {
		n.emit(ir.OpBr).Targets = []*ir.Block{fb}
	} else {
		n.missTo(n.c(int64(cb.Fall)))
	}
	n.dead = true
}

// liftIndirectJump dispatches a dynamic jump target over the block's known
// target set (switch over the emulated PC, §3.2), with the default edge
// calling into the miss runtime.
func (n *fnLifter) liftIndirectJump(target *ir.Value, cb *cfg.Block) {
	missB := n.newAuxBlock("miss")
	sw := n.emit(ir.OpSwitch, target)
	sw.Targets = []*ir.Block{missB}
	for _, t := range cb.Targets {
		if tb, ok := n.blocks[t]; ok {
			sw.Targets = append(sw.Targets, tb)
			sw.SwitchVals = append(sw.SwitchVals, int64(t))
		}
	}
	save := n.cur
	n.cur = missB
	call := n.emit(ir.OpCallExt, n.c(int64(n.pc)), target)
	call.ExtName = ExtMiss
	n.emit(ir.OpUnreachable)
	n.cur = save
	n.dead = true
}

// liftIndirectCall dispatches a dynamic call target over the known callee
// set; each case calls the lifted callee then rejoins the fallthrough.
func (n *fnLifter) liftIndirectCall(target *ir.Value, cb *cfg.Block) {
	n.dummyPush(cb.Addr + cb.Size)
	missB := n.newAuxBlock("miss")
	contB := n.blocks[cb.Fall]
	sw := n.emit(ir.OpSwitch, target)
	sw.Targets = []*ir.Block{missB}
	save := n.cur
	for _, t := range cb.Targets {
		callee, ok := n.lf.FuncByAddr[t]
		if !ok {
			continue
		}
		caseB := n.newAuxBlock(fmt.Sprintf("call_%x", t))
		sw.Targets = append(sw.Targets, caseB)
		sw.SwitchVals = append(sw.SwitchVals, int64(t))
		n.cur = caseB
		n.emit(ir.OpCall).Fn = callee
		if contB != nil {
			n.emit(ir.OpBr).Targets = []*ir.Block{contB}
		} else {
			n.missTo(n.c(int64(cb.Fall)))
			n.dead = false
		}
	}
	n.cur = missB
	call := n.emit(ir.OpCallExt, n.c(int64(n.pc)), target)
	call.ExtName = ExtMiss
	n.emit(ir.OpUnreachable)
	n.cur = save
	n.dead = true
}

// liftExternalCall marshals the virtual argument registers into an external
// call and stores the result back to the virtual rax. External calls execute
// on the native stack; the host library never interprets the emulated stack,
// so no explicit stack switching is required in this execution model (§3.1's
// stack-switching concern is about callees that read caller stack memory).
func (n *fnLifter) liftExternalCall(name string) {
	args := []*ir.Value{
		n.ld(mx.RDI), n.ld(mx.RSI), n.ld(mx.RDX),
		n.ld(mx.RCX), n.ld(mx.R8), n.ld(mx.R9),
	}
	call := n.emit(ir.OpCallExt, args...)
	call.ExtName = name
	n.st(mx.RAX, call)
}

func (n *fnLifter) newAuxBlock(tag string) *ir.Block {
	n.naux++
	b := n.f.NewBlock(fmt.Sprintf("aux_%x_%s%d", n.pc, tag, n.naux))
	return b
}

// --- atomics -----------------------------------------------------------------

// liftAtomicOptimized emits the Listing 2 translation: seq_cst atomic IR
// operations surrounded by compiler barriers, with flag/register effects
// reconstructed from the returned old value.
func (n *fnLifter) liftAtomicOptimized(inst mx.Inst) {
	n.barrier()
	addr, _ := n.memAddr(inst)
	switch inst.Op {
	case mx.LOCKADD, mx.LOCKSUB, mx.LOCKAND, mx.LOCKOR, mx.LOCKXOR:
		v := n.ld(inst.Dst)
		kind := map[mx.Op]ir.RMWKind{
			mx.LOCKADD: ir.RMWAdd, mx.LOCKSUB: ir.RMWSub, mx.LOCKAND: ir.RMWAnd,
			mx.LOCKOR: ir.RMWOr, mx.LOCKXOR: ir.RMWXor,
		}[inst.Op]
		old := n.emit(ir.OpAtomicRMW, addr, v)
		old.RMW = kind
		old.SiteID = n.newSite()
		var res *ir.Value
		switch kind {
		case ir.RMWAdd:
			res = n.emit(ir.OpAdd, old, v)
		case ir.RMWSub:
			res = n.emit(ir.OpSub, old, v)
		case ir.RMWAnd:
			res = n.emit(ir.OpAnd, old, v)
		case ir.RMWOr:
			res = n.emit(ir.OpOr, old, v)
		default:
			res = n.emit(ir.OpXor, old, v)
		}
		n.setZS(res)
	case mx.LOCKXADD:
		v := n.ld(inst.Dst)
		old := n.emit(ir.OpAtomicRMW, addr, v)
		old.RMW = ir.RMWAdd
		n.st(inst.Dst, old)
	case mx.LOCKINC, mx.LOCKDEC:
		one := n.c(1)
		old := n.emit(ir.OpAtomicRMW, addr, one)
		var res *ir.Value
		if inst.Op == mx.LOCKINC {
			old.RMW = ir.RMWAdd
			res = n.emit(ir.OpAdd, old, one)
		} else {
			old.RMW = ir.RMWSub
			res = n.emit(ir.OpSub, old, one)
		}
		n.setZS(res)
	case mx.XCHG:
		v := n.ld(inst.Dst)
		old := n.emit(ir.OpAtomicRMW, addr, v)
		old.RMW = ir.RMWXchg
		n.st(inst.Dst, old)
	case mx.CMPXCHG:
		exp := n.ld(mx.RAX)
		newv := n.ld(inst.Dst)
		old := n.emit(ir.OpCmpXchg, addr, exp, newv)
		old.SiteID = n.newSite()
		succ := n.icmp(ir.PredEQ, old, exp)
		n.stFlag(FlagZF, succ)
		n.lastFlag = flagState{kind: flagsBool, v: succ}
		// On success rax is unchanged (and equals old); on failure rax
		// receives the observed value — storing old covers both.
		n.st(mx.RAX, old)
	}
	n.barrier()
}

// liftAtomicNaive emits the Listing 1 translation: every atomic decomposes
// into plain loads/stores under one global runtime lock. Correct, but every
// thread executing any atomic serializes on the same lock.
func (n *fnLifter) liftAtomicNaive(inst mx.Inst) {
	lock := n.emit(ir.OpCallExt)
	lock.ExtName = ExtLock
	addr, _ := n.memAddr(inst)
	mem := n.gload(addr, 8, false, false)
	switch inst.Op {
	case mx.LOCKADD, mx.LOCKSUB, mx.LOCKAND, mx.LOCKOR, mx.LOCKXOR:
		v := n.ld(inst.Dst)
		var res *ir.Value
		switch inst.Op {
		case mx.LOCKADD:
			res = n.emit(ir.OpAdd, mem, v)
		case mx.LOCKSUB:
			res = n.emit(ir.OpSub, mem, v)
		case mx.LOCKAND:
			res = n.emit(ir.OpAnd, mem, v)
		case mx.LOCKOR:
			res = n.emit(ir.OpOr, mem, v)
		default:
			res = n.emit(ir.OpXor, mem, v)
		}
		n.gstore(addr, res, 8, false)
		n.setZS(res)
	case mx.LOCKXADD:
		v := n.ld(inst.Dst)
		res := n.emit(ir.OpAdd, mem, v)
		n.gstore(addr, res, 8, false)
		n.st(inst.Dst, mem)
	case mx.LOCKINC, mx.LOCKDEC:
		op := ir.OpAdd
		if inst.Op == mx.LOCKDEC {
			op = ir.OpSub
		}
		res := n.emit(op, mem, n.c(1))
		n.gstore(addr, res, 8, false)
		n.setZS(res)
	case mx.XCHG:
		v := n.ld(inst.Dst)
		n.gstore(addr, v, 8, false)
		n.st(inst.Dst, mem)
	case mx.CMPXCHG:
		exp := n.ld(mx.RAX)
		newv := n.ld(inst.Dst)
		succ := n.icmp(ir.PredEQ, mem, exp)
		n.stFlag(FlagZF, succ)
		n.lastFlag = flagState{kind: flagsBool, v: succ}
		store := n.emit(ir.OpSelect, succ, newv, mem)
		n.gstore(addr, store, 8, false)
		n.st(mx.RAX, mem)
	}
	unlock := n.emit(ir.OpCallExt)
	unlock.ExtName = ExtUnlock
}

// TranslateBlock lifts one basic block in isolation into a throwaway module
// (edges to unlifted blocks route through the miss/trap path). The
// BinRec-like baseline uses it to reproduce emulator-coupled per-block
// translation cost; it returns the number of IR instructions produced.
func TranslateBlock(img *image.Image, b *cfg.Block) (int, error) {
	g := cfg.NewGraph(b.Addr)
	f := g.AddFunc(b.Addr)
	nb := *b
	nb.Targets = append([]uint64(nil), b.Targets...)
	g.Blocks[b.Addr] = &nb
	g.AddBlockToFunc(f, b.Addr)
	lf, err := Lift(img, g, Options{TrapOnMiss: true})
	if err != nil {
		return 0, err
	}
	n := 0
	for _, fn := range lf.Mod.Funcs {
		for _, blk := range fn.Blocks {
			n += len(blk.Insts)
		}
	}
	return n, nil
}
