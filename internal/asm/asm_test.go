package asm_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/mx"
)

func TestBuildLayoutAndSymbols(t *testing.T) {
	b := asm.NewBuilder("t")
	b.RodataLabel("msg")
	b.Rodata([]byte("hi\x00"))
	b.DataLabel("g")
	b.DataQuad(7)
	b.DataLabel("fnptr")
	b.DataAddr("main")
	b.BSS("buf", 100)
	b.Entry("main")
	b.Label("main")
	b.MovSym(mx.RAX, "g")
	b.Ret()

	img, syms, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != syms["main"] || syms["main"] != image.TextBase {
		t.Fatalf("entry %#x, main %#x", img.Entry, syms["main"])
	}
	if syms["msg"] != image.RodataBase || syms["g"] != image.DataBase {
		t.Fatalf("section bases wrong: %#x %#x", syms["msg"], syms["g"])
	}
	if syms["buf"] != image.BSSBase {
		t.Fatalf("bss base %#x", syms["buf"])
	}
	// The data-section function pointer must hold main's address.
	data := img.Section(".data")
	got := uint64(0)
	for i := 0; i < 8; i++ {
		got |= uint64(data.Data[8+i]) << (8 * i)
	}
	if got != syms["main"] {
		t.Fatalf("fnptr %#x != main %#x", got, syms["main"])
	}
	// MovSym fixed up to g's absolute address.
	inst, _ := mx.Decode(img.Text().Data)
	if inst.Op != mx.MOVRI || uint64(inst.Imm) != syms["g"] {
		t.Fatalf("fixup wrong: %v", inst)
	}
}

func TestBranchFixups(t *testing.T) {
	b := asm.NewBuilder("t")
	b.Entry("main")
	b.Label("main")
	b.Jmp("fwd")
	b.Label("back")
	b.Ret()
	b.Label("fwd")
	b.Jcc(mx.CondE, "back")
	b.Call("back")
	b.Ret()
	img, syms, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	text := img.Text().Data
	// Decode the jmp at main and check its resolved target.
	inst, n := mx.Decode(text)
	if inst.Op != mx.JMP {
		t.Fatalf("first inst %v", inst)
	}
	target := image.TextBase + uint64(n) + uint64(int64(inst.Disp))
	if target != syms["fwd"] {
		t.Fatalf("jmp target %#x, want %#x", target, syms["fwd"])
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		build func(b *asm.Builder)
		want  string
	}{
		{func(b *asm.Builder) { b.Label("x"); b.Label("x"); b.Entry("x"); b.Ret() }, "duplicate label"},
		{func(b *asm.Builder) { b.Entry("main"); b.Label("main"); b.Jmp("nowhere") }, "undefined label"},
		{func(b *asm.Builder) { b.Label("main"); b.Ret() }, "no entry point"},
		{func(b *asm.Builder) { b.BSS("b", 8); b.BSS("b", 8); b.Entry("m"); b.Label("m") }, "duplicate bss"},
		{func(b *asm.Builder) {
			b.DataLabel("main")
			b.DataQuad(0)
			b.Entry("main")
			b.Label("main")
			b.Ret()
		}, "multiply defined"},
	}
	for _, c := range cases {
		b := asm.NewBuilder("t")
		c.build(b)
		_, _, err := b.Build()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("want error containing %q, got %v", c.want, err)
		}
	}
}

func TestRawBytesEmission(t *testing.T) {
	// Raw bytes support hand-crafted (e.g. overlapping) code sequences.
	b := asm.NewBuilder("t")
	b.Entry("main")
	b.Label("main")
	raw := mx.Inst{Op: mx.MOVRI, Dst: mx.RAX, Imm: 9}.Encode(nil)
	b.Raw(raw)
	b.Ret()
	img, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := mx.Decode(img.Text().Data)
	if inst.Imm != 9 {
		t.Fatalf("raw emission lost: %v", inst)
	}
}
