// Package asm provides a two-pass programmatic assembler for MX64.
//
// The assembler is how every input binary in this repository is produced: the
// mini-C compiler (internal/cc) emits through a Builder, and tests and
// hand-written workloads (including the paper's overlapping-instruction and
// spinlock examples) use it directly. It resolves labels across text and data
// sections, lays sections out at their conventional PXE addresses, and
// produces a stripped image.Image — no symbol information survives into the
// binary, mirroring the paper's legacy-binary input class.
package asm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/image"
	"repro/internal/mx"
)

// fixupKind says how a label reference is patched in pass two.
type fixupKind uint8

const (
	fixNone   fixupKind = iota
	fixRel32            // Disp = target - end-of-instruction (JMP/JCC/CALL)
	fixAbs64            // Imm = target address (MOVRI of a symbol)
	fixDisp32           // Disp = target address truncated to 32 bits (tables)
)

type item struct {
	inst   mx.Inst
	fix    fixupKind
	target string
	addr   uint64 // assigned in pass one
	raw    []byte // raw bytes emitted verbatim (overlapping-code tests)
}

type dataItem struct {
	bytes []byte
	label string // if non-empty, emit the 8-byte address of this label
}

type dataSection struct {
	items  []dataItem
	labels map[string]uint64 // label -> offset within section
	size   uint64
}

func newDataSection() *dataSection {
	return &dataSection{labels: map[string]uint64{}}
}

// Builder assembles one PXE image.
type Builder struct {
	name    string
	items   []item
	labels  map[string]int // text label -> item index
	rodata  *dataSection
	data    *dataSection
	bss     map[string]uint64 // label -> size
	bssOrd  []string
	entry   string
	imports []string
	tlsSize uint64
	err     error
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: map[string]int{},
		rodata: newDataSection(),
		data:   newDataSection(),
		bss:    map[string]uint64{},
	}
}

func (b *Builder) setErr(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm: "+format, args...)
	}
}

// Label defines a text label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.setErr("duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.items)
}

// Entry marks the program entry point label.
func (b *Builder) Entry(name string) { b.entry = name }

// SetTLSSize declares the per-thread TLS block size.
func (b *Builder) SetTLSSize(n uint64) { b.tlsSize = n }

// I emits a raw instruction with no label fixups.
func (b *Builder) I(inst mx.Inst) { b.items = append(b.items, item{inst: inst}) }

// Raw emits literal bytes into the text stream (used to construct
// overlapping-instruction and data-in-text test binaries).
func (b *Builder) Raw(bytes []byte) {
	b.items = append(b.items, item{raw: append([]byte(nil), bytes...)})
}

// --- convenience emitters -------------------------------------------------

// MovRR emits dst <- src.
func (b *Builder) MovRR(dst, src mx.Reg) { b.I(mx.Inst{Op: mx.MOVRR, Dst: dst, Src: src}) }

// MovRI emits dst <- imm.
func (b *Builder) MovRI(dst mx.Reg, imm int64) { b.I(mx.Inst{Op: mx.MOVRI, Dst: dst, Imm: imm}) }

// MovSym emits dst <- address-of(label). The label may be in any section.
func (b *Builder) MovSym(dst mx.Reg, label string) {
	b.items = append(b.items, item{
		inst: mx.Inst{Op: mx.MOVRI, Dst: dst}, fix: fixAbs64, target: label,
	})
}

// Jmp emits an unconditional jump to a text label.
func (b *Builder) Jmp(label string) {
	b.items = append(b.items, item{inst: mx.Inst{Op: mx.JMP}, fix: fixRel32, target: label})
}

// Jcc emits a conditional jump to a text label.
func (b *Builder) Jcc(cc mx.Cond, label string) {
	b.items = append(b.items, item{inst: mx.Inst{Op: mx.JCC, Cc: cc}, fix: fixRel32, target: label})
}

// Call emits a direct call to a text label.
func (b *Builder) Call(label string) {
	b.items = append(b.items, item{inst: mx.Inst{Op: mx.CALL}, fix: fixRel32, target: label})
}

// CallExt emits a call to the named external import.
func (b *Builder) CallExt(name string) {
	b.I(mx.Inst{Op: mx.CALLX, Ext: b.importIndex(name)})
}

// Ret emits a return.
func (b *Builder) Ret() { b.I(mx.Inst{Op: mx.RET}) }

func (b *Builder) importIndex(name string) uint16 {
	for i, n := range b.imports {
		if n == name {
			return uint16(i)
		}
	}
	b.imports = append(b.imports, name)
	return uint16(len(b.imports) - 1)
}

// --- data emitters ----------------------------------------------------------

func (s *dataSection) label(name string, b *Builder) {
	if _, dup := s.labels[name]; dup {
		b.setErr("duplicate data label %q", name)
		return
	}
	s.labels[name] = s.size
}

func (s *dataSection) bytes(p []byte) {
	s.items = append(s.items, dataItem{bytes: append([]byte(nil), p...)})
	s.size += uint64(len(p))
}

func (s *dataSection) quadSym(label string) {
	s.items = append(s.items, dataItem{label: label})
	s.size += 8
}

// RodataLabel defines a label in .rodata at the current offset.
func (b *Builder) RodataLabel(name string) { b.rodata.label(name, b) }

// Rodata appends raw bytes to .rodata.
func (b *Builder) Rodata(p []byte) { b.rodata.bytes(p) }

// RodataQuad appends an 8-byte little-endian value to .rodata.
func (b *Builder) RodataQuad(v uint64) {
	b.rodata.bytes(binary.LittleEndian.AppendUint64(nil, v))
}

// RodataAddr appends the 8-byte address of a label to .rodata (jump tables,
// function-pointer tables).
func (b *Builder) RodataAddr(label string) { b.rodata.quadSym(label) }

// DataLabel defines a label in .data at the current offset.
func (b *Builder) DataLabel(name string) { b.data.label(name, b) }

// Data appends raw bytes to .data.
func (b *Builder) Data(p []byte) { b.data.bytes(p) }

// DataQuad appends an 8-byte little-endian value to .data.
func (b *Builder) DataQuad(v uint64) {
	b.data.bytes(binary.LittleEndian.AppendUint64(nil, v))
}

// DataAddr appends the 8-byte address of a label to .data.
func (b *Builder) DataAddr(label string) { b.data.quadSym(label) }

// BSS reserves size zeroed bytes in .bss under the given label.
func (b *Builder) BSS(name string, size uint64) {
	if _, dup := b.bss[name]; dup {
		b.setErr("duplicate bss label %q", name)
		return
	}
	b.bss[name] = size
	b.bssOrd = append(b.bssOrd, name)
}

// --- assembly ---------------------------------------------------------------

// Build assembles the program. It returns the image and the symbol table
// (label -> virtual address). The symbol table is NOT part of the image; it
// exists for tests and ground-truth comparisons only.
func (b *Builder) Build() (*image.Image, map[string]uint64, error) {
	if b.err != nil {
		return nil, nil, b.err
	}
	syms := map[string]uint64{}

	// Pass one: assign text addresses.
	addr := image.TextBase
	for i := range b.items {
		b.items[i].addr = addr
		if b.items[i].raw != nil {
			addr += uint64(len(b.items[i].raw))
		} else {
			addr += uint64(b.items[i].inst.Len())
		}
	}
	textEnd := addr
	for name, idx := range b.labels {
		if idx < len(b.items) {
			syms[name] = b.items[idx].addr
		} else {
			syms[name] = textEnd
		}
	}

	// Data section layout.
	align8 := func(v uint64) uint64 { return (v + 7) &^ 7 }
	for name, off := range b.rodata.labels {
		if _, dup := syms[name]; dup {
			return nil, nil, fmt.Errorf("asm: label %q defined in text and rodata", name)
		}
		syms[name] = image.RodataBase + off
	}
	for name, off := range b.data.labels {
		if _, dup := syms[name]; dup {
			return nil, nil, fmt.Errorf("asm: label %q multiply defined", name)
		}
		syms[name] = image.DataBase + off
	}
	bssOff := uint64(0)
	for _, name := range b.bssOrd {
		if _, dup := syms[name]; dup {
			return nil, nil, fmt.Errorf("asm: label %q multiply defined", name)
		}
		syms[name] = image.BSSBase + bssOff
		bssOff = align8(bssOff + b.bss[name])
	}

	// Pass two: encode text with fixups.
	var text []byte
	for _, it := range b.items {
		if it.raw != nil {
			text = append(text, it.raw...)
			continue
		}
		inst := it.inst
		if it.fix != fixNone {
			target, ok := syms[it.target]
			if !ok {
				return nil, nil, fmt.Errorf("asm: undefined label %q", it.target)
			}
			switch it.fix {
			case fixRel32:
				end := it.addr + uint64(inst.Len())
				d := int64(target) - int64(end)
				if int64(int32(d)) != d {
					return nil, nil, fmt.Errorf("asm: branch to %q out of range", it.target)
				}
				inst.Disp = int32(d)
			case fixAbs64:
				inst.Imm = int64(target)
			case fixDisp32:
				inst.Disp = int32(target)
			}
		}
		text = inst.Encode(text)
	}

	// Encode data sections with address fixups.
	encodeData := func(s *dataSection) ([]byte, error) {
		var out []byte
		for _, it := range s.items {
			if it.label != "" {
				target, ok := syms[it.label]
				if !ok {
					return nil, fmt.Errorf("asm: undefined label %q in data", it.label)
				}
				out = binary.LittleEndian.AppendUint64(out, target)
			} else {
				out = append(out, it.bytes...)
			}
		}
		return out, nil
	}
	rodata, err := encodeData(b.rodata)
	if err != nil {
		return nil, nil, err
	}
	data, err := encodeData(b.data)
	if err != nil {
		return nil, nil, err
	}

	im := &image.Image{Name: b.name, Imports: append([]string(nil), b.imports...), TLSSize: b.tlsSize}
	if err := im.AddSection(image.Section{Name: ".text", Addr: image.TextBase, Data: text, Exec: true}); err != nil {
		return nil, nil, err
	}
	if len(rodata) > 0 {
		if err := im.AddSection(image.Section{Name: ".rodata", Addr: image.RodataBase, Data: rodata}); err != nil {
			return nil, nil, err
		}
	}
	if len(data) > 0 {
		if err := im.AddSection(image.Section{Name: ".data", Addr: image.DataBase, Data: data}); err != nil {
			return nil, nil, err
		}
	}
	if bssOff > 0 {
		if err := im.AddSection(image.Section{Name: ".bss", Addr: image.BSSBase, Size: bssOff}); err != nil {
			return nil, nil, err
		}
	}
	if b.entry == "" {
		return nil, nil, fmt.Errorf("asm: no entry point set")
	}
	entry, ok := syms[b.entry]
	if !ok {
		return nil, nil, fmt.Errorf("asm: entry label %q undefined", b.entry)
	}
	im.Entry = entry
	return im, syms, nil
}
