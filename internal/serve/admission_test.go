package serve

// White-box admission tests: the quota clock seam and the limiter's
// internals are unexported, so these live in the package (the end-to-end
// admission matrix is in serve_test.go).

import (
	"net/http/httptest"
	"testing"
	"time"
)

// TestQuotasTokenBucket drives the per-client bucket with a fake clock:
// burst admits, an empty bucket refuses with the time to the next token,
// and tokens accrue at the configured rate.
func TestQuotasTokenBucket(t *testing.T) {
	q := newQuotas(1, 2) // 1 rps, burst 2
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := q.allow("a"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, wait := q.allow("a")
	if ok {
		t.Fatal("third request admitted with an empty bucket")
	}
	if wait != time.Second {
		t.Fatalf("wait = %v, want 1s to the next token", wait)
	}
	// Clients are independent.
	if ok, _ := q.allow("b"); !ok {
		t.Fatal("a fresh client was refused by another client's empty bucket")
	}
	// One second accrues exactly one token.
	now = now.Add(time.Second)
	if ok, _ := q.allow("a"); !ok {
		t.Fatal("request refused after a full token accrued")
	}
	if ok, _ := q.allow("a"); ok {
		t.Fatal("second request admitted on one accrued token")
	}
	// Accrual caps at burst: a long-idle client gets burst, not unbounded.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := q.allow("a"); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("long-idle client admitted %d, want burst of 2", admitted)
	}
}

// TestQuotasDefaultsAndDisabled: rps <= 0 disables quotas; burst 0 defaults
// to 2*rps floored at 1.
func TestQuotasDefaultsAndDisabled(t *testing.T) {
	if q := newQuotas(0, 5); q != nil {
		t.Fatal("rps 0 built a limiter")
	}
	var q *quotas
	if ok, _ := q.allow("anyone"); !ok {
		t.Fatal("nil quotas refused a request")
	}
	if q := newQuotas(4, 0); q.burst != 8 {
		t.Fatalf("default burst = %v, want 2*rps", q.burst)
	}
	if q := newQuotas(0.25, 0); q.burst != 1 {
		t.Fatalf("default burst = %v, want floor of 1", q.burst)
	}
}

// TestQuotasPruneBoundsClients: cycling client identities cannot grow the
// bucket map past maxQuotaClients while idle clients are prunable.
func TestQuotasPruneBoundsClients(t *testing.T) {
	q := newQuotas(1, 1)
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }
	for i := 0; i < 3*maxQuotaClients; i++ {
		now = now.Add(2 * time.Second) // everyone before is fully refilled
		q.allow(string(rune('a'+i%26)) + string(rune('0'+i%10)) + time.Duration(i).String())
	}
	q.mu.Lock()
	n := len(q.m)
	q.mu.Unlock()
	if n > maxQuotaClients {
		t.Fatalf("bucket map grew to %d, cap is %d", n, maxQuotaClients)
	}
}

// TestLimiterSlotsAndQueue: the limiter admits up to inflight, queues up to
// queue, sheds beyond, and wakes a queued waiter when a slot frees.
func TestLimiterSlotsAndQueue(t *testing.T) {
	l := newLimiter(1, 1)
	rel1, ok := l.acquire(nil)
	if !ok {
		t.Fatal("first acquire refused")
	}

	got := make(chan func(), 1)
	go func() {
		rel, ok := l.acquire(nil)
		if !ok {
			t.Error("queued acquire was shed")
		}
		got <- rel
	}()
	waitFor(t, func() bool { return l.queued() == 1 })

	// Queue is full: the next request is shed without waiting.
	if _, ok := l.acquire(nil); ok {
		t.Fatal("acquire admitted past inflight+queue")
	}

	rel1()
	rel2 := <-got
	waitFor(t, func() bool { return l.queued() == 0 })
	rel2()

	// Slot free again.
	rel, ok := l.acquire(nil)
	if !ok {
		t.Fatal("acquire refused after all slots released")
	}
	rel()
}

// TestLimiterCancelledWaiter: a waiter whose done channel closes leaves the
// queue without a slot.
func TestLimiterCancelledWaiter(t *testing.T) {
	l := newLimiter(1, 1)
	rel, _ := l.acquire(nil)
	done := make(chan struct{})
	shed := make(chan bool, 1)
	go func() {
		_, ok := l.acquire(done)
		shed <- !ok
	}()
	waitFor(t, func() bool { return l.queued() == 1 })
	close(done)
	if !<-shed {
		t.Fatal("cancelled waiter got a slot")
	}
	waitFor(t, func() bool { return l.queued() == 0 })
	rel()
	// The released slot is acquirable: the cancelled waiter did not leak it.
	if _, ok := l.acquire(nil); !ok {
		t.Fatal("slot leaked by a cancelled waiter")
	}
}

// TestLimiterNoQueueShedsImmediately: queue 0 means overload is shed
// without waiting (what CI's -max-inflight 1 probe relies on).
func TestLimiterNoQueueShedsImmediately(t *testing.T) {
	l := newLimiter(1, 0)
	rel, _ := l.acquire(nil)
	defer rel()
	start := time.Now()
	if _, ok := l.acquire(nil); ok {
		t.Fatal("second acquire admitted past inflight with no queue")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("queueless shed took %v, want immediate", d)
	}
}

// TestClientID: the quota key is a token digest when a bearer token is
// presented (never the token itself) and the remote host otherwise.
func TestClientID(t *testing.T) {
	r := httptest.NewRequest("GET", "/metrics", nil)
	r.RemoteAddr = "192.0.2.7:4312"
	if got := clientID(r); got != "192.0.2.7" {
		t.Fatalf("clientID without auth = %q, want the remote host", got)
	}
	r.Header.Set("Authorization", "Bearer s3cret")
	got := clientID(r)
	if len(got) != len("tok-")+8 || got[:4] != "tok-" {
		t.Fatalf("clientID with auth = %q, want tok-<8 hex digits>", got)
	}
	if got == "tok-s3cret" {
		t.Fatal("clientID leaked the raw token")
	}
	r2 := httptest.NewRequest("GET", "/metrics", nil)
	r2.Header.Set("Authorization", "Bearer s3cret")
	if clientID(r2) != got {
		t.Fatal("same token produced different client IDs")
	}
	r2.Header.Set("Authorization", "Bearer other")
	if clientID(r2) == got {
		t.Fatal("different tokens produced the same client ID")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
