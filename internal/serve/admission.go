// Admission control for the fleet daemon: bearer-token authn, a bounded
// concurrency limiter with a wait queue, and per-client token-bucket quotas.
// The layering (admit in serve.go) is auth -> quota -> limiter, so an
// unauthenticated request can neither consume quota nor occupy a queue slot.
package serve

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// limiter bounds concurrently admitted requests of one class (jobs or store
// blobs). Up to cap(slots) requests execute at once; up to cap(queue) more
// wait for a slot; everything beyond that is shed immediately. A nil limiter
// admits everything.
type limiter struct {
	slots chan struct{} // one token per executing request
	queue chan struct{} // one token per waiting request; nil = shed instead of waiting
	depth atomic.Int64  // requests currently waiting (the queue-depth gauge)
}

// newLimiter builds a limiter admitting inflight concurrent requests with a
// wait queue of queue more. inflight <= 0 means unlimited (nil limiter);
// queue <= 0 means no queue — overload is shed immediately, which keeps a
// tiny -max-inflight deterministic to probe (CI relies on this).
func newLimiter(inflight, queue int) *limiter {
	if inflight <= 0 {
		return nil
	}
	l := &limiter{slots: make(chan struct{}, inflight)}
	if queue > 0 {
		l.queue = make(chan struct{}, queue)
	}
	return l
}

// acquire admits the request (returning its release) or reports that it must
// be shed. A request that cannot get a slot immediately waits in the bounded
// queue until a slot frees or done closes (the client gave up); with the
// queue full — or absent — it is shed without waiting.
func (l *limiter) acquire(done <-chan struct{}) (release func(), ok bool) {
	if l == nil {
		return func() {}, true
	}
	select {
	case l.slots <- struct{}{}:
		return l.release, true
	default:
	}
	if l.queue == nil {
		return nil, false
	}
	select {
	case l.queue <- struct{}{}:
	default:
		return nil, false
	}
	l.depth.Add(1)
	defer func() {
		l.depth.Add(-1)
		<-l.queue
	}()
	select {
	case l.slots <- struct{}{}:
		return l.release, true
	case <-done:
		return nil, false
	}
}

func (l *limiter) release() { <-l.slots }

// queued reports how many requests are waiting for a slot right now.
func (l *limiter) queued() int64 {
	if l == nil {
		return 0
	}
	return l.depth.Load()
}

// quotas is the per-client token-bucket rate limiter: each client accrues
// rate tokens per second up to burst, and every admitted request spends one.
// A nil quotas admits everything.
type quotas struct {
	rate  float64          // tokens accrued per second
	burst float64          // bucket capacity
	now   func() time.Time // clock seam for tests

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time // when tokens was last brought current
}

// maxQuotaClients bounds the bucket map: at this size, fully refilled
// buckets (clients idle long enough that forgetting them changes nothing)
// are pruned before a new client is added, so an attacker cycling client
// identities cannot grow the map without bound.
const maxQuotaClients = 4096

// newQuotas builds the per-client rate limiter. rps <= 0 disables quotas
// (nil). burst <= 0 defaults to 2*rps, floored at 1.
func newQuotas(rps float64, burst int) *quotas {
	if rps <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = 2 * rps
		if b < 1 {
			b = 1
		}
	}
	return &quotas{rate: rps, burst: b, now: time.Now, m: map[string]*bucket{}}
}

// allow spends one token from client's bucket. When the bucket is empty it
// refuses and reports how long until the next whole token accrues — the
// Retry-After the handler should answer with.
func (q *quotas) allow(client string) (bool, time.Duration) {
	if q == nil {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	bk := q.m[client]
	if bk == nil {
		if len(q.m) >= maxQuotaClients {
			q.pruneLocked(now)
		}
		bk = &bucket{tokens: q.burst, last: now}
		q.m[client] = bk
	}
	bk.tokens += now.Sub(bk.last).Seconds() * q.rate
	if bk.tokens > q.burst {
		bk.tokens = q.burst
	}
	bk.last = now
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	return false, time.Duration((1 - bk.tokens) / q.rate * float64(time.Second))
}

// pruneLocked drops every bucket that would be full if brought current —
// forgetting such a client is indistinguishable from remembering it.
func (q *quotas) pruneLocked(now time.Time) {
	for k, bk := range q.m {
		if bk.tokens+now.Sub(bk.last).Seconds()*q.rate >= q.burst {
			delete(q.m, k)
		}
	}
}

// bearerToken extracts the Bearer credential from the Authorization header,
// or "" when absent/differently-schemed.
func bearerToken(r *http.Request) string {
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return h[len(prefix):]
	}
	return ""
}

// bearerOK reports whether the request presents the configured bearer token
// (constant-time compare; callers check that a token is configured).
func (s *Server) bearerOK(r *http.Request) bool {
	return subtle.ConstantTimeCompare([]byte(bearerToken(r)), []byte(s.authToken)) == 1
}

// clientID names a request's client for quota keying and per-client
// metrics: a short digest of the presented bearer token (never the token
// itself — these IDs appear in /metrics), falling back to the remote host
// when auth is off.
func clientID(r *http.Request) string {
	if tok := bearerToken(r); tok != "" {
		sum := sha256.Sum256([]byte(tok))
		return "tok-" + hex.EncodeToString(sum[:4])
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && host != "" {
		return host
	}
	return r.RemoteAddr
}

// retryAfterSecs renders a wait as a Retry-After value: whole seconds,
// rounded up, at least 1 (a zero Retry-After invites an immediate retry
// storm).
func retryAfterSecs(wait time.Duration) int {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
