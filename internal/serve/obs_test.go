package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"log/slog"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

// A fixed W3C trace position (the one from the spec's examples) used to
// verify end-to-end propagation.
const (
	knownTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	knownTraceID     = "0af7651916cd43dd8448eb211c80319c"
)

var hex32RE = regexp.MustCompile(`^[0-9a-f]{32}$`)

// TestServeTraceJoinAndHeader: a request with a valid traceparent joins the
// client's trace — the daemon answers the same trace id — and a request
// without one starts a fresh trace (a valid, different id). Store-protocol
// requests get the same treatment as jobs.
func TestServeTraceJoinAndHeader(t *testing.T) {
	imgBytes := compileMarshal(t, threadedSrc)
	_, srv := newServer(t, serve.Config{})

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/recompile", bytes.NewReader(imgBytes))
	req.Header.Set("traceparent", knownTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Polynima-Trace-Id"); got != knownTraceID {
		t.Errorf("joined trace id = %q, want %q", got, knownTraceID)
	}

	resp2, _ := postRecompile(t, srv.URL, imgBytes)
	fresh := resp2.Header.Get("X-Polynima-Trace-Id")
	if !hex32RE.MatchString(fresh) {
		t.Errorf("fresh trace id %q is not 32 hex digits", fresh)
	}
	if fresh == knownTraceID {
		t.Error("request without traceparent reused the known trace id")
	}

	// Store endpoint (a miss is fine — the envelope is what's under test).
	key := store.KeyOf([]byte("absent"))
	sreq, _ := http.NewRequest(http.MethodGet, srv.URL+"/store/v1/ns/"+key.Hex(), nil)
	sreq.Header.Set("traceparent", knownTraceparent)
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if got := sresp.Header.Get("X-Polynima-Trace-Id"); got != knownTraceID {
		t.Errorf("store trace id = %q, want %q", got, knownTraceID)
	}
}

// TestServeJobSpanCarriesTraceID: with tracing on, the per-job span in the
// daemon's span trace is tagged with the request's distributed trace id, so
// the client's trace file and the daemon's stitch on one id.
func TestServeJobSpanCarriesTraceID(t *testing.T) {
	imgBytes := compileMarshal(t, threadedSrc)
	tr := obs.New()
	_, srv := newServer(t, serve.Config{Tracer: tr})

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/recompile", bytes.NewReader(imgBytes))
	req.Header.Set("traceparent", knownTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	found := false
	for _, ev := range tr.Events() {
		if ev.Cat != "serve" || ev.Name != "job" {
			continue
		}
		for _, a := range ev.Args {
			if a.Key == "trace_id" && a.Val == knownTraceID {
				found = true
			}
		}
	}
	if !found {
		t.Error("no serve/job span carries the joined trace id")
	}
}

// logLine is the access-log schema the test asserts on.
type logLine struct {
	Msg         string  `json:"msg"`
	TraceID     string  `json:"trace_id"`
	TraceJoined bool    `json:"trace_joined"`
	Client      string  `json:"client"`
	Kind        string  `json:"kind"`
	Method      string  `json:"method"`
	Path        string  `json:"path"`
	Status      int     `json:"status"`
	Outcome     string  `json:"outcome"`
	QueueWaitS  float64 `json:"queue_wait_s"`
	DurationS   float64 `json:"duration_s"`
	BytesIn     int64   `json:"bytes_in"`
	BytesOut    int64   `json:"bytes_out"`
}

// TestServeAccessLogJSON drives the daemon handler synchronously (direct
// ServeHTTP, so every deferred log line has flushed by the time we read) and
// checks the structured access log: one line per request — admitted or
// refused — with the trace id, token digest, kind, outcome, status, and byte
// counts; the raw bearer token never appears.
func TestServeAccessLogJSON(t *testing.T) {
	imgBytes := compileMarshal(t, threadedSrc)
	var buf bytes.Buffer
	cfg := serve.Config{
		Opts:      core.DefaultOptions(),
		AuthToken: "s3cret",
		Logger:    slog.New(slog.NewJSONHandler(&buf, nil)),
	}
	h := serve.New(cfg).Handler()

	// Admitted job, joining a client trace.
	req := httptest.NewRequest(http.MethodPost, "/v1/recompile", bytes.NewReader(imgBytes))
	req.Header.Set("Authorization", "Bearer s3cret")
	req.Header.Set("traceparent", knownTraceparent)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("recompile status %d: %s", rec.Code, rec.Body.String())
	}

	// Refused store request: wrong credential.
	key := store.KeyOf([]byte("k"))
	req2 := httptest.NewRequest(http.MethodGet, "/store/v1/ns/"+key.Hex(), nil)
	req2.Header.Set("Authorization", "Bearer wrong")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusUnauthorized {
		t.Fatalf("unauthorized store get status %d", rec2.Code)
	}

	if strings.Contains(buf.String(), "s3cret") {
		t.Fatal("raw bearer token leaked into the access log")
	}
	var lines []logLine
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l logLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("access log line is not JSON: %v (%s)", err, raw)
		}
		if l.Msg == "request" {
			lines = append(lines, l)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("got %d request lines, want 2: %+v", len(lines), lines)
	}

	job := lines[0]
	if job.TraceID != knownTraceID || !job.TraceJoined {
		t.Errorf("job line trace = %q joined=%v, want %q joined", job.TraceID, job.TraceJoined, knownTraceID)
	}
	if job.Kind != "recompile" || job.Outcome != "ok" || job.Status != http.StatusOK {
		t.Errorf("job line kind/outcome/status = %q/%q/%d", job.Kind, job.Outcome, job.Status)
	}
	if !strings.HasPrefix(job.Client, "tok-") {
		t.Errorf("job line client %q is not a token digest", job.Client)
	}
	if job.BytesIn == 0 || job.BytesOut == 0 {
		t.Errorf("job line bytes_in=%d bytes_out=%d, want both nonzero", job.BytesIn, job.BytesOut)
	}

	refused := lines[1]
	if refused.Kind != "store_get" || refused.Outcome != "auth" || refused.Status != http.StatusUnauthorized {
		t.Errorf("refused line kind/outcome/status = %q/%q/%d", refused.Kind, refused.Outcome, refused.Status)
	}
	if !hex32RE.MatchString(refused.TraceID) {
		t.Errorf("refused line trace id %q invalid", refused.TraceID)
	}
}

// TestServeNilLoggerRefusal: the refusal path — where logRequest fires with
// no handler having run — is nil-logger safe. (The success path runs with a
// nil logger in every other test of this package.)
func TestServeNilLoggerRefusal(t *testing.T) {
	h := serve.New(serve.Config{Opts: core.DefaultOptions(), AuthToken: "tok"}).Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recompile", nil))
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("status %d, want 401", rec.Code)
	}
}

// TestServeDrainHealthz: /healthz answers 200 until BeginDrain, then 503 —
// the load balancer signal — while already-admitted work keeps being served
// (http.Server.Shutdown, not the daemon, ends service).
func TestServeDrainHealthz(t *testing.T) {
	imgBytes := compileMarshal(t, threadedSrc)
	s := serve.New(serve.Config{Opts: core.DefaultOptions()})
	h := s.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("pre-drain healthz %d", rec.Code)
	}
	if s.Draining() {
		t.Fatal("Draining() true before BeginDrain")
	}
	s.BeginDrain()
	rec := get("/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("draining healthz body %q", rec.Body.String())
	}
	if m := get("/metrics"); !strings.Contains(m.Body.String(), "polynimad_draining 1") {
		t.Error("metrics missing polynimad_draining 1 during drain")
	}
	// Work is still served during the drain window.
	jr := httptest.NewRecorder()
	h.ServeHTTP(jr, httptest.NewRequest(http.MethodPost, "/v1/recompile", bytes.NewReader(imgBytes)))
	if jr.Code != http.StatusOK {
		t.Errorf("job during drain status %d, want 200", jr.Code)
	}
}

// TestServePprofGating: /debug/pprof/* requires the bearer token when one is
// configured (profiles expose process internals) and is open otherwise;
// refusals are accounted under class "debug".
func TestServePprofGating(t *testing.T) {
	h := serve.New(serve.Config{Opts: core.DefaultOptions(), AuthToken: "tok"}).Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated pprof index status %d, want 401", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil)
	req.Header.Set("Authorization", "Bearer tok")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusOK {
		t.Fatalf("authenticated pprof cmdline status %d, want 200", rec2.Code)
	}
	m := httptest.NewRecorder()
	h.ServeHTTP(m, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(m.Body.String(), `polynimad_rejected_total{class="debug",reason="auth"} 1`) {
		t.Error("metrics missing the debug-class auth rejection")
	}

	open := serve.New(serve.Config{Opts: core.DefaultOptions()}).Handler()
	rec3 := httptest.NewRecorder()
	open.ServeHTTP(rec3, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec3.Code != http.StatusOK {
		t.Fatalf("open pprof index status %d, want 200", rec3.Code)
	}
}
