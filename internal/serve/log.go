// Request-level observability for the fleet daemon: per-request trace
// context (W3C traceparent in, X-Polynima-Trace-Id out), the structured
// JSON/text access log, the response recorder that captures status and
// byte counts, and the drain-aware health endpoint.
//
// The access log is an audit trail: one line per job and store request —
// admitted or refused — carrying the trace id, the client's token digest
// (never the raw token), kind, outcome, HTTP status, queue wait, duration,
// and bytes in/out. A nil logger disables it entirely; every call site is
// nil-safe, the same disabled-path contract as the tracer.
package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/obs"
)

// reqInfo is the per-request observability state threaded from admission
// through the handler to the access log via the request context.
type reqInfo struct {
	tc        obs.TraceContext // this request's trace position (always valid)
	joined    bool             // the client supplied the trace via traceparent
	client    string           // token digest or remote host (admission.go)
	kind      string           // recompile/trace/additive/store_get/store_put
	queueWait time.Duration    // time spent waiting for an admission slot
	outcome   string           // refined by handlers; derived from status if ""
}

type ctxKey int

const reqInfoKey ctxKey = 0

// withReqInfo attaches info to the request's context.
func withReqInfo(r *http.Request, info *reqInfo) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), reqInfoKey, info))
}

// reqInfoFrom returns the request's reqInfo, or nil when the handler runs
// outside the admission wrapper (direct tests).
func reqInfoFrom(ctx context.Context) *reqInfo {
	info, _ := ctx.Value(reqInfoKey).(*reqInfo)
	return info
}

// traceContextFor resolves a request's trace position: a valid traceparent
// header joins the client's trace (fresh span id, same trace id); anything
// else starts a new trace. The second result reports a join.
func traceContextFor(r *http.Request) (obs.TraceContext, bool) {
	if tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		return tc.Child(), true
	}
	return obs.NewTraceContext(), false
}

// traceIDHeader is the response header naming the trace a request was
// served under, so a client can stitch its own trace file to the daemon's.
const traceIDHeader = "X-Polynima-Trace-Id"

// responseRecorder captures the status code and response byte count for
// the access log while delegating to the real ResponseWriter.
type responseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (rr *responseRecorder) WriteHeader(code int) {
	if rr.status == 0 {
		rr.status = code
	}
	rr.ResponseWriter.WriteHeader(code)
}

func (rr *responseRecorder) Write(b []byte) (int, error) {
	if rr.status == 0 {
		rr.status = http.StatusOK
	}
	n, err := rr.ResponseWriter.Write(b)
	rr.bytes += int64(n)
	return n, err
}

// unwrapWriter returns the real ResponseWriter beneath a recorder —
// http.MaxBytesReader needs it to close the connection on oversized
// bodies (its interface probe does not see through wrappers).
func unwrapWriter(w http.ResponseWriter) http.ResponseWriter {
	if rr, ok := w.(*responseRecorder); ok {
		return rr.ResponseWriter
	}
	return w
}

// logRequest emits the one access-log line for a finished (or refused)
// request. Nil logger: no-op. The raw bearer token is never among the
// fields — info.client is a digest (clientID, admission.go).
func (s *Server) logRequest(r *http.Request, rr *responseRecorder, info *reqInfo, dur time.Duration) {
	if s.logger == nil {
		return
	}
	status := rr.status
	if status == 0 {
		status = http.StatusOK
	}
	outcome := info.outcome
	if outcome == "" {
		outcome = outcomeForStatus(status)
	}
	bytesIn := r.ContentLength
	if bytesIn < 0 {
		bytesIn = 0
	}
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("trace_id", info.tc.TraceIDHex()),
		slog.Bool("trace_joined", info.joined),
		slog.String("client", info.client),
		slog.String("kind", info.kind),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.String("outcome", outcome),
		slog.Float64("queue_wait_s", info.queueWait.Seconds()),
		slog.Float64("duration_s", dur.Seconds()),
		slog.Int64("bytes_in", bytesIn),
		slog.Int64("bytes_out", rr.bytes),
	)
}

// outcomeForStatus maps an HTTP status to the access log's outcome field
// when no handler refined it (store requests, admission refusals that set
// their own reason keep it).
func outcomeForStatus(status int) string {
	switch {
	case status == statusClientClosedRequest:
		return "cancelled"
	case status >= 500:
		return "error"
	case status == http.StatusNotFound:
		return "miss"
	case status >= 400:
		return "client_error"
	default:
		return "ok"
	}
}

// requestKind names a request for the log and metrics: the job kind for
// /v1/* and store_get/store_put for the blob protocol.
func requestKind(class string, r *http.Request) string {
	if class == "store" {
		if r.Method == http.MethodPut {
			return "store_put"
		}
		return "store_get"
	}
	if len(r.URL.Path) > len("/v1/") {
		return r.URL.Path[len("/v1/"):]
	}
	return class
}

// --- drain-aware health ------------------------------------------------------

// BeginDrain marks the daemon as draining: /healthz flips to 503 so load
// balancers stop routing new work while in-flight jobs finish. polynimad
// calls this the moment SIGINT/SIGTERM arrives, before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// --- token-gated pprof -------------------------------------------------------

// debugAuth gates /debug/pprof/* behind the bearer token when one is
// configured: profiles expose heap contents and symbol names, so they get
// the same credential as jobs (unlike /metrics and /healthz, which stay
// open for scrapers and probes). No quota or limiter — diagnostics must
// work on an overloaded daemon.
func (s *Server) debugAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.authToken != "" && !s.bearerOK(r) {
			s.reject("debug", "auth", clientID(r))
			w.Header().Set("WWW-Authenticate", `Bearer realm="polynimad"`)
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		h(w, r)
	}
}
