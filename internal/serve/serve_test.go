package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/serve"
	"repro/internal/store"
)

const threadedSrc = `
extern thread_create;
extern thread_join;
extern print_i64;
var total = 0;
func worker(arg) {
	var i;
	for (i = 0; i < 50; i = i + 1) { atomic_add(&total, arg); }
	return 0;
}
func main() {
	var t1 = thread_create(worker, 1);
	var t2 = thread_create(worker, 3);
	thread_join(t1);
	thread_join(t2);
	print_i64(total);
	return 0;
}`

func compileMarshal(t *testing.T, src string) []byte {
	t.Helper()
	img, _, err := cc.Compile(src, cc.Config{Name: "t", Opt: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// localRecompile is the reference: the same image through a plain private
// project, the byte-identity oracle for every service path.
func localRecompile(t *testing.T, imgBytes []byte) []byte {
	t.Helper()
	img, err := image.Unmarshal(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProject(img, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	out, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func newServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Opts.Fuel == 0 {
		cfg.Opts = core.DefaultOptions()
	}
	s := serve.New(cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func postRecompile(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/recompile", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestServeRecompileMatchesLocal pins the service determinism contract: the
// daemon's response bytes equal a local recompile's bytes, cold and warm,
// and the second request is served from the shared memory tier.
func TestServeRecompileMatchesLocal(t *testing.T) {
	imgBytes := compileMarshal(t, threadedSrc)
	want := localRecompile(t, imgBytes)
	_, srv := newServer(t, serve.Config{})

	resp, cold := postRecompile(t, srv.URL, imgBytes)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", resp.StatusCode, cold)
	}
	if !bytes.Equal(cold, want) {
		t.Fatal("cold daemon recompile diverged from local bytes")
	}

	resp, warm := postRecompile(t, srv.URL, imgBytes)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", resp.StatusCode)
	}
	if !bytes.Equal(warm, want) {
		t.Fatal("warm daemon recompile diverged from local bytes")
	}
	hits, _ := strconv.Atoi(resp.Header.Get("X-Polynima-Store-Mem-Hits"))
	if hits == 0 {
		t.Fatal("second request did not hit the shared memory tier")
	}
}

// TestServeStoreEndpointsViaRemote drives the daemon's blob endpoints with
// the real client (store.Remote): a full roundtrip over the wire protocol,
// promotion into the daemon's memory tier, and an authoritative 404 miss.
func TestServeStoreEndpointsViaRemote(t *testing.T) {
	s, srv := newServer(t, serve.Config{})
	r, err := store.NewRemote(srv.URL, store.RemoteOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	k := store.KeyOf([]byte("k"))
	want := []byte("fleet-shared artifact")
	r.Put("func", k, want)
	got, tier, ok := r.Get("func", k)
	if !ok || tier != "remote" || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %q, %v", got, tier, ok)
	}
	// The PUT warmed the daemon's shared tier directly.
	if data, tier, ok := s.Store().Get("func", k); !ok || tier != "mem" || !bytes.Equal(data, want) {
		t.Fatalf("daemon store Get = %q, %q, %v, want mem hit", data, tier, ok)
	}
	if _, _, ok := r.Get("func", store.KeyOf([]byte("absent"))); ok {
		t.Fatal("hit on absent key")
	}
	st := r.Stats()["remote"]
	if st.Hits != 1 || st.Misses != 1 || st.Errors != 0 {
		t.Fatalf("client counters = %+v", st)
	}
}

// TestServeRecompileWithDeadBacking: a daemon whose backing tier is a dead
// remote store still serves byte-identical results — remote failure
// degrades to counted misses, never to different bytes or errors.
func TestServeRecompileWithDeadBacking(t *testing.T) {
	dead, err := store.NewRemote("http://127.0.0.1:1", store.RemoteOptions{
		Timeout: 100 * time.Millisecond, Retries: 0, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	imgBytes := compileMarshal(t, threadedSrc)
	want := localRecompile(t, imgBytes)
	s, srv := newServer(t, serve.Config{Backing: dead})

	resp, got := postRecompile(t, srv.URL, imgBytes)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recompile over a dead backing tier diverged from local bytes")
	}
	if s.Store().Stats()["remote"].Errors == 0 {
		t.Fatal("dead backing tier recorded no errors")
	}
}

// TestServeConcurrentRecompiles hammers one daemon from several clients at
// once (run under -race in CI): every response must be byte-identical to
// the local oracle for its program.
func TestServeConcurrentRecompiles(t *testing.T) {
	progs := make([][2][]byte, 3) // {input image, expected output}
	for i := range progs {
		src := strings.Replace(threadedSrc, "i < 50", fmt.Sprintf("i < %d", 40+10*i), 1)
		in := compileMarshal(t, src)
		progs[i] = [2][]byte{in, localRecompile(t, in)}
	}
	_, srv := newServer(t, serve.Config{})

	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for w := 0; w < 4; w++ {
		for i := range progs {
			wg.Add(1)
			go func(w, i int) {
				defer wg.Done()
				resp, got := postRecompile(t, srv.URL, progs[i][0])
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d prog %d: status %d", w, i, resp.StatusCode)
					return
				}
				if !bytes.Equal(got, progs[i][1]) {
					errs <- fmt.Errorf("worker %d prog %d: bytes diverged", w, i)
				}
			}(w, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeTraceAndAdditive covers the two dynamic-analysis job kinds.
func TestServeTraceAndAdditive(t *testing.T) {
	imgBytes := compileMarshal(t, threadedSrc)
	_, srv := newServer(t, serve.Config{})

	resp, err := http.Post(srv.URL+"/v1/trace?seed=7", "application/octet-stream",
		bytes.NewReader(imgBytes))
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		Runs  int    `json:"runs"`
		Insts uint64 `json:"insts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || tr.Runs != 1 || tr.Insts == 0 {
		t.Fatalf("trace: status %d, %+v", resp.StatusCode, tr)
	}

	resp, err = http.Post(srv.URL+"/v1/additive?maxloops=8", "application/octet-stream",
		bytes.NewReader(imgBytes))
	if err != nil {
		t.Fatal(err)
	}
	var ar struct {
		ExitCode int    `json:"exit_code"`
		Output   []byte `json:"output_b64"`
		Image    []byte `json:"image"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ar.ExitCode != 0 {
		t.Fatalf("additive: status %d, exit %d (%q)", resp.StatusCode, ar.ExitCode, ar.Output)
	}
	if !strings.Contains(string(ar.Output), "200") {
		t.Fatalf("additive output = %q, want the program's printed total", ar.Output)
	}
	if _, err := image.Unmarshal(ar.Image); err != nil {
		t.Fatalf("additive returned an unloadable image: %v", err)
	}
}

// TestServeRejectsBadRequests pins the client-error surface: garbage
// bodies, bad parameters, malformed store paths, and corrupt frames are
// all 4xx — never 5xx, never stored.
func TestServeRejectsBadRequests(t *testing.T) {
	s, srv := newServer(t, serve.Config{})
	imgBytes := compileMarshal(t, threadedSrc)
	hexKey := store.KeyOf([]byte("k")).Hex()

	put := func(path string, body []byte) *http.Response {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+path, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	post := func(path string, body []byte) *http.Response {
		resp, err := http.Post(srv.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	cases := []struct {
		name string
		resp *http.Response
		want int
	}{
		{"garbage image", post("/v1/recompile", []byte("not an image")), http.StatusBadRequest},
		{"bad seed", post("/v1/recompile?seed=ten", imgBytes), http.StatusBadRequest},
		{"bad maxloops", post("/v1/additive?maxloops=0", imgBytes), http.StatusBadRequest},
		// The literal "/../" form is cleaned away by ServeMux itself; the
		// percent-encoded form survives routing and must die in validation.
		{"store ns traversal", put("/store/v1/%2e%2e/"+hexKey, store.EncodeFrame([]byte("v"))), http.StatusBadRequest},
		{"store ns invalid char", put("/store/v1/a$b/"+hexKey, store.EncodeFrame([]byte("v"))), http.StatusBadRequest},
		{"store short key", put("/store/v1/func/abcd", store.EncodeFrame([]byte("v"))), http.StatusBadRequest},
		{"store corrupt frame", put("/store/v1/func/"+hexKey, []byte("not a frame")), http.StatusBadRequest},
		{"store get bad key", mustGet(t, srv.URL+"/store/v1/func/zzzz"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if tc.resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, tc.resp.StatusCode, tc.want)
		}
	}
	// Nothing above may have landed in the store.
	if _, _, ok := s.Store().Get("func", store.KeyOf([]byte("k"))); ok {
		t.Fatal("a rejected PUT reached the store")
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestServeMetricsAndHealth: /healthz answers, /metrics carries the job
// counters and the shared store's per-tier ops.
func TestServeMetricsAndHealth(t *testing.T) {
	imgBytes := compileMarshal(t, threadedSrc)
	_, srv := newServer(t, serve.Config{})
	if resp := mustGet(t, srv.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	postRecompile(t, srv.URL, imgBytes)
	postRecompile(t, srv.URL, imgBytes)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`polynimad_jobs_total{kind="recompile",outcome="ok"} 2`,
		`polynimad_jobs_inflight 0`,
		`polynimad_job_seconds_total{kind="recompile",outcome="ok"}`,
		`polynimad_job_seconds_bucket{kind="recompile",outcome="ok",le="+Inf"} 2`,
		`polynimad_job_seconds_count{kind="recompile",outcome="ok"} 2`,
		`store_tier_ops_total{tier="mem",op="hit"}`,
		`store_tier_op_seconds_bucket{tier="mem",op="put",le="+Inf"}`,
		`polynima_build_info{go_version="` + runtime.Version() + `"`,
		`polynimad_draining 0`,
		"go_goroutines ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
