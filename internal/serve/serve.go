// Package serve is the fleet recompile service behind cmd/polynimad: a
// long-running HTTP daemon that wraps core.Project over a single shared
// store.Tiered, so the memory tier — not just the disk tier — stays warm
// across requests, and a farm of workers pointing at one daemon shares one
// warm artifact store.
//
// Job endpoints (the request body is always a marshaled PXE image):
//
//	POST /v1/recompile[?trace=1&prune=1&seed=N]   -> recompiled image bytes
//	POST /v1/trace[?seed=N]                       -> ICFT session summary (JSON)
//	POST /v1/additive[?seed=N&maxloops=N]         -> additive session result (JSON)
//
// An optional concrete input for the traced/additive runs rides in the
// X-Polynima-Input header, base64-encoded.
//
// Store endpoints — the wire protocol store.Remote speaks, serving the
// daemon's shared tiered store as a content-addressed blob service:
//
//	GET /store/v1/{ns}/{key}   -> framed entry (store.EncodeFrame) or 404
//	PUT /store/v1/{ns}/{key}   -> 204; body must be a valid frame (else 400)
//
// Every stored byte a client PUTs is promoted into the daemon's memory
// tier, so the whole fleet warms the daemon and the daemon warms the fleet.
// The degradation contract is the client's (store.Remote): nothing this
// server does — crash, restart, corruption, pruning — can change a
// client's recompiled bytes; at worst a client recomputes.
//
// Operational endpoints: GET /metrics (Prometheus text format: per-job and
// per-store-request counters plus the shared store's per-tier ops) and
// GET /healthz.
//
// Production posture (admission.go, DESIGN.md §7): optional bearer-token
// authn (401 on mismatch; /metrics and /healthz stay open), separate
// bounded concurrency limits for jobs and store blobs that shed overload as
// 429 + Retry-After, per-client token-bucket quotas, and request-context
// cancellation — a client that disconnects mid-job has its pipeline
// cancelled and its worker slot freed. None of it touches the byte-identity
// contract: an admitted job's response bytes are identical at any
// concurrency limit.
package serve

import (
	"context"
	"crypto/subtle"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/store"
)

// Config assembles a Server.
type Config struct {
	// Opts is the base project options for every job; per-request query
	// parameters override the seed. SharedStore/Store/Obs are managed by
	// the server and overwritten.
	Opts core.Options
	// Backing is the optional persistent tier (disk, remote, or a chain)
	// composed under the shared memory tier.
	Backing store.Store
	// Tracer, when set, records one span per job plus the usual pipeline
	// spans (written out by cmd/polynimad at shutdown).
	Tracer *obs.Tracer
	// MaxBodyBytes bounds request bodies; 0 selects 256 MiB.
	MaxBodyBytes int64
	// AuthToken, when non-empty, requires every job and store request to
	// present "Authorization: Bearer <token>"; mismatches are answered 401.
	// /metrics and /healthz stay unauthenticated.
	AuthToken string
	// MaxInflightJobs caps concurrently executing jobs (0 = unlimited);
	// MaxQueueJobs bounds how many over-limit job requests wait for a slot
	// instead of being shed as 429 (0 = no queue, shed immediately).
	MaxInflightJobs int
	MaxQueueJobs    int
	// MaxInflightStore / MaxQueueStore are the same knobs for /store/v1/*
	// blob requests, limited separately so a burst of cheap blob traffic
	// cannot starve jobs and vice versa.
	MaxInflightStore int
	MaxQueueStore    int
	// QuotaRPS enables per-client token-bucket quotas: each client (keyed
	// by token digest, or remote host when auth is off) may sustain this
	// many requests per second (0 = no quotas). QuotaBurst is the bucket
	// capacity (0 = 2*QuotaRPS, floored at 1).
	QuotaRPS   float64
	QuotaBurst int
}

// Server is the recompile service. Create with New, expose with Handler.
type Server struct {
	opts      core.Options
	store     *store.Tiered
	tracer    *obs.Tracer
	maxBody   int64
	start     time.Time
	authToken string
	limJobs   *limiter
	limStore  *limiter
	quotas    *quotas

	mu         sync.Mutex
	inflight   int64
	jobs       map[[2]string]int64 // {kind, outcome} -> count
	jobSecs    map[string]float64  // kind -> summed seconds
	storeReqs  map[[2]string]int64 // {method, outcome} -> count
	rejected   map[[2]string]int64 // {class, reason} -> requests refused at admission
	clientReqs map[[2]string]int64 // {client, outcome} -> admission decisions
	jobCounter int64               // per-job trace-track naming
}

// New returns a server over one shared tiered store (a fresh shared memory
// tier fronting cfg.Backing).
func New(cfg Config) *Server {
	o := cfg.Opts
	o.Obs = cfg.Tracer
	o.Store = nil
	o.NoFuncCache = false
	s := &Server{
		opts:       o,
		store:      store.NewSharedTiered(store.NewMemory(), cfg.Backing),
		tracer:     cfg.Tracer,
		maxBody:    cfg.MaxBodyBytes,
		start:      time.Now(),
		authToken:  cfg.AuthToken,
		limJobs:    newLimiter(cfg.MaxInflightJobs, cfg.MaxQueueJobs),
		limStore:   newLimiter(cfg.MaxInflightStore, cfg.MaxQueueStore),
		quotas:     newQuotas(cfg.QuotaRPS, cfg.QuotaBurst),
		jobs:       map[[2]string]int64{},
		jobSecs:    map[string]float64{},
		storeReqs:  map[[2]string]int64{},
		rejected:   map[[2]string]int64{},
		clientReqs: map[[2]string]int64{},
	}
	if s.maxBody <= 0 {
		s.maxBody = 256 << 20
	}
	s.opts.SharedStore = s.store
	return s
}

// Store exposes the shared tiered store (tests, diagnostics).
func (s *Server) Store() *store.Tiered { return s.store }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/recompile", s.admit("jobs", s.limJobs,
		func(w http.ResponseWriter, r *http.Request) { s.job(w, r, "recompile", s.recompile) }))
	mux.HandleFunc("POST /v1/trace", s.admit("jobs", s.limJobs,
		func(w http.ResponseWriter, r *http.Request) { s.job(w, r, "trace", s.traceJob) }))
	mux.HandleFunc("POST /v1/additive", s.admit("jobs", s.limJobs,
		func(w http.ResponseWriter, r *http.Request) { s.job(w, r, "additive", s.additive) }))
	mux.HandleFunc("GET /store/v1/{ns}/{key}", s.admit("store", s.limStore, s.storeGet))
	mux.HandleFunc("PUT /store/v1/{ns}/{key}", s.admit("store", s.limStore, s.storePut))
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// --- admission --------------------------------------------------------------

// admit wraps a handler with the admission pipeline: authn, per-client
// quota, then the class's concurrency limiter — in that order, so an
// unauthenticated request can neither spend quota nor occupy a queue slot.
// Refusals are counted under polynimad_rejected_total{class,reason} and the
// per-client counters.
func (s *Server) admit(class string, lim *limiter, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		client := clientID(r)
		if s.authToken != "" {
			if subtle.ConstantTimeCompare([]byte(bearerToken(r)), []byte(s.authToken)) != 1 {
				s.reject(class, "auth", client)
				w.Header().Set("WWW-Authenticate", `Bearer realm="polynimad"`)
				http.Error(w, "unauthorized", http.StatusUnauthorized)
				return
			}
		}
		if ok, wait := s.quotas.allow(client); !ok {
			s.reject(class, "quota", client)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(wait)))
			http.Error(w, "per-client quota exceeded", http.StatusTooManyRequests)
			return
		}
		release, ok := lim.acquire(r.Context().Done())
		if !ok {
			if r.Context().Err() != nil {
				// The client gave up while queued; nobody is listening for
				// a status line, but the refusal is still accounted.
				s.reject(class, "cancelled", client)
				return
			}
			s.reject(class, "overload", client)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
			return
		}
		defer release()
		s.countClient(client, "admitted")
		h(w, r)
	}
}

func (s *Server) reject(class, reason, client string) {
	s.count(func() { s.rejected[[2]string{class, reason}]++ })
	s.countClient(client, reason)
}

// maxClientLabels bounds the per-client metric cardinality: once this many
// distinct clients have been seen, further ones are folded into "other".
const maxClientLabels = 1024

func (s *Server) countClient(client, outcome string) {
	s.count(func() {
		if _, seen := s.clientReqs[[2]string{client, outcome}]; !seen && len(s.clientReqs) >= maxClientLabels {
			client = "other"
		}
		s.clientReqs[[2]string{client, outcome}]++
	})
}

// --- job plumbing -----------------------------------------------------------

// httpError carries a job failure with its status code; anything else a job
// returns maps to 500.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

func unprocessable(err error) error {
	return &httpError{status: http.StatusUnprocessableEntity, err: err}
}

// statusClientClosedRequest is the conventional (nginx) status for a
// request whose client went away before the response; nobody receives it,
// but it keeps logs and traces honest.
const statusClientClosedRequest = 499

// jobRequest is a parsed job: the input image plus common parameters.
type jobRequest struct {
	img   *image.Image
	seed  int64
	input []byte // optional concrete input (X-Polynima-Input, base64)
	query func(string) string
	ctx   context.Context // the request's context; cancels the job's pipeline
}

// job wraps one request: body parsing, per-job span, counters, and error
// mapping. fn writes the success response itself.
func (s *Server) job(w http.ResponseWriter, r *http.Request, kind string,
	fn func(w http.ResponseWriter, req *jobRequest) error) {
	t0 := time.Now()
	s.count(func() { s.inflight++; s.jobCounter++ })
	var tid int64
	if s.tracer.Enabled() {
		s.mu.Lock()
		n := s.jobCounter
		s.mu.Unlock()
		tid = s.tracer.AllocTID(fmt.Sprintf("job %d (%s)", n, kind))
	}
	sp := s.tracer.Begin(tid, "serve", "job", obs.Arg{Key: "kind", Val: kind})
	outcome := "ok"
	defer func() {
		d := time.Since(t0)
		sp.Arg("outcome", outcome).End()
		s.count(func() {
			s.inflight--
			s.jobs[[2]string{kind, outcome}]++
			s.jobSecs[kind] += d.Seconds()
		})
	}()

	req, err := s.parseJob(w, r)
	if err == nil {
		err = fn(w, req)
	}
	if err != nil {
		status := http.StatusInternalServerError
		if he, ok := err.(*httpError); ok {
			status = he.status
		}
		switch {
		case r.Context().Err() != nil:
			// The client disconnected or timed out; the error is the
			// cancellation surfacing through the pipeline, not a job
			// failure. Nobody reads the response, but the outcome label is
			// how a freed slot is observed (tests, CI smoke).
			outcome = "cancelled"
			status = statusClientClosedRequest
		case status >= 500:
			outcome = "error"
		default:
			outcome = "client_error"
		}
		http.Error(w, err.Error(), status)
	}
}

func (s *Server) parseJob(w http.ResponseWriter, r *http.Request) (*jobRequest, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			// Over-limit bodies get the specific 413, not a generic 400 —
			// and MaxBytesReader must see the real ResponseWriter so it can
			// close the connection (the client is still sending).
			return nil, &httpError{status: http.StatusRequestEntityTooLarge,
				err: fmt.Errorf("request body exceeds %d bytes", mbe.Limit)}
		}
		return nil, badRequest("reading body: %v", err)
	}
	img, err := image.Unmarshal(body)
	if err != nil {
		return nil, badRequest("not a PXE image: %v", err)
	}
	req := &jobRequest{img: img, seed: s.opts.Seed, query: r.URL.Query().Get, ctx: r.Context()}
	if v := req.query("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, badRequest("seed %q: %v", v, err)
		}
		req.seed = seed
	}
	if v := r.Header.Get("X-Polynima-Input"); v != "" {
		in, err := base64.StdEncoding.DecodeString(v)
		if err != nil {
			return nil, badRequest("X-Polynima-Input: %v", err)
		}
		req.input = in
	}
	return req, nil
}

// project builds a core.Project over the shared store for one job. The
// request's context rides in as core's cancellation: a disconnected client
// stops its pipeline workers and guest runs.
func (s *Server) project(req *jobRequest) (*core.Project, error) {
	o := s.opts
	o.Seed = req.seed
	o.Ctx = req.ctx
	p, err := core.NewProject(req.img, o)
	if err != nil {
		return nil, unprocessable(err)
	}
	return p, nil
}

func (req *jobRequest) coreInput() core.Input {
	return core.Input{Data: req.input, Seed: req.seed}
}

// --- job handlers -----------------------------------------------------------

// recompile runs the pipeline and answers with the recompiled image bytes.
// Identical input, options, and store contents produce byte-identical
// responses — the same determinism contract as the CLI (DESIGN.md §3).
func (s *Server) recompile(w http.ResponseWriter, req *jobRequest) error {
	p, err := s.project(req)
	if err != nil {
		return err
	}
	if req.query("trace") != "" {
		if _, err := p.Trace([]core.Input{req.coreInput()}); err != nil {
			return unprocessable(err)
		}
	}
	if req.query("prune") != "" {
		if err := p.PruneCallbacks([]core.Input{req.coreInput()}); err != nil {
			return unprocessable(err)
		}
	}
	rec, err := p.Recompile()
	if err != nil {
		return err
	}
	out, err := rec.Marshal()
	if err != nil {
		return err
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Polynima-Funcs", strconv.Itoa(p.Stats.Funcs))
	h.Set("X-Polynima-Code-Size", strconv.Itoa(p.Stats.CodeSize))
	h.Set("X-Polynima-Store-Mem-Hits", strconv.Itoa(p.Stats.StoreMemHits))
	h.Set("X-Polynima-Store-Back-Hits", strconv.Itoa(p.Stats.StoreDiskHits))
	w.Write(out)
	return nil
}

// traceResponse is the JSON answer of POST /v1/trace.
type traceResponse struct {
	ICFTs      int         `json:"icfts"`
	NewTargets int         `json:"new_targets"`
	Runs       int         `json:"runs"`
	Insts      uint64      `json:"insts"`
	Merged     [][2]uint64 `json:"merged"` // (site, target) in merge order
}

func (s *Server) traceJob(w http.ResponseWriter, req *jobRequest) error {
	p, err := s.project(req)
	if err != nil {
		return err
	}
	res, err := p.Trace([]core.Input{req.coreInput()})
	if err != nil {
		return unprocessable(err)
	}
	resp := traceResponse{
		ICFTs:      res.ICFTs,
		NewTargets: res.NewTargets,
		Runs:       res.Runs,
		Insts:      res.Insts,
	}
	for _, st := range res.Merged {
		resp.Merged = append(resp.Merged, [2]uint64{st.Site, st.Target})
	}
	return writeJSON(w, resp)
}

// additiveResponse is the JSON answer of POST /v1/additive. Output travels
// base64 (Go marshals []byte that way), not as a JSON string: guest output
// is raw bytes, and a string field would mangle anything non-UTF-8 into
// U+FFFD replacement runes in transit.
type additiveResponse struct {
	ExitCode   int    `json:"exit_code"`
	Output     []byte `json:"output_b64"`
	Recompiles int    `json:"recompiles"`
	Misses     int    `json:"misses"`
	Image      []byte `json:"image"` // marshaled final image (base64 in JSON)
}

func (s *Server) additive(w http.ResponseWriter, req *jobRequest) error {
	p, err := s.project(req)
	if err != nil {
		return err
	}
	maxLoops := 64
	if v := req.query("maxloops"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return badRequest("maxloops %q", v)
		}
		maxLoops = n
	}
	res, err := p.RunAdditive(req.coreInput(), maxLoops)
	if err != nil {
		return unprocessable(err)
	}
	out, err := res.Img.Marshal()
	if err != nil {
		return err
	}
	return writeJSON(w, additiveResponse{
		ExitCode:   res.Result.ExitCode,
		Output:     []byte(res.Result.Output),
		Recompiles: res.Recompiles,
		Misses:     len(res.Misses),
		Image:      out,
	})
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// --- store endpoints --------------------------------------------------------

// nsRE validates a namespace as both a safe path segment and a safe
// directory name; "." and ".." are syntactically valid matches but would
// escape the store root, so they are rejected separately.
var nsRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

func parseStorePath(r *http.Request) (ns string, key store.Key, ok bool) {
	ns = r.PathValue("ns")
	if !nsRE.MatchString(ns) || ns == "." || ns == ".." {
		return "", store.Key{}, false
	}
	raw, err := hex.DecodeString(r.PathValue("key"))
	if err != nil || len(raw) != len(key) {
		return "", store.Key{}, false
	}
	copy(key[:], raw)
	return ns, key, true
}

func (s *Server) storeGet(w http.ResponseWriter, r *http.Request) {
	ns, key, ok := parseStorePath(r)
	if !ok {
		s.countStoreReq("get", "bad")
		http.Error(w, "bad namespace or key", http.StatusBadRequest)
		return
	}
	data, _, ok := s.store.Get(ns, key)
	if !ok {
		s.countStoreReq("get", "miss")
		http.NotFound(w, r)
		return
	}
	s.countStoreReq("get", "hit")
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(store.EncodeFrame(data))
}

func (s *Server) storePut(w http.ResponseWriter, r *http.Request) {
	ns, key, ok := parseStorePath(r)
	if !ok {
		s.countStoreReq("put", "bad")
		http.Error(w, "bad namespace or key", http.StatusBadRequest)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		s.countStoreReq("put", "bad")
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading body", http.StatusBadRequest)
		return
	}
	payload, ok := store.DecodeFrame(raw)
	if !ok {
		// A client that ships a corrupt frame gets told so — unlike reads,
		// accepting garbage here would store it for the whole fleet (it
		// would still never be *served*, the disk tier re-checksums, but
		// rejecting early keeps the store clean).
		s.countStoreReq("put", "bad")
		http.Error(w, "bad frame", http.StatusBadRequest)
		return
	}
	s.store.Put(ns, key, payload)
	s.countStoreReq("put", "ok")
	w.WriteHeader(http.StatusNoContent)
}

// --- metrics ----------------------------------------------------------------

func (s *Server) count(f func()) {
	s.mu.Lock()
	f()
	s.mu.Unlock()
}

func (s *Server) countStoreReq(method, outcome string) {
	s.count(func() { s.storeReqs[[2]string{method, outcome}]++ })
}

// metrics renders the daemon's counters plus the shared store's per-tier
// ops in Prometheus text format.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	ms := obs.NewMetricSet()
	ms.Gauge("polynimad_uptime_seconds", "Seconds since the daemon started.").
		Set(time.Since(s.start).Seconds())

	s.mu.Lock()
	ms.Gauge("polynimad_jobs_inflight", "Jobs currently executing.").
		Set(float64(s.inflight))
	jobs := ms.Counter("polynimad_jobs_total", "Jobs served, by kind and outcome.")
	for k, v := range s.jobs {
		jobs.Set(float64(v), obs.Label{Key: "kind", Val: k[0]}, obs.Label{Key: "outcome", Val: k[1]})
	}
	secs := ms.Counter("polynimad_job_seconds_total", "Summed job wall-clock seconds, by kind.")
	for k, v := range s.jobSecs {
		secs.Set(v, obs.Label{Key: "kind", Val: k})
	}
	reqs := ms.Counter("polynimad_store_requests_total",
		"Store-protocol requests served, by method and outcome.")
	for k, v := range s.storeReqs {
		reqs.Set(float64(v), obs.Label{Key: "method", Val: k[0]}, obs.Label{Key: "outcome", Val: k[1]})
	}
	rej := ms.Counter("polynimad_rejected_total",
		"Requests refused at admission, by class and reason (auth, quota, overload, cancelled).")
	for k, v := range s.rejected {
		rej.Set(float64(v), obs.Label{Key: "class", Val: k[0]}, obs.Label{Key: "reason", Val: k[1]})
	}
	cli := ms.Counter("polynimad_client_requests_total",
		"Admission decisions by client and outcome (client is a token digest or remote host).")
	for k, v := range s.clientReqs {
		cli.Set(float64(v), obs.Label{Key: "client", Val: k[0]}, obs.Label{Key: "outcome", Val: k[1]})
	}
	s.mu.Unlock()

	depth := ms.Gauge("polynimad_queue_depth",
		"Requests waiting for an admission slot right now, by class.")
	depth.Set(float64(s.limJobs.queued()), obs.Label{Key: "class", Val: "jobs"})
	depth.Set(float64(s.limStore.queued()), obs.Label{Key: "class", Val: "store"})

	st := s.store.Stats()
	tiers := make([]string, 0, len(st))
	for tier := range st {
		tiers = append(tiers, tier)
	}
	sort.Strings(tiers)
	ops := ms.Counter("store_tier_ops_total",
		"Shared artifact-store operations by tier and outcome.")
	for _, tier := range tiers {
		c := st[tier]
		l := obs.Label{Key: "tier", Val: tier}
		ops.Set(float64(c.Hits), l, obs.Label{Key: "op", Val: "hit"})
		ops.Set(float64(c.Misses), l, obs.Label{Key: "op", Val: "miss"})
		ops.Set(float64(c.Evictions), l, obs.Label{Key: "op", Val: "eviction"})
		ops.Set(float64(c.Corrupt), l, obs.Label{Key: "op", Val: "corrupt"})
		ops.Set(float64(c.Errors), l, obs.Label{Key: "op", Val: "error"})
		ops.Set(float64(c.Retries), l, obs.Label{Key: "op", Val: "retry"})
		ops.Set(float64(c.Throttled), l, obs.Label{Key: "op", Val: "throttled"})
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := ms.Write(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
